add_test([=[Concepts.CompileTimeChecksHold]=]  /root/repo/build/tests/test_concepts [==[--gtest_filter=Concepts.CompileTimeChecksHold]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Concepts.CompileTimeChecksHold]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_concepts_TESTS Concepts.CompileTimeChecksHold)
