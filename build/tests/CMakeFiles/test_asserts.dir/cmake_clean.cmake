file(REMOVE_RECURSE
  "CMakeFiles/test_asserts.dir/test_asserts.cpp.o"
  "CMakeFiles/test_asserts.dir/test_asserts.cpp.o.d"
  "test_asserts"
  "test_asserts.pdb"
  "test_asserts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asserts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
