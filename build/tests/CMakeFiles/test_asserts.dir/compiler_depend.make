# Empty compiler generated dependencies file for test_asserts.
# This may be replaced when dependencies are built.
