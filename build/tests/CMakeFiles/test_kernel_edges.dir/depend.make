# Empty dependencies file for test_kernel_edges.
# This may be replaced when dependencies are built.
