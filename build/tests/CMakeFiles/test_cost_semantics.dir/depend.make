# Empty dependencies file for test_cost_semantics.
# This may be replaced when dependencies are built.
