file(REMOVE_RECURSE
  "CMakeFiles/test_cost_semantics.dir/test_cost_semantics.cpp.o"
  "CMakeFiles/test_cost_semantics.dir/test_cost_semantics.cpp.o.d"
  "test_cost_semantics"
  "test_cost_semantics.pdb"
  "test_cost_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
