file(REMOVE_RECURSE
  "CMakeFiles/test_parray.dir/test_parray.cpp.o"
  "CMakeFiles/test_parray.dir/test_parray.cpp.o.d"
  "test_parray"
  "test_parray.pdb"
  "test_parray[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
