# Empty compiler generated dependencies file for test_parray.
# This may be replaced when dependencies are built.
