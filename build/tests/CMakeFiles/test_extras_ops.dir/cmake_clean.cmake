file(REMOVE_RECURSE
  "CMakeFiles/test_extras_ops.dir/test_extras_ops.cpp.o"
  "CMakeFiles/test_extras_ops.dir/test_extras_ops.cpp.o.d"
  "test_extras_ops"
  "test_extras_ops.pdb"
  "test_extras_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extras_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
