# Empty compiler generated dependencies file for test_extras_ops.
# This may be replaced when dependencies are built.
