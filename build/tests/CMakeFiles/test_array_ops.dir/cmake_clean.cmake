file(REMOVE_RECURSE
  "CMakeFiles/test_array_ops.dir/test_array_ops.cpp.o"
  "CMakeFiles/test_array_ops.dir/test_array_ops.cpp.o.d"
  "test_array_ops"
  "test_array_ops.pdb"
  "test_array_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_array_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
