file(REMOVE_RECURSE
  "CMakeFiles/test_delayed.dir/test_delayed.cpp.o"
  "CMakeFiles/test_delayed.dir/test_delayed.cpp.o.d"
  "test_delayed"
  "test_delayed.pdb"
  "test_delayed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delayed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
