# Empty dependencies file for test_delayed.
# This may be replaced when dependencies are built.
