file(REMOVE_RECURSE
  "CMakeFiles/test_delayed_extras.dir/test_delayed_extras.cpp.o"
  "CMakeFiles/test_delayed_extras.dir/test_delayed_extras.cpp.o.d"
  "test_delayed_extras"
  "test_delayed_extras.pdb"
  "test_delayed_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delayed_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
