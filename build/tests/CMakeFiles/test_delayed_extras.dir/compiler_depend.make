# Empty compiler generated dependencies file for test_delayed_extras.
# This may be replaced when dependencies are built.
