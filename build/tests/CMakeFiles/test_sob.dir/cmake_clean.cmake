file(REMOVE_RECURSE
  "CMakeFiles/test_sob.dir/test_sob.cpp.o"
  "CMakeFiles/test_sob.dir/test_sob.cpp.o.d"
  "test_sob"
  "test_sob.pdb"
  "test_sob[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
