# Empty dependencies file for test_sob.
# This may be replaced when dependencies are built.
