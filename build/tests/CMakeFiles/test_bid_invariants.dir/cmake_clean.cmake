file(REMOVE_RECURSE
  "CMakeFiles/test_bid_invariants.dir/test_bid_invariants.cpp.o"
  "CMakeFiles/test_bid_invariants.dir/test_bid_invariants.cpp.o.d"
  "test_bid_invariants"
  "test_bid_invariants.pdb"
  "test_bid_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bid_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
