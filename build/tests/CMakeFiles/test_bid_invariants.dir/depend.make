# Empty dependencies file for test_bid_invariants.
# This may be replaced when dependencies are built.
