file(REMOVE_RECURSE
  "CMakeFiles/test_scan_variants.dir/test_scan_variants.cpp.o"
  "CMakeFiles/test_scan_variants.dir/test_scan_variants.cpp.o.d"
  "test_scan_variants"
  "test_scan_variants.pdb"
  "test_scan_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scan_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
