# Empty dependencies file for test_scan_variants.
# This may be replaced when dependencies are built.
