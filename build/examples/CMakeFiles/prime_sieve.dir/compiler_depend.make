# Empty compiler generated dependencies file for prime_sieve.
# This may be replaced when dependencies are built.
