file(REMOVE_RECURSE
  "CMakeFiles/raytrace_bestcut.dir/raytrace_bestcut.cpp.o"
  "CMakeFiles/raytrace_bestcut.dir/raytrace_bestcut.cpp.o.d"
  "raytrace_bestcut"
  "raytrace_bestcut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raytrace_bestcut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
