# Empty dependencies file for raytrace_bestcut.
# This may be replaced when dependencies are built.
