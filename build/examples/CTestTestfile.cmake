# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph_bfs "/root/repo/build/examples/graph_bfs" "14" "200000")
set_tests_properties(example_graph_bfs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wordcount "/root/repo/build/examples/wordcount")
set_tests_properties(example_wordcount PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_prime_sieve "/root/repo/build/examples/prime_sieve" "1000000")
set_tests_properties(example_prime_sieve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_raytrace_bestcut "/root/repo/build/examples/raytrace_bestcut" "500000")
set_tests_properties(example_raytrace_bestcut PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pagerank "/root/repo/build/examples/pagerank" "13" "100000" "5")
set_tests_properties(example_pagerank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
