file(REMOVE_RECURSE
  "CMakeFiles/pbdsbench.dir/pbdsbench.cpp.o"
  "CMakeFiles/pbdsbench.dir/pbdsbench.cpp.o.d"
  "pbdsbench"
  "pbdsbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbdsbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
