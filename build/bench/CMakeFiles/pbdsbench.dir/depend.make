# Empty dependencies file for pbdsbench.
# This may be replaced when dependencies are built.
