file(REMOVE_RECURSE
  "CMakeFiles/fig11_cost_table.dir/fig11_cost_table.cpp.o"
  "CMakeFiles/fig11_cost_table.dir/fig11_cost_table.cpp.o.d"
  "fig11_cost_table"
  "fig11_cost_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cost_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
