# Empty compiler generated dependencies file for fig11_cost_table.
# This may be replaced when dependencies are built.
