# Empty dependencies file for fig13_bid_benchmarks.
# This may be replaced when dependencies are built.
