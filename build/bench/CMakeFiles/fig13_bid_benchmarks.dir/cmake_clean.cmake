file(REMOVE_RECURSE
  "CMakeFiles/fig13_bid_benchmarks.dir/fig13_bid_benchmarks.cpp.o"
  "CMakeFiles/fig13_bid_benchmarks.dir/fig13_bid_benchmarks.cpp.o.d"
  "fig13_bid_benchmarks"
  "fig13_bid_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_bid_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
