# Empty dependencies file for extras_pbbs_workloads.
# This may be replaced when dependencies are built.
