file(REMOVE_RECURSE
  "CMakeFiles/extras_pbbs_workloads.dir/extras_pbbs_workloads.cpp.o"
  "CMakeFiles/extras_pbbs_workloads.dir/extras_pbbs_workloads.cpp.o.d"
  "extras_pbbs_workloads"
  "extras_pbbs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extras_pbbs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
