file(REMOVE_RECURSE
  "CMakeFiles/ablation_force_vs_recompute.dir/ablation_force_vs_recompute.cpp.o"
  "CMakeFiles/ablation_force_vs_recompute.dir/ablation_force_vs_recompute.cpp.o.d"
  "ablation_force_vs_recompute"
  "ablation_force_vs_recompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_force_vs_recompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
