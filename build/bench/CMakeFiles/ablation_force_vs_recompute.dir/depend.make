# Empty dependencies file for ablation_force_vs_recompute.
# This may be replaced when dependencies are built.
