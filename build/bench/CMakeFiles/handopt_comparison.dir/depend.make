# Empty dependencies file for handopt_comparison.
# This may be replaced when dependencies are built.
