file(REMOVE_RECURSE
  "CMakeFiles/handopt_comparison.dir/handopt_comparison.cpp.o"
  "CMakeFiles/handopt_comparison.dir/handopt_comparison.cpp.o.d"
  "handopt_comparison"
  "handopt_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handopt_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
