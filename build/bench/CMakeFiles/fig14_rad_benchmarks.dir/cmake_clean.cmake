file(REMOVE_RECURSE
  "CMakeFiles/fig14_rad_benchmarks.dir/fig14_rad_benchmarks.cpp.o"
  "CMakeFiles/fig14_rad_benchmarks.dir/fig14_rad_benchmarks.cpp.o.d"
  "fig14_rad_benchmarks"
  "fig14_rad_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_rad_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
