# Empty compiler generated dependencies file for fig14_rad_benchmarks.
# This may be replaced when dependencies are built.
