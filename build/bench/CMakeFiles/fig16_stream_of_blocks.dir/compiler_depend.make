# Empty compiler generated dependencies file for fig16_stream_of_blocks.
# This may be replaced when dependencies are built.
