file(REMOVE_RECURSE
  "CMakeFiles/fig16_stream_of_blocks.dir/fig16_stream_of_blocks.cpp.o"
  "CMakeFiles/fig16_stream_of_blocks.dir/fig16_stream_of_blocks.cpp.o.d"
  "fig16_stream_of_blocks"
  "fig16_stream_of_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_stream_of_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
