file(REMOVE_RECURSE
  "CMakeFiles/fig05_bestcut_rw.dir/fig05_bestcut_rw.cpp.o"
  "CMakeFiles/fig05_bestcut_rw.dir/fig05_bestcut_rw.cpp.o.d"
  "fig05_bestcut_rw"
  "fig05_bestcut_rw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_bestcut_rw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
