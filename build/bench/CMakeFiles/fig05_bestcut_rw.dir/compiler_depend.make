# Empty compiler generated dependencies file for fig05_bestcut_rw.
# This may be replaced when dependencies are built.
