# Empty compiler generated dependencies file for micro_streams.
# This may be replaced when dependencies are built.
