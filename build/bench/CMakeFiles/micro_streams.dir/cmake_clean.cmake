file(REMOVE_RECURSE
  "CMakeFiles/micro_streams.dir/micro_streams.cpp.o"
  "CMakeFiles/micro_streams.dir/micro_streams.cpp.o.d"
  "micro_streams"
  "micro_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
