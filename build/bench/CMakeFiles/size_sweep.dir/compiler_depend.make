# Empty compiler generated dependencies file for size_sweep.
# This may be replaced when dependencies are built.
