// Per-operation microbenchmarks (google-benchmark): each core sequence
// operation under each of the three libraries, on a map-fused input, so
// the per-op overhead and fusion benefit are visible in isolation.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "benchmarks/policies.hpp"

namespace {

using namespace pbds;  // NOLINT

constexpr std::size_t kN = 1 << 20;

const parray<std::int64_t>& input() {
  static auto a = parray<std::int64_t>::tabulate(kN, [](std::size_t i) {
    return static_cast<std::int64_t>((i * 2654435761u) % 1000);
  });
  return a;
}

template <typename P>
void bm_map_reduce(benchmark::State& state) {
  const auto& a = input();
  for (auto _ : state) {
    auto m = P::map([](std::int64_t x) { return x * 3 + 1; }, P::view(a));
    benchmark::DoNotOptimize(P::reduce(
        [](std::int64_t u, std::int64_t v) { return u + v; },
        std::int64_t{0}, m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kN) * state.iterations());
}

template <typename P>
void bm_scan(benchmark::State& state) {
  const auto& a = input();
  for (auto _ : state) {
    auto [pre, total] = P::scan(
        [](std::int64_t u, std::int64_t v) { return u + v; },
        std::int64_t{0}, P::view(a));
    // Consume the scan so delayed phase 3 actually runs.
    benchmark::DoNotOptimize(P::reduce(
        [](std::int64_t u, std::int64_t v) { return u ^ v; },
        std::int64_t{0}, pre));
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kN) * state.iterations());
}

template <typename P>
void bm_filter_reduce(benchmark::State& state) {
  const auto& a = input();
  for (auto _ : state) {
    auto kept = P::filter([](std::int64_t x) { return x % 3 == 0; },
                          P::view(a));
    benchmark::DoNotOptimize(P::reduce(
        [](std::int64_t u, std::int64_t v) { return u + v; },
        std::int64_t{0}, kept));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kN) * state.iterations());
}

template <typename P>
void bm_flatten_reduce(benchmark::State& state) {
  constexpr std::size_t kOuter = kN / 16;
  for (auto _ : state) {
    auto nested = P::map(
        [](std::size_t i) {
          return P::tabulate(16, [i](std::size_t j) {
            return static_cast<std::int64_t>(i + j);
          });
        },
        P::iota(kOuter));
    benchmark::DoNotOptimize(P::reduce(
        [](std::int64_t u, std::int64_t v) { return u + v; },
        std::int64_t{0}, P::flatten(nested)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kN) * state.iterations());
}

template <typename P>
void bm_zip_map_reduce(benchmark::State& state) {
  const auto& a = input();
  for (auto _ : state) {
    auto z = P::zip(P::view(a), P::iota(kN));
    auto m = P::map(
        [](const std::pair<std::int64_t, std::size_t>& p) {
          return p.first + static_cast<std::int64_t>(p.second);
        },
        z);
    benchmark::DoNotOptimize(P::reduce(
        [](std::int64_t u, std::int64_t v) { return u + v; },
        std::int64_t{0}, m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kN) * state.iterations());
}

#define PBDS_BENCH_ALL(fn)                            \
  BENCHMARK_TEMPLATE(fn, array_policy)->Unit(benchmark::kMillisecond); \
  BENCHMARK_TEMPLATE(fn, rad_policy)->Unit(benchmark::kMillisecond);   \
  BENCHMARK_TEMPLATE(fn, delay_policy)->Unit(benchmark::kMillisecond)

PBDS_BENCH_ALL(bm_map_reduce);
PBDS_BENCH_ALL(bm_scan);
PBDS_BENCH_ALL(bm_filter_reduce);
PBDS_BENCH_ALL(bm_flatten_reduce);
PBDS_BENCH_ALL(bm_zip_map_reduce);

}  // namespace

BENCHMARK_MAIN();
