// Ablation — the §3 force-vs-recompute tradeoff, measured.
//
// In the best-cut pipeline the initial map feeds the scan twice (phase 1
// and the delayed phase 3). The fused version recomputes it (2 evals of f,
// 2n + O(b) traffic); forcing evaluates f once but adds an n-element array
// (1 eval, 4n + O(b) traffic). The crossover depends on how expensive f is
// relative to memory bandwidth — exactly what the cost semantics lets a
// user reason about without running anything. This bench sweeps the cost
// of f and prints both strategies.
#include <cmath>
#include <cstdio>

#include "bench_common/harness.hpp"
#include "core/delayed.hpp"

namespace {

using namespace pbds;                // NOLINT
using namespace pbds::bench_common;  // NOLINT
namespace d = pbds::delayed;

// An f whose cost is tunable: `work` rounds of a cheap transcendental.
double expensive(double x, int work) {
  double acc = x;
  for (int k = 0; k < work; ++k) acc = std::sqrt(acc + 1.0);
  return acc;
}

template <bool kForce>
double pipeline(const parray<double>& in, int work) {
  auto mapped = d::map([work](double x) { return expensive(x, work); },
                       d::view(in));
  auto run = [&](const auto& xs) {
    auto [pre, total] = d::scan(
        [](double a, double b) { return a + b; }, 0.0, xs);
    (void)total;
    return d::reduce([](double a, double b) { return a > b ? a : b; }, 0.0,
                     pre);
  };
  if constexpr (kForce) {
    return run(d::force(mapped));
  } else {
    return run(mapped);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = options::parse(argc, argv);
  std::size_t n = opt.scaled(8'000'000);
  auto in = parray<double>::tabulate(
      n, [](std::size_t i) { return static_cast<double>(i % 97) + 1.0; });

  std::printf("=== Ablation: recompute (fused) vs force, n = %zu ===\n\n", n);
  std::printf("%10s | %12s %12s | %s\n", "f cost", "fused(s)", "forced(s)",
              "winner");
  std::printf("------------------------------------------------------\n");
  for (int work : {0, 1, 2, 4, 8, 16, 32}) {
    auto fused = measure(
        [&] { do_not_optimize(pipeline<false>(in, work)); }, opt);
    auto forced = measure(
        [&] { do_not_optimize(pipeline<true>(in, work)); }, opt);
    std::printf("%10d | %12.4f %12.4f | %s\n", work, fused.seconds,
                forced.seconds,
                fused.seconds <= forced.seconds ? "fused" : "forced");
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: fused wins for cheap f (memory traffic dominates,\n"
      "2n vs 4n); forced wins once f is expensive enough that evaluating it\n"
      "twice costs more than an extra n-element array round-trip.\n");
  return 0;
}
