// service_soak — closed-loop overload soak for the pipeline service.
//
// Drives pipeline_service with more producers than it can absorb and
// reports throughput, shed rate, and completed-job latency percentiles
// (p50/p99). The CI soak job runs this at 2× capacity with a constrained
// PBDS_BUDGET_BYTES and the watchdog armed: the assertion is simply that
// it finishes — no hang, no abort, shed work accounted for — and the
// json_report row records how it degraded.
//
// Service knobs come from PBDS_SERVICE_* (service_config::from_env) and
// can be overridden by flags.
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include "bench_common/harness.hpp"
#include "service/soak_driver.hpp"

int main(int argc, char** argv) {
  namespace bd = pbds::bench_common::detail;
  using namespace pbds::service;  // NOLINT
  soak_config cfg;
  cfg.service = service_config::from_env();
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    auto is = [&](const char* f) { return std::strcmp(argv[i], f) == 0; };
    if (is("--producers")) {
      cfg.producers = static_cast<unsigned>(bd::parse_long_arg(
          "--producers", bd::require_value("--producers", i, argc, argv), 1,
          1024));
    } else if (is("--jobs")) {
      cfg.jobs_per_producer = static_cast<std::size_t>(bd::parse_long_arg(
          "--jobs", bd::require_value("--jobs", i, argc, argv), 1,
          std::numeric_limits<long>::max()));
    } else if (is("-n")) {
      cfg.n = static_cast<std::size_t>(
          bd::parse_long_arg("-n", bd::require_value("-n", i, argc, argv), 1,
                             std::numeric_limits<long>::max()));
    } else if (is("--seed")) {
      cfg.seed = static_cast<std::uint64_t>(bd::parse_long_arg(
          "--seed", bd::require_value("--seed", i, argc, argv), 0,
          std::numeric_limits<long>::max()));
    } else if (is("--poison")) {
      cfg.poison_class = static_cast<int>(bd::parse_long_arg(
          "--poison", bd::require_value("--poison", i, argc, argv), 0, 3));
    } else if (is("--budget")) {
      cfg.job_budget_bytes = bd::parse_long_arg(
          "--budget", bd::require_value("--budget", i, argc, argv), 1,
          std::numeric_limits<long>::max());
    } else if (is("--deadline-ms")) {
      cfg.job_deadline_ms = bd::parse_long_arg(
          "--deadline-ms", bd::require_value("--deadline-ms", i, argc, argv),
          1, 3600000);
    } else if (is("--queue-cap")) {
      cfg.service.queue_capacity = static_cast<std::size_t>(bd::parse_long_arg(
          "--queue-cap", bd::require_value("--queue-cap", i, argc, argv), 1,
          1 << 20));
    } else if (is("--policy")) {
      cfg.service.policy = static_cast<backpressure>(bd::parse_long_arg(
          "--policy", bd::require_value("--policy", i, argc, argv), 0, 2));
    } else if (is("--dispatchers")) {
      cfg.service.dispatchers = static_cast<unsigned>(bd::parse_long_arg(
          "--dispatchers", bd::require_value("--dispatchers", i, argc, argv),
          1, 64));
    } else if (is("--resumable")) {
      cfg.resumable = true;
    } else if (is("--bit-flip")) {
      cfg.bit_flips = static_cast<std::size_t>(bd::parse_long_arg(
          "--bit-flip", bd::require_value("--bit-flip", i, argc, argv), 1,
          1 << 20));
    } else if (is("--worker-kill")) {
      cfg.worker_kills = static_cast<std::size_t>(bd::parse_long_arg(
          "--worker-kill", bd::require_value("--worker-kill", i, argc, argv),
          1, 1 << 20));
    } else if (is("--json")) {
      json_path = bd::require_value("--json", i, argc, argv);
    } else if (is("--help") || is("-h")) {
      std::printf(
          "usage: %s [--producers P] [--jobs J] [-n SIZE] [--seed S]\n"
          "          [--poison CLASS] [--budget BYTES] [--deadline-ms MS]\n"
          "          [--queue-cap Q] [--policy 0|1|2] [--dispatchers D]\n"
          "          [--resumable] [--bit-flip N] [--worker-kill N]\n"
          "          [--json PATH]\n"
          "policy: 0 = block, 1 = reject, 2 = shed_oldest\n"
          "--resumable: submit checkpointed jobs; retries resume at block\n"
          "             granularity instead of restarting\n"
          "--bit-flip N: arm the integrity injector — every resume flips\n"
          "             bits in N bytes of completed blocks; completed jobs\n"
          "             are checked against the per-class oracle\n"
          "--worker-kill N: deliver N injected worker deaths during the\n"
          "             run; a fast watchdog detects each loss, reclaims\n"
          "             the dead worker's queue, and repairs the pool;\n"
          "             completed jobs are checked against the oracle\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }

  auto r = run_soak(cfg);
  std::printf(
      "service-soak: %llu submitted, %llu completed, %llu rejected, "
      "%llu shed, %llu cancelled, %llu failed\n"
      "  throughput %.1f jobs/s, shed rate %.3f, p50 %.2f ms, p99 %.2f ms, "
      "retries %llu, breaker trips %llu, trace hash %016llx\n",
      static_cast<unsigned long long>(r.stats.submitted),
      static_cast<unsigned long long>(r.stats.completed),
      static_cast<unsigned long long>(r.stats.rejected),
      static_cast<unsigned long long>(r.stats.shed),
      static_cast<unsigned long long>(r.stats.cancelled),
      static_cast<unsigned long long>(r.stats.failed),
      r.throughput_jobs_per_s, r.shed_rate, r.p50_ms, r.p99_ms,
      static_cast<unsigned long long>(r.stats.retries),
      static_cast<unsigned long long>(r.stats.breaker_trips),
      static_cast<unsigned long long>(r.trace_hash));
  if (cfg.resumable) {
    std::printf(
        "  resume: %llu resumed, %llu completed-after-resume, "
        "%llu blocks salvaged, %llu blocks redone, %llu parked, "
        "%llu readmitted\n",
        static_cast<unsigned long long>(r.stats.resumed),
        static_cast<unsigned long long>(r.stats.completed_after_resume),
        static_cast<unsigned long long>(r.stats.blocks_salvaged),
        static_cast<unsigned long long>(r.stats.blocks_redone),
        static_cast<unsigned long long>(r.stats.parked),
        static_cast<unsigned long long>(r.stats.readmitted));
  }
  if (cfg.bit_flips > 0) {
    std::printf(
        "  integrity: %llu bit flips delivered, %llu corrupt events, "
        "%llu blocks quarantined, %llu reexecuted, %llu result mismatches\n",
        static_cast<unsigned long long>(r.bit_flips_delivered),
        static_cast<unsigned long long>(r.stats.corrupt_detected),
        static_cast<unsigned long long>(r.stats.blocks_quarantined),
        static_cast<unsigned long long>(r.stats.blocks_reexecuted),
        static_cast<unsigned long long>(r.result_mismatches));
  }
  if (cfg.worker_kills > 0) {
    std::printf(
        "  worker-loss: %llu kills delivered, %llu workers lost, "
        "%llu repairs, %llu worker-lost events, %llu result mismatches\n",
        static_cast<unsigned long long>(r.worker_kills_delivered),
        static_cast<unsigned long long>(r.workers_lost),
        static_cast<unsigned long long>(r.repairs),
        static_cast<unsigned long long>(r.stats.worker_lost_seen),
        static_cast<unsigned long long>(r.result_mismatches));
  }

  if (!json_path.empty()) {
    using pbds::bench_common::json_report;
    using pbds::bench_common::measurement;
    using pbds::bench_common::run_status;
    json_report report(json_path);
    measurement m{};
    m.seconds = r.seconds;
    report.add({"service-soak",
                "delay",
                run_status::ok,
                1,
                m,
                {{"throughput_jobs_per_s", r.throughput_jobs_per_s},
                 {"shed_rate", r.shed_rate},
                 {"p50_ms", r.p50_ms},
                 {"p99_ms", r.p99_ms},
                 {"completed", static_cast<double>(r.stats.completed)},
                 {"rejected", static_cast<double>(r.stats.rejected)},
                 {"shed", static_cast<double>(r.stats.shed)},
                 {"cancelled", static_cast<double>(r.stats.cancelled)},
                 {"failed", static_cast<double>(r.stats.failed)},
                 {"retries", static_cast<double>(r.stats.retries)},
                 {"breaker_trips",
                  static_cast<double>(r.stats.breaker_trips)},
                 {"resumed", static_cast<double>(r.stats.resumed)},
                 {"completed_after_resume",
                  static_cast<double>(r.stats.completed_after_resume)},
                 {"blocks_salvaged",
                  static_cast<double>(r.stats.blocks_salvaged)},
                 {"blocks_redone",
                  static_cast<double>(r.stats.blocks_redone)},
                 {"parked", static_cast<double>(r.stats.parked)},
                 {"readmitted",
                  static_cast<double>(r.stats.readmitted)},
                 {"corrupt_detected",
                  static_cast<double>(r.stats.corrupt_detected)},
                 {"blocks_quarantined",
                  static_cast<double>(r.stats.blocks_quarantined)},
                 {"blocks_reexecuted",
                  static_cast<double>(r.stats.blocks_reexecuted)},
                 {"bit_flips_delivered",
                  static_cast<double>(r.bit_flips_delivered)},
                 {"result_mismatches",
                  static_cast<double>(r.result_mismatches)},
                 {"worker_kills_delivered",
                  static_cast<double>(r.worker_kills_delivered)},
                 {"workers_lost", static_cast<double>(r.workers_lost)},
                 {"repairs", static_cast<double>(r.repairs)},
                 {"worker_lost_seen",
                  static_cast<double>(r.stats.worker_lost_seen)},
                 {"repairs_observed",
                  static_cast<double>(r.stats.repairs_observed)}}});
    if (!report.ok()) {
      std::fprintf(stderr, "service-soak: report not persisted: %s\n",
                   report.last_error().c_str());
      return 1;
    }
  }
  return 0;
}
