// Size sweep — evidence for the scaled-inputs substitution (DESIGN.md §1).
//
// The reproduction runs the paper's workloads at ~1/50 of the published
// sizes and argues that fusion ratios are size-independent above cache
// scale. This bench tests that argument directly: A/Ours time and space
// ratios for two representative kernels (mcss: RAD fusion; bestcut: BID
// fusion) across two decades of input size. The ratios should be roughly
// flat from ~1M elements up (once the working set clears L2/L3).
#include <cstdio>

#include "bench_common/harness.hpp"
#include "benchmarks/bestcut.hpp"
#include "benchmarks/mcss.hpp"
#include "benchmarks/policies.hpp"

int main(int argc, char** argv) {
  using namespace pbds;                // NOLINT
  using namespace pbds::bench;         // NOLINT
  using namespace pbds::bench_common;  // NOLINT
  auto opt = options::parse(argc, argv);
  // Keep the sweep quick by default: fewer repeats than the table benches.
  if (opt.repeat > 2) opt.repeat = 2;

  std::printf("=== Size sweep: fusion ratios vs input size ===\n\n");
  std::printf("%-8s %12s | %9s %9s %7s | %9s %7s\n", "kernel", "n", "A(s)",
              "Ours(s)", "T A/O", "A(MB)", "S A/O");
  std::printf("%.*s\n", 78,
              "------------------------------------------------------------"
              "------------------");
  for (std::size_t n : {100'000u, 1'000'000u, 4'000'000u, 16'000'000u}) {
    std::size_t sn = opt.scaled(n);
    auto a_in = mcss_input(sn);
    auto ma = measure(
        [&] { do_not_optimize(mcss<array_policy>(a_in)); }, opt);
    auto md = measure(
        [&] { do_not_optimize(mcss<delay_policy>(a_in)); }, opt);
    std::printf("%-8s %12zu | %9.4f %9.4f %7.2f | %9.1f %7.2f\n", "mcss", sn,
                ma.seconds, md.seconds, ratio(ma.seconds, md.seconds),
                mb(ma.peak_bytes),
                ratio(static_cast<double>(ma.peak_bytes),
                      static_cast<double>(md.peak_bytes)));
    std::fflush(stdout);
  }
  std::printf("\n");
  for (std::size_t n : {100'000u, 1'000'000u, 4'000'000u, 16'000'000u}) {
    std::size_t sn = opt.scaled(n);
    auto events = bestcut_input(sn);
    auto ma = measure(
        [&] { do_not_optimize(bestcut<array_policy>(events)); }, opt);
    auto md = measure(
        [&] { do_not_optimize(bestcut<delay_policy>(events)); }, opt);
    std::printf("%-8s %12zu | %9.4f %9.4f %7.2f | %9.1f %7.2f\n", "bestcut",
                sn, ma.seconds, md.seconds, ratio(ma.seconds, md.seconds),
                mb(ma.peak_bytes),
                ratio(static_cast<double>(ma.peak_bytes),
                      static_cast<double>(md.peak_bytes)));
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: time and space ratios roughly constant once the\n"
      "working set exceeds the caches (~1M elements here) — the basis for\n"
      "comparing this repo's scaled-down runs against the paper's sizes.\n");
  return 0;
}
