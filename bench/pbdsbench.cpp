// pbdsbench — artifact-style benchmark runner (Appendix A.7).
//
// The paper's artifact builds one binary per BENCHMARK.VERSION and runs
//     bin/linefit.delay.cpp.bin -n 500000000 -repeat 10 -warmup 3
// This single dispatcher reproduces that interface:
//     pbdsbench --bench linefit --impl delay -n 500000 -repeat 10 -warmup 3
// printing one line per timed configuration: time (mean over repeats),
// peak space, and bytes allocated per run.
//
// `--bench all` and `--impl all` sweep; `--list` enumerates benchmarks.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common/harness.hpp"
#include "benchmarks/bestcut.hpp"
#include "benchmarks/bfs.hpp"
#include "benchmarks/bignum_add.hpp"
#include "benchmarks/grep.hpp"
#include "benchmarks/integrate.hpp"
#include "benchmarks/inverted_index.hpp"
#include "benchmarks/linearrec.hpp"
#include "benchmarks/linefit.hpp"
#include "benchmarks/mcss.hpp"
#include "benchmarks/policies.hpp"
#include "benchmarks/primes.hpp"
#include "benchmarks/quickhull.hpp"
#include "benchmarks/raycast.hpp"
#include "benchmarks/spmv.hpp"
#include "benchmarks/tokens.hpp"
#include "benchmarks/wc.hpp"
#include "service/soak_driver.hpp"

namespace {

using namespace pbds;                // NOLINT
using namespace pbds::bench;         // NOLINT
using namespace pbds::bench_common;  // NOLINT

struct cli {
  std::string bench = "all";
  std::string impl = "all";
  std::size_t n = 0;  // 0 = per-benchmark default
  options opt;
  std::string json_path;    // empty = no JSON report
  bool service = false;     // run the pipeline-service soak instead
  bool isolate = false;     // fork one subprocess per configuration
  double timeout_sec = 60;  // per-configuration wall clock (isolated mode)
  int retries = 1;          // max retries after timeout/crash (isolated mode)
};

// One benchmark = a factory that captures the generated input and returns
// a thunk per policy.
struct entry {
  std::size_t default_n;
  // run(policy_name, n, opt) -> measurement
  std::function<measurement(const std::string&, std::size_t,
                            const options&)> run;
};

template <typename MakeRunner>
measurement dispatch_impl(const std::string& impl, const options& opt,
                          const MakeRunner& make) {
  if (impl == "array") return measure(make(array_policy{}), opt);
  if (impl == "rad") return measure(make(rad_policy{}), opt);
  if (impl == "delay") return measure(make(delay_policy{}), opt);
  std::fprintf(stderr, "unknown --impl '%s' (array|rad|delay|all)\n",
               impl.c_str());
  std::exit(2);
}

std::map<std::string, entry> registry() {
  std::map<std::string, entry> r;
  r["bestcut"] = {4'000'000, [](const std::string& impl, std::size_t n,
                                const options& opt) {
                    auto events = bestcut_input(n);
                    return dispatch_impl(impl, opt, [&](auto p) {
                      using P = decltype(p);
                      return [&] { do_not_optimize(bestcut<P>(events)); };
                    });
                  }};
  r["bfs"] = {3'000'000, [](const std::string& impl, std::size_t n,
                            const options& opt) {
                auto g = graph::rmat(18, n);
                return dispatch_impl(impl, opt, [&](auto p) {
                  using P = decltype(p);
                  return [&] { do_not_optimize(bfs<P>(g, 0).size()); };
                });
              }};
  r["bignum-add"] = {8'000'000, [](const std::string& impl, std::size_t n,
                                   const options& opt) {
                       auto a = bignum::random_bignum(n, 1);
                       auto b = bignum::random_bignum(n, 2);
                       return dispatch_impl(impl, opt, [&](auto p) {
                         using P = decltype(p);
                         return [&] {
                           do_not_optimize(bignum_add<P>(a, b).carry_out);
                         };
                       });
                     }};
  r["primes"] = {4'000'000, [](const std::string& impl, std::size_t n,
                               const options& opt) {
                   return dispatch_impl(impl, opt, [&, n](auto p) {
                     using P = decltype(p);
                     return [n] {
                       do_not_optimize(
                           primes<P>(static_cast<std::int64_t>(n)).size());
                     };
                   });
                 }};
  r["tokens"] = {16'000'000, [](const std::string& impl, std::size_t n,
                                const options& opt) {
                   auto t = text::random_words(n, 7.0);
                   return dispatch_impl(impl, opt, [&](auto p) {
                     using P = decltype(p);
                     return [&] { do_not_optimize(tokens<P>(t).count); };
                   });
                 }};
  r["grep"] = {16'000'000, [](const std::string& impl, std::size_t n,
                              const options& opt) {
                 auto t = text::random_lines(n);
                 return dispatch_impl(impl, opt, [&](auto p) {
                   using P = decltype(p);
                   return [&] {
                     do_not_optimize(grep<P>(t, "ab").matching_lines);
                   };
                 });
               }};
  r["integrate"] = {16'000'000, [](const std::string& impl, std::size_t n,
                                   const options& opt) {
                      return dispatch_impl(impl, opt, [n](auto p) {
                        using P = decltype(p);
                        return [n] { do_not_optimize(integrate<P>(n)); };
                      });
                    }};
  r["linearrec"] = {8'000'000, [](const std::string& impl, std::size_t n,
                                  const options& opt) {
                      auto coefs = linearrec_input(n);
                      return dispatch_impl(impl, opt, [&](auto p) {
                        using P = decltype(p);
                        return [&] {
                          do_not_optimize(linearrec<P>(coefs).size());
                        };
                      });
                    }};
  r["linefit"] = {8'000'000, [](const std::string& impl, std::size_t n,
                                const options& opt) {
                    auto pts = linefit_input(n);
                    return dispatch_impl(impl, opt, [&](auto p) {
                      using P = decltype(p);
                      return [&] {
                        do_not_optimize(linefit<P>(pts).slope);
                      };
                    });
                  }};
  r["mcss"] = {16'000'000, [](const std::string& impl, std::size_t n,
                              const options& opt) {
                 auto a = mcss_input(n);
                 return dispatch_impl(impl, opt, [&](auto p) {
                   using P = decltype(p);
                   return [&] { do_not_optimize(mcss<P>(a)); };
                 });
               }};
  r["quickhull"] = {1'000'000, [](const std::string& impl, std::size_t n,
                                  const options& opt) {
                      auto pts = geom::points_in_disk(n);
                      return dispatch_impl(impl, opt, [&](auto p) {
                        using P = decltype(p);
                        return [&] { do_not_optimize(quickhull<P>(pts)); };
                      });
                    }};
  r["sparse-mxv"] = {8'000'000, [](const std::string& impl, std::size_t n,
                                   const options& opt) {
                       std::size_t rows = n / 100 + 1;
                       auto m = spmv_input(rows, 100);
                       auto x = spmv_vector(rows);
                       return dispatch_impl(impl, opt, [&](auto p) {
                         using P = decltype(p);
                         return [&] {
                           do_not_optimize(spmv<P>(m, x).size());
                         };
                       });
                     }};
  r["wc"] = {16'000'000, [](const std::string& impl, std::size_t n,
                            const options& opt) {
               auto t = text::random_lines(n);
               return dispatch_impl(impl, opt, [&](auto p) {
                 using P = decltype(p);
                 return [&] { do_not_optimize(wc<P>(t).words); };
               });
             }};
  r["inv-index"] = {16'000'000, [](const std::string& impl, std::size_t n,
                                   const options& opt) {
                      auto t = text::random_lines(n, 60.0, 8.0);
                      return dispatch_impl(impl, opt, [&](auto p) {
                        using P = decltype(p);
                        return [&] {
                          do_not_optimize(build_index<P>(t)[0].postings);
                        };
                      });
                    }};
  r["raycast"] = {20'000, [](const std::string& impl, std::size_t n,
                             const options& opt) {
                    auto tris = geom::random_triangles(2'000);
                    auto rays = geom::random_rays(n);
                    return dispatch_impl(impl, opt, [&](auto p) {
                      using P = decltype(p);
                      return [&] {
                        do_not_optimize(raycast<P>(rays, tris).size());
                      };
                    });
                  }};
  return r;
}

cli parse_cli(int argc, char** argv) {
  cli c;
  namespace bd = pbds::bench_common::detail;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  // The artifact-style -repeat/-warmup aliases are collected here and
  // applied *after* options::parse builds c.opt from the passthrough
  // flags, so they are not overwritten.
  int repeat_override = -1;
  double warmup_override = -1;
  for (int i = 1; i < argc; ++i) {
    auto is = [&](const char* f) { return std::strcmp(argv[i], f) == 0; };
    if (is("--bench")) {
      c.bench = bd::require_value("--bench", i, argc, argv);
    } else if (is("--impl")) {
      c.impl = bd::require_value("--impl", i, argc, argv);
    } else if (is("-n")) {
      c.n = static_cast<std::size_t>(bd::parse_long_arg(
          "-n", bd::require_value("-n", i, argc, argv), 1,
          std::numeric_limits<long>::max()));
    } else if (is("-repeat")) {
      repeat_override = static_cast<int>(bd::parse_long_arg(
          "-repeat", bd::require_value("-repeat", i, argc, argv), 1,
          1000000));
    } else if (is("-warmup")) {
      warmup_override = bd::parse_double_arg(
          "-warmup", bd::require_value("-warmup", i, argc, argv), 0.0,
          /*inclusive=*/true);
    } else if (is("--json")) {
      c.json_path = bd::require_value("--json", i, argc, argv);
    } else if (is("--service")) {
      c.service = true;
    } else if (is("--isolate")) {
      c.isolate = true;
    } else if (is("--timeout")) {
      c.timeout_sec = bd::parse_double_arg(
          "--timeout", bd::require_value("--timeout", i, argc, argv), 0.0,
          /*inclusive=*/false);
    } else if (is("--retries")) {
      c.retries = static_cast<int>(bd::parse_long_arg(
          "--retries", bd::require_value("--retries", i, argc, argv), 0,
          100));
    } else if (is("--list")) {
      for (const auto& [name, e] : registry()) {
        std::printf("%-12s (default n = %zu)\n", name.c_str(), e.default_n);
      }
      std::exit(0);
    } else if (is("--help") || is("-h")) {
      std::printf(
          "usage: %s [--bench NAME|all] [--impl array|rad|delay|all]\n"
          "          [-n SIZE] [-repeat R] [-warmup SECONDS] [--list]\n"
          "          [--json PATH] [--isolate] [--timeout SECONDS]\n"
          "          [--retries N] [--service]\n"
          "--service runs the pipeline-service overload soak (configured\n"
          "via PBDS_SERVICE_*; see bench/service_soak.cpp for the\n"
          "standalone driver with per-knob flags)\n",
          argv[0]);
      std::exit(0);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // Remaining flags (e.g. --scale) go to the common parser.
  c.opt = options::parse(static_cast<int>(passthrough.size()),
                         passthrough.data());
  if (repeat_override >= 0) c.opt.repeat = repeat_override;
  if (warmup_override >= 0) c.opt.warmup = warmup_override;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  cli c = parse_cli(argc, argv);

  if (c.service) {
    // Pipeline-service overload soak: closed loop at whatever pressure
    // PBDS_SERVICE_* sets up. -n overrides the per-job pipeline size.
    pbds::service::soak_config scfg;
    scfg.service = pbds::service::service_config::from_env();
    if (c.n) scfg.n = c.n;
    auto r = pbds::service::run_soak(scfg);
    std::printf("%-12s %-6s %12zu %10.4f %12.1f jobs/s  shed %.3f  "
                "p99 %.2f ms\n",
                "service-soak", "delay", scfg.n, r.seconds,
                r.throughput_jobs_per_s, r.shed_rate, r.p99_ms);
    if (!c.json_path.empty()) {
      json_report report(c.json_path);
      measurement m{};
      m.seconds = r.seconds;
      report.add({"service-soak",
                  "delay",
                  run_status::ok,
                  1,
                  m,
                  {{"throughput_jobs_per_s", r.throughput_jobs_per_s},
                   {"shed_rate", r.shed_rate},
                   {"p50_ms", r.p50_ms},
                   {"p99_ms", r.p99_ms},
                   {"completed", static_cast<double>(r.stats.completed)},
                   {"breaker_trips",
                    static_cast<double>(r.stats.breaker_trips)}}});
      if (!report.ok()) return 1;
    }
    return 0;
  }

  auto reg = registry();
  std::vector<std::string> benches;
  if (c.bench == "all") {
    for (const auto& [name, e] : reg) benches.push_back(name);
  } else if (reg.count(c.bench)) {
    benches.push_back(c.bench);
  } else {
    std::fprintf(stderr, "unknown --bench '%s' (try --list)\n",
                 c.bench.c_str());
    return 2;
  }
  std::vector<std::string> impls =
      c.impl == "all" ? std::vector<std::string>{"array", "rad", "delay"}
                      : std::vector<std::string>{c.impl};

  std::unique_ptr<json_report> report;
  if (!c.json_path.empty())
    report = std::make_unique<json_report>(c.json_path);

  std::printf("%-12s %-6s %12s %10s %12s %12s\n", "benchmark", "impl", "n",
              "time(s)", "peak MB", "alloc MB/run");
  for (const auto& name : benches) {
    const auto& e = reg.at(name);
    std::size_t n = c.n ? c.n : c.opt.scaled(e.default_n);
    for (const auto& impl : impls) {
      if (c.isolate) {
        // One subprocess per configuration: input generation, warmup, and
        // timed runs all happen in the child, so this parent process never
        // starts the scheduler pool — the precondition for fork safety
        // (run_isolated's contract) — and a configuration that wedges,
        // crashes, or blows past the budget costs only its own row.
        auto r = run_isolated([&] { return e.run(impl, n, c.opt); },
                              c.timeout_sec, c.retries);
        if (r.status == run_status::ok) {
          std::printf("%-12s %-6s %12zu %10.4f %12.1f %12.1f\n",
                      name.c_str(), impl.c_str(), n, r.m.seconds,
                      mb(r.m.peak_bytes), mb(r.m.allocated_bytes));
        } else {
          std::printf("%-12s %-6s %12zu %10s (%s after %d attempt%s)\n",
                      name.c_str(), impl.c_str(), n, "-",
                      to_string(r.status), r.attempts,
                      r.attempts == 1 ? "" : "s");
        }
        if (report) report->add({name, impl, r.status, r.attempts, r.m});
      } else {
        auto m = e.run(impl, n, c.opt);
        std::printf("%-12s %-6s %12zu %10.4f %12.1f %12.1f\n", name.c_str(),
                    impl.c_str(), n, m.seconds, mb(m.peak_bytes),
                    mb(m.allocated_bytes));
        if (report) report->add({name, impl, run_status::ok, 1, m});
      }
      std::fflush(stdout);
    }
  }
  return 0;
}
