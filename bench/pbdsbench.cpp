// pbdsbench — artifact-style benchmark runner (Appendix A.7).
//
// The paper's artifact builds one binary per BENCHMARK.VERSION and runs
//     bin/linefit.delay.cpp.bin -n 500000000 -repeat 10 -warmup 3
// This single dispatcher reproduces that interface:
//     pbdsbench --bench linefit --impl delay -n 500000 -repeat 10 -warmup 3
// printing one line per timed configuration: time (mean over repeats),
// peak space, and bytes allocated per run.
//
// `--bench all` and `--impl all` sweep; `--list` enumerates benchmarks.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common/baseline.hpp"
#include "bench_common/harness.hpp"
#include "benchmarks/bestcut.hpp"
#include "benchmarks/bfs.hpp"
#include "benchmarks/bignum_add.hpp"
#include "benchmarks/grep.hpp"
#include "benchmarks/integrate.hpp"
#include "benchmarks/inverted_index.hpp"
#include "benchmarks/linearrec.hpp"
#include "benchmarks/linefit.hpp"
#include "benchmarks/mcss.hpp"
#include "benchmarks/policies.hpp"
#include "benchmarks/primes.hpp"
#include "benchmarks/quickhull.hpp"
#include "benchmarks/raycast.hpp"
#include "benchmarks/spmv.hpp"
#include "benchmarks/tokens.hpp"
#include "benchmarks/wc.hpp"
#include "integrity/block_digest.hpp"
#include "recovery/checkpoint_ops.hpp"
#include "service/soak_driver.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace pbds;                // NOLINT
using namespace pbds::bench;         // NOLINT
using namespace pbds::bench_common;  // NOLINT

struct cli {
  std::string bench = "all";
  std::string impl = "all";
  std::size_t n = 0;  // 0 = per-benchmark default
  options opt;
  std::string json_path;    // empty = no JSON report
  bool service = false;     // run the pipeline-service soak instead
  bool verify_overhead = false;  // A/B the integrity digest cost instead
  bool metrics = false;          // dump the telemetry registry after the run
  bool metrics_overhead = false; // A/B the metrics-recording cost instead
  bool isolate = false;     // fork one subprocess per configuration
  double timeout_sec = 60;  // per-configuration wall clock (isolated mode)
  int retries = 1;          // max retries after timeout/crash (isolated mode)

  // Perf-regression mode: replay the configurations recorded in a
  // committed `--json` report and fail (exit 1) when the fresh medians
  // regress past the thresholds. --inject-slowdown multiplies the fresh
  // medians before comparison — the self-test hook proving the comparator
  // actually fails when things get slower.
  std::string baseline_path;     // empty = normal measurement mode
  double threshold = 0.10;       // relative median-seconds threshold
  double bytes_threshold = 0.02; // relative allocated-bytes threshold (<0 off)
  double inject_slowdown = 1.0;
};

// One benchmark = a factory that captures the generated input and returns
// a thunk per policy.
struct entry {
  std::size_t default_n;
  // run(policy_name, n, opt) -> measurement
  std::function<measurement(const std::string&, std::size_t,
                            const options&)> run;
};

template <typename MakeRunner>
measurement dispatch_impl(const std::string& impl, const options& opt,
                          const MakeRunner& make) {
  if (impl == "array") return measure(make(array_policy{}), opt);
  if (impl == "rad") return measure(make(rad_policy{}), opt);
  if (impl == "delay") return measure(make(delay_policy{}), opt);
  std::fprintf(stderr, "unknown --impl '%s' (array|rad|delay|all)\n",
               impl.c_str());
  std::exit(2);
}

std::map<std::string, entry> registry() {
  std::map<std::string, entry> r;
  r["bestcut"] = {4'000'000, [](const std::string& impl, std::size_t n,
                                const options& opt) {
                    auto events = bestcut_input(n);
                    return dispatch_impl(impl, opt, [&](auto p) {
                      using P = decltype(p);
                      return [&] { do_not_optimize(bestcut<P>(events)); };
                    });
                  }};
  r["bfs"] = {3'000'000, [](const std::string& impl, std::size_t n,
                            const options& opt) {
                auto g = graph::rmat(18, n);
                return dispatch_impl(impl, opt, [&](auto p) {
                  using P = decltype(p);
                  return [&] { do_not_optimize(bfs<P>(g, 0).size()); };
                });
              }};
  r["bignum-add"] = {8'000'000, [](const std::string& impl, std::size_t n,
                                   const options& opt) {
                       auto a = bignum::random_bignum(n, 1);
                       auto b = bignum::random_bignum(n, 2);
                       return dispatch_impl(impl, opt, [&](auto p) {
                         using P = decltype(p);
                         return [&] {
                           do_not_optimize(bignum_add<P>(a, b).carry_out);
                         };
                       });
                     }};
  r["primes"] = {4'000'000, [](const std::string& impl, std::size_t n,
                               const options& opt) {
                   return dispatch_impl(impl, opt, [&, n](auto p) {
                     using P = decltype(p);
                     return [n] {
                       do_not_optimize(
                           primes<P>(static_cast<std::int64_t>(n)).size());
                     };
                   });
                 }};
  r["tokens"] = {16'000'000, [](const std::string& impl, std::size_t n,
                                const options& opt) {
                   auto t = text::random_words(n, 7.0);
                   return dispatch_impl(impl, opt, [&](auto p) {
                     using P = decltype(p);
                     return [&] { do_not_optimize(tokens<P>(t).count); };
                   });
                 }};
  r["grep"] = {16'000'000, [](const std::string& impl, std::size_t n,
                              const options& opt) {
                 auto t = text::random_lines(n);
                 return dispatch_impl(impl, opt, [&](auto p) {
                   using P = decltype(p);
                   return [&] {
                     do_not_optimize(grep<P>(t, "ab").matching_lines);
                   };
                 });
               }};
  r["integrate"] = {16'000'000, [](const std::string& impl, std::size_t n,
                                   const options& opt) {
                      return dispatch_impl(impl, opt, [n](auto p) {
                        using P = decltype(p);
                        return [n] { do_not_optimize(integrate<P>(n)); };
                      });
                    }};
  r["linearrec"] = {8'000'000, [](const std::string& impl, std::size_t n,
                                  const options& opt) {
                      auto coefs = linearrec_input(n);
                      return dispatch_impl(impl, opt, [&](auto p) {
                        using P = decltype(p);
                        return [&] {
                          do_not_optimize(linearrec<P>(coefs).size());
                        };
                      });
                    }};
  r["linefit"] = {8'000'000, [](const std::string& impl, std::size_t n,
                                const options& opt) {
                    auto pts = linefit_input(n);
                    return dispatch_impl(impl, opt, [&](auto p) {
                      using P = decltype(p);
                      return [&] {
                        do_not_optimize(linefit<P>(pts).slope);
                      };
                    });
                  }};
  r["mcss"] = {16'000'000, [](const std::string& impl, std::size_t n,
                              const options& opt) {
                 auto a = mcss_input(n);
                 return dispatch_impl(impl, opt, [&](auto p) {
                   using P = decltype(p);
                   return [&] { do_not_optimize(mcss<P>(a)); };
                 });
               }};
  r["quickhull"] = {1'000'000, [](const std::string& impl, std::size_t n,
                                  const options& opt) {
                      auto pts = geom::points_in_disk(n);
                      return dispatch_impl(impl, opt, [&](auto p) {
                        using P = decltype(p);
                        return [&] { do_not_optimize(quickhull<P>(pts)); };
                      });
                    }};
  r["sparse-mxv"] = {8'000'000, [](const std::string& impl, std::size_t n,
                                   const options& opt) {
                       std::size_t rows = n / 100 + 1;
                       auto m = spmv_input(rows, 100);
                       auto x = spmv_vector(rows);
                       return dispatch_impl(impl, opt, [&](auto p) {
                         using P = decltype(p);
                         return [&] {
                           do_not_optimize(spmv<P>(m, x).size());
                         };
                       });
                     }};
  r["wc"] = {16'000'000, [](const std::string& impl, std::size_t n,
                            const options& opt) {
               auto t = text::random_lines(n);
               return dispatch_impl(impl, opt, [&](auto p) {
                 using P = decltype(p);
                 return [&] { do_not_optimize(wc<P>(t).words); };
               });
             }};
  r["inv-index"] = {16'000'000, [](const std::string& impl, std::size_t n,
                                   const options& opt) {
                      auto t = text::random_lines(n, 60.0, 8.0);
                      return dispatch_impl(impl, opt, [&](auto p) {
                        using P = decltype(p);
                        return [&] {
                          do_not_optimize(build_index<P>(t)[0].postings);
                        };
                      });
                    }};
  r["raycast"] = {20'000, [](const std::string& impl, std::size_t n,
                             const options& opt) {
                    auto tris = geom::random_triangles(2'000);
                    auto rays = geom::random_rays(n);
                    return dispatch_impl(impl, opt, [&](auto p) {
                      using P = decltype(p);
                      return [&] {
                        do_not_optimize(raycast<P>(rays, tris).size());
                      };
                    });
                  }};
  return r;
}

cli parse_cli(int argc, char** argv) {
  cli c;
  namespace bd = pbds::bench_common::detail;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  // The artifact-style -repeat/-warmup aliases are collected here and
  // applied *after* options::parse builds c.opt from the passthrough
  // flags, so they are not overwritten.
  int repeat_override = -1;
  double warmup_override = -1;
  for (int i = 1; i < argc; ++i) {
    auto is = [&](const char* f) { return std::strcmp(argv[i], f) == 0; };
    if (is("--bench")) {
      c.bench = bd::require_value("--bench", i, argc, argv);
    } else if (is("--impl")) {
      c.impl = bd::require_value("--impl", i, argc, argv);
    } else if (is("-n")) {
      c.n = static_cast<std::size_t>(bd::parse_long_arg(
          "-n", bd::require_value("-n", i, argc, argv), 1,
          std::numeric_limits<long>::max()));
    } else if (is("-repeat")) {
      repeat_override = static_cast<int>(bd::parse_long_arg(
          "-repeat", bd::require_value("-repeat", i, argc, argv), 1,
          1000000));
    } else if (is("-warmup")) {
      warmup_override = bd::parse_double_arg(
          "-warmup", bd::require_value("-warmup", i, argc, argv), 0.0,
          /*inclusive=*/true);
    } else if (is("--json")) {
      c.json_path = bd::require_value("--json", i, argc, argv);
    } else if (is("--service")) {
      c.service = true;
    } else if (is("--verify-overhead")) {
      c.verify_overhead = true;
    } else if (is("--metrics")) {
      c.metrics = true;
    } else if (is("--metrics-overhead")) {
      c.metrics_overhead = true;
    } else if (is("--isolate")) {
      c.isolate = true;
    } else if (is("--timeout")) {
      c.timeout_sec = bd::parse_double_arg(
          "--timeout", bd::require_value("--timeout", i, argc, argv), 0.0,
          /*inclusive=*/false);
    } else if (is("--retries")) {
      c.retries = static_cast<int>(bd::parse_long_arg(
          "--retries", bd::require_value("--retries", i, argc, argv), 0,
          100));
    } else if (is("--baseline")) {
      c.baseline_path = bd::require_value("--baseline", i, argc, argv);
    } else if (is("--threshold")) {
      c.threshold = bd::parse_double_arg(
          "--threshold", bd::require_value("--threshold", i, argc, argv),
          0.0, /*inclusive=*/true);
    } else if (is("--bytes-threshold")) {
      // Any negative value disables the bytes rail; parse by hand since
      // parse_double_arg only does lower bounds.
      const char* text =
          bd::require_value("--bytes-threshold", i, argc, argv);
      char* end = nullptr;
      errno = 0;
      c.bytes_threshold = std::strtod(text, &end);
      if (end == text || *end != '\0' || errno == ERANGE ||
          c.bytes_threshold != c.bytes_threshold) {
        std::fprintf(stderr,
                     "error: invalid value '%s' for --bytes-threshold\n",
                     text);
        std::exit(2);
      }
    } else if (is("--inject-slowdown")) {
      c.inject_slowdown = bd::parse_double_arg(
          "--inject-slowdown",
          bd::require_value("--inject-slowdown", i, argc, argv), 0.0,
          /*inclusive=*/false);
    } else if (is("--list")) {
      for (const auto& [name, e] : registry()) {
        std::printf("%-12s (default n = %zu)\n", name.c_str(), e.default_n);
      }
      std::exit(0);
    } else if (is("--help") || is("-h")) {
      std::printf(
          "usage: %s [--bench NAME|all] [--impl array|rad|delay|all]\n"
          "          [-n SIZE] [-repeat R] [-warmup SECONDS] [--list]\n"
          "          [--json PATH] [--isolate] [--timeout SECONDS]\n"
          "          [--retries N] [--service] [--verify-overhead]\n"
          "          [--metrics] [--metrics-overhead]\n"
          "          [--baseline REPORT.json] [--threshold X]\n"
          "          [--bytes-threshold X] [--inject-slowdown F]\n"
          "--service runs the pipeline-service overload soak (configured\n"
          "via PBDS_SERVICE_*; see bench/service_soak.cpp for the\n"
          "standalone driver with per-knob flags)\n"
          "--verify-overhead times the same contiguous checkpointed\n"
          "kernels with digest-on-complete enabled vs disabled and\n"
          "records the ratio (the integrity tax DESIGN.md documents)\n"
          "--metrics dumps the telemetry registry (counters + latency\n"
          "percentiles) after the run, into the --json extras when set\n"
          "--metrics-overhead A/Bs the metrics-recording cost (registry\n"
          "on vs off) on a fused-reduce and a service-soak kernel and\n"
          "records overhead_ratio (CI gates it at 1.05)\n"
          "--baseline replays every ok row of a committed --json report at\n"
          "its recorded n and exits 1 if any fresh median exceeds\n"
          "baseline*(1+--threshold) or allocated bytes exceed\n"
          "baseline*(1+--bytes-threshold); negative --bytes-threshold\n"
          "disables the bytes check. --inject-slowdown F multiplies the\n"
          "fresh medians first (comparator self-test: 2 must fail).\n",
          argv[0]);
      std::exit(0);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // Remaining flags (e.g. --scale) go to the common parser.
  c.opt = options::parse(static_cast<int>(passthrough.size()),
                         passthrough.data());
  if (repeat_override >= 0) c.opt.repeat = repeat_override;
  if (warmup_override >= 0) c.opt.warmup = warmup_override;
  return c;
}

// --- perf-regression mode (--baseline) ----------------------------------------

// Replay every ok configuration recorded in the baseline report (at its
// recorded n, honoring --bench/--impl filters), always in forked children
// (the parent never starts the pool), and compare the fresh medians and
// allocated bytes under the thresholds. Exit codes: 0 no regression, 1
// regression, 3 baseline unreadable or a replay failed to produce a
// measurement.
int run_baseline_mode(const cli& c) {
  std::vector<baseline_entry> base;
  std::string err;
  if (!load_report(c.baseline_path, base, err)) {
    std::fprintf(stderr, "pbdsbench: %s\n", err.c_str());
    return 3;
  }
  auto reg = registry();
  std::vector<regression> regs;
  int replayed = 0;
  int skipped = 0;
  int failed = 0;
  std::printf("comparing against %s (threshold %.0f%%, bytes %s)\n",
              c.baseline_path.c_str(), c.threshold * 100,
              c.bytes_threshold < 0
                  ? "off"
                  : (std::to_string(c.bytes_threshold * 100) + "%").c_str());
  if (c.inject_slowdown != 1.0)
    std::printf("inject-slowdown: fresh medians multiplied by %.3g\n",
                c.inject_slowdown);
  std::printf("%-12s %-6s %12s %12s %12s %7s\n", "benchmark", "impl", "n",
              "base med(s)", "fresh med(s)", "ratio");
  for (const auto& b : base) {
    bool known_impl =
        b.config == "array" || b.config == "rad" || b.config == "delay";
    if (b.status != "ok" || !reg.count(b.name) || !known_impl ||
        (c.bench != "all" && b.name != c.bench) ||
        (c.impl != "all" && b.config != c.impl)) {
      ++skipped;
      continue;
    }
    std::size_t n = b.has("n") ? static_cast<std::size_t>(b.num("n"))
                               : reg.at(b.name).default_n;
    auto r = run_isolated([&] { return reg.at(b.name).run(b.config, n,
                                                          c.opt); },
                          c.timeout_sec, c.retries);
    if (r.status != run_status::ok) {
      std::printf("%-12s %-6s %12zu %12s (%s after %d attempt%s)\n",
                  b.name.c_str(), b.config.c_str(), n, "-",
                  to_string(r.status), r.attempts,
                  r.attempts == 1 ? "" : "s");
      ++failed;
      continue;
    }
    double fresh = r.m.median_seconds * c.inject_slowdown;
    std::size_t before = regs.size();
    compare_against_baseline(b, fresh,
                             static_cast<double>(r.m.allocated_bytes),
                             c.threshold, c.bytes_threshold, regs);
    double base_med = b.median_seconds();
    std::printf("%-12s %-6s %12zu %12.4f %12.4f %7.2f%s\n", b.name.c_str(),
                b.config.c_str(), n, base_med, fresh,
                base_med == 0 ? 0 : fresh / base_med,
                regs.size() > before ? "  REGRESSION" : "");
    std::fflush(stdout);
    ++replayed;
  }
  for (const auto& g : regs) {
    std::fprintf(stderr,
                 "REGRESSION %s/%s %s: %.6g vs baseline %.6g "
                 "(%.2fx, threshold +%.0f%%)\n",
                 g.name.c_str(), g.config.c_str(), g.metric.c_str(),
                 g.current, g.baseline, g.ratio(), g.threshold * 100);
  }
  std::printf("replayed %d, skipped %d, failed %d, regressions %zu\n",
              replayed, skipped, failed, regs.size());
  if (failed > 0) return 3;
  if (replayed == 0) {
    std::fprintf(stderr,
                 "pbdsbench: baseline contained no replayable rows\n");
    return 3;
  }
  return regs.empty() ? 0 : 1;
}

// --- integrity-overhead mode (--verify-overhead) -------------------------------

// Times identical contiguous checkpointed kernels with digest-on-complete
// enabled vs disabled — a fresh checkpoint per iteration, so every run pays
// full materialization plus digest, never salvage. Two shapes bracket the
// tax: `copy` re-materializes an existing parray (bandwidth-bound, the
// worst case for a digest that re-reads every completed block) and
// `map.iota` computes each element (the common pipeline case). The ratio
// lands in the JSON extras so CI can track it against the bound DESIGN.md
// documents for contiguous kernels.
int run_verify_overhead(const cli& c) {
  const std::size_t n = c.n ? c.n : c.opt.scaled(std::size_t{1} << 24);
  auto src = parray<std::uint64_t>::tabulate(n, [](std::size_t i) {
    return static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull;
  });
  struct shape {
    const char* name;
    std::function<void()> run;
  };
  std::vector<shape> shapes;
  shapes.push_back({"copy", [&] {
                      recovery::job_checkpoint ck;
                      do_not_optimize(
                          recovery::to_array(src, ck.slot<std::uint64_t>(0))
                              .size());
                    }});
  shapes.push_back({"map.iota", [&, n] {
                      recovery::job_checkpoint ck;
                      auto xs = delayed::map(
                          [](std::size_t i) {
                            return static_cast<std::uint64_t>(i) *
                                   (i ^ 0x9e37u);
                          },
                          delayed::iota(n));
                      do_not_optimize(
                          recovery::to_array(xs, ck.slot<std::uint64_t>(0))
                              .size());
                    }});
  // Representative checkpointed-job shape: real per-element work (a few
  // mix rounds, ~integrate/raycast cost class). copy/map.iota above are
  // the adversarial floor — almost no compute per byte materialized, so
  // the digest pass is maximally visible.
  shapes.push_back({"compute", [&, n] {
                      recovery::job_checkpoint ck;
                      auto xs = delayed::map(
                          [](std::size_t i) {
                            std::uint64_t z = i + 0x9e3779b97f4a7c15ull;
                            for (int r = 0; r < 8; ++r) {
                              z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
                              z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
                            }
                            return z ^ (z >> 31);
                          },
                          delayed::iota(n));
                      do_not_optimize(
                          recovery::to_array(xs, ck.slot<std::uint64_t>(0))
                              .size());
                    }});
  std::unique_ptr<json_report> report;
  if (!c.json_path.empty())
    report = std::make_unique<json_report>(c.json_path);
  std::printf("%-24s %12s %12s %12s %9s\n", "kernel", "n", "verify(s)",
              "noverify(s)", "overhead");
  for (const auto& s : shapes) {
    // Interleave verify-on/verify-off runs (alternating order each pair)
    // rather than timing two separate batches: the ratio is a few percent,
    // and machine-load drift between batches would swamp it.
    auto time_one = [&](bool verify) {
      integrity::scoped_verify_resume v(verify);
      auto t0 = std::chrono::steady_clock::now();
      s.run();
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    };
    using clock = std::chrono::steady_clock;
    auto deadline =
        clock::now() + std::chrono::duration<double>(c.opt.warmup);
    do {
      (void)time_one(true);
      (void)time_one(false);
    } while (clock::now() < deadline);
    std::vector<double> ons, offs;
    for (int r = 0; r < c.opt.repeat; ++r) {
      if (r % 2 == 0) {
        ons.push_back(time_one(true));
        offs.push_back(time_one(false));
      } else {
        offs.push_back(time_one(false));
        ons.push_back(time_one(true));
      }
    }
    auto median = [](std::vector<double>& xs) {
      std::sort(xs.begin(), xs.end());
      std::size_t mid = xs.size() / 2;
      return xs.size() % 2 == 1 ? xs[mid] : (xs[mid - 1] + xs[mid]) / 2.0;
    };
    double on_med = median(ons);
    double off_med = median(offs);
    double r = off_med > 0 ? on_med / off_med : 0.0;
    std::printf("%-24s %12zu %12.4f %12.4f %+8.2f%%\n", s.name, n, on_med,
                off_med, (r - 1.0) * 100);
    if (report) {
      measurement m{};
      m.seconds = on_med;
      m.median_seconds = on_med;
      report->add({std::string("verify-overhead.") + s.name, "delay",
                   run_status::ok, 1, m,
                   {{"n", static_cast<double>(n)},
                    {"verify_median_s", on_med},
                    {"noverify_median_s", off_med},
                    {"overhead_ratio", r}}});
    }
    std::fflush(stdout);
  }
  return report && !report->ok() ? 1 : 0;
}

// --- telemetry dump (--metrics) ------------------------------------------------

// Print every non-zero registry counter plus the latency-histogram
// percentiles, and (when a --json report is open) append one
// "telemetry" row whose extras carry the full counter set — the CI
// artifact a dashboard can scrape without parsing stdout.
void dump_metrics(json_report* report) {
  auto snap = telemetry::snapshot();
  std::printf("-- telemetry registry --\n");
  std::vector<std::pair<std::string, double>> extra;
  for (std::size_t i = 0; i < telemetry::kNumCounters; ++i) {
    auto cnt = static_cast<telemetry::counter>(i);
    std::uint64_t v = snap.get(cnt);
    if (v != 0)
      std::printf("%-22s %14llu\n", telemetry::counter_name(cnt),
                  static_cast<unsigned long long>(v));
    extra.emplace_back(std::string("metrics.") + telemetry::counter_name(cnt),
                       static_cast<double>(v));
  }
  for (std::size_t i = 0; i < telemetry::kNumHists; ++i) {
    auto h = static_cast<telemetry::hist>(i);
    const auto& hs = snap.get(h);
    if (hs.total != 0)
      std::printf("%-22s n=%llu p50<=%llu p99<=%llu\n",
                  telemetry::hist_name(h),
                  static_cast<unsigned long long>(hs.total),
                  static_cast<unsigned long long>(hs.p50()),
                  static_cast<unsigned long long>(hs.p99()));
    extra.emplace_back(std::string("metrics.") + telemetry::hist_name(h) +
                           ".count",
                       static_cast<double>(hs.total));
    extra.emplace_back(
        std::string("metrics.") + telemetry::hist_name(h) + ".p50",
        static_cast<double>(hs.p50()));
    extra.emplace_back(
        std::string("metrics.") + telemetry::hist_name(h) + ".p99",
        static_cast<double>(hs.p99()));
  }
  if (snap.bytes_live_peak != 0)
    std::printf("%-22s %14lld\n", "bytes_live_peak",
                static_cast<long long>(snap.bytes_live_peak));
  extra.emplace_back("metrics.bytes_live_peak",
                     static_cast<double>(snap.bytes_live_peak));
  std::fflush(stdout);
  if (report) {
    measurement m{};
    report->add({"telemetry", "delay", run_status::ok, 1, m, extra});
  }
}

// --- metrics-overhead mode (--metrics-overhead) --------------------------------

// Times identical kernels with the metrics registry enabled vs disabled
// (same interleaved A/B discipline as --verify-overhead, so machine-load
// drift cancels). Two kernels bracket the recording cost: a fused
// delayed map|reduce — the paper's hot path, where any per-block
// bookkeeping shows up directly — and a short pipeline-service soak,
// the instrumentation-dense path (every admit/retry/complete crosses the
// registry choke point). CI gates the ratio at 1.05.
int run_metrics_overhead(const cli& c) {
  const std::size_t n = c.n ? c.n : c.opt.scaled(std::size_t{1} << 24);
  struct shape {
    const char* name;
    std::function<void()> run;
  };
  std::vector<shape> shapes;
  shapes.push_back({"fused-reduce", [n] {
                      auto xs = delayed::map(
                          [](std::size_t i) {
                            std::uint64_t z = i + 0x9e3779b97f4a7c15ull;
                            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
                            return z ^ (z >> 27);
                          },
                          delayed::iota(n));
                      do_not_optimize(delayed::reduce(
                          [](std::uint64_t a, std::uint64_t b) {
                            return a + b;
                          },
                          std::uint64_t{0}, xs));
                    }});
  shapes.push_back({"service-soak", [&c] {
                      pbds::service::soak_config scfg;
                      scfg.service = pbds::service::service_config::from_env();
                      scfg.producers = 4;
                      scfg.jobs_per_producer = 32;
                      scfg.n = c.n ? c.n : (std::size_t{1} << 14);
                      auto r = pbds::service::run_soak(scfg);
                      do_not_optimize(r.stats.completed);
                    }});
  std::unique_ptr<json_report> report;
  if (!c.json_path.empty())
    report = std::make_unique<json_report>(c.json_path);
  std::printf("%-24s %12s %12s %12s %9s\n", "kernel", "n", "metrics(s)",
              "nometrics(s)", "overhead");
  int rc = 0;
  for (const auto& s : shapes) {
    auto time_one = [&](bool on) {
      telemetry::scoped_metrics g(on);
      auto t0 = std::chrono::steady_clock::now();
      s.run();
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    };
    using clock = std::chrono::steady_clock;
    auto deadline =
        clock::now() + std::chrono::duration<double>(c.opt.warmup);
    do {
      (void)time_one(true);
      (void)time_one(false);
    } while (clock::now() < deadline);
    std::vector<double> ons, offs;
    for (int r = 0; r < c.opt.repeat; ++r) {
      if (r % 2 == 0) {
        ons.push_back(time_one(true));
        offs.push_back(time_one(false));
      } else {
        offs.push_back(time_one(false));
        ons.push_back(time_one(true));
      }
    }
    auto median = [](std::vector<double>& xs) {
      std::sort(xs.begin(), xs.end());
      std::size_t mid = xs.size() / 2;
      return xs.size() % 2 == 1 ? xs[mid] : (xs[mid - 1] + xs[mid]) / 2.0;
    };
    double on_med = median(ons);
    double off_med = median(offs);
    double r = off_med > 0 ? on_med / off_med : 0.0;
    std::printf("%-24s %12zu %12.4f %12.4f %+8.2f%%\n", s.name, n, on_med,
                off_med, (r - 1.0) * 100);
    if (report) {
      measurement m{};
      m.seconds = on_med;
      m.median_seconds = on_med;
      report->add({std::string("metrics-overhead.") + s.name, "delay",
                   run_status::ok, 1, m,
                   {{"n", static_cast<double>(n)},
                    {"metrics_median_s", on_med},
                    {"nometrics_median_s", off_med},
                    {"overhead_ratio", r}}});
    }
    std::fflush(stdout);
  }
  if (report && !report->ok()) rc = 1;
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  cli c = parse_cli(argc, argv);

  if (!c.baseline_path.empty()) return run_baseline_mode(c);

  if (c.verify_overhead) return run_verify_overhead(c);

  if (c.metrics_overhead) return run_metrics_overhead(c);

  if (c.service) {
    // Pipeline-service overload soak: closed loop at whatever pressure
    // PBDS_SERVICE_* sets up. -n overrides the per-job pipeline size.
    pbds::service::soak_config scfg;
    scfg.service = pbds::service::service_config::from_env();
    scfg.resumable =
        pbds::detail::env_integer("PBDS_SERVICE_RESUMABLE", 0, 1, 0) == 1;
    if (c.n) scfg.n = c.n;
    auto r = pbds::service::run_soak(scfg);
    std::printf("%-12s %-6s %12zu %10.4f %12.1f jobs/s  shed %.3f  "
                "p99 %.2f ms  resumed %llu  salvaged %llu\n",
                "service-soak", "delay", scfg.n, r.seconds,
                r.throughput_jobs_per_s, r.shed_rate, r.p99_ms,
                static_cast<unsigned long long>(r.stats.resumed),
                static_cast<unsigned long long>(r.stats.blocks_salvaged));
    if (!c.json_path.empty()) {
      json_report report(c.json_path);
      measurement m{};
      m.seconds = r.seconds;
      report.add({"service-soak",
                  "delay",
                  run_status::ok,
                  1,
                  m,
                  {{"throughput_jobs_per_s", r.throughput_jobs_per_s},
                   {"shed_rate", r.shed_rate},
                   {"p50_ms", r.p50_ms},
                   {"p99_ms", r.p99_ms},
                   {"completed", static_cast<double>(r.stats.completed)},
                   {"breaker_trips",
                    static_cast<double>(r.stats.breaker_trips)},
                   {"resumed", static_cast<double>(r.stats.resumed)},
                   {"completed_after_resume",
                    static_cast<double>(r.stats.completed_after_resume)},
                   {"blocks_salvaged",
                    static_cast<double>(r.stats.blocks_salvaged)},
                   {"blocks_redone",
                    static_cast<double>(r.stats.blocks_redone)}}});
      if (c.metrics) dump_metrics(&report);
      if (!report.ok()) return 1;
    } else if (c.metrics) {
      dump_metrics(nullptr);
    }
    return 0;
  }

  auto reg = registry();
  std::vector<std::string> benches;
  if (c.bench == "all") {
    for (const auto& [name, e] : reg) benches.push_back(name);
  } else if (reg.count(c.bench)) {
    benches.push_back(c.bench);
  } else {
    std::fprintf(stderr, "unknown --bench '%s' (try --list)\n",
                 c.bench.c_str());
    return 2;
  }
  std::vector<std::string> impls =
      c.impl == "all" ? std::vector<std::string>{"array", "rad", "delay"}
                      : std::vector<std::string>{c.impl};

  std::unique_ptr<json_report> report;
  if (!c.json_path.empty())
    report = std::make_unique<json_report>(c.json_path);

  std::printf("%-12s %-6s %12s %10s %12s %12s\n", "benchmark", "impl", "n",
              "time(s)", "peak MB", "alloc MB/run");
  for (const auto& name : benches) {
    const auto& e = reg.at(name);
    std::size_t n = c.n ? c.n : c.opt.scaled(e.default_n);
    for (const auto& impl : impls) {
      if (c.isolate) {
        // One subprocess per configuration: input generation, warmup, and
        // timed runs all happen in the child, so this parent process never
        // starts the scheduler pool — the precondition for fork safety
        // (run_isolated's contract) — and a configuration that wedges,
        // crashes, or blows past the budget costs only its own row.
        auto r = run_isolated([&] { return e.run(impl, n, c.opt); },
                              c.timeout_sec, c.retries);
        if (r.status == run_status::ok) {
          std::printf("%-12s %-6s %12zu %10.4f %12.1f %12.1f\n",
                      name.c_str(), impl.c_str(), n, r.m.seconds,
                      mb(r.m.peak_bytes), mb(r.m.allocated_bytes));
        } else {
          std::printf("%-12s %-6s %12zu %10s (%s after %d attempt%s)\n",
                      name.c_str(), impl.c_str(), n, "-",
                      to_string(r.status), r.attempts,
                      r.attempts == 1 ? "" : "s");
        }
        // Record n so a later --baseline run replays this exact
        // configuration regardless of its own --scale/-n flags.
        if (report)
          report->add({name, impl, r.status, r.attempts, r.m,
                       {{"n", static_cast<double>(n)}}});
      } else {
        auto m = e.run(impl, n, c.opt);
        std::printf("%-12s %-6s %12zu %10.4f %12.1f %12.1f\n", name.c_str(),
                    impl.c_str(), n, m.seconds, mb(m.peak_bytes),
                    mb(m.allocated_bytes));
        if (report)
          report->add({name, impl, run_status::ok, 1, m,
                       {{"n", static_cast<double>(n)}}});
      }
      std::fflush(stdout);
    }
  }
  if (c.metrics) dump_metrics(report.get());
  return 0;
}
