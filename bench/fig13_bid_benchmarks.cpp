// Fig. 13 — benchmarks with BID improvement: bestcut, bfs, bignum-add,
// primes, tokens. For each, time and space under the three libraries
// (array A, rad R, delay Ours), with the R/Ours improvement ratios that
// isolate the benefit of the BID representation.
//
// Paper sizes are scaled down ~50x by default (see DESIGN.md §1); pass
// --scale to adjust. The machine section of EXPERIMENTS.md maps these
// numbers to the paper's.
#include <cstdio>

#include "bench_common/harness.hpp"
#include "benchmarks/bestcut.hpp"
#include "benchmarks/bfs.hpp"
#include "benchmarks/bignum_add.hpp"
#include "benchmarks/policies.hpp"
#include "benchmarks/primes.hpp"
#include "benchmarks/tokens.hpp"

namespace {

using namespace pbds;                // NOLINT
using namespace pbds::bench;         // NOLINT
using namespace pbds::bench_common;  // NOLINT

template <typename F>
void row(const char* name, const options& opt, const F& make_runner) {
  auto a = measure(make_runner(array_policy{}), opt);
  auto r = measure(make_runner(rad_policy{}), opt);
  auto d = measure(make_runner(delay_policy{}), opt);
  print_bid_row(name, a, r, d);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = pbds::bench_common::options::parse(argc, argv);
  std::printf("=== Fig. 13: benchmarks with BID improvement ===\n");
  std::printf("P = %u worker(s); sizes at scale %.3g of defaults\n\n",
              sched::num_workers(), opt.scale);
  print_bid_header();

  {
    auto events = bestcut_input(opt.scaled(4'000'000));
    row("bestcut", opt, [&](auto p) {
      using P = decltype(p);
      return [&] { do_not_optimize(bestcut<P>(events)); };
    });
  }
  {
    auto g = graph::rmat(18, opt.scaled(3'000'000));
    row("bfs", opt, [&](auto p) {
      using P = decltype(p);
      return [&] { do_not_optimize(bfs<P>(g, 0).size()); };
    });
  }
  {
    auto a = bignum::random_bignum(opt.scaled(8'000'000), 1);
    auto b = bignum::random_bignum(opt.scaled(8'000'000), 2);
    row("bignum-add", opt, [&](auto p) {
      using P = decltype(p);
      return [&] { do_not_optimize(bignum_add<P>(a, b).carry_out); };
    });
  }
  {
    auto n = static_cast<std::int64_t>(opt.scaled(4'000'000));
    row("primes", opt, [&](auto p) {
      using P = decltype(p);
      return [&, n] { do_not_optimize(primes<P>(n).size()); };
    });
  }
  {
    auto text_in = text::random_words(opt.scaled(16'000'000), 7.0);
    row("tokens", opt, [&](auto p) {
      using P = decltype(p);
      return [&] { do_not_optimize(tokens<P>(text_in).count); };
    });
  }

  std::printf(
      "\nExpected shape (paper, 72 cores; here P=%u): Ours <= R <= A in both\n"
      "time and space; R/Ours space ratios largest for bestcut and primes.\n",
      sched::num_workers());
  return 0;
}
