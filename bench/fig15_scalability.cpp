// Fig. 15 — speedup curves for bfs and primes: delay / rad / array across
// worker counts, speedups relative to 1-worker delay.
//
// On the paper's 72-core machine the delayed versions scale visibly better
// (reduced memory pressure); on a 1-core container (this repo's default
// environment, see DESIGN.md §1) the sweep degenerates to P=1 and the
// meaningful signal is the per-P ordering delay >= rad >= array. Pass
// --procs 1,2,4,... on a real multicore to reproduce the curves.
#include <cstdio>
#include <vector>

#include "bench_common/harness.hpp"
#include "benchmarks/bfs.hpp"
#include "benchmarks/policies.hpp"
#include "benchmarks/primes.hpp"

namespace {

using namespace pbds;                // NOLINT
using namespace pbds::bench;         // NOLINT
using namespace pbds::bench_common;  // NOLINT

struct series {
  const char* name;
  std::vector<double> delay, rad, array;  // seconds per P
};

template <typename F>
void sweep(series& s, const std::vector<unsigned>& procs, const options& opt,
           const F& make_runner) {
  for (unsigned p : procs) {
    sched::set_num_workers(p);
    s.delay.push_back(measure(make_runner(delay_policy{}), opt).seconds);
    s.rad.push_back(measure(make_runner(rad_policy{}), opt).seconds);
    s.array.push_back(measure(make_runner(array_policy{}), opt).seconds);
  }
}

void print_series(const series& s, const std::vector<unsigned>& procs) {
  std::printf("\n--- %s: speedup vs 1-proc delay (time in s) ---\n", s.name);
  std::printf("%6s | %10s %8s | %10s %8s | %10s %8s\n", "P", "delay(s)",
              "spd", "rad(s)", "spd", "array(s)", "spd");
  double base = s.delay[0];
  for (std::size_t i = 0; i < procs.size(); ++i) {
    std::printf("%6u | %10.4f %8.2f | %10.4f %8.2f | %10.4f %8.2f\n",
                procs[i], s.delay[i], base / s.delay[i], s.rad[i],
                base / s.rad[i], s.array[i], base / s.array[i]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = options::parse(argc, argv);
  std::vector<unsigned> procs = opt.procs;
  if (procs.empty()) {
    unsigned hw = sched::detail::default_num_workers();
    procs.push_back(1);
    for (unsigned p = 2; p <= hw; p *= 2) procs.push_back(p);
  }
  std::printf("=== Fig. 15: scalability (bfs, primes) ===\n");

  {
    auto g = graph::rmat(18, opt.scaled(3'000'000));
    series s{"bfs", {}, {}, {}};
    sweep(s, procs, opt, [&](auto p) {
      using P = decltype(p);
      return [&] { do_not_optimize(bfs<P>(g, 0).size()); };
    });
    print_series(s, procs);
  }
  {
    auto n = static_cast<std::int64_t>(opt.scaled(4'000'000));
    series s{"primes", {}, {}, {}};
    sweep(s, procs, opt, [&](auto p) {
      using P = decltype(p);
      return [&, n] { do_not_optimize(primes<P>(n).size()); };
    });
    print_series(s, procs);
  }

  sched::set_num_workers(sched::detail::default_num_workers());
  std::printf(
      "\nExpected shape (paper, 72 cores): delay scales best, then rad, then\n"
      "array; on a single-core host all speedups are ~1 and only the\n"
      "delay <= rad <= array time ordering is meaningful.\n");
  return 0;
}
