// Ablation — block size B_n for the delayed library (DESIGN.md §5).
//
// §4 says the definitions work for any block size; this sweep shows the
// performance tradeoff on the bestcut pipeline: tiny blocks pay per-block
// overhead (stream setup, partials), huge blocks lose parallel slack and
// cache residency of the partials. The paper's choice (constant ~ O(KB))
// sits on the flat middle of the curve.
#include <cstdio>
#include <vector>

#include "bench_common/harness.hpp"
#include "benchmarks/bestcut.hpp"
#include "benchmarks/policies.hpp"
#include "core/block.hpp"

int main(int argc, char** argv) {
  using namespace pbds;                // NOLINT
  using namespace pbds::bench;         // NOLINT
  using namespace pbds::bench_common;  // NOLINT
  auto opt = options::parse(argc, argv);

  std::size_t n = opt.scaled(4'000'000);
  auto events = bestcut_input(n);
  std::printf("=== Ablation: delay-library block size, bestcut n = %zu ===\n\n",
              n);
  std::printf("%12s %10s %14s\n", "block size", "T(s)", "peak space MB");
  std::printf("--------------------------------------\n");
  std::vector<std::size_t> sizes = {64,    256,    1024,   2048,
                                    8192,  65536,  524288, n / 2};
  for (std::size_t b : sizes) {
    scoped_block_size guard(b);
    auto m = measure(
        [&] { do_not_optimize(bestcut<delay_policy>(events)); }, opt);
    std::printf("%12zu %10.4f %14.1f\n", b, m.seconds, mb(m.peak_bytes));
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: flat optimum over a wide middle range; overheads at\n"
      "both extremes (per-block costs vs. partials footprint/parallel slack).\n");
  return 0;
}
