// §6's claim that "with our block-delayed sequences library, the C++
// benchmarks perform similarly to hand-optimized codes": compare the
// library pipelines against hand-written fused parallel loops (blocked
// loops with everything inlined by hand) for three RAD benchmarks. The
// delay/hand ratio should be close to 1.
#include <cmath>
#include <cstdio>

#include "bench_common/harness.hpp"
#include "benchmarks/integrate.hpp"
#include "benchmarks/linefit.hpp"
#include "benchmarks/mcss.hpp"
#include "benchmarks/policies.hpp"
#include "core/block.hpp"

namespace {

using namespace pbds;                // NOLINT
using namespace pbds::bench;         // NOLINT
using namespace pbds::bench_common;  // NOLINT

// Hand-written integrate: blocked parallel loop, no library.
double integrate_hand(std::size_t n, double lo = 1.0, double hi = 1000.0) {
  double dx = (hi - lo) / static_cast<double>(n);
  std::size_t blk = block_size();
  std::size_t nb = num_blocks_for(n, blk);
  auto sums = parray<double>::tabulate(
      nb,
      [&](std::size_t j) {
        std::size_t b0 = j * blk, b1 = std::min(n, b0 + blk);
        double acc = 0;
        for (std::size_t i = b0; i < b1; ++i) {
          double x = lo + (static_cast<double>(i) + 0.5) * dx;
          acc += std::sqrt(1.0 / x);
        }
        return acc;
      },
      1);
  double acc = 0;
  for (std::size_t j = 0; j < nb; ++j) acc += sums[j];
  return dx * acc;
}

// Hand-written mcss.
std::int64_t mcss_hand(const parray<std::int64_t>& a) {
  std::size_t n = a.size();
  std::size_t blk = block_size();
  std::size_t nb = num_blocks_for(n, blk);
  const std::int64_t* p = a.data();
  auto states = parray<mcss_state>::tabulate(
      nb,
      [&](std::size_t j) {
        std::size_t b0 = j * blk, b1 = std::min(n, b0 + blk);
        mcss_state acc = mcss_identity;
        for (std::size_t i = b0; i < b1; ++i)
          acc = mcss_combine(acc, mcss_embed(p[i]));
        return acc;
      },
      1);
  mcss_state acc = mcss_identity;
  for (std::size_t j = 0; j < nb; ++j) acc = mcss_combine(acc, states[j]);
  return acc.best;
}

// Hand-written linefit (two blocked passes).
line linefit_hand(const parray<geom::point2d>& pts) {
  std::size_t n = pts.size();
  std::size_t blk = block_size();
  std::size_t nb = num_blocks_for(n, blk);
  const geom::point2d* p = pts.data();
  auto pass = [&](auto fold) {
    auto partial = parray<std::pair<double, double>>::tabulate(
        nb,
        [&](std::size_t j) {
          std::size_t b0 = j * blk, b1 = std::min(n, b0 + blk);
          std::pair<double, double> acc{0, 0};
          for (std::size_t i = b0; i < b1; ++i) fold(acc, p[i]);
          return acc;
        },
        1);
    std::pair<double, double> acc{0, 0};
    for (std::size_t j = 0; j < nb; ++j) {
      acc.first += partial[j].first;
      acc.second += partial[j].second;
    }
    return acc;
  };
  auto sums = pass([](std::pair<double, double>& acc, const geom::point2d& q) {
    acc.first += q.x;
    acc.second += q.y;
  });
  double mx = sums.first / static_cast<double>(n);
  double my = sums.second / static_cast<double>(n);
  auto moments =
      pass([mx, my](std::pair<double, double>& acc, const geom::point2d& q) {
        acc.first += (q.x - mx) * (q.x - mx);
        acc.second += (q.x - mx) * (q.y - my);
      });
  double slope = moments.first == 0 ? 0 : moments.second / moments.first;
  return line{slope, my - slope * mx};
}

void report(const char* name, const measurement& hand,
            const measurement& lib) {
  std::printf("%-10s | hand %8.4fs | delay %8.4fs | delay/hand %5.2f\n",
              name, hand.seconds, lib.seconds,
              ratio(lib.seconds, hand.seconds));
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = options::parse(argc, argv);
  std::printf("=== Library vs hand-optimized fused loops (§6 claim) ===\n\n");
  {
    std::size_t n = opt.scaled(16'000'000);
    auto hand = measure([&] { do_not_optimize(integrate_hand(n)); }, opt);
    auto lib = measure(
        [&] { do_not_optimize(integrate<delay_policy>(n)); }, opt);
    report("integrate", hand, lib);
  }
  {
    auto a = mcss_input(opt.scaled(16'000'000));
    auto hand = measure([&] { do_not_optimize(mcss_hand(a)); }, opt);
    auto lib = measure(
        [&] { do_not_optimize(mcss<delay_policy>(a)); }, opt);
    report("mcss", hand, lib);
  }
  {
    auto pts = linefit_input(opt.scaled(8'000'000));
    auto hand = measure([&] { do_not_optimize(linefit_hand(pts).slope); },
                        opt);
    auto lib = measure(
        [&] { do_not_optimize(linefit<delay_policy>(pts).slope); }, opt);
    report("linefit", hand, lib);
  }
  std::printf(
      "\nExpected shape: delay/hand close to 1 — the compiler inlines the\n"
      "composed index functions and streams down to the hand-written loop.\n");
  return 0;
}
