// Stream-layer microbenchmarks (google-benchmark): the §4.4 claim at its
// lowest level — a deeply nested stream composition must run at the speed
// of the equivalent hand-written loop, because the whole nested template
// type inlines. Each pair below is (hand loop, stream pipeline) over the
// same computation.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "array/parray.hpp"
#include "stream/streams.hpp"

namespace {

namespace st = pbds::stream;
using pbds::parray;

constexpr std::size_t kN = 1 << 20;

const parray<std::int64_t>& input() {
  static auto a = parray<std::int64_t>::tabulate(kN, [](std::size_t i) {
    return static_cast<std::int64_t>((i * 40503u) % 1024);
  });
  return a;
}

void bm_hand_map_scan_reduce(benchmark::State& state) {
  const auto& a = input();
  for (auto _ : state) {
    std::int64_t acc = 0, best = 0;
    const std::int64_t* p = a.data();
    for (std::size_t i = 0; i < kN; ++i) {
      std::int64_t mapped = p[i] * 3 + 1;
      best = best > acc ? best : acc;  // consume the exclusive prefix
      acc += mapped;
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kN) * state.iterations());
}

void bm_stream_map_scan_reduce(benchmark::State& state) {
  const auto& a = input();
  for (auto _ : state) {
    const std::int64_t* p = a.data();
    auto pipeline = st::scan_stream{
        st::map_stream{st::pointer_stream<std::int64_t>{p},
                       [](std::int64_t x) { return x * 3 + 1; }},
        [](std::int64_t x, std::int64_t y) { return x + y; },
        std::int64_t{0}};
    std::int64_t best = st::reduce(
        pipeline, kN,
        [](std::int64_t x, std::int64_t y) { return x > y ? x : y; },
        std::int64_t{0});
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kN) * state.iterations());
}

void bm_hand_zip_map_reduce(benchmark::State& state) {
  const auto& a = input();
  for (auto _ : state) {
    const std::int64_t* p = a.data();
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < kN; ++i) {
      acc += p[i] ^ static_cast<std::int64_t>(i);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kN) * state.iterations());
}

void bm_stream_zip_map_reduce(benchmark::State& state) {
  const auto& a = input();
  for (auto _ : state) {
    const std::int64_t* p = a.data();
    auto pipeline = st::map_stream{
        st::zip_stream{
            st::pointer_stream<std::int64_t>{p},
            st::tabulate_stream{[](std::size_t i) { return i; },
                                std::size_t{0}}},
        [](const std::pair<std::int64_t, std::size_t>& xi) {
          return xi.first ^ static_cast<std::int64_t>(xi.second);
        }};
    std::int64_t acc = st::reduce(
        pipeline, kN, [](std::int64_t x, std::int64_t y) { return x + y; },
        std::int64_t{0});
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kN) * state.iterations());
}

BENCHMARK(bm_hand_map_scan_reduce)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_stream_map_scan_reduce)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_hand_zip_map_reduce)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_stream_zip_map_reduce)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
