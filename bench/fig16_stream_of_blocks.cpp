// Fig. 16 — stream-of-blocks vs blocks-of-streams (§6.5): times of the
// stream-of-blocks bestcut across block sizes, compared against the
// array-based (A) and block-delayed (Ours) versions.
//
// The paper's shape: SOB is never better than A, is >= 3.7x slower than
// Ours, and improves toward A as the block size grows (per-block
// synchronization amortizes away, but so does any fusion benefit).
#include <cstdio>
#include <vector>

#include "bench_common/harness.hpp"
#include "benchmarks/bestcut.hpp"
#include "benchmarks/bestcut_sob.hpp"
#include "benchmarks/policies.hpp"

int main(int argc, char** argv) {
  using namespace pbds;                // NOLINT
  using namespace pbds::bench;         // NOLINT
  using namespace pbds::bench_common;  // NOLINT
  auto opt = options::parse(argc, argv);

  std::size_t n = opt.scaled(4'000'000);
  auto events = bestcut_input(n);

  std::printf("=== Fig. 16: stream-of-blocks bestcut, n = %zu, P = %u ===\n\n",
              n, sched::num_workers());

  auto a = measure(
      [&] { do_not_optimize(bestcut<array_policy>(events)); }, opt);
  auto ours = measure(
      [&] { do_not_optimize(bestcut<delay_policy>(events)); }, opt);

  // Paper block sizes 1e5..1e8 on 200M elements; same proportions here.
  std::vector<std::size_t> blocks = {n / 2000, n / 200, n / 20, n / 2};
  std::printf("%12s %10s %8s %8s\n", "block size", "T(s)", "T/A", "T/Ours");
  std::printf("------------------------------------------\n");
  for (std::size_t b : blocks) {
    auto sob = measure([&] { do_not_optimize(bestcut_sob(events, b)); }, opt);
    std::printf("%12zu %10.4f %8.2f %8.2f\n", b, sob.seconds,
                ratio(sob.seconds, a.seconds),
                ratio(sob.seconds, ours.seconds));
    std::fflush(stdout);
  }
  std::printf("\n(reference: A = %.4fs, Ours = %.4fs)\n", a.seconds,
              ours.seconds);
  std::printf(
      "Expected shape (paper, 72 cores): T/A >= 1 for all block sizes,\n"
      "approaching 1 as blocks grow; T/Ours >= ~3.7. NOTE: at P = 1 the\n"
      "stream-of-blocks approach pays no synchronization penalty and acts\n"
      "as sequential fusion, so T/A < 1 there; the paper's shape is about\n"
      "multicore sync costs. The robust single-core signal is T/Ours > 1:\n"
      "blocks-of-streams fuses strictly more than stream-of-blocks.\n");
  return 0;
}
