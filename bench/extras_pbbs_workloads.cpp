// Extras — inverted index construction (§1 mentions inverted indices among
// the PBBS workloads improved by block-delayed sequences). A / R / Ours
// comparison in the Fig. 13 format.
#include <cstdio>

#include "bench_common/harness.hpp"
#include "benchmarks/inverted_index.hpp"
#include "benchmarks/raycast.hpp"
#include "benchmarks/policies.hpp"

int main(int argc, char** argv) {
  using namespace pbds;                // NOLINT
  using namespace pbds::bench;         // NOLINT
  using namespace pbds::bench_common;  // NOLINT
  auto opt = options::parse(argc, argv);

  auto corpus = text::random_lines(opt.scaled(16'000'000), 60.0, 8.0);
  std::printf("=== Extras: inverted index over %zu chars, P = %u ===\n\n",
              corpus.size(), sched::num_workers());
  print_bid_header();
  auto run = [&](auto p) {
    using P = decltype(p);
    return [&] { do_not_optimize(build_index<P>(corpus)[0].postings); };
  };
  auto a = measure(run(array_policy{}), opt);
  auto r = measure(run(rad_policy{}), opt);
  auto d = measure(run(delay_policy{}), opt);
  print_bid_row("inv-index", a, r, d);

  // raycast: the §1 ray-triangle intersection workload (nested fusion).
  auto tris = geom::random_triangles(opt.scaled(2'000));
  auto rays = geom::random_rays(opt.scaled(20'000));
  auto run_rc = [&](auto p) {
    using P = decltype(p);
    return [&] { do_not_optimize(raycast<P>(rays, tris).size()); };
  };
  auto rca = measure(run_rc(array_policy{}), opt);
  auto rcr = measure(run_rc(rad_policy{}), opt);
  auto rcd = measure(run_rc(delay_policy{}), opt);
  print_bid_row("raycast", rca, rcr, rcd);
  std::printf(
      "\nExpected shape: same as the Fig. 13 BID benchmarks — Ours <= R <= A\n"
      "in time and space (the posting stream and docid scan never\n"
      "materialize under BID fusion).\n");
  return 0;
}
