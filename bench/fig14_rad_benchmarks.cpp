// Fig. 14 — benchmarks with RAD-only improvement: grep, integrate,
// linearrec, linefit, mcss, quickhull, sparse-mxv, wc. For each, time and
// space under the array baseline (A) and the full delayed library (Ours),
// with A/Ours ratios. Includes the §6.2 memory-bandwidth readout for
// linefit (bytes moved / second).
#include <cstdio>

#include "bench_common/harness.hpp"
#include "benchmarks/grep.hpp"
#include "benchmarks/integrate.hpp"
#include "benchmarks/linearrec.hpp"
#include "benchmarks/linefit.hpp"
#include "benchmarks/mcss.hpp"
#include "benchmarks/policies.hpp"
#include "benchmarks/quickhull.hpp"
#include "benchmarks/spmv.hpp"
#include "benchmarks/wc.hpp"

namespace {

using namespace pbds;                // NOLINT
using namespace pbds::bench;         // NOLINT
using namespace pbds::bench_common;  // NOLINT

template <typename F>
std::pair<measurement, measurement> row(const char* name, const options& opt,
                                        const F& make_runner) {
  auto a = measure(make_runner(array_policy{}), opt);
  auto d = measure(make_runner(delay_policy{}), opt);
  print_rad_row(name, a, d);
  std::fflush(stdout);
  return {a, d};
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = pbds::bench_common::options::parse(argc, argv);
  std::printf("=== Fig. 14: benchmarks with RAD-only improvement ===\n");
  std::printf("P = %u worker(s); sizes at scale %.3g of defaults\n\n",
              sched::num_workers(), opt.scale);
  print_rad_header();

  {
    auto t = text::random_lines(opt.scaled(16'000'000));
    row("grep", opt, [&](auto p) {
      using P = decltype(p);
      return [&] { do_not_optimize(grep<P>(t, "ab").matching_lines); };
    });
  }
  {
    std::size_t n = opt.scaled(16'000'000);
    row("integrate", opt, [&](auto p) {
      using P = decltype(p);
      return [&, n] { do_not_optimize(integrate<P>(n)); };
    });
  }
  {
    auto coefs = linearrec_input(opt.scaled(8'000'000));
    row("linearrec", opt, [&](auto p) {
      using P = decltype(p);
      return [&] { do_not_optimize(linearrec<P>(coefs).size()); };
    });
  }
  {
    auto pts = linefit_input(opt.scaled(8'000'000));
    auto [a, d] = row("linefit", opt, [&](auto p) {
      using P = decltype(p);
      return [&] { do_not_optimize(linefit<P>(pts).slope); };
    });
    // §6.2: linefit reads the input twice; 16 bytes/point.
    double bytes =
        2.0 * 16.0 * static_cast<double>(pts.size());
    std::printf(
        "  [linefit bandwidth: A %.2f GB/s effective, Ours %.2f GB/s "
        "(2 passes x 16 B/point)]\n",
        bytes / a.seconds / 1e9, bytes / d.seconds / 1e9);
  }
  {
    auto a_in = mcss_input(opt.scaled(16'000'000));
    row("mcss", opt, [&](auto p) {
      using P = decltype(p);
      return [&] { do_not_optimize(mcss<P>(a_in)); };
    });
  }
  {
    auto pts = geom::points_in_disk(opt.scaled(1'000'000));
    row("quickhull", opt, [&](auto p) {
      using P = decltype(p);
      return [&] { do_not_optimize(quickhull<P>(pts)); };
    });
  }
  {
    std::size_t rows_n = opt.scaled(80'000);
    auto m = spmv_input(rows_n, 100);
    auto x = spmv_vector(rows_n);
    row("sparse-mxv", opt, [&](auto p) {
      using P = decltype(p);
      return [&] { do_not_optimize(spmv<P>(m, x).size()); };
    });
  }
  {
    auto t = text::random_lines(opt.scaled(16'000'000));
    row("wc", opt, [&](auto p) {
      using P = decltype(p);
      return [&] { do_not_optimize(wc<P>(t).words); };
    });
  }

  std::printf(
      "\nExpected shape (paper): Ours faster than A everywhere (1x-19x, most\n"
      "~2-5x at scale); space ratios largest for integrate (~250x at P=1)\n"
      "and wc (~16x); sparse-mxv space ratio ~1 (tiny inner arrays, §6.2).\n");
  return 0;
}
