// Fig. 11 — the cost-semantics table, evaluated concretely.
//
// The paper's Fig. 11 gives each operation's eager (work, span, alloc) and
// the delayed costs it installs on its output. This bench evaluates the
// executable model (src/cost) for a concrete n and block size and prints
// the table, so the asymptotic rows can be read as numbers: e.g. scan's
// eager allocation is |X|/B, visible here as exactly n/B partials.
#include <cstdio>

#include "core/block.hpp"
#include "cost/cost.hpp"

namespace {

using namespace pbds::cost;  // NOLINT

void print_row(const char* name, const char* repr_s, const costs& eager,
               const costs& delayed_per_elem) {
  std::printf("%-22s | %4s | %12.0f %10.0f %12.0f | %8.1f %8.1f %8.1f\n",
              name, repr_s, eager.work, eager.span, eager.alloc,
              delayed_per_elem.work, delayed_per_elem.span,
              delayed_per_elem.alloc);
}

}  // namespace

int main() {
  std::size_t n = 1'000'000;
  std::size_t B = pbds::block_size();
  std::printf("=== Fig. 11: cost semantics, evaluated at n = %zu, B = %zu ===\n\n",
              n, B);
  std::printf("%-22s | repr | %12s %10s %12s | %8s %8s %8s\n", "operation",
              "eager W", "eager S", "eager A", "W*/i", "S*/i", "A*/i");
  std::printf("%.*s\n", 108,
              "------------------------------------------------------------"
              "------------------------------------------------");

  {  // tabulate n f
    cost_meter m;
    auto y = tabulate(m, n);
    print_row("tabulate n f", "RAD", m.total(), y.delayed(0));
  }
  {  // map f X (X a fresh tabulate)
    cost_meter mk;
    auto x = tabulate(mk, n);
    cost_meter m;
    auto y = map(m, x);
    print_row("map f X", "RAD", m.total(), y.delayed(0));
  }
  {  // force X
    cost_meter mk;
    auto x = map(mk, tabulate(mk, n));
    cost_meter m;
    auto y = force(m, x);
    print_row("force X", "RAD", m.total(), y.delayed(0));
  }
  {  // filter p X, 10% survivors
    cost_meter mk;
    auto x = tabulate(mk, n);
    cost_meter m;
    auto y = filter(m, x, n / 10);
    print_row("filter p X (|Y|=n/10)", "BID", m.total(), y.delayed(0));
  }
  {  // flatten X (outer n/100 inners of 100)
    cost_meter mk;
    auto outer = tabulate(mk, n / 100);
    cost_meter m;
    auto y = flatten(m, outer, n, constant_delayed(kUnit));
    print_row("flatten X (n/100 x100)", "BID", m.total(), y.delayed(0));
  }
  {  // scan f z X
    cost_meter mk;
    auto x = tabulate(mk, n);
    cost_meter m;
    auto y = scan(m, x);
    print_row("scan f z X", "BID", m.total(), y.delayed(0));
  }
  {  // reduce f z X
    cost_meter mk;
    auto x = tabulate(mk, n);
    cost_meter m;
    reduce(m, x);
    print_row("reduce f z X", "-", m.total(), costs{0, 0, 0});
  }

  std::printf(
      "\nReadings to check against the paper's Fig. 11:\n"
      "  * tabulate/map: eager O(1), costs pushed into the delayed columns;\n"
      "  * force: eager W = sum of delayed work, A = |X| + delayed allocs;\n"
      "  * filter: eager A = |Y| + |X|/B = %zu;\n"
      "  * scan/reduce: eager A = |X|/B = %zu, span has the log-|X| term;\n"
      "  * scan output carries +1 delayed cost per element (phase 3).\n",
      n / 10 + n / B, n / B);
  return 0;
}
