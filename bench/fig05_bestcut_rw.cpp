// Fig. 5 — the read/write accounting for the best-cut pipeline (map ->
// scan(3 phases) -> map -> reduce), normal vs fused, from the analytic
// model in src/cost/rw_model.hpp. Also prints the §3 forced-map variant
// (4n + O(b)) and cross-checks the totals against the closed forms the
// paper states (8n + O(b) normal, 2n + O(b) fused).
#include <cstdio>
#include <string>

#include "core/block.hpp"
#include "cost/rw_model.hpp"

int main() {
  using namespace pbds::cost;  // NOLINT
  double n = 200e6;  // the paper's bestcut input size
  double b = n / static_cast<double>(pbds::block_size());

  std::printf("=== Fig. 5: best-cut reads/writes, n = %.0f, b = %.0f ===\n\n",
              n, b);
  std::printf("%-14s | %12s %12s | %12s %12s\n", "operation", "normal R",
              "normal W", "fused R", "fused W");
  std::printf("%.*s\n", 72,
              "------------------------------------------------------------"
              "------------");
  auto rows = bestcut_rw_table(n, b);
  for (const auto& r : rows) {
    std::printf("%-14s | %12.0f %12.0f | %12.0f %12.0f\n",
                std::string(r.op).c_str(), r.normal.reads, r.normal.writes,
                r.fused.reads, r.fused.writes);
  }
  rw tn = rw_total(rows, /*fused=*/false);
  rw tf = rw_total(rows, /*fused=*/true);
  rw forced = bestcut_rw_forced(n, b);
  std::printf("%.*s\n", 72,
              "------------------------------------------------------------"
              "------------");
  std::printf("%-14s | %25.0f | %25.0f\n", "total (R+W)", tn.total(),
              tf.total());
  std::printf("\nclosed forms:  normal = 8n + O(b) = %.0f (+O(b))\n", 8 * n);
  std::printf("               fused  = 2n + O(b) = %.0f (+O(b))\n", 2 * n);
  std::printf("               forced-map variant = 4n + O(b) = %.0f  "
              "(measured %.0f)\n",
              4 * n, forced.total());
  std::printf("\nfused/normal traffic ratio: %.2fx less\n",
              tn.total() / tf.total());
  return 0;
}
