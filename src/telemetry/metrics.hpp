// Lock-free, shard-per-thread metrics registry (DESIGN.md §12).
//
// The runtime's robustness layers (checkpoint/resume, integrity, the
// self-healing pool, the pipeline service) each kept private counters;
// this header is the one place they all surface. Three primitives:
//
//   counters    — process-monotonic u64 event counts (forks, steals,
//                 refusals, repairs, ...), recorded with one relaxed
//                 fetch_add on a thread-private shard;
//   per-class counters — the same, keyed by service job class (admit /
//                 shed / retry / breaker transitions per class);
//   histograms  — fixed power-of-two bucket latency/size distributions
//                 (bucket = bit_width(value), 64 buckets, no allocation,
//                 no clamping error beyond the 2x bucket granularity),
//                 with p50/p99 extraction on snapshots.
//
// Memory model: every cell is a relaxed std::atomic<u64> that only ever
// increases (the sole max-gauge uses a CAS max). snapshot() therefore
// needs no synchronization with writers: it reads each cell once and sums
// across shards. A snapshot taken during concurrent mutation is a
// *consistent cut in the per-cell monotone order* — each cell's value was
// its true value at some instant during the call, and successive
// snapshots never observe a sum decrease. No cross-cell atomicity is
// promised (a fork counted on shard A may be visible before its join on
// shard B); the registry is for rates and distributions, not invariants.
//
// Sharding: threads hash onto kShards cache-line-padded shards via a
// thread_local slot assigned round-robin on first record, so the hot path
// is one TLS read + one relaxed RMW on a line no other core is writing.
// Pool workers, guest threads and service dispatchers all record through
// the same API; the registry has no dependency on the scheduler.
//
// Gate: PBDS_METRICS (default ON; 0 disables) is read once into an
// atomic slot, re-readable via reload_metrics_from_env() (used by the
// scoped_env test harness) and overridable via the scoped_metrics RAII
// (used by the pbdsbench --metrics-overhead A/B gate). Defining
// PBDS_METRICS_COMPILED_OUT at build time compiles every record call to
// nothing — the "fast path can be elided entirely" escape hatch.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "core/env.hpp"

namespace pbds::telemetry {

// --- the metric taxonomy -----------------------------------------------------

enum class counter : unsigned {
  // scheduler
  forks,
  joins,
  steals,
  failed_steals,
  heartbeats,
  stalls,
  workers_lost,
  repairs,
  // memory / budget
  budget_admissions,
  budget_refusals,
  budget_retries,
  // recovery
  blocks_salvaged,
  blocks_redone,
  blocks_quarantined,
  // service (global; per-class breakdown below)
  jobs_admitted,
  jobs_shed,
  jobs_retried,
  jobs_completed,
  jobs_failed,
  breaker_trips,
  breaker_probes,
  breaker_closes,
  kCount,
};
inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(counter::kCount);

[[nodiscard]] inline const char* counter_name(counter c) {
  static constexpr const char* kNames[kNumCounters] = {
      "forks",          "joins",          "steals",
      "failed_steals",  "heartbeats",     "stalls",
      "workers_lost",   "repairs",        "budget_admissions",
      "budget_refusals", "budget_retries", "blocks_salvaged",
      "blocks_redone",  "blocks_quarantined", "jobs_admitted",
      "jobs_shed",      "jobs_retried",   "jobs_completed",
      "jobs_failed",    "breaker_trips",  "breaker_probes",
      "breaker_closes",
  };
  return kNames[static_cast<std::size_t>(c)];
}

enum class class_counter : unsigned {
  admitted,
  shed,
  retried,
  breaker_trips,
  kCount,
};
inline constexpr std::size_t kNumClassCounters =
    static_cast<std::size_t>(class_counter::kCount);
inline constexpr std::size_t kMaxClasses = 8;  // classes >= 8 fold into 7

[[nodiscard]] inline const char* class_counter_name(class_counter c) {
  static constexpr const char* kNames[kNumClassCounters] = {
      "admitted",
      "shed",
      "retried",
      "breaker_trips",
  };
  return kNames[static_cast<std::size_t>(c)];
}

enum class hist : unsigned {
  service_latency_us,  // end-to-end submit->terminal latency per job
  attempt_latency_us,  // single service attempt latency
  block_bytes,         // materialized checkpoint-block sizes
  kCount,
};
inline constexpr std::size_t kNumHists =
    static_cast<std::size_t>(hist::kCount);
inline constexpr std::size_t kHistBuckets = 64;

[[nodiscard]] inline const char* hist_name(hist h) {
  static constexpr const char* kNames[kNumHists] = {
      "service_latency_us",
      "attempt_latency_us",
      "block_bytes",
  };
  return kNames[static_cast<std::size_t>(h)];
}

// --- the gate ----------------------------------------------------------------

#if defined(PBDS_METRICS_COMPILED_OUT)
inline constexpr bool metrics_compiled_in = false;
#else
inline constexpr bool metrics_compiled_in = true;
#endif

namespace detail {

// -1 = unset (read env on next query), 0 = off, 1 = on. The override depth
// makes scoped_metrics nestable and thread-safe to *install* (the flag is
// process-global; toggling while hot paths run merely starts/stops
// recording, it cannot corrupt the registry).
inline std::atomic<int>& metrics_flag_slot() {
  static std::atomic<int> slot{-1};
  return slot;
}

}  // namespace detail

// True when record calls mutate the registry. One relaxed load on the hot
// path once initialized.
[[nodiscard]] inline bool metrics_enabled() {
  if constexpr (!metrics_compiled_in) return false;
  int v = detail::metrics_flag_slot().load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  v = pbds::detail::env_integer("PBDS_METRICS", 0, 1, 1) != 0 ? 1 : 0;
  detail::metrics_flag_slot().store(v, std::memory_order_relaxed);
  return v != 0;
}

// Forget the cached PBDS_METRICS so the next query re-reads the (possibly
// scrubbed) environment. Used by tests/differential.hpp's scoped_env.
inline void reload_metrics_from_env() {
  detail::metrics_flag_slot().store(-1, std::memory_order_relaxed);
}

// RAII on/off override; restores the previous cached state on exit.
// Toggling while parallel work is in flight is safe but makes A/B deltas
// fuzzy — the overhead gate quiesces between arms.
class scoped_metrics {
 public:
  explicit scoped_metrics(bool on)
      : saved_(detail::metrics_flag_slot().load(std::memory_order_relaxed)) {
    detail::metrics_flag_slot().store(on ? 1 : 0, std::memory_order_relaxed);
  }
  ~scoped_metrics() {
    detail::metrics_flag_slot().store(saved_, std::memory_order_relaxed);
  }
  scoped_metrics(const scoped_metrics&) = delete;
  scoped_metrics& operator=(const scoped_metrics&) = delete;

 private:
  int saved_;
};

// --- the registry ------------------------------------------------------------

namespace detail {

inline constexpr std::size_t kShards = 32;

struct alignas(64) shard {
  std::atomic<std::uint64_t> counters[kNumCounters];
  std::atomic<std::uint64_t> class_counters[kMaxClasses][kNumClassCounters];
  std::atomic<std::uint64_t> hists[kNumHists][kHistBuckets];
};

struct registry {
  shard shards[kShards];
  // The single max-gauge: high-water mark of live tracked bytes as seen by
  // the metrics layer (mirrors memory::bytes_peak but resettable with the
  // registry, and visible in snapshots without a tracking.hpp dependency).
  std::atomic<std::int64_t> bytes_live_peak{0};
};

inline registry& reg() {
  static registry r;
  return r;
}

inline shard& shard_of_thread() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return reg().shards[idx];
}

[[nodiscard]] inline std::size_t bucket_of(std::uint64_t value) {
  // bucket b holds values with bit_width b: 0 -> 0, [2^(b-1), 2^b) -> b.
  return static_cast<std::size_t>(std::bit_width(value));
}

}  // namespace detail

// O(1) hot-path record: one TLS read + one relaxed fetch_add when enabled,
// a single relaxed load when disabled, nothing at all when compiled out.
inline void count(counter c, std::uint64_t n = 1) {
  if constexpr (!metrics_compiled_in) return;
  if (!metrics_enabled()) return;
  detail::shard_of_thread().counters[static_cast<std::size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

inline void count_class(class_counter c, unsigned job_class,
                        std::uint64_t n = 1) {
  if constexpr (!metrics_compiled_in) return;
  if (!metrics_enabled()) return;
  std::size_t cls = job_class < kMaxClasses ? job_class : kMaxClasses - 1;
  detail::shard_of_thread()
      .class_counters[cls][static_cast<std::size_t>(c)]
      .fetch_add(n, std::memory_order_relaxed);
}

inline void observe(hist h, std::uint64_t value) {
  if constexpr (!metrics_compiled_in) return;
  if (!metrics_enabled()) return;
  detail::shard_of_thread()
      .hists[static_cast<std::size_t>(h)][detail::bucket_of(value)]
      .fetch_add(1, std::memory_order_relaxed);
}

// Raise the bytes-live high-water mark to at least `live`.
inline void observe_peak_bytes(std::int64_t live) {
  if constexpr (!metrics_compiled_in) return;
  if (!metrics_enabled()) return;
  auto& peak = detail::reg().bytes_live_peak;
  std::int64_t cur = peak.load(std::memory_order_relaxed);
  while (live > cur &&
         !peak.compare_exchange_weak(cur, live, std::memory_order_relaxed)) {
  }
}

// --- snapshots ---------------------------------------------------------------

struct histogram_snapshot {
  std::array<std::uint64_t, kHistBuckets> buckets{};
  std::uint64_t total = 0;

  // Upper bound of the bucket containing the q-quantile observation
  // (0 when the histogram is empty). Error is bounded by the 2x bucket
  // width, which is all a latency SLO dashboard needs.
  [[nodiscard]] std::uint64_t quantile(double q) const {
    if (total == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (rank >= total) rank = total - 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      seen += buckets[b];
      if (seen > rank)
        return b == 0 ? 0 : (std::uint64_t{1} << (b < 64 ? b : 63));
    }
    return std::uint64_t{1} << 63;
  }

  [[nodiscard]] std::uint64_t p50() const { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p99() const { return quantile(0.99); }
};

struct metrics_snapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::array<std::uint64_t, kNumClassCounters>, kMaxClasses>
      class_counters{};
  std::array<histogram_snapshot, kNumHists> hists{};
  std::int64_t bytes_live_peak = 0;

  [[nodiscard]] std::uint64_t get(counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t get(class_counter c, unsigned job_class) const {
    std::size_t cls = job_class < kMaxClasses ? job_class : kMaxClasses - 1;
    return class_counters[cls][static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const histogram_snapshot& get(hist h) const {
    return hists[static_cast<std::size_t>(h)];
  }
};

// Sum every shard. Safe (and meaningful) under concurrent mutation — see
// the header comment for the exact consistency contract.
[[nodiscard]] inline metrics_snapshot snapshot() {
  metrics_snapshot out;
  if constexpr (!metrics_compiled_in) return out;
  auto& r = detail::reg();
  for (const auto& s : r.shards) {
    for (std::size_t c = 0; c < kNumCounters; ++c)
      out.counters[c] += s.counters[c].load(std::memory_order_relaxed);
    for (std::size_t cls = 0; cls < kMaxClasses; ++cls)
      for (std::size_t c = 0; c < kNumClassCounters; ++c)
        out.class_counters[cls][c] +=
            s.class_counters[cls][c].load(std::memory_order_relaxed);
    for (std::size_t h = 0; h < kNumHists; ++h)
      for (std::size_t b = 0; b < kHistBuckets; ++b)
        out.hists[h].buckets[b] +=
            s.hists[h][b].load(std::memory_order_relaxed);
  }
  for (std::size_t h = 0; h < kNumHists; ++h)
    for (std::size_t b = 0; b < kHistBuckets; ++b)
      out.hists[h].total += out.hists[h].buckets[b];
  out.bytes_live_peak = r.bytes_live_peak.load(std::memory_order_relaxed);
  return out;
}

// Zero every cell. NOT safe under concurrent mutation (a racing record may
// land before or after the wipe) — call only while the process is
// quiescent; tests and the bench A/B gate do. Monotonicity guarantees
// restart from the reset point.
inline void reset() {
  if constexpr (!metrics_compiled_in) return;
  auto& r = detail::reg();
  for (auto& s : r.shards) {
    for (std::size_t c = 0; c < kNumCounters; ++c)
      s.counters[c].store(0, std::memory_order_relaxed);
    for (std::size_t cls = 0; cls < kMaxClasses; ++cls)
      for (std::size_t c = 0; c < kNumClassCounters; ++c)
        s.class_counters[cls][c].store(0, std::memory_order_relaxed);
    for (std::size_t h = 0; h < kNumHists; ++h)
      for (std::size_t b = 0; b < kHistBuckets; ++b)
        s.hists[h][b].store(0, std::memory_order_relaxed);
  }
  r.bytes_live_peak.store(0, std::memory_order_relaxed);
}

}  // namespace pbds::telemetry
