// Trace timeline: bounded per-thread ring buffers of timestamped spans,
// flushed on demand to Chrome-trace JSON (DESIGN.md §12).
//
// Load `chrome://tracing` (or https://ui.perfetto.dev) and open the file
// PBDS_TRACE_FILE points at to see what the runtime actually did: one
// track per recording thread, "X" (complete) events for spans — region /
// job / block / retry / repair — and "i" (instant) events for point
// happenings such as deterministic-scheduler fork/steal/kill decisions.
// Because the deterministic scheduler emits into the same rings, a
// replayed (seed, nth) failure produces a viewable timeline of the
// failure, not just a trace hash.
//
// Design constraints, in order:
//   * zero cost when off: one relaxed load per record call, nothing
//     persisted, no allocation (rings allocate lazily on a thread's FIRST
//     recorded event only);
//   * bounded: each thread's ring holds PBDS_TRACE_CAP events (default
//     4096); on overflow the oldest events are overwritten and a dropped
//     counter is kept — a soak run cannot OOM the tracer;
//   * lock-free recording: a thread writes only its own ring; the only
//     shared write is the one-time ring-slot assignment.
//
// flush_trace() is the only synchronization point: call it while the
// process is quiescent (end of run / after a failure replay). Event names
// must be string literals (or otherwise immortal) — the ring stores the
// pointer, not a copy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/env.hpp"

namespace pbds::telemetry {

enum class trace_kind : std::uint8_t {
  region,
  job,
  block,
  retry,
  repair,
  sched,  // scheduler decisions (det fork/steal/kill, watchdog actions)
};

[[nodiscard]] inline const char* trace_kind_name(trace_kind k) {
  static constexpr const char* kNames[] = {"region", "job",    "block",
                                           "retry",  "repair", "sched"};
  return kNames[static_cast<std::size_t>(k)];
}

namespace detail {

struct trace_event {
  const char* name;      // immortal string
  std::uint64_t ts_ns;   // since trace epoch
  std::uint64_t dur_ns;  // 0 for instants
  std::int64_t arg;
  trace_kind kind;
  char ph;  // 'X' complete span, 'i' instant
};

inline constexpr std::size_t kMaxTraceThreads = 64;

struct trace_ring {
  std::vector<trace_event> events;  // sized on first record
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<bool> in_use{false};
};

struct trace_state {
  trace_ring rings[kMaxTraceThreads];
  std::atomic<unsigned> next_ring{0};
  // -1 = unset (consult env), 0 = off, 1 = on.
  std::atomic<int> enabled{-1};
  std::atomic<std::int64_t> cap{-1};
};

inline trace_state& tstate() {
  static trace_state s;
  return s;
}

inline std::uint64_t trace_now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

inline std::size_t trace_cap() {
  std::int64_t c = tstate().cap.load(std::memory_order_relaxed);
  if (c < 0) {
    c = pbds::detail::env_integer("PBDS_TRACE_CAP", 16, 1 << 22, 4096);
    tstate().cap.store(c, std::memory_order_relaxed);
  }
  return static_cast<std::size_t>(c);
}

inline trace_ring& ring_of_thread() {
  thread_local trace_ring* r = [] {
    auto& s = tstate();
    unsigned idx = s.next_ring.fetch_add(1, std::memory_order_relaxed) %
                   kMaxTraceThreads;
    return &s.rings[idx];
  }();
  if (r->events.empty()) {
    r->events.resize(trace_cap());
    r->in_use.store(true, std::memory_order_release);
  }
  return *r;
}

inline void push_event(const char* name, trace_kind kind, char ph,
                       std::uint64_t ts_ns, std::uint64_t dur_ns,
                       std::int64_t arg) {
  auto& r = ring_of_thread();
  std::uint64_t h = r.head.fetch_add(1, std::memory_order_relaxed);
  if (h >= r.events.size())
    r.dropped.fetch_add(1, std::memory_order_relaxed);
  r.events[h % r.events.size()] = {name, ts_ns, dur_ns, arg, kind, ph};
}

}  // namespace detail

// True when spans/instants are being recorded. Defaults to "is
// PBDS_TRACE_FILE set"; overridable via scoped_trace below.
[[nodiscard]] inline bool trace_enabled() {
  auto& s = detail::tstate();
  int v = s.enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  const char* f = std::getenv("PBDS_TRACE_FILE");
  v = (f != nullptr && *f != '\0') ? 1 : 0;
  s.enabled.store(v, std::memory_order_relaxed);
  return v != 0;
}

// Forget cached PBDS_TRACE_FILE / PBDS_TRACE_CAP decisions (scoped_env).
// Already-sized rings keep their capacity; a changed cap applies to
// threads that record their first event afterwards.
inline void reload_trace_from_env() {
  detail::tstate().enabled.store(-1, std::memory_order_relaxed);
  detail::tstate().cap.store(-1, std::memory_order_relaxed);
}

// RAII tracing override for tests and failure replays that want a
// timeline without exporting PBDS_TRACE_FILE.
class scoped_trace {
 public:
  explicit scoped_trace(bool on)
      : saved_(detail::tstate().enabled.load(std::memory_order_relaxed)) {
    detail::tstate().enabled.store(on ? 1 : 0, std::memory_order_relaxed);
  }
  ~scoped_trace() {
    detail::tstate().enabled.store(saved_, std::memory_order_relaxed);
  }
  scoped_trace(const scoped_trace&) = delete;
  scoped_trace& operator=(const scoped_trace&) = delete;

 private:
  int saved_;
};

// Record an instant ("i") event.
inline void trace_instant(trace_kind kind, const char* name,
                          std::int64_t arg = 0) {
  if (!trace_enabled()) return;
  detail::push_event(name, kind, 'i', detail::trace_now_ns(), 0, arg);
}

// RAII span: times construction..destruction, records one complete ("X")
// event on destruction. Cheap enough to leave in hot-ish paths — when
// tracing is off the constructor is one relaxed load.
class trace_span {
 public:
  trace_span(trace_kind kind, const char* name, std::int64_t arg = 0)
      : kind_(kind), name_(name), arg_(arg),
        armed_(trace_enabled()),
        start_ns_(armed_ ? detail::trace_now_ns() : 0) {}

  ~trace_span() {
    if (!armed_) return;
    std::uint64_t end = detail::trace_now_ns();
    detail::push_event(name_, kind_, 'X', start_ns_,
                       end - start_ns_, arg_);
  }

  trace_span(const trace_span&) = delete;
  trace_span& operator=(const trace_span&) = delete;

 private:
  trace_kind kind_;
  const char* name_;
  std::int64_t arg_;
  bool armed_;
  std::uint64_t start_ns_;
};

// Total events overwritten after their ring filled (diagnostic: a large
// value means raise PBDS_TRACE_CAP).
[[nodiscard]] inline std::uint64_t trace_dropped() {
  std::uint64_t d = 0;
  for (auto& r : detail::tstate().rings)
    d += r.dropped.load(std::memory_order_relaxed);
  return d;
}

// Flush every ring to `path` as Chrome-trace JSON ("JSON Object Format":
// displayTimeUnit + traceEvents with pid/tid/ts/ph). Returns the number
// of events written, or 0 on I/O failure (a diagnostics path must not
// throw). Written tmp+rename so a crash mid-flush never leaves a torn
// file. Call while quiescent; racing recorders can tear an in-place
// overwrite of a wrapped slot (documented, detectable as garbage dur).
inline std::size_t flush_trace(const char* path) {
  auto& s = detail::tstate();
  std::string tmp = std::string(path) + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return 0;
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
  std::size_t written = 0;
  for (std::size_t tid = 0; tid < detail::kMaxTraceThreads; ++tid) {
    auto& r = s.rings[tid];
    if (!r.in_use.load(std::memory_order_acquire)) continue;
    std::uint64_t head = r.head.load(std::memory_order_relaxed);
    std::uint64_t n = head < r.events.size() ? head : r.events.size();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto& e = r.events[i];
      if (e.name == nullptr) continue;
      // ts/dur in microseconds, as chrome://tracing expects.
      double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
      double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
      if (written != 0) std::fputc(',', f);
      if (e.ph == 'X') {
        std::fprintf(f,
                     "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                     "\"pid\":1,\"tid\":%zu,\"ts\":%.3f,\"dur\":%.3f,"
                     "\"args\":{\"arg\":%lld}}",
                     e.name, trace_kind_name(e.kind), tid, ts_us, dur_us,
                     static_cast<long long>(e.arg));
      } else {
        std::fprintf(f,
                     "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                     "\"s\":\"t\",\"pid\":1,\"tid\":%zu,\"ts\":%.3f,"
                     "\"args\":{\"arg\":%lld}}",
                     e.name, trace_kind_name(e.kind), tid, ts_us,
                     static_cast<long long>(e.arg));
      }
      ++written;
    }
  }
  std::fputs("\n]}\n", f);
  bool ok = std::fflush(f) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok || std::rename(tmp.c_str(), path) != 0) {
    std::remove(tmp.c_str());
    return 0;
  }
  return written;
}

// Flush to PBDS_TRACE_FILE if it is set; returns events written (0 when
// unset). The soak driver and pbdsbench call this at end of run.
inline std::size_t flush_trace_from_env() {
  const char* f = std::getenv("PBDS_TRACE_FILE");
  if (f == nullptr || *f == '\0') return 0;
  return flush_trace(f);
}

}  // namespace pbds::telemetry
