// std-compatible allocator that reports through pbds::memory's counters.
//
// Used for the dynamically-resizing pack buffers inside filter
// (s.packToArray in the paper, Fig. 8), so that even transient grow/copy
// allocations show up in the space accounting.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

#include "memory/tracking.hpp"

namespace pbds::memory {

template <typename T>
class counting_allocator {
 public:
  using value_type = T;

  counting_allocator() noexcept = default;
  template <typename U>
  counting_allocator(const counting_allocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    // Admission runs the fault injector and the budget check; commit only
    // after the allocation succeeded, so a throw (real, injected, or a
    // budget refusal) leaves the accounting untouched.
    alloc_admission adm(n * sizeof(T));
    T* p = static_cast<T*>(::operator new(n * sizeof(T)));
    adm.commit();
    return p;
  }

  void deallocate(T* p, std::size_t n) noexcept {
    note_free(n * sizeof(T));
    ::operator delete(p);
  }

  friend bool operator==(const counting_allocator&,
                         const counting_allocator&) noexcept {
    return true;
  }
};

// Dynamically-resizing buffer whose allocations are space-accounted.
template <typename T>
using tracked_vector = std::vector<T, counting_allocator<T>>;

}  // namespace pbds::memory
