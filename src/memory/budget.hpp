// Memory budget governor: a byte budget on live tracked allocations.
//
// The paper's value proposition is bounded space — delayed pipelines exist
// to keep max residency low (§6.3) — and tracking.hpp *measures* that
// residency byte-exactly. This header *enforces* it: a process-wide limit
// (env PBDS_BUDGET_BYTES, or RAII-scoped via budget_scope) checked at the
// single allocation choke point (tracking.hpp's admit/commit pair). An
// allocation that would push bytes_live past the limit is refused with
// pbds::budget_exceeded — an exception carrying requested/live/limit that
// propagates through the fork-join cancellation protocol like any other
// failure, so "out of budget" is a catchable, replayable error instead of
// an OOM kill.
//
// Admission is reservation-based and race-tight: admit_alloc (tracking.hpp)
// reserves the requested bytes against the limit with a fetch_add before
// the real allocation, and note_alloc converts the reservation into live
// bytes afterwards. Two threads racing past a naive check-then-allocate
// could overcommit; with the reservation they cannot — the governor is
// byte-exact even under the real pool.
//
// Degradation ladder (DESIGN.md §7): a refused materialization is first
// retried after an exponential-backoff drain (concurrent pipelines may be
// releasing memory), and flatten falls back to bounded-chunk recompute
// materialization (delayed.hpp) before the refusal is surfaced.
#pragma once

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "core/env.hpp"
#include "recovery/progress.hpp"
#include "telemetry/metrics.hpp"

namespace pbds {

// Thrown when admitting an allocation would push live tracked bytes past
// the active budget. Derives from std::bad_alloc so every existing
// out-of-memory tolerance path (guarded construction, leak guarantees,
// cancellation propagation) treats a budget refusal exactly like the real
// allocator failing.
class budget_exceeded : public std::bad_alloc {
 public:
  budget_exceeded(std::size_t requested, std::int64_t live,
                  std::int64_t limit) noexcept
      : requested_(requested), live_(live), limit_(limit) {
    std::snprintf(what_, sizeof(what_),
                  "pbds::budget_exceeded: requested %zu bytes with %lld "
                  "live of a %lld-byte budget",
                  requested, static_cast<long long>(live),
                  static_cast<long long>(limit));
  }

  [[nodiscard]] const char* what() const noexcept override { return what_; }

  [[nodiscard]] std::size_t requested() const noexcept { return requested_; }
  [[nodiscard]] std::int64_t live() const noexcept { return live_; }
  [[nodiscard]] std::int64_t limit() const noexcept { return limit_; }

  // Checkpointed operations (src/recovery/) annotate an in-flight refusal
  // with how far they got before rethrowing, so callers can see the
  // salvageable progress. Plain POD members keep the (implicit, noexcept)
  // copy required of a bad_alloc subclass.
  void attach_progress(const recovery::progress& p) noexcept {
    progress_ = p;
    has_progress_ = true;
  }
  [[nodiscard]] bool has_progress() const noexcept { return has_progress_; }
  [[nodiscard]] const recovery::progress& checkpoint_progress() const noexcept {
    return progress_;
  }

  // Set by fault injectors (recovery::maybe_inject_boundary_fault) on the
  // refusals they fabricate. An injected refusal is not transient memory
  // pressure — nothing will drain — so the budget_retry ladder must not
  // absorb it: retrying would let the attempt complete and silently change
  // test semantics whenever an ambient PBDS_BUDGET_BYTES makes
  // budget_active() true (the env-leak bug this flag fixes).
  void mark_injected() noexcept { injected_ = true; }
  [[nodiscard]] bool injected() const noexcept { return injected_; }

 private:
  std::size_t requested_;
  std::int64_t live_;
  std::int64_t limit_;
  recovery::progress progress_{};
  bool has_progress_ = false;
  bool injected_ = false;
  // Fixed buffer: composing the message must not allocate — we are, by
  // definition, out of budget when this is constructed.
  char what_[160];
};

namespace memory {

namespace detail {

// Strict parse of PBDS_BUDGET_BYTES (pbds::detail::env_integer):
// full-string integer >= 1, warn once and fall back to unlimited on
// garbage.
inline std::int64_t budget_limit_from_env() {
  return static_cast<std::int64_t>(pbds::detail::env_integer(
      "PBDS_BUDGET_BYTES", 1, std::numeric_limits<long long>::max(), 0));
}

// The *base* limit (env / set_budget_limit); 0 = unlimited. Initialized
// from the environment on first touch. The enforced limit additionally
// composes active budget_scopes by min — see effective_limit_slot.
inline std::atomic<std::int64_t>& budget_limit_slot() {
  static std::atomic<std::int64_t> limit{budget_limit_from_env()};
  return limit;
}

// Active budget_scope limits, composed by min with the base limit into
// the cached effective limit below. A registry (rather than the old
// save/restore of a single global) makes concurrent scopes on different
// threads — one per in-flight service job — compose correctly regardless
// of construction/destruction order. Scope churn is per *pipeline*, not
// per allocation, so the mutex is cold.
inline std::mutex& scope_registry_mutex() {
  static std::mutex m;
  return m;
}

inline std::vector<std::int64_t>& scope_registry() {
  static std::vector<std::int64_t> v;
  return v;
}

// Cached min(base, active scopes); 0 = unlimited. This is the only word
// the allocation hot path reads.
inline std::atomic<std::int64_t>& effective_limit_slot() {
  static std::atomic<std::int64_t> limit{budget_limit_slot().load(
      std::memory_order_relaxed)};
  return limit;
}

// Call with scope_registry_mutex held (or from set_budget_limit, which
// takes it).
inline void recompute_effective_limit() {
  std::int64_t eff = budget_limit_slot().load(std::memory_order_relaxed);
  for (std::int64_t s : scope_registry()) {
    if (eff <= 0 || s < eff) eff = s;
  }
  effective_limit_slot().store(eff, std::memory_order_relaxed);
}

// Bytes admitted but not yet converted to bytes_live (see tracking.hpp's
// admit/commit pair). Counted against the limit so concurrent admissions
// cannot overcommit.
inline std::atomic<std::int64_t> g_budget_reserved{0};

// Total refusals, for tests and the watchdog's diagnostic dump.
inline std::atomic<std::int64_t> g_budget_refusals{0};

// Drain/backoff retry policy for budget-aware materialization paths.
inline std::atomic<int> g_budget_retries{2};
inline std::atomic<std::int64_t> g_budget_backoff_us{50};

}  // namespace detail

// The enforced limit: min of the base limit and every active
// budget_scope; 0 = unlimited.
[[nodiscard]] inline std::int64_t budget_limit() {
  return detail::effective_limit_slot().load(std::memory_order_relaxed);
}

[[nodiscard]] inline bool budget_active() { return budget_limit() > 0; }

// Set (or clear, with 0) the process-wide base budget. Prefer
// budget_scope.
inline void set_budget_limit(std::int64_t bytes) {
  std::lock_guard<std::mutex> lock(detail::scope_registry_mutex());
  detail::budget_limit_slot().store(bytes, std::memory_order_relaxed);
  detail::recompute_effective_limit();
}

// Re-read PBDS_BUDGET_BYTES into the base limit. The slot caches the env
// on first touch; tests that snapshot/clear the environment
// (tests/differential.hpp scoped_env) call this so the cleared env is
// actually observed instead of the stale first-touch value.
inline void reload_budget_limit_from_env() {
  set_budget_limit(detail::budget_limit_from_env());
}

[[nodiscard]] inline std::int64_t budget_refusals() {
  return detail::g_budget_refusals.load(std::memory_order_relaxed);
}

// Configure the drain/backoff ladder used by budget_retry: `retries`
// re-attempts, sleeping `backoff_us << attempt` microseconds before each,
// giving concurrently-finishing pipelines a chance to release memory.
inline void set_budget_retry_policy(int retries, std::int64_t backoff_us) {
  detail::g_budget_retries.store(retries < 0 ? 0 : retries,
                                 std::memory_order_relaxed);
  detail::g_budget_backoff_us.store(backoff_us < 0 ? 0 : backoff_us,
                                    std::memory_order_relaxed);
}

// RAII budget: tightens the enforced limit to min(enclosing, bytes) for
// the scope's lifetime, so scopes compose (an inner scope can only
// restrict, never loosen, what the outer one granted). Scopes register in
// a process-wide min-composed registry, so concurrent scopes on different
// threads — e.g. one per in-flight pipeline-service job — are safe and
// order-independent: the enforced limit is always the tightest active
// one. Non-positive `bytes` imposes no constraint.
class budget_scope {
 public:
  explicit budget_scope(std::int64_t bytes) : bytes_(bytes) {
    if (bytes_ <= 0) return;
    std::lock_guard<std::mutex> lock(detail::scope_registry_mutex());
    detail::scope_registry().push_back(bytes_);
    detail::recompute_effective_limit();
  }

  ~budget_scope() {
    if (bytes_ <= 0) return;
    std::lock_guard<std::mutex> lock(detail::scope_registry_mutex());
    auto& v = detail::scope_registry();
    for (auto it = v.begin(); it != v.end(); ++it) {
      if (*it == bytes_) {
        v.erase(it);
        break;
      }
    }
    detail::recompute_effective_limit();
  }

  budget_scope(const budget_scope&) = delete;
  budget_scope& operator=(const budget_scope&) = delete;

 private:
  std::int64_t bytes_;
};

// Jittered exponential backoff: delay for the `attempt`-th retry (0-based)
// of base `base_us`, doubled per attempt, with deterministic ±50% jitter
// drawn from splitmix64(salt ^ attempt). Seeded jitter keeps retry
// schedules de-correlated across concurrent jobs (no thundering herd when
// a budget refusal hits many pipelines at once) while staying a pure
// function of (salt, attempt), so a service replay makes the same
// decisions. Used by the pipeline service's retry ladder.
[[nodiscard]] inline std::int64_t jittered_backoff_us(int attempt,
                                                      std::int64_t base_us,
                                                      std::uint64_t salt) {
  if (base_us <= 0) return 0;
  std::uint64_t z = salt ^ (static_cast<std::uint64_t>(attempt) + 1) *
                               0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  // base_us is caller-supplied; saturate the doubled nominal at a sane
  // ceiling instead of shifting a huge base into signed overflow.
  constexpr std::int64_t kMaxBackoffUs = 600'000'000;  // 10 min per retry
  const int shift = attempt < 20 ? attempt : 20;
  std::int64_t nominal = base_us >= (kMaxBackoffUs >> shift)
                             ? kMaxBackoffUs
                             : base_us << shift;
  // jitter in [-nominal/2, +nominal/2)
  std::int64_t jitter =
      static_cast<std::int64_t>(z % static_cast<std::uint64_t>(nominal)) -
      nominal / 2;
  return nominal + jitter;
}

// Run `f`, retrying on budget_exceeded after an exponential-backoff drain
// (the configured number of times). The first rung of the degradation
// ladder: a refusal may be transient pressure from a concurrent pipeline
// that is about to release its intermediates. `f` must be safe to re-run
// from scratch (every materialization path here is: a refused attempt
// unwinds with bytes_live back at its entry value).
template <typename F>
auto budget_retry(const F& f) -> decltype(f()) {
  int attempts = detail::g_budget_retries.load(std::memory_order_relaxed);
  std::int64_t backoff =
      detail::g_budget_backoff_us.load(std::memory_order_relaxed);
  for (int attempt = 0;; ++attempt) {
    try {
      return f();
    } catch (const budget_exceeded& e) {
      // An injector-fabricated refusal is deterministic, not pressure:
      // rethrow immediately so fault-injection tests see the same
      // propagation whether or not an ambient budget is active.
      if (e.injected() || attempt >= attempts) throw;
      telemetry::count(telemetry::counter::budget_retries);
      std::this_thread::sleep_for(
          std::chrono::microseconds(backoff << attempt));
    }
  }
}

}  // namespace memory
}  // namespace pbds
