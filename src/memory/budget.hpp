// Memory budget governor: a byte budget on live tracked allocations.
//
// The paper's value proposition is bounded space — delayed pipelines exist
// to keep max residency low (§6.3) — and tracking.hpp *measures* that
// residency byte-exactly. This header *enforces* it: a process-wide limit
// (env PBDS_BUDGET_BYTES, or RAII-scoped via budget_scope) checked at the
// single allocation choke point (tracking.hpp's admit/commit pair). An
// allocation that would push bytes_live past the limit is refused with
// pbds::budget_exceeded — an exception carrying requested/live/limit that
// propagates through the fork-join cancellation protocol like any other
// failure, so "out of budget" is a catchable, replayable error instead of
// an OOM kill.
//
// Admission is reservation-based and race-tight: admit_alloc (tracking.hpp)
// reserves the requested bytes against the limit with a fetch_add before
// the real allocation, and note_alloc converts the reservation into live
// bytes afterwards. Two threads racing past a naive check-then-allocate
// could overcommit; with the reservation they cannot — the governor is
// byte-exact even under the real pool.
//
// Degradation ladder (DESIGN.md §7): a refused materialization is first
// retried after an exponential-backoff drain (concurrent pipelines may be
// releasing memory), and flatten falls back to bounded-chunk recompute
// materialization (delayed.hpp) before the refusal is surfaced.
#pragma once

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>

namespace pbds {

// Thrown when admitting an allocation would push live tracked bytes past
// the active budget. Derives from std::bad_alloc so every existing
// out-of-memory tolerance path (guarded construction, leak guarantees,
// cancellation propagation) treats a budget refusal exactly like the real
// allocator failing.
class budget_exceeded : public std::bad_alloc {
 public:
  budget_exceeded(std::size_t requested, std::int64_t live,
                  std::int64_t limit) noexcept
      : requested_(requested), live_(live), limit_(limit) {
    std::snprintf(what_, sizeof(what_),
                  "pbds::budget_exceeded: requested %zu bytes with %lld "
                  "live of a %lld-byte budget",
                  requested, static_cast<long long>(live),
                  static_cast<long long>(limit));
  }

  [[nodiscard]] const char* what() const noexcept override { return what_; }

  [[nodiscard]] std::size_t requested() const noexcept { return requested_; }
  [[nodiscard]] std::int64_t live() const noexcept { return live_; }
  [[nodiscard]] std::int64_t limit() const noexcept { return limit_; }

 private:
  std::size_t requested_;
  std::int64_t live_;
  std::int64_t limit_;
  // Fixed buffer: composing the message must not allocate — we are, by
  // definition, out of budget when this is constructed.
  char what_[160];
};

namespace memory {

namespace detail {

// Strict parse of PBDS_BUDGET_BYTES, mirroring the PBDS_NUM_THREADS
// treatment in scheduler.hpp: full-string integer >= 1, warn once and fall
// back to unlimited on garbage.
inline std::int64_t budget_limit_from_env() {
  const char* env = std::getenv("PBDS_BUDGET_BYTES");
  if (env == nullptr) return 0;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(env, &end, 10);
  if (end != env && *end == '\0' && errno != ERANGE && v >= 1) {
    return static_cast<std::int64_t>(v);
  }
  std::fprintf(stderr,
               "pbds: ignoring malformed PBDS_BUDGET_BYTES='%s' "
               "(expected an integer >= 1); running without a budget\n",
               env);
  return 0;
}

// 0 = unlimited. Initialized from the environment on first touch.
inline std::atomic<std::int64_t>& budget_limit_slot() {
  static std::atomic<std::int64_t> limit{budget_limit_from_env()};
  return limit;
}

// Bytes admitted but not yet converted to bytes_live (see tracking.hpp's
// admit/commit pair). Counted against the limit so concurrent admissions
// cannot overcommit.
inline std::atomic<std::int64_t> g_budget_reserved{0};

// Total refusals, for tests and the watchdog's diagnostic dump.
inline std::atomic<std::int64_t> g_budget_refusals{0};

// Drain/backoff retry policy for budget-aware materialization paths.
inline std::atomic<int> g_budget_retries{2};
inline std::atomic<std::int64_t> g_budget_backoff_us{50};

}  // namespace detail

[[nodiscard]] inline std::int64_t budget_limit() {
  return detail::budget_limit_slot().load(std::memory_order_relaxed);
}

[[nodiscard]] inline bool budget_active() { return budget_limit() > 0; }

// Set (or clear, with 0) the process-wide budget. Prefer budget_scope.
inline void set_budget_limit(std::int64_t bytes) {
  detail::budget_limit_slot().store(bytes, std::memory_order_relaxed);
}

[[nodiscard]] inline std::int64_t budget_refusals() {
  return detail::g_budget_refusals.load(std::memory_order_relaxed);
}

// Configure the drain/backoff ladder used by budget_retry: `retries`
// re-attempts, sleeping `backoff_us << attempt` microseconds before each,
// giving concurrently-finishing pipelines a chance to release memory.
inline void set_budget_retry_policy(int retries, std::int64_t backoff_us) {
  detail::g_budget_retries.store(retries < 0 ? 0 : retries,
                                 std::memory_order_relaxed);
  detail::g_budget_backoff_us.store(backoff_us < 0 ? 0 : backoff_us,
                                    std::memory_order_relaxed);
}

// RAII budget: tightens the process-wide limit to min(enclosing, bytes)
// for the scope's lifetime, so nested scopes compose (an inner scope can
// only restrict, never loosen, what the outer one granted).
class budget_scope {
 public:
  explicit budget_scope(std::int64_t bytes) : saved_(budget_limit()) {
    std::int64_t eff = (saved_ > 0 && saved_ < bytes) ? saved_ : bytes;
    set_budget_limit(eff);
  }

  ~budget_scope() { set_budget_limit(saved_); }

  budget_scope(const budget_scope&) = delete;
  budget_scope& operator=(const budget_scope&) = delete;

 private:
  std::int64_t saved_;
};

// Run `f`, retrying on budget_exceeded after an exponential-backoff drain
// (the configured number of times). The first rung of the degradation
// ladder: a refusal may be transient pressure from a concurrent pipeline
// that is about to release its intermediates. `f` must be safe to re-run
// from scratch (every materialization path here is: a refused attempt
// unwinds with bytes_live back at its entry value).
template <typename F>
auto budget_retry(const F& f) -> decltype(f()) {
  int attempts = detail::g_budget_retries.load(std::memory_order_relaxed);
  std::int64_t backoff =
      detail::g_budget_backoff_us.load(std::memory_order_relaxed);
  for (int attempt = 0;; ++attempt) {
    try {
      return f();
    } catch (const budget_exceeded&) {
      if (attempt >= attempts) throw;
      std::this_thread::sleep_for(
          std::chrono::microseconds(backoff << attempt));
    }
  }
}

}  // namespace memory
}  // namespace pbds
