// Byte-exact allocation accounting for the evaluation's "space" columns.
//
// The paper measures space as maximum residency reported by Linux; the
// dominant term there is exactly the intermediate arrays the fusion
// technique eliminates (see DESIGN.md §1). Here every intermediate buffer
// (parray, packed filter blocks, scan partials, ...) is routed through
// these counters, giving a deterministic, noise-free equivalent:
//
//   bytes_live     — currently allocated and not yet freed
//   bytes_peak     — high-water mark of bytes_live (resettable)
//   bytes_total    — cumulative bytes ever allocated (the cost semantics'
//                    allocation count A, in bytes)
//   num_allocs     — number of allocation events
//
// Counters are process-global atomics; allocations in this codebase happen
// per *block*, not per element, so contention is negligible.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace pbds::memory {

namespace detail {
inline std::atomic<std::int64_t> g_bytes_live{0};
inline std::atomic<std::int64_t> g_bytes_peak{0};
inline std::atomic<std::int64_t> g_bytes_total{0};
inline std::atomic<std::int64_t> g_num_allocs{0};
}  // namespace detail

inline void note_alloc(std::size_t bytes) {
  auto b = static_cast<std::int64_t>(bytes);
  detail::g_bytes_total.fetch_add(b, std::memory_order_relaxed);
  detail::g_num_allocs.fetch_add(1, std::memory_order_relaxed);
  std::int64_t live =
      detail::g_bytes_live.fetch_add(b, std::memory_order_relaxed) + b;
  std::int64_t peak = detail::g_bytes_peak.load(std::memory_order_relaxed);
  while (live > peak &&
         !detail::g_bytes_peak.compare_exchange_weak(
             peak, live, std::memory_order_relaxed)) {
  }
}

inline void note_free(std::size_t bytes) {
  detail::g_bytes_live.fetch_sub(static_cast<std::int64_t>(bytes),
                                 std::memory_order_relaxed);
}

inline std::int64_t bytes_live() {
  return detail::g_bytes_live.load(std::memory_order_relaxed);
}
inline std::int64_t bytes_peak() {
  return detail::g_bytes_peak.load(std::memory_order_relaxed);
}
inline std::int64_t bytes_total() {
  return detail::g_bytes_total.load(std::memory_order_relaxed);
}
inline std::int64_t num_allocs() {
  return detail::g_num_allocs.load(std::memory_order_relaxed);
}

// Reset the high-water mark to the current live total (start of a
// measurement region).
inline void reset_peak() {
  detail::g_bytes_peak.store(bytes_live(), std::memory_order_relaxed);
}

// Snapshot of the counters over a region of execution. Typical use:
//
//   space_meter m;                 // start of region
//   run_benchmark();
//   auto peak = m.peak_bytes();    // max residency during the region
//   auto allocd = m.allocated_bytes();
//
// `peak_bytes` includes buffers that were already live when the meter was
// constructed (e.g. benchmark inputs), matching the paper's max-residency
// measurement; `peak_delta_bytes` excludes them.
class space_meter {
 public:
  space_meter()
      : live_at_start_(bytes_live()),
        total_at_start_(bytes_total()),
        allocs_at_start_(num_allocs()) {
    reset_peak();
  }

  [[nodiscard]] std::int64_t peak_bytes() const { return bytes_peak(); }
  [[nodiscard]] std::int64_t peak_delta_bytes() const {
    return bytes_peak() - live_at_start_;
  }
  [[nodiscard]] std::int64_t allocated_bytes() const {
    return bytes_total() - total_at_start_;
  }
  [[nodiscard]] std::int64_t alloc_count() const {
    return num_allocs() - allocs_at_start_;
  }

 private:
  std::int64_t live_at_start_;
  std::int64_t total_at_start_;
  std::int64_t allocs_at_start_;
};

}  // namespace pbds::memory
