// Byte-exact allocation accounting for the evaluation's "space" columns.
//
// The paper measures space as maximum residency reported by Linux; the
// dominant term there is exactly the intermediate arrays the fusion
// technique eliminates (see DESIGN.md §1). Here every intermediate buffer
// (parray, packed filter blocks, scan partials, ...) is routed through
// these counters, giving a deterministic, noise-free equivalent:
//
//   bytes_live     — currently allocated and not yet freed
//   bytes_peak     — high-water mark of bytes_live (resettable)
//   bytes_total    — cumulative bytes ever allocated (the cost semantics'
//                    allocation count A, in bytes)
//   num_allocs     — number of allocation events
//
// Counters are process-global atomics; allocations in this codebase happen
// per *block*, not per element, so contention is negligible.
// An allocation *fault injector* rides on the same choke point: every
// tracked allocation first calls maybe_inject_alloc_fault(), which can be
// armed (scoped_alloc_faults) to throw std::bad_alloc on the Nth
// allocation or with seeded probability — the hook the exception-safety
// tests (tests/test_fault_injection.cpp) use to prove that scan partials,
// filter pack buffers and flatten offsets never leak on out-of-memory
// paths.
//
// The same choke point enforces the memory budget (budget.hpp): call sites
// bracket the real allocation with admit_alloc (fault injection + budget
// reservation; throws budget_exceeded on refusal) and note_alloc (converts
// the reservation into live bytes). If the real allocator throws between
// the two, retract_admission returns the reserved bytes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <new>

#include "memory/budget.hpp"
#include "telemetry/metrics.hpp"

namespace pbds::memory {

namespace detail {
inline std::atomic<std::int64_t> g_bytes_live{0};
inline std::atomic<std::int64_t> g_bytes_peak{0};
inline std::atomic<std::int64_t> g_bytes_total{0};
inline std::atomic<std::int64_t> g_num_allocs{0};
}  // namespace detail

inline void note_alloc(std::size_t bytes) {
  auto b = static_cast<std::int64_t>(bytes);
  detail::g_bytes_total.fetch_add(b, std::memory_order_relaxed);
  detail::g_num_allocs.fetch_add(1, std::memory_order_relaxed);
  std::int64_t live =
      detail::g_bytes_live.fetch_add(b, std::memory_order_relaxed) + b;
  std::int64_t peak = detail::g_bytes_peak.load(std::memory_order_relaxed);
  while (live > peak &&
         !detail::g_bytes_peak.compare_exchange_weak(
             peak, live, std::memory_order_relaxed)) {
  }
  telemetry::observe_peak_bytes(live);
}

inline void note_free(std::size_t bytes) {
  detail::g_bytes_live.fetch_sub(static_cast<std::int64_t>(bytes),
                                 std::memory_order_relaxed);
}

inline std::int64_t bytes_live() {
  return detail::g_bytes_live.load(std::memory_order_relaxed);
}
inline std::int64_t bytes_peak() {
  return detail::g_bytes_peak.load(std::memory_order_relaxed);
}
inline std::int64_t bytes_total() {
  return detail::g_bytes_total.load(std::memory_order_relaxed);
}
inline std::int64_t num_allocs() {
  return detail::g_num_allocs.load(std::memory_order_relaxed);
}

// Reset the high-water mark to the current live total (start of a
// measurement region).
inline void reset_peak() {
  detail::g_bytes_peak.store(bytes_live(), std::memory_order_relaxed);
}

// Snapshot of the counters over a region of execution. Typical use:
//
//   space_meter m;                 // start of region
//   run_benchmark();
//   auto peak = m.peak_bytes();    // max residency during the region
//   auto allocd = m.allocated_bytes();
//
// `peak_bytes` includes buffers that were already live when the meter was
// constructed (e.g. benchmark inputs), matching the paper's max-residency
// measurement; `peak_delta_bytes` excludes them.
class space_meter {
 public:
  space_meter()
      : live_at_start_(bytes_live()),
        total_at_start_(bytes_total()),
        allocs_at_start_(num_allocs()) {
    reset_peak();
  }

  [[nodiscard]] std::int64_t peak_bytes() const { return bytes_peak(); }
  [[nodiscard]] std::int64_t peak_delta_bytes() const {
    return bytes_peak() - live_at_start_;
  }
  [[nodiscard]] std::int64_t allocated_bytes() const {
    return bytes_total() - total_at_start_;
  }
  [[nodiscard]] std::int64_t alloc_count() const {
    return num_allocs() - allocs_at_start_;
  }

 private:
  std::int64_t live_at_start_;
  std::int64_t total_at_start_;
  std::int64_t allocs_at_start_;
};

// --- allocation fault injection ---------------------------------------------
//
// Every tracked allocation site (parray's buffer, counting_allocator) calls
// maybe_inject_alloc_fault() *before* allocating, so an injected failure is
// indistinguishable from the real allocator throwing std::bad_alloc — and
// the counters above are only updated on success, which is what lets tests
// assert that bytes_live returns to its pre-call value after an injected
// failure propagates out of scan/filter/flatten.
//
// Two modes, both armed via the RAII scoped_alloc_faults below:
//   fail_nth(n)                    — the (n+1)-th tracked allocation from
//                                    now throws; one-shot, later ones
//                                    succeed (so recovery paths still run).
//   fail_with_probability(seed, p) — every tracked allocation throws
//                                    independently with probability p from
//                                    a seeded xorshift stream.
// The injector stays "armed" (fault_injection_armed() == true) for the
// whole scope even after a one-shot fault fires; construction paths that
// pay for exception tolerance only when armed key off that predicate.

namespace detail {
// 0 = off, 1 = countdown, 2 = probability, 3 = armed but spent (one-shot
// fault already delivered).
inline std::atomic<int> g_fault_mode{0};
inline std::atomic<std::int64_t> g_fault_countdown{0};
inline std::atomic<std::uint64_t> g_fault_rng{0};
inline std::atomic<std::uint64_t> g_fault_threshold{0};
inline std::atomic<std::int64_t> g_faults_injected{0};
}  // namespace detail

[[nodiscard]] inline bool fault_injection_armed() {
  return detail::g_fault_mode.load(std::memory_order_relaxed) != 0;
}

[[nodiscard]] inline std::int64_t faults_injected() {
  return detail::g_faults_injected.load(std::memory_order_relaxed);
}

inline void maybe_inject_alloc_fault() {
  int mode = detail::g_fault_mode.load(std::memory_order_relaxed);
  if (mode == 0 || mode == 3) return;
  if (mode == 1) {
    // Exactly one caller observes the zero crossing.
    if (detail::g_fault_countdown.fetch_sub(1, std::memory_order_relaxed) ==
        0) {
      detail::g_fault_mode.store(3, std::memory_order_relaxed);
      detail::g_faults_injected.fetch_add(1, std::memory_order_relaxed);
      throw std::bad_alloc();
    }
    return;
  }
  // Probability mode: advance the shared xorshift stream atomically.
  std::uint64_t x = detail::g_fault_rng.load(std::memory_order_relaxed);
  std::uint64_t nxt;
  do {
    nxt = x;
    nxt ^= nxt << 13;
    nxt ^= nxt >> 7;
    nxt ^= nxt << 17;
  } while (!detail::g_fault_rng.compare_exchange_weak(
      x, nxt, std::memory_order_relaxed));
  if (nxt < detail::g_fault_threshold.load(std::memory_order_relaxed)) {
    detail::g_faults_injected.fetch_add(1, std::memory_order_relaxed);
    throw std::bad_alloc();
  }
}

// RAII arming of the injector; disarms (and clears any pending fault) on
// scope exit. Only one instance may be live at a time.
class scoped_alloc_faults {
 public:
  // Fail the nth tracked allocation from now (0-based: n == 0 fails the
  // very next one). One-shot.
  [[nodiscard]] static scoped_alloc_faults fail_nth(std::int64_t n) {
    scoped_alloc_faults s;
    detail::g_fault_countdown.store(n, std::memory_order_relaxed);
    detail::g_fault_mode.store(1, std::memory_order_relaxed);
    return s;
  }

  // Fail each tracked allocation independently with probability p, drawn
  // from a stream seeded with `seed` (deterministic given a serial
  // allocation order, e.g. under the sequential/deterministic schedulers).
  [[nodiscard]] static scoped_alloc_faults fail_with_probability(
      std::uint64_t seed, double p) {
    scoped_alloc_faults s;
    detail::g_fault_rng.store(seed | 1, std::memory_order_relaxed);
    detail::g_fault_threshold.store(
        p >= 1.0 ? ~0ull
                 : static_cast<std::uint64_t>(
                       p * 18446744073709551616.0 /* 2^64 */),
        std::memory_order_relaxed);
    detail::g_fault_mode.store(2, std::memory_order_relaxed);
    return s;
  }

  ~scoped_alloc_faults() {
    if (owner_) detail::g_fault_mode.store(0, std::memory_order_relaxed);
  }

  scoped_alloc_faults(scoped_alloc_faults&& other) noexcept
      : start_count_(other.start_count_), owner_(other.owner_) {
    other.owner_ = false;
  }
  scoped_alloc_faults(const scoped_alloc_faults&) = delete;
  scoped_alloc_faults& operator=(const scoped_alloc_faults&) = delete;
  scoped_alloc_faults& operator=(scoped_alloc_faults&&) = delete;

  // Faults delivered since this scope was armed.
  [[nodiscard]] std::int64_t injected() const {
    return faults_injected() - start_count_;
  }

 private:
  scoped_alloc_faults() : start_count_(faults_injected()) {}

  std::int64_t start_count_;
  bool owner_ = true;
};

// --- allocation admission (fault injection + budget) -------------------------
//
// The single choke point every tracked allocation passes through. Call
// sites bracket the real allocation:
//
//   alloc_admission adm(bytes);     // may throw bad_alloc / budget_exceeded
//   p = ::operator new(bytes);      // may throw the real bad_alloc
//   adm.commit();                   // note_alloc + release the reservation
//
// Admission first runs the fault injector, then — when a budget is active
// (budget.hpp) — reserves `bytes` against the limit with a fetch_add, so
// two threads racing through admission cannot jointly overcommit. If the
// allocation is abandoned (real allocator threw), the destructor retracts
// the reservation; commit() converts it into live bytes.
class alloc_admission {
 public:
  explicit alloc_admission(std::size_t bytes) : bytes_(bytes) {
    maybe_inject_alloc_fault();
    std::int64_t limit = budget_limit();
    if (limit <= 0) return;
    auto b = static_cast<std::int64_t>(bytes);
    std::int64_t reserved =
        detail::g_budget_reserved.fetch_add(b, std::memory_order_relaxed);
    reserved_ = true;
    if (bytes_live() + reserved + b > limit) {
      retract();
      detail::g_budget_refusals.fetch_add(1, std::memory_order_relaxed);
      telemetry::count(telemetry::counter::budget_refusals);
      throw budget_exceeded(bytes, bytes_live(), limit);
    }
    telemetry::count(telemetry::counter::budget_admissions);
  }

  ~alloc_admission() { retract(); }

  alloc_admission(const alloc_admission&) = delete;
  alloc_admission& operator=(const alloc_admission&) = delete;

  // The allocation succeeded: account it and drop the reservation (the
  // bytes are now counted in bytes_live instead).
  void commit() {
    retract();
    note_alloc(bytes_);
  }

 private:
  void retract() {
    if (reserved_) {
      detail::g_budget_reserved.fetch_sub(static_cast<std::int64_t>(bytes_),
                                          std::memory_order_relaxed);
      reserved_ = false;
    }
  }

  std::size_t bytes_;
  bool reserved_ = false;
};

// Collects the first exception thrown across concurrently executing loop
// bodies. The fault-tolerant construction paths (parray::tabulate,
// to_array) catch inside the parallel lambda — an exception must never
// unwind through a fork while a pushed job is pending, and must never
// escape a stolen job on a pool thread — then rethrow on the calling
// thread after the join. Construction loops run under a
// sched::cancel_shield (the region-level bail-out would skip chunks and
// leave slots unconstructed), so `triggered` is their private cancellation
// signal: once set, remaining bodies stop calling the real element
// producer and just fill cheap placeholders.
class first_exception {
 public:
  void capture() noexcept {
    if (!claimed_.exchange(true, std::memory_order_acq_rel))
      eptr_ = std::current_exception();
    triggered_.store(true, std::memory_order_release);
  }

  // Polled from loop bodies on any worker; relaxed — a stale `false` only
  // costs one more real element evaluation.
  [[nodiscard]] bool triggered() const noexcept {
    return triggered_.load(std::memory_order_relaxed);
  }

  // Call after the parallel region has joined.
  void rethrow_if_set() {
    if (eptr_) std::rethrow_exception(eptr_);
  }

 private:
  std::atomic<bool> claimed_{false};
  std::atomic<bool> triggered_{false};
  std::exception_ptr eptr_;
};

}  // namespace pbds::memory
