// Delayed streams — the paper's Fig. 8 (`s.*` functions).
//
// A *stream* is a cheap, single-use, sequentially-iterable producer of
// elements. The concept required of a stream S here is:
//
//   typename S::value_type;
//   S::value_type S::next();     // called exactly `len` times by consumers
//
// Streams compose by *template nesting* (a map_stream physically contains
// its source stream), so a whole fused pipeline is one concrete type whose
// next() the compiler inlines end-to-end — this is the §4.4
// forward-iterator design, and it is why BID fusion costs no per-element
// function calls.
//
// Construction of every stream is O(1). Streams do not know their own
// length; the enclosing BID tracks block lengths and consumers take an
// explicit count (the paper's streams carry s.length; here the length
// lives one level up to keep stream objects to bare state).
//
// Streams are single-use: a BID's *block function* may be invoked many
// times (e.g. scan reads its input in phase 1 and again in phase 3), and
// each invocation manufactures a fresh stream, so block functions must be
// pure.
//
// --- bulk advance (next_n / drain_into) --------------------------------------
//
// On top of next(), streams may implement a *bulk* protocol:
//
//   void S::next_n(value_type* dst, std::size_t n);
//
// constructing exactly n elements into the uninitialized slots dst[0..n)
// and leaving the stream positioned so a later next()/next_n continues
// where the bulk call stopped. The payoff (cf. indexed/bulk iterator
// interfaces in stream-fusion work): contiguous sources lower to
// memcpy/uninitialized_copy per block, and stateful shapes (map, zip,
// scan) run tight raw-pointer loops over a small stack staging buffer
// instead of threading per-element state through `this`. Consumers go
// through the gated free functions stream::next_n / stream::drain_into,
// which fall back to an element-at-a-time loop whenever a stream has no
// native bulk path or bulk execution is disabled (below).
//
// Bulk paths batch the *evaluation order* of source elements within a
// block (e.g. zip pulls a chunk of its left side, then a chunk of its
// right). Block functions are pure by the BID contract, so the
// interleaving is unobservable — except through exceptions, which is why
// the gate forces the element-at-a-time fallback whenever the allocation
// fault injector is armed: the guarded construction paths attribute a
// mid-block throw to a single slot, and they must see the exact
// per-element evaluation order they were written for.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>

#include "core/env.hpp"
#include "integrity/block_digest.hpp"
#include "memory/counting_allocator.hpp"
#include "memory/tracking.hpp"

namespace pbds::stream {

// --- bulk gate ---------------------------------------------------------------

namespace detail {
// Default on; PBDS_NO_BULK=1 disables for A/B runs and CI ablations.
inline bool& bulk_flag() {
  static bool enabled =
      pbds::detail::env_integer("PBDS_NO_BULK", 0, 1, 0) == 0;
  return enabled;
}
}  // namespace detail

// Re-read PBDS_NO_BULK from the current environment (not thread-safe;
// call only while no parallel work is in flight — the scoped_env
// contract in tests/differential.hpp).
inline void reload_bulk_from_env() {
  detail::bulk_flag() =
      pbds::detail::env_integer("PBDS_NO_BULK", 0, 1, 0) == 0;
}

// True when specialized bulk paths may run. The fault injector arms the
// exception-tolerance machinery, which requires per-element evaluation
// (see header comment), so arming it forces the generic fallback.
[[nodiscard]] inline bool bulk_enabled() {
  return detail::bulk_flag() && !memory::fault_injection_armed();
}

// RAII forcing of the element-at-a-time fallback; the differential
// fast-vs-generic oracle (tests/differential.hpp) runs every kernel under
// this guard and asserts results and bytes-accounting are identical.
// Not thread-safe to toggle while parallel work is in flight.
class scoped_bulk_disable {
 public:
  scoped_bulk_disable() : saved_(detail::bulk_flag()) {
    detail::bulk_flag() = false;
  }
  ~scoped_bulk_disable() { detail::bulk_flag() = saved_; }
  scoped_bulk_disable(const scoped_bulk_disable&) = delete;
  scoped_bulk_disable& operator=(const scoped_bulk_disable&) = delete;

 private:
  bool saved_;
};

// Streams with a native bulk path.
template <typename S>
concept bulk_source =
    requires(S& s, typename S::value_type* dst, std::size_t n) {
      s.next_n(dst, n);
    };

// Element types that may be staged through a raw stack buffer and batch-
// copied: trivially copyable implies no lifetime bookkeeping is needed.
template <typename T>
inline constexpr bool stageable_v = std::is_trivially_copyable_v<T>;

// Streams whose next_n is pure data *movement* (memcpy of contiguous
// memory or of materialized runs) rather than a staged recomputation.
// Consumers and adapters only profit from bulk-advancing these: staging a
// compute stream (tabulate/map/zip/scan) through a buffer adds a memory
// round-trip the fused element-at-a-time loop does not have, and measures
// up to 1.6x *slower* on reduce-heavy kernels. Producers opt in with
// `static constexpr bool direct_bulk = true;`.
template <typename S>
inline constexpr bool direct_bulk_v = requires {
  requires bool(S::direct_bulk);
};

// The subset of direct_bulk sources whose per-element next() carries real
// overhead that next_n removes (piece-bound checks in region walks, run
// materialization in flatten). Staging such a source through a stack
// buffer beats pulling it element-at-a-time, so adapters over it may
// advertise direct_bulk themselves, extending the staged path up the
// pipeline. pointer_stream is deliberately NOT in this set: its next() is
// already a raw load, so propagation through adapters would reintroduce
// the compute-staging slowdown on fused register loops.
template <typename S>
inline constexpr bool staging_wins_v = requires {
  requires bool(S::staging_profitable);
};

// --- stack staging buffer ----------------------------------------------------

// Fixed-size buffer of uninitialized T slots used by bulk paths to stage
// source elements; sized in bytes so a chunk always fits comfortably on
// the stack regardless of the configured block size.
inline constexpr std::size_t kStageBytes = 4096;

template <typename T>
struct stage_buffer {
  static_assert(stageable_v<T>);
  static constexpr std::size_t capacity =
      kStageBytes / sizeof(T) == 0 ? 1 : kStageBytes / sizeof(T);

  alignas(T) unsigned char raw[capacity * sizeof(T)];

  [[nodiscard]] T* data() { return reinterpret_cast<T*>(raw); }
};

// --- producers / adapters (all O(1) to construct) -------------------------

// Elements f(i), f(i+1), ... — the stream form of tabulate (s.tabulate).
template <typename F>
struct tabulate_stream {
  using value_type =
      std::decay_t<std::invoke_result_t<F&, std::size_t>>;
  F f;
  std::size_t i;

  value_type next() { return f(i++); }

  // Linear indexing with the cursor in a register: for affine/pointer-
  // reading f this is the loop the vectorizer wants.
  void next_n(value_type* dst, std::size_t n) {
    std::size_t base = i;
    for (std::size_t k = 0; k < n; ++k)
      ::new (static_cast<void*>(dst + k)) value_type(f(base + k));
    i = base + n;
  }
};

template <typename F>
tabulate_stream(F, std::size_t) -> tabulate_stream<F>;

// Elements read from contiguous memory.
template <typename T>
struct pointer_stream {
  using value_type = T;
  static constexpr bool direct_bulk = true;
  const T* p;

  value_type next() { return *p++; }

  // The memcpy fast path: a block of a contiguous trivially-copyable
  // source materializes as one bulk copy.
  void next_n(T* dst, std::size_t n) {
    if constexpr (stageable_v<T>) {
      if (n > 0) std::memcpy(static_cast<void*>(dst), p, n * sizeof(T));
    } else {
      std::uninitialized_copy_n(p, n, dst);
    }
    p += n;
  }
};

// Contiguous sources admit consumer loops over the raw pointer itself —
// no staging copy at all.
template <typename S>
struct is_pointer_stream : std::false_type {};
template <typename T>
struct is_pointer_stream<pointer_stream<T>> : std::true_type {};
template <typename S>
inline constexpr bool is_pointer_stream_v = is_pointer_stream<S>::value;

// s.map
template <typename S, typename G>
struct map_stream {
  using value_type =
      std::decay_t<std::invoke_result_t<G&, typename S::value_type>>;
  // A map over a source that wins by staging wins by staging itself:
  // next_n runs the source's bulk path and applies g out of the stage
  // buffer, so consumers may in turn stage the map.
  static constexpr bool direct_bulk =
      bulk_source<S> && stageable_v<typename S::value_type> &&
      staging_wins_v<S>;
  static constexpr bool staging_profitable = direct_bulk;
  S s;
  G g;

  value_type next() { return g(s.next()); }

  void next_n(value_type* dst, std::size_t n) {
    using src_t = typename S::value_type;
    if constexpr (is_pointer_stream_v<S>) {
      // Contiguous source: map straight out of memory, no staging.
      const src_t* in = s.p;
      for (std::size_t k = 0; k < n; ++k)
        ::new (static_cast<void*>(dst + k)) value_type(g(in[k]));
      s.p += n;
    } else if constexpr (bulk_source<S> && stageable_v<src_t> &&
                         direct_bulk_v<S>) {
      // Data-movement source (region/flatten runs): stage chunks, then
      // map with a tight two-pointer loop.
      stage_buffer<src_t> buf;
      while (n > 0) {
        std::size_t c = n < buf.capacity ? n : buf.capacity;
        s.next_n(buf.data(), c);
        const src_t* in = buf.data();
        for (std::size_t k = 0; k < c; ++k)
          ::new (static_cast<void*>(dst + k)) value_type(g(in[k]));
        dst += c;
        n -= c;
      }
    } else {
      // Compute source: the fused per-element loop already keeps
      // everything in registers; staging would only add traffic.
      for (std::size_t k = 0; k < n; ++k)
        ::new (static_cast<void*>(dst + k)) value_type(g(s.next()));
    }
  }
};

template <typename S, typename G>
map_stream(S, G) -> map_stream<S, G>;

// s.zip
template <typename S1, typename S2>
struct zip_stream {
  using value_type =
      std::pair<typename S1::value_type, typename S2::value_type>;
  // A zip propagates the staged path only when at least one side actually
  // wins by staging (both must still be bulk-capable and stageable). A
  // zip of two pointer streams stays on the fused per-element loop —
  // staging it measured up to 1.3x slower on reduce-heavy kernels.
  static constexpr bool direct_bulk =
      bulk_source<S1> && bulk_source<S2> &&
      stageable_v<typename S1::value_type> &&
      stageable_v<typename S2::value_type> && direct_bulk_v<S1> &&
      direct_bulk_v<S2> &&
      (staging_wins_v<S1> || staging_wins_v<S2>);
  static constexpr bool staging_profitable = direct_bulk;
  S1 a;
  S2 b;

  value_type next() {
    auto x = a.next();  // sequence the two pulls deterministically
    auto y = b.next();
    return value_type(std::move(x), std::move(y));
  }

  void next_n(value_type* dst, std::size_t n) {
    using at = typename S1::value_type;
    using bt = typename S2::value_type;
    if constexpr (bulk_source<S1> && bulk_source<S2> && stageable_v<at> &&
                  stageable_v<bt> && direct_bulk_v<S1> &&
                  direct_bulk_v<S2>) {
      stage_buffer<at> abuf;
      stage_buffer<bt> bbuf;
      constexpr std::size_t cap =
          stage_buffer<at>::capacity < stage_buffer<bt>::capacity
              ? stage_buffer<at>::capacity
              : stage_buffer<bt>::capacity;
      while (n > 0) {
        std::size_t c = n < cap ? n : cap;
        a.next_n(abuf.data(), c);
        b.next_n(bbuf.data(), c);
        const at* pa = abuf.data();
        const bt* pb = bbuf.data();
        for (std::size_t k = 0; k < c; ++k)
          ::new (static_cast<void*>(dst + k)) value_type(pa[k], pb[k]);
        dst += c;
        n -= c;
      }
    } else {
      for (std::size_t k = 0; k < n; ++k) {
        auto x = a.next();
        auto y = b.next();
        ::new (static_cast<void*>(dst + k))
            value_type(std::move(x), std::move(y));
      }
    }
  }
};

template <typename S1, typename S2>
zip_stream(S1, S2) -> zip_stream<S1, S2>;

// s.scan — *exclusive* running fold: emits acc before folding in the next
// input element. Seeding acc with the block's prefix (phase 2 of the
// blocked scan) turns a per-block scan into a global one.
template <typename S, typename F>
struct scan_stream {
  using value_type = typename S::value_type;
  S s;
  F f;
  value_type acc;

  value_type next() {
    value_type out = acc;
    acc = f(acc, s.next());
    return out;
  }

  void next_n(value_type* dst, std::size_t n) {
    value_type a = std::move(acc);  // keep the accumulator in a register
    if constexpr (is_pointer_stream_v<S>) {
      const value_type* in = s.p;
      for (std::size_t k = 0; k < n; ++k) {
        ::new (static_cast<void*>(dst + k)) value_type(a);
        a = f(a, in[k]);
      }
      s.p += n;
    } else if constexpr (bulk_source<S> && stageable_v<value_type> &&
                         direct_bulk_v<S>) {
      stage_buffer<value_type> buf;
      while (n > 0) {
        std::size_t c = n < buf.capacity ? n : buf.capacity;
        s.next_n(buf.data(), c);
        const value_type* in = buf.data();
        for (std::size_t k = 0; k < c; ++k) {
          ::new (static_cast<void*>(dst + k)) value_type(a);
          a = f(a, in[k]);
        }
        dst += c;
        n -= c;
      }
    } else {
      for (std::size_t k = 0; k < n; ++k) {
        ::new (static_cast<void*>(dst + k)) value_type(a);
        a = f(a, s.next());
      }
    }
    acc = std::move(a);
  }
};

template <typename S, typename F, typename T>
scan_stream(S, F, T) -> scan_stream<S, F>;

// Inclusive variant: emits the fold *including* the current element.
template <typename S, typename F>
struct scan_inclusive_stream {
  using value_type = typename S::value_type;
  S s;
  F f;
  value_type acc;

  value_type next() {
    acc = f(acc, s.next());
    return acc;
  }

  void next_n(value_type* dst, std::size_t n) {
    value_type a = std::move(acc);
    if constexpr (is_pointer_stream_v<S>) {
      const value_type* in = s.p;
      for (std::size_t k = 0; k < n; ++k) {
        a = f(a, in[k]);
        ::new (static_cast<void*>(dst + k)) value_type(a);
      }
      s.p += n;
    } else if constexpr (bulk_source<S> && stageable_v<value_type> &&
                         direct_bulk_v<S>) {
      stage_buffer<value_type> buf;
      while (n > 0) {
        std::size_t c = n < buf.capacity ? n : buf.capacity;
        s.next_n(buf.data(), c);
        const value_type* in = buf.data();
        for (std::size_t k = 0; k < c; ++k) {
          a = f(a, in[k]);
          ::new (static_cast<void*>(dst + k)) value_type(a);
        }
        dst += c;
        n -= c;
      }
    } else {
      for (std::size_t k = 0; k < n; ++k) {
        a = f(a, s.next());
        ::new (static_cast<void*>(dst + k)) value_type(a);
      }
    }
    acc = std::move(a);
  }
};

template <typename S, typename F, typename T>
scan_inclusive_stream(S, F, T) -> scan_inclusive_stream<S, F>;

// --- gated bulk entry points -------------------------------------------------

namespace detail {

// Element types whose object representation is fully determined by the
// value (no padding, no indeterminate bytes), so a digest over a stack
// temporary equals the digest over the same value materialized in an
// array. Scalars qualify even when the unique-representation trait is
// conservative about them (floating point).
template <typename T>
inline constexpr bool byte_comparable_v =
    stageable_v<T> &&
    (std::is_scalar_v<T> || std::has_unique_object_representations_v<T>);

// PBDS_VERIFY_BULK: run the native bulk path AND the element-at-a-time
// reference protocol on a copy of the stream, digest-compare the two, and
// throw corruption_detected on divergence. Legal because block functions
// are pure (streams.hpp header): manufacturing the same block's stream
// twice must yield the same elements. The incremental digester makes the
// chunked element walk byte-equivalent to hashing the materialized run.
template <typename S>
void verified_next_n(S& s, typename S::value_type* dst, std::size_t n) {
  using T = typename S::value_type;
  S ref = s;  // snapshot before the native path consumes s
  s.next_n(dst, n);
  integrity::digester want;
  for (std::size_t k = 0; k < n; ++k) {
    T v = ref.next();
    want.update(&v, sizeof(T));
  }
  if (integrity::block_digest(dst, n * sizeof(T)) != want.value()) {
    throw integrity::corruption_detected(
        "pbds: bulk next_n diverged from the element-at-a-time protocol");
  }
}

}  // namespace detail

// Construct exactly n elements of s into the uninitialized slots
// dst[0..n): the stream's native bulk path when it has one and the gate
// allows, the element-at-a-time fallback otherwise. The fallback IS the
// reference semantics — every native path must be observationally
// identical to it (the fast-vs-generic oracle enforces this, and
// PBDS_VERIFY_BULK re-proves it per run with a digest comparison).
template <typename S>
inline void next_n(S& s, typename S::value_type* dst, std::size_t n) {
  using T = typename S::value_type;
  if constexpr (bulk_source<S>) {
    if (bulk_enabled()) {
      if constexpr (std::is_copy_constructible_v<S> &&
                    detail::byte_comparable_v<T>) {
        if (integrity::verify_bulk_enabled()) {
          detail::verified_next_n(s, dst, n);
          return;
        }
      }
      s.next_n(dst, n);
      return;
    }
  }
  for (std::size_t k = 0; k < n; ++k)
    ::new (static_cast<void*>(dst + k)) T(s.next());
}

// Whole-block variant: streams do not know their length (it lives in the
// enclosing BID), so the caller passes the block length explicitly.
template <typename S>
inline void drain_into(S& s, typename S::value_type* dst, std::size_t len) {
  next_n(s, dst, len);
}

// --- consumers (linear work) ----------------------------------------------

// s.reduce: fold n elements with z as the leftmost operand. Bulk paths
// only fire for data-movement sources: a contiguous block folds straight
// over the raw pointer, a region/flatten block stages memcpy runs and
// folds over the buffer. Compute streams (tabulate/map/zip/scan) stay on
// the fused per-element loop, which is already register-resident.
template <typename S, typename F, typename T>
T reduce(S s, std::size_t n, const F& f, T z) {
  using src_t = typename S::value_type;
  if constexpr (is_pointer_stream_v<S>) {
    if (bulk_enabled()) {
      const src_t* in = s.p;
      for (std::size_t k = 0; k < n; ++k) z = f(z, in[k]);
      return z;
    }
  } else if constexpr (bulk_source<S> && stageable_v<src_t> &&
                       direct_bulk_v<S>) {
    if (bulk_enabled()) {
      stage_buffer<src_t> buf;
      while (n > 0) {
        std::size_t c = n < buf.capacity ? n : buf.capacity;
        s.next_n(buf.data(), c);
        const src_t* in = buf.data();
        for (std::size_t k = 0; k < c; ++k) z = f(z, in[k]);
        n -= c;
      }
      return z;
    }
  }
  for (std::size_t k = 0; k < n; ++k) z = f(z, s.next());
  return z;
}

// s.applyStream: run g on each of the n elements, for effect. Same
// gating as reduce: fast paths are for data movement only.
template <typename S, typename G>
void apply(S s, std::size_t n, const G& g) {
  using src_t = typename S::value_type;
  if constexpr (is_pointer_stream_v<S>) {
    if (bulk_enabled()) {
      const src_t* in = s.p;
      for (std::size_t k = 0; k < n; ++k) g(in[k]);
      return;
    }
  } else if constexpr (bulk_source<S> && stageable_v<src_t> &&
                       direct_bulk_v<S>) {
    if (bulk_enabled()) {
      stage_buffer<src_t> buf;
      while (n > 0) {
        std::size_t c = n < buf.capacity ? n : buf.capacity;
        s.next_n(buf.data(), c);
        const src_t* in = buf.data();
        for (std::size_t k = 0; k < c; ++k) g(in[k]);
        n -= c;
      }
      return;
    }
  }
  for (std::size_t k = 0; k < n; ++k) g(s.next());
}

// s.packToArray: keep elements satisfying p, appending to a
// dynamically-resizing space-accounted buffer. Bulk path: stage source
// chunks and run the predicate over raw pointers; survivors are appended
// in the same order with the same growth sequence as the fallback, so the
// bytes-accounting is identical (the oracle checks this).
template <typename S, typename P>
void pack(S s, std::size_t n,
          const P& p,
          memory::tracked_vector<typename S::value_type>& out) {
  using T = typename S::value_type;
  if constexpr (is_pointer_stream_v<S> && stageable_v<T>) {
    if (bulk_enabled()) {
      const T* in = s.p;
      for (std::size_t k = 0; k < n; ++k)
        if (p(in[k])) out.push_back(in[k]);
      return;
    }
  } else if constexpr (bulk_source<S> && stageable_v<T> &&
                       direct_bulk_v<S>) {
    if (bulk_enabled()) {
      stage_buffer<T> buf;
      while (n > 0) {
        std::size_t c = n < buf.capacity ? n : buf.capacity;
        s.next_n(buf.data(), c);
        const T* in = buf.data();
        for (std::size_t k = 0; k < c; ++k)
          if (p(in[k])) out.push_back(in[k]);
        n -= c;
      }
      return;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    auto x = s.next();
    if (p(x)) out.push_back(std::move(x));
  }
}

// packToArray for filterOp / mapMaybe: f returns std::optional<U>; keep
// the unwrapped values. f runs exactly once per element in both paths
// (filter_op's predicates may be effectful — BFS's compare-and-swap).
template <typename S, typename F, typename U>
void pack_op(S s, std::size_t n, const F& f,
             memory::tracked_vector<U>& out) {
  using T = typename S::value_type;
  if constexpr (is_pointer_stream_v<S> && stageable_v<T>) {
    if (bulk_enabled()) {
      const T* in = s.p;
      for (std::size_t k = 0; k < n; ++k)
        if (auto r = f(in[k])) out.push_back(std::move(*r));
      return;
    }
  } else if constexpr (bulk_source<S> && stageable_v<T> &&
                       direct_bulk_v<S>) {
    if (bulk_enabled()) {
      stage_buffer<T> buf;
      while (n > 0) {
        std::size_t c = n < buf.capacity ? n : buf.capacity;
        s.next_n(buf.data(), c);
        const T* in = buf.data();
        for (std::size_t k = 0; k < c; ++k)
          if (auto r = f(in[k])) out.push_back(std::move(*r));
        n -= c;
      }
      return;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    if (auto r = f(s.next())) out.push_back(std::move(*r));
  }
}

}  // namespace pbds::stream
