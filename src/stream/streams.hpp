// Delayed streams — the paper's Fig. 8 (`s.*` functions).
//
// A *stream* is a cheap, single-use, sequentially-iterable producer of
// elements. The concept required of a stream S here is:
//
//   typename S::value_type;
//   S::value_type S::next();     // called exactly `len` times by consumers
//
// Streams compose by *template nesting* (a map_stream physically contains
// its source stream), so a whole fused pipeline is one concrete type whose
// next() the compiler inlines end-to-end — this is the §4.4
// forward-iterator design, and it is why BID fusion costs no per-element
// function calls.
//
// Construction of every stream is O(1). Streams do not know their own
// length; the enclosing BID tracks block lengths and consumers take an
// explicit count (the paper's streams carry s.length; here the length
// lives one level up to keep stream objects to bare state).
//
// Streams are single-use: a BID's *block function* may be invoked many
// times (e.g. scan reads its input in phase 1 and again in phase 3), and
// each invocation manufactures a fresh stream, so block functions must be
// pure.
#pragma once

#include <cstddef>
#include <optional>
#include <type_traits>
#include <utility>

#include "memory/counting_allocator.hpp"

namespace pbds::stream {

// --- producers / adapters (all O(1) to construct) -------------------------

// Elements f(i), f(i+1), ... — the stream form of tabulate (s.tabulate).
template <typename F>
struct tabulate_stream {
  using value_type =
      std::decay_t<std::invoke_result_t<F&, std::size_t>>;
  F f;
  std::size_t i;

  value_type next() { return f(i++); }
};

template <typename F>
tabulate_stream(F, std::size_t) -> tabulate_stream<F>;

// Elements read from contiguous memory.
template <typename T>
struct pointer_stream {
  using value_type = T;
  const T* p;

  value_type next() { return *p++; }
};

// s.map
template <typename S, typename G>
struct map_stream {
  using value_type =
      std::decay_t<std::invoke_result_t<G&, typename S::value_type>>;
  S s;
  G g;

  value_type next() { return g(s.next()); }
};

template <typename S, typename G>
map_stream(S, G) -> map_stream<S, G>;

// s.zip
template <typename S1, typename S2>
struct zip_stream {
  using value_type =
      std::pair<typename S1::value_type, typename S2::value_type>;
  S1 a;
  S2 b;

  value_type next() {
    auto x = a.next();  // sequence the two pulls deterministically
    auto y = b.next();
    return value_type(std::move(x), std::move(y));
  }
};

template <typename S1, typename S2>
zip_stream(S1, S2) -> zip_stream<S1, S2>;

// s.scan — *exclusive* running fold: emits acc before folding in the next
// input element. Seeding acc with the block's prefix (phase 2 of the
// blocked scan) turns a per-block scan into a global one.
template <typename S, typename F>
struct scan_stream {
  using value_type = typename S::value_type;
  S s;
  F f;
  value_type acc;

  value_type next() {
    value_type out = acc;
    acc = f(acc, s.next());
    return out;
  }
};

template <typename S, typename F, typename T>
scan_stream(S, F, T) -> scan_stream<S, F>;

// Inclusive variant: emits the fold *including* the current element.
template <typename S, typename F>
struct scan_inclusive_stream {
  using value_type = typename S::value_type;
  S s;
  F f;
  value_type acc;

  value_type next() {
    acc = f(acc, s.next());
    return acc;
  }
};

template <typename S, typename F, typename T>
scan_inclusive_stream(S, F, T) -> scan_inclusive_stream<S, F>;

// --- consumers (linear work) ----------------------------------------------

// s.reduce: fold n elements with z as the leftmost operand.
template <typename S, typename F, typename T>
T reduce(S s, std::size_t n, const F& f, T z) {
  for (std::size_t k = 0; k < n; ++k) z = f(z, s.next());
  return z;
}

// s.applyStream: run g on each of the n elements, for effect.
template <typename S, typename G>
void apply(S s, std::size_t n, const G& g) {
  for (std::size_t k = 0; k < n; ++k) g(s.next());
}

// s.packToArray: keep elements satisfying p, appending to a
// dynamically-resizing space-accounted buffer.
template <typename S, typename P>
void pack(S s, std::size_t n,
          const P& p,
          memory::tracked_vector<typename S::value_type>& out) {
  for (std::size_t k = 0; k < n; ++k) {
    auto x = s.next();
    if (p(x)) out.push_back(std::move(x));
  }
}

// packToArray for filterOp / mapMaybe: f returns std::optional<U>; keep
// the unwrapped values.
template <typename S, typename F, typename U>
void pack_op(S s, std::size_t n, const F& f,
             memory::tracked_vector<U>& out) {
  for (std::size_t k = 0; k < n; ++k) {
    if (auto r = f(s.next())) out.push_back(std::move(*r));
  }
}

}  // namespace pbds::stream
