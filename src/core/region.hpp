// getRegion (Fig. 10 lines 41-43): streaming a uniform output block out of
// a ragged array-of-sequences.
//
// filter and flatten both end up with a collection of variable-length
// random-access pieces (packed per-block survivor buffers, or the inner
// sequences of a nested sequence) plus an offsets array saying where each
// piece starts in the flat output. To expose the result as a BID, block j
// of the output is a stream that (1) binary-searches the offsets for the
// piece containing position j*B, then (2) walks left-to-right across
// adjacent pieces (Fig. 3). The binary search is *delayed* — it happens
// only if/when the block is actually demanded downstream.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>

#include "array/parray.hpp"
#include "core/bid.hpp"

namespace pbds {

// Stream walking across a ragged array of random-access pieces.
// `Pieces` must support operator[](size_t) yielding something with size()
// and operator[](size_t). Raw pointers are used because the enclosing
// block function owns the shared_ptrs and outlives the stream.
template <typename Pieces>
struct region_stream {
  using piece_type = std::decay_t<decltype(std::declval<const Pieces&>()[0])>;
  using value_type =
      std::decay_t<decltype(std::declval<const piece_type&>()[0])>;
  // next_n copies materialized runs — data movement, so consumers profit
  // from staging it (stream::direct_bulk_v). Per-element next() pays a
  // piece-bound check per pull, so staging wins outright.
  static constexpr bool direct_bulk = true;
  static constexpr bool staging_profitable = true;

  const Pieces* pieces;
  std::size_t outer;  // current piece
  std::size_t inner;  // position within the current piece

  value_type next() {
    // Skip exhausted (or empty) pieces. Termination is guaranteed because
    // consumers pull exactly block_length elements and the offsets sum to
    // the total element count.
    while (inner >= (*pieces)[outer].size()) {
      ++outer;
      inner = 0;
    }
    return (*pieces)[outer][inner++];
  }

  // Bulk path: copy maximal runs out of each piece instead of re-checking
  // piece bounds per element. Contiguous trivially-copyable pieces (the
  // common case — packed survivor buffers, parray rows) lower each run to
  // one memcpy.
  void next_n(value_type* dst, std::size_t n) {
    while (n > 0) {
      const auto& piece = (*pieces)[outer];
      std::size_t avail = piece.size() - std::min(inner, piece.size());
      if (avail == 0) {
        ++outer;
        inner = 0;
        continue;
      }
      std::size_t c = n < avail ? n : avail;
      if constexpr (requires(const piece_type& p) { p.data(); } &&
                    std::is_trivially_copyable_v<value_type>) {
        std::memcpy(static_cast<void*>(dst), piece.data() + inner,
                    c * sizeof(value_type));
      } else {
        for (std::size_t k = 0; k < c; ++k)
          ::new (static_cast<void*>(dst + k)) value_type(piece[inner + k]);
      }
      dst += c;
      inner += c;
      n -= c;
    }
  }
};

// Package ragged pieces + offsets into a BID of m total elements.
//
// `offsets` has pieces->size() + 1 entries: offsets[k] is the flat start of
// piece k, offsets[last] == m. Shared ownership keeps the pieces alive for
// as long as any copy of the resulting BID exists.
template <typename Pieces>
[[nodiscard]] auto region_bid(std::shared_ptr<Pieces> pieces,
                              std::shared_ptr<parray<std::size_t>> offsets,
                              std::size_t m, std::size_t blk) {
  auto block_fn = [pieces = std::move(pieces), offsets = std::move(offsets),
                   blk](std::size_t j) {
    std::size_t start = j * blk;
    const std::size_t* base = offsets->data();
    // Largest k with offsets[k] <= start. Because start < m == offsets
    // back, the found piece satisfies offsets[k] <= start < offsets[k+1],
    // so `inner` is in range even when empty pieces create ties.
    std::size_t k = static_cast<std::size_t>(
        std::upper_bound(base, base + offsets->size(), start) - base - 1);
    return region_stream<Pieces>{pieces.get(), k, start - base[k]};
  };
  return make_bid(m, blk, std::move(block_fn));
}

}  // namespace pbds
