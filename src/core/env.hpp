// Strict environment-variable parsing, shared by every PBDS_* knob.
//
// PBDS_NUM_THREADS, PBDS_WATCHDOG_MS, PBDS_BUDGET_BYTES and the
// PBDS_SERVICE_* knobs all follow the same contract: a knob is either a
// full-string integer inside its documented range, or it is *ignored* with
// a single warning on stderr — a malformed value must never silently
// misconfigure the pool, the watchdog, or the service. This header is the
// one implementation of that contract (it used to be hand-rolled
// strtol+range-check+warn-once at each call site).
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

namespace pbds::detail {

// True the first time `name` is passed, false afterwards: each knob warns
// about a malformed value once per process, not once per read.
inline bool first_warning_for(const char* name) {
  static std::mutex m;
  static std::vector<std::string> warned;
  std::lock_guard<std::mutex> lock(m);
  for (const auto& w : warned)
    if (w == name) return false;
  warned.emplace_back(name);
  return true;
}

// Read environment integer `name`. Returns `fallback` when the variable is
// unset; returns the parsed value when it is a full-string integer in
// [lo, hi]; otherwise warns once on stderr and returns `fallback`.
inline long long env_integer(const char* name, long long lo, long long hi,
                             long long fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(env, &end, 10);
  if (end != env && *end == '\0' && errno != ERANGE && v >= lo && v <= hi) {
    return v;
  }
  if (first_warning_for(name)) {
    std::fprintf(stderr,
                 "pbds: ignoring malformed %s='%s' (expected an integer in "
                 "[%lld, %lld]); using %lld\n",
                 name, env, lo, hi, fallback);
  }
  return fallback;
}

}  // namespace pbds::detail
