// Strict environment-variable parsing, shared by every PBDS_* knob.
//
// PBDS_NUM_THREADS, PBDS_WATCHDOG_MS, PBDS_BUDGET_BYTES and the
// PBDS_SERVICE_* knobs all follow the same contract: a knob is either a
// full-string integer inside its documented range, or it is *ignored* with
// a single warning on stderr — a malformed value must never silently
// misconfigure the pool, the watchdog, or the service. This header is the
// one implementation of that contract (it used to be hand-rolled
// strtol+range-check+warn-once at each call site).
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#if __has_include(<unistd.h>)
#include <unistd.h>  // environ
#endif

namespace pbds::detail {

// True the first time `name` is passed, false afterwards: each knob warns
// about a malformed value once per process, not once per read.
inline bool first_warning_for(const char* name) {
  static std::mutex m;
  static std::vector<std::string> warned;
  std::lock_guard<std::mutex> lock(m);
  for (const auto& w : warned)
    if (w == name) return false;
  warned.emplace_back(name);
  return true;
}

// Read environment integer `name`. Returns `fallback` when the variable is
// unset; returns the parsed value when it is a full-string integer in
// [lo, hi]; otherwise warns once on stderr and returns `fallback`.
inline long long env_integer(const char* name, long long lo, long long hi,
                             long long fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(env, &end, 10);
  if (end != env && *end == '\0' && errno != ERANGE && v >= lo && v <= hi) {
    return v;
  }
  if (first_warning_for(name)) {
    std::fprintf(stderr,
                 "pbds: ignoring malformed %s='%s' (expected an integer in "
                 "[%lld, %lld]); using %lld\n",
                 name, env, lo, hi, fallback);
  }
  return fallback;
}

// The authoritative PBDS_* knob table — every knob any layer reads. The
// consolidated table in docs/TESTING.md mirrors this list; a new knob is
// added in both places or the unknown-variable warning below flags it.
inline constexpr const char* kKnownEnvKnobs[] = {
    "PBDS_NUM_THREADS",
    "PBDS_SEED",
    "PBDS_SEED_TRACE",
    "PBDS_NO_BULK",
    "PBDS_BUDGET_BYTES",
    "PBDS_WATCHDOG_MS",
    "PBDS_SERVICE_QUEUE_CAP",
    "PBDS_SERVICE_POLICY",
    "PBDS_SERVICE_DISPATCHERS",
    "PBDS_SERVICE_BREAKER_K",
    "PBDS_SERVICE_BREAKER_COOLDOWN",
    "PBDS_SERVICE_RETRIES",
    "PBDS_SERVICE_BACKOFF_US",
    "PBDS_SERVICE_TRACE_CAP",
    "PBDS_SERVICE_RESUMABLE",
    "PBDS_RESUME_DISABLE",
    "PBDS_RESUME_MAX_PARKED",
    "PBDS_VERIFY_RESUME",
    "PBDS_VERIFY_BULK",
    "PBDS_WORKER_LOST_MS",
    "PBDS_REPAIR_MAX",
    "PBDS_METRICS",
    "PBDS_TRACE_FILE",
    "PBDS_TRACE_CAP",
};

// Warn once per process about PBDS_-prefixed environment variables that
// match no knob in the table: a typo'd knob (PBDS_VERIFY_RESME) must not
// silently no-op. Called at scheduler init — early enough to precede any
// knob-dependent behavior the user meant to configure, late enough that
// tests mutating the environment before first pool touch are seen.
inline void warn_unknown_pbds_env() {
#if __has_include(<unistd.h>)
  if (environ == nullptr) return;
  for (char** e = environ; *e != nullptr; ++e) {
    const char* kv = *e;
    if (std::strncmp(kv, "PBDS_", 5) != 0) continue;
    const char* eq = std::strchr(kv, '=');
    std::string name = eq ? std::string(kv, static_cast<std::size_t>(eq - kv))
                          : std::string(kv);
    bool known = false;
    for (const char* k : kKnownEnvKnobs) {
      if (name == k) {
        known = true;
        break;
      }
    }
    if (!known && first_warning_for(name.c_str())) {
      std::fprintf(stderr,
                   "pbds: unrecognized environment variable %s is not a "
                   "known PBDS_* knob and has no effect (see the knob "
                   "table in docs/TESTING.md)\n",
                   name.c_str());
    }
  }
#endif
}

}  // namespace pbds::detail
