// Extended operations on block-delayed sequences.
//
// These are the conveniences a ParlayLib-style release ships alongside the
// Fig. 1 core: all are built *on top of* the core ops (so their cost
// follows from the Fig. 11 semantics by composition) or follow the same
// blocked structure (parallel across blocks, sequential streams within).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>

#include "core/delayed.hpp"
#include "text/text.hpp"

namespace pbds::delayed {

// map then flatten: for each element, an inner sequence; concatenation of
// all of them. The inner sequences must be random-access (RADs); BID
// inners are forced by flatten.
template <typename F, typename Seq>
[[nodiscard]] auto flat_map(F f, const Seq& s) {
  return flatten(map(std::move(f), as_seq(s)));
}

// Split a sequence of pairs into two sequences (both delayed views of the
// same source — each O(1); consuming both evaluates the source twice,
// which the cost semantics makes visible; force first if that matters).
template <typename Seq>
[[nodiscard]] auto unzip(const Seq& s) {
  auto inner = as_seq(s);
  auto firsts = map([](const auto& p) { return p.first; }, inner);
  auto seconds = map([](const auto& p) { return p.second; }, inner);
  return std::pair(std::move(firsts), std::move(seconds));
}

// Indices where the predicate holds (parlay's pack_index): a filter over
// iota, so the index sequence is never materialized and the survivors
// stay packed per block.
template <typename P>
[[nodiscard]] auto pack_index(std::size_t n, P p) {
  return filter(std::move(p), iota(n));
}

// Alias for filter_op under its Haskell/SML names (Fig. 1's footnote).
template <typename F, typename Seq>
[[nodiscard]] auto map_maybe(F f, const Seq& s) {
  return filter_op(std::move(f), as_seq(s));
}

// Index of the first element satisfying p, or nullopt. Blocks are examined
// IN ORDER, each by a sequential stream scan, so the traversal stops at
// the first satisfying block boundary — an early exit with O(B) overshoot,
// without violating the purity requirements on block functions. (A fully
// parallel variant would speculate on all blocks; sequential-over-blocks
// is the right default when matches are expected early.)
template <typename P, typename Seq>
[[nodiscard]] std::optional<std::size_t> find_if(const P& p, const Seq& s) {
  auto bd = bid_of(as_seq(s));
  std::size_t nb = bd.num_blocks();
  for (std::size_t j = 0; j < nb; ++j) {
    auto st = bd.block(j);
    std::size_t len = bd.block_length(j);
    for (std::size_t k = 0; k < len; ++k) {
      if (p(st.next())) return j * bd.block_size + k;
    }
  }
  return std::nullopt;
}

// First index whose element equals x.
template <typename Seq, typename T>
[[nodiscard]] std::optional<std::size_t> index_of(const Seq& s, const T& x) {
  return find_if([&x](const auto& y) { return y == x; }, s);
}

// Element-wise equality of two sequences.
template <typename S1, typename S2>
[[nodiscard]] bool equal(const S1& a, const S2& b) {
  auto sa = as_seq(a);
  auto sb = as_seq(b);
  if (sa.size() != sb.size()) return false;
  return all_of([](const auto& p) { return p.first == p.second; },
                zip(sa, sb));
}

// Tokens as a library operation (parlay's `tokens`): the (start, length)
// pairs of the maximal runs where `keep` holds. Built from two fused
// pack_index filters zipped blockwise — no index array materializes.
template <typename Keep>
[[nodiscard]] auto tokens(const parray<char>& text, Keep keep) {
  std::size_t n = text.size();
  const char* s = text.data();
  auto starts = pack_index(n, [s, keep](std::size_t i) {
    return keep(s[i]) && (i == 0 || !keep(s[i - 1]));
  });
  auto ends = filter(
      [s, n, keep](std::size_t j) {
        return keep(s[j - 1]) && (j == n || !keep(s[j]));
      },
      tabulate(n, [](std::size_t i) { return i + 1; }));
  return map(
      [](const std::pair<std::size_t, std::size_t>& se) {
        return std::pair<std::size_t, std::size_t>(se.first,
                                                   se.second - se.first);
      },
      zip(starts, ends));
}

[[nodiscard]] inline auto tokens(const parray<char>& text) {
  return tokens(text, [](char c) { return !text::is_space(c); });
}

// Histogram into `buckets` counters: counts[key(x)]++ over the sequence,
// fused traversal, relaxed atomics (keys from different blocks collide).
template <typename Seq, typename KeyFn>
[[nodiscard]] parray<std::size_t> histogram(const Seq& s, std::size_t buckets,
                                            const KeyFn& key) {
  auto counts = parray<std::atomic<std::size_t>>::tabulate(
      buckets, [](std::size_t) { return 0; });
  apply_each(as_seq(s), [&](const auto& x) {
    counts[key(x)].fetch_add(1, std::memory_order_relaxed);
  });
  return parray<std::size_t>::tabulate(buckets, [&](std::size_t b) {
    return counts[b].load(std::memory_order_relaxed);
  });
}

}  // namespace pbds::delayed
