// Random-access delayed (RAD) sequences — §4's RAD(i, n, f).
//
// A RAD represents the sequence <f(i), ..., f(i+n-1)> as an index function;
// nothing is evaluated until an element is demanded. Construction, map and
// zip over RADs are O(1): they only compose index functions, which the
// compiler then inlines into whichever loop ultimately consumes the
// sequence (index fusion, as in Repa [Keller et al. 2010]).
//
// The ML implementation dispatches on a datatype tag; following §4.4, the
// C++ implementation instead makes RAD and BID distinct template types and
// dispatches by overload — the index function is part of the static type,
// which is what makes whole-pipeline inlining easy for the compiler.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>

#include "array/parray.hpp"

namespace pbds {

template <typename F>
struct rad_t {
  using index_fn_type = F;
  using value_type = std::decay_t<std::invoke_result_t<const F&, std::size_t>>;

  std::size_t offset;  // first index passed to f
  std::size_t n;       // number of elements
  F f;                 // index -> value; must be pure (may be re-invoked)

  [[nodiscard]] std::size_t size() const noexcept { return n; }

  // Random access: element i of the sequence is f(offset + i).
  value_type operator[](std::size_t i) const { return f(offset + i); }
};

// --- constructors ----------------------------------------------------------

// The paper's tabulate (Fig. 10 line 19): fully delayed, O(1).
template <typename F>
[[nodiscard]] auto rad_tabulate(std::size_t n, F f) {
  return rad_t<F>{0, n, std::move(f)};
}

// <0, 1, ..., n-1>.
[[nodiscard]] inline auto rad_iota(std::size_t n) {
  return rad_tabulate(n, [](std::size_t i) { return i; });
}

// Index functions of array views. These are named types (not lambdas) so
// downstream code can *recognize* a contiguous RAD: both expose
// contiguous_data(), which bid_of (delayed.hpp) uses to hand out
// pointer_stream blocks that materialize via memcpy instead of per-index
// calls. Plain f(i) behavior is unchanged.
template <typename T>
struct ptr_index_fn {
  const T* p;
  T operator()(std::size_t i) const { return p[i]; }
  [[nodiscard]] const T* contiguous_data() const noexcept { return p; }
};

template <typename T>
struct shared_index_fn {
  std::shared_ptr<parray<T>> a;
  T operator()(std::size_t i) const { return (*a)[i]; }
  [[nodiscard]] const T* contiguous_data() const noexcept {
    return a->data();
  }
};

// Recognizes RAD index functions over contiguous storage.
template <typename F>
concept contiguous_index_fn = requires(const F& f) {
  { f.contiguous_data() };
};

// Non-owning view of an existing array (RADfromArray, Fig. 9 line 15).
// The array must outlive every use of the view.
template <typename T>
[[nodiscard]] auto rad_view(const parray<T>& a) {
  return rad_t<ptr_index_fn<T>>{0, a.size(), ptr_index_fn<T>{a.data()}};
}

// Owning view: keeps the array alive via shared ownership. Used for forced
// intermediates that must survive past the scope that created them.
template <typename T>
[[nodiscard]] auto rad_shared(std::shared_ptr<parray<T>> a) {
  std::size_t n = a->size();
  return rad_t<shared_index_fn<T>>{0, n, shared_index_fn<T>{std::move(a)}};
}

// --- traits -----------------------------------------------------------------

template <typename T>
struct is_rad : std::false_type {};
template <typename F>
struct is_rad<rad_t<F>> : std::true_type {};
template <typename T>
inline constexpr bool is_rad_v = is_rad<std::decay_t<T>>::value;

}  // namespace pbds
