// C++20 concepts for the library's abstractions.
//
// These name the contracts that the rest of the code states in comments:
// what it takes to be a stream (the BID block payload), a delayed
// sequence, or a random-access piece (flatten's inner-sequence
// requirement, Fig. 10 line 45). Used in static_asserts at the type
// boundaries and available to downstream code extending the library.
#pragma once

#include <concepts>
#include <cstddef>
#include <type_traits>

#include "core/bid.hpp"
#include "core/rad.hpp"

namespace pbds {

// A single-use sequential producer: the payload of a BID block.
template <typename S>
concept Stream = requires(S s) {
  typename S::value_type;
  { s.next() } -> std::convertible_to<typename S::value_type>;
};

// Anything with indexed access and a size — what flatten requires of inner
// sequences, and what the sort substrate's `sorted` accepts.
template <typename S>
concept RandomAccessSequence = requires(const S& s, std::size_t i) {
  { s.size() } -> std::convertible_to<std::size_t>;
  s[i];
};

// The two delayed representations.
template <typename S>
concept DelayedSequence = is_rad_v<S> || is_bid_v<S>;

// A pure index function usable as a RAD payload.
template <typename F>
concept IndexFunction = std::invocable<const F&, std::size_t>;

// A pure block function usable as a BID payload: maps a block index to a
// Stream.
template <typename B>
concept BlockFunction = requires(const B& b, std::size_t j) {
  { b(j) } -> Stream;
};

}  // namespace pbds
