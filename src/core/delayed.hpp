// Block-delayed sequences — the paper's contribution (Figs. 9 & 10).
//
// The `delay` (Ours) library of the evaluation: RAD + BID fusion. A
// pipeline like
//
//     reduce(h, z, map(g, scan(f, z, map(q, view(a))).first))
//
// evaluates with two passes over `a` and O(#blocks) intermediate space: the
// first map fuses into phase 1 of the scan, and phase 3 of the scan fuses
// through the second map into the reduce (Fig. 5). No compiler support is
// needed: RAD composition is function composition and BID composition is
// template-nested streams, both of which GCC inlines at -O3 (§4.4).
//
// Conventions, mirroring Fig. 10:
//  * every operation accepts a RAD, a BID, or a parray (auto-viewed);
//  * index and block functions must be pure — scan re-reads its input in
//    phases 1 and 3, which is the deliberate recompute-vs-force tradeoff
//    the cost semantics (§5) exposes;
//  * materialized intermediates (scan partials, filter's packed blocks,
//    flatten's offsets) are held by shared_ptr inside the returned BID's
//    block function, so delayed sequences are self-contained values.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>

#include "array/array_ops.hpp"
#include "array/parray.hpp"
#include "core/bid.hpp"
#include "core/block.hpp"
#include "core/rad.hpp"
#include "core/region.hpp"
#include "memory/counting_allocator.hpp"
#include "memory/tracking.hpp"
#include "sched/parallel.hpp"
#include "stream/streams.hpp"

namespace pbds::delayed {

// --- sequence adaptation ----------------------------------------------------

// Lift a parray into a non-owning RAD view; pass delayed sequences through.
template <typename T>
[[nodiscard]] auto as_seq(const parray<T>& a) {
  return rad_view(a);
}
template <typename F>
[[nodiscard]] auto as_seq(rad_t<F> r) {
  return r;
}
template <typename B>
[[nodiscard]] auto as_seq(bid_t<B> b) {
  return b;
}

template <typename T>
[[nodiscard]] auto view(const parray<T>& a) {
  return rad_view(a);
}

template <typename Seq>
[[nodiscard]] std::size_t length(const Seq& s) {
  return s.size();
}

// --- fully delayed constructors (O(1) work) ---------------------------------

template <typename F>
[[nodiscard]] auto tabulate(std::size_t n, F f) {
  return rad_tabulate(n, std::move(f));
}

[[nodiscard]] inline auto iota(std::size_t n) { return rad_iota(n); }

// --- BIDfromSeq (Fig. 9 lines 1-4) -------------------------------------------

// A BID is returned unchanged; a RAD is blockified by reindexing: block j
// is the stream <f(i + j*B), ..., f(i + j*B + len-1)>.
template <typename B>
[[nodiscard]] auto bid_of(bid_t<B> s) {
  return s;
}

template <typename F>
[[nodiscard]] auto bid_of(const rad_t<F>& s) {
  std::size_t blk = block_size();
  if constexpr (contiguous_index_fn<F>) {
    // Contiguous RAD (rad_view / rad_shared): block j reads straight from
    // memory, so downstream bulk consumers hit the memcpy fast path. The
    // functor is captured by value, so a shared-owning view keeps its
    // array alive for as long as the BID exists.
    auto block_fn = [f = s.f, off = s.offset, blk](std::size_t j) {
      return stream::pointer_stream<typename rad_t<F>::value_type>{
          f.contiguous_data() + off + j * blk};
    };
    return make_bid(s.n, blk, std::move(block_fn));
  } else {
    auto block_fn = [f = s.f, off = s.offset, blk](std::size_t j) {
      return stream::tabulate_stream<F>{f, off + j * blk};
    };
    return make_bid(s.n, blk, std::move(block_fn));
  }
}

template <typename T>
[[nodiscard]] auto bid_of(const parray<T>& a) {
  return bid_of(as_seq(a));
}

// --- map (Fig. 10 lines 20-21) -----------------------------------------------

// O(1): composes the index function (RAD) or wraps every block stream in a
// map_stream (BID).
template <typename G, typename F>
[[nodiscard]] auto map(G g, const rad_t<F>& s) {
  auto composed = [g = std::move(g), f = s.f](std::size_t i) {
    return g(f(i));
  };
  return rad_t<decltype(composed)>{s.offset, s.n, std::move(composed)};
}

template <typename G, typename B>
[[nodiscard]] auto map(G g, const bid_t<B>& s) {
  auto block_fn = [g = std::move(g), b = s.b](std::size_t j) {
    return stream::map_stream{b(j), g};
  };
  return make_bid(s.n, s.block_size, std::move(block_fn));
}

template <typename G, typename T>
[[nodiscard]] auto map(G g, const parray<T>& a) {
  return map(std::move(g), as_seq(a));
}

// --- zip (Fig. 10 lines 22-27) -----------------------------------------------

// RAD x RAD stays RAD; if either side is a BID, both sides are blockified
// and zipped stream-wise. Lengths must match so blocks align.
template <typename F, typename G>
[[nodiscard]] auto zip(const rad_t<F>& a, const rad_t<G>& b) {
  assert(a.n == b.n);
  auto paired = [fa = a.f, ia = a.offset, fb = b.f,
                 ib = b.offset](std::size_t k) {
    return std::pair<typename rad_t<F>::value_type,
                     typename rad_t<G>::value_type>(fa(ia + k), fb(ib + k));
  };
  return rad_t<decltype(paired)>{0, a.n, std::move(paired)};
}

template <typename S1, typename S2>
[[nodiscard]] auto zip(const S1& s1, const S2& s2) {
  auto a = bid_of(as_seq(s1));
  auto b = bid_of(as_seq(s2));
  assert(a.n == b.n);
  assert(a.block_size == b.block_size);
  auto block_fn = [ba = a.b, bb = b.b](std::size_t j) {
    return stream::zip_stream{ba(j), bb(j)};
  };
  return make_bid(a.n, a.block_size, std::move(block_fn));
}

// --- terminal traversals -----------------------------------------------------

// applySeq (Fig. 9 lines 5-8): run g on every element, in parallel across
// blocks, streaming within each block.
template <typename Seq, typename G>
void apply_each(const Seq& s, const G& g) {
  auto bd = bid_of(as_seq(s));
  apply(bd.num_blocks(), [&](std::size_t j) {
    stream::apply(bd.block(j), bd.block_length(j), g);
  });
}

// toArray (Fig. 9 lines 9-14): materialize into a fresh array. Rather than
// zipping with an index RAD as in the figure, each block writes at its own
// offset — the same traversal without manufacturing index pairs.
//
// The traversal is exception tolerant under the same gate and discipline
// as parray::tabulate (fault injector armed, or T has a real destructor):
// a throw from the block function or an element evaluation is captured
// inside the block body, the remaining slots of the block are
// default-constructed so the returned array is uniformly destructible,
// and the first exception is rethrown after the join — so a bad_alloc
// (injected or real) propagates without leaking. The guarded loop runs
// under a cancel_shield — the region-level bail-out would skip whole
// blocks and leave slots unconstructed — and once `err` triggers,
// remaining blocks skip stream evaluation and fill placeholders instead.
namespace detail {
template <typename Bid>
[[nodiscard]] auto to_array_eager(const Bid& bd) {
  using T = typename Bid::value_type;
  auto out = parray<T>::uninitialized(bd.n);
  T* q = out.data();
  if constexpr (std::is_nothrow_default_constructible_v<T>) {
    if (!std::is_trivially_destructible_v<T> ||
        memory::fault_injection_armed()) {
      sched::cancel_shield shield;
      memory::first_exception err;
      apply(bd.num_blocks(), [&, q](std::size_t j) {
        std::size_t base = j * bd.block_size;
        std::size_t len = bd.block_length(j);
        std::size_t k = 0;
        if (!err.triggered()) {
          try {
            auto st = bd.block(j);
            for (; k < len; ++k) ::new (q + base + k) T(st.next());
          } catch (...) {
            err.capture();
          }
        }
        for (; k < len; ++k) ::new (q + base + k) T();
      });
      err.rethrow_if_set();
      return out;
    }
  }
  apply(bd.num_blocks(), [&, q](std::size_t j) {
    auto st = bd.block(j);
    // Bulk materialization (gated; falls back to per-element next()).
    // Contiguous sources lower to one memcpy per block here.
    stream::drain_into(st, q + j * bd.block_size, bd.block_length(j));
  });
  return out;
}
}  // namespace detail

// Budget-aware entry point (memory/budget.hpp): under an active byte
// budget a refused materialization is retried after exponential-backoff
// drains before the refusal propagates. Retrying re-invokes the block
// functions, which the BID contract already requires to be pure; pipelines
// whose *construction* is effectful (filter_op's compare-and-swap
// predicates) had their effects run eagerly when the pipeline was built,
// not here.
template <typename Seq>
[[nodiscard]] auto to_array(const Seq& s) {
  auto bd = bid_of(as_seq(s));
  if (memory::budget_active())
    return memory::budget_retry([&] { return detail::to_array_eager(bd); });
  return detail::to_array_eager(bd);
}

// force (Fig. 9 line 16): evaluate everything now; the result is a RAD
// backed by (shared ownership of) a real array. Use to avoid re-evaluating
// a delayed sequence consumed more than once.
template <typename Seq>
[[nodiscard]] auto force(const Seq& s) {
  using T = typename std::decay_t<decltype(as_seq(s))>::value_type;
  auto arr = std::make_shared<parray<T>>(to_array(s));
  return rad_shared(std::move(arr));
}

// --- reduce (Fig. 10 lines 28-32) --------------------------------------------

// Phase 1 eagerly folds each block's stream (fusing with whatever produced
// the input); phase 2 folds the O(#blocks) partials sequentially.
template <typename F, typename T, typename Seq>
[[nodiscard]] T reduce(const F& f, T z, const Seq& s) {
  auto bd = bid_of(as_seq(s));
  std::size_t nb = bd.num_blocks();
  if (nb == 0) return z;
  if (nb == 1) {
    // Single block: fold directly, no partials array. This matters for
    // nested parallelism (e.g. sparse-mxv's per-row reduces), where the
    // delayed version must not allocate per row.
    return stream::reduce(bd.block(0), bd.block_length(0), f, z);
  }
  auto sums = parray<T>::tabulate(
      nb,
      [&](std::size_t j) {
        return stream::reduce(bd.block(j), bd.block_length(j), f, z);
      },
      /*granularity=*/1);
  T acc = z;
  for (std::size_t j = 0; j < nb; ++j) acc = f(acc, sums[j]);
  return acc;
}

// --- scan (Fig. 10 lines 33-40) ----------------------------------------------

// The showpiece: phases 1-2 are eager but touch only O(#blocks) memory
// beyond re-reading the (fused) input; phase 3 is *delayed* — the output
// BID's block j is a scan_stream over a fresh copy of input block j seeded
// with partial P[j]. Exclusive scan; returns (sequence, total).
template <typename F, typename T, typename Seq>
[[nodiscard]] auto scan(const F& f, T z, const Seq& s) {
  auto bd = bid_of(as_seq(s));
  std::size_t nb = bd.num_blocks();
  // Phase 1: block sums (eager, fused with the input).
  auto sums = parray<T>::tabulate(
      nb,
      [&](std::size_t j) {
        return stream::reduce(bd.block(j), bd.block_length(j), f, z);
      },
      1);
  // Phase 2: exclusive scan of the sums (sequential; nb is small).
  auto partials = std::make_shared<parray<T>>(
      parray<T>::uninitialized(nb));
  T acc = z;
  for (std::size_t j = 0; j < nb; ++j) {
    ::new (partials->data() + j) T(acc);
    acc = f(acc, sums[j]);
  }
  // Phase 3: delayed per-block streams seeded at the block offsets.
  auto block_fn = [b = bd.b, partials, f](std::size_t j) {
    return stream::scan_stream{b(j), f, (*partials)[j]};
  };
  return std::pair(make_bid(bd.n, bd.block_size, std::move(block_fn)), acc);
}

// Inclusive variant (out[i] includes element i); same structure.
template <typename F, typename T, typename Seq>
[[nodiscard]] auto scan_inclusive(const F& f, T z, const Seq& s) {
  auto bd = bid_of(as_seq(s));
  std::size_t nb = bd.num_blocks();
  auto sums = parray<T>::tabulate(
      nb,
      [&](std::size_t j) {
        return stream::reduce(bd.block(j), bd.block_length(j), f, z);
      },
      1);
  auto partials = std::make_shared<parray<T>>(
      parray<T>::uninitialized(nb));
  T acc = z;
  for (std::size_t j = 0; j < nb; ++j) {
    ::new (partials->data() + j) T(acc);
    acc = f(acc, sums[j]);
  }
  auto block_fn = [b = bd.b, partials, f](std::size_t j) {
    return stream::scan_inclusive_stream{b(j), f, (*partials)[j]};
  };
  return std::pair(make_bid(bd.n, bd.block_size, std::move(block_fn)), acc);
}

// --- filter / filterOp (Fig. 10 lines 48-53) -----------------------------------

namespace detail {
// Offsets (exclusive scan-plus of piece sizes) for the packed blocks.
template <typename Pieces>
[[nodiscard]] std::pair<std::shared_ptr<parray<std::size_t>>, std::size_t>
piece_offsets(const Pieces& pieces) {
  auto [offsets, m] = array_ops::size_offsets(
      pieces.size(), [&](std::size_t k) { return pieces[k].size(); });
  return {std::make_shared<parray<std::size_t>>(std::move(offsets)), m};
}
}  // namespace detail

// Pack survivors within each block (eager, fused with the input), then
// expose the ragged packed blocks as a BID via getRegion — the survivors
// are *never* copied into one contiguous array unless the consumer forces.
template <typename P, typename Seq>
[[nodiscard]] auto filter(const P& p, const Seq& s) {
  auto bd = bid_of(as_seq(s));
  using T = typename decltype(bd)::value_type;
  std::size_t nb = bd.num_blocks();
  using buffer = memory::tracked_vector<T>;
  auto packed = std::make_shared<parray<buffer>>(parray<buffer>::tabulate(
      nb,
      [&](std::size_t j) {
        buffer out;
        stream::pack(bd.block(j), bd.block_length(j), p, out);
        return out;
      },
      1));
  auto [offsets, m] = detail::piece_offsets(*packed);
  return region_bid(std::move(packed), std::move(offsets), m,
                    bd.block_size);
}

// filterOp / mapMaybe: f : T -> optional<U>; keeps and unwraps the engaged
// results. Implemented directly (not as map-then-filter) so effectful
// predicates — BFS's compare-and-swap tryVisit (Fig. 6) — run exactly once
// per element.
template <typename F, typename Seq>
[[nodiscard]] auto filter_op(const F& f, const Seq& s) {
  auto bd = bid_of(as_seq(s));
  using T = typename decltype(bd)::value_type;
  using U = typename std::invoke_result_t<const F&, T>::value_type;
  std::size_t nb = bd.num_blocks();
  using buffer = memory::tracked_vector<U>;
  auto packed = std::make_shared<parray<buffer>>(parray<buffer>::tabulate(
      nb,
      [&](std::size_t j) {
        buffer out;
        stream::pack_op(bd.block(j), bd.block_length(j), f, out);
        return out;
      },
      1));
  auto [offsets, m] = detail::piece_offsets(*packed);
  return region_bid(std::move(packed), std::move(offsets), m,
                    bd.block_size);
}

// --- flatten (Fig. 10 lines 44-47) ---------------------------------------------

namespace detail {

// Stream over the concatenation of an outer sequence's inner sequences,
// with two element-access modes sharing one type so flatten's eager and
// bounded-memory paths return the same BID:
//
//  * materialized (`pieces` non-null): identical to region_stream — the
//    inners were forced up front and are indexed directly;
//  * recompute (`pieces` null): at most ONE inner sequence is live per
//    stream at any time, re-materialized on demand from the outer BID's
//    block streams. This is the recompute side of the paper's
//    recompute-vs-force tradeoff (§5): peak space drops from "all inners"
//    to one inner per in-flight output block, paid for by re-evaluating
//    outer elements — positioning a stream mid-way into an outer block
//    streams (and immediately discards) that block's preceding inners.
template <typename OuterBid>
struct flatten_stream {
  using inner_type = typename OuterBid::value_type;
  using value_type =
      std::decay_t<decltype(std::declval<const inner_type&>()[0])>;
  // Materialized-mode next_n copies runs of the inner sequences — data
  // movement, so consumers may stage it (stream::direct_bulk_v); either
  // mode beats per-element next(), which re-checks inner bounds per pull.
  static constexpr bool direct_bulk = true;
  static constexpr bool staging_profitable = true;

  const parray<inner_type>* pieces;  // non-null selects materialized mode
  const OuterBid* outer;             // recompute mode only
  std::size_t k;  // current inner sequence
  std::size_t i;  // position within inner k

  // Recompute-mode state: the outer block stream currently open, the next
  // outer index it will yield, and the single live inner.
  std::optional<typename OuterBid::stream_type> st{};
  std::size_t stream_j = 0;
  std::size_t stream_next = 0;
  std::optional<inner_type> cur{};
  std::size_t cur_k = 0;

  value_type next() {
    if (pieces != nullptr) {
      while (i >= (*pieces)[k].size()) {
        ++k;
        i = 0;
      }
      return (*pieces)[k][i++];
    }
    for (;;) {
      if (!cur.has_value() || cur_k != k) materialize(k);
      if (i < cur->size()) break;
      ++k;
      i = 0;
    }
    return (*cur)[i++];
  }

  // Bulk path. Materialized mode: run-copies across the forced inners,
  // exactly as region_stream. Recompute mode: a linear subscript loop over
  // each live inner — hoists the live-inner checks out of the per-element
  // path and vectorizes index-function inners (e.g. a tabulated multiples
  // sequence becomes one vector multiply per run).
  void next_n(value_type* dst, std::size_t n) {
    if (pieces != nullptr) {
      while (n > 0) {
        const auto& piece = (*pieces)[k];
        std::size_t avail = piece.size() - std::min(i, piece.size());
        if (avail == 0) {
          ++k;
          i = 0;
          continue;
        }
        std::size_t c = n < avail ? n : avail;
        if constexpr (requires(const inner_type& p) { p.data(); } &&
                      std::is_trivially_copyable_v<value_type>) {
          std::memcpy(static_cast<void*>(dst), piece.data() + i,
                      c * sizeof(value_type));
        } else {
          for (std::size_t t = 0; t < c; ++t)
            ::new (static_cast<void*>(dst + t)) value_type(piece[i + t]);
        }
        dst += c;
        i += c;
        n -= c;
      }
      return;
    }
    while (n > 0) {
      if (!cur.has_value() || cur_k != k) materialize(k);
      std::size_t sz = cur->size();
      if (i >= sz) {
        ++k;
        i = 0;
        continue;
      }
      std::size_t c = n < sz - i ? n : sz - i;
      const inner_type& in = *cur;
      for (std::size_t t = 0; t < c; ++t)
        ::new (static_cast<void*>(dst + t)) value_type(in[i + t]);
      dst += c;
      i += c;
      n -= c;
    }
  }

  void materialize(std::size_t target) {
    std::size_t j = target / outer->block_size;
    if (!st.has_value() || stream_j != j || stream_next > target) {
      st.emplace(outer->block(j));
      stream_j = j;
      stream_next = j * outer->block_size;
    }
    // Keep at most one inner alive: drop the old one before streaming
    // forward, and let skipped inners die as temporaries.
    cur.reset();
    while (stream_next < target) {
      (void)st->next();
      ++stream_next;
    }
    cur.emplace(st->next());
    ++stream_next;
    cur_k = target;
  }
};

// Package the flattened view as a BID of m total elements. `pieces` may be
// null (recompute mode); `outer` is always carried so both modes share one
// block-function type. Offsets as in region_bid: pieces->size() + 1
// entries, back() == m.
template <typename OuterBid>
[[nodiscard]] auto flatten_bid(
    std::shared_ptr<parray<typename OuterBid::value_type>> pieces,
    OuterBid outer, std::shared_ptr<parray<std::size_t>> offsets,
    std::size_t m, std::size_t blk) {
  auto block_fn = [pieces = std::move(pieces), outer = std::move(outer),
                   offsets = std::move(offsets), blk](std::size_t j) {
    std::size_t start = j * blk;
    const std::size_t* base = offsets->data();
    std::size_t k = static_cast<std::size_t>(
        std::upper_bound(base, base + offsets->size(), start) - base - 1);
    return flatten_stream<OuterBid>{pieces.get(), &outer, k,
                                    start - base[k]};
  };
  return make_bid(m, blk, std::move(block_fn));
}

// Bounded-memory flatten (ISSUE 3 degradation path): instead of forcing
// every inner sequence at once, walk the outer sequence one block at a
// time with one transient inner live, recording only the sizes (8 bytes
// per outer element); the returned BID re-materializes inners on demand.
template <typename OuterBid>
[[nodiscard]] auto flatten_chunked(const OuterBid& obd) {
  using inner_type = typename OuterBid::value_type;
  std::size_t outer_n = obd.n;
  auto sizes = parray<std::size_t>::uninitialized(outer_n);
  std::size_t nb = obd.num_blocks();
  for (std::size_t j = 0; j < nb; ++j) {
    auto st = obd.block(j);
    std::size_t base = j * obd.block_size;
    std::size_t len = obd.block_length(j);
    for (std::size_t kk = 0; kk < len; ++kk) {
      inner_type x = st.next();
      ::new (sizes.data() + base + kk) std::size_t(x.size());
    }
  }
  auto [off, m] = array_ops::size_offsets(
      outer_n, [p = sizes.data()](std::size_t idx) { return p[idx]; });
  auto offsets = std::make_shared<parray<std::size_t>>(std::move(off));
  return flatten_bid<OuterBid>(nullptr, obd, std::move(offsets), m,
                               block_size());
}

}  // namespace detail

// Force the outer sequence to an array of random-access inner sequences,
// scan the lengths for offsets, and expose the concatenation as a BID
// walking the inner sequences via getRegion (Fig. 3). Eager work is
// proportional to the *outer* length only; the per-block binary searches
// and all element evaluation are delayed.
//
// Under an active memory budget (memory/budget.hpp), if forcing all the
// inners is refused even after the retry ladder, flatten degrades to the
// recompute mode above instead of failing: the pipeline completes within
// the budget at the cost of re-evaluating inner sequences on demand.
template <typename Seq>
[[nodiscard]] auto flatten(const Seq& s) {
  auto outer = as_seq(s);
  using inner_type = typename decltype(outer)::value_type;
  if constexpr (is_bid_v<inner_type>) {
    // Inner sequences must be random-access (Fig. 10 line 45 forces them).
    return flatten(map([](const inner_type& b) { return force(b); }, outer));
  } else {
    auto obd = bid_of(outer);
    using outer_bid = decltype(obd);
    try {
      auto inners = std::make_shared<parray<inner_type>>(to_array(obd));
      auto [offsets, m] = detail::piece_offsets(*inners);
      return detail::flatten_bid<outer_bid>(std::move(inners), obd,
                                            std::move(offsets), m,
                                            block_size());
    } catch (const budget_exceeded&) {
      return detail::flatten_chunked(obd);
    }
  }
}

// --- derived constructors and slices --------------------------------------------

// One-element sequence.
template <typename T>
[[nodiscard]] auto singleton(T x) {
  return rad_tabulate(1, [x = std::move(x)](std::size_t) { return x; });
}

// Pair each element with its index: <(0, x0), (1, x1), ...>.
template <typename Seq>
[[nodiscard]] auto enumerate(const Seq& s) {
  auto inner = as_seq(s);
  return zip(iota(inner.size()), inner);
}

// First min(k, |s|) elements. O(1) for both representations: a BID keeps
// its block function and truncates the length — block boundaries are
// unchanged, and the (now partial) last block is simply consumed for fewer
// elements.
template <typename F>
[[nodiscard]] auto take(const rad_t<F>& s, std::size_t k) {
  return rad_t<F>{s.offset, k < s.n ? k : s.n, s.f};
}
template <typename B>
[[nodiscard]] auto take(const bid_t<B>& s, std::size_t k) {
  return bid_t<B>{k < s.n ? k : s.n, s.block_size, s.b};
}
template <typename T>
[[nodiscard]] auto take(const parray<T>& a, std::size_t k) {
  return take(as_seq(a), k);
}

// All but the first min(k, |s|) elements. O(1) for RADs (an offset shift).
// For BIDs a drop would misalign every block boundary, so the sequence is
// forced first — the cost semantics makes this an explicit O(n) choice
// rather than a silent one.
template <typename F>
[[nodiscard]] auto drop(const rad_t<F>& s, std::size_t k) {
  std::size_t d = k < s.n ? k : s.n;
  return rad_t<F>{s.offset + d, s.n - d, s.f};
}
template <typename B>
[[nodiscard]] auto drop(const bid_t<B>& s, std::size_t k) {
  return drop(force(s), k);
}
template <typename T>
[[nodiscard]] auto drop(const parray<T>& a, std::size_t k) {
  return drop(as_seq(a), k);
}

// Reversed view; O(1), RAD only (reversal is inherently random-access).
template <typename F>
[[nodiscard]] auto reverse(const rad_t<F>& s) {
  auto rev = [f = s.f, off = s.offset, n = s.n](std::size_t i) {
    return f(off + (n - 1 - i));
  };
  return rad_t<decltype(rev)>{0, s.n, std::move(rev)};
}
template <typename T>
[[nodiscard]] auto reverse(const parray<T>& a) {
  return reverse(as_seq(a));
}

// Concatenation of two RADs; O(1), with one branch per element access.
// (For bulk concatenation of many or blocked sequences, use flatten.)
template <typename F, typename G>
[[nodiscard]] auto append(const rad_t<F>& a, const rad_t<G>& b) {
  static_assert(std::is_same_v<typename rad_t<F>::value_type,
                               typename rad_t<G>::value_type>,
                "append requires equal element types");
  auto pick = [fa = a.f, ia = a.offset, na = a.n, fb = b.f,
               ib = b.offset](std::size_t i) {
    return i < na ? fa(ia + i) : fb(ib + (i - na));
  };
  return rad_t<decltype(pick)>{0, a.n + b.n, std::move(pick)};
}

// --- conveniences built on the core ops ----------------------------------------

template <typename Seq>
[[nodiscard]] auto sum(const Seq& s) {
  using T = typename std::decay_t<decltype(as_seq(s))>::value_type;
  return reduce([](T a, T b) { return a + b; }, T{}, s);
}

template <typename P, typename Seq>
[[nodiscard]] std::size_t count_if(const P& p, const Seq& s) {
  return reduce([](std::size_t a, std::size_t b) { return a + b; },
                std::size_t{0},
                map([p](const auto& x) -> std::size_t { return p(x) ? 1 : 0; },
                    as_seq(s)));
}

template <typename P, typename Seq>
[[nodiscard]] bool all_of(const P& p, const Seq& s) {
  return count_if(p, s) == length(as_seq(s));
}

template <typename P, typename Seq>
[[nodiscard]] bool any_of(const P& p, const Seq& s) {
  return count_if(p, s) > 0;
}

// Minimum / maximum element value. Undefined on empty sequences (asserted).
template <typename Seq>
[[nodiscard]] auto min_value(const Seq& s) {
  auto inner = as_seq(s);
  using T = typename decltype(inner)::value_type;
  assert(inner.size() > 0);
  // Seed with element 0 via take/drop-free trick: fold with a flagged
  // accumulator would cost a branch per element; instead use the first
  // element as identity, which is valid because min is idempotent.
  T first = [&] {
    auto bd = bid_of(inner);
    auto st = bd.block(0);
    return st.next();
  }();
  return reduce([](T a, T b) { return b < a ? b : a; }, first, inner);
}

template <typename Seq>
[[nodiscard]] auto max_value(const Seq& s) {
  auto inner = as_seq(s);
  using T = typename decltype(inner)::value_type;
  assert(inner.size() > 0);
  T first = [&] {
    auto bd = bid_of(inner);
    auto st = bd.block(0);
    return st.next();
  }();
  return reduce([](T a, T b) { return a < b ? b : a; }, first, inner);
}

}  // namespace pbds::delayed
