// Global block size B_n (§4: "There are a number of reasonable ways to
// choose the block size ... Our definitions work the same for any
// block-size").
//
// We use one process-global runtime value so that every sequence created in
// a pipeline uses the *same* blocking — the property that lets blocks of
// one operation fuse with blocks of the previous/next operation (§3). The
// eager array library blocks its reduce/scan/filter with the same value so
// the three libraries are compared under identical blocking.
//
// Not thread-safe to mutate; set it before spawning parallel work (tests
// and the block-size ablation bench do this via scoped_block_size).
#pragma once

#include <cassert>
#include <cstddef>

namespace pbds {

inline constexpr std::size_t kDefaultBlockSize = 2048;

namespace detail {
inline std::size_t& block_size_slot() {
  static std::size_t b = kDefaultBlockSize;
  return b;
}
}  // namespace detail

[[nodiscard]] inline std::size_t block_size() {
  return detail::block_size_slot();
}

inline void set_block_size(std::size_t b) {
  assert(b > 0);
  detail::block_size_slot() = b;
}

// Number of blocks for a sequence of n elements.
[[nodiscard]] inline std::size_t num_blocks_for(std::size_t n,
                                                std::size_t b) {
  return n == 0 ? 0 : (n + b - 1) / b;
}

// RAII override, for tests and the ablation bench.
class scoped_block_size {
 public:
  explicit scoped_block_size(std::size_t b) : saved_(block_size()) {
    set_block_size(b);
  }
  ~scoped_block_size() { set_block_size(saved_); }
  scoped_block_size(const scoped_block_size&) = delete;
  scoped_block_size& operator=(const scoped_block_size&) = delete;

 private:
  std::size_t saved_;
};

}  // namespace pbds
