// Block-iterable delayed (BID) sequences — §4's BID(n, b).
//
// A BID partitions the index space of an n-element sequence into
// ceil(n / block_size) uniform blocks and represents each block as a
// *delayed stream* (src/stream). b(j) manufactures the stream for block j;
// because streams are single-use, b must be pure — operations like scan
// legitimately re-invoke it (phase 1 and phase 3 both read the input).
//
// BIDs are what make scan / filter / flatten fusable: the blocked
// implementations of those operations have sequential inner loops, and a
// sequential inner loop over a block is exactly a stream, so the inner
// loops of adjacent operations compose into one (§3). Parallelism is
// *across* blocks — the inverse of the stream-of-blocks approach (§2.1,
// src/sob), which is what makes this work at multicore granularity.
#pragma once

#include <cassert>
#include <cstddef>
#include <type_traits>

#include "core/block.hpp"
#include "stream/streams.hpp"

namespace pbds {

template <typename B>
struct bid_t {
  using block_fn_type = B;
  using stream_type = std::decay_t<std::invoke_result_t<const B&, std::size_t>>;
  using value_type = typename stream_type::value_type;

  std::size_t n;           // total number of elements
  std::size_t block_size;  // B_n; uniform across the pipeline
  B b;                     // block index -> stream (pure)

  [[nodiscard]] std::size_t size() const noexcept { return n; }

  [[nodiscard]] std::size_t num_blocks() const noexcept {
    return num_blocks_for(n, block_size);
  }

  // All blocks are full except possibly the last.
  [[nodiscard]] std::size_t block_length(std::size_t j) const noexcept {
    assert(j < num_blocks());
    std::size_t start = j * block_size;
    std::size_t rem = n - start;
    return rem < block_size ? rem : block_size;
  }

  // Manufacture a fresh stream for block j.
  [[nodiscard]] stream_type block(std::size_t j) const { return b(j); }

  // Materialize all of block j into the uninitialized slots
  // dst[0..block_length(j)), through the gated bulk path.
  void drain_block(std::size_t j, value_type* dst) const {
    auto st = block(j);
    stream::drain_into(st, dst, block_length(j));
  }
};

template <typename B>
[[nodiscard]] auto make_bid(std::size_t n, std::size_t blk, B b) {
  return bid_t<B>{n, blk, std::move(b)};
}

template <typename T>
struct is_bid : std::false_type {};
template <typename B>
struct is_bid<bid_t<B>> : std::true_type {};
template <typename T>
inline constexpr bool is_bid_v = is_bid<std::decay_t<T>>::value;

}  // namespace pbds
