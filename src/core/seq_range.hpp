// C++ range interop for delayed sequences.
//
// §2 of the paper frames C++20 ranges as the sequential cousin of this
// work; this adapter closes the loop in the other direction, exposing any
// delayed sequence (RAD or BID) as a standard input range so it can drive
// range-for loops and <algorithm> consumers. Iteration is sequential
// (block by block, streaming within each block) — the parallel consumers
// remain reduce / to_array / apply_each.
#pragma once

#include <cstddef>
#include <iterator>
#include <optional>

#include "core/bid.hpp"
#include "core/delayed.hpp"

namespace pbds::delayed {

// Single-pass input range over a delayed sequence. Holds its own copy of
// the (cheap, shared_ptr-backed) sequence, so it is safe to return.
template <typename Bid>
class seq_range {
 public:
  using value_type = typename Bid::value_type;

  explicit seq_range(Bid b) : bid_(std::move(b)) {}

  class iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = typename Bid::value_type;
    using difference_type = std::ptrdiff_t;
    using pointer = const value_type*;
    using reference = const value_type&;

    iterator() = default;  // end sentinel
    explicit iterator(const Bid* bid) : bid_(bid), index_(0) {
      if (bid_->size() == 0) {
        bid_ = nullptr;
        return;
      }
      load_block(0);
      advance_value();
    }

    reference operator*() const { return current_; }
    pointer operator->() const { return &current_; }

    iterator& operator++() {
      ++index_;
      if (index_ >= bid_->size()) {
        bid_ = nullptr;  // exhausted: become the end sentinel
        return *this;
      }
      if (index_ % bid_->block_size == 0) {
        load_block(index_ / bid_->block_size);
      }
      advance_value();
      return *this;
    }

    void operator++(int) { ++*this; }

    friend bool operator==(const iterator& a, const iterator& b) {
      // Only end-comparison is meaningful for an input iterator.
      return a.bid_ == b.bid_ && (a.bid_ == nullptr || a.index_ == b.index_);
    }

   private:
    void load_block(std::size_t j) { stream_.emplace(bid_->block(j)); }
    void advance_value() { current_ = stream_->next(); }

    const Bid* bid_ = nullptr;
    std::size_t index_ = 0;
    std::optional<typename Bid::stream_type> stream_;
    value_type current_{};
  };

  [[nodiscard]] iterator begin() const { return iterator(&bid_); }
  [[nodiscard]] iterator end() const { return iterator(); }
  [[nodiscard]] std::size_t size() const { return bid_.size(); }

 private:
  Bid bid_;
};

// Adapt any delayed sequence (or parray) to a sequential input range.
template <typename Seq>
[[nodiscard]] auto elements_of(const Seq& s) {
  auto bd = bid_of(as_seq(s));
  return seq_range<decltype(bd)>(std::move(bd));
}

}  // namespace pbds::delayed
