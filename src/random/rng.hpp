// Counter-based splittable pseudo-random numbers.
//
// All workload generators use this stateless, indexable RNG: the i-th draw
// is a pure function of (seed, i), so generation parallelizes trivially
// (no shared state) and every benchmark input is reproducible bit-for-bit
// regardless of thread count or evaluation order — a requirement for
// comparing the three library versions on identical inputs.
//
// The mixer is the finalizer from splitmix64 / MurmurHash3 (Stafford's
// variant 13), which passes PractRand at these use sites.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pbds::random {

// Bijective 64-bit mixer.
constexpr std::uint64_t hash64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Indexable random source: draw(i) is independent of all other draws.
class rng {
 public:
  explicit constexpr rng(std::uint64_t seed = 0) noexcept : seed_(seed) {}

  // Derive an independent stream (e.g. one per field of a record).
  [[nodiscard]] constexpr rng split(std::uint64_t stream) const noexcept {
    return rng(hash64(seed_ ^ (stream * 0xd1342543de82ef95ull + 1)));
  }

  [[nodiscard]] constexpr std::uint64_t u64(std::uint64_t i) const noexcept {
    return hash64(seed_ ^ (i + 0x632be59bd9b4e019ull));
  }

  // Uniform in [0, bound). Modulo bias is < 2^-32 for bound < 2^32.
  [[nodiscard]] constexpr std::uint64_t below(std::uint64_t i,
                                              std::uint64_t bound) const
      noexcept {
    return bound == 0 ? 0 : u64(i) % bound;
  }

  // Uniform double in [0, 1).
  [[nodiscard]] constexpr double uniform(std::uint64_t i) const noexcept {
    return static_cast<double>(u64(i) >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  [[nodiscard]] constexpr double uniform(std::uint64_t i, double lo,
                                         double hi) const noexcept {
    return lo + (hi - lo) * uniform(i);
  }

  [[nodiscard]] constexpr bool coin(std::uint64_t i,
                                    double p = 0.5) const noexcept {
    return uniform(i) < p;
  }

 private:
  std::uint64_t seed_;
};

}  // namespace pbds::random
