// RAD-only library — the `rad` (R) baseline of the evaluation (Fig. 12):
// "extends A with RAD fusion (for tabulate, map, reduce, etc.)".
//
// tabulate / map / zip are delayed exactly as in the full library (index
// fusion à la Repa), and reduce consumes a RAD without materializing it.
// The difference from the full library is the *absence of BIDs*: scan,
// filter, filter_op and flatten still fuse their inputs (they read through
// the RAD's index function), but their **outputs are materialized arrays**
// — an O(n) allocation and an O(n) write pass that block-delayed sequences
// avoid. Comparing `delay` against this baseline isolates the benefit of
// the BID representation (§6.1).
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "array/array_ops.hpp"
#include "array/parray.hpp"
#include "core/block.hpp"
#include "core/rad.hpp"
#include "memory/counting_allocator.hpp"
#include "sched/parallel.hpp"
#include "stream/streams.hpp"

namespace pbds::radlib {

// --- adaptation -------------------------------------------------------------

template <typename T>
[[nodiscard]] auto as_seq(const parray<T>& a) {
  return rad_view(a);
}
template <typename F>
[[nodiscard]] auto as_seq(rad_t<F> r) {
  return r;
}

template <typename T>
[[nodiscard]] auto view(const parray<T>& a) {
  return rad_view(a);
}

template <typename Seq>
[[nodiscard]] std::size_t length(const Seq& s) {
  return s.size();
}

// --- delayed ops (same index fusion as the full library) ---------------------

template <typename F>
[[nodiscard]] auto tabulate(std::size_t n, F f) {
  return rad_tabulate(n, std::move(f));
}

[[nodiscard]] inline auto iota(std::size_t n) { return rad_iota(n); }

template <typename G, typename Seq>
[[nodiscard]] auto map(G g, const Seq& s) {
  auto r = as_seq(s);
  auto composed = [g = std::move(g), f = r.f](std::size_t i) {
    return g(f(i));
  };
  return rad_t<decltype(composed)>{r.offset, r.n, std::move(composed)};
}

template <typename S1, typename S2>
[[nodiscard]] auto zip(const S1& s1, const S2& s2) {
  auto a = as_seq(s1);
  auto b = as_seq(s2);
  assert(a.n == b.n);
  auto paired = [fa = a.f, ia = a.offset, fb = b.f,
                 ib = b.offset](std::size_t k) {
    return std::pair<typename decltype(a)::value_type,
                     typename decltype(b)::value_type>(fa(ia + k),
                                                       fb(ib + k));
  };
  return rad_t<decltype(paired)>{0, a.n, std::move(paired)};
}

// --- materializing ops --------------------------------------------------------

// toArray: evaluate the index function across uniform blocks. Already
// materialized arrays pass through by move (or deep-copy if borrowed).
template <typename T>
[[nodiscard]] parray<T> to_array(parray<T>&& a) {
  return std::move(a);
}
template <typename T>
[[nodiscard]] parray<T> to_array(const parray<T>& a) {
  return a.clone();
}
template <typename Seq>
[[nodiscard]] auto to_array(const Seq& s) {
  auto r = as_seq(s);
  using T = typename decltype(r)::value_type;
  using index_fn = typename decltype(r)::index_fn_type;
  // Bulk fast path: for trivially-destructible elements with the fault
  // injector disarmed, parray::tabulate would run its unguarded loop
  // anyway, so materialize blockwise through the stream bulk protocol
  // instead — a contiguous RAD (view/force result) lowers to one memcpy
  // per block, and composed map/zip index functions run a raw-pointer
  // tabulate loop. Semantics match the unguarded tabulate exactly.
  if constexpr (std::is_nothrow_default_constructible_v<T> &&
                std::is_trivially_destructible_v<T>) {
    // Budget-active runs keep the tabulate route for its retry ladder.
    if (stream::bulk_enabled() && !memory::budget_active()) {
      auto out = parray<T>::uninitialized(r.n);
      T* q = out.data();
      std::size_t blk = block_size();
      std::size_t nb = num_blocks_for(r.n, blk);
      std::size_t n = r.n;
      apply(nb, [&, q](std::size_t j) {
        std::size_t lo = j * blk;
        std::size_t len = (lo + blk < n ? lo + blk : n) - lo;
        if constexpr (contiguous_index_fn<index_fn>) {
          stream::pointer_stream<T> st{r.f.contiguous_data() + r.offset +
                                       lo};
          st.next_n(q + lo, len);
        } else {
          stream::tabulate_stream st{
              [&r](std::size_t i) -> T { return r[i]; }, lo};
          st.next_n(q + lo, len);
        }
      });
      return out;
    }
  }
  // Route through tabulate so materialization inherits its exception
  // tolerance: an injected or real bad_alloc (or a throwing index
  // function) is captured per slot, never unwinds through a fork, and is
  // rethrown leak-free on the calling thread (see parray::tabulate and
  // DESIGN.md §"Failure semantics").
  return parray<T>::tabulate(r.n, [&r](std::size_t i) -> T { return r[i]; });
}

// force: materialize, hand back an array-backed RAD.
template <typename Seq>
[[nodiscard]] auto force(const Seq& s) {
  using T = typename std::decay_t<decltype(as_seq(s))>::value_type;
  auto arr = std::make_shared<parray<T>>(to_array(s));
  return rad_shared(std::move(arr));
}

// reduce: two-phase blocked, input fused through the index function.
template <typename F, typename T, typename Seq>
[[nodiscard]] T reduce(const F& f, T z, const Seq& s) {
  auto r = as_seq(s);
  std::size_t n = r.n;
  if (n == 0) return z;
  std::size_t blk = block_size();
  std::size_t nb = num_blocks_for(n, blk);
  if (nb == 1) {
    T acc = z;
    for (std::size_t i = 0; i < n; ++i) acc = f(acc, r[i]);
    return acc;
  }
  auto sums = parray<T>::tabulate(
      nb,
      [&](std::size_t j) {
        std::size_t lo = j * blk;
        std::size_t hi = lo + blk < n ? lo + blk : n;
        T acc = z;
        for (std::size_t i = lo; i < hi; ++i) acc = f(acc, r[i]);
        return acc;
      },
      1);
  T acc = z;
  for (std::size_t j = 0; j < nb; ++j) acc = f(acc, sums[j]);
  return acc;
}

// scan: three-phase blocked; input fused, output MATERIALIZED (no BID).
// Returns (array-backed RAD, total).
template <typename F, typename T, typename Seq>
[[nodiscard]] auto scan(const F& f, T z, const Seq& s) {
  auto r = as_seq(s);
  std::size_t n = r.n;
  std::size_t blk = block_size();
  std::size_t nb = num_blocks_for(n, blk);
  auto sums = parray<T>::tabulate(
      nb,
      [&](std::size_t j) {
        std::size_t lo = j * blk;
        std::size_t hi = lo + blk < n ? lo + blk : n;
        T acc = z;
        for (std::size_t i = lo; i < hi; ++i) acc = f(acc, r[i]);
        return acc;
      },
      1);
  auto partials = parray<T>::uninitialized(nb);
  T acc = z;
  for (std::size_t j = 0; j < nb; ++j) {
    ::new (partials.data() + j) T(acc);
    acc = f(acc, sums[j]);
  }
  auto out = std::make_shared<parray<T>>(parray<T>::uninitialized(n));
  T* q = out->data();
  apply(nb, [&, q](std::size_t j) {
    std::size_t lo = j * blk;
    std::size_t hi = lo + blk < n ? lo + blk : n;
    T a2 = partials[j];
    for (std::size_t i = lo; i < hi; ++i) {
      ::new (q + i) T(a2);
      a2 = f(a2, r[i]);
    }
  });
  return std::pair(rad_shared(std::move(out)), acc);
}

template <typename F, typename T, typename Seq>
[[nodiscard]] auto scan_inclusive(const F& f, T z, const Seq& s) {
  auto r = as_seq(s);
  std::size_t n = r.n;
  std::size_t blk = block_size();
  std::size_t nb = num_blocks_for(n, blk);
  auto sums = parray<T>::tabulate(
      nb,
      [&](std::size_t j) {
        std::size_t lo = j * blk;
        std::size_t hi = lo + blk < n ? lo + blk : n;
        T acc = z;
        for (std::size_t i = lo; i < hi; ++i) acc = f(acc, r[i]);
        return acc;
      },
      1);
  auto partials = parray<T>::uninitialized(nb);
  T acc = z;
  for (std::size_t j = 0; j < nb; ++j) {
    ::new (partials.data() + j) T(acc);
    acc = f(acc, sums[j]);
  }
  auto out = std::make_shared<parray<T>>(parray<T>::uninitialized(n));
  T* q = out->data();
  apply(nb, [&, q](std::size_t j) {
    std::size_t lo = j * blk;
    std::size_t hi = lo + blk < n ? lo + blk : n;
    T a2 = partials[j];
    for (std::size_t i = lo; i < hi; ++i) {
      a2 = f(a2, r[i]);
      ::new (q + i) T(a2);
    }
  });
  return std::pair(rad_shared(std::move(out)), acc);
}

namespace detail {
// Copy ragged packed pieces into one contiguous array (the R versions of
// filter/flatten must return materialized random-access results — that is
// precisely the O(n) write pass BIDs avoid).
template <typename Pieces>
[[nodiscard]] auto concat_eager(const Pieces& pieces) {
  auto [offsets, m] = array_ops::size_offsets(
      pieces.size(), [&](std::size_t k) { return pieces[k].size(); });
  return array_ops::detail::concat_pieces(pieces, offsets, m);
}
}  // namespace detail

// filter: blocked pack (input fused) + eager concatenation of survivors.
template <typename P, typename Seq>
[[nodiscard]] auto filter(const P& p, const Seq& s) {
  auto r = as_seq(s);
  using T = typename decltype(r)::value_type;
  std::size_t n = r.n;
  std::size_t blk = block_size();
  std::size_t nb = num_blocks_for(n, blk);
  using buffer = memory::tracked_vector<T>;
  auto packed = parray<buffer>::tabulate(
      nb,
      [&](std::size_t j) {
        std::size_t lo = j * blk;
        std::size_t hi = lo + blk < n ? lo + blk : n;
        buffer out;
        for (std::size_t i = lo; i < hi; ++i) {
          auto x = r[i];
          if (p(x)) out.push_back(std::move(x));
        }
        return out;
      },
      1);
  return detail::concat_eager(packed);
}

template <typename F, typename Seq>
[[nodiscard]] auto filter_op(const F& f, const Seq& s) {
  auto r = as_seq(s);
  using T = typename decltype(r)::value_type;
  using U = typename std::invoke_result_t<const F&, T>::value_type;
  std::size_t n = r.n;
  std::size_t blk = block_size();
  std::size_t nb = num_blocks_for(n, blk);
  using buffer = memory::tracked_vector<U>;
  auto packed = parray<buffer>::tabulate(
      nb,
      [&](std::size_t j) {
        std::size_t lo = j * blk;
        std::size_t hi = lo + blk < n ? lo + blk : n;
        buffer out;
        for (std::size_t i = lo; i < hi; ++i) {
          if (auto v = f(r[i])) out.push_back(std::move(*v));
        }
        return out;
      },
      1);
  return detail::concat_eager(packed);
}

// flatten: force the outer sequence, then eagerly concatenate the inner
// sequences into one contiguous array.
template <typename Seq>
[[nodiscard]] auto flatten(const Seq& s) {
  auto inners = to_array(as_seq(s));
  return detail::concat_eager(inners);
}

// Effectful traversal, input fused.
template <typename Seq, typename G>
void apply_each(const Seq& s, const G& g) {
  auto r = as_seq(s);
  parallel_for(0, r.n, [&](std::size_t i) { g(r[i]); });
}

}  // namespace pbds::radlib
