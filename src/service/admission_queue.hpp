// Bounded admission queue + backpressure policy for the pipeline service.
//
// The queue itself is a plain bounded FIFO of job records, externally
// synchronized by pipeline_service's mutex — blocking (the `block`
// policy's wait) lives in the service, which owns the condition
// variables; this type only answers "is there room" and "which job gets
// shed". Keeping it passive is what makes the admission decision sequence
// replayable: every decision happens under one lock, in submission order.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>

namespace pbds::service {

// What submit() does when the queue is at capacity:
//   block       — wait for space (or for drain to start).
//   reject      — throw pbds::overloaded{queue_full} to the submitter.
//   shed_oldest — admit the new job, evict the oldest *queued* job, whose
//                 ticket fails with pbds::overloaded{shed}. Freshness
//                 policy: under sustained overload the queue holds the
//                 newest work instead of growing stale head-of-line jobs.
enum class backpressure : unsigned char { block, reject, shed_oldest };

[[nodiscard]] constexpr const char* to_string(backpressure p) noexcept {
  switch (p) {
    case backpressure::block:
      return "block";
    case backpressure::reject:
      return "reject";
    case backpressure::shed_oldest:
      return "shed_oldest";
  }
  return "unknown";
}

template <typename Record>
class admission_queue {
 public:
  explicit admission_queue(std::size_t capacity) noexcept
      : capacity_(capacity == 0 ? 1 : capacity) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }
  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] bool full() const noexcept { return q_.size() >= capacity_; }

  void push(std::shared_ptr<Record> r) { q_.push_back(std::move(r)); }

  // Pop the next job to run (FIFO).
  [[nodiscard]] std::shared_ptr<Record> pop() {
    if (q_.empty()) return nullptr;
    auto r = std::move(q_.front());
    q_.pop_front();
    return r;
  }

  // Evict the oldest queued job to make room (shed_oldest policy).
  [[nodiscard]] std::shared_ptr<Record> evict_oldest() { return pop(); }

  // Drain support: hand every remaining queued job to the caller.
  [[nodiscard]] std::deque<std::shared_ptr<Record>> take_all() {
    std::deque<std::shared_ptr<Record>> out;
    out.swap(q_);
    return out;
  }

 private:
  std::size_t capacity_;
  std::deque<std::shared_ptr<Record>> q_;
};

}  // namespace pbds::service
