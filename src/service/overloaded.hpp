// pbds::overloaded — the pipeline service's refusal exception.
//
// The service (pipeline_service.hpp) sheds load instead of queueing
// unboundedly; every shed path surfaces as this one exception type, with
// an `overload_reason` saying *which* protection fired. Like
// budget_exceeded and stall_detected, it flows through the fork-join
// cancellation protocol as an ordinary exception: a drained-away in-flight
// job's root join rethrows it with the pool quiescent.
#pragma once

#include <stdexcept>
#include <string>

namespace pbds {

enum class overload_reason : unsigned char {
  queue_full,       // admission queue at capacity under the reject policy
  shed,             // this (oldest) queued job was dropped to admit a newer one
  circuit_open,     // the job class's circuit breaker is open
  draining,         // the service no longer accepts work
  drain_cancelled,  // drain deadline passed before this job finished
};

[[nodiscard]] constexpr const char* to_string(overload_reason r) noexcept {
  switch (r) {
    case overload_reason::queue_full:
      return "queue_full";
    case overload_reason::shed:
      return "shed";
    case overload_reason::circuit_open:
      return "circuit_open";
    case overload_reason::draining:
      return "draining";
    case overload_reason::drain_cancelled:
      return "drain_cancelled";
  }
  return "unknown";
}

class overloaded : public std::runtime_error {
 public:
  explicit overloaded(overload_reason reason)
      : std::runtime_error(std::string("pbds::overloaded: ") +
                           to_string(reason)),
        reason_(reason) {}

  [[nodiscard]] overload_reason reason() const noexcept { return reason_; }

 private:
  overload_reason reason_;
};

}  // namespace pbds
