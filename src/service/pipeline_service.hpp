// pipeline_service — an overload-resilient executor for delayed-pipeline
// jobs on the fork-join pool.
//
// The paper's library gives each *pipeline* bounded space; this layer
// gives a *process full of concurrent pipelines* bounded everything:
//
//   admission     — a bounded FIFO with a configurable backpressure policy
//                   (block / reject with pbds::overloaded / shed-oldest).
//   isolation     — each job runs under its own budget_scope + deadline
//                   (job_limits), so one hog degrades itself, not the
//                   service.
//   retry         — budget_exceeded / stall_detected are transient under
//                   concurrency; jobs retry with jittered exponential
//                   backoff before failing for real.
//   circuit break — a per-class breaker (circuit_breaker.hpp) stops
//                   admitting a poisoned job class after K consecutive
//                   failures, probing it half-open after a count-based
//                   cooldown.
//   drain         — stop admissions, run what's queued under a drain
//                   deadline, cancel stragglers through the fork-join
//                   cancellation protocol, leave the pool quiescent and
//                   reusable.
//
// Every decision (admit / reject / shed / trip / probe / cancel / drain)
// is taken under one mutex, in submission order, and recorded in an event
// trace with an FNV-1a hash — run the same decision-relevant inputs (same
// seed, manual mode) twice and the traces are identical, which is how
// tests/test_service.cpp replays overload interleavings (docs/TESTING.md).
//
// Threading modes:
//   dispatchers = 0  — *manual*: nothing runs until the owner calls
//                      run_one() / drain(); fully deterministic, used by
//                      the replay tests.
//   dispatchers > 0  — that many service threads pull jobs. Dispatchers
//                      enroll as scheduler guests (sched::guest_worker) so
//                      the pipelines they run fork real stealable work
//                      instead of degrading to the sequential fast path.
//
// Lock order: service mutex before any job_record mutex; never the
// reverse. Control operations (drain, destruction) belong to one owner
// thread; submit/ticket APIs are thread-safe.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/env.hpp"
#include "integrity/block_digest.hpp"
#include "memory/budget.hpp"
#include "recovery/resumable.hpp"
#include "sched/cancellation.hpp"
#include "sched/exec_policy.hpp"
#include "sched/scheduler.hpp"
#include "service/admission_queue.hpp"
#include "service/circuit_breaker.hpp"
#include "service/overloaded.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pbds::service {

// Per-job resource envelope. Non-positive budget/deadline means "no
// constraint"; negative retry fields mean "use the service default".
struct job_limits {
  std::int64_t budget_bytes = 0;      // budget_scope for the job's pipelines
  long deadline_ms = 0;               // per-attempt region deadline
  int max_retries = -1;               // retries of budget_exceeded/stall
  std::int64_t retry_backoff_us = -1; // base of the jittered backoff ladder
};

struct service_config {
  std::size_t queue_capacity = 64;
  backpressure policy = backpressure::block;
  unsigned dispatchers = 0;       // 0 = manual mode (owner calls run_one)
  int breaker_threshold = 4;      // K consecutive failures trip a class
  int breaker_cooldown = 8;       // refusals while open before a probe
  int default_retries = 2;
  std::int64_t default_backoff_us = 100;
  std::uint64_t seed = 0x5eedull; // salts the per-job retry jitter
  // Newest trace entries retained for trace(); older ones are dropped
  // (counted in trace_dropped()). trace_hash() stays incremental over the
  // *full* event sequence, so replay fingerprints survive the bound.
  std::size_t trace_capacity = 1 << 16;
  // Most resumable jobs drain() will park for readmission into a later
  // service; beyond this, drain-cancelled checkpoints are discarded.
  std::size_t max_parked = 256;

  // PBDS_SERVICE_* knobs, parsed strictly (core/env.hpp): malformed
  // values warn once and keep the default. POLICY is numeric:
  // 0 = block, 1 = reject, 2 = shed_oldest.
  [[nodiscard]] static service_config from_env() {
    namespace de = pbds::detail;
    service_config c;
    c.queue_capacity = static_cast<std::size_t>(de::env_integer(
        "PBDS_SERVICE_QUEUE_CAP", 1, 1 << 20,
        static_cast<long long>(c.queue_capacity)));
    c.policy = static_cast<backpressure>(de::env_integer(
        "PBDS_SERVICE_POLICY", 0, 2, static_cast<long long>(c.policy)));
    c.dispatchers = static_cast<unsigned>(de::env_integer(
        "PBDS_SERVICE_DISPATCHERS", 0, 64, c.dispatchers));
    c.breaker_threshold = static_cast<int>(de::env_integer(
        "PBDS_SERVICE_BREAKER_K", 1, 1000000, c.breaker_threshold));
    c.breaker_cooldown = static_cast<int>(de::env_integer(
        "PBDS_SERVICE_BREAKER_COOLDOWN", 1, 1000000, c.breaker_cooldown));
    c.default_retries = static_cast<int>(
        de::env_integer("PBDS_SERVICE_RETRIES", 0, 100, c.default_retries));
    c.default_backoff_us = de::env_integer("PBDS_SERVICE_BACKOFF_US", 0,
                                           10000000, c.default_backoff_us);
    c.trace_capacity = static_cast<std::size_t>(de::env_integer(
        "PBDS_SERVICE_TRACE_CAP", 0, 1 << 24,
        static_cast<long long>(c.trace_capacity)));
    c.max_parked = static_cast<std::size_t>(de::env_integer(
        "PBDS_RESUME_MAX_PARKED", 0, 1 << 20,
        static_cast<long long>(c.max_parked)));
    return c;
  }
};

enum class job_status : unsigned char {
  queued,
  running,
  done,
  failed,     // thunk failed after the retry ladder
  shed,       // evicted by the shed_oldest policy
  cancelled,  // drain deadline cancelled it (queued or in flight)
};

[[nodiscard]] constexpr bool is_terminal(job_status s) noexcept {
  return s != job_status::queued && s != job_status::running;
}

// Service decisions, in the order they are taken; the trace of
// (event, job_class) pairs is the replay artifact.
enum class event : unsigned char {
  admit,
  reject_full,      // reject policy, queue at capacity
  shed,             // shed_oldest evicted this class's oldest queued job
  reject_open,      // circuit breaker refused the class
  probe,            // breaker admitted a half-open probe
  reject_draining,  // submitted after drain began
  complete,
  fail,
  retry,
  trip,   // breaker closed -> open
  close,  // probe succeeded, breaker open -> closed
  cancel, // drain cancelled a queued or in-flight job
  drain_begin,
  drain_end,
  resume,   // a retry of a checkpointed job (aux = blocks already complete)
  park,     // drain parked a cancelled resumable job's checkpoint
  readmit,  // a parked checkpoint was resubmitted (aux = blocks salvageable)
  corrupt,  // corruption detected in an attempt (aux = blocks quarantined,
            // 0 when the attempt itself threw corruption_detected)
  worker_lost,  // an attempt died because the pool lost a worker (aux =
                // blocks already complete for checkpointed jobs, else 0)
  repair,       // pool repairs observed since the last sample (aux = count)
};

[[nodiscard]] constexpr const char* to_string(event e) noexcept {
  switch (e) {
    case event::admit: return "admit";
    case event::reject_full: return "reject_full";
    case event::shed: return "shed";
    case event::reject_open: return "reject_open";
    case event::probe: return "probe";
    case event::reject_draining: return "reject_draining";
    case event::complete: return "complete";
    case event::fail: return "fail";
    case event::retry: return "retry";
    case event::trip: return "trip";
    case event::close: return "close";
    case event::cancel: return "cancel";
    case event::drain_begin: return "drain_begin";
    case event::drain_end: return "drain_end";
    case event::resume: return "resume";
    case event::park: return "park";
    case event::readmit: return "readmit";
    case event::corrupt: return "corrupt";
    case event::worker_lost: return "worker_lost";
    case event::repair: return "repair";
  }
  return "unknown";
}

struct trace_entry {
  event ev;
  unsigned job_class;
  // Event-specific payload: resumed/salvageable block counts for
  // resume/park/readmit, 0 elsewhere. Folded into trace_hash(), so replay
  // fingerprints cover *how much* progress recovery preserved, not just
  // that it happened.
  std::uint32_t aux = 0;
  friend bool operator==(const trace_entry&, const trace_entry&) = default;
};

struct service_stats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  // queue_full + circuit_open + draining
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t retries = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_probes = 0;
  // Recovery accounting (checkpointed jobs only).
  std::uint64_t resumed = 0;                // retries that resumed a ledger
  std::uint64_t parked = 0;                 // checkpoints parked by drain
  std::uint64_t readmitted = 0;             // parked checkpoints resubmitted
  std::uint64_t completed_after_resume = 0; // done on a 2nd+ attempt
  std::uint64_t blocks_salvaged = 0;        // block executions avoided
  std::uint64_t blocks_redone = 0;          // started-incomplete re-runs
  // Integrity accounting (event::corrupt trail).
  std::uint64_t corrupt_detected = 0;    // attempts that surfaced corruption
  std::uint64_t blocks_quarantined = 0;  // salvage digests that mismatched
  std::uint64_t blocks_reexecuted = 0;   // quarantined blocks re-run to done
  // Worker-loss accounting (event::worker_lost / event::repair trail).
  std::uint64_t worker_lost_seen = 0;  // attempts that died to a lost worker
  std::uint64_t repairs_observed = 0;  // pool repairs folded into the trace
};

// Thunk form of a checkpointed job: receives the job's checkpoint and
// binds its resumable slots to whatever checkpointed ops it runs.
using resumable_fn = std::function<void(recovery::job_checkpoint&)>;

namespace detail {

struct job_record {
  std::function<void()> thunk;
  // Checkpointed jobs use these two instead of `thunk`: the checkpoint
  // survives failed attempts (retry resumes it) and drain (parked for
  // readmission into a later service).
  resumable_fn rthunk;
  std::shared_ptr<recovery::job_checkpoint> checkpoint;
  bool readmitted = false;  // admitted with a previously-run checkpoint
  unsigned job_class = 0;
  job_limits limits;
  std::uint64_t id = 0;
  bool probe = false;  // this admission is the class's half-open probe
  // Corruption policy state: set on the first mismatch (quarantine or
  // thrown corruption_detected); later attempts of this job then run with
  // salvage verification *forced* on, even past a PBDS_VERIFY_RESUME=0
  // opt-out. Only touched by the executing dispatcher.
  bool corrupt_seen = false;
  // End-to-end latency clock: submit construction to terminal transition
  // (telemetry::hist::service_latency_us).
  std::chrono::steady_clock::time_point submitted_at =
      std::chrono::steady_clock::now();

  // Terminal-state handshake. Lock order: after the service mutex.
  std::mutex m;
  std::condition_variable cv;
  job_status status = job_status::queued;
  std::exception_ptr error;
};

}  // namespace detail

// A drain-cancelled resumable job, extracted via take_parked(): everything
// needed to resubmit it (resubmit()) into this or a fresh service, with
// its partial progress intact.
struct parked_job {
  unsigned job_class = 0;
  job_limits limits;
  resumable_fn thunk;
  std::shared_ptr<recovery::job_checkpoint> checkpoint;
};

// Handle to a submitted job. Copyable; outliving the service is safe (the
// record is shared), but wait()/get() in manual mode only return if
// someone drives run_one()/drain().
class job_ticket {
 public:
  job_ticket() = default;

  [[nodiscard]] bool valid() const noexcept { return rec_ != nullptr; }
  [[nodiscard]] unsigned job_class() const noexcept {
    return rec_ ? rec_->job_class : 0;
  }

  [[nodiscard]] job_status status() const {
    assert(rec_);
    std::lock_guard<std::mutex> lock(rec_->m);
    return rec_->status;
  }

  void wait() const {
    assert(rec_);
    std::unique_lock<std::mutex> lock(rec_->m);
    rec_->cv.wait(lock, [&] { return is_terminal(rec_->status); });
  }

  // Wait, then rethrow the job's failure (overloaded for shed/cancelled,
  // the thunk's own exception for failed). Returns normally iff done.
  void get() const {
    wait();
    std::lock_guard<std::mutex> lock(rec_->m);
    if (rec_->error) std::rethrow_exception(rec_->error);
  }

 private:
  friend class pipeline_service;
  explicit job_ticket(std::shared_ptr<detail::job_record> rec)
      : rec_(std::move(rec)) {}

  std::shared_ptr<detail::job_record> rec_;
};

class pipeline_service {
 public:
  explicit pipeline_service(service_config cfg = {})
      : cfg_(cfg), queue_(cfg.queue_capacity) {
    // Repairs that predate this service belong to nobody's trace.
    {
      std::lock_guard<std::mutex> lock(sched::detail::scheduler_slot_mutex());
      if (auto& slot = sched::detail::global_slot())
        repairs_seen_ = slot->repairs();
    }
    if (cfg_.dispatchers > 0) {
      // Touch the pool from the owner thread first: get_scheduler()
      // enrolls the *first* caller as worker 0, and that must not be a
      // dispatcher (it would leave with the pool's identity).
      (void)sched::get_scheduler();
      dispatchers_.reserve(cfg_.dispatchers);
      for (unsigned i = 0; i < cfg_.dispatchers; ++i)
        dispatchers_.emplace_back([this] { dispatcher_loop(); });
    }
  }

  ~pipeline_service() {
    if (!drained_) drain(0);
  }

  pipeline_service(const pipeline_service&) = delete;
  pipeline_service& operator=(const pipeline_service&) = delete;

  // Submit a pipeline job. Throws pbds::overloaded when the service
  // refuses it (reject policy with a full queue, open circuit for the
  // class, or draining); under the block policy a full queue blocks the
  // caller until space frees or drain begins.
  job_ticket submit(unsigned job_class, std::function<void()> thunk,
                    job_limits limits = {}) {
    auto rec = std::make_shared<detail::job_record>();
    rec->thunk = std::move(thunk);
    rec->job_class = job_class;
    rec->limits = resolve(limits);
    return admit(std::move(rec));
  }

  // Submit a checkpointed job: `fn` receives the job's checkpoint and
  // binds resumable slots for the checkpointed ops it runs. Retries resume
  // from the checkpoint instead of restarting, and a drain parks it for
  // readmission. Pass an existing checkpoint (e.g. from a parked job) to
  // continue its progress; a fresh one is created otherwise.
  job_ticket submit_resumable(
      unsigned job_class, resumable_fn fn, job_limits limits = {},
      std::shared_ptr<recovery::job_checkpoint> checkpoint = nullptr) {
    auto rec = std::make_shared<detail::job_record>();
    rec->readmitted = checkpoint != nullptr && checkpoint->attempts() > 0;
    rec->checkpoint = checkpoint ? std::move(checkpoint)
                                 : std::make_shared<recovery::job_checkpoint>();
    rec->rthunk = std::move(fn);
    rec->job_class = job_class;
    rec->limits = resolve(limits);
    return admit(std::move(rec));
  }

  // Resubmit a job parked by a drain (possibly into a different service),
  // resuming from its parked checkpoint.
  job_ticket resubmit(parked_job&& pj) {
    return submit_resumable(pj.job_class, std::move(pj.thunk), pj.limits,
                            std::move(pj.checkpoint));
  }

  // Extract the jobs drain() parked (resumable jobs it had to cancel).
  [[nodiscard]] std::vector<parked_job> take_parked() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<parked_job> out;
    out.reserve(parked_.size());
    for (auto& pj : parked_) out.push_back(std::move(pj));
    parked_.clear();
    return out;
  }

 private:
  job_ticket admit(std::shared_ptr<detail::job_record> rec) {
    const unsigned job_class = rec->job_class;
    std::unique_lock<std::mutex> lk(mutex_);
    rec->id = next_job_id_++;
    ++stats_.submitted;
    if (draining_) return refuse(rec, event::reject_draining,
                                 overload_reason::draining);
    // Breaker first: a refused class must not consume queue space or
    // evict anyone else's queued work.
    auto& brk = breaker_for(job_class);
    switch (brk.on_submit()) {
      case circuit_breaker::decision::refuse:
        return refuse(rec, event::reject_open, overload_reason::circuit_open);
      case circuit_breaker::decision::probe:
        rec->probe = true;
        ++stats_.breaker_probes;
        record(event::probe, job_class);
        break;
      case circuit_breaker::decision::admit:
        break;
    }
    while (queue_.full()) {
      if (draining_) {
        if (rec->probe) brk.abort_probe();
        return refuse(rec, event::reject_draining, overload_reason::draining);
      }
      switch (cfg_.policy) {
        case backpressure::reject:
          if (rec->probe) brk.abort_probe();
          return refuse(rec, event::reject_full,
                        overload_reason::queue_full);
        case backpressure::shed_oldest: {
          auto victim = queue_.evict_oldest();
          record(event::shed, victim->job_class);
          ++stats_.shed;
          finish(std::move(victim), job_status::shed,
                 std::make_exception_ptr(overloaded(overload_reason::shed)));
          break;
        }
        case backpressure::block:
          cv_space_.wait(lk, [&] { return draining_ || !queue_.full(); });
          break;
      }
    }
    // A blocked submitter can wake to a queue that drain just emptied
    // (take_all frees space and sets draining_ in one step); admitting
    // here would enqueue a job nothing will ever run. Drain wins.
    if (draining_) {
      if (rec->probe) brk.abort_probe();
      return refuse(rec, event::reject_draining, overload_reason::draining);
    }
    queue_.push(rec);
    record(event::admit, job_class);
    ++stats_.admitted;
    if (rec->readmitted) {
      record(event::readmit, job_class,
             static_cast<std::uint32_t>(
                 rec->checkpoint->aggregate().blocks_complete));
      ++stats_.readmitted;
    }
    lk.unlock();
    cv_work_.notify_one();
    return job_ticket(std::move(rec));
  }

 public:
  // Manual mode: run the next queued job on the calling thread. Returns
  // false when the queue is empty. Must be called outside any fork-join
  // region.
  bool run_one() {
    std::shared_ptr<detail::job_record> rec;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      rec = queue_.pop();
      if (!rec) return false;
      ++running_;
    }
    cv_space_.notify_one();
    execute(std::move(rec));
    return true;
  }

  // Graceful drain: stop admissions, give queued + in-flight work
  // `deadline_ms` to finish (negative = unbounded, 0 = none), then cancel
  // stragglers through the cancellation protocol, stop dispatchers, and
  // quiesce the pool. Idempotent; call from the owner thread.
  void drain(long deadline_ms = -1) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (drained_) return;
      if (!draining_) {
        draining_ = true;
        record(event::drain_begin, 0);
      }
    }
    cv_space_.notify_all();  // blocked submitters observe draining_
    const auto cutoff = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms < 0 ? 0 : deadline_ms);
    const bool bounded = deadline_ms >= 0;
    if (dispatchers_.empty()) {
      // Manual mode: this thread runs the backlog itself (none of it for
      // a zero deadline).
      if (!bounded) {
        while (run_one()) {
        }
      } else if (deadline_ms > 0) {
        while (std::chrono::steady_clock::now() < cutoff && run_one()) {
        }
      }
    } else {
      std::unique_lock<std::mutex> lk(mutex_);
      auto drained = [&] { return queue_.empty() && running_ == 0; };
      if (bounded) {
        cv_idle_.wait_until(lk, cutoff, drained);
      } else {
        cv_idle_.wait(lk, drained);
      }
    }
    // Deadline passed (or backlog done): cancel what's left. Queued jobs
    // fail directly; in-flight jobs get pbds::overloaded captured into
    // their root cancel_state and collapse cooperatively.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& rec : queue_.take_all()) {
        record(event::cancel, rec->job_class);
        ++stats_.cancelled;
        // A cancelled probe never reports on_result; re-open the breaker
        // (with cooldown credit) so the class isn't stranded half_open.
        if (rec->probe) breaker_for(rec->job_class).abort_probe();
        park_locked(*rec);
        finish(std::move(rec), job_status::cancelled,
               std::make_exception_ptr(
                   overloaded(overload_reason::drain_cancelled)));
      }
      for (auto* cs : inflight_)
        cs->capture(std::make_exception_ptr(
            overloaded(overload_reason::drain_cancelled)));
      stop_dispatch_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : dispatchers_) t.join();
    dispatchers_.clear();
    // Manual mode has no in-flight jobs here; dispatcher joins covered
    // theirs. The pool itself must be quiescent and reusable.
    sched::quiesce();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      note_repairs_locked();  // repairs during the drain window
      record(event::drain_end, 0);
      drained_ = true;
    }
  }

  [[nodiscard]] bool draining() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
  }

  [[nodiscard]] std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return queue_.capacity();
  }

  [[nodiscard]] service_stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  // The retained tail of the event trace — at most cfg.trace_capacity
  // entries; trace_dropped() counts what aged out of the window.
  [[nodiscard]] std::vector<trace_entry> trace() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<trace_entry>(trace_.begin(), trace_.end());
  }

  [[nodiscard]] std::uint64_t trace_dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return trace_dropped_;
  }

  // FNV-1a over the full (event, job_class) sequence — the replay
  // fingerprint: two runs that made identical decisions in identical
  // order hash equal. Folded incrementally in record(), so it covers
  // every event ever taken even after old entries age out of trace().
  [[nodiscard]] std::uint64_t trace_hash() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return trace_hash_;
  }

  [[nodiscard]] circuit_breaker::state breaker_state(unsigned job_class) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = breakers_.find(job_class);
    return it == breakers_.end() ? circuit_breaker::state::closed
                                 : it->second.current_state();
  }

 private:
  job_limits resolve(job_limits l) const noexcept {
    if (l.max_retries < 0) l.max_retries = cfg_.default_retries;
    if (l.retry_backoff_us < 0) l.retry_backoff_us = cfg_.default_backoff_us;
    return l;
  }

  // Record + finish + throw for every submission-time refusal. Called
  // with the service mutex held. The record was never queued and submit
  // throws before returning a ticket, but it still gets a terminal status
  // so any future caller that stashed the record can't wait forever.
  job_ticket refuse(std::shared_ptr<detail::job_record> rec, event ev,
                    overload_reason reason) {
    record(ev, rec->job_class);
    ++stats_.rejected;
    finish(std::move(rec), job_status::failed,
           std::make_exception_ptr(overloaded(reason)));
    throw overloaded(reason);
  }

  circuit_breaker& breaker_for(unsigned job_class) {
    auto it = breakers_.find(job_class);
    if (it == breakers_.end())
      it = breakers_
               .emplace(job_class,
                        circuit_breaker(cfg_.breaker_threshold,
                                        cfg_.breaker_cooldown))
               .first;
    return it->second;
  }

  void record(event ev, unsigned job_class, std::uint32_t aux = 0) {
    // Mirror every decision into the process-wide metrics registry (and
    // the trace timeline) — the per-class admit/shed/retry/breaker rows a
    // dashboard reads without holding this service's mutex. Rejections of
    // any flavor count as shed load; readmissions count as admissions.
    {
      using tc = telemetry::counter;
      using cc = telemetry::class_counter;
      switch (ev) {
        case event::admit:
        case event::readmit:
          telemetry::count(tc::jobs_admitted);
          telemetry::count_class(cc::admitted, job_class);
          break;
        case event::shed:
        case event::reject_full:
        case event::reject_open:
        case event::reject_draining:
          telemetry::count(tc::jobs_shed);
          telemetry::count_class(cc::shed, job_class);
          break;
        case event::retry:
        case event::resume:
          telemetry::count(tc::jobs_retried);
          telemetry::count_class(cc::retried, job_class);
          break;
        case event::complete:
          telemetry::count(tc::jobs_completed);
          break;
        case event::fail:
          telemetry::count(tc::jobs_failed);
          break;
        case event::trip:
          telemetry::count(tc::breaker_trips);
          telemetry::count_class(cc::breaker_trips, job_class);
          break;
        case event::probe:
          telemetry::count(tc::breaker_probes);
          break;
        case event::close:
          telemetry::count(tc::breaker_closes);
          break;
        default:
          break;
      }
      if (telemetry::trace_enabled())
        telemetry::trace_instant(telemetry::trace_kind::job, to_string(ev),
                                 static_cast<std::int64_t>(job_class));
    }
    auto mix = [this](std::uint8_t b) {
      trace_hash_ ^= b;
      trace_hash_ *= 1099511628211ull;
    };
    mix(static_cast<std::uint8_t>(ev));
    mix(static_cast<std::uint8_t>(job_class));
    mix(static_cast<std::uint8_t>(job_class >> 8));
    mix(static_cast<std::uint8_t>(aux));
    mix(static_cast<std::uint8_t>(aux >> 8));
    mix(static_cast<std::uint8_t>(aux >> 16));
    mix(static_cast<std::uint8_t>(aux >> 24));
    trace_.push_back({ev, job_class, aux});
    while (trace_.size() > cfg_.trace_capacity) {
      trace_.pop_front();
      ++trace_dropped_;
    }
  }

  // Park a drain-cancelled resumable job's checkpoint for readmission.
  // Called with the service mutex held. Bounded by cfg_.max_parked;
  // overflow discards the checkpoint (the job is still reported
  // cancelled either way).
  void park_locked(detail::job_record& rec) {
    if (!rec.checkpoint || !rec.rthunk) return;
    if (parked_.size() >= cfg_.max_parked) return;
    auto p = rec.checkpoint->aggregate();
    parked_.push_back(parked_job{rec.job_class, rec.limits,
                                 std::move(rec.rthunk), rec.checkpoint});
    record(event::park, rec.job_class,
           static_cast<std::uint32_t>(p.blocks_complete));
    ++stats_.parked;
  }

  // Terminal transition on a record. Service mutex may be held; takes the
  // record mutex (lock order: service before record).
  static void finish(std::shared_ptr<detail::job_record> rec, job_status st,
                     std::exception_ptr err) {
    telemetry::observe(
        telemetry::hist::service_latency_us,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - rec->submitted_at)
                .count()));
    {
      std::lock_guard<std::mutex> lock(rec->m);
      rec->status = st;
      rec->error = std::move(err);
    }
    rec->cv.notify_all();
  }

  void dispatcher_loop() {
    // Enroll as a scheduler guest so this thread's fork2join calls push
    // stealable work (and it steals back while joining) instead of
    // falling into the sequential fast path for non-pool threads. If the
    // guest slots are exhausted, jobs still run — sequentially.
    sched::guest_worker guest(sched::get_scheduler());
    for (;;) {
      std::shared_ptr<detail::job_record> rec;
      {
        std::unique_lock<std::mutex> lk(mutex_);
        cv_work_.wait(lk, [&] { return stop_dispatch_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop requested, backlog cancelled
        rec = queue_.pop();
        ++running_;
      }
      cv_space_.notify_one();
      execute(std::move(rec));
    }
  }

  void execute(std::shared_ptr<detail::job_record> rec) {
    {
      std::lock_guard<std::mutex> lock(rec->m);
      rec->status = job_status::running;
    }
    const job_limits& lim = rec->limits;
    std::exception_ptr err;
    bool success = false;
    for (int attempt = 0;; ++attempt) {
      const std::uint64_t q_before =
          rec->checkpoint ? rec->checkpoint->aggregate().quarantined : 0;
      err = run_attempt(*rec);
      // Corruption policy, first half: self-healed corruption. A salvage
      // digest mismatch quarantines and re-executes inside the attempt,
      // so it surfaces here as a quarantine-count delta, not a failure.
      // Record it (aux = blocks quarantined) and arm retry-with-
      // verification for the rest of this job's attempts.
      if (rec->checkpoint) {
        const std::uint64_t dq =
            rec->checkpoint->aggregate().quarantined - q_before;
        if (dq > 0) {
          rec->corrupt_seen = true;
          std::lock_guard<std::mutex> lock(mutex_);
          record(event::corrupt, rec->job_class,
                 static_cast<std::uint32_t>(dq));
          ++stats_.corrupt_detected;
        }
      }
      if (!err) {
        success = true;
        break;
      }
      // Second half: corruption the attempt could not repair in place
      // (bulk-vs-element divergence, a job-level integrity check). It is
      // retryable — with verification forced — but unlike budget/stall it
      // also marks the attempt corrupt, and an exhausted ladder fails the
      // job, which the breaker counts like any other class failure.
      if (is_corruption(err)) {
        rec->corrupt_seen = true;
        std::lock_guard<std::mutex> lock(mutex_);
        record(event::corrupt, rec->job_class);
        ++stats_.corrupt_detected;
      }
      // Worker loss is an executor fault, not a job fault: the pool lost a
      // thread mid-attempt, loss reclamation cancelled the region, and by
      // now (or within a watchdog interval) repair() has respawned the
      // slot. Record the loss — aux carries the checkpointed progress the
      // retry will salvage — then fold any pool repairs into the trace so
      // identical (kill seed, pipeline) runs fingerprint identically.
      if (is_worker_lost(err)) {
        std::lock_guard<std::mutex> lock(mutex_);
        record(event::worker_lost, rec->job_class,
               rec->checkpoint
                   ? static_cast<std::uint32_t>(
                         rec->checkpoint->aggregate().blocks_complete)
                   : 0);
        ++stats_.worker_lost_seen;
      }
      note_repairs();
      if (!retryable(err) || attempt >= lim.max_retries) break;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_) break;  // honor the drain deadline over retries
        // A retry is pointless while the class's breaker is open (other
        // executions of the class tripped it since this job was
        // admitted): fail fast *without* burning a checkpoint attempt or
        // counting a retry — the job never re-executes, so its ledger
        // budget must stay intact for a later readmission.
        auto it = breakers_.find(rec->job_class);
        if (it != breakers_.end() &&
            it->second.current_state() == circuit_breaker::state::open) {
          record(event::reject_open, rec->job_class);
          err = std::make_exception_ptr(
              overloaded(overload_reason::circuit_open));
          break;
        }
        if (rec->checkpoint) {
          record(event::resume, rec->job_class,
                 static_cast<std::uint32_t>(
                     rec->checkpoint->aggregate().blocks_complete));
          ++stats_.resumed;
        } else {
          record(event::retry, rec->job_class);
        }
        ++stats_.retries;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(
          memory::jittered_backoff_us(attempt, lim.retry_backoff_us,
                                      cfg_.seed ^ rec->id)));
    }
    finalize(std::move(rec), success, err);
  }

  // One attempt of the job under its resource envelope. The service owns
  // the attempt's *root* cancel scope: the thunk's fork-join regions nest
  // inside it, so drain can cancel the whole job by capturing into this
  // one state — and a cancellation that collapsed the thunk without
  // unwinding (nested joins bail and return) is still surfaced here by
  // the rethrow_first after the thunk returns.
  std::exception_ptr run_attempt(detail::job_record& rec) {
    telemetry::trace_span span(telemetry::trace_kind::job, "attempt",
                               static_cast<std::int64_t>(rec.job_class));
    const auto attempt_start = std::chrono::steady_clock::now();
    struct attempt_timer {
      std::chrono::steady_clock::time_point start;
      ~attempt_timer() {
        telemetry::observe(
            telemetry::hist::attempt_latency_us,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count()));
      }
    } timer{attempt_start};
    // Retry-with-verification: once a job has seen corruption, all its
    // later attempts verify salvaged blocks regardless of the env opt-out.
    std::optional<integrity::scoped_verify_resume_force> verify;
    if (rec.corrupt_seen) verify.emplace();
    std::optional<memory::budget_scope> budget;
    if (rec.limits.budget_bytes > 0) budget.emplace(rec.limits.budget_bytes);
    std::optional<sched::region_deadline> deadline;
    if (rec.limits.deadline_ms > 0 &&
        sched::current_exec_mode() == sched::exec_mode::parallel) {
      sched::ensure_watchdog_for_deadlines();
      deadline.emplace(std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(rec.limits.deadline_ms));
    }
    sched::cancel_scope scope;
    assert(scope.is_root() && "pipeline_service job inside a fork-join region");
    sched::cancel_state* cs = scope.state();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.push_back(cs);
      // A job popped just before drain's cancellation sweep would miss
      // the capture loop; catch it as it registers.
      if (stop_dispatch_)
        cs->capture(std::make_exception_ptr(
            overloaded(overload_reason::drain_cancelled)));
    }
    try {
      if (rec.checkpoint) {
        // Attempt accounting lives on the checkpoint: one bump per actual
        // thunk execution (the breaker-open fast path above never gets
        // here, so it burns no attempt).
        rec.checkpoint->begin_attempt();
        rec.rthunk(*rec.checkpoint);
      } else {
        rec.thunk();
      }
    } catch (...) {
      cs->capture(std::current_exception());
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
        if (*it == cs) {
          inflight_.erase(it);
          break;
        }
      }
    }
    if (cs->cancelled()) {
      try {
        cs->rethrow_first();
      } catch (...) {
        return std::current_exception();
      }
    }
    return nullptr;
  }

  [[nodiscard]] static bool retryable(const std::exception_ptr& err) {
    try {
      std::rethrow_exception(err);
    } catch (const budget_exceeded&) {
      return true;
    } catch (const stall_detected&) {
      return true;
    } catch (const integrity::corruption_detected&) {
      return true;  // retry-with-verification (see execute)
    } catch (const worker_lost&) {
      return true;  // transient executor fault; the pool self-repairs
    } catch (...) {
      return false;
    }
  }

  [[nodiscard]] static bool is_worker_lost(const std::exception_ptr& err) {
    try {
      std::rethrow_exception(err);
    } catch (const worker_lost&) {
      return true;
    } catch (...) {
      return false;
    }
  }

  // Fold the pool's repair counter into the trace: any repairs since the
  // last sample become one event::repair with aux = the delta. Sampled
  // after every attempt and at drain_end, under the service mutex, so the
  // delta is claimed exactly once however many jobs observed it.
  void note_repairs_locked() {
    std::uint64_t now = 0;
    {
      std::lock_guard<std::mutex> slot_lock(sched::detail::scheduler_slot_mutex());
      if (auto& slot = sched::detail::global_slot()) now = slot->repairs();
    }
    if (now > repairs_seen_) {
      const std::uint64_t delta = now - repairs_seen_;
      repairs_seen_ = now;
      record(event::repair, 0, static_cast<std::uint32_t>(delta));
      stats_.repairs_observed += delta;
    }
  }

  void note_repairs() {
    std::lock_guard<std::mutex> lock(mutex_);
    note_repairs_locked();
  }

  [[nodiscard]] static bool is_corruption(const std::exception_ptr& err) {
    try {
      std::rethrow_exception(err);
    } catch (const integrity::corruption_detected&) {
      return true;
    } catch (...) {
      return false;
    }
  }

  [[nodiscard]] static bool drain_cancelled(const std::exception_ptr& err) {
    try {
      std::rethrow_exception(err);
    } catch (const overloaded& o) {
      return o.reason() == overload_reason::drain_cancelled;
    } catch (...) {
      return false;
    }
  }

  void finalize(std::shared_ptr<detail::job_record> rec, bool success,
                std::exception_ptr err) {
    job_status st;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const bool cancelled = !success && drain_cancelled(err);
      if (success) {
        st = job_status::done;
        record(event::complete, rec->job_class);
        ++stats_.completed;
        if (rec->checkpoint) {
          auto p = rec->checkpoint->aggregate();
          stats_.blocks_salvaged += p.salvaged;
          stats_.blocks_redone += p.redone;
          stats_.blocks_quarantined += p.quarantined;
          stats_.blocks_reexecuted += p.reexecuted;
          if (rec->checkpoint->attempts() > 1 || rec->readmitted)
            ++stats_.completed_after_resume;
        }
      } else if (cancelled) {
        st = job_status::cancelled;
        record(event::cancel, rec->job_class);
        ++stats_.cancelled;
        // Preserve the partial progress of a drain-cancelled in-flight
        // job for readmission into a post-drain service.
        if (draining_) park_locked(*rec);
      } else {
        st = job_status::failed;
        record(event::fail, rec->job_class);
        ++stats_.failed;
      }
      if (!cancelled) {
        // A drain cancellation says nothing about the class's health; it
        // must not trip (or probe-close) the breaker.
        auto& brk = breaker_for(rec->job_class);
        if (brk.on_result(success, rec->probe)) {
          record(event::trip, rec->job_class);
          ++stats_.breaker_trips;
        } else if (rec->probe && success) {
          record(event::close, rec->job_class);
        }
      } else if (rec->probe) {
        // The cancelled probe will never report on_result; re-open the
        // breaker (with cooldown credit) instead of stranding the class
        // half_open with no probe in flight.
        breaker_for(rec->job_class).abort_probe();
      }
      --running_;
    }
    cv_idle_.notify_all();
    finish(std::move(rec), st, std::move(err));
  }

  service_config cfg_;
  mutable std::mutex mutex_;
  std::condition_variable cv_work_;   // dispatchers: work available / stop
  std::condition_variable cv_space_;  // block-policy submitters: space freed
  std::condition_variable cv_idle_;   // drain: backlog finished
  admission_queue<detail::job_record> queue_;
  std::deque<parked_job> parked_;
  std::unordered_map<unsigned, circuit_breaker> breakers_;
  std::vector<sched::cancel_state*> inflight_;
  std::deque<trace_entry> trace_;
  std::uint64_t trace_hash_ = 1469598103934665603ull;  // FNV-1a offset basis
  std::uint64_t trace_dropped_ = 0;
  service_stats stats_;
  std::vector<std::thread> dispatchers_;
  std::uint64_t next_job_id_ = 0;
  std::uint64_t repairs_seen_ = 0;  // pool repairs already folded into trace
  std::size_t running_ = 0;
  bool draining_ = false;
  bool drained_ = false;
  bool stop_dispatch_ = false;
};

}  // namespace pbds::service
