// Closed-loop overload driver for the pipeline service.
//
// `producers` threads each submit `jobs_per_producer` delayed-pipeline
// jobs (class chosen per-job from a seeded splitmix64 stream) and wait
// for each ticket before submitting the next — a classic closed loop, so
// offered load is controlled by the producer count, not a rate parameter.
// Run with more producers than dispatchers (the CI soak uses 2× the
// queue-feeding capacity) and the admission queue saturates, exercising
// the backpressure policy, the retry ladder (pair with a budget), and —
// with a poisoned class — the circuit breaker, all under real threads.
//
// Results feed bench/service_soak.cpp and `pbdsbench --service`:
// throughput, shed rate, and latency percentiles for the json_report.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "array/parray.hpp"
#include "core/delayed.hpp"
#include "integrity/block_digest.hpp"
#include "recovery/checkpoint_ops.hpp"
#include "service/pipeline_service.hpp"
#include "telemetry/trace.hpp"

namespace pbds::service {

struct soak_config {
  unsigned producers = 4;
  std::size_t jobs_per_producer = 64;
  std::size_t n = std::size_t{1} << 14;  // elements per pipeline
  std::uint64_t seed = 42;
  int poison_class = -1;            // jobs of this class throw (trips breaker)
  std::int64_t job_budget_bytes = 0;  // per-job budget_scope (0 = none)
  long job_deadline_ms = 0;           // per-attempt deadline (0 = none)
  long drain_deadline_ms = -1;        // -1 = drain the full backlog
  bool resumable = false;  // submit checkpointed jobs (block-granular resume)
  // Arm the integrity bit-flip injector for the run: every resume flips
  // bits in this many bytes of the job's completed blocks (0 = off).
  // Implies per-job result verification against the per-class oracle.
  std::size_t bit_flips = 0;
  // Deliver this many injected worker deaths over the run (0 = off): a
  // monitor thread arms seed-derived (victim, boundary) kills one at a
  // time, waiting for each delivery, while a fast watchdog with loss
  // detection declares/reclaims/repairs. Implies per-class oracle
  // verification — every kill is survived bit-identically or reported.
  std::size_t worker_kills = 0;
  service_config service;
};

struct soak_result {
  service_stats stats;
  double seconds = 0;
  double throughput_jobs_per_s = 0;  // completed jobs per wall second
  double shed_rate = 0;  // (rejected + shed + cancelled) / submitted
  double p50_ms = 0;     // completed-job latency percentiles
  double p99_ms = 0;
  std::uint64_t trace_hash = 0;
  std::uint64_t checksum = 0;  // xor of completed pipelines' results
  // Oracle accounting when bit_flips > 0: every completed job's result is
  // compared against the deterministic per-class expected value, so any
  // corruption the digest layer failed to catch shows up here.
  std::uint64_t result_mismatches = 0;  // undetected corruption (must be 0)
  std::uint64_t bit_flips_delivered = 0;
  // Worker-loss accounting when worker_kills > 0 (deltas over this run).
  std::uint64_t worker_kills_delivered = 0;
  std::uint64_t workers_lost = 0;  // kills detected (must equal delivered)
  std::uint64_t repairs = 0;       // slots respawned by repair()
};

// The four job classes, each a different shape of delayed pipeline (same
// idioms as the §6 benchmarks): 0 map+reduce, 1 filter+scan+reduce,
// 2 scan_inclusive, 3 map-to-inners+flatten+to_array (allocation-heavy —
// the class that feels a budget first).
inline std::uint64_t soak_pipeline(unsigned job_class, std::size_t n) {
  auto plus = [](std::uint64_t a, std::uint64_t b) { return a + b; };
  switch (job_class & 3u) {
    case 0: {
      auto sq = delayed::map(
          [](std::size_t i) {
            return static_cast<std::uint64_t>(i) * (i ^ 0x9e37u);
          },
          delayed::iota(n));
      return delayed::reduce(plus, std::uint64_t{0}, sq);
    }
    case 1: {
      auto input = parray<std::uint64_t>::tabulate(
          n, [](std::size_t i) { return static_cast<std::uint64_t>(i); });
      auto thirds =
          delayed::filter([](std::uint64_t v) { return v % 3 == 0; }, input);
      auto prefix = delayed::scan(plus, std::uint64_t{0}, thirds).first;
      return delayed::reduce(plus, std::uint64_t{0}, prefix);
    }
    case 2: {
      auto [inc, total] = delayed::scan_inclusive(
          plus, std::uint64_t{0},
          delayed::tabulate(n, [](std::size_t i) {
            return static_cast<std::uint64_t>(i * 2654435761u);
          }));
      (void)inc;
      return total;
    }
    default: {
      std::size_t outers = n / 64 + 1;
      auto heads = parray<std::uint64_t>::tabulate(
          outers, [](std::size_t i) { return static_cast<std::uint64_t>(i); });
      auto inners = delayed::map(
          [](std::uint64_t v) {
            return parray<std::uint64_t>::tabulate(
                64, [v](std::size_t j) { return v + j; });
          },
          delayed::view(heads));
      auto flat = delayed::to_array(delayed::flatten(inners));
      return delayed::reduce(plus, std::uint64_t{0}, delayed::view(flat));
    }
  }
}

// Checkpointed twin of soak_pipeline: the same four pipeline shapes with
// their blockwise terminal passes routed through recovery:: ops bound to
// stable slots of the job's checkpoint, so a retried or readmitted job
// redoes only the blocks its failed attempts never finished. Eager
// pipeline *construction* (class 1's filter pack, class 3's flatten) is
// rebuilt per attempt — recovery is block-granular over the checkpointed
// passes, not a full continuation snapshot.
inline std::uint64_t soak_pipeline_resumable(unsigned job_class,
                                             std::size_t n,
                                             recovery::job_checkpoint& ck) {
  auto plus = [](std::uint64_t a, std::uint64_t b) { return a + b; };
  switch (job_class & 3u) {
    case 0: {
      auto sq = delayed::map(
          [](std::size_t i) {
            return static_cast<std::uint64_t>(i) * (i ^ 0x9e37u);
          },
          delayed::iota(n));
      return recovery::reduce(plus, std::uint64_t{0}, sq,
                              ck.slot<std::uint64_t>(0));
    }
    case 1: {
      auto input = parray<std::uint64_t>::tabulate(
          n, [](std::size_t i) { return static_cast<std::uint64_t>(i); });
      auto thirds =
          delayed::filter([](std::uint64_t v) { return v % 3 == 0; }, input);
      auto prefix = recovery::scan(plus, std::uint64_t{0}, thirds,
                                   ck.slot<std::uint64_t>(0))
                        .first;
      return recovery::reduce(plus, std::uint64_t{0}, prefix,
                              ck.slot<std::uint64_t>(1));
    }
    case 2: {
      auto [inc, total] = recovery::scan_inclusive(
          plus, std::uint64_t{0},
          delayed::tabulate(n,
                            [](std::size_t i) {
                              return static_cast<std::uint64_t>(i *
                                                                2654435761u);
                            }),
          ck.slot<std::uint64_t>(0));
      (void)inc;
      return total;
    }
    default: {
      std::size_t outers = n / 64 + 1;
      auto heads = parray<std::uint64_t>::tabulate(
          outers, [](std::size_t i) { return static_cast<std::uint64_t>(i); });
      auto inners = delayed::map(
          [](std::uint64_t v) {
            return parray<std::uint64_t>::tabulate(
                64, [v](std::size_t j) { return v + j; });
          },
          delayed::view(heads));
      const auto& flat = recovery::to_array(delayed::flatten(inners),
                                            ck.slot<std::uint64_t>(0));
      return delayed::reduce(plus, std::uint64_t{0}, delayed::view(flat));
    }
  }
}

inline soak_result run_soak(soak_config cfg) {
  // A closed loop needs someone to run the jobs the producers wait on;
  // manual mode would deadlock them.
  if (cfg.service.dispatchers == 0) cfg.service.dispatchers = 2;
  // Per-class oracle: each pipeline's result depends only on (class, n),
  // so one clean evaluation per class is the ground truth every completed
  // job is checked against when a fault injector (bit flips or worker
  // kills) is armed.
  std::uint64_t expected[4] = {0, 0, 0, 0};
  const bool check = cfg.bit_flips > 0 || cfg.worker_kills > 0;
  if (check)
    for (unsigned c = 0; c < 4; ++c) expected[c] = soak_pipeline(c, cfg.n);
  if (cfg.bit_flips > 0) integrity::arm_bit_flips(cfg.bit_flips, cfg.seed);

  // Worker-kill chaos needs a loss-detecting monitor or reclamation never
  // happens and every stranded join hangs. Install a fast one for the run
  // (warn/cancel 0: no stagnation actions, just deadlines + loss passes).
  std::uint64_t kills0 = 0, lost0 = 0, repairs0 = 0;
  if (cfg.worker_kills > 0) {
    kills0 = sched::worker_kills_delivered();
    {
      std::lock_guard<std::mutex> lock(sched::detail::scheduler_slot_mutex());
      if (auto& slot = sched::detail::global_slot()) {
        lost0 = slot->workers_lost();
        repairs0 = slot->repairs();
      }
    }
    sched::watchdog_config wcfg;
    wcfg.period_ms = 2;
    wcfg.warn_intervals = 0;
    wcfg.cancel_intervals = 0;
    // Injected deaths publish `exited` and are detected on the next
    // 2ms sample regardless of this threshold; keep the heartbeat-age
    // fallback generous so an oversubscribed runner's preempted (but
    // live) workers are not declared lost wholesale.
    wcfg.worker_lost_ms = 200;
    sched::start_watchdog(wcfg);
  }
  pipeline_service svc(cfg.service);
  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::mutex lat_mutex;
  std::vector<double> latencies_ms;

  // The killer arms seed-derived (victim, boundary) deaths one at a time,
  // waiting for each delivery before re-arming so exactly one kill is in
  // flight. An idle pool can't reach a boundary, so each arm has a bounded
  // wait and is retried with the next seed; the thread stops once the
  // quota is delivered or the producers finish.
  std::atomic<bool> killer_stop{false};
  std::thread killer;
  if (cfg.worker_kills > 0) {
    killer = std::thread([&cfg, &killer_stop] {
      std::uint64_t state = cfg.seed ^ 0xda3e39cb94b95bdbull;
      std::size_t delivered = 0;
      while (delivered < cfg.worker_kills &&
             !killer_stop.load(std::memory_order_acquire)) {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        const std::uint64_t base = sched::worker_kills_delivered();
        sched::arm_worker_kill(z, static_cast<long>(z % 257));
        for (int spin = 0; spin < 2000; ++spin) {
          if (sched::worker_kills_delivered() > base) break;
          if (killer_stop.load(std::memory_order_acquire)) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (sched::worker_kills_delivered() > base)
          ++delivered;
        else
          sched::disarm_worker_kill();
      }
      sched::disarm_worker_kill();
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(cfg.producers);
  for (unsigned p = 0; p < cfg.producers; ++p) {
    producers.emplace_back([&, p] {
      std::uint64_t state =
          cfg.seed ^ (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(p) + 1));
      std::vector<double> local;
      local.reserve(cfg.jobs_per_producer);
      for (std::size_t j = 0; j < cfg.jobs_per_producer; ++j) {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        const unsigned cls = static_cast<unsigned>(z & 3);
        const bool poisoned =
            cfg.poison_class >= 0 &&
            cls == static_cast<unsigned>(cfg.poison_class);
        job_limits lim;
        lim.budget_bytes = cfg.job_budget_bytes;
        lim.deadline_ms = cfg.job_deadline_ms;
        const auto start = std::chrono::steady_clock::now();
        try {
          const std::size_t n = cfg.n;
          job_ticket ticket;
          const std::uint64_t want = expected[cls];
          if (cfg.resumable) {
            ticket = svc.submit_resumable(
                cls,
                [cls, n, poisoned, check, want, &checksum,
                 &mismatches](recovery::job_checkpoint& ck) {
                  if (poisoned)
                    throw std::runtime_error("soak: poisoned job class");
                  std::uint64_t got = soak_pipeline_resumable(cls, n, ck);
                  if (check && got != want)
                    mismatches.fetch_add(1, std::memory_order_relaxed);
                  checksum.fetch_xor(got, std::memory_order_relaxed);
                },
                lim);
          } else {
            ticket = svc.submit(
                cls,
                [cls, n, poisoned, check, want, &checksum, &mismatches] {
                  if (poisoned)
                    throw std::runtime_error("soak: poisoned job class");
                  std::uint64_t got = soak_pipeline(cls, n);
                  if (check && got != want)
                    mismatches.fetch_add(1, std::memory_order_relaxed);
                  checksum.fetch_xor(got, std::memory_order_relaxed);
                },
                lim);
          }
          ticket.wait();
          if (ticket.status() == job_status::done) {
            local.push_back(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count());
          }
        } catch (const overloaded&) {
          // Refused at admission — expected under overload; keep offering.
        }
      }
      std::lock_guard<std::mutex> lock(lat_mutex);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  for (auto& t : producers) t.join();
  if (cfg.worker_kills > 0) {
    killer_stop.store(true, std::memory_order_release);
    if (killer.joinable()) killer.join();
  }
  svc.drain(cfg.drain_deadline_ms);
  if (cfg.worker_kills > 0) {
    // Let the watchdog declare every delivered kill and finish any
    // in-flight repair so the pool hands back at full strength (bounded:
    // retirement also counts as settled).
    const std::uint64_t killed = sched::worker_kills_delivered() - kills0;
    const auto settle =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    for (;;) {
      bool settled = false;
      {
        std::lock_guard<std::mutex> lock(
            sched::detail::scheduler_slot_mutex());
        if (auto& slot = sched::detail::global_slot())
          settled = slot->workers_lost() - lost0 >= killed &&
                    slot->lost_pending_repair() == 0;
        else
          settled = true;
      }
      if (settled || std::chrono::steady_clock::now() >= settle) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  soak_result r;
  if (cfg.bit_flips > 0) {
    r.bit_flips_delivered = integrity::bit_flips_delivered();
    integrity::disarm_bit_flips();
  }
  if (cfg.worker_kills > 0) {
    r.worker_kills_delivered = sched::worker_kills_delivered() - kills0;
    std::lock_guard<std::mutex> lock(sched::detail::scheduler_slot_mutex());
    if (auto& slot = sched::detail::global_slot()) {
      r.workers_lost = slot->workers_lost() - lost0;
      r.repairs = slot->repairs() - repairs0;
    }
  }
  r.result_mismatches = mismatches.load(std::memory_order_relaxed);
  r.stats = svc.stats();
  r.trace_hash = svc.trace_hash();
  r.checksum = checksum.load(std::memory_order_relaxed);
  r.seconds = seconds;
  r.throughput_jobs_per_s =
      seconds > 0 ? static_cast<double>(r.stats.completed) / seconds : 0;
  r.shed_rate =
      r.stats.submitted == 0
          ? 0
          : static_cast<double>(r.stats.rejected + r.stats.shed +
                                r.stats.cancelled) /
                static_cast<double>(r.stats.submitted);
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    auto at = [&](double q) {
      std::size_t i = static_cast<std::size_t>(
          q * static_cast<double>(latencies_ms.size() - 1));
      return latencies_ms[i];
    };
    r.p50_ms = at(0.50);
    r.p99_ms = at(0.99);
  }
  // End of run: if PBDS_TRACE_FILE is exported, persist the timeline the
  // service/scheduler recorded during the soak (the CI artifact).
  telemetry::flush_trace_from_env();
  return r;
}

}  // namespace pbds::service
