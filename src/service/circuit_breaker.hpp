// Per-job-class circuit breaker for the pipeline service.
//
// Classic three-state breaker, specialized for deterministic replay: every
// transition is driven by *counts* of service decisions (consecutive
// failures, refused submissions), never by wall-clock time, so a run's
// breaker behavior is a pure function of the submission/outcome sequence —
// identical across replays of the same seed (docs/TESTING.md).
//
//   closed    — admit everything; K consecutive failures trip it open.
//   open      — refuse submissions; after `cooldown` refusals, the next
//               submission is admitted as a half-open probe.
//   half_open — one probe in flight; further submissions are refused.
//               Probe success closes the breaker, failure re-opens it.
//
// Externally synchronized: pipeline_service calls on_submit / on_result
// under its own mutex. Not thread-safe on its own.
#pragma once

#include <cstdint>

namespace pbds::service {

class circuit_breaker {
 public:
  enum class decision : unsigned char { admit, probe, refuse };
  enum class state : unsigned char { closed, open, half_open };

  // `threshold` consecutive failures trip the breaker; while open,
  // `cooldown` refused submissions earn the next one a probe. Values < 1
  // are clamped to 1.
  circuit_breaker(int threshold, int cooldown) noexcept
      : threshold_(threshold < 1 ? 1 : threshold),
        cooldown_(cooldown < 1 ? 1 : cooldown) {}

  // Called for every submission of this class. `probe` means: admit, and
  // report the outcome with was_probe = true.
  [[nodiscard]] decision on_submit() noexcept {
    switch (state_) {
      case state::closed:
        return decision::admit;
      case state::open:
        if (++refusals_while_open_ >= cooldown_) {
          state_ = state::half_open;
          return decision::probe;
        }
        return decision::refuse;
      case state::half_open:
        return decision::refuse;  // a probe is already in flight
    }
    return decision::refuse;
  }

  // Called when an admitted job of this class reaches a terminal outcome
  // (after its retry ladder is exhausted). Returns true when this result
  // *tripped* the breaker closed -> open, so the caller can record the
  // trip event exactly once.
  bool on_result(bool success, bool was_probe) noexcept {
    if (was_probe) {
      // half_open: the probe decides.
      if (success) {
        state_ = state::closed;
        consecutive_failures_ = 0;
      } else {
        state_ = state::open;
      }
      refusals_while_open_ = 0;
      return false;
    }
    if (success) {
      consecutive_failures_ = 0;
      return false;
    }
    if (state_ == state::closed && ++consecutive_failures_ >= threshold_) {
      state_ = state::open;
      refusals_while_open_ = 0;
      return true;
    }
    return false;
  }

  // The service granted a probe (on_submit returned probe) but could not
  // actually admit the job (queue full under the reject policy, or drain
  // began). Re-open, keeping the cooldown credit so the next submission
  // probes again — otherwise the class would be stuck half_open with no
  // probe in flight.
  void abort_probe() noexcept {
    if (state_ == state::half_open) {
      state_ = state::open;
      refusals_while_open_ = cooldown_;
    }
  }

  [[nodiscard]] state current_state() const noexcept { return state_; }
  [[nodiscard]] int consecutive_failures() const noexcept {
    return consecutive_failures_;
  }

 private:
  int threshold_;
  int cooldown_;
  state state_ = state::closed;
  int consecutive_failures_ = 0;
  int refusals_while_open_ = 0;
};

}  // namespace pbds::service
