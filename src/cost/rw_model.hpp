// Read/write traffic model — Fig. 5's table for the best-cut pipeline.
//
// The paper explains fusion's benefit on memory-bandwidth-bound machines by
// counting array reads and writes per operation, with the scan split into
// its three phases. This module reproduces that accounting as closed-form
// functions of n (elements) and b (blocks), for both the normal
// (unfused) and fused executions, plus the forced-map variant discussed in
// §3 (4n + O(b)).
#pragma once

#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

namespace pbds::cost {

struct rw {
  double reads = 0;
  double writes = 0;

  rw& operator+=(const rw& o) {
    reads += o.reads;
    writes += o.writes;
    return *this;
  }
  [[nodiscard]] double total() const { return reads + writes; }
};

struct rw_row {
  std::string_view op;
  rw normal;  // unfused execution
  rw fused;   // block-delayed execution ({0,0} = fully delayed/fused away)
};

// The six rows of Fig. 5 for pipeline map -> scan(3 phases) -> map ->
// reduce over n elements in b blocks.
inline std::vector<rw_row> bestcut_rw_table(double n, double b) {
  return {
      // op            normal                fused
      {"map", {n, n}, {0, 0}},                       // fused into phase 1
      {"scan phase 1", {n, b}, {n, b}},              // reads (fused) input
      {"scan phase 2", {b, b}, {b, b}},
      {"scan phase 3", {n + b, n}, {0, 0}},          // delayed into reduce
      {"map", {n, n}, {0, 0}},                       // fused into reduce
      {"reduce", {n, b + 1}, {n + 2 * b, b + 1}},    // re-reads input + partials
  };
}

inline rw rw_total(const std::vector<rw_row>& rows, bool fused) {
  rw t;
  for (const auto& r : rows) t += fused ? r.fused : r.normal;
  return t;
}

// §3's alternative: force the initial map (evaluate it once into an array)
// instead of recomputing it in both passes — 4n + O(b) total.
inline rw bestcut_rw_forced(double n, double b) {
  rw t;
  t += {n, n};              // force the map's result
  t += {n, b};              // scan phase 1 reads the forced array
  t += {b, b};              // scan phase 2
  t += {n + 2 * b, b + 1};  // reduce re-reads forced array + partials
  return t;
}

}  // namespace pbds::cost
