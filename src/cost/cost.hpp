// Executable cost semantics — §5, Fig. 11.
//
// The paper equips every sequence operation with *eager* costs (work, span,
// allocations incurred now) and equips every sequence value with *delayed*
// per-index costs (incurred later, by whichever operation consumes the
// sequence). This module implements that calculus as a small interpreter:
// a `cost_seq` carries its length, representation (RAD/BID) and per-index
// delayed cost functions; each operation returns the new sequence and
// accumulates eager costs into a `cost_meter`.
//
// The model lets users (and our tests) predict, before running anything,
// how much intermediate memory a pipeline allocates and whether fusion
// happens — e.g. the §5.1 BFS bound O(N + M/B) allocation, or Fig. 5's
// read/write table for bestcut (see rw_model.hpp).
//
// Costs are modelled in doubles (they can be astronomically large for
// hypothetical inputs); `bmax` is the paper's max-of-block-sums operator.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

#include "core/block.hpp"

namespace pbds::cost {

// A (work, span, allocation) triple. Allocation counts *elements* of
// intermediate arrays, following Fig. 11.
struct costs {
  double work = 0;
  double span = 0;
  double alloc = 0;

  costs& operator+=(const costs& o) {
    work += o.work;
    span += o.span;
    alloc += o.alloc;
    return *this;
  }
  friend costs operator+(costs a, const costs& b) { return a += b; }
};

inline constexpr costs kUnit{1, 1, 0};  // O(1) work & span, no allocation

enum class repr { rad, bid };

// Per-index delayed costs W*_X(i), S*_X(i), A*_X(i).
using delayed_fn = std::function<costs(std::size_t)>;

inline delayed_fn constant_delayed(costs c) {
  return [c](std::size_t) { return c; };
}

// A sequence in the cost model: length, representation, per-index delayed
// costs. Element values are not modelled — only their costs.
struct cost_seq {
  std::size_t n = 0;
  repr r = repr::rad;
  delayed_fn delayed = constant_delayed(kUnit);
};

// Accumulates the eager costs of a pipeline. Work and allocation add
// across operations; span also adds because the operations of a pipeline
// are sequentially dependent.
class cost_meter {
 public:
  void charge(const costs& c) { total_ += c; }
  [[nodiscard]] const costs& total() const { return total_; }

 private:
  costs total_;
};

namespace detail {

// Sum of delayed costs over all indices.
inline costs sum_delayed(const cost_seq& x) {
  costs acc;
  for (std::size_t i = 0; i < x.n; ++i) acc += x.delayed(i);
  return acc;
}

// bmax^n_i of the delayed spans: max over blocks of the within-block sum
// (each block is sequential; blocks run in parallel).
inline double bmax_delayed_span(const cost_seq& x, std::size_t blk) {
  double best = 0;
  std::size_t nb = num_blocks_for(x.n, blk);
  for (std::size_t j = 0; j < nb; ++j) {
    std::size_t lo = j * blk;
    std::size_t hi = std::min(x.n, lo + blk);
    double s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += x.delayed(i).span;
    best = std::max(best, s);
  }
  return best;
}

inline double log2_ceil(std::size_t n) {
  return n <= 1 ? 1.0 : std::ceil(std::log2(static_cast<double>(n)));
}

}  // namespace detail

// --- the operations of Fig. 11 ------------------------------------------------
//
// Each takes the cost model of the argument function(s) as a `costs` value
// per element (constant over indices, the common case; Fig. 11's full
// generality with per-element f-costs is recovered by folding them into
// the input's delayed costs via map).

// tabulate n f — eager O(1); delayed cost at i is cost(f).
inline cost_seq tabulate(cost_meter& m, std::size_t n,
                         costs f_cost = kUnit) {
  m.charge(kUnit);
  return cost_seq{n, repr::rad, constant_delayed(f_cost + kUnit)};
}

// map f X — eager O(1); representation preserved; delayed adds cost(f).
inline cost_seq map(cost_meter& m, const cost_seq& x, costs f_cost = kUnit) {
  m.charge(kUnit);
  auto inner = x.delayed;
  return cost_seq{x.n, x.r, [inner, f_cost](std::size_t i) {
                    return inner(i) + f_cost;
                  }};
}

// zip — eager O(1); BID if either side is BID; delayed costs add.
inline cost_seq zip(cost_meter& m, const cost_seq& x, const cost_seq& y) {
  m.charge(kUnit);
  repr r = (x.r == repr::bid || y.r == repr::bid) ? repr::bid : repr::rad;
  auto dx = x.delayed;
  auto dy = y.delayed;
  return cost_seq{x.n, r, [dx, dy](std::size_t i) {
                    return dx(i) + dy(i) + kUnit;
                  }};
}

// force X — output RAD with unit delayed costs; eager costs are the sums
// of the input's delayed costs, plus |X| allocation for the result array.
inline cost_seq force(cost_meter& m, const cost_seq& x) {
  std::size_t blk = block_size();
  costs total = detail::sum_delayed(x);
  m.charge(costs{total.work,
                 detail::bmax_delayed_span(x, blk) +
                     detail::log2_ceil(num_blocks_for(x.n, blk)),
                 static_cast<double>(x.n) + total.alloc});
  return cost_seq{x.n, repr::rad, constant_delayed(kUnit)};
}

// reduce f z X (f simple) — eager: all delayed work, bmax'ed span plus a
// log-depth combine, |X|/B allocation for the block sums.
inline costs reduce(cost_meter& m, const cost_seq& x) {
  std::size_t blk = block_size();
  costs total = detail::sum_delayed(x);
  costs eager{total.work + static_cast<double>(x.n),
              detail::log2_ceil(x.n) + detail::bmax_delayed_span(x, blk),
              static_cast<double>(num_blocks_for(x.n, blk)) + total.alloc};
  m.charge(eager);
  return eager;
}

// scan f z X (f simple) — output is BID with unit extra delayed costs ON
// TOP of the input's (phase 3 re-reads the input); eager costs are phase 1
// (delayed input work) + |X|/B allocation for partials.
inline cost_seq scan(cost_meter& m, const cost_seq& x) {
  std::size_t blk = block_size();
  costs total = detail::sum_delayed(x);
  m.charge(costs{total.work + static_cast<double>(x.n),
                 detail::log2_ceil(x.n) + detail::bmax_delayed_span(x, blk),
                 static_cast<double>(num_blocks_for(x.n, blk)) + total.alloc});
  auto inner = x.delayed;
  return cost_seq{x.n, repr::bid, [inner](std::size_t i) {
                    return inner(i) + kUnit;
                  }};
}

// scan_inclusive — identical cost structure to scan (same three phases).
inline cost_seq scan_inclusive(cost_meter& m, const cost_seq& x) {
  return scan(m, x);
}

// filter p X — output BID with unit delayed costs (survivors are packed);
// eager: delayed input work + predicate, |Y| + |X|/B allocation.
// m_out is the number of survivors (a value, not a cost, so the caller
// supplies it).
inline cost_seq filter(cost_meter& m, const cost_seq& x, std::size_t m_out,
                       costs p_cost = kUnit) {
  std::size_t blk = block_size();
  costs total = detail::sum_delayed(x);
  m.charge(costs{
      total.work + static_cast<double>(x.n) * (p_cost.work + 1),
      detail::bmax_delayed_span(x, blk) +
          static_cast<double>(blk) * p_cost.span + detail::log2_ceil(x.n),
      static_cast<double>(m_out) +
          static_cast<double>(num_blocks_for(x.n, blk)) + total.alloc +
          static_cast<double>(x.n) * p_cost.alloc});
  return cost_seq{m_out, repr::bid, constant_delayed(kUnit)};
}

// filterOp / mapMaybe — same cost structure as filter, with f's cost in
// place of the predicate's.
inline cost_seq filter_op(cost_meter& m, const cost_seq& x,
                          std::size_t m_out, costs f_cost = kUnit) {
  return filter(m, x, m_out, f_cost);
}

// flatten X (inner sequences RAD) — outer delayed costs are paid eagerly;
// inner delayed costs carry through to the output. `inner` describes the
// concatenated sequence's per-index delayed costs; `m_out` its length.
inline cost_seq flatten(cost_meter& m, const cost_seq& outer,
                        std::size_t m_out, delayed_fn inner) {
  std::size_t blk = block_size();
  costs total = detail::sum_delayed(outer);
  m.charge(costs{total.work + static_cast<double>(outer.n),
                 detail::log2_ceil(std::max<std::size_t>(outer.n, 2)) +
                     detail::bmax_delayed_span(outer, blk),
                 static_cast<double>(outer.n) + total.alloc});
  return cost_seq{m_out, repr::bid,
                  [inner = std::move(inner)](std::size_t i) {
                    return inner(i) + kUnit;
                  }};
}

}  // namespace pbds::cost
