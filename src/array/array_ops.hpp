// Eager parallel array library — Fig. 7's `a.*` functions, and the `array`
// (A) baseline of the evaluation (Fig. 12): "highly optimized parallel
// arrays", *no fusion* — every operation materializes its result.
//
// This layer serves two roles, exactly as in the paper:
//  1. the no-fusion baseline the delayed library is compared against, and
//  2. the internal array substrate of the delayed library itself (scan
//     partials, filter offsets, forced intermediates).
//
// All blocked operations (reduce/scan/filter/flatten) use the same global
// block size as the delayed library so that the evaluation compares the
// libraries under identical blocking and granularity.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "array/parray.hpp"
#include "core/block.hpp"
#include "core/region.hpp"
#include "memory/counting_allocator.hpp"
#include "sched/parallel.hpp"
#include "stream/streams.hpp"

namespace pbds::array_ops {

// a.tabulate — materialize <f(0), ..., f(n-1)>.
template <typename F>
[[nodiscard]] auto tabulate(std::size_t n, F&& f) {
  using T = std::decay_t<std::invoke_result_t<F&, std::size_t>>;
  return parray<T>::tabulate(n, std::forward<F>(f));
}

[[nodiscard]] inline parray<std::size_t> iota(std::size_t n) {
  return tabulate(n, [](std::size_t i) { return i; });
}

// a.map — materializes the output (this is the whole point of the
// baseline: no fusion, a full intermediate array per operation).
template <typename F, typename T>
[[nodiscard]] auto map(F f, const parray<T>& a) {
  const T* p = a.data();
  return tabulate(a.size(), [f = std::move(f), p](std::size_t i) {
    return f(p[i]);
  });
}

template <typename T, typename U>
[[nodiscard]] auto zip(const parray<T>& a, const parray<U>& b) {
  assert(a.size() == b.size());
  const T* pa = a.data();
  const U* pb = b.data();
  return tabulate(a.size(), [pa, pb](std::size_t i) {
    return std::pair<T, U>(pa[i], pb[i]);
  });
}

// a.reduce — two-phase blocked reduction (§2.2): sequential partial sums
// per block in parallel across blocks, then a sequential pass over the
// (few) partials. `f` must be associative with identity z.
template <typename F, typename T>
[[nodiscard]] T reduce(const F& f, T z, const parray<T>& a) {
  std::size_t n = a.size();
  if (n == 0) return z;
  std::size_t blk = block_size();
  std::size_t nb = num_blocks_for(n, blk);
  const T* p = a.data();
  if (nb == 1) {
    T acc = z;
    for (std::size_t i = 0; i < n; ++i) acc = f(acc, p[i]);
    return acc;
  }
  parray<T> sums = parray<T>::tabulate(
      nb,
      [&](std::size_t j) {
        std::size_t lo = j * blk;
        std::size_t hi = lo + blk < n ? lo + blk : n;
        T acc = z;
        for (std::size_t i = lo; i < hi; ++i) acc = f(acc, p[i]);
        return acc;
      },
      /*granularity=*/1);
  T acc = z;
  for (std::size_t j = 0; j < nb; ++j) acc = f(acc, sums[j]);
  return acc;
}

namespace detail {
// Exclusive scan of the (small) per-block sums array, done sequentially
// since the number of blocks is proportional to parallelism, not n.
template <typename F, typename T>
std::pair<parray<T>, T> scan_partials(const F& f, T z, parray<T>& sums) {
  std::size_t nb = sums.size();
  T acc = z;
  parray<T> partials = parray<T>::uninitialized(nb);
  for (std::size_t j = 0; j < nb; ++j) {
    ::new (partials.data() + j) T(acc);
    acc = f(acc, sums[j]);
  }
  return {std::move(partials), acc};
}
}  // namespace detail

// a.scan — exclusive scan via the three-phase blocked algorithm
// [Chatterjee et al. 1990], Fig. 2. Returns (prefix array, total).
template <typename F, typename T>
[[nodiscard]] std::pair<parray<T>, T> scan(const F& f, T z,
                                           const parray<T>& a) {
  std::size_t n = a.size();
  if (n == 0) return {parray<T>(), z};
  std::size_t blk = block_size();
  std::size_t nb = num_blocks_for(n, blk);
  const T* p = a.data();
  // Phase 1: per-block sums.
  parray<T> sums = parray<T>::tabulate(
      nb,
      [&](std::size_t j) {
        std::size_t lo = j * blk;
        std::size_t hi = lo + blk < n ? lo + blk : n;
        T acc = z;
        for (std::size_t i = lo; i < hi; ++i) acc = f(acc, p[i]);
        return acc;
      },
      1);
  // Phase 2: scan the sums.
  auto [partials, total] = detail::scan_partials(f, z, sums);
  // Phase 3: re-read input, scan within blocks from the block offsets.
  parray<T> out = parray<T>::uninitialized(n);
  T* q = out.data();
  const T* off = partials.data();
  apply(nb, [&, q, off](std::size_t j) {
    std::size_t lo = j * blk;
    std::size_t hi = lo + blk < n ? lo + blk : n;
    T acc = off[j];
    for (std::size_t i = lo; i < hi; ++i) {
      ::new (q + i) T(acc);
      acc = f(acc, p[i]);
    }
  });
  return {std::move(out), total};
}

// Inclusive variant: out[i] = f(...f(f(z, a[0]), a[1])..., a[i]).
template <typename F, typename T>
[[nodiscard]] std::pair<parray<T>, T> scan_inclusive(const F& f, T z,
                                                     const parray<T>& a) {
  std::size_t n = a.size();
  if (n == 0) return {parray<T>(), z};
  std::size_t blk = block_size();
  std::size_t nb = num_blocks_for(n, blk);
  const T* p = a.data();
  parray<T> sums = parray<T>::tabulate(
      nb,
      [&](std::size_t j) {
        std::size_t lo = j * blk;
        std::size_t hi = lo + blk < n ? lo + blk : n;
        T acc = z;
        for (std::size_t i = lo; i < hi; ++i) acc = f(acc, p[i]);
        return acc;
      },
      1);
  auto [partials, total] = detail::scan_partials(f, z, sums);
  parray<T> out = parray<T>::uninitialized(n);
  T* q = out.data();
  const T* off = partials.data();
  apply(nb, [&, q, off](std::size_t j) {
    std::size_t lo = j * blk;
    std::size_t hi = lo + blk < n ? lo + blk : n;
    T acc = off[j];
    for (std::size_t i = lo; i < hi; ++i) {
      acc = f(acc, p[i]);
      ::new (q + i) T(acc);
    }
  });
  return {std::move(out), total};
}

namespace detail {
// Shared tail of filter/filter_op/flatten: given ragged pieces and their
// flat offsets, materialize the contiguous output by copying uniform
// output blocks in parallel (Fig. 3's blocking of the *output* space).
template <typename Pieces>
[[nodiscard]] auto concat_pieces(const Pieces& pieces,
                                 const parray<std::size_t>& offsets,
                                 std::size_t m) {
  using piece_type =
      std::decay_t<decltype(std::declval<const Pieces&>()[0])>;
  using T = std::decay_t<decltype(std::declval<const piece_type&>()[0])>;
  std::size_t blk = block_size();
  std::size_t nb = num_blocks_for(m, blk);
  auto out = parray<T>::uninitialized(m);
  T* q = out.data();
  const std::size_t* base = offsets.data();
  apply(nb, [&, q, base](std::size_t j) {
    std::size_t start = j * blk;
    std::size_t len = start + blk < m ? blk : m - start;
    std::size_t k = static_cast<std::size_t>(
        std::upper_bound(base, base + offsets.size(), start) - base - 1);
    region_stream<Pieces> s{&pieces, k, start - base[k]};
    // Gated bulk copy: contiguous pieces become one memcpy per run.
    stream::next_n(s, q + start, len);
  });
  return out;
}

}  // namespace detail

// Exclusive scan-plus over piece sizes; offsets[k] = flat start of piece k,
// offsets[count] = total. Shared by filter/filter_op/flatten here and by
// the delayed library's filter/flatten.
template <typename SizeFn>
[[nodiscard]] std::pair<parray<std::size_t>, std::size_t> size_offsets(
    std::size_t count, const SizeFn& size_of) {
  auto sizes = parray<std::size_t>::tabulate(count, size_of);
  auto offsets = parray<std::size_t>::uninitialized(count + 1);
  // Blocked parallel scan over the sizes (count can be large for flatten).
  auto [pre, total] =
      scan([](std::size_t x, std::size_t y) { return x + y; },
           std::size_t{0}, sizes);
  std::size_t* q = offsets.data();
  const std::size_t* p = pre.data();
  parallel_for(0, count, [q, p](std::size_t i) { q[i] = p[i]; });
  q[count] = total;
  return {std::move(offsets), total};
}

// a.filter — blocked two-phase filter (§2.2): pack survivors within each
// block, then flatten the packed blocks into a contiguous output array.
template <typename P, typename T>
[[nodiscard]] parray<T> filter(const P& p, const parray<T>& a) {
  std::size_t n = a.size();
  std::size_t blk = block_size();
  std::size_t nb = num_blocks_for(n, blk);
  const T* src = a.data();
  using buffer = memory::tracked_vector<T>;
  auto packed = parray<buffer>::tabulate(
      nb,
      [&](std::size_t j) {
        std::size_t lo = j * blk;
        std::size_t hi = lo + blk < n ? lo + blk : n;
        buffer out;
        for (std::size_t i = lo; i < hi; ++i)
          if (p(src[i])) out.push_back(src[i]);
        return out;
      },
      1);
  auto [offsets, m] =
      size_offsets(nb, [&](std::size_t j) { return packed[j].size(); });
  return detail::concat_pieces(packed, offsets, m);
}

// a.filterOp / mapMaybe — filter and transform in one pass; f returns
// std::optional<U>.
template <typename F, typename T>
[[nodiscard]] auto filter_op(const F& f, const parray<T>& a) {
  using U = typename std::invoke_result_t<const F&, const T&>::value_type;
  std::size_t n = a.size();
  std::size_t blk = block_size();
  std::size_t nb = num_blocks_for(n, blk);
  const T* src = a.data();
  using buffer = memory::tracked_vector<U>;
  auto packed = parray<buffer>::tabulate(
      nb,
      [&](std::size_t j) {
        std::size_t lo = j * blk;
        std::size_t hi = lo + blk < n ? lo + blk : n;
        buffer out;
        for (std::size_t i = lo; i < hi; ++i)
          if (auto r = f(src[i])) out.push_back(std::move(*r));
        return out;
      },
      1);
  auto [offsets, m] =
      size_offsets(nb, [&](std::size_t j) { return packed[j].size(); });
  return detail::concat_pieces(packed, offsets, m);
}

// a.flatten — scan the inner lengths for offsets, then copy uniform output
// blocks in parallel (Fig. 3). `Inner` needs size() and operator[].
template <typename Inner>
[[nodiscard]] auto flatten(const parray<Inner>& nested) {
  auto [offsets, m] = size_offsets(
      nested.size(), [&](std::size_t k) { return nested[k].size(); });
  return detail::concat_pieces(nested, offsets, m);
}

// Effectful traversal.
template <typename T, typename G>
void apply_each(const parray<T>& a, const G& g) {
  const T* p = a.data();
  parallel_for(0, a.size(), [&, p](std::size_t i) { g(p[i]); });
}

}  // namespace pbds::array_ops
