// parray<T> — the tracked parallel array underlying all three libraries.
//
// This is the `array` type of the paper's Fig. 7: a fixed-size array that
// is constructed in parallel (a.tabulate) and whose allocation is visible
// to the space accounting. It is move-only (copies of multi-gigabyte
// buffers should never be accidental; use clone()).
//
// Element lifetimes: tabulate/filled construct every element; the
// uninitialized factory leaves elements unconstructed and the caller must
// construct all of them (e.g. to_array walking a delayed sequence) before
// the parray is destroyed, unless T is trivially destructible.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "memory/tracking.hpp"
#include "sched/parallel.hpp"

namespace pbds {

template <typename T>
class parray {
 public:
  using value_type = T;

  parray() noexcept = default;

  ~parray() { release(); }

  parray(parray&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        n_(std::exchange(other.n_, 0)) {}

  parray& operator=(parray&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      n_ = std::exchange(other.n_, 0);
    }
    return *this;
  }

  parray(const parray&) = delete;
  parray& operator=(const parray&) = delete;

  // Allocate n elements without constructing them.
  static parray uninitialized(std::size_t n) { return parray(n); }

  // Parallel tabulation: element i is f(i). `granularity` as parallel_for.
  //
  // Construction is exception tolerant whenever T can be nothrow
  // default-constructed as a placeholder AND either the allocation fault
  // injector is armed or T has a real destructor: a throw from f or from
  // T's constructor — e.g. an injected bad_alloc while a filter block
  // grows its pack buffer — is captured inside the loop body (it must not
  // unwind through a fork), the slot is default-constructed so every
  // element has a destructible value, and the first exception is rethrown
  // on the calling thread after the join. The returned-by-exception parray
  // then destroys all n elements normally and nothing leaks.
  //
  // The guarded loop runs under a cancel_shield: the region-level bail-out
  // (parallel.hpp) skips whole chunks, which would leave slots
  // unconstructed behind the exception. Instead the loop is its own
  // cancellation domain — once `err` triggers, remaining bodies skip the
  // expensive f(i) and fill cheap placeholders.
  //
  // For trivially destructible T the injector-off fast path is unchanged:
  // on a throw the skipped/garbage slots need no destruction and release()
  // still frees the buffer, so nothing leaks there either.
  // Budget-aware entry point: under an active budget (budget.hpp) a
  // refused tabulation is retried after an exponential-backoff drain —
  // concurrent pipelines may be releasing memory — before the refusal
  // propagates. The no-budget fast path is a single branch.
  template <typename F>
  static parray tabulate(std::size_t n, F&& f, std::size_t granularity = 0) {
    if (memory::budget_active()) {
      return memory::budget_retry(
          [&] { return tabulate_impl(n, f, granularity); });
    }
    return tabulate_impl(n, f, granularity);
  }

 private:
  template <typename F>
  static parray tabulate_impl(std::size_t n, F&& f,
                              std::size_t granularity) {
    parray a(n);
    T* p = a.data_;
    if constexpr (std::is_nothrow_default_constructible_v<T>) {
      if (!std::is_trivially_destructible_v<T> ||
          memory::fault_injection_armed()) {
        sched::cancel_shield shield;
        memory::first_exception err;
        parallel_for(
            0, n,
            [&, p](std::size_t i) {
              if (err.triggered()) {
                ::new (p + i) T();
                return;
              }
              try {
                ::new (p + i) T(f(i));
              } catch (...) {
                err.capture();
                ::new (p + i) T();
              }
            },
            granularity);
        err.rethrow_if_set();
        return a;
      }
    }
    parallel_for(
        0, n, [&](std::size_t i) { ::new (p + i) T(f(i)); }, granularity);
    return a;
  }

 public:
  static parray filled(std::size_t n, const T& v) {
    return tabulate(n, [&](std::size_t) { return v; });
  }

  // Deep copy (deliberately explicit).
  [[nodiscard]] parray clone() const {
    const T* p = data_;
    return tabulate(n_, [p](std::size_t i) { return p[i]; });
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  T& operator[](std::size_t i) noexcept {
    assert(i < n_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    assert(i < n_);
    return data_[i];
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + n_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + n_; }

 private:
  explicit parray(std::size_t n) : n_(n) {
    if (n_ > 0) {
      // Admission runs the fault injector and the budget check; commit
      // only after the allocation succeeded, so a throw (real, injected,
      // or a budget refusal) leaves the accounting untouched.
      memory::alloc_admission adm(n_ * sizeof(T));
      data_ = static_cast<T*>(
          ::operator new(n_ * sizeof(T), std::align_val_t(alignof(T))));
      adm.commit();
    }
  }

  void release() noexcept {
    if (data_ == nullptr) return;
    if constexpr (!std::is_trivially_destructible_v<T>) {
      // Shielded: this often runs while an exception unwinds through a
      // cancelled region, and a chunk skipped by the bail-out would leak
      // the elements it never destroyed.
      sched::cancel_shield shield;
      T* p = data_;
      parallel_for(0, n_, [p](std::size_t i) { p[i].~T(); });
    }
    memory::note_free(n_ * sizeof(T));
    ::operator delete(data_, std::align_val_t(alignof(T)));
    data_ = nullptr;
    n_ = 0;
  }

  T* data_ = nullptr;
  std::size_t n_ = 0;
};

}  // namespace pbds
