// Bignum substrate for the bignum-add benchmark (§6: "addition on two
// bignums of 500M bytes each").
//
// A bignum is a little-endian base-256 digit array. Parallel addition uses
// the classic carry-resolution trick: position i's carry behaviour is one
// of GENERATE (digit sum > 255), PROPAGATE (== 255) or KILL (< 255), and
// the carry *into* each position is an exclusive scan of these symbols
// under the associative operator  x ⊕ y = (y == PROPAGATE ? x : y)  whose
// identity is PROPAGATE (a prefix of all-propagates means "no carry", the
// correct boundary condition at position 0: only GENERATE adds one). The
// benchmark kernel (src/benchmarks/bignum_add.hpp) expresses this as
// zip → map → scan → map, which the delayed library fuses to two passes.
#pragma once

#include <cstdint>

#include "array/parray.hpp"
#include "random/rng.hpp"

namespace pbds::bignum {

using digit = std::uint8_t;

// Carry symbols, ordered so the combine below is branch-light.
enum class carry : std::uint8_t { kill = 0, propagate = 1, generate = 2 };

// The associative carry-resolution operator (identity: propagate).
constexpr carry combine(carry x, carry y) noexcept {
  return y == carry::propagate ? x : y;
}

// Carry symbol for a digit-pair sum in [0, 510].
constexpr carry classify(unsigned sum) noexcept {
  return sum > 255u ? carry::generate
                    : (sum == 255u ? carry::propagate : carry::kill);
}

// Final digit given the pairwise sum and the incoming carry symbol.
constexpr digit resolve(unsigned sum, carry in) noexcept {
  return static_cast<digit>((sum + (in == carry::generate ? 1u : 0u)) & 0xffu);
}

// Random n-digit bignum (most-significant digit may be zero).
inline parray<digit> random_bignum(std::size_t n, std::uint64_t seed) {
  random::rng gen(seed);
  return parray<digit>::tabulate(n, [&](std::size_t i) {
    return static_cast<digit>(gen.u64(i) & 0xffu);
  });
}

// Worst-case carry chains: a = 0xff...f, so adding any b propagates far.
inline parray<digit> all_ones(std::size_t n) {
  return parray<digit>::filled(n, static_cast<digit>(0xff));
}

// Reference sequential schoolbook addition; result has n+1 digits
// (little-endian), the last being the final carry (0 or 1).
inline parray<digit> reference_add(const parray<digit>& a,
                                   const parray<digit>& b) {
  std::size_t n = a.size();
  auto out = parray<digit>::uninitialized(n + 1);
  unsigned c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    unsigned s = static_cast<unsigned>(a[i]) + b[i] + c;
    out[i] = static_cast<digit>(s & 0xffu);
    c = s >> 8;
  }
  out[n] = static_cast<digit>(c);
  return out;
}

}  // namespace pbds::bignum
