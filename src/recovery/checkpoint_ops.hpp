// Checkpointed variants of the blockwise terminal operations.
//
// Each op takes the usual sequence arguments plus a resumable_result bound
// to the operation's block geometry. On first entry it behaves like the
// plain delayed:: op; if the attempt dies (budget_exceeded, stall_detected,
// injected fault, cooperative cancellation), completed blocks stay recorded
// in the ledger, and a re-entry with the same resumable_result skips them
// — idempotent re-execution at block granularity. A budget_exceeded or
// stall_detected leaving one of these ops carries the ledger's progress
// snapshot (attach_progress), so callers can see how far it got.
//
// Completed results are retained by the resumable_result (see
// resumable.hpp): re-entering an op whose slot already completed salvages
// every block and returns the same storage without re-executing anything.
// This is what lets a multi-op job resume in a later stage without
// redoing earlier stages.
//
// Purity contract: like plain to_array/reduce/scan, the input's index /
// block functions must be pure — a resumed attempt re-pulls only the
// blocks that did not complete, and the differential oracle
// (tests/differential.hpp) checks the result is bit-identical to an
// uninterrupted run.
//
// Integrity (PR 8): each completed unit of trivially-copyable elements is
// digested (integrity/block_digest.hpp) before its ledger bit is set, and
// a salvage re-digests the bytes it is about to trust — a mismatch
// quarantines the unit (demoted to not-completed, counted) and re-executes
// it instead of trusting it. PBDS_VERIFY_RESUME=0 opts out of both the
// digest pass and the salvage check.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "array/parray.hpp"
#include "core/bid.hpp"
#include "core/delayed.hpp"
#include "core/rad.hpp"
#include "integrity/block_digest.hpp"
#include "memory/budget.hpp"
#include "memory/tracking.hpp"
#include "recovery/block_ledger.hpp"
#include "recovery/resumable.hpp"
#include "sched/cancellation.hpp"
#include "sched/parallel.hpp"
#include "stream/streams.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pbds::recovery {

// Thrown by a checkpointed op that observes its enclosing fork-join region
// was cooperatively cancelled (drain, deadline, watchdog). Nested joins
// collapse WITHOUT unwinding — apply simply returns — so without this
// check the op would hand its caller incomplete storage, and geometry
// computed by a collapsed upstream pipeline (a garbage element count from
// an unfinished filter pack, say) could reach the ledger's untracked
// bitmap allocator. The region root captures-and-drops this as a
// secondary failure and surfaces the cancellation's real cause; the
// ledger's completed blocks survive for the retry.
class attempt_interrupted : public std::runtime_error {
 public:
  attempt_interrupted()
      : std::runtime_error(
            "pbds: checkpointed attempt interrupted by region cancellation") {
  }
};

namespace detail {

inline void throw_if_region_cancelled() {
  if (sched::cancellation_requested()) throw attempt_interrupted{};
}

// Shared guard gate: non-trivial destructors always need the guarded
// (placeholder-filling) loops; injectors force them so a mid-block throw
// leaves storage in the documented uniform state.
template <typename T>
[[nodiscard]] inline bool guarded_construction() {
  return !std::is_trivially_destructible_v<T> ||
         memory::fault_injection_armed() || boundary_faults_armed();
}

// Digest coverage is byte-level, so only trivially-copyable elements
// participate (a non-trivial object's bytes are not its identity).
template <typename T>
inline constexpr bool digestable_v = std::is_trivially_copyable_v<T>;

// Record unit j's digest so a later salvage can be verified. Skipped when
// resume verification is off — PBDS_VERIFY_RESUME=0 opts out of the
// digest pass entirely, which is what the overhead A/B measures.
template <typename T>
inline void digest_on_complete(block_ledger& led, std::size_t j,
                               const T* bytes, std::size_t len) {
  if constexpr (digestable_v<T>) {
    if (integrity::verify_resume_enabled())
      led.set_digest(j, integrity::block_digest(bytes, len * sizeof(T)));
  }
}

// Salvage gate for a unit whose completion bit is set: re-digest the
// bytes a prior attempt left behind and either trust them (true) or
// quarantine the unit — demote it to not-completed, counted, to be
// re-executed by the caller (false). Absent digests verify trivially.
template <typename T>
[[nodiscard]] inline bool salvage_verified(block_ledger& led, std::size_t j,
                                           const T* bytes, std::size_t len) {
  if constexpr (digestable_v<T>) {
    if (integrity::verify_resume_enabled() &&
        !led.verify_block(j, bytes, len * sizeof(T)) && led.quarantine(j)) {
      return false;
    }
  }
  led.note_salvaged();
  return true;
}

// Run `f`; if a budget refusal or stall escapes, annotate it with the
// ledger's progress before it propagates. Under an active budget the
// attempt additionally goes through the drain/backoff retry ladder —
// each rung naturally resumes from the ledger.
template <typename T, typename F>
decltype(auto) with_progress(resumable_result<T>& rr, const F& f) {
  auto annotated = [&]() -> decltype(f()) {
    telemetry::trace_span span(telemetry::trace_kind::retry,
                               "checkpoint_attempt");
    try {
      return f();
    } catch (budget_exceeded& e) {
      e.attach_progress(rr.snapshot());
      throw;
    } catch (stall_detected& e) {
      e.attach_progress(rr.snapshot());
      throw;
    } catch (worker_lost& e) {
      e.attach_progress(rr.snapshot());
      throw;
    }
  };
  if (memory::budget_active()) return memory::budget_retry(annotated);
  return annotated();
}

// Materialize every incomplete block of `bd` into rr's storage (rr bound
// to (bd.n, bd.block_size)). Completed blocks are skipped (salvaged);
// started-but-incomplete blocks are destroyed and reconstructed.
template <typename Bid, typename T>
void materialize_blocks(const Bid& bd, resumable_result<T>& rr) {
  block_ledger& led = rr.ledger();
  T* q = rr.data();
  std::size_t nb = led.num_blocks();
  const std::size_t blk = led.unit_size();
  if constexpr (std::is_nothrow_default_constructible_v<T>) {
    if (guarded_construction<T>()) {
      // Shielded + self-catching, as parray::tabulate / to_array_eager:
      // a throw must not skip chunks (that would leave slots in an
      // unknown state), so the loop is its own cancellation domain.
      sched::cancel_shield shield;
      memory::first_exception err;
      apply(nb, [&, q](std::size_t j) {
        std::size_t base = j * blk;
        std::size_t len = led.block_length(j);
        bool requarantined = false;
        if (led.is_complete(j)) {
          if (salvage_verified(led, j, q + base, len)) return;
          requarantined = true;  // verification failed: re-execute below
        }
        if (err.triggered()) return;  // block stays untouched
        try {
          maybe_inject_boundary_fault();
        } catch (...) {
          err.capture();
          return;  // pre-start fault: block stays untouched
        }
        bool redo = led.mark_started(j);
        if constexpr (!std::is_trivially_destructible_v<T>) {
          // A started block has every slot constructed (resumable.hpp
          // invariant); clear them before reconstructing.
          if (redo) {
            for (std::size_t k = 0; k < len; ++k) (q + base + k)->~T();
          }
        }
        std::size_t k = 0;
        try {
          auto st = bd.block(j);
          for (; k < len; ++k) ::new (q + base + k) T(st.next());
          digest_on_complete(led, j, q + base, len);
          led.mark_complete(j);
          telemetry::observe(telemetry::hist::block_bytes, len * sizeof(T));
          if (requarantined) led.note_quarantine_reexec();
          return;
        } catch (...) {
          err.capture();
        }
        for (; k < len; ++k) ::new (q + base + k) T();
      });
      err.rethrow_if_set();
      return;
    }
  }
  // Fast path: trivial T, no injectors. Bulk drain per block (contiguous
  // sources lower to one memcpy); a throw (real allocator, budget) unwinds
  // via the region cancellation protocol and the block simply stays
  // incomplete — trivial slots need no lifetime repair.
  apply(nb, [&, q](std::size_t j) {
    std::size_t base = j * blk;
    std::size_t len = led.block_length(j);
    bool requarantined = false;
    if (led.is_complete(j)) {
      if (salvage_verified(led, j, q + base, len)) return;
      requarantined = true;
    }
    led.mark_started(j);
    auto st = bd.block(j);
    stream::drain_into(st, q + base, len);
    digest_on_complete(led, j, q + base, len);
    led.mark_complete(j);
    telemetry::observe(telemetry::hist::block_bytes, len * sizeof(T));
    if (requarantined) led.note_quarantine_reexec();
  });
  // An enclosing-region cancellation collapses the apply without unwinding
  // this frame (the root rethrows only at region exit); never hand back
  // incomplete storage.
  if (!led.all_complete()) throw attempt_interrupted{};
}

// Materialize single-value units: unit j of rr (bound with unit_size 1)
// is produce(j). Used for the per-block partial sums of reduce/scan.
template <typename T, typename P>
void materialize_units(resumable_result<T>& rr, const P& produce) {
  block_ledger& led = rr.ledger();
  T* q = rr.data();
  std::size_t nb = led.num_blocks();
  if constexpr (std::is_nothrow_default_constructible_v<T>) {
    if (guarded_construction<T>()) {
      sched::cancel_shield shield;
      memory::first_exception err;
      apply(nb, [&, q](std::size_t j) {
        bool requarantined = false;
        if (led.is_complete(j)) {
          if (salvage_verified(led, j, q + j, 1)) return;
          requarantined = true;
        }
        if (err.triggered()) return;
        try {
          maybe_inject_boundary_fault();
        } catch (...) {
          err.capture();
          return;
        }
        bool redo = led.mark_started(j);
        if constexpr (!std::is_trivially_destructible_v<T>) {
          if (redo) (q + j)->~T();
        }
        try {
          ::new (q + j) T(produce(j));
          digest_on_complete(led, j, q + j, 1);
          led.mark_complete(j);
          if (requarantined) led.note_quarantine_reexec();
          return;
        } catch (...) {
          err.capture();
        }
        ::new (q + j) T();
      });
      err.rethrow_if_set();
      return;
    }
  }
  apply(nb, [&, q](std::size_t j) {
    bool requarantined = false;
    if (led.is_complete(j)) {
      if (salvage_verified(led, j, q + j, 1)) return;
      requarantined = true;
    }
    led.mark_started(j);
    ::new (q + j) T(produce(j));
    digest_on_complete(led, j, q + j, 1);
    led.mark_complete(j);
    if (requarantined) led.note_quarantine_reexec();
  });
  if (!led.all_complete()) throw attempt_interrupted{};
}

}  // namespace detail

// --- to_array / force -------------------------------------------------------

// Checkpointed toArray. Returns a reference to the slot-owned array; it
// stays valid while `rr` (or any shared_value handle) lives. Accepts a
// RAD, BID, or parray, exactly like delayed::to_array.
template <typename Seq, typename T>
const parray<T>& to_array(const Seq& s, resumable_result<T>& rr) {
  auto bd = delayed::bid_of(delayed::as_seq(s));
  static_assert(
      std::is_same_v<typename std::decay_t<decltype(bd)>::value_type, T>,
      "resumable_result element type must match the sequence");
  auto attempt = [&]() -> const parray<T>& {
    // Refuse to bind geometry computed under a collapsed region: bd.n may
    // be garbage from an unfinished upstream pipeline, and the ledger's
    // bitmap is deliberately budget-exempt.
    detail::throw_if_region_cancelled();
    rr.bind(bd.n, bd.block_size);
    detail::materialize_blocks(bd, rr);
    return rr.value();
  };
  return detail::with_progress(rr, attempt);
}

// Checkpointed force: the result RAD shares ownership of the slot's
// storage, so it stays valid after the checkpoint is discarded.
template <typename Seq, typename T>
[[nodiscard]] auto force(const Seq& s, resumable_result<T>& rr) {
  (void)to_array(s, rr);
  return rad_shared(rr.shared_value());
}

// --- reduce -----------------------------------------------------------------

// Checkpointed blockwise reduce: the per-block partial sums are the
// recovery units. The final O(#blocks) scalar fold re-runs on every
// attempt (it is not a "block execution" — no input element is re-pulled
// for a completed block).
template <typename F, typename T, typename Seq>
[[nodiscard]] T reduce(const F& f, T z, const Seq& s,
                       resumable_result<T>& rr) {
  auto bd = delayed::bid_of(delayed::as_seq(s));
  std::size_t nb = bd.num_blocks();
  auto attempt = [&]() -> T {
    detail::throw_if_region_cancelled();
    rr.bind(nb, 1);
    detail::materialize_units(
        rr, [&](std::size_t j) {
          return stream::reduce(bd.block(j), bd.block_length(j), f, z);
        });
    const parray<T>& sums = rr.value();
    T acc = z;
    for (std::size_t j = 0; j < nb; ++j) acc = f(acc, sums[j]);
    return acc;
  };
  return detail::with_progress(rr, attempt);
}

// --- scan / scan_inclusive --------------------------------------------------

// Checkpointed exclusive scan: phase 1 (block sums — the expensive
// re-reading pass) is checkpointed; phases 2-3 (O(#blocks) sequential
// offsets + the delayed output BID) are rebuilt per attempt, as they cost
// O(#blocks) and allocate only the partials array.
template <typename F, typename T, typename Seq>
[[nodiscard]] auto scan(const F& f, T z, const Seq& s,
                        resumable_result<T>& rr) {
  auto bd = delayed::bid_of(delayed::as_seq(s));
  std::size_t nb = bd.num_blocks();
  auto attempt = [&] {
    detail::throw_if_region_cancelled();
    rr.bind(nb, 1);
    detail::materialize_units(
        rr, [&](std::size_t j) {
          return stream::reduce(bd.block(j), bd.block_length(j), f, z);
        });
    const parray<T>& sums = rr.value();
    auto partials =
        std::make_shared<parray<T>>(parray<T>::uninitialized(nb));
    T acc = z;
    for (std::size_t j = 0; j < nb; ++j) {
      ::new (partials->data() + j) T(acc);
      acc = f(acc, sums[j]);
    }
    auto block_fn = [b = bd.b, partials, f](std::size_t j) {
      return stream::scan_stream{b(j), f, (*partials)[j]};
    };
    return std::pair(make_bid(bd.n, bd.block_size, std::move(block_fn)),
                     acc);
  };
  return detail::with_progress(rr, attempt);
}

template <typename F, typename T, typename Seq>
[[nodiscard]] auto scan_inclusive(const F& f, T z, const Seq& s,
                                  resumable_result<T>& rr) {
  auto bd = delayed::bid_of(delayed::as_seq(s));
  std::size_t nb = bd.num_blocks();
  auto attempt = [&] {
    detail::throw_if_region_cancelled();
    rr.bind(nb, 1);
    detail::materialize_units(
        rr, [&](std::size_t j) {
          return stream::reduce(bd.block(j), bd.block_length(j), f, z);
        });
    const parray<T>& sums = rr.value();
    auto partials =
        std::make_shared<parray<T>>(parray<T>::uninitialized(nb));
    T acc = z;
    for (std::size_t j = 0; j < nb; ++j) {
      ::new (partials->data() + j) T(acc);
      acc = f(acc, sums[j]);
    }
    auto block_fn = [b = bd.b, partials, f](std::size_t j) {
      return stream::scan_inclusive_stream{b(j), f, (*partials)[j]};
    };
    return std::pair(make_bid(bd.n, bd.block_size, std::move(block_fn)),
                     acc);
  };
  return detail::with_progress(rr, attempt);
}

}  // namespace pbds::recovery
