// resumable_result<T> — partially-materialized storage that survives a
// failure — and job_checkpoint, the per-job container the pipeline service
// threads through retries and drain/readmit.
//
// Storage model: one parray<T> (shared_ptr so a completed result can be
// exposed as a rad_shared view without copying) plus a block_ledger over
// it. Element-lifetime invariants, maintained jointly with the guarded
// loops in checkpoint_ops.hpp:
//
//   * untouched block (neither started nor complete): slots UNCONSTRUCTED;
//   * started block: every slot constructed (final values or T()
//     placeholders) — guarded loops placeholder-fill on any throw;
//   * complete block: every slot holds its final value.
//
// For non-trivially-destructible T the parray destructor destroys all n
// slots, so before the storage can be dropped while incomplete, untouched
// blocks are default-filled under a cancel_shield (sanitize) — the same
// PR-2 discipline used by parray::tabulate. The storage only escapes
// (shared_value / value) once ALL blocks are complete, so an escaped array
// is always fully constructed.
//
// Completed results are deliberately retained: a checkpointed op re-entered
// after its slot completed salvages every block and returns the same
// storage, which is what makes multi-op jobs resume without redoing
// earlier stages. The memory is released when the owning checkpoint dies
// (job completion / park expiry) — parked bytes ARE the salvaged work.
#pragma once

#include <cassert>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "array/parray.hpp"
#include "integrity/block_digest.hpp"
#include "recovery/block_ledger.hpp"
#include "recovery/progress.hpp"
#include "sched/cancellation.hpp"

namespace pbds::recovery {

template <typename T>
class resumable_result {
 public:
  static_assert(std::is_nothrow_default_constructible_v<T> ||
                    std::is_trivially_destructible_v<T>,
                "resumable_result requires nothrow-default-constructible "
                "placeholders for types with real destructors");

  resumable_result() = default;
  ~resumable_result() { drop_storage(); }
  resumable_result(const resumable_result&) = delete;
  resumable_result& operator=(const resumable_result&) = delete;

  // Establish the geometry for an attempt. Same geometry + resume enabled
  // + live storage => resume (completed blocks preserved); anything else
  // starts fresh. The storage allocation goes through the tracked/budgeted
  // allocator and may throw budget_exceeded — in that case the next
  // attempt simply retries the allocation here.
  //
  // A resume first self-validates the ledger header (block_ledger's
  // sequence-stamped bitmap digest): a torn bitmap must be *detected* and
  // discarded, not interpreted as progress. Validation failure falls
  // through to a fresh start — safe but slow, never wrong.
  void bind(std::size_t n, std::size_t blk) {
    if (blk == 0) blk = 1;
    bool same = ledger_.bound() && ledger_.size() == n &&
                ledger_.unit_size() == blk;
    if (same && resume_enabled() && storage_) {
      if (ledger_.validate_header()) {
        maybe_corrupt_on_resume();
        return;
      }
    }
    drop_storage();
    ledger_.bind(n, blk);
    ledger_.clear_completion();
    storage_ = std::make_shared<parray<T>>(parray<T>::uninitialized(n));
  }

  [[nodiscard]] block_ledger& ledger() { return ledger_; }
  [[nodiscard]] const block_ledger& ledger() const { return ledger_; }

  [[nodiscard]] T* data() { return storage_ ? storage_->data() : nullptr; }

  [[nodiscard]] bool complete() const {
    return storage_ != nullptr && ledger_.bound() && ledger_.all_complete();
  }

  // The completed array; valid only while this resumable_result (or a
  // shared_value handle) lives.
  [[nodiscard]] const parray<T>& value() const {
    assert(complete() && "resumable_result::value before completion");
    return *storage_;
  }

  // Shared ownership of the completed array (for rad_shared views).
  [[nodiscard]] std::shared_ptr<parray<T>> shared_value() const {
    assert(complete() && "resumable_result::shared_value before completion");
    return storage_;
  }

  [[nodiscard]] progress snapshot() const {
    return ledger_.snapshot(sizeof(T));
  }

  // Drop all progress and storage (element-lifetime safe).
  void reset() {
    drop_storage();
    ledger_.reset();
  }

 private:
  // Bit-flip injection point (integrity/block_digest.hpp): while the
  // injector is armed, a resume corrupts bits in *completed* blocks —
  // exactly the bytes verification would otherwise trust unchecked.
  // Trivially-copyable elements only: flipping bits inside a non-trivial
  // object models nothing the digest layer claims to cover.
  void maybe_corrupt_on_resume() {
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (!integrity::bit_flips_armed() || !storage_) return;
      std::vector<std::size_t> done;
      std::size_t nb = ledger_.num_blocks();
      done.reserve(nb);
      for (std::size_t j = 0; j < nb; ++j)
        if (ledger_.is_complete(j)) done.push_back(j);
      if (done.empty()) return;
      const std::size_t blk = ledger_.unit_size();
      unsigned char* bytes = reinterpret_cast<unsigned char*>(storage_->data());
      std::size_t flips = integrity::bit_flips_per_resume();
      for (std::size_t i = 0; i < flips; ++i) {
        std::size_t j = done[integrity::bit_flip_draw() % done.size()];
        integrity::flip_random_bit(bytes + j * blk * sizeof(T),
                                   ledger_.block_length(j) * sizeof(T));
      }
    }
  }

  // Default-fill every untouched block so the parray destructor (which
  // destroys all n slots) is safe to run on incomplete storage.
  void sanitize() noexcept {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      if (!storage_ || storage_->empty() || ledger_.all_complete()) return;
      sched::cancel_shield shield;
      T* p = storage_->data();
      std::size_t nb = ledger_.num_blocks();
      std::size_t blk = ledger_.unit_size();
      for (std::size_t j = 0; j < nb; ++j) {
        if (ledger_.is_started(j) || ledger_.is_complete(j)) continue;
        std::size_t base = j * blk;
        std::size_t len = ledger_.block_length(j);
        for (std::size_t k = 0; k < len; ++k) ::new (p + base + k) T();
      }
    }
  }

  void drop_storage() noexcept {
    if (!storage_) return;
    sanitize();
    storage_.reset();
  }

  std::shared_ptr<parray<T>> storage_;
  block_ledger ledger_;
};

// -------------------------------------------------------------------------
// job_checkpoint: a type-erased bag of resumable_results keyed by slot id,
// carried across attempts of one service job (and across services via
// drain-park/readmit). A job's thunk asks for its slots by stable keys:
//
//   auto& rr = ck.slot<std::uint64_t>(0);
//   total = recovery::reduce(plus, 0ull, seq, rr);
//
// slot() is thread-safe (a drain-time aggregate() may race a running
// attempt); references returned by slot() are stable for the checkpoint's
// lifetime.

class job_checkpoint {
 public:
  job_checkpoint() = default;
  job_checkpoint(const job_checkpoint&) = delete;
  job_checkpoint& operator=(const job_checkpoint&) = delete;

  template <typename T>
  [[nodiscard]] resumable_result<T>& slot(std::size_t key) {
    std::lock_guard<std::mutex> lock(m_);
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      it = slots_.emplace(key, std::make_unique<slot_impl<T>>()).first;
    }
    auto* typed = dynamic_cast<slot_impl<T>*>(it->second.get());
    if (typed == nullptr) {
      throw std::logic_error(
          "pbds::recovery::job_checkpoint: slot reused with a different "
          "element type");
    }
    return typed->rr;
  }

  // Sum of per-slot progress. Safe to call while an attempt is running
  // (ledger counters are atomic); the result is then a consistent-enough
  // snapshot for reporting, not a linearizable one.
  [[nodiscard]] progress aggregate() const {
    std::lock_guard<std::mutex> lock(m_);
    progress p;
    for (const auto& [key, s] : slots_) p += s->snapshot();
    return p;
  }

  // Attempt bookkeeping: the service bumps this once per *actual thunk
  // execution* (a retry refused by the breaker-open fast path burns no
  // attempt).
  void begin_attempt() {
    attempts_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t attempts() const {
    return attempts_.load(std::memory_order_relaxed);
  }

 private:
  struct slot_base {
    virtual ~slot_base() = default;
    [[nodiscard]] virtual progress snapshot() const = 0;
  };
  template <typename T>
  struct slot_impl final : slot_base {
    resumable_result<T> rr;
    [[nodiscard]] progress snapshot() const override { return rr.snapshot(); }
  };

  mutable std::mutex m_;
  std::map<std::size_t, std::unique_ptr<slot_base>> slots_;
  std::atomic<std::uint64_t> attempts_{0};
};

}  // namespace pbds::recovery
