// Per-block completion ledger + boundary fault injection.
//
// block_ledger records which blocks (units) of a blockwise operation have
// completed, using an atomic bitmap so concurrent workers can mark blocks
// without coordination. It survives a thrown budget_exceeded /
// stall_detected / cooperative cancellation (it lives outside the failing
// attempt, typically inside a resumable_result), so a re-entry can skip
// completed blocks and re-run only the rest.
//
// Two bitmaps are kept:
//   complete — block j's output slots hold their final values
//   started  — block j was begun by some attempt; for non-trivially-
//              destructible element types the guarded construction paths
//              maintain the invariant that a *started* block has every slot
//              constructed (real values or T() placeholders), which is what
//              makes redo-by-destroy-then-reconstruct safe.
//
// Ledger memory is allocated with plain new[] on purpose: bookkeeping must
// not count against the process budget or perturb bytes_live accounting,
// and it must be obtainable even while the budget is exhausted (that is
// exactly when a ledger is most needed).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "core/env.hpp"
#include "integrity/block_digest.hpp"
#include "memory/budget.hpp"
#include "memory/tracking.hpp"
#include "recovery/progress.hpp"
#include "sched/cancellation.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pbds::recovery {

// -------------------------------------------------------------------------
// Resume kill switch: PBDS_RESUME_DISABLE=1 (or a scoped override) makes
// every checkpointed operation discard prior progress on (re)bind, i.e.
// behave like a fresh run. Useful for A/B-ing recovery and for tests.
namespace detail {

inline std::atomic<int>& resume_disable_override() {
  static std::atomic<int> v{0};
  return v;
}

inline bool resume_disabled_by_env() {
  static const bool v =
      pbds::detail::env_integer("PBDS_RESUME_DISABLE", 0, 1, 0) == 1;
  return v;
}

}  // namespace detail

[[nodiscard]] inline bool resume_enabled() {
  return !detail::resume_disabled_by_env() &&
         detail::resume_disable_override().load(std::memory_order_relaxed) == 0;
}

// RAII: force resume-disable within a scope (nestable).
class scoped_resume_disable {
 public:
  scoped_resume_disable() {
    detail::resume_disable_override().fetch_add(1, std::memory_order_relaxed);
  }
  ~scoped_resume_disable() {
    detail::resume_disable_override().fetch_sub(1, std::memory_order_relaxed);
  }
  scoped_resume_disable(const scoped_resume_disable&) = delete;
  scoped_resume_disable& operator=(const scoped_resume_disable&) = delete;
};

// -------------------------------------------------------------------------
// block_ledger

class block_ledger {
 public:
  block_ledger() = default;
  block_ledger(const block_ledger&) = delete;
  block_ledger& operator=(const block_ledger&) = delete;

  // Establish (or re-establish) the geometry: n elements in units of blk.
  // Binding with the same geometry is a resume: progress is preserved.
  // Binding with a different geometry discards all completion state (the
  // caller is responsible for any element-lifetime cleanup first — see
  // resumable_result). Called between attempts, never concurrently with
  // mark_* on the same ledger.
  void bind(std::size_t n, std::size_t blk) {
    if (blk == 0) blk = 1;
    std::size_t nb = n == 0 ? 0 : (n + blk - 1) / blk;
    if (bound_ && n == n_.load(std::memory_order_relaxed) &&
        blk == blk_.load(std::memory_order_relaxed)) {
      return;  // same geometry: resume
    }
    std::size_t words = (nb + 63) / 64;
    complete_.reset(words ? new std::atomic<std::uint64_t>[words] : nullptr);
    started_.reset(words ? new std::atomic<std::uint64_t>[words] : nullptr);
    // Digest side table: one slot per block, same untracked-allocation
    // discipline as the bitmaps (0 = no digest recorded).
    digests_.reset(nb ? new std::atomic<std::uint64_t>[nb] : nullptr);
    for (std::size_t w = 0; w < words; ++w) {
      complete_[w].store(0, std::memory_order_relaxed);
      started_[w].store(0, std::memory_order_relaxed);
    }
    for (std::size_t j = 0; j < nb; ++j)
      digests_[j].store(0, std::memory_order_relaxed);
    n_.store(n, std::memory_order_relaxed);
    blk_.store(blk, std::memory_order_relaxed);
    nb_.store(nb, std::memory_order_relaxed);
    complete_count_.store(0, std::memory_order_relaxed);
    elements_complete_.store(0, std::memory_order_relaxed);
    header_xor_.store(0, std::memory_order_relaxed);
    bound_ = true;
  }

  // Forget completion state but keep the geometry (and the cumulative
  // execution statistics). Element lifetimes are the caller's problem.
  void clear_completion() {
    std::size_t words = (num_blocks() + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
      complete_[w].store(0, std::memory_order_relaxed);
      started_[w].store(0, std::memory_order_relaxed);
    }
    std::size_t nb = num_blocks();
    for (std::size_t j = 0; j < nb; ++j)
      digests_[j].store(0, std::memory_order_relaxed);
    complete_count_.store(0, std::memory_order_relaxed);
    elements_complete_.store(0, std::memory_order_relaxed);
    header_xor_.store(0, std::memory_order_relaxed);
  }

  void reset() {
    complete_.reset();
    started_.reset();
    digests_.reset();
    bound_ = false;
    n_.store(0, std::memory_order_relaxed);
    blk_.store(0, std::memory_order_relaxed);
    nb_.store(0, std::memory_order_relaxed);
    complete_count_.store(0, std::memory_order_relaxed);
    elements_complete_.store(0, std::memory_order_relaxed);
    header_xor_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] bool bound() const { return bound_; }
  [[nodiscard]] std::size_t size() const {
    return n_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t unit_size() const {
    return blk_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t num_blocks() const {
    return nb_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t block_length(std::size_t j) const {
    std::size_t n = size(), blk = unit_size();
    std::size_t base = j * blk;
    return base >= n ? 0 : (n - base < blk ? n - base : blk);
  }

  [[nodiscard]] bool is_complete(std::size_t j) const {
    return (complete_[j >> 6].load(std::memory_order_acquire) >>
            (j & 63)) & 1u;
  }
  [[nodiscard]] bool is_started(std::size_t j) const {
    return (started_[j >> 6].load(std::memory_order_acquire) >> (j & 63)) & 1u;
  }

  // Record that some attempt is (re)executing block j. Returns true when the
  // block had already been started by an earlier (failed) attempt — i.e.
  // this execution is a redo. Also bumps the cumulative execution counter.
  bool mark_started(std::size_t j) {
    executions_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t bit = std::uint64_t{1} << (j & 63);
    std::uint64_t prev =
        started_[j >> 6].fetch_or(bit, std::memory_order_acq_rel);
    bool redo = (prev & bit) != 0;
    if (redo) {
      redone_.fetch_add(1, std::memory_order_relaxed);
      telemetry::count(telemetry::counter::blocks_redone);
    }
    return redo;
  }

  // Publish block j's slots as final. The release pairs with is_complete's
  // acquire so a later attempt observing the bit also observes the values.
  // Exactly one execution completes each block (salvage checks the bit
  // first; quarantine clears it before the redo): completing a block twice
  // means execution accounting is broken, so it asserts in debug builds
  // and is surfaced through double_completed() in release builds instead
  // of silently overcounting salvage on the next attempt.
  void mark_complete(std::size_t j) {
    std::uint64_t bit = std::uint64_t{1} << (j & 63);
    std::uint64_t prev =
        complete_[j >> 6].fetch_or(bit, std::memory_order_release);
    if (!(prev & bit)) {
      complete_count_.fetch_add(1, std::memory_order_relaxed);
      elements_complete_.fetch_add(block_length(j), std::memory_order_relaxed);
      header_xor_.fetch_xor(header_term(j), std::memory_order_relaxed);
    } else {
      double_completed_.fetch_add(1, std::memory_order_relaxed);
      assert(false && "block_ledger::mark_complete: block completed twice");
    }
  }

  // Record that an attempt skipped block j because it was already complete.
  void note_salvaged() {
    salvaged_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::counter::blocks_salvaged);
  }

  // --- integrity: per-block digests, quarantine, header validation ---------

  // Store block j's digest; called before mark_complete(j) so the bitmap
  // release publishes the digest together with the values.
  void set_digest(std::size_t j, std::uint64_t d) {
    digests_[j].store(d, std::memory_order_release);
  }

  // 0 = no digest recorded (block produced with verification unavailable).
  [[nodiscard]] std::uint64_t digest_of(std::size_t j) const {
    return digests_[j].load(std::memory_order_acquire);
  }

  // Re-digest block j's bytes against the recorded digest. Absent digests
  // verify trivially (there is nothing to check against). Bumps verified.
  [[nodiscard]] bool verify_block(std::size_t j, const void* bytes,
                                  std::size_t nbytes) const {
    std::uint64_t want = digest_of(j);
    if (want == 0) return true;
    bool ok = integrity::block_digest(bytes, nbytes) == want;
    if (ok) verified_.fetch_add(1, std::memory_order_relaxed);
    return ok;
  }

  // Demote block j from complete to not-completed because its salvaged
  // bytes failed verification. Returns true when this call cleared the bit
  // (the caller owns the re-execution); false if another worker already
  // quarantined it. The block's started bit stays set — for non-trivial
  // element types the slots remain constructed, so the redo protocol
  // (destroy-then-reconstruct) applies unchanged.
  bool quarantine(std::size_t j) {
    std::uint64_t bit = std::uint64_t{1} << (j & 63);
    std::uint64_t prev =
        complete_[j >> 6].fetch_and(~bit, std::memory_order_acq_rel);
    if (!(prev & bit)) return false;
    complete_count_.fetch_sub(1, std::memory_order_relaxed);
    elements_complete_.fetch_sub(block_length(j), std::memory_order_relaxed);
    header_xor_.fetch_xor(header_term(j), std::memory_order_relaxed);
    digests_[j].store(0, std::memory_order_relaxed);
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(telemetry::counter::blocks_quarantined);
    telemetry::trace_instant(telemetry::trace_kind::block, "quarantine",
                             static_cast<std::int64_t>(j));
    return true;
  }

  // Record that a quarantined block was re-executed to completion.
  void note_quarantine_reexec() {
    quarantine_reexec_.fetch_add(1, std::memory_order_relaxed);
  }

  // Torn-state self-validation: every completion folds a per-block term
  // into header_xor_ and bumps the completion count, so the header is a
  // sequence-stamped digest of the bitmap. A bitmap that does not
  // reproduce both (a bit flipped by a torn write, a count that ran ahead
  // of the bits) fails validation. Called between attempts, never
  // concurrently with mark_* on the same ledger.
  [[nodiscard]] bool validate_header() const {
    if (!bound_) return true;
    std::size_t nb = num_blocks();
    std::size_t words = (nb + 63) / 64;
    std::uint64_t x = 0;
    std::size_t count = 0;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = complete_[w].load(std::memory_order_acquire);
      while (bits != 0) {
        unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
        bits &= bits - 1;
        x ^= header_term(w * 64 + b);
        ++count;
      }
    }
    bool ok = count == complete_count_.load(std::memory_order_relaxed) &&
              x == header_xor_.load(std::memory_order_relaxed);
    if (!ok) header_invalid_.fetch_add(1, std::memory_order_relaxed);
    return ok;
  }

  // Test hook: simulate a torn bitmap write by flipping a completion bit
  // WITHOUT touching the header stamp or the counters.
  void corrupt_complete_bit_for_test(std::size_t j) {
    complete_[j >> 6].fetch_xor(std::uint64_t{1} << (j & 63),
                                std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t blocks_complete() const {
    return complete_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t elements_complete() const {
    return elements_complete_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool all_complete() const {
    return blocks_complete() == num_blocks();
  }
  [[nodiscard]] std::uint64_t executions() const {
    return executions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t salvaged() const {
    return salvaged_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t redone() const {
    return redone_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t quarantined() const {
    return quarantined_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t quarantine_reexecuted() const {
    return quarantine_reexec_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t verified() const {
    return verified_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t double_completed() const {
    return double_completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t header_invalidations() const {
    return header_invalid_.load(std::memory_order_relaxed);
  }

  // element_bytes lets the owner scale elements into bytes (the ledger is
  // deliberately type-blind).
  [[nodiscard]] progress snapshot(std::size_t element_bytes) const {
    progress p;
    p.blocks_total = num_blocks();
    p.blocks_complete = blocks_complete();
    p.bytes_complete = elements_complete() * element_bytes;
    p.executions = executions();
    p.salvaged = salvaged();
    p.redone = redone();
    p.quarantined = quarantined();
    p.reexecuted = quarantine_reexecuted();
    p.verified = verified();
    return p;
  }

 private:
  // Per-block header term: a splitmix64-style bijection of the block
  // index, so XOR-accumulating the terms of completed blocks is
  // commutative (lock-free concurrent completion) yet sensitive to any
  // single-bit discrepancy between bitmap and stamp.
  [[nodiscard]] static std::uint64_t header_term(std::size_t j) {
    std::uint64_t z = (static_cast<std::uint64_t>(j) + 1) *
                      0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Geometry fields are atomics (relaxed) only so that a concurrent
  // aggregate() from the service's drain path reads them without a data
  // race; they are logically written only between attempts.
  std::unique_ptr<std::atomic<std::uint64_t>[]> complete_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> started_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> digests_;
  std::atomic<std::size_t> n_{0};
  std::atomic<std::size_t> blk_{0};
  std::atomic<std::size_t> nb_{0};
  std::atomic<std::size_t> complete_count_{0};
  std::atomic<std::size_t> elements_complete_{0};
  std::atomic<std::uint64_t> header_xor_{0};
  std::atomic<std::uint64_t> executions_{0};
  std::atomic<std::uint64_t> salvaged_{0};
  std::atomic<std::uint64_t> redone_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> quarantine_reexec_{0};
  mutable std::atomic<std::uint64_t> verified_{0};
  std::atomic<std::uint64_t> double_completed_{0};
  mutable std::atomic<std::uint64_t> header_invalid_{0};
  bool bound_ = false;
};

// -------------------------------------------------------------------------
// Boundary fault injection: deterministic faults at block boundaries of
// checkpointed operations. A one-shot process-global countdown: the
// (count+1)-th unit start after arming throws. Used by the crash-at-every-
// block-boundary sweep; arming also forces the guarded construction paths
// so a mid-operation throw leaves storage in the documented uniform state.

class boundary_fault : public std::runtime_error {
 public:
  boundary_fault() : std::runtime_error("pbds: injected block-boundary fault") {}
};

enum class boundary_fault_kind { none, fault, stall, budget };

namespace detail {

struct boundary_fault_state {
  std::atomic<int> armed{0};
  std::atomic<boundary_fault_kind> kind{boundary_fault_kind::none};
  std::atomic<std::int64_t> countdown{-1};
  std::atomic<std::uint64_t> injected{0};
};

inline boundary_fault_state& bf_state() {
  static boundary_fault_state s;
  return s;
}

}  // namespace detail

[[nodiscard]] inline bool boundary_faults_armed() {
  return detail::bf_state().armed.load(std::memory_order_relaxed) != 0;
}

// Called by checkpointed operations immediately before executing an
// incomplete unit. One-shot: fires exactly once per arming.
inline void maybe_inject_boundary_fault() {
  auto& s = detail::bf_state();
  if (s.armed.load(std::memory_order_relaxed) == 0) return;
  if (s.countdown.fetch_sub(1, std::memory_order_acq_rel) != 0) return;
  s.injected.fetch_add(1, std::memory_order_relaxed);
  switch (s.kind.load(std::memory_order_relaxed)) {
    case boundary_fault_kind::stall:
      throw stall_detected("pbds: injected stall at block boundary");
    case boundary_fault_kind::budget: {
      // Marked injected so memory::budget_retry rethrows instead of
      // retrying: a fabricated refusal is not transient pressure, and the
      // sweep's propagation contract must hold regardless of whether an
      // ambient PBDS_BUDGET_BYTES has budget_active() true.
      budget_exceeded e(1, memory::bytes_live(), 1);
      e.mark_injected();
      throw e;
    }
    default:
      throw boundary_fault{};
  }
}

// RAII arming. `after` = number of unit starts to allow before throwing
// (0 = fault before the very first unit executes).
class scoped_boundary_faults {
 public:
  scoped_boundary_faults(boundary_fault_kind kind, std::int64_t after) {
    auto& s = detail::bf_state();
    s.kind.store(kind, std::memory_order_relaxed);
    s.countdown.store(after, std::memory_order_relaxed);
    s.injected.store(0, std::memory_order_relaxed);
    s.armed.store(1, std::memory_order_release);
  }
  ~scoped_boundary_faults() {
    auto& s = detail::bf_state();
    s.armed.store(0, std::memory_order_release);
    s.kind.store(boundary_fault_kind::none, std::memory_order_relaxed);
    s.countdown.store(-1, std::memory_order_relaxed);
  }
  scoped_boundary_faults(const scoped_boundary_faults&) = delete;
  scoped_boundary_faults& operator=(const scoped_boundary_faults&) = delete;

  // Number of faults actually delivered since arming (0 or 1).
  [[nodiscard]] std::uint64_t injected() const {
    return detail::bf_state().injected.load(std::memory_order_relaxed);
  }
};

}  // namespace pbds::recovery
