// Progress snapshot carried by recovery-aware failures.
//
// A tiny POD (no dependencies — it is included by the exception types in
// memory/budget.hpp and sched/cancellation.hpp) summarizing how far a
// checkpointed computation got before a refusal, stall, or cancellation.
// Counters are cumulative over the life of the ledger(s) they summarize:
//
//   blocks_total / blocks_complete — geometry-level progress
//   bytes_complete                 — completed elements scaled by element
//                                    size (what a resume salvages)
//   executions                     — units actually run (first runs + redos)
//   salvaged                       — units skipped because a prior attempt
//                                    completed them
//   redone                         — units re-run because a prior attempt
//                                    started but did not complete them
//   quarantined                    — completed units demoted on resume
//                                    because their bytes failed digest
//                                    verification (integrity layer)
//   reexecuted                     — quarantined units re-run to completion
//   verified                       — salvaged units whose digest re-check
//                                    passed
#pragma once

#include <cstddef>
#include <cstdint>

namespace pbds::recovery {

struct progress {
  std::size_t blocks_total = 0;
  std::size_t blocks_complete = 0;
  std::size_t bytes_complete = 0;
  std::uint64_t executions = 0;
  std::uint64_t salvaged = 0;
  std::uint64_t redone = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t reexecuted = 0;
  std::uint64_t verified = 0;

  progress& operator+=(const progress& o) noexcept {
    blocks_total += o.blocks_total;
    blocks_complete += o.blocks_complete;
    bytes_complete += o.bytes_complete;
    executions += o.executions;
    salvaged += o.salvaged;
    redone += o.redone;
    quarantined += o.quarantined;
    reexecuted += o.reexecuted;
    verified += o.verified;
    return *this;
  }

  friend bool operator==(const progress&, const progress&) = default;
};

}  // namespace pbds::recovery
