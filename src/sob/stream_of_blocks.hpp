// Stream-of-blocks — the prior block-based fusion technique (§2.1),
// implemented for the §6.5 comparison (Fig. 16).
//
// Where block-delayed sequences are *blocks of streams* (parallel across
// blocks, sequential within), stream-of-blocks is the inside-out
// arrangement: the sequence is consumed as a sequential stream of
// materialized blocks, and parallelism is exploited only *within* the
// current block. A small buffer of size B holds the live block; each
// pipeline operation is applied to it in parallel before moving on to the
// next block. This works for SIMD-granularity parallelism but on a
// multicore the per-block synchronization cost forces B to be enormous
// before the approach even matches unfused arrays — which is exactly what
// Fig. 16 shows.
#pragma once

#include <algorithm>
#include <cstddef>

#include "array/parray.hpp"
#include "sched/parallel.hpp"

namespace pbds::sob {

// Parallel primitives over raw ranges (the within-block operations).
// Chunking uses ~4 chunks per worker so small blocks do not over-fork.

namespace detail {
inline std::size_t chunk_for(std::size_t n) {
  std::size_t per =
      n / (4 * static_cast<std::size_t>(sched::num_workers()) + 1);
  return std::max<std::size_t>(per, 512);
}
}  // namespace detail

template <typename T, typename F>
T range_reduce(const T* p, std::size_t n, const F& f, T z) {
  std::size_t chunk = detail::chunk_for(n);
  if (n <= chunk) {
    T acc = z;
    for (std::size_t i = 0; i < n; ++i) acc = f(acc, p[i]);
    return acc;
  }
  std::size_t nc = (n + chunk - 1) / chunk;
  // Fold each (nonempty) chunk from its first element so the seed z is
  // incorporated exactly once — z need not be an identity of f here.
  auto sums = parray<T>::tabulate(
      nc,
      [&](std::size_t j) {
        std::size_t lo = j * chunk, hi = std::min(n, lo + chunk);
        T acc = p[lo];
        for (std::size_t i = lo + 1; i < hi; ++i) acc = f(acc, p[i]);
        return acc;
      },
      1);
  T acc = z;
  for (std::size_t j = 0; j < nc; ++j) acc = f(acc, sums[j]);
  return acc;
}

// In-place parallel exclusive scan over [p, p+n), seeded with z; returns
// the total. Two passes (sums, then rescan), parallel across chunks.
template <typename T, typename F>
T range_scan_exclusive(T* p, std::size_t n, const F& f, T z) {
  std::size_t chunk = detail::chunk_for(n);
  if (n <= chunk) {
    T acc = z;
    for (std::size_t i = 0; i < n; ++i) {
      T next = f(acc, p[i]);
      p[i] = acc;
      acc = next;
    }
    return acc;
  }
  std::size_t nc = (n + chunk - 1) / chunk;
  // Unlike the library scans (which require z to be an identity of f), the
  // stream-of-blocks loop seeds each block with a *running* value, so the
  // chunk sums must fold the elements alone (chunks are nonempty).
  auto sums = parray<T>::tabulate(
      nc,
      [&](std::size_t j) {
        std::size_t lo = j * chunk, hi = std::min(n, lo + chunk);
        T acc = p[lo];
        for (std::size_t i = lo + 1; i < hi; ++i) acc = f(acc, p[i]);
        return acc;
      },
      1);
  auto partials = parray<T>::uninitialized(nc);
  T acc = z;
  for (std::size_t j = 0; j < nc; ++j) {
    ::new (partials.data() + j) T(acc);
    acc = f(acc, sums[j]);
  }
  apply(nc, [&](std::size_t j) {
    std::size_t lo = j * chunk, hi = std::min(n, lo + chunk);
    T a = partials[j];
    for (std::size_t i = lo; i < hi; ++i) {
      T next = f(a, p[i]);
      p[i] = a;
      a = next;
    }
  });
  return acc;
}

}  // namespace pbds::sob
