// Graph substrate for the BFS benchmark: CSR representation, generators
// (R-MAT power-law [Chakrabarti et al. 2004] and uniform), and a BFS-tree
// validity checker used by the tests.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "array/parray.hpp"
#include "random/rng.hpp"
#include "sched/parallel.hpp"

namespace pbds::graph {

using vertex = std::uint32_t;
inline constexpr vertex kNoVertex = static_cast<vertex>(-1);

// Compressed sparse row adjacency. Immutable once built.
class csr_graph {
 public:
  csr_graph() = default;
  csr_graph(parray<std::uint64_t> offsets, parray<vertex> edges)
      : offsets_(std::move(offsets)), edges_(std::move(edges)) {
    assert(!offsets_.empty());
    assert(offsets_[offsets_.size() - 1] == edges_.size());
  }

  [[nodiscard]] std::size_t num_vertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  [[nodiscard]] std::size_t degree(vertex u) const {
    return offsets_[u + 1] - offsets_[u];
  }

  // Pointer to u's first out-neighbor; degree(u) entries follow.
  [[nodiscard]] const vertex* neighbors(vertex u) const {
    return edges_.data() + offsets_[u];
  }

 private:
  parray<std::uint64_t> offsets_;  // n+1
  parray<vertex> edges_;           // m
};

// Build a CSR graph from an (unsorted) directed edge list, in parallel:
// count degrees with fetch_add, exclusive-scan for offsets, then place
// edges with per-vertex atomic cursors. Neighbor order is nondeterministic
// but the *multiset* of edges is preserved.
inline csr_graph from_edges(std::size_t n,
                            const parray<std::pair<vertex, vertex>>& edges) {
  auto counts = parray<std::atomic<std::uint64_t>>::tabulate(
      n, [](std::size_t) { return 0; });
  parallel_for(0, edges.size(), [&](std::size_t e) {
    counts[edges[e].first].fetch_add(1, std::memory_order_relaxed);
  });
  auto offsets = parray<std::uint64_t>::uninitialized(n + 1);
  std::uint64_t acc = 0;
  for (std::size_t u = 0; u < n; ++u) {
    offsets[u] = acc;
    acc += counts[u].load(std::memory_order_relaxed);
    counts[u].store(0, std::memory_order_relaxed);  // reuse as cursor
  }
  offsets[n] = acc;
  auto out = parray<vertex>::uninitialized(edges.size());
  parallel_for(0, edges.size(), [&](std::size_t e) {
    vertex u = edges[e].first;
    std::uint64_t slot =
        offsets[u] + counts[u].fetch_add(1, std::memory_order_relaxed);
    out[slot] = edges[e].second;
  });
  return csr_graph(std::move(offsets), std::move(out));
}

// R-MAT power-law generator: n = 2^scale vertices, m edges, quadrant
// probabilities (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) as in the paper's
// bfs input ("random power-law graph"). Self-loops and duplicates are kept
// (standard for R-MAT); the graph is directed.
inline csr_graph rmat(unsigned scale, std::size_t m,
                      std::uint64_t seed = 42) {
  std::size_t n = std::size_t{1} << scale;
  random::rng gen(seed);
  auto edges = parray<std::pair<vertex, vertex>>::tabulate(
      m, [&](std::size_t e) {
        vertex src = 0, dst = 0;
        for (unsigned level = 0; level < scale; ++level) {
          double r = gen.uniform(e * scale + level);
          // quadrant choice: a=0.57, b=0.19, c=0.19, d=0.05
          unsigned quad = r < 0.57 ? 0 : (r < 0.76 ? 1 : (r < 0.95 ? 2 : 3));
          src = static_cast<vertex>((src << 1) | (quad >> 1));
          dst = static_cast<vertex>((dst << 1) | (quad & 1));
        }
        return std::pair<vertex, vertex>(src, dst);
      });
  return from_edges(n, edges);
}

// Uniform random directed graph.
inline csr_graph uniform(std::size_t n, std::size_t m,
                         std::uint64_t seed = 42) {
  random::rng gen(seed);
  auto edges = parray<std::pair<vertex, vertex>>::tabulate(
      m, [&](std::size_t e) {
        return std::pair<vertex, vertex>(
            static_cast<vertex>(gen.below(2 * e, n)),
            static_cast<vertex>(gen.below(2 * e + 1, n)));
      });
  return from_edges(n, edges);
}

// Reference sequential BFS: distance from source for every vertex
// (kNoVertex-distance = unreached, encoded as -1 in the result).
inline std::vector<std::int64_t> reference_distances(const csr_graph& g,
                                                     vertex source) {
  std::vector<std::int64_t> dist(g.num_vertices(), -1);
  std::queue<vertex> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    vertex u = q.front();
    q.pop();
    const vertex* ngh = g.neighbors(u);
    for (std::size_t k = 0; k < g.degree(u); ++k) {
      vertex v = ngh[k];
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

// Validate a parent array as a correct BFS tree from `source`:
//  * exactly the reachable vertices are visited,
//  * the source is its own parent,
//  * every other visited vertex v has an edge parent[v] -> v and
//    dist(v) == dist(parent[v]) + 1 (i.e. the tree realizes shortest
//    hop distances, which BFS must, despite racy parent choice).
template <typename Parents>
bool check_bfs_tree(const csr_graph& g, vertex source,
                    const Parents& parents) {
  // Accept either an indexable array or a callable accessor.
  auto parent = [&](std::size_t v) -> vertex {
    if constexpr (std::is_invocable_v<const Parents&, std::size_t>) {
      return parents(v);
    } else {
      return parents[v];
    }
  };
  auto dist = reference_distances(g, source);
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    bool reachable = dist[v] >= 0;
    bool visited = parent(v) != kNoVertex;
    if (reachable != visited) return false;
    if (!visited) continue;
    if (v == source) {
      if (parent(v) != source) return false;
      continue;
    }
    vertex p = parent(v);
    if (dist[p] + 1 != dist[v]) return false;
    const vertex* ngh = g.neighbors(p);
    bool has_edge = false;
    for (std::size_t k = 0; k < g.degree(p) && !has_edge; ++k) {
      has_edge = ngh[k] == v;
    }
    if (!has_edge) return false;
  }
  return true;
}

}  // namespace pbds::graph
