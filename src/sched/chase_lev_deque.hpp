// Chase-Lev work-stealing deque (fixed-capacity variant).
//
// Owner pushes/pops at the bottom without contention in the common case;
// thieves steal from the top with a CAS. Memory orderings follow Lê,
// Pop, Cohen & Zappa Nardelli, "Correct and Efficient Work-Stealing for
// Weak Memory Models" (PPoPP 2013), specialized to a fixed-size circular
// buffer.
//
// Capacity is fixed because the number of outstanding forked-but-unjoined
// jobs per worker is bounded by the fork-join nesting depth (one job per
// live fork2join frame), which for divide-and-conquer loops is
// O(log n) and in practice far below kCapacity. Overflow is not fatal:
// push_bottom refuses (returns false) and the owner executes the job
// inline instead (parallel.hpp), trading stealable parallelism for
// bounded state — no lost work, no abort. That graceful path is what lets
// the capacity stay modest: it is purely a locality/stealability knob.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "sched/job.hpp"

namespace pbds::sched {

class chase_lev_deque {
 public:
  static constexpr std::size_t kCapacity = 1 << 10;
  static constexpr std::size_t kMask = kCapacity - 1;

  chase_lev_deque() {
    for (auto& slot : buffer_) slot.store(nullptr, std::memory_order_relaxed);
  }

  chase_lev_deque(const chase_lev_deque&) = delete;
  chase_lev_deque& operator=(const chase_lev_deque&) = delete;

  // Owner only. Returns false — job NOT enqueued — when the deque is full
  // (fork depth exceeded kCapacity); the caller must then run the job
  // itself (fork2join executes it inline on the owner).
  [[nodiscard]] bool push_bottom(job* j) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(kCapacity)) return false;
    buffer_[static_cast<std::size_t>(b) & kMask].store(
        j, std::memory_order_relaxed);
    // Publish the slot (and the job's payload) before making it visible to
    // thieves. The release must be on the bottom_ store itself, not a
    // standalone fence: a thief acquires bottom_ in steal(), and pairing
    // store-release/load-acquire gives the happens-before edge for the
    // job's non-atomic fields. (ThreadSanitizer does not model standalone
    // fences, so this is also what makes the deque TSan-clean; on x86 a
    // release store compiles to a plain mov, same as before.)
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  // Owner only. Returns nullptr if the deque was empty or the last element
  // was lost to a concurrent thief.
  job* pop_bottom() {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    job* j = buffer_[static_cast<std::size_t>(b) & kMask].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Single element: race with thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        j = nullptr;  // lost the race
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return j;
  }

  // Thieves. Returns nullptr if empty or the steal raced.
  job* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    job* j = buffer_[static_cast<std::size_t>(t) & kMask].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // another thief (or the owner) got it
    }
    return j;
  }

  [[nodiscard]] bool looks_empty() const noexcept {
    return top_.load(std::memory_order_relaxed) >=
           bottom_.load(std::memory_order_relaxed);
  }

  // Approximate depth for diagnostics (watchdog stderr dump). Racy by
  // nature — both indices move concurrently — but never negative and
  // exact whenever the owner is parked or dead.
  [[nodiscard]] std::size_t size_estimate() const noexcept {
    std::int64_t t = top_.load(std::memory_order_relaxed);
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::array<std::atomic<job*>, kCapacity> buffer_;
};

}  // namespace pbds::sched
