// Work-stealing fork-join scheduler.
//
// A fixed pool of workers, each with a Chase-Lev deque. The thread that
// first touches the scheduler (normally the program's main thread) is
// enrolled as worker 0 and participates in the computation; `num_workers-1`
// additional threads are spawned. Forked jobs are pushed onto the forking
// worker's deque; idle workers steal from the top of random victims.
//
// This is the substrate for the paper's single parallel primitive `apply`
// (Fig. 7), exposed here as fork2join / parallel_for (see parallel.hpp).
//
// Workers back off exponentially (yield, then short sleeps) when no work is
// found, so an over-provisioned pool does not burn a core per idle worker.
//
// Failure behavior (DESIGN.md §"Failure semantics"): jobs capture their own
// exceptions (job.hpp), so nothing ever unwinds through worker_loop; a
// pool-wide failed-subtree counter keeps joins on failing regions from
// falling into the long sleep backoff; and a thread-spawn failure in the
// constructor shrinks the pool to the workers that actually started
// instead of crashing.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <memory>
#include <mutex>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "core/env.hpp"
#include "memory/tracking.hpp"
#include "sched/cancellation.hpp"
#include "sched/chase_lev_deque.hpp"
#include "sched/job.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pbds::sched {

// Per-worker heartbeat, published by the worker loop and sampled by the
// watchdog (and by quiesce()). Cache-line aligned so heartbeat traffic
// never false-shares with a neighbour's counters.
//
// The last four fields implement the worker-loss protocol (DESIGN.md
// §"Worker-loss semantics"): `heartbeat_ns` is stamped at every loop
// iteration, so a non-busy worker whose heartbeat ages past
// PBDS_WORKER_LOST_MS is no longer advancing; `claimed` holds the job the
// worker took from find_work but has not finished (the one stranded unit a
// boundary death can leave behind); `lost`/`exited`/`retired` are the slot
// life-cycle: declared lost by detection, loop actually returned, slot
// permanently withdrawn from service (repair cap or respawn failure).
struct alignas(64) worker_stat {
  std::atomic<std::uint64_t> jobs{0};            // jobs executed to completion
  std::atomic<std::uint64_t> steal_attempts{0};  // find_work probe rounds
  std::atomic<std::uint64_t> epoch{0};           // loop iterations (liveness)
  std::atomic<bool> busy{false};                 // currently inside a payload
  std::atomic<std::int64_t> heartbeat_ns{0};     // steady_clock at loop top
  std::atomic<job*> claimed{nullptr};            // taken but not finished
  std::atomic<bool> lost{false};     // declared lost; worker must not run on
  std::atomic<bool> exited{false};   // worker_loop returned (joinable+done)
  std::atomic<bool> retired{false};  // slot withdrawn: no repair, no detect
};

namespace detail {
// Per-thread worker id; -1 for threads not enrolled in the pool.
inline thread_local int tl_worker_id = -1;

// Cheap per-thread xorshift for victim selection.
inline std::uint64_t& tl_rng_state() {
  static thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ull ^
      (static_cast<std::uint64_t>(tl_worker_id + 2) * 0xbf58476d1ce4e5b9ull);
  return state;
}

inline std::uint64_t next_random() {
  std::uint64_t& x = tl_rng_state();
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

// Test hook mirroring the allocation fault injector (memory/tracking.hpp):
// when armed with k, the k-th spawn attempt from now throws std::system_error
// exactly as an exhausted OS would, exercising the constructor's
// shrink-to-fit degradation path. Disarmed when negative.
inline std::atomic<int> g_spawn_fault_countdown{-1};

inline void arm_spawn_fault(int nth) noexcept {
  g_spawn_fault_countdown.store(nth, std::memory_order_relaxed);
}

inline void disarm_spawn_fault() noexcept {
  g_spawn_fault_countdown.store(-1, std::memory_order_relaxed);
}

inline void maybe_inject_spawn_fault() {
  int c = g_spawn_fault_countdown.load(std::memory_order_relaxed);
  if (c < 0) return;
  if (g_spawn_fault_countdown.fetch_sub(1, std::memory_order_relaxed) == 0) {
    throw std::system_error(
        std::make_error_code(std::errc::resource_unavailable_try_again),
        "injected thread-spawn failure");
  }
}

// --- worker-death injector (real pool) --------------------------------------
//
// Armed with (seed, nth): the victim worker — picked by the seed among the
// spawned workers, never worker 0 — returns from its worker_loop at its
// nth kill boundary after arming, exactly as a thread whose loop aborted
// would. Kill boundaries are the two points where a death can strand work
// in a bounded, reclaimable way: the loop top (heartbeat boundary — the
// worker dies holding nothing) and just after find_work hands it a job
// (steal boundary — the worker dies holding a claimed-but-unstarted job
// whose joiner would hang forever without loss detection). The seed fixes
// which worker dies and nth fixes which of its boundaries, so a failing
// (seed, nth) replays; det_scheduler::arm_worker_kill is the single-thread
// mirror whose interleaving replays exactly. Disarmed by a negative nth.
inline std::atomic<long> g_worker_kill_countdown{-1};
inline std::atomic<std::uint64_t> g_worker_kill_seed{0};
inline std::atomic<std::uint64_t> g_worker_kills_delivered{0};

// Ownership sentinel for worker_stat::claimed: the worker CASes its
// claimed pointer from the job to this marker to win the right to execute
// it; loss reclamation exchanges claimed for nullptr and only touches the
// job if it got a real pointer back. Exactly one side ever runs the job.
inline job* claim_executing_marker() noexcept {
  return reinterpret_cast<job*>(static_cast<std::uintptr_t>(1));
}

inline std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace detail

// Arm the worker-death injector (see detail above). Safe to call at any
// time; typically armed between top-level regions and re-armed by soak
// drivers after each delivered kill.
inline void arm_worker_kill(std::uint64_t seed, long nth) noexcept {
  detail::g_worker_kill_seed.store(seed, std::memory_order_relaxed);
  detail::g_worker_kill_countdown.store(nth < 0 ? -1 : nth,
                                        std::memory_order_relaxed);
}

inline void disarm_worker_kill() noexcept {
  detail::g_worker_kill_countdown.store(-1, std::memory_order_relaxed);
}

// Lifetime count of injected deaths actually delivered (a kill armed with
// nth beyond the victim's remaining boundaries in the observed window has
// simply not fired yet).
[[nodiscard]] inline std::uint64_t worker_kills_delivered() noexcept {
  return detail::g_worker_kills_delivered.load(std::memory_order_relaxed);
}

class scheduler {
 public:
  // Guest slots: threads outside the pool (service dispatchers,
  // pipeline_service.hpp) can enroll temporarily so their fork2join calls
  // push real stealable work instead of degrading to the sequential
  // fast path. Guests get deque/stat slots above the worker slots; pool
  // workers include enrolled guest slots in their steal victim range.
  static constexpr unsigned kMaxGuests = 16;

  explicit scheduler(unsigned num_workers)
      : num_workers_(num_workers == 0 ? 1 : num_workers),
        requested_(num_workers_.load(std::memory_order_relaxed)),
        victim_bound_(requested_),
        deques_(requested_ + kMaxGuests),
        stats_(requested_ + kMaxGuests),
        repair_max_(static_cast<std::uint64_t>(pbds::detail::env_integer(
            "PBDS_REPAIR_MAX", 0, 1L << 20, 4096))) {
    // Enroll the constructing thread as worker 0.
    detail::tl_worker_id = 0;
    unsigned requested = requested_;
    for (unsigned g = 0; g < kMaxGuests; ++g)
      free_guest_slots_.push_back(requested + kMaxGuests - 1 - g);
    threads_.reserve(requested - 1);
    for (unsigned id = 1; id < requested; ++id) {
      try {
        detail::maybe_inject_spawn_fault();
        threads_.emplace_back([this, id] { worker_loop(id); });
      } catch (const std::system_error& e) {
        // Graceful degradation: workers 0..id-1 are already running, so
        // shrink the pool to them rather than crashing. The deque vector
        // keeps its original size — unreachable deques stay empty and
        // stale num_workers_ reads in concurrent steal loops only probe
        // them harmlessly.
        num_workers_.store(id, std::memory_order_relaxed);
        std::fprintf(stderr,
                     "pbds: thread spawn failed after %u of %u workers "
                     "(%s); continuing with a pool of %u\n",
                     id, requested, e.what(), id);
        break;
      }
    }
  }

  ~scheduler() {
    shutdown_.store(true, std::memory_order_release);
    // repair_mutex_ excludes a concurrent repair() respawning a thread
    // after this loop has passed its slot. Lost-but-unrepaired slots were
    // already joined by nobody (their loops returned), so join() on them
    // completes immediately; slots repair() already recycled were joined
    // there and are joinable again with the replacement thread.
    std::lock_guard<std::mutex> lock(repair_mutex_);
    for (auto& t : threads_)
      if (t.joinable()) t.join();
    detail::tl_worker_id = -1;
  }

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  [[nodiscard]] unsigned num_workers() const noexcept {
    return num_workers_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] static int worker_id() noexcept {
    return detail::tl_worker_id;
  }

  // Push a job onto the calling worker's deque. Caller must be enrolled.
  // Returns false — job NOT enqueued — when the deque is full; the caller
  // must then execute the job inline (fork2join does), so overflow costs
  // stealable parallelism, never correctness.
  [[nodiscard]] bool push(job* j) {
    assert(detail::tl_worker_id >= 0);
    return deques_[static_cast<unsigned>(detail::tl_worker_id)].push_bottom(j);
  }

  // --- guest enrollment -------------------------------------------------------
  //
  // Enroll the calling (non-pool) thread as a guest worker: it gets its
  // own deque slot, its fork2join calls push stealable jobs, and it
  // steals from (and is stolen from by) the pool like any worker. Returns
  // the slot id, or -1 when the thread is already enrolled or all
  // kMaxGuests slots are taken (callers fall back to the sequential fast
  // path — degraded, not broken). Prefer the guest_worker RAII below.
  int enroll_guest() {
    if (detail::tl_worker_id >= 0) return -1;
    std::lock_guard<std::mutex> lock(guest_mutex_);
    if (free_guest_slots_.empty()) return -1;
    unsigned slot = free_guest_slots_.back();
    free_guest_slots_.pop_back();
    detail::tl_worker_id = static_cast<int>(slot);
    // Raise the steal victim bound to cover this slot. Never lowered:
    // stale guest slots have empty deques and are probed harmlessly.
    unsigned bound = victim_bound_.load(std::memory_order_relaxed);
    while (bound < slot + 1 &&
           !victim_bound_.compare_exchange_weak(bound, slot + 1,
                                                std::memory_order_relaxed)) {
    }
    return static_cast<int>(slot);
  }

  // Leave a guest slot. The guest's own deque must be empty (every fork
  // it made has joined) — guaranteed after any balanced fork2join tree.
  void leave_guest(int slot) {
    assert(detail::tl_worker_id == slot && "leave_guest from a foreign thread");
    assert(deques_[static_cast<unsigned>(slot)].looks_empty());
    std::lock_guard<std::mutex> lock(guest_mutex_);
    free_guest_slots_.push_back(static_cast<unsigned>(slot));
    detail::tl_worker_id = -1;
  }

  // Pop from the calling worker's own deque (LIFO).
  job* try_pop() {
    assert(detail::tl_worker_id >= 0);
    return deques_[static_cast<unsigned>(detail::tl_worker_id)].pop_bottom();
  }

  // Record that some branch of a fork tree failed (threw). Monotone
  // observation counter: waiters snapshot it on entry and switch to a
  // prompt yield-only drain once it moves, so a join on a cancelling
  // subtree never parks in the long sleep backoff.
  void note_subtree_failure() noexcept {
    subtree_failures_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t subtree_failures() const noexcept {
    return subtree_failures_.load(std::memory_order_relaxed);
  }

  // Sum of jobs executed to completion across all workers. Monotone; the
  // watchdog samples it each interval — a pool with pending joins whose
  // total stops moving is making no global progress.
  [[nodiscard]] std::uint64_t total_jobs_executed() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : stats_)
      total += s.jobs.load(std::memory_order_relaxed);
    return total;
  }

  // True when no spawned worker is inside a job payload. Worker 0 (the
  // caller) is excluded: it is by definition not executing stolen work
  // when it is here asking. Acquire pairs with the release store clearing
  // `busy`, so a true return also means every finished payload's memory
  // effects are visible to the caller.
  [[nodiscard]] bool quiescent() const noexcept {
    for (const auto& s : stats_)
      if (s.busy.load(std::memory_order_acquire)) return false;
    return true;
  }

  // Diagnostics snapshot for the watchdog's stderr dump. Heartbeat age and
  // deque depth make lost-vs-stalled diagnosable from one report: a stalled
  // worker is busy with a fresh-or-frozen heartbeat and a possibly deep
  // deque; a lost worker is non-busy with an ancient heartbeat (or already
  // marked lost/exited). Iterates the full requested range so retired
  // slots stay visible.
  void dump_worker_stats(std::FILE* out) const {
    std::int64_t now = detail::steady_now_ns();
    for (unsigned i = 0; i < requested_; ++i) {
      const auto& s = stats_[i];
      std::int64_t hb = s.heartbeat_ns.load(std::memory_order_relaxed);
      double age_ms =
          (i == 0 || hb == 0) ? 0.0 : static_cast<double>(now - hb) * 1e-6;
      std::fprintf(
          out,
          "pbds:   worker %u: jobs=%llu steal_attempts=%llu epoch=%llu "
          "hb_age_ms=%.1f deque=%zu%s%s%s%s\n",
          i,
          static_cast<unsigned long long>(
              s.jobs.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              s.steal_attempts.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              s.epoch.load(std::memory_order_relaxed)),
          age_ms, deques_[i].size_estimate(),
          s.busy.load(std::memory_order_relaxed) ? " busy" : "",
          s.lost.load(std::memory_order_relaxed) ? " LOST" : "",
          s.exited.load(std::memory_order_relaxed) ? " exited" : "",
          s.retired.load(std::memory_order_relaxed) ? " retired" : "");
    }
  }

  // --- worker-loss detection, reclamation, repair -----------------------------
  //
  // See DESIGN.md §"Worker-loss semantics". A spawned worker is declared
  // lost when it is outside any payload and either its loop has returned
  // (injected death) or its heartbeat has aged past `lost_ms` — a live
  // non-busy worker re-stamps its heartbeat at least every backoff sleep
  // (≤ 200µs), so an ancient heartbeat means the thread is not advancing.
  // A busy worker is never declared lost: a frozen payload is
  // indistinguishable from a long leaf and stays the watchdog-stagnation
  // problem, not a loss.
  //
  // Declaring a slot lost immediately reclaims its stranded work on the
  // calling thread (typically the watchdog): the claimed-but-unstarted job
  // is taken over via the `claimed` ownership exchange, its region is
  // cancelled with pbds::worker_lost, and the job is executed — the
  // payload is skipped (region cancelled) but the done flag is set, so the
  // hung joiner wakes and the root join throws worker_lost instead of
  // waiting forever. Any residue in the dead deque gets the same
  // treatment (vacuous under boundary deaths: a worker's own deque is
  // empty between jobs by fork-join discipline, but the drain keeps the
  // protocol sound for any future death model). Cancelled regions redo
  // their blocks through the recovery:: ledger on retry, salvaging
  // completed blocks.
  //
  // Returns the number of workers newly declared lost.
  unsigned detect_and_reclaim_lost(long lost_ms) {
    if (shutdown_.load(std::memory_order_acquire)) return 0;
    std::int64_t now = detail::steady_now_ns();
    unsigned newly_lost = 0;
    for (unsigned id = 1; id < requested_; ++id) {
      worker_stat& s = stats_[id];
      if (s.lost.load(std::memory_order_acquire) ||
          s.retired.load(std::memory_order_relaxed))
        continue;
      std::int64_t hb = s.heartbeat_ns.load(std::memory_order_relaxed);
      if (hb == 0) continue;  // never ran (constructor shrink / still starting)
      if (s.busy.load(std::memory_order_acquire)) continue;
      bool dead = s.exited.load(std::memory_order_acquire);
      if (!dead && lost_ms > 0)
        dead = (now - hb) > lost_ms * 1000000LL;
      if (!dead) continue;
      s.lost.store(true, std::memory_order_release);
      workers_lost_.fetch_add(1, std::memory_order_relaxed);
      telemetry::count(telemetry::counter::workers_lost);
      telemetry::trace_instant(telemetry::trace_kind::repair, "worker_lost",
                               id);
      ++newly_lost;
      reclaim_slot(id);
    }
    return newly_lost;
  }

  // Respawn a replacement thread into every lost (and not retired) slot,
  // recycling the slot in place — deque and stat vectors are fixed-size,
  // so slots are positions, not allocations, and thousands of
  // kill→repair cycles leave the pool's footprint unchanged. Lifetime
  // respawns are capped by PBDS_REPAIR_MAX; past the cap, or when the
  // respawn itself fails, the slot is retired for good through the same
  // degrade-don't-crash path as a constructor spawn failure (the pool
  // shrinks by one and keeps serving). Call between top-level regions for
  // tidy accounting; calling concurrently with running regions is safe —
  // the replacement enters as one more thief. Returns slots repaired.
  unsigned repair() {
    std::lock_guard<std::mutex> lock(repair_mutex_);
    if (shutdown_.load(std::memory_order_acquire)) return 0;
    unsigned repaired = 0;
    for (unsigned id = 1; id < requested_ && id <= threads_.size(); ++id) {
      worker_stat& s = stats_[id];
      if (!s.lost.load(std::memory_order_acquire) ||
          s.retired.load(std::memory_order_relaxed))
        continue;
      std::thread& th = threads_[id - 1];
      // The lost worker's loop has returned (injected death) or will
      // return at its next boundary (fencing on the lost flag), so this
      // join completes promptly rather than blocking repair on shutdown.
      if (th.joinable()) th.join();
      reclaim_slot(id);  // drain anything stranded after the declaration
      if (repairs_.load(std::memory_order_relaxed) >= repair_max_) {
        retire_slot(id, "repair budget PBDS_REPAIR_MAX exhausted");
        continue;
      }
      s.claimed.store(nullptr, std::memory_order_relaxed);
      s.busy.store(false, std::memory_order_relaxed);
      s.exited.store(false, std::memory_order_relaxed);
      s.heartbeat_ns.store(detail::steady_now_ns(),
                           std::memory_order_relaxed);
      // Clear `lost` before the spawn: the replacement checks it at its
      // loop top (fencing) and must not stand down on its own birth. If
      // the spawn fails, retire_slot marks the slot retired, which
      // detection skips regardless of `lost`.
      s.lost.store(false, std::memory_order_release);
      try {
        detail::maybe_inject_spawn_fault();
        th = std::thread([this, id] { worker_loop(id); });
        repairs_.fetch_add(1, std::memory_order_relaxed);
        telemetry::count(telemetry::counter::repairs);
        telemetry::trace_instant(telemetry::trace_kind::repair, "repair", id);
        ++repaired;
      } catch (const std::system_error& e) {
        // Same graceful degradation as a constructor spawn failure: keep
        // the pool running one worker smaller instead of crashing.
        retire_slot(id, e.what());
      }
    }
    return repaired;
  }

  [[nodiscard]] std::uint64_t workers_lost() const noexcept {
    return workers_lost_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t repairs() const noexcept {
    return repairs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t retired_workers() const noexcept {
    return retired_.load(std::memory_order_relaxed);
  }

  // Lost slots awaiting repair (or retirement). The watchdog polls this so
  // a kill delivered between its detect pass and its repair pass still
  // gets repaired next interval.
  [[nodiscard]] unsigned lost_pending_repair() const noexcept {
    unsigned n = 0;
    for (unsigned id = 1; id < requested_; ++id)
      if (stats_[id].lost.load(std::memory_order_relaxed) &&
          !stats_[id].retired.load(std::memory_order_relaxed))
        ++n;
    return n;
  }

  // Block (cooperatively) until `j` completes, stealing work meanwhile.
  //
  // Jobs always finish — job::execute marks completion even when the
  // payload throws or is skipped by cancellation — so finished() is a
  // sound exit. The failed-subtree check only changes *how* we wait once
  // a failure is recorded: drain eagerly instead of sleeping.
  void wait_until(const job* j) {
    unsigned failures = 0;
    const std::uint64_t failures_at_entry =
        subtree_failures_.load(std::memory_order_relaxed);
    worker_stat& stat =
        stats_[static_cast<unsigned>(detail::tl_worker_id)];
    while (!j->finished()) {
      // A shutdown while a join is still pending means an exception (or a
      // teardown) unwound past a stealable job — the use-after-scope this
      // layer exists to prevent. Fail loudly in debug builds.
      assert(!shutdown_.load(std::memory_order_acquire) &&
             "scheduler shut down while a join was still pending");
      stat.epoch.fetch_add(1, std::memory_order_relaxed);
      job* stolen = find_work();
      if (stolen != nullptr) {
        // Failure status must come from the return value: once execute
        // marks the job done, its owner may pop the frame it lives in.
        //
        // No busy bracket here: the waiting thread is *inside* a join, so
        // quiesce() — which only runs between top-level regions — never
        // races with it. Only spawned workers publish busy.
        if (stolen->execute()) note_subtree_failure();
        stat.jobs.fetch_add(1, std::memory_order_relaxed);
        failures = 0;
      } else if (subtree_failures_.load(std::memory_order_relaxed) !=
                 failures_at_entry) {
        // A subtree failed since we started waiting: the job we're
        // joining is likely completing via cancellation bail-out. Spin
        // politely; do not fall into the 200µs sleeps.
        std::this_thread::yield();
      } else {
        back_off(failures);
      }
    }
  }

 private:
  void worker_loop(unsigned id) {
    detail::tl_worker_id = static_cast<int>(id);
    worker_stat& stat = stats_[id];
    unsigned failures = 0;
    while (!shutdown_.load(std::memory_order_acquire)) {
      stat.epoch.fetch_add(1, std::memory_order_relaxed);
      stat.heartbeat_ns.store(detail::steady_now_ns(),
                              std::memory_order_relaxed);
      telemetry::count(telemetry::counter::heartbeats);
      // Fencing: once detection has declared this slot lost (a false
      // positive is possible only with a pathologically small
      // PBDS_WORKER_LOST_MS), the declaration is authoritative — the
      // worker must stand down at its next boundary so repair() can join
      // a thread that really does exit.
      if (stat.lost.load(std::memory_order_acquire)) break;
      // Heartbeat-boundary kill point: the worker dies holding nothing;
      // the pool keeps computing on the remaining workers until repair().
      if (maybe_die(id)) break;
      job* j = find_work();
      if (j != nullptr) {
        stat.claimed.store(j, std::memory_order_release);
        // Steal-boundary kill point: the worker dies holding a claimed but
        // unstarted job — without loss detection its joiner hangs forever.
        if (maybe_die(id)) break;
        // Win the right to run the job. Losing the CAS means reclamation
        // raced us, took ownership, and already executed it — we were
        // declared lost mid-claim, so stand down.
        job* expected = j;
        if (!stat.claimed.compare_exchange_strong(
                expected, detail::claim_executing_marker(),
                std::memory_order_acq_rel)) {
          break;
        }
        // execute never throws (captures into the job + cancel state) and
        // returns the failure status — *j must not be touched afterwards,
        // the joiner may already have reclaimed its frame.
        //
        // The busy flag brackets the payload: quiesce() (below) waits for
        // every spawned worker to show busy == false, so the release store
        // on clearing makes the payload's memory effects (note_alloc /
        // note_free traffic) visible to the quiescing thread's acquire.
        stat.busy.store(true, std::memory_order_relaxed);
        bool failed;
        {
          telemetry::trace_span span(telemetry::trace_kind::job, "job",
                                     static_cast<std::int64_t>(id));
          failed = j->execute();
        }
        stat.busy.store(false, std::memory_order_release);
        stat.claimed.store(nullptr, std::memory_order_relaxed);
        if (failed) note_subtree_failure();
        stat.jobs.fetch_add(1, std::memory_order_relaxed);
        failures = 0;
      } else {
        back_off(failures);
      }
    }
    // Publish the exit (injected death, fencing, or shutdown) so loss
    // detection can treat "loop returned" as instantly lost and repair()
    // knows the join below it will not block.
    stat.exited.store(true, std::memory_order_release);
    detail::tl_worker_id = -1;
  }

  // Injected-death check (see detail::arm_worker_kill). Returns true when
  // this worker is the armed victim and its boundary countdown just hit
  // zero — the caller then falls out of worker_loop.
  bool maybe_die(unsigned id) {
    if (detail::g_worker_kill_countdown.load(std::memory_order_relaxed) < 0)
      return false;
    unsigned n = num_workers_.load(std::memory_order_relaxed);
    if (n < 2) return false;  // nobody to kill: worker 0 is unkillable
    unsigned victim =
        1 + static_cast<unsigned>(
                detail::g_worker_kill_seed.load(std::memory_order_relaxed) %
                (n - 1));
    if (id != victim) return false;
    // Only the victim decrements, so the countdown is a per-victim
    // boundary index; the fetch_sub that reads 0 both fires and disarms.
    if (detail::g_worker_kill_countdown.fetch_sub(
            1, std::memory_order_relaxed) != 0)
      return false;
    detail::g_worker_kills_delivered.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Take over and resolve every unit of work a lost slot strands: the
  // claimed-but-unstarted job first (ownership via the claimed exchange —
  // exactly one of reclaimer and a racing worker runs it), then any
  // residue in the dead deque via ordinary cross-thread steals. Each
  // job's region is cancelled with pbds::worker_lost before the job is
  // executed, so the payload is skipped but the joiner wakes; the root
  // join rethrows worker_lost and the recovery ledger redoes the
  // cancelled blocks on retry.
  void reclaim_slot(unsigned id) {
    worker_stat& s = stats_[id];
    job* j = s.claimed.exchange(nullptr, std::memory_order_acq_rel);
    if (j != nullptr && j != detail::claim_executing_marker())
      cancel_and_finish(j, id);
    while (job* d = deques_[id].steal()) cancel_and_finish(d, id);
  }

  void cancel_and_finish(job* j, unsigned id) {
    cancel_state* cs = j->cancel();
    if (cs != nullptr && cs->must_complete()) {
      // The job works for a cancel_shield-rooted must-complete region
      // (placeholder construction / destructor sweeps): skipping its
      // chunks would corrupt object lifetimes, so run it for real on this
      // thread instead. Shielded loops are bounded by contract — one pass
      // over storage — so this cannot wedge the reclaimer; nested forks
      // fall to the sequential fast path (this thread is not enrolled).
      if (j->execute()) note_subtree_failure();
      return;
    }
    if (cs != nullptr) {
      if (!cs->cancelled()) {
        cs->capture(std::make_exception_ptr(worker_lost(
            "pbds: worker " + std::to_string(id) +
            " lost (heartbeat frozen outside any payload); its region was "
            "cancelled and its stranded work reclaimed — retry to redo "
            "the cancelled blocks")));
      }
    }
    // Executing a cancelled job skips the payload but sets its done flag,
    // waking the joiner. A region-less job (none exist today: fork2join
    // always attaches the region) would run for real on this thread —
    // correctness over placement.
    if (j->execute()) note_subtree_failure();
  }

  // Permanently withdraw a slot from service (repair cap exhausted or the
  // replacement spawn itself failed): the pool shrinks by one, mirroring
  // the constructor's spawn-failure degradation. The stale deque stays
  // allocated and empty; steal probes hit it harmlessly.
  void retire_slot(unsigned id, const char* why) {
    worker_stat& s = stats_[id];
    s.retired.store(true, std::memory_order_relaxed);
    retired_.fetch_add(1, std::memory_order_relaxed);
    unsigned n = num_workers_.load(std::memory_order_relaxed);
    if (n > 1) num_workers_.store(n - 1, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "pbds: worker %u retired without replacement (%s); "
                 "continuing with a pool of %u\n",
                 id, why, num_workers_.load(std::memory_order_relaxed));
  }

  // Own deque first (LIFO locality), then a round of random steals. The
  // victim range covers every slot a job may live in: pool workers plus
  // the high-water mark of enrolled guest slots.
  job* find_work() {
    unsigned self = static_cast<unsigned>(detail::tl_worker_id);
    if (job* j = deques_[self].pop_bottom()) return j;
    unsigned n = victim_bound_.load(std::memory_order_relaxed);
    if (n == 1) return nullptr;
    stats_[self].steal_attempts.fetch_add(1, std::memory_order_relaxed);
    for (unsigned attempt = 0; attempt < 2 * n; ++attempt) {
      unsigned victim = static_cast<unsigned>(detail::next_random() % n);
      if (victim == self) continue;
      if (job* j = deques_[victim].steal()) {
        telemetry::count(telemetry::counter::steals);
        return j;
      }
    }
    telemetry::count(telemetry::counter::failed_steals);
    return nullptr;
  }

  static void back_off(unsigned& failures) {
    ++failures;
    if (failures < 16) {
      std::this_thread::yield();
    } else {
      // Over-provisioned pools (threads > cores) must not spin hard.
      std::this_thread::sleep_for(std::chrono::microseconds(
          failures < 64 ? 20 : 200));
    }
  }

  // Shrinks (once, in the constructor) if thread spawn fails; concurrent
  // readers take relaxed loads, so it must be atomic.
  std::atomic<unsigned> num_workers_;
  unsigned requested_;  // worker count before any spawn-failure shrink
  // One past the highest slot that may hold work: requested_ workers plus
  // the high-water mark of guest slots ever enrolled.
  std::atomic<unsigned> victim_bound_;
  std::vector<chase_lev_deque> deques_;
  std::vector<worker_stat> stats_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> subtree_failures_{0};
  std::mutex guest_mutex_;
  std::vector<unsigned> free_guest_slots_;
  // Worker-loss accounting. repair_mutex_ serializes repair() against the
  // destructor (both join/replace entries of threads_).
  std::uint64_t repair_max_;
  std::atomic<std::uint64_t> workers_lost_{0};
  std::atomic<std::uint64_t> repairs_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::mutex repair_mutex_;
};

// RAII guest enrollment on the process-wide pool (see enroll_guest). Safe
// to construct on a thread that is already a worker or when guest slots
// are exhausted — `enrolled()` reports which, and fork2join from an
// unenrolled thread still works via its sequential fast path.
class guest_worker {
 public:
  explicit guest_worker(scheduler& s) : sched_(&s), slot_(s.enroll_guest()) {}
  ~guest_worker() {
    if (slot_ >= 0) sched_->leave_guest(slot_);
  }
  guest_worker(const guest_worker&) = delete;
  guest_worker& operator=(const guest_worker&) = delete;

  [[nodiscard]] bool enrolled() const noexcept { return slot_ >= 0; }

 private:
  scheduler* sched_;
  int slot_;
};

namespace detail {
// Guards the global scheduler slot against the one legitimate cross-thread
// reader: the watchdog thread sampling progress while worker 0 swaps the
// pool (set_num_workers) or first-creates it (get_scheduler).
inline std::mutex& scheduler_slot_mutex() {
  static std::mutex m;
  return m;
}

inline std::unique_ptr<scheduler>& global_slot() {
  static std::unique_ptr<scheduler> slot;
  return slot;
}

// Worker-count policy shared by every execution backend: the deterministic
// simulator (deterministic.hpp) seeds its *simulated* worker count from
// this same function, so granularity decisions — and therefore a
// pipeline's range partitioning — match the real pool for a given
// PBDS_NUM_THREADS.
//
// PBDS_NUM_THREADS is parsed strictly (full-string match, range
// [1, kMaxWorkers] — pbds::detail::env_integer); a malformed value falls
// back to the hardware count and warns once on stderr instead of silently
// misconfiguring the pool.
inline constexpr long kMaxWorkers = 4096;

inline unsigned default_num_workers() {
  unsigned hw = std::thread::hardware_concurrency();
  unsigned fallback = hw == 0 ? 1 : hw;
  return static_cast<unsigned>(pbds::detail::env_integer(
      "PBDS_NUM_THREADS", 1, kMaxWorkers, fallback));
}
}  // namespace detail

// --- watchdog ---------------------------------------------------------------
//
// An optional monitor thread that samples global progress (sum of completed
// jobs) every `period_ms` and watches the active-region registry
// (cancellation.hpp). While at least one tracked region is live and the job
// total stops moving:
//
//   * after `warn_intervals` stagnant samples it dumps per-worker
//     heartbeats plus memory/budget counters to stderr (diagnosis first —
//     a stall may be expected, e.g. a long sequential tail);
//   * after `cancel_intervals` stagnant samples it cancels every tracked
//     region by capturing `pbds::stall_detected` into its cancel_state.
//     The region then collapses through the ordinary cancellation
//     protocol and the root join rethrows stall_detected.
//
// Independently of stagnation, each sample cancels any registered region
// whose deadline (fork2join / parallel_for deadline overloads) has passed.
//
// Enabled explicitly via start_watchdog(), or at pool creation when
// PBDS_WATCHDOG_MS is set. ensure_watchdog_for_deadlines() starts a
// deadline-only instance (no stagnation tracking) so deadline overloads
// work without the full watchdog.
struct watchdog_config {
  long period_ms = 100;      // sampling interval; <= 0 disables entirely
  int warn_intervals = 2;    // stagnant samples before diagnostics; <= 0 off
  int cancel_intervals = 6;  // stagnant samples before cancelling; <= 0 off
  long worker_lost_ms = 0;   // non-busy heartbeat age ⇒ worker lost; <= 0 off
};

namespace detail {
class watchdog {
 public:
  watchdog(watchdog_config cfg, bool track_stagnation)
      : cfg_(cfg), tracking_(track_stagnation) {
    if (tracking_) g_region_tracking.store(true, std::memory_order_relaxed);
    thread_ = std::thread([this] { loop(); });
  }

  ~watchdog() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
    if (tracking_) g_region_tracking.store(false, std::memory_order_relaxed);
  }

  watchdog(const watchdog&) = delete;
  watchdog& operator=(const watchdog&) = delete;

  [[nodiscard]] bool deadline_only() const noexcept { return !tracking_; }

 private:
  void loop() {
    const auto period = std::chrono::milliseconds(cfg_.period_ms);
    std::uint64_t last_jobs = 0;
    bool have_sample = false;
    int stagnant = 0;
    bool warned = false;
    while (!stop_.load(std::memory_order_acquire)) {
      // Sleep in short chunks so stop_watchdog() returns promptly even
      // with a long period.
      auto slept = std::chrono::milliseconds(0);
      while (slept < period && !stop_.load(std::memory_order_acquire)) {
        auto chunk = period - slept;
        if (chunk > std::chrono::milliseconds(5))
          chunk = std::chrono::milliseconds(5);
        std::this_thread::sleep_for(chunk);
        slept += chunk;
      }
      if (stop_.load(std::memory_order_acquire)) break;

      expire_deadlines();

      // Worker-loss pass (runs even for deadline-only instances): declare
      // and reclaim lost workers, then repair the pool. Reclamation is
      // what un-hangs joins stranded on a dead worker's claimed job, so
      // it cannot wait for a quiet moment; repair respawns replacements
      // immediately too — a thread entering mid-region is just one more
      // thief, which is always legal.
      if (cfg_.worker_lost_ms > 0) {
        std::lock_guard<std::mutex> lock(scheduler_slot_mutex());
        if (auto& slot = global_slot()) {
          slot->detect_and_reclaim_lost(cfg_.worker_lost_ms);
          if (slot->lost_pending_repair() > 0) slot->repair();
        }
      }

      if (!tracking_) continue;

      // Stagnation pass. Sample under the slot mutex: set_num_workers may
      // be swapping the pool out from under us.
      std::uint64_t jobs = 0;
      bool have_pool = false;
      {
        std::lock_guard<std::mutex> lock(scheduler_slot_mutex());
        if (auto& slot = global_slot()) {
          jobs = slot->total_jobs_executed();
          have_pool = true;
        }
      }
      std::size_t regions = active_tracked_regions();
      if (!have_pool || regions == 0) {
        have_sample = false;
        stagnant = 0;
        warned = false;
        continue;
      }
      if (have_sample && jobs == last_jobs) {
        ++stagnant;
      } else {
        stagnant = 0;
        warned = false;
      }
      last_jobs = jobs;
      have_sample = true;

      if (cfg_.warn_intervals > 0 && stagnant >= cfg_.warn_intervals &&
          !warned) {
        warned = true;
        dump_diagnostics(jobs, regions);
      }
      if (cfg_.cancel_intervals > 0 && stagnant >= cfg_.cancel_intervals) {
        cancel_all_tracked_regions(
            "pbds watchdog: no global progress across the pool; "
            "cancelling the stuck fork-join region");
        stagnant = 0;
        warned = false;
        have_sample = false;
      }
    }
  }

  void expire_deadlines() {
    auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(region_registry_mutex());
    for (auto& e : region_registry()) {
      if (e.deadline != std::chrono::steady_clock::time_point::max() &&
          now >= e.deadline && !e.state->cancelled()) {
        e.state->capture(std::make_exception_ptr(stall_detected(
            "pbds watchdog: fork-join region exceeded its deadline")));
        telemetry::count(telemetry::counter::stalls);
        telemetry::trace_instant(telemetry::trace_kind::sched, "deadline");
      }
    }
  }

  static void cancel_all_tracked_regions(const char* why) {
    std::lock_guard<std::mutex> lock(region_registry_mutex());
    for (auto& e : region_registry()) {
      if (!e.state->cancelled()) {
        e.state->capture(std::make_exception_ptr(stall_detected(why)));
        telemetry::count(telemetry::counter::stalls);
        telemetry::trace_instant(telemetry::trace_kind::sched, "stall");
      }
    }
  }

  void dump_diagnostics(std::uint64_t jobs, std::size_t regions) const {
    std::fprintf(stderr,
                 "pbds watchdog: no global progress for %d interval(s) of "
                 "%ld ms (total jobs=%llu, tracked regions=%zu)\n",
                 cfg_.warn_intervals, cfg_.period_ms,
                 static_cast<unsigned long long>(jobs), regions);
    std::lock_guard<std::mutex> lock(scheduler_slot_mutex());
    if (auto& slot = global_slot()) {
      slot->dump_worker_stats(stderr);
      std::fprintf(
          stderr,
          "pbds:   subtree_failures=%llu bytes_live=%lld "
          "budget_refusals=%llu\n",
          static_cast<unsigned long long>(slot->subtree_failures()),
          static_cast<long long>(memory::bytes_live()),
          static_cast<unsigned long long>(memory::budget_refusals()));
    }
  }

  watchdog_config cfg_;
  bool tracking_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

inline std::unique_ptr<watchdog>& watchdog_slot() {
  static std::unique_ptr<watchdog> slot;
  return slot;
}

// Static-destruction-order pin: everything the watchdog thread touches
// (scheduler slot + mutex, region registry + mutex) must be constructed
// *before* the watchdog owner's function-local static, so that at process
// exit the watchdog is destroyed (thread joined) first.
inline void pin_watchdog_dependencies() {
  (void)scheduler_slot_mutex();
  (void)global_slot();
  (void)region_registry_mutex();
  (void)region_registry();
}

// PBDS_WATCHDOG_MS: strict parse (pbds::detail::env_integer, range
// [1, 3600000]); malformed values warn once and leave the watchdog off
// rather than guessing a period.
inline void maybe_start_watchdog_from_env();
}  // namespace detail

// Start (or restart, with the new config) the watchdog. Call from the main
// thread with no parallel work in flight — the restart destroys the
// previous monitor. A non-positive period stops the watchdog instead.
inline void start_watchdog(watchdog_config cfg = {}) {
  detail::pin_watchdog_dependencies();
  auto& slot = detail::watchdog_slot();
  slot.reset();
  if (cfg.period_ms <= 0) return;
  slot = std::make_unique<detail::watchdog>(cfg, /*track_stagnation=*/true);
}

inline void stop_watchdog() { detail::watchdog_slot().reset(); }

[[nodiscard]] inline bool watchdog_running() {
  return detail::watchdog_slot() != nullptr;
}

// Deadline overloads (parallel.hpp) need *someone* to observe the clock:
// without a monitor thread a deadline would only be noticed if a full
// watchdog happened to be running. Start a deadline-only instance (fast
// 20ms sampling, no stagnation tracking, no region tracking flag) unless a
// watchdog already exists.
inline void ensure_watchdog_for_deadlines() {
  auto& slot = detail::watchdog_slot();
  if (slot) return;
  detail::pin_watchdog_dependencies();
  watchdog_config cfg;
  cfg.period_ms = 20;
  cfg.warn_intervals = 0;
  cfg.cancel_intervals = 0;
  slot = std::make_unique<detail::watchdog>(cfg, /*track_stagnation=*/false);
}

namespace detail {
// PBDS_WORKER_LOST_MS: strict parse, range [1, 3600000]; 0/unset leaves
// loss detection off. With a full watchdog (PBDS_WATCHDOG_MS) the loss
// pass rides its sampling loop; without one, a detection-only monitor is
// started whose period samples at least twice per loss threshold.
inline void maybe_start_watchdog_from_env() {
  long v = static_cast<long>(
      pbds::detail::env_integer("PBDS_WATCHDOG_MS", 1, 3600000, 0));
  long lost = static_cast<long>(
      pbds::detail::env_integer("PBDS_WORKER_LOST_MS", 1, 3600000, 0));
  if (v >= 1) {
    watchdog_config cfg{v, 2, 6};
    cfg.worker_lost_ms = lost;
    start_watchdog(cfg);
  } else if (lost >= 1) {
    pin_watchdog_dependencies();
    watchdog_config cfg;
    cfg.period_ms = lost >= 40 ? 20 : (lost >= 2 ? lost / 2 : 1);
    cfg.warn_intervals = 0;
    cfg.cancel_intervals = 0;
    cfg.worker_lost_ms = lost;
    auto& slot = watchdog_slot();
    slot.reset();
    slot = std::make_unique<watchdog>(cfg, /*track_stagnation=*/false);
  }
}
}  // namespace detail

// The process-wide scheduler, created lazily on first use from the calling
// thread (which becomes worker 0). Creation also consults PBDS_WATCHDOG_MS
// to optionally start the watchdog alongside the pool.
inline scheduler& get_scheduler() {
  auto& slot = detail::global_slot();
  if (!slot) {
    std::lock_guard<std::mutex> lock(detail::scheduler_slot_mutex());
    if (!slot) {
      pbds::detail::warn_unknown_pbds_env();
      slot = std::make_unique<scheduler>(detail::default_num_workers());
      detail::maybe_start_watchdog_from_env();
    }
  }
  return *slot;
}

inline unsigned num_workers() { return get_scheduler().num_workers(); }

// Tear down and recreate the pool with `p` workers. Must be called from the
// original worker-0 thread with no parallel work in flight (used by the
// scalability bench to sweep processor counts). The slot mutex keeps the
// swap invisible to a concurrently sampling watchdog.
inline void set_num_workers(unsigned p) {
  std::lock_guard<std::mutex> lock(detail::scheduler_slot_mutex());
  auto& slot = detail::global_slot();
  slot.reset();
  slot = std::make_unique<scheduler>(p == 0 ? 1 : p);
}

// Barrier: wait until no spawned worker is inside a job payload. Call only
// between top-level parallel regions (all joins completed) — then the only
// residual activity is a worker finishing the epilogue of its last stolen
// job, which this spin covers. Used to make peak-accounting resets
// (memory::reset_peak) race-free: a worker's trailing note_free could
// otherwise land between the reset and the next measurement.
inline void quiesce() {
  auto& slot = detail::global_slot();
  if (!slot) return;
  while (!slot->quiescent()) std::this_thread::yield();
}

// Bounded quiesce: same barrier, but gives up after `timeout` and throws
// pbds::stall_detected (with a progress snapshot attached) instead of
// spinning forever — the unbounded form can hang on a worker whose payload
// is wedged (busy frozen), which is exactly when the caller most needs
// control back to diagnose or shed.
inline void quiesce(std::chrono::milliseconds timeout) {
  auto& slot = detail::global_slot();
  if (!slot) return;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!slot->quiescent()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      recovery::progress p{};
      p.executions = slot->total_jobs_executed();
      stall_detected e(
          "pbds: quiesce() exceeded its deadline — a spawned worker is "
          "still inside a payload (wedged or very long leaf)");
      e.attach_progress(p);
      throw e;
    }
    std::this_thread::yield();
  }
}

// After fork(2): worker threads and the watchdog thread exist only in the
// parent. Joining them in the child would hang and letting the handles'
// destructors run would std::terminate, so leak both objects and reset the
// thread-local state; the child lazily builds a fresh pool on first use
// (or simply _exits without one).
inline void reinit_in_child() {
  (void)detail::watchdog_slot().release();  // NOLINT(bugprone-unused-return-value)
  (void)detail::global_slot().release();    // NOLINT(bugprone-unused-return-value)
  detail::tl_worker_id = -1;
  detail::g_region_tracking.store(false, std::memory_order_relaxed);
  detail::g_worker_kill_countdown.store(-1, std::memory_order_relaxed);
}

}  // namespace pbds::sched
