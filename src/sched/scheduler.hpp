// Work-stealing fork-join scheduler.
//
// A fixed pool of workers, each with a Chase-Lev deque. The thread that
// first touches the scheduler (normally the program's main thread) is
// enrolled as worker 0 and participates in the computation; `num_workers-1`
// additional threads are spawned. Forked jobs are pushed onto the forking
// worker's deque; idle workers steal from the top of random victims.
//
// This is the substrate for the paper's single parallel primitive `apply`
// (Fig. 7), exposed here as fork2join / parallel_for (see parallel.hpp).
//
// Workers back off exponentially (yield, then short sleeps) when no work is
// found, so an over-provisioned pool does not burn a core per idle worker.
//
// Failure behavior (DESIGN.md §"Failure semantics"): jobs capture their own
// exceptions (job.hpp), so nothing ever unwinds through worker_loop; a
// pool-wide failed-subtree counter keeps joins on failing regions from
// falling into the long sleep backoff; and a thread-spawn failure in the
// constructor shrinks the pool to the workers that actually started
// instead of crashing.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <memory>
#include <mutex>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "sched/chase_lev_deque.hpp"
#include "sched/job.hpp"

namespace pbds::sched {

namespace detail {
// Per-thread worker id; -1 for threads not enrolled in the pool.
inline thread_local int tl_worker_id = -1;

// Cheap per-thread xorshift for victim selection.
inline std::uint64_t& tl_rng_state() {
  static thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ull ^
      (static_cast<std::uint64_t>(tl_worker_id + 2) * 0xbf58476d1ce4e5b9ull);
  return state;
}

inline std::uint64_t next_random() {
  std::uint64_t& x = tl_rng_state();
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

// Test hook mirroring the allocation fault injector (memory/tracking.hpp):
// when armed with k, the k-th spawn attempt from now throws std::system_error
// exactly as an exhausted OS would, exercising the constructor's
// shrink-to-fit degradation path. Disarmed when negative.
inline std::atomic<int> g_spawn_fault_countdown{-1};

inline void arm_spawn_fault(int nth) noexcept {
  g_spawn_fault_countdown.store(nth, std::memory_order_relaxed);
}

inline void disarm_spawn_fault() noexcept {
  g_spawn_fault_countdown.store(-1, std::memory_order_relaxed);
}

inline void maybe_inject_spawn_fault() {
  int c = g_spawn_fault_countdown.load(std::memory_order_relaxed);
  if (c < 0) return;
  if (g_spawn_fault_countdown.fetch_sub(1, std::memory_order_relaxed) == 0) {
    throw std::system_error(
        std::make_error_code(std::errc::resource_unavailable_try_again),
        "injected thread-spawn failure");
  }
}
}  // namespace detail

class scheduler {
 public:
  explicit scheduler(unsigned num_workers)
      : num_workers_(num_workers == 0 ? 1 : num_workers),
        deques_(num_workers_.load(std::memory_order_relaxed)) {
    // Enroll the constructing thread as worker 0.
    detail::tl_worker_id = 0;
    unsigned requested = num_workers_.load(std::memory_order_relaxed);
    threads_.reserve(requested - 1);
    for (unsigned id = 1; id < requested; ++id) {
      try {
        detail::maybe_inject_spawn_fault();
        threads_.emplace_back([this, id] { worker_loop(id); });
      } catch (const std::system_error& e) {
        // Graceful degradation: workers 0..id-1 are already running, so
        // shrink the pool to them rather than crashing. The deque vector
        // keeps its original size — unreachable deques stay empty and
        // stale num_workers_ reads in concurrent steal loops only probe
        // them harmlessly.
        num_workers_.store(id, std::memory_order_relaxed);
        std::fprintf(stderr,
                     "pbds: thread spawn failed after %u of %u workers "
                     "(%s); continuing with a pool of %u\n",
                     id, requested, e.what(), id);
        break;
      }
    }
  }

  ~scheduler() {
    shutdown_.store(true, std::memory_order_release);
    for (auto& t : threads_) t.join();
    detail::tl_worker_id = -1;
  }

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  [[nodiscard]] unsigned num_workers() const noexcept {
    return num_workers_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] static int worker_id() noexcept {
    return detail::tl_worker_id;
  }

  // Push a job onto the calling worker's deque. Caller must be enrolled.
  void push(job* j) {
    assert(detail::tl_worker_id >= 0);
    deques_[static_cast<unsigned>(detail::tl_worker_id)].push_bottom(j);
  }

  // Pop from the calling worker's own deque (LIFO).
  job* try_pop() {
    assert(detail::tl_worker_id >= 0);
    return deques_[static_cast<unsigned>(detail::tl_worker_id)].pop_bottom();
  }

  // Record that some branch of a fork tree failed (threw). Monotone
  // observation counter: waiters snapshot it on entry and switch to a
  // prompt yield-only drain once it moves, so a join on a cancelling
  // subtree never parks in the long sleep backoff.
  void note_subtree_failure() noexcept {
    subtree_failures_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t subtree_failures() const noexcept {
    return subtree_failures_.load(std::memory_order_relaxed);
  }

  // Block (cooperatively) until `j` completes, stealing work meanwhile.
  //
  // Jobs always finish — job::execute marks completion even when the
  // payload throws or is skipped by cancellation — so finished() is a
  // sound exit. The failed-subtree check only changes *how* we wait once
  // a failure is recorded: drain eagerly instead of sleeping.
  void wait_until(const job* j) {
    unsigned failures = 0;
    const std::uint64_t failures_at_entry =
        subtree_failures_.load(std::memory_order_relaxed);
    while (!j->finished()) {
      // A shutdown while a join is still pending means an exception (or a
      // teardown) unwound past a stealable job — the use-after-scope this
      // layer exists to prevent. Fail loudly in debug builds.
      assert(!shutdown_.load(std::memory_order_acquire) &&
             "scheduler shut down while a join was still pending");
      job* stolen = find_work();
      if (stolen != nullptr) {
        // Failure status must come from the return value: once execute
        // marks the job done, its owner may pop the frame it lives in.
        if (stolen->execute()) note_subtree_failure();
        failures = 0;
      } else if (subtree_failures_.load(std::memory_order_relaxed) !=
                 failures_at_entry) {
        // A subtree failed since we started waiting: the job we're
        // joining is likely completing via cancellation bail-out. Spin
        // politely; do not fall into the 200µs sleeps.
        std::this_thread::yield();
      } else {
        back_off(failures);
      }
    }
  }

 private:
  void worker_loop(unsigned id) {
    detail::tl_worker_id = static_cast<int>(id);
    unsigned failures = 0;
    while (!shutdown_.load(std::memory_order_acquire)) {
      job* j = find_work();
      if (j != nullptr) {
        // execute never throws (captures into the job + cancel state) and
        // returns the failure status — *j must not be touched afterwards,
        // the joiner may already have reclaimed its frame.
        if (j->execute()) note_subtree_failure();
        failures = 0;
      } else {
        back_off(failures);
      }
    }
    detail::tl_worker_id = -1;
  }

  // Own deque first (LIFO locality), then a round of random steals.
  job* find_work() {
    unsigned self = static_cast<unsigned>(detail::tl_worker_id);
    if (job* j = deques_[self].pop_bottom()) return j;
    unsigned n = num_workers_.load(std::memory_order_relaxed);
    if (n == 1) return nullptr;
    for (unsigned attempt = 0; attempt < 2 * n; ++attempt) {
      unsigned victim = static_cast<unsigned>(detail::next_random() % n);
      if (victim == self) continue;
      if (job* j = deques_[victim].steal()) return j;
    }
    return nullptr;
  }

  static void back_off(unsigned& failures) {
    ++failures;
    if (failures < 16) {
      std::this_thread::yield();
    } else {
      // Over-provisioned pools (threads > cores) must not spin hard.
      std::this_thread::sleep_for(std::chrono::microseconds(
          failures < 64 ? 20 : 200));
    }
  }

  // Shrinks (once, in the constructor) if thread spawn fails; concurrent
  // readers take relaxed loads, so it must be atomic.
  std::atomic<unsigned> num_workers_;
  std::vector<chase_lev_deque> deques_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> subtree_failures_{0};
};

namespace detail {
inline std::unique_ptr<scheduler>& global_slot() {
  static std::unique_ptr<scheduler> slot;
  return slot;
}

// Worker-count policy shared by every execution backend: the deterministic
// simulator (deterministic.hpp) seeds its *simulated* worker count from
// this same function, so granularity decisions — and therefore a
// pipeline's range partitioning — match the real pool for a given
// PBDS_NUM_THREADS.
//
// PBDS_NUM_THREADS is parsed strictly (strtol, full-string match, range
// [1, kMaxWorkers]); a malformed value falls back to the hardware count
// and warns once on stderr instead of silently misconfiguring the pool.
inline constexpr long kMaxWorkers = 4096;

inline unsigned default_num_workers() {
  unsigned hw = std::thread::hardware_concurrency();
  unsigned fallback = hw == 0 ? 1 : hw;
  if (const char* env = std::getenv("PBDS_NUM_THREADS")) {
    char* end = nullptr;
    errno = 0;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && errno != ERANGE && v >= 1 &&
        v <= kMaxWorkers) {
      return static_cast<unsigned>(v);
    }
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "pbds: ignoring malformed PBDS_NUM_THREADS='%s' "
                   "(expected an integer in [1, %ld]); using %u workers\n",
                   env, kMaxWorkers, fallback);
    }
  }
  return fallback;
}
}  // namespace detail

// The process-wide scheduler, created lazily on first use from the calling
// thread (which becomes worker 0).
inline scheduler& get_scheduler() {
  auto& slot = detail::global_slot();
  if (!slot) slot = std::make_unique<scheduler>(detail::default_num_workers());
  return *slot;
}

inline unsigned num_workers() { return get_scheduler().num_workers(); }

// Tear down and recreate the pool with `p` workers. Must be called from the
// original worker-0 thread with no parallel work in flight (used by the
// scalability bench to sweep processor counts).
inline void set_num_workers(unsigned p) {
  auto& slot = detail::global_slot();
  slot.reset();
  slot = std::make_unique<scheduler>(p == 0 ? 1 : p);
}

}  // namespace pbds::sched
