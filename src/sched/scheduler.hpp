// Work-stealing fork-join scheduler.
//
// A fixed pool of workers, each with a Chase-Lev deque. The thread that
// first touches the scheduler (normally the program's main thread) is
// enrolled as worker 0 and participates in the computation; `num_workers-1`
// additional threads are spawned. Forked jobs are pushed onto the forking
// worker's deque; idle workers steal from the top of random victims.
//
// This is the substrate for the paper's single parallel primitive `apply`
// (Fig. 7), exposed here as fork2join / parallel_for (see parallel.hpp).
//
// Workers back off exponentially (yield, then short sleeps) when no work is
// found, so an over-provisioned pool does not burn a core per idle worker.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sched/chase_lev_deque.hpp"
#include "sched/job.hpp"

namespace pbds::sched {

namespace detail {
// Per-thread worker id; -1 for threads not enrolled in the pool.
inline thread_local int tl_worker_id = -1;

// Cheap per-thread xorshift for victim selection.
inline std::uint64_t& tl_rng_state() {
  static thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ull ^
      (static_cast<std::uint64_t>(tl_worker_id + 2) * 0xbf58476d1ce4e5b9ull);
  return state;
}

inline std::uint64_t next_random() {
  std::uint64_t& x = tl_rng_state();
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}
}  // namespace detail

class scheduler {
 public:
  explicit scheduler(unsigned num_workers)
      : num_workers_(num_workers == 0 ? 1 : num_workers),
        deques_(num_workers_) {
    // Enroll the constructing thread as worker 0.
    detail::tl_worker_id = 0;
    threads_.reserve(num_workers_ - 1);
    for (unsigned id = 1; id < num_workers_; ++id) {
      threads_.emplace_back([this, id] { worker_loop(id); });
    }
  }

  ~scheduler() {
    shutdown_.store(true, std::memory_order_release);
    for (auto& t : threads_) t.join();
    detail::tl_worker_id = -1;
  }

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  [[nodiscard]] unsigned num_workers() const noexcept { return num_workers_; }

  [[nodiscard]] static int worker_id() noexcept {
    return detail::tl_worker_id;
  }

  // Push a job onto the calling worker's deque. Caller must be enrolled.
  void push(job* j) {
    assert(detail::tl_worker_id >= 0);
    deques_[static_cast<unsigned>(detail::tl_worker_id)].push_bottom(j);
  }

  // Pop from the calling worker's own deque (LIFO).
  job* try_pop() {
    assert(detail::tl_worker_id >= 0);
    return deques_[static_cast<unsigned>(detail::tl_worker_id)].pop_bottom();
  }

  // Block (cooperatively) until `j` completes, stealing work meanwhile.
  void wait_until(const job* j) {
    unsigned failures = 0;
    while (!j->finished()) {
      job* stolen = find_work();
      if (stolen != nullptr) {
        stolen->execute();
        failures = 0;
      } else {
        back_off(failures);
      }
    }
  }

 private:
  void worker_loop(unsigned id) {
    detail::tl_worker_id = static_cast<int>(id);
    unsigned failures = 0;
    while (!shutdown_.load(std::memory_order_acquire)) {
      job* j = find_work();
      if (j != nullptr) {
        j->execute();
        failures = 0;
      } else {
        back_off(failures);
      }
    }
    detail::tl_worker_id = -1;
  }

  // Own deque first (LIFO locality), then a round of random steals.
  job* find_work() {
    unsigned self = static_cast<unsigned>(detail::tl_worker_id);
    if (job* j = deques_[self].pop_bottom()) return j;
    if (num_workers_ == 1) return nullptr;
    for (unsigned attempt = 0; attempt < 2 * num_workers_; ++attempt) {
      unsigned victim =
          static_cast<unsigned>(detail::next_random() % num_workers_);
      if (victim == self) continue;
      if (job* j = deques_[victim].steal()) return j;
    }
    return nullptr;
  }

  static void back_off(unsigned& failures) {
    ++failures;
    if (failures < 16) {
      std::this_thread::yield();
    } else {
      // Over-provisioned pools (threads > cores) must not spin hard.
      std::this_thread::sleep_for(std::chrono::microseconds(
          failures < 64 ? 20 : 200));
    }
  }

  unsigned num_workers_;
  std::vector<chase_lev_deque> deques_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
};

namespace detail {
inline std::unique_ptr<scheduler>& global_slot() {
  static std::unique_ptr<scheduler> slot;
  return slot;
}

// Worker-count policy shared by every execution backend: the deterministic
// simulator (deterministic.hpp) seeds its *simulated* worker count from
// this same function, so granularity decisions — and therefore a
// pipeline's range partitioning — match the real pool for a given
// PBDS_NUM_THREADS.
inline unsigned default_num_workers() {
  if (const char* env = std::getenv("PBDS_NUM_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) return static_cast<unsigned>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}
}  // namespace detail

// The process-wide scheduler, created lazily on first use from the calling
// thread (which becomes worker 0).
inline scheduler& get_scheduler() {
  auto& slot = detail::global_slot();
  if (!slot) slot = std::make_unique<scheduler>(detail::default_num_workers());
  return *slot;
}

inline unsigned num_workers() { return get_scheduler().num_workers(); }

// Tear down and recreate the pool with `p` workers. Must be called from the
// original worker-0 thread with no parallel work in flight (used by the
// scalability bench to sweep processor counts).
inline void set_num_workers(unsigned p) {
  auto& slot = detail::global_slot();
  slot.reset();
  slot = std::make_unique<scheduler>(p == 0 ? 1 : p);
}

}  // namespace pbds::sched
