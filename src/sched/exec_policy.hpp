// Execution-policy seam for the fork-join primitives.
//
// fork2join / parallel_for / apply (parallel.hpp) dispatch on a per-thread
// execution mode rather than talking to the work-stealing scheduler
// directly. Three modes:
//
//   parallel      — the real Chase-Lev work-stealing pool (default).
//   sequential    — plain depth-first execution on the calling thread;
//                   no scheduler interaction at all.
//   deterministic — single-thread simulation of fork-join under a seeded
//                   PRNG that makes the steal-vs-inline and branch-ordering
//                   decisions (see deterministic.hpp). Same seed => same
//                   interleaving, so any schedule-dependent failure is
//                   replayable from one integer.
//
// The mode is thread-local: a test switching the main thread into
// deterministic mode does not perturb pool workers (which keep the default
// parallel mode and simply find no work).
#pragma once

namespace pbds::sched {

enum class exec_mode : unsigned char { parallel, sequential, deterministic };

namespace detail {
inline thread_local exec_mode tl_exec_mode = exec_mode::parallel;
}  // namespace detail

[[nodiscard]] inline exec_mode current_exec_mode() noexcept {
  return detail::tl_exec_mode;
}

// RAII: run the enclosed region with plain depth-first sequential
// execution (left branch, then right branch; loops in index order).
class scoped_sequential {
 public:
  scoped_sequential() : saved_(detail::tl_exec_mode) {
    detail::tl_exec_mode = exec_mode::sequential;
  }
  ~scoped_sequential() { detail::tl_exec_mode = saved_; }
  scoped_sequential(const scoped_sequential&) = delete;
  scoped_sequential& operator=(const scoped_sequential&) = delete;

 private:
  exec_mode saved_;
};

}  // namespace pbds::sched
