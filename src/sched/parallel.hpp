// Fork-join parallel primitives built on the work-stealing scheduler.
//
//   fork2join(l, r)           — run two thunks in parallel, join both.
//   parallel_for(lo, hi, f)   — divide-and-conquer loop with granularity
//                               control.
//   apply(n, f)               — the paper's sole parallel primitive
//                               (Fig. 7): a tabulate with no result, i.e.
//                               f(i) for all 0 <= i < n in parallel. All of
//                               the sequence libraries bottom out here.
//
// All three dispatch on the thread's execution mode (exec_policy.hpp):
// `parallel` uses the work-stealing pool, `sequential` runs depth-first on
// the calling thread, and `deterministic` replays a seeded single-thread
// simulation of the scheduler (deterministic.hpp). The mode only changes
// *how* the fork tree is executed — the tree itself (granularity, range
// splits) is identical across modes for a given worker count, which is
// what makes the differential test oracles (tests/differential.hpp)
// meaningful.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>

#include "sched/deterministic.hpp"
#include "sched/exec_policy.hpp"
#include "sched/scheduler.hpp"

namespace pbds {

namespace sched {
// Worker count that granularity decisions should assume: the simulated
// count in deterministic mode, the real pool size otherwise. Keeping these
// in sync (both default to PBDS_NUM_THREADS) makes a pipeline's range
// partitioning identical across execution modes.
[[nodiscard]] inline unsigned effective_num_workers() {
  if (current_exec_mode() == exec_mode::deterministic)
    return current_det_scheduler().num_workers();
  return num_workers();
}
}  // namespace sched

// Run `left` and `right` in parallel; return when both are complete.
// The right branch is made stealable; the forking worker runs the left
// branch, then either runs the right branch inline (if no one stole it) or
// steals other work while waiting for the thief to finish it.
template <typename L, typename R>
void fork2join(L&& left, R&& right) {
  switch (sched::current_exec_mode()) {
    case sched::exec_mode::sequential:
      left();
      right();
      return;
    case sched::exec_mode::deterministic:
      sched::current_det_scheduler().fork(std::forward<L>(left),
                                          std::forward<R>(right));
      return;
    case sched::exec_mode::parallel:
      break;
  }
  auto& s = sched::get_scheduler();
  if (s.num_workers() == 1 || sched::scheduler::worker_id() < 0) {
    // Sequential fast path; also the safe path for threads outside the pool.
    left();
    right();
    return;
  }
  sched::callable_job<R> right_job(right);
  s.push(&right_job);
  left();
  sched::job* popped = s.try_pop();
  if (popped != nullptr) {
    // Fork-join discipline guarantees the bottom of our deque is exactly
    // the job we pushed (everything pushed by `left` was joined inside it).
    assert(popped == &right_job);
    popped->execute();
  } else {
    s.wait_until(&right_job);
  }
}

namespace detail {

inline constexpr std::size_t kDefaultGranularity = 512;

template <typename F>
void parallel_for_rec(std::size_t lo, std::size_t hi, const F& f,
                      std::size_t granularity) {
  if (hi - lo > granularity) {
    std::size_t mid = lo + (hi - lo) / 2;
    fork2join([&] { parallel_for_rec(lo, mid, f, granularity); },
              [&] { parallel_for_rec(mid, hi, f, granularity); });
    return;
  }
  for (std::size_t i = lo; i < hi; ++i) f(i);
}

}  // namespace detail

// Parallel loop over [lo, hi). `granularity` is the largest range executed
// sequentially; 0 selects a default that balances scheduling overhead
// against load balance. `f` must be safe to invoke concurrently for
// distinct indices.
template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, const F& f,
                  std::size_t granularity = 0) {
  if (lo >= hi) return;
  if (sched::current_exec_mode() == sched::exec_mode::sequential) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  std::size_t n = hi - lo;
  if (granularity == 0) {
    // Aim for ~8 chunks per worker, but never chunks so small that
    // scheduling dominates memory-bound per-element work.
    std::size_t target = n / (8 * static_cast<std::size_t>(
                                      sched::effective_num_workers()) +
                              1);
    granularity = target < 1 ? 1 : target;
    if (granularity > detail::kDefaultGranularity)
      granularity = detail::kDefaultGranularity;
  }
  if (n <= granularity) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  detail::parallel_for_rec(lo, hi, f, granularity);
}

// The paper's `apply` (Fig. 7): run f(i) for all 0 <= i < n in parallel,
// one invocation per index, granularity 1 (each index is assumed to be a
// block-sized unit of work, as in the blocked implementations of
// reduce/scan/filter/flatten).
template <typename F>
void apply(std::size_t n, const F& f) {
  parallel_for(0, n, f, 1);
}

}  // namespace pbds
