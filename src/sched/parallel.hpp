// Fork-join parallel primitives built on the work-stealing scheduler.
//
//   fork2join(l, r)           — run two thunks in parallel, join both.
//   parallel_for(lo, hi, f)   — divide-and-conquer loop with granularity
//                               control.
//   apply(n, f)               — the paper's sole parallel primitive
//                               (Fig. 7): a tabulate with no result, i.e.
//                               f(i) for all 0 <= i < n in parallel. All of
//                               the sequence libraries bottom out here.
//
// All three dispatch on the thread's execution mode (exec_policy.hpp):
// `parallel` uses the work-stealing pool, `sequential` runs depth-first on
// the calling thread, and `deterministic` replays a seeded single-thread
// simulation of the scheduler (deterministic.hpp). The mode only changes
// *how* the fork tree is executed — the tree itself (granularity, range
// splits) is identical across modes for a given worker count, which is
// what makes the differential test oracles (tests/differential.hpp)
// meaningful.
//
// Exception safety (DESIGN.md §"Failure semantics"): a throw from any
// branch, on any worker, is captured into the region's cancel_state
// (cancellation.hpp); sibling work bails out at fork and granularity-chunk
// boundaries; every join still completes; and the *first* captured
// exception is rethrown exactly once at the root fork on the calling
// thread, with the pool quiescent and reusable. An exception never unwinds
// a frame whose pushed job might still be stolen.
#pragma once

#include <cassert>
#include <chrono>
#include <cstddef>
#include <exception>
#include <utility>

#include "sched/cancellation.hpp"
#include "sched/deterministic.hpp"
#include "sched/exec_policy.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/metrics.hpp"

namespace pbds {

namespace sched {
// Worker count that granularity decisions should assume: the simulated
// count in deterministic mode, the real pool size otherwise. Keeping these
// in sync (both default to PBDS_NUM_THREADS) makes a pipeline's range
// partitioning identical across execution modes.
[[nodiscard]] inline unsigned effective_num_workers() {
  if (current_exec_mode() == exec_mode::deterministic)
    return current_det_scheduler().num_workers();
  return num_workers();
}
}  // namespace sched

namespace detail {

// The execution engine of fork2join, with no telemetry of its own. Both
// entry points layer counting on top: the public fork2join records one
// fork/join pair per call, while parallel_for batch-counts its whole
// (deterministic, mode-invariant) split tree with two bulk counts at the
// loop root — per-node counting would put an atomic RMW inside a path
// that is otherwise two function calls on a 1-worker pool, and the
// `--metrics-overhead` gate caps the registry tax at 5%.
template <typename L, typename R>
void fork2join_impl(L&& left, R&& right) {
  switch (sched::current_exec_mode()) {
    case sched::exec_mode::sequential:
      left();
      right();
      return;
    case sched::exec_mode::deterministic:
      sched::current_det_scheduler().fork(std::forward<L>(left),
                                          std::forward<R>(right));
      return;
    case sched::exec_mode::parallel:
      break;
  }
  auto& s = sched::get_scheduler();
  if (s.num_workers() == 1 || sched::scheduler::worker_id() < 0) {
    // Sequential fast path; also the safe path for threads outside the
    // pool. No job is pushed, so a throw may unwind freely to the caller.
    left();
    right();
    return;
  }
  sched::cancel_scope scope;
  sched::cancel_state* cs = scope.state();
  if (!scope.is_root() && cs->cancelled()) return;  // bail: sibling failed
  sched::callable_job<R> right_job(right, cs);
  const bool pushed = s.push(&right_job);
  if (!pushed) {
    // Deque full (fork depth beyond kCapacity): run the right branch
    // inline on this worker instead of aborting. Stack growth stays
    // bounded by the recursion that got us here; no work is lost, the
    // branch merely isn't stealable. execute captures its own throw.
    if (right_job.execute()) s.note_subtree_failure();
  }
  std::exception_ptr left_err;
  try {
    left();
  } catch (...) {
    // Must not unwind yet: right_job lives in this frame and may be held
    // by a thief. Capture, cancel the region, and fall through to the
    // join; the rethrow happens after right_job is resolved.
    left_err = std::current_exception();
    cs->capture(left_err);
    s.note_subtree_failure();
  }
  if (pushed) {
    sched::job* popped = s.try_pop();
    if (popped != nullptr) {
      // Fork-join discipline guarantees the bottom of our deque is exactly
      // the job we pushed (everything pushed by `left` was joined inside
      // it). Had right_job been executed inline instead of pushed, this
      // pop would hand us an *enclosing* frame's job — hence the guard.
      assert(popped == &right_job);
      // execute captures its own throw (skips the payload if cancelled);
      // whoever runs a job notes its failure, so stolen failures are noted
      // by the thief in worker_loop / wait_until.
      if (popped->execute()) s.note_subtree_failure();
    } else {
      s.wait_until(&right_job);
    }
  }
  if (scope.is_root()) {
    // First-exception-wins: exactly one exception leaves the region, on
    // the thread that forked its root.
    if (cs->cancelled()) cs->rethrow_first();
  } else {
    // Interior join: keep unwinding toward the root with a local
    // exception; the root substitutes the region's first one.
    if (left_err) std::rethrow_exception(left_err);
    if (auto e = right_job.exception()) std::rethrow_exception(e);
  }
}

// Balances a bulk fork count on every exit path: the join protocol
// completes all joins before the root rethrow, so joins must reach the
// registry even when the region unwinds.
struct join_count {
  std::uint64_t n;
  ~join_count() { telemetry::count(telemetry::counter::joins, n); }
};

}  // namespace detail

// Run `left` and `right` in parallel; return when both are complete.
// The right branch is made stealable; the forking worker runs the left
// branch, then either runs the right branch inline (if no one stole it) or
// steals other work while waiting for the thief to finish it.
//
// Telemetry: one logical fork/join pair per call, identically in
// deterministic, 1-worker, and parallel execution — the fork tree is
// mode-invariant for a given worker count, so a deterministic replay at
// `p` workers reports exactly the counts the real pool at `p` reports
// (the parity oracle in tests/test_telemetry.cpp). Sequential mode forks
// nothing and counts nothing.
template <typename L, typename R>
void fork2join(L&& left, R&& right) {
  if (sched::current_exec_mode() == sched::exec_mode::sequential) {
    left();
    right();
    return;
  }
  telemetry::count(telemetry::counter::forks);
  detail::join_count jc{1};
  detail::fork2join_impl(std::forward<L>(left), std::forward<R>(right));
}

namespace detail {

inline constexpr std::size_t kDefaultGranularity = 512;

// Leaf count of parallel_for's halving split tree over a range of size n:
// ranges larger than g split at the midpoint (floor half left, ceil half
// right) until every leaf is <= g. The tree depends only on (n, g) — not
// on stealing, worker count, or execution mode — so its size can be
// recorded as two bulk counts at the loop root instead of one atomic RMW
// pair per interior node. Sizes at any level of a halving tree take at
// most two distinct values (floor/ceil of n/2^k), so this runs in
// O(log n) with no recursion.
[[nodiscard]] inline std::uint64_t split_tree_leaves(std::size_t n,
                                                     std::size_t g) {
  if (n <= g) return 1;
  std::size_t sz[2] = {n, 0};
  std::uint64_t cnt[2] = {1, 0};
  std::uint64_t leaves = 0;
  while (cnt[0] + cnt[1] > 0) {
    std::size_t nsz[2] = {0, 0};
    std::uint64_t ncnt[2] = {0, 0};
    auto emit = [&](std::size_t s, std::uint64_t c) {
      for (int i = 0; i < 2; ++i) {
        if (ncnt[i] == 0) {
          nsz[i] = s;
          ncnt[i] = c;
          return;
        }
        if (nsz[i] == s) {
          ncnt[i] += c;
          return;
        }
      }
      assert(false && "halving tree has > 2 distinct sizes per level");
    };
    for (int i = 0; i < 2; ++i) {
      if (cnt[i] == 0) continue;
      if (sz[i] <= g) {
        leaves += cnt[i];
        continue;
      }
      emit(sz[i] / 2, cnt[i]);
      emit(sz[i] - sz[i] / 2, cnt[i]);
    }
    sz[0] = nsz[0];
    cnt[0] = ncnt[0];
    sz[1] = nsz[1];
    cnt[1] = ncnt[1];
  }
  return leaves;
}

template <typename F>
void parallel_for_rec(std::size_t lo, std::size_t hi, const F& f,
                      std::size_t granularity) {
  if (hi - lo > granularity) {
    std::size_t mid = lo + (hi - lo) / 2;
    // Uncounted fork: the loop root already recorded this whole tree
    // (split_tree_leaves) with two bulk counts.
    fork2join_impl([&] { parallel_for_rec(lo, mid, f, granularity); },
                   [&] { parallel_for_rec(mid, hi, f, granularity); });
    return;
  }
  // Chunk-boundary bail: once the region is cancelled, remaining leaves
  // are dead work — their output is discarded by the rethrow at the root.
  if (sched::cancellation_requested()) return;
  for (std::size_t i = lo; i < hi; ++i) f(i);
}

}  // namespace detail

// Parallel loop over [lo, hi). `granularity` is the largest range executed
// sequentially; 0 selects a default that balances scheduling overhead
// against load balance. `f` must be safe to invoke concurrently for
// distinct indices. Under cancellation whole chunks may be skipped; loops
// that must visit every index regardless (element construction or
// destruction) run under a sched::cancel_shield.
template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, const F& f,
                  std::size_t granularity = 0) {
  if (lo >= hi) return;
  if (sched::current_exec_mode() == sched::exec_mode::sequential) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  std::size_t n = hi - lo;
  if (granularity == 0) {
    // Aim for ~8 chunks per worker, but never chunks so small that
    // scheduling dominates memory-bound per-element work.
    std::size_t target = n / (8 * static_cast<std::size_t>(
                                      sched::effective_num_workers()) +
                              1);
    granularity = target < 1 ? 1 : target;
    if (granularity > detail::kDefaultGranularity)
      granularity = detail::kDefaultGranularity;
  }
  if (n <= granularity) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  // Batch the tree's fork/join telemetry at the root: the split tree is a
  // pure function of (n, granularity), so the totals equal what per-node
  // counting would record, in every execution mode, at a cost that no
  // longer scales with the number of forks. A cancelled loop still ran
  // (and still joined) every interior node, so the totals stay exact
  // under cancellation too.
  const std::uint64_t interior =
      telemetry::metrics_enabled()
          ? detail::split_tree_leaves(n, granularity) - 1
          : 0;
  telemetry::count(telemetry::counter::forks, interior);
  detail::join_count jc{interior};
  detail::parallel_for_rec(lo, hi, f, granularity);
}

// The paper's `apply` (Fig. 7): run f(i) for all 0 <= i < n in parallel,
// one invocation per index, granularity 1 (each index is assumed to be a
// block-sized unit of work, as in the blocked implementations of
// reduce/scan/filter/flatten).
template <typename F>
void apply(std::size_t n, const F& f) {
  parallel_for(0, n, f, 1);
}

// --- deadline overloads -----------------------------------------------------
//
// Run a fork-join region with a wall-clock deadline. The deadline is
// installed thread-locally for the *next root region* entered here; the
// root's cancel_scope registers itself with the watchdog's region
// registry, and a (possibly deadline-only) watchdog thread cancels the
// region once the deadline passes — the root join then throws
// pbds::stall_detected through the ordinary cancellation protocol.
//
// Caveats (by design, documented in DESIGN.md §"Resource governance"):
// enforcement is cooperative and asynchronous — work stops at the next
// fork or granularity-chunk boundary after the watchdog notices, so a
// single long-running leaf overruns its deadline undetected until it
// yields control. Paths that never enter the cancellation machinery
// (sequential mode; a 1-worker pool's inline fast path; calls from
// threads outside the pool) run to completion and ignore the deadline.
// In deterministic mode the deadline is ignored too — wall-clock cutoffs
// are inherently non-replayable; use det_scheduler::arm_stall_after for a
// seed-stable stand-in.

template <typename L, typename R>
void fork2join(L&& left, R&& right, std::chrono::milliseconds deadline) {
  if (sched::current_exec_mode() == sched::exec_mode::parallel)
    sched::ensure_watchdog_for_deadlines();
  sched::region_deadline guard(std::chrono::steady_clock::now() + deadline);
  fork2join(std::forward<L>(left), std::forward<R>(right));
}

template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, const F& f,
                  std::size_t granularity,
                  std::chrono::milliseconds deadline) {
  if (sched::current_exec_mode() == sched::exec_mode::parallel)
    sched::ensure_watchdog_for_deadlines();
  sched::region_deadline guard(std::chrono::steady_clock::now() + deadline);
  parallel_for(lo, hi, f, granularity);
}

}  // namespace pbds
