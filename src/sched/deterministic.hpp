// Seeded deterministic fork-join simulator.
//
// Runs an entire fork-join computation on ONE thread while reproducing the
// scheduling freedom of the work-stealing pool: at every fork the simulator
// makes pseudo-random decisions — which branch becomes the stealable job
// (branch ordering) and whether pending stealable jobs get "stolen" and run
// before the forking branch completes (steal-vs-inline). All decisions come
// from a splitmix64 stream seeded with a single integer, so
//
//   same seed  =>  same decision sequence  =>  same interleaving trace,
//
// and any schedule-dependent failure is replayable by re-running with the
// failing seed (see docs/TESTING.md). The decision trace is recorded and
// exposed for replay assertions.
//
// Steal simulation: like the real scheduler, a fork pushes one branch as a
// pending job and runs the other; a "steal" takes the OLDEST pending job
// (the top of the Chase-Lev deque) and runs it to completion immediately,
// which is exactly the set of execution orders a thief can produce — an
// outer right branch running before an inner left branch has finished.
// Unstolen jobs are popped and run inline at the join, as in fork2join.
//
// The simulated worker count is independent of the execution (everything
// runs on the calling thread) but feeds parallel_for's granularity choice,
// so a pipeline's range partitioning — and therefore its fork tree — is
// identical to a real run with the same PBDS_NUM_THREADS (deterministic.hpp
// defaults to the same environment handling as scheduler.hpp).
//
// Failure mirror: fork() reproduces the real pool's exception protocol —
// capture into the region's cancel_state, cheap bail-out of cancelled
// forks and payload-skipped pending jobs, first-exception-wins rethrow at
// the root — with every decision driven by the seed, so cancellation
// interleavings (which branch fails, which siblings got skipped) replay
// exactly via --seed / PBDS_SEED (docs/TESTING.md).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <string>
#include <vector>

#include "sched/cancellation.hpp"
#include "sched/exec_policy.hpp"
#include "sched/job.hpp"
#include "sched/scheduler.hpp"

namespace pbds::sched {

class det_scheduler {
 public:
  // Decision events, recorded in execution order.
  enum class event : std::uint8_t {
    fork_keep = 0,    // fork: left runs first, right is the pending job
    fork_swap = 1,    // fork: right runs first, left is the pending job
    steal = 2,        // oldest pending job executed before its forker joined
    inline_join = 3,  // pending job was not stolen; run inline at the join
    worker_kill = 4   // injected worker death fired at this boundary
  };

  // num_workers = 0 selects the same default as the real scheduler
  // (PBDS_NUM_THREADS, else hardware_concurrency), keeping granularity —
  // and hence block partitioning of parallel_for — identical across the
  // deterministic and real schedulers. steal_prob is the per-opportunity
  // chance of stealing a pending job, in [0, 1].
  explicit det_scheduler(std::uint64_t seed, unsigned num_workers = 0,
                         double steal_prob = 0.25)
      : seed_(seed),
        state_(seed ^ 0x9e3779b97f4a7c15ull),
        num_workers_(num_workers == 0 ? detail::default_num_workers()
                                      : num_workers),
        steal_threshold_(static_cast<std::uint64_t>(
            steal_prob >= 1.0
                ? ~0ull
                : steal_prob * 18446744073709551616.0 /* 2^64 */)) {}

  det_scheduler(const det_scheduler&) = delete;
  det_scheduler& operator=(const det_scheduler&) = delete;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] unsigned num_workers() const noexcept { return num_workers_; }

  // Simulate fork2join(left, right), mirroring the real pool's failure
  // protocol: same cancel_scope root/interior structure, same cheap bail
  // at fork entry, same first-exception-wins rethrow at the root. Because
  // all decisions (including which branch fails first and which pending
  // jobs get payload-skipped) come from the seed, a cancellation
  // interleaving replays exactly from one integer.
  template <typename L, typename R>
  void fork(L&& left, R&& right) {
    cancel_scope scope;
    cancel_state* cs = scope.state();
    if (!scope.is_root() && cs->cancelled()) return;  // bail: sibling failed
    maybe_inject_stall(cs);
    maybe_inject_kill(cs);  // heartbeat-boundary stand-in: one per fork entry
    try {
      if (next_u64() & 1) {
        record(event::fork_swap);
        fork_impl(right, left, cs);
      } else {
        record(event::fork_keep);
        fork_impl(left, right, cs);
      }
    } catch (...) {
      // Interior exceptions keep unwinding toward the root; the root
      // swallows the local one (already captured in cs) and substitutes
      // the region's first below.
      if (!scope.is_root()) throw;
    }
    if (scope.is_root() && cs->cancelled()) cs->rethrow_first();
  }

  // --- interleaving trace ----------------------------------------------------

  [[nodiscard]] const std::vector<event>& trace() const noexcept {
    return trace_;
  }

  // FNV-1a over the event bytes: one integer identifying the interleaving.
  [[nodiscard]] std::uint64_t trace_hash() const noexcept {
    std::uint64_t h = 14695981039346656037ull;
    for (event e : trace_) {
      h ^= static_cast<std::uint64_t>(e);
      h *= 1099511628211ull;
    }
    return h;
  }

  [[nodiscard]] std::size_t num_forks() const noexcept { return forks_; }
  [[nodiscard]] std::size_t num_steals() const noexcept { return steals_; }

  // --- stall mirror ----------------------------------------------------------
  //
  // Wall-clock deadlines and watchdog stagnation cancels are inherently
  // non-replayable; the deterministic stand-in is fork-count-based: after
  // the n-th fork of the region, the simulator captures
  // pbds::stall_detected into the region's cancel_state — exactly what the
  // watchdog does to a stuck real region — and the computation collapses
  // through the ordinary cancellation protocol. Being keyed to the fork
  // counter, the injection point is a pure function of (seed, pipeline),
  // so which siblings get skipped replays from one integer. Disarm with a
  // negative n.
  void arm_stall_after(long n_forks) noexcept { stall_after_ = n_forks; }

  // --- worker-loss mirror ----------------------------------------------------
  //
  // The real pool's arm_worker_kill (scheduler.hpp) kills a worker at a
  // heartbeat/steal boundary; heartbeats don't exist on one thread, so
  // the deterministic stand-in counts *kill boundaries* — every fork
  // entry (the loop-top stand-in) and every steal opportunity — and at
  // the nth one captures pbds::worker_lost into the live region's
  // cancel_state, exactly what loss reclamation does to the region whose
  // job the dead worker had claimed. The boundary index is a pure
  // function of (seed, pipeline), so which siblings get skipped — and
  // the trace, which records the kill as event::worker_kill — replays
  // from the two integers. Fires once, then disarms. Disarm with a
  // negative nth. num_kill_boundaries() after an unarmed run bounds the
  // nth sweep range.
  void arm_worker_kill(std::uint64_t seed, long nth) noexcept {
    kill_seed_ = seed;
    kill_at_ = nth;
  }

  [[nodiscard]] std::size_t num_kill_boundaries() const noexcept {
    return boundaries_;
  }
  [[nodiscard]] std::size_t worker_kills_delivered() const noexcept {
    return kills_delivered_;
  }

 private:
  void maybe_inject_stall(cancel_state* cs) {
    if (stall_after_ < 0 || cs == nullptr) return;
    if (static_cast<long>(forks_) >= stall_after_ && !cs->cancelled()) {
      cs->capture(std::make_exception_ptr(stall_detected(
          "pbds deterministic: injected stall (arm_stall_after)")));
      telemetry::count(telemetry::counter::stalls);
      telemetry::trace_instant(telemetry::trace_kind::sched, "stall");
    }
  }

  void maybe_inject_kill(cancel_state* cs) {
    std::size_t boundary = boundaries_++;
    if (kill_at_ < 0 || cs == nullptr) return;
    if (static_cast<long>(boundary) < kill_at_) return;
    // Must-complete (shielded) regions are never cancelled — the real
    // pool's reclamation runs their stranded jobs instead — so the kill
    // slides to the next boundary of a cancellable region.
    if (cs->must_complete()) return;
    kill_at_ = -1;  // one death per arming, as in the real pool
    ++kills_delivered_;
    telemetry::count(telemetry::counter::workers_lost);
    record(event::worker_kill);
    // Capture even into an already-cancelled region: first-exception-wins
    // decides what the root sees, same as a real kill racing a failure.
    cs->capture(std::make_exception_ptr(worker_lost(
        "pbds deterministic: injected worker loss (arm_worker_kill seed=" +
        std::to_string(kill_seed_) + ")")));
  }

  template <typename A, typename B>
  void fork_impl(A& first, B& second, cancel_state* cs) {
    ++forks_;
    callable_job<B> pending(second, cs);
    pending_.push_back(&pending);
    std::exception_ptr first_err;
    try {
      maybe_steal(cs);
      first();
    } catch (...) {
      // Same discipline as the real fork2join: never unwind while our
      // pending job is unresolved. Capture, cancel the region, and fall
      // through to the join below (execute() then skips the payload).
      first_err = std::current_exception();
      cs->capture(first_err);
    }
    if (!pending.finished()) {
      // Frames below us resolved their own pending jobs before returning
      // or rethrowing, so if ours was not stolen it is at the back.
      assert(!pending_.empty() && pending_.back() == &pending);
      pending_.pop_back();
      record(event::inline_join);
      pending.execute();  // captures its own throw; skipped if cancelled
    }
    if (first_err) std::rethrow_exception(first_err);
    if (auto e = pending.exception()) std::rethrow_exception(e);
  }

  // With seeded probability, run the oldest pending job(s) to completion
  // right now — the deterministic stand-in for a concurrent thief.
  void maybe_steal(cancel_state* cs) {
    while (!pending_.empty() && next_u64() < steal_threshold_) {
      record(event::steal);
      ++steals_;
      maybe_inject_kill(cs);  // steal-boundary stand-in: thief dies mid-take
      job* victim = pending_.front();
      pending_.pop_front();
      victim->execute();
    }
  }

  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Every simulated decision lands in the replay trace AND, when tracing
  // is armed (PBDS_TRACE_FILE / scoped_trace), in the timeline rings — so
  // a failure replayed from (seed, nth) produces a viewable Chrome-trace
  // of the exact interleaving, not just a hash.
  void record(event e) {
    trace_.push_back(e);
    if (e == event::steal) telemetry::count(telemetry::counter::steals);
    if (telemetry::trace_enabled()) {
      static constexpr const char* kNames[] = {
          "fork_keep", "fork_swap", "steal", "inline_join", "worker_kill"};
      telemetry::trace_instant(telemetry::trace_kind::sched,
                               kNames[static_cast<std::size_t>(e)],
                               static_cast<std::int64_t>(trace_.size()));
    }
  }

  std::uint64_t seed_;
  std::uint64_t state_;
  unsigned num_workers_;
  std::uint64_t steal_threshold_;
  std::deque<job*> pending_;
  std::vector<event> trace_;
  std::size_t forks_ = 0;
  std::size_t steals_ = 0;
  long stall_after_ = -1;  // injected-stall fork threshold; < 0 disarmed
  std::uint64_t kill_seed_ = 0;
  long kill_at_ = -1;  // injected-kill boundary index; < 0 disarmed
  std::size_t boundaries_ = 0;
  std::size_t kills_delivered_ = 0;
};

namespace detail {
inline thread_local det_scheduler* tl_det_scheduler = nullptr;
}  // namespace detail

// The deterministic scheduler driving the calling thread; only valid while
// current_exec_mode() == exec_mode::deterministic.
[[nodiscard]] inline det_scheduler& current_det_scheduler() noexcept {
  assert(detail::tl_det_scheduler != nullptr);
  return *detail::tl_det_scheduler;
}

// RAII: run the enclosed region under a fresh deterministic scheduler.
// Nestable (the previous scheduler and mode are restored on exit); the
// scheduler object is accessible for trace/replay assertions.
class scoped_deterministic {
 public:
  explicit scoped_deterministic(std::uint64_t seed, unsigned num_workers = 0,
                                double steal_prob = 0.25)
      : det_(seed, num_workers, steal_prob),
        saved_mode_(detail::tl_exec_mode),
        saved_det_(detail::tl_det_scheduler) {
    detail::tl_exec_mode = exec_mode::deterministic;
    detail::tl_det_scheduler = &det_;
  }

  ~scoped_deterministic() {
    detail::tl_exec_mode = saved_mode_;
    detail::tl_det_scheduler = saved_det_;
  }

  scoped_deterministic(const scoped_deterministic&) = delete;
  scoped_deterministic& operator=(const scoped_deterministic&) = delete;

  [[nodiscard]] det_scheduler& scheduler() noexcept { return det_; }

 private:
  det_scheduler det_;
  exec_mode saved_mode_;
  det_scheduler* saved_det_;
};

}  // namespace pbds::sched
