// Job abstraction for the work-stealing scheduler.
//
// A job is a type-erased unit of work with a completion flag. Jobs are
// always stack-allocated by the forking thread (fork2join keeps the right
// branch alive on its own stack until the join), so no heap allocation or
// reference counting is needed on the fork path.
//
// Exception safety: `execute` never lets an exception escape. A throw from
// the payload is captured into the job's `exception_ptr` — and into the
// region's shared cancel_state, requesting cancellation — and the job is
// still marked finished, so a join never hangs and a thief's worker_loop
// never unwinds into std::terminate. The forker inspects `exception()`
// after the join (the done_ release/acquire pair publishes the pointer).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <utility>

#include "sched/cancellation.hpp"

namespace pbds::sched {

// Type-erased job. `execute` runs the payload; `done` is set (release) by
// whichever worker ran it, and polled (acquire) by the joiner.
class job {
 public:
  explicit job(void (*run)(job*), cancel_state* cancel = nullptr) noexcept
      : run_(run), cancel_(cancel) {}

  job(const job&) = delete;
  job& operator=(const job&) = delete;

  // Returns whether the payload failed. The executing worker must take
  // the status from the return value, not from failed(): the done_ store
  // is the job's last breath — the joiner may observe it, return, and pop
  // the frame the job lives in, so touching *this afterwards is a
  // use-after-free on another thread's stack.
  bool execute() noexcept {
    // Adopt the forker's region for the duration: nested forks inside the
    // payload (possibly on a thief's thread) must share its cancel_state.
    cancel_state* saved = detail::tl_cancel;
    detail::tl_cancel = cancel_;
    if (cancel_ == nullptr || !cancel_->cancelled()) {
      try {
        run_(this);
      } catch (...) {
        eptr_ = std::current_exception();
        if (cancel_ != nullptr) cancel_->capture(eptr_);
      }
    }
    // else: a sibling already failed — skip the payload (the cheap bail at
    // a fork boundary) but still finish, so the joiner wakes up.
    detail::tl_cancel = saved;
    const bool did_fail = eptr_ != nullptr;
    done_.store(true, std::memory_order_release);
    return did_fail;
  }

  [[nodiscard]] bool finished() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

  // The region this job works for; null for region-less jobs. Used by the
  // scheduler's worker-loss reclamation to cancel the region of a job a
  // dead worker claimed but never ran, before executing it to completion
  // (payload skipped, done_ set) so the joiner wakes and the root rethrows.
  [[nodiscard]] cancel_state* cancel() const noexcept { return cancel_; }

  // Valid only on the joining thread (which owns the job's frame) once
  // finished() has returned true; executors use execute()'s return value.
  [[nodiscard]] bool failed() const noexcept { return eptr_ != nullptr; }
  [[nodiscard]] std::exception_ptr exception() const noexcept {
    return eptr_;
  }

 private:
  void (*run_)(job*);
  cancel_state* cancel_;
  std::exception_ptr eptr_;
  std::atomic<bool> done_{false};
};

// Concrete job holding a callable of type F by reference. The callable
// outlives the job (both live in the forking frame), so a reference is safe
// and avoids a copy of potentially capture-heavy lambdas.
template <typename F>
class callable_job final : public job {
 public:
  explicit callable_job(F& f, cancel_state* cancel = nullptr) noexcept
      : job(&callable_job::invoke, cancel), f_(f) {}

 private:
  static void invoke(job* self) {
    static_cast<callable_job*>(self)->f_();
  }
  F& f_;
};

}  // namespace pbds::sched
