// Job abstraction for the work-stealing scheduler.
//
// A job is a type-erased unit of work with a completion flag. Jobs are
// always stack-allocated by the forking thread (fork2join keeps the right
// branch alive on its own stack until the join), so no heap allocation or
// reference counting is needed on the fork path.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

namespace pbds::sched {

// Type-erased job. `execute` runs the payload; `done` is set (release) by
// whichever worker ran it, and polled (acquire) by the joiner.
class job {
 public:
  explicit job(void (*run)(job*)) noexcept : run_(run) {}

  job(const job&) = delete;
  job& operator=(const job&) = delete;

  void execute() {
    run_(this);
    done_.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool finished() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

 private:
  void (*run_)(job*);
  std::atomic<bool> done_{false};
};

// Concrete job holding a callable of type F by reference. The callable
// outlives the job (both live in the forking frame), so a reference is safe
// and avoids a copy of potentially capture-heavy lambdas.
template <typename F>
class callable_job final : public job {
 public:
  explicit callable_job(F& f) noexcept
      : job(&callable_job::invoke), f_(f) {}

 private:
  static void invoke(job* self) {
    static_cast<callable_job*>(self)->f_();
  }
  F& f_;
};

}  // namespace pbds::sched
