// Cooperative cancellation + first-exception-wins capture for fork-join.
//
// Failure model (see DESIGN.md §"Failure semantics"): every fork-join
// computation runs under one `cancel_state`, installed thread-locally by
// the *root* fork (the outermost fork2join / parallel_for of the region)
// and carried into stolen jobs by the scheduler, so all workers touching
// the region share it. When any branch throws:
//
//   1. the exception is captured (never unwinds past a stealable job or
//      off a worker's stack) and the state flips to `cancelled`;
//   2. sibling/descendant work observes `cancelled` and bails out cheaply
//      — fork2join skips both branches at entry, a pending job skips its
//      payload when executed, and parallel_for skips whole granularity
//      chunks — while every join still completes, so the pool is
//      quiescent when control returns to the root;
//   3. the root rethrows the *first* captured exception, exactly once, on
//      the calling thread. Later exceptions from already-running branches
//      are captured and dropped (they are secondary failures of a
//      computation whose result is already dead).
//
// `cancel_shield` opts a subtree *out* of an enclosing region's
// cancellation: loops that must visit every index even while unwinding —
// placeholder construction in parray::tabulate / delayed::to_array, the
// destructor sweep in parray::release — run shielded, otherwise a skipped
// chunk would leave elements unconstructed (or undestroyed) behind the
// exception.
#pragma once

#include <atomic>
#include <cassert>
#include <exception>
#include <utility>

namespace pbds::sched {

class cancel_state {
 public:
  cancel_state() noexcept = default;
  cancel_state(const cancel_state&) = delete;
  cancel_state& operator=(const cancel_state&) = delete;

  // Polled from arbitrary workers at fork/chunk boundaries; relaxed is
  // fine — a stale `false` only delays the bail-out by one chunk.
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // Record a thrown exception and request cancellation. The first caller
  // wins the `first_` slot; all callers flip `cancelled`. Safe to call
  // concurrently from any worker.
  void capture(std::exception_ptr e) noexcept {
    if (!claimed_.exchange(true, std::memory_order_acq_rel))
      first_ = std::move(e);
    cancelled_.store(true, std::memory_order_release);
  }

  // Rethrow the winning exception. Call only after the region has fully
  // joined (the join edges make `first_` visible to the root thread).
  void rethrow_first() {
    assert(cancelled() && "rethrow_first on a region that never failed");
    if (first_) std::rethrow_exception(first_);
  }

 private:
  std::atomic<bool> claimed_{false};
  std::atomic<bool> cancelled_{false};
  std::exception_ptr first_;
};

namespace detail {
// The cancel state of the fork-join region the current thread is working
// in; null outside any region (and inside a cancel_shield). Workers
// executing a stolen job adopt the job's state for the duration
// (job::execute), so the pointer follows the *computation*, not the
// thread.
inline thread_local cancel_state* tl_cancel = nullptr;
}  // namespace detail

[[nodiscard]] inline cancel_state* current_cancel() noexcept {
  return detail::tl_cancel;
}

// True iff the current thread works for a region whose failure has been
// recorded — the signal to bail at the next fork or chunk boundary.
[[nodiscard]] inline bool cancellation_requested() noexcept {
  return detail::tl_cancel != nullptr && detail::tl_cancel->cancelled();
}

// Installed by every fork site. The outermost one on a thread (no region
// active) becomes the *root*: it owns the region's cancel_state and is
// where the first exception is rethrown. Nested scopes are no-ops that
// just hand back the enclosing state.
class cancel_scope {
 public:
  cancel_scope() noexcept : root_(detail::tl_cancel == nullptr) {
    if (root_) detail::tl_cancel = &local_;
  }

  ~cancel_scope() {
    if (root_) detail::tl_cancel = nullptr;
  }

  cancel_scope(const cancel_scope&) = delete;
  cancel_scope& operator=(const cancel_scope&) = delete;

  [[nodiscard]] bool is_root() const noexcept { return root_; }
  [[nodiscard]] cancel_state* state() noexcept { return detail::tl_cancel; }

 private:
  cancel_state local_;  // used only when this scope is the root
  bool root_;
};

// Suppress cancellation for a lexical region: forks below run as fresh
// root regions of their own. Used by must-complete loops (element
// destruction, placeholder construction) whose bodies are noexcept or
// self-catching — skipping their chunks would corrupt object lifetimes.
class cancel_shield {
 public:
  cancel_shield() noexcept : saved_(detail::tl_cancel) {
    detail::tl_cancel = nullptr;
  }
  ~cancel_shield() { detail::tl_cancel = saved_; }
  cancel_shield(const cancel_shield&) = delete;
  cancel_shield& operator=(const cancel_shield&) = delete;

 private:
  cancel_state* saved_;
};

}  // namespace pbds::sched
