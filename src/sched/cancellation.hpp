// Cooperative cancellation + first-exception-wins capture for fork-join.
//
// Failure model (see DESIGN.md §"Failure semantics"): every fork-join
// computation runs under one `cancel_state`, installed thread-locally by
// the *root* fork (the outermost fork2join / parallel_for of the region)
// and carried into stolen jobs by the scheduler, so all workers touching
// the region share it. When any branch throws:
//
//   1. the exception is captured (never unwinds past a stealable job or
//      off a worker's stack) and the state flips to `cancelled`;
//   2. sibling/descendant work observes `cancelled` and bails out cheaply
//      — fork2join skips both branches at entry, a pending job skips its
//      payload when executed, and parallel_for skips whole granularity
//      chunks — while every join still completes, so the pool is
//      quiescent when control returns to the root;
//   3. the root rethrows the *first* captured exception, exactly once, on
//      the calling thread. Later exceptions from already-running branches
//      are captured and dropped (they are secondary failures of a
//      computation whose result is already dead).
//
// `cancel_shield` opts a subtree *out* of an enclosing region's
// cancellation: loops that must visit every index even while unwinding —
// placeholder construction in parray::tabulate / delayed::to_array, the
// destructor sweep in parray::release — run shielded, otherwise a skipped
// chunk would leave elements unconstructed (or undestroyed) behind the
// exception.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "recovery/progress.hpp"

namespace pbds {

// Thrown at the root join of a fork-join region that the watchdog
// (scheduler.hpp) cancelled — either its deadline expired or the pool made
// no global progress for the configured number of watchdog intervals. The
// region collapses through the normal cancellation protocol, so the pool
// is quiescent and reusable when this surfaces.
class stall_detected : public std::runtime_error {
 public:
  explicit stall_detected(const std::string& what)
      : std::runtime_error(what) {}

  // Checkpointed operations (src/recovery/) annotate an in-flight stall
  // with how far they got before rethrowing, so the retry/resume machinery
  // can report salvageable progress.
  void attach_progress(const recovery::progress& p) noexcept {
    progress_ = p;
    has_progress_ = true;
  }
  [[nodiscard]] bool has_progress() const noexcept { return has_progress_; }
  [[nodiscard]] const recovery::progress& checkpoint_progress() const noexcept {
    return progress_;
  }

 private:
  recovery::progress progress_{};
  bool has_progress_ = false;
};

// Thrown at the root join of a fork-join region that lost a worker thread
// (scheduler.hpp worker-loss detection): the pool declared a worker dead —
// heartbeat frozen past PBDS_WORKER_LOST_MS with the thread outside any
// payload — and reclaimed its stranded work by cancelling the region, so
// the join throws instead of hanging on a job nobody will ever run. The
// fault is retryable: after repair() the pool is whole again and a retry
// (block-granular via the recovery:: ledger when checkpointed) completes
// on the repaired pool.
class worker_lost : public std::runtime_error {
 public:
  explicit worker_lost(const std::string& what) : std::runtime_error(what) {}

  // Same progress protocol as stall_detected: checkpointed operations
  // annotate the in-flight loss with how far they got, so the resume
  // machinery can salvage completed blocks across the loss.
  void attach_progress(const recovery::progress& p) noexcept {
    progress_ = p;
    has_progress_ = true;
  }
  [[nodiscard]] bool has_progress() const noexcept { return has_progress_; }
  [[nodiscard]] const recovery::progress& checkpoint_progress() const noexcept {
    return progress_;
  }

 private:
  recovery::progress progress_{};
  bool has_progress_ = false;
};

}  // namespace pbds

namespace pbds::sched {

class cancel_state {
 public:
  cancel_state() noexcept = default;
  cancel_state(const cancel_state&) = delete;
  cancel_state& operator=(const cancel_state&) = delete;

  // Polled from arbitrary workers at fork/chunk boundaries; relaxed is
  // fine — a stale `false` only delays the bail-out by one chunk.
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // Record a thrown exception and request cancellation. The first caller
  // wins the `first_` slot; all callers flip `cancelled`. Safe to call
  // concurrently from any worker (or the watchdog thread). The claim
  // goes through three states — 0 free, 1 writing, 2 published — because
  // a LOSING capture also stores `cancelled_`, and a reader reaching
  // rethrow_first through the loser's store must not touch `first_`
  // while the winner is still writing it.
  void capture(std::exception_ptr e) noexcept {
    int expected = 0;
    if (claim_.compare_exchange_strong(expected, 1,
                                       std::memory_order_acq_rel)) {
      first_ = std::move(e);
      claim_.store(2, std::memory_order_release);
    }
    cancelled_.store(true, std::memory_order_release);
  }

  // Rethrow the winning exception. Safe from any thread that observed
  // `cancelled()`: the claim handshake (not the join edges alone) makes
  // `first_` visible, so this also covers asynchronous captures — a
  // watchdog deadline or stagnation cancel racing a dispatcher's
  // post-attempt rethrow.
  void rethrow_first() {
    assert(cancelled() && "rethrow_first on a region that never failed");
    int c = claim_.load(std::memory_order_acquire);
    while (c == 1) {  // winner mid-write; publication is a few stores away
      std::this_thread::yield();
      c = claim_.load(std::memory_order_acquire);
    }
    if (c == 2 && first_) std::rethrow_exception(first_);
  }

  // Marked by the root cancel_scope of a region entered under a
  // cancel_shield: its loops must visit every index (object lifetimes
  // depend on it), so *nobody* may cancel it — not the watchdog (it is
  // never registered) and not worker-loss reclamation, which instead runs
  // the region's stranded jobs to completion (scheduler.hpp). Written once
  // at scope construction, before any job carrying this state is
  // published, so a plain bool is race-free.
  void mark_must_complete() noexcept { must_complete_ = true; }
  [[nodiscard]] bool must_complete() const noexcept { return must_complete_; }

 private:
  std::atomic<int> claim_{0};
  std::atomic<bool> cancelled_{false};
  std::exception_ptr first_;
  bool must_complete_ = false;
};

namespace detail {
// The cancel state of the fork-join region the current thread is working
// in; null outside any region (and inside a cancel_shield). Workers
// executing a stolen job adopt the job's state for the duration
// (job::execute), so the pointer follows the *computation*, not the
// thread.
inline thread_local cancel_state* tl_cancel = nullptr;

// --- active-region registry (watchdog support) -----------------------------
//
// When region tracking is on (watchdog running, or the current root has a
// deadline), every *root* cancel_scope registers its cancel_state here so
// the watchdog thread can cancel a stuck or expired region from outside.
// Off by default: the only cost on the fork hot path is one relaxed load
// plus a thread-local deadline check, both in the root-only branch.
inline std::atomic<bool> g_region_tracking{false};

// Deadline installed by region_deadline (parallel.hpp's deadline-taking
// overloads); time_point::max() means none.
inline thread_local std::chrono::steady_clock::time_point tl_deadline =
    std::chrono::steady_clock::time_point::max();

// Depth of nested cancel_shields on this thread. Roots entered under a
// shield are must-complete: they never register with the watchdog, so
// neither a deadline nor a stagnation sweep can collapse them.
inline thread_local int tl_shield_depth = 0;

struct region_entry {
  cancel_state* state;
  std::chrono::steady_clock::time_point deadline;  // max() = none
};

inline std::mutex& region_registry_mutex() {
  static std::mutex m;
  return m;
}

inline std::vector<region_entry>& region_registry() {
  static std::vector<region_entry> v;
  return v;
}

inline void register_region(cancel_state* cs,
                            std::chrono::steady_clock::time_point deadline) {
  std::lock_guard<std::mutex> lock(region_registry_mutex());
  region_registry().push_back({cs, deadline});
}

inline void unregister_region(cancel_state* cs) {
  std::lock_guard<std::mutex> lock(region_registry_mutex());
  auto& v = region_registry();
  for (auto it = v.begin(); it != v.end(); ++it) {
    if (it->state == cs) {
      v.erase(it);
      return;
    }
  }
}
}  // namespace detail

// Number of fork-join regions currently registered for watchdog
// observation (those with a deadline, or all roots while tracking is on).
[[nodiscard]] inline std::size_t active_tracked_regions() {
  std::lock_guard<std::mutex> lock(detail::region_registry_mutex());
  return detail::region_registry().size();
}

[[nodiscard]] inline cancel_state* current_cancel() noexcept {
  return detail::tl_cancel;
}

// True iff the current thread works for a region whose failure has been
// recorded — the signal to bail at the next fork or chunk boundary.
[[nodiscard]] inline bool cancellation_requested() noexcept {
  return detail::tl_cancel != nullptr && detail::tl_cancel->cancelled();
}

// Installed by every fork site. The outermost one on a thread (no region
// active) becomes the *root*: it owns the region's cancel_state and is
// where the first exception is rethrown. Nested scopes are no-ops that
// just hand back the enclosing state.
class cancel_scope {
 public:
  cancel_scope() : root_(detail::tl_cancel == nullptr) {
    if (root_) {
      detail::tl_cancel = &local_;
      // Shielded roots are must-complete: loss reclamation must run their
      // stranded jobs rather than cancel them (see cancel_state).
      if (detail::tl_shield_depth > 0) local_.mark_must_complete();
      // Publish the region to the watchdog when tracking is on or this
      // root carries a deadline. Root scopes only — one registration per
      // top-level region, not per nested fork — and never under a
      // cancel_shield, whose loops must run to completion.
      auto deadline = detail::tl_deadline;
      if (detail::tl_shield_depth == 0 &&
          (detail::g_region_tracking.load(std::memory_order_relaxed) ||
           deadline != std::chrono::steady_clock::time_point::max())) {
        detail::register_region(&local_, deadline);
        registered_ = true;
      }
    }
  }

  ~cancel_scope() {
    if (registered_) detail::unregister_region(&local_);
    if (root_) detail::tl_cancel = nullptr;
  }

  cancel_scope(const cancel_scope&) = delete;
  cancel_scope& operator=(const cancel_scope&) = delete;

  [[nodiscard]] bool is_root() const noexcept { return root_; }
  [[nodiscard]] cancel_state* state() noexcept { return detail::tl_cancel; }

 private:
  cancel_state local_;  // used only when this scope is the root
  bool root_;
  bool registered_ = false;
};

// RAII deadline for the next root region entered on this thread (installed
// by the deadline-taking fork2join / parallel_for overloads). Saving and
// restoring makes nesting well-defined: the innermost deadline wins for
// regions rooted inside it.
class region_deadline {
 public:
  explicit region_deadline(std::chrono::steady_clock::time_point deadline)
      : saved_(detail::tl_deadline) {
    detail::tl_deadline = deadline;
  }
  ~region_deadline() { detail::tl_deadline = saved_; }
  region_deadline(const region_deadline&) = delete;
  region_deadline& operator=(const region_deadline&) = delete;

 private:
  std::chrono::steady_clock::time_point saved_;
};

// Suppress cancellation for a lexical region: forks below run as fresh
// root regions of their own. Used by must-complete loops (element
// destruction, placeholder construction) whose bodies are noexcept or
// self-catching — skipping their chunks would corrupt object lifetimes.
//
// Must-complete means must-complete: the shield also suspends the
// enclosing job's region deadline and keeps the fresh roots out of the
// watchdog's registry (see cancel_scope). Otherwise a shielded guarded
// loop inherits the job's deadline through tl_deadline, the watchdog
// cancels its root mid-loop, and the root join throws with whole blocks
// skipped — exactly the unconstructed-slot corruption the shield exists
// to prevent. Shielded loops are bounded (one pass over storage), so
// withholding them from the watchdog cannot hide a livelock.
class cancel_shield {
 public:
  cancel_shield() noexcept
      : saved_(detail::tl_cancel), saved_deadline_(detail::tl_deadline) {
    detail::tl_cancel = nullptr;
    detail::tl_deadline = std::chrono::steady_clock::time_point::max();
    ++detail::tl_shield_depth;
  }
  ~cancel_shield() {
    --detail::tl_shield_depth;
    detail::tl_deadline = saved_deadline_;
    detail::tl_cancel = saved_;
  }
  cancel_shield(const cancel_shield&) = delete;
  cancel_shield& operator=(const cancel_shield&) = delete;

 private:
  cancel_state* saved_;
  std::chrono::steady_clock::time_point saved_deadline_;
};

}  // namespace pbds::sched
