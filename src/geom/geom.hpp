// Geometry substrate for the quickhull and bestcut benchmarks.
#pragma once

#include <cmath>
#include <cstdint>

#include "array/parray.hpp"
#include "random/rng.hpp"

namespace pbds::geom {

struct point2d {
  double x = 0;
  double y = 0;
  friend bool operator==(const point2d&, const point2d&) = default;
};

// Twice the signed area of triangle (o, a, b); > 0 iff b is strictly to
// the left of ray o->a.
constexpr double cross(const point2d& o, const point2d& a,
                       const point2d& b) noexcept {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

// Squared distance of p from the line through (a, b), up to the constant
// |b-a|^2 factor (monotone in the true distance, which is all quickhull
// needs to pick the farthest point).
constexpr double line_distance(const point2d& a, const point2d& b,
                               const point2d& p) noexcept {
  return cross(a, b, p);
}

// n points uniform in the unit disk (the paper's quickhull input:
// "points in a circle from a uniform distribution"). Polar sampling:
// r = sqrt(u1), theta = 2*pi*u2.
inline parray<point2d> points_in_disk(std::size_t n, std::uint64_t seed = 5) {
  random::rng gen(seed);
  return parray<point2d>::tabulate(n, [&](std::size_t i) {
    double r = std::sqrt(gen.uniform(2 * i));
    double t = 6.283185307179586 * gen.uniform(2 * i + 1);
    return point2d{r * std::cos(t), r * std::sin(t)};
  });
}

// bestcut input: axis events of bounding boxes, sorted by coordinate in
// [0, 1]. Event i is an interval start or end (§3: the surface-area
// heuristic scans candidate cuts, counting how many boxes end before each
// cut). We generate sorted coordinates directly (i + jitter) / n so no
// sort substrate is needed; the is_end flags are random.
struct axis_event {
  double coord = 0;      // cut position in [0, 1], nondecreasing in i
  std::uint8_t is_end = 0;  // 1 if a box ends here
};

inline parray<axis_event> bestcut_events(std::size_t n,
                                         std::uint64_t seed = 13) {
  random::rng gen(seed);
  double inv = 1.0 / static_cast<double>(n);
  return parray<axis_event>::tabulate(n, [=](std::size_t i) {
    double jitter = gen.uniform(3 * i) * 0.999;
    return axis_event{(static_cast<double>(i) + jitter) * inv,
                      static_cast<std::uint8_t>(gen.coin(3 * i + 1) ? 1 : 0)};
  });
}

// The surface-area-heuristic-style cost of cutting at position x with c
// boxes fully on the left of the cut, out of n total: boxes-left weighted
// by left extent plus boxes-right weighted by right extent.
constexpr double sah_cost(double x, std::uint64_t c, std::size_t n) noexcept {
  return x * static_cast<double>(c) +
         (1.0 - x) * static_cast<double>(n - c);
}

}  // namespace pbds::geom
