// 3D geometry substrate for the ray-cast workload (§1 mentions
// ray-triangle intersection among the PBBS codes improved by
// block-delayed sequences): vectors, triangles, rays, and Möller-Trumbore
// intersection.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>

#include "array/parray.hpp"
#include "random/rng.hpp"

namespace pbds::geom {

struct vec3 {
  double x = 0, y = 0, z = 0;

  friend constexpr vec3 operator+(const vec3& a, const vec3& b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr vec3 operator-(const vec3& a, const vec3& b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr vec3 operator*(double s, const vec3& v) {
    return {s * v.x, s * v.y, s * v.z};
  }
};

constexpr double dot(const vec3& a, const vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr vec3 cross3(const vec3& a, const vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

inline double norm(const vec3& v) { return std::sqrt(dot(v, v)); }

struct triangle {
  vec3 a, b, c;
};

struct ray {
  vec3 origin, dir;  // dir need not be normalized
};

// Möller-Trumbore: parameter t >= 0 of the hit along the ray, or nullopt.
inline std::optional<double> intersect(const ray& r, const triangle& tri) {
  constexpr double kEps = 1e-12;
  vec3 e1 = tri.b - tri.a;
  vec3 e2 = tri.c - tri.a;
  vec3 p = cross3(r.dir, e2);
  double det = dot(e1, p);
  if (det > -kEps && det < kEps) return std::nullopt;  // parallel
  double inv = 1.0 / det;
  vec3 s = r.origin - tri.a;
  double u = inv * dot(s, p);
  if (u < 0.0 || u > 1.0) return std::nullopt;
  vec3 q = cross3(s, e1);
  double v = inv * dot(r.dir, q);
  if (v < 0.0 || u + v > 1.0) return std::nullopt;
  double t = inv * dot(e2, q);
  if (t < kEps) return std::nullopt;  // behind the origin
  return t;
}

// Random small triangles scattered in the unit cube z in [1, 2] (so rays
// from the origin toward +z hit a reasonable fraction).
inline parray<triangle> random_triangles(std::size_t n,
                                         std::uint64_t seed = 37) {
  random::rng gen(seed);
  return parray<triangle>::tabulate(n, [&](std::size_t i) {
    auto base = 9 * i;
    vec3 a{gen.uniform(base + 0, -1.0, 1.0), gen.uniform(base + 1, -1.0, 1.0),
           gen.uniform(base + 2, 1.0, 2.0)};
    vec3 db{gen.uniform(base + 3, -0.2, 0.2),
            gen.uniform(base + 4, -0.2, 0.2),
            gen.uniform(base + 5, -0.1, 0.1)};
    vec3 dc{gen.uniform(base + 6, -0.2, 0.2),
            gen.uniform(base + 7, -0.2, 0.2),
            gen.uniform(base + 8, -0.1, 0.1)};
    return triangle{a, a + db, a + dc};
  });
}

// Rays from the origin through a jittered grid on the z = 1 plane.
inline parray<ray> random_rays(std::size_t n, std::uint64_t seed = 41) {
  random::rng gen(seed);
  return parray<ray>::tabulate(n, [&](std::size_t i) {
    return ray{vec3{0, 0, 0},
               vec3{gen.uniform(2 * i, -1.0, 1.0),
                    gen.uniform(2 * i + 1, -1.0, 1.0), 1.0}};
  });
}

}  // namespace pbds::geom
