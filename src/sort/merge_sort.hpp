// Parallel stable merge sort — a ParlayLib-style primitive substrate.
//
// Not part of the paper's delayed-sequence core, but part of the toolkit a
// parlay-like library ships with; used here by examples and available to
// downstream code that needs to order the output of a delayed pipeline
// (e.g. postings lists, hull points). Divide-and-conquer with a parallel
// merge that splits the larger run at its median and binary-searches the
// split point in the smaller run; O(n log n) work, O(log^3 n) span.
//
// Stability: on ties the merge always prefers the left run (upper_bound on
// the left median), so equal elements keep their input order.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>

#include "array/parray.hpp"
#include "sched/parallel.hpp"

namespace pbds::sort {

namespace detail {

inline constexpr std::size_t kSeqSortCutoff = 1 << 12;
inline constexpr std::size_t kSeqMergeCutoff = 1 << 12;

// Merge [a, a+na) and [b, b+nb) into out, stably (ties from a first).
template <typename T, typename Cmp>
void merge_into(const T* a, std::size_t na, const T* b, std::size_t nb,
                T* out, const Cmp& cmp) {
  if (na + nb <= kSeqMergeCutoff) {
    // std::merge is stable with ties taken from the first range.
    std::merge(a, a + na, b, b + nb, out, cmp);
    return;
  }
  // Split the larger run at its middle; binary-search the other run.
  // Stability invariant: every a-element equal to the pivot must land in
  // the same half as (or to the left of) every equal b-element, because a
  // precedes b in the input.
  if (na < nb) {
    // Pivot from b: a-elements equal to it must go LEFT (upper_bound on a)
    // so they precede the pivot, which starts the right half.
    std::size_t mb = nb / 2;
    std::size_t ma = static_cast<std::size_t>(
        std::upper_bound(a, a + na, b[mb], cmp) - a);
    fork2join(
        [&] { merge_into(a, ma, b, mb, out, cmp); },
        [&] {
          merge_into(a + ma, na - ma, b + mb, nb - mb, out + ma + mb, cmp);
        });
  } else {
    // Pivot from a: b-elements equal to it must go RIGHT (lower_bound on
    // b) so they follow the pivot and any later equal a-elements.
    std::size_t ma = na / 2;
    std::size_t mb = static_cast<std::size_t>(
        std::lower_bound(b, b + nb, a[ma], cmp) - b);
    fork2join(
        [&] { merge_into(a, ma, b, mb, out, cmp); },
        [&] {
          merge_into(a + ma, na - ma, b + mb, nb - mb, out + ma + mb, cmp);
        });
  }
}

// Sort [src, src+n); result lands in src if !to_scratch, else in scratch.
// Classic ping-pong to avoid a copy per level.
template <typename T, typename Cmp>
void sort_rec(T* src, T* scratch, std::size_t n, const Cmp& cmp,
              bool to_scratch) {
  if (n <= kSeqSortCutoff) {
    std::stable_sort(src, src + n, cmp);
    if (to_scratch) std::copy(src, src + n, scratch);
    return;
  }
  std::size_t half = n / 2;
  fork2join(
      [&] { sort_rec(src, scratch, half, cmp, !to_scratch); },
      [&] {
        sort_rec(src + half, scratch + half, n - half, cmp, !to_scratch);
      });
  // Halves are now in the opposite buffer; merge back into the target.
  T* from = to_scratch ? src : scratch;
  T* to = to_scratch ? scratch : src;
  merge_into(from, half, from + half, n - half, to, cmp);
}

}  // namespace detail

// Sort in place (stable).
template <typename T, typename Cmp = std::less<T>>
void sort_inplace(parray<T>& a, Cmp cmp = Cmp{}) {
  std::size_t n = a.size();
  if (n <= 1) return;
  if (n <= detail::kSeqSortCutoff) {
    std::stable_sort(a.begin(), a.end(), cmp);
    return;
  }
  auto scratch = parray<T>::uninitialized(n);
  // sort_rec with to_scratch=false leaves the result in `a`. The scratch
  // elements are constructed by the first merge pass that writes them; for
  // trivially-destructible T (required here) uninitialized reads never
  // happen because merges only read what a previous level wrote.
  static_assert(std::is_trivially_copyable_v<T>,
                "sort_inplace requires trivially copyable elements");
  detail::sort_rec(a.data(), scratch.data(), n, cmp, false);
}

// Sorted copy of any random-access sequence (parray, RAD, ...).
template <typename Seq, typename Cmp = std::less<>>
[[nodiscard]] auto sorted(const Seq& s, Cmp cmp = Cmp{}) {
  using T = std::decay_t<decltype(s[0])>;
  auto out = parray<T>::tabulate(s.size(),
                                 [&](std::size_t i) { return s[i]; });
  sort_inplace(out, cmp);
  return out;
}

}  // namespace pbds::sort
