// primes — all primes below n via a parallel recursive sieve (§6: primes
// less than 100M).
//
// Recursively compute the primes up to sqrt(n), then mark composites by
// flattening, for each such prime p, the delayed sequence of its multiples
// <2p, 3p, ...> up to n, and finally filter the unmarked indices. flatten
// and filter are BID operations: the composites sequence (size ~ n ln ln n)
// and the pre-filter index sequence are never materialized in the delayed
// version.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>

#include "array/parray.hpp"

namespace pbds::bench {

template <typename P>
parray<std::int64_t> primes(std::int64_t n) {  // primes in [2, n]
  if (n < 2) return {};
  if (n < 8) {
    // Base case: tiny sieve, sequentially.
    std::int64_t small[] = {2, 3, 5, 7};
    std::size_t cnt = 0;
    while (cnt < 4 && small[cnt] <= n) ++cnt;
    const std::int64_t* p = small;
    return parray<std::int64_t>::tabulate(
        cnt, [p](std::size_t i) { return p[i]; });
  }
  auto sqrt_primes =
      primes<P>(static_cast<std::int64_t>(std::sqrt(static_cast<double>(n))));
  auto flags = parray<std::atomic<std::uint8_t>>::tabulate(
      static_cast<std::size_t>(n) + 1, [](std::size_t) { return 1; });
  auto composites = P::flatten(P::map(
      [n](std::int64_t p) {
        auto k = static_cast<std::size_t>(n / p - 1);
        return P::tabulate(k, [p](std::size_t m) {
          return static_cast<std::int64_t>(m + 2) * p;
        });
      },
      P::view(sqrt_primes)));
  P::apply_each(composites, [&flags](std::int64_t c) {
    flags[static_cast<std::size_t>(c)].store(0, std::memory_order_relaxed);
  });
  return P::to_array(P::filter(
      [&flags](std::int64_t i) {
        return flags[static_cast<std::size_t>(i)].load(
                   std::memory_order_relaxed) != 0;
      },
      P::tabulate(static_cast<std::size_t>(n) - 1, [](std::size_t i) {
        return static_cast<std::int64_t>(i) + 2;
      })));
}

// Deterministic count for validation (prime-counting values).
inline std::size_t reference_prime_count(std::int64_t n) {
  if (n < 2) return 0;
  std::vector<std::uint8_t> sieve(static_cast<std::size_t>(n) + 1, 1);
  std::size_t count = 0;
  for (std::int64_t i = 2; i <= n; ++i) {
    if (!sieve[static_cast<std::size_t>(i)]) continue;
    ++count;
    for (std::int64_t j = i * i; j <= n; j += i)
      sieve[static_cast<std::size_t>(j)] = 0;
  }
  return count;
}

}  // namespace pbds::bench
