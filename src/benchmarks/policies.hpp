// Library policies — the evaluation's three library versions (Fig. 12)
// behind one compile-time interface.
//
// Every benchmark kernel in src/benchmarks/ is written once as a template
// over a policy P and instantiated three times:
//
//   array_policy  (A)    — eager arrays, no fusion        (src/array)
//   rad_policy    (R)    — RAD-only fusion                (src/rad)
//   delay_policy  (Ours) — full RAD + BID fusion          (src/core)
//
// This mirrors the paper artifact's BENCHMARK.{array,rad,delay}.cpp files
// while guaranteeing the three versions differ *only* in the sequence
// library — the comparison measures the library, not incidental coding
// differences.
//
// The policy surface is the paper's Fig. 1 interface plus the conversion
// functions of Fig. 9 (`to_array`, `force`) and `apply_each`.
#pragma once

#include <cstddef>
#include <utility>

#include "array/array_ops.hpp"
#include "array/parray.hpp"
#include "core/delayed.hpp"
#include "rad/rad_ops.hpp"

namespace pbds {

// --- A: eager arrays, no fusion ---------------------------------------------

struct array_policy {
  static constexpr const char* name = "array";
  static constexpr const char* abbr = "A";

  template <typename T>
  static const parray<T>& view(const parray<T>& a) {
    return a;
  }
  template <typename Seq>
  static std::size_t length(const Seq& s) {
    return s.size();
  }
  template <typename F>
  static auto tabulate(std::size_t n, F f) {
    return array_ops::tabulate(n, std::move(f));
  }
  static auto iota(std::size_t n) { return array_ops::iota(n); }
  template <typename F, typename Seq>
  static auto map(F f, const Seq& s) {
    return array_ops::map(std::move(f), s);
  }
  template <typename S1, typename S2>
  static auto zip(const S1& a, const S2& b) {
    return array_ops::zip(a, b);
  }
  template <typename F, typename T, typename Seq>
  static T reduce(F f, T z, const Seq& s) {
    return array_ops::reduce(f, z, s);
  }
  template <typename F, typename T, typename Seq>
  static auto scan(F f, T z, const Seq& s) {
    return array_ops::scan(f, z, s);
  }
  template <typename F, typename T, typename Seq>
  static auto scan_inclusive(F f, T z, const Seq& s) {
    return array_ops::scan_inclusive(f, z, s);
  }
  template <typename P, typename Seq>
  static auto filter(P p, const Seq& s) {
    return array_ops::filter(p, s);
  }
  template <typename F, typename Seq>
  static auto filter_op(F f, const Seq& s) {
    return array_ops::filter_op(f, s);
  }
  template <typename Seq>
  static auto flatten(const Seq& s) {
    return array_ops::flatten(s);
  }
  template <typename Seq, typename G>
  static void apply_each(const Seq& s, const G& g) {
    array_ops::apply_each(s, g);
  }
  // Already materialized: move through (rvalues) or deep-copy (lvalues).
  template <typename T>
  static parray<T> to_array(parray<T>&& a) {
    return std::move(a);
  }
  template <typename T>
  static parray<T> to_array(const parray<T>& a) {
    return a.clone();
  }
};

// --- R: RAD-only fusion -------------------------------------------------------

struct rad_policy {
  static constexpr const char* name = "rad";
  static constexpr const char* abbr = "R";

  template <typename T>
  static auto view(const parray<T>& a) {
    return radlib::view(a);
  }
  template <typename Seq>
  static std::size_t length(const Seq& s) {
    return radlib::length(s);
  }
  template <typename F>
  static auto tabulate(std::size_t n, F f) {
    return radlib::tabulate(n, std::move(f));
  }
  static auto iota(std::size_t n) { return radlib::iota(n); }
  template <typename F, typename Seq>
  static auto map(F f, const Seq& s) {
    return radlib::map(std::move(f), s);
  }
  template <typename S1, typename S2>
  static auto zip(const S1& a, const S2& b) {
    return radlib::zip(a, b);
  }
  template <typename F, typename T, typename Seq>
  static T reduce(F f, T z, const Seq& s) {
    return radlib::reduce(f, z, s);
  }
  template <typename F, typename T, typename Seq>
  static auto scan(F f, T z, const Seq& s) {
    return radlib::scan(f, z, s);
  }
  template <typename F, typename T, typename Seq>
  static auto scan_inclusive(F f, T z, const Seq& s) {
    return radlib::scan_inclusive(f, z, s);
  }
  template <typename P, typename Seq>
  static auto filter(P p, const Seq& s) {
    return radlib::filter(p, s);
  }
  template <typename F, typename Seq>
  static auto filter_op(F f, const Seq& s) {
    return radlib::filter_op(f, s);
  }
  template <typename Seq>
  static auto flatten(const Seq& s) {
    return radlib::flatten(s);
  }
  template <typename Seq, typename G>
  static void apply_each(const Seq& s, const G& g) {
    radlib::apply_each(s, g);
  }
  template <typename Seq>
  static auto to_array(Seq&& s) {
    return radlib::to_array(s);
  }
};

// --- Ours: full RAD + BID fusion ------------------------------------------------

struct delay_policy {
  static constexpr const char* name = "delay";
  static constexpr const char* abbr = "Ours";

  template <typename T>
  static auto view(const parray<T>& a) {
    return delayed::view(a);
  }
  template <typename Seq>
  static std::size_t length(const Seq& s) {
    return delayed::length(s);
  }
  template <typename F>
  static auto tabulate(std::size_t n, F f) {
    return delayed::tabulate(n, std::move(f));
  }
  static auto iota(std::size_t n) { return delayed::iota(n); }
  template <typename F, typename Seq>
  static auto map(F f, const Seq& s) {
    return delayed::map(std::move(f), s);
  }
  template <typename S1, typename S2>
  static auto zip(const S1& a, const S2& b) {
    return delayed::zip(a, b);
  }
  template <typename F, typename T, typename Seq>
  static T reduce(F f, T z, const Seq& s) {
    return delayed::reduce(f, z, s);
  }
  template <typename F, typename T, typename Seq>
  static auto scan(F f, T z, const Seq& s) {
    return delayed::scan(f, z, s);
  }
  template <typename F, typename T, typename Seq>
  static auto scan_inclusive(F f, T z, const Seq& s) {
    return delayed::scan_inclusive(f, z, s);
  }
  template <typename P, typename Seq>
  static auto filter(P p, const Seq& s) {
    return delayed::filter(p, s);
  }
  template <typename F, typename Seq>
  static auto filter_op(F f, const Seq& s) {
    return delayed::filter_op(f, s);
  }
  template <typename Seq>
  static auto flatten(const Seq& s) {
    return delayed::flatten(s);
  }
  template <typename Seq, typename G>
  static void apply_each(const Seq& s, const G& g) {
    delayed::apply_each(s, g);
  }
  template <typename Seq>
  static auto to_array(Seq&& s) {
    return delayed::to_array(s);
  }
};

}  // namespace pbds
