// grep — find all lines containing a pattern (§6: 843M chars, 28M lines,
// ~3% matching).
//
// Line starts are materialized once (random access to the next line start
// is needed to delimit lines); each line is then tested with a sequential
// substring search via a fused filterOp, and the matches are reduced to
// (count, bytes, hash). A line spans [start_k, start_{k+1}) and includes
// its trailing newline.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "array/parray.hpp"
#include "text/text.hpp"

namespace pbds::bench {

struct grep_result {
  std::uint64_t matching_lines = 0;
  std::uint64_t matching_bytes = 0;
  std::uint64_t hash = 0;
  friend bool operator==(const grep_result&, const grep_result&) = default;
};

template <typename P>
grep_result grep(const parray<char>& a, std::string_view pattern) {
  std::size_t n = a.size();
  const char* s = a.data();
  auto line_starts = P::to_array(P::filter(
      [s](std::size_t i) { return i == 0 || s[i - 1] == '\n'; }, P::iota(n)));
  std::size_t num_lines = line_starts.size();
  const std::size_t* ls = line_starts.data();
  auto matches = P::filter_op(
      [s, ls, num_lines, n,
       pattern](std::size_t k) -> std::optional<std::pair<std::size_t,
                                                          std::size_t>> {
        std::size_t lo = ls[k];
        std::size_t hi = k + 1 < num_lines ? ls[k + 1] : n;
        if (text::contains(s, lo, hi, pattern))
          return std::pair<std::size_t, std::size_t>(lo, hi);
        return std::nullopt;
      },
      P::iota(num_lines));
  auto contribs = P::map(
      [](const std::pair<std::size_t, std::size_t>& line) {
        return grep_result{1, line.second - line.first,
                           line.first * 2654435761u};
      },
      matches);
  return P::reduce(
      [](const grep_result& x, const grep_result& y) {
        return grep_result{x.matching_lines + y.matching_lines,
                           x.matching_bytes + y.matching_bytes,
                           x.hash + y.hash};
      },
      grep_result{}, contribs);
}

// Sequential reference with identical line segmentation.
inline grep_result grep_reference(const parray<char>& a,
                                  std::string_view pattern) {
  grep_result r;
  std::size_t n = a.size();
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0 || a[i - 1] == '\n') starts.push_back(i);
  }
  for (std::size_t k = 0; k < starts.size(); ++k) {
    std::size_t lo = starts[k];
    std::size_t hi = k + 1 < starts.size() ? starts[k + 1] : n;
    if (text::contains(a.data(), lo, hi, pattern)) {
      r.matching_lines += 1;
      r.matching_bytes += hi - lo;
      r.hash += lo * 2654435761u;
    }
  }
  return r;
}

}  // namespace pbds::bench
