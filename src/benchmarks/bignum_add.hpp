// bignum-add — addition of two base-256 bignums (§6: 500M bytes each).
//
// Pipeline: zip -> map (digit sums & carry symbols) -> scan (carry
// resolution) -> zip -> map (apply carries) -> toArray. The scan fuses with
// the symbol map on its input side and with the resolution map on its
// output side, so the fused version writes only the final digits; the
// array version materializes sums, symbols, and carries separately.
//
// Note the deliberate recompute: the digit sums are evaluated twice (once
// in scan phase 1, once when resolving), the same map-recompute tradeoff
// Fig. 5 shows for bestcut.
#pragma once

#include <cstdint>
#include <utility>

#include "array/parray.hpp"
#include "bignum/bignum.hpp"

namespace pbds::bench {

using bignum::carry;
using bignum::digit;

struct bignum_sum {
  parray<digit> digits;  // low n digits, little-endian
  digit carry_out = 0;   // final carry (the (n+1)-th digit)
};

// a + b for equal-length bignums.
template <typename P>
bignum_sum bignum_add(const parray<digit>& a, const parray<digit>& b) {
  auto sums = P::map(
      [](const std::pair<digit, digit>& dd) -> unsigned {
        return static_cast<unsigned>(dd.first) + dd.second;
      },
      P::zip(P::view(a), P::view(b)));
  auto symbols = P::map([](unsigned s) { return bignum::classify(s); }, sums);
  // The scan seed must be the identity of combine, which is PROPAGATE: a
  // prefix that is all propagates resolves to "no incoming carry", exactly
  // the boundary condition at position 0 (resolve only adds on GENERATE).
  auto [carries, last] =
      P::scan([](carry x, carry y) { return bignum::combine(x, y); },
              carry::propagate, symbols);
  auto digits = P::map(
      [](const std::pair<unsigned, carry>& sc) {
        return bignum::resolve(sc.first, sc.second);
      },
      P::zip(sums, carries));
  return bignum_sum{P::to_array(std::move(digits)),
                    static_cast<digit>(last == carry::generate ? 1 : 0)};
}

}  // namespace pbds::bench
