// linefit — least-squares line through n 2D points (§6: 500M points).
//
// Two map+reduce passes: one for the means, one for the centered moments.
// With RAD fusion each pass reads the input once and writes O(#blocks);
// the array version materializes a pair array per pass (§6.2 uses this
// benchmark for its memory-bandwidth analysis: 2 passes x 16 bytes/point).
#pragma once

#include <cstddef>
#include <utility>

#include "array/parray.hpp"
#include "geom/geom.hpp"
#include "random/rng.hpp"

namespace pbds::bench {

struct line {
  double slope = 0;
  double intercept = 0;
};

// Points scattered around y = 2x + 1 with noise.
inline parray<geom::point2d> linefit_input(std::size_t n,
                                           std::uint64_t seed = 19) {
  random::rng gen(seed);
  return parray<geom::point2d>::tabulate(n, [&](std::size_t i) {
    double x = gen.uniform(2 * i, -10.0, 10.0);
    double noise = gen.uniform(2 * i + 1, -0.5, 0.5);
    return geom::point2d{x, 2.0 * x + 1.0 + noise};
  });
}

template <typename P>
line linefit(const parray<geom::point2d>& pts) {
  std::size_t n = pts.size();
  auto add2 = [](const std::pair<double, double>& a,
                 const std::pair<double, double>& b) {
    return std::pair<double, double>(a.first + b.first, a.second + b.second);
  };
  auto sums = P::reduce(
      add2, std::pair<double, double>(0.0, 0.0),
      P::map([](const geom::point2d& p) {
        return std::pair<double, double>(p.x, p.y);
      },
             P::view(pts)));
  double mx = sums.first / static_cast<double>(n);
  double my = sums.second / static_cast<double>(n);
  auto moments = P::reduce(
      add2, std::pair<double, double>(0.0, 0.0),
      P::map(
          [mx, my](const geom::point2d& p) {
            return std::pair<double, double>((p.x - mx) * (p.x - mx),
                                             (p.x - mx) * (p.y - my));
          },
          P::view(pts)));
  double slope = moments.first == 0.0 ? 0.0 : moments.second / moments.first;
  return line{slope, my - slope * mx};
}

inline line linefit_reference(const parray<geom::point2d>& pts) {
  double sx = 0, sy = 0;
  std::size_t n = pts.size();
  for (std::size_t i = 0; i < n; ++i) {
    sx += pts[i].x;
    sy += pts[i].y;
  }
  double mx = sx / static_cast<double>(n), my = sy / static_cast<double>(n);
  double stt = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    stt += (pts[i].x - mx) * (pts[i].x - mx);
    sxy += (pts[i].x - mx) * (pts[i].y - my);
  }
  double slope = stt == 0.0 ? 0.0 : sxy / stt;
  return line{slope, my - slope * mx};
}

}  // namespace pbds::bench
