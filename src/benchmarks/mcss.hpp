// mcss — maximum contiguous subsequence sum (§6: 500M 64-bit integers).
//
// The classic 4-tuple monoid (total, best prefix, best suffix, best
// anywhere) reduced over the input; with RAD fusion this is one read pass
// and O(1) writes — the paper reports this benchmark moving from O(n)
// reads+writes to O(n) reads + O(1) writes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "array/parray.hpp"
#include "random/rng.hpp"

namespace pbds::bench {

struct mcss_state {
  std::int64_t total;
  std::int64_t best_prefix;
  std::int64_t best_suffix;
  std::int64_t best;
  friend bool operator==(const mcss_state&, const mcss_state&) = default;
};

// "Minus infinity" that is safe to add to itself without overflow.
inline constexpr std::int64_t mcss_neg_inf =
    std::numeric_limits<std::int64_t>::min() / 4;

inline constexpr mcss_state mcss_identity{0, mcss_neg_inf, mcss_neg_inf,
                                          mcss_neg_inf};

constexpr mcss_state mcss_combine(const mcss_state& a,
                                  const mcss_state& b) noexcept {
  return mcss_state{
      a.total + b.total, std::max(a.best_prefix, a.total + b.best_prefix),
      std::max(b.best_suffix, b.total + a.best_suffix),
      std::max({a.best, b.best, a.best_suffix + b.best_prefix})};
}

constexpr mcss_state mcss_embed(std::int64_t v) noexcept {
  return mcss_state{v, v, v, v};
}

// Values in [-100, 100] so the maximum subsequence is nontrivial.
inline parray<std::int64_t> mcss_input(std::size_t n,
                                       std::uint64_t seed = 23) {
  random::rng gen(seed);
  return parray<std::int64_t>::tabulate(n, [&](std::size_t i) {
    return static_cast<std::int64_t>(gen.below(i, 201)) - 100;
  });
}

template <typename P>
std::int64_t mcss(const parray<std::int64_t>& a) {
  auto states = P::map([](std::int64_t v) { return mcss_embed(v); },
                       P::view(a));
  return P::reduce(
             [](const mcss_state& x, const mcss_state& y) {
               return mcss_combine(x, y);
             },
             mcss_identity, states)
      .best;
}

// Kadane's algorithm (nonempty subsequences).
inline std::int64_t mcss_reference(const parray<std::int64_t>& a) {
  std::int64_t best = mcss_neg_inf, cur = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cur = std::max(a[i], cur + a[i]);
    best = std::max(best, cur);
  }
  return best;
}

}  // namespace pbds::bench
