// raycast — first-hit ray casting against a triangle soup, the
// ray-triangle intersection workload the paper reports improving in PBBS
// (§1). Nested parallelism in the sparse-mxv mold: an outer tabulate over
// rays, an inner map+reduce over the triangles computing the nearest hit.
// With fusion, the per-ray sequence of candidate hit distances is never
// materialized; the eager baseline allocates an n_triangles-sized
// temporary per ray.
#pragma once

#include <cstdint>
#include <limits>

#include "array/parray.hpp"
#include "geom/geom3d.hpp"

namespace pbds::bench {

inline constexpr double kNoHit = std::numeric_limits<double>::infinity();

// Distance to the nearest triangle for each ray (kNoHit if none).
template <typename P>
parray<double> raycast(const parray<geom::ray>& rays,
                       const parray<geom::triangle>& tris) {
  const geom::ray* rp = rays.data();
  const geom::triangle* tp = tris.data();
  std::size_t nt = tris.size();
  return P::to_array(P::tabulate(rays.size(), [rp, tp, nt](std::size_t i) {
    auto hits = P::map(
        [r = rp[i], tp](std::size_t k) {
          auto t = geom::intersect(r, tp[k]);
          return t ? *t : kNoHit;
        },
        P::iota(nt));
    return P::reduce([](double a, double b) { return a < b ? a : b; },
                     kNoHit, hits);
  }));
}

inline std::vector<double> raycast_reference(
    const parray<geom::ray>& rays, const parray<geom::triangle>& tris) {
  std::vector<double> out(rays.size(), kNoHit);
  for (std::size_t i = 0; i < rays.size(); ++i) {
    for (std::size_t k = 0; k < tris.size(); ++k) {
      if (auto t = geom::intersect(rays[i], tris[k])) {
        if (*t < out[i]) out[i] = *t;
      }
    }
  }
  return out;
}

}  // namespace pbds::bench
