// Stream-of-blocks version of bestcut, for the §6.5 comparison (Fig. 16).
//
// "The stream-of-blocks version maintains a small array (of size B, the
// block size) which undergoes these operations [map, scan, map, reduce],
// in that order, before then moving on to the next block. This continues
// iteratively until all blocks have been processed. All parallelism occurs
// within blocks, rather than across blocks."
#pragma once

#include <cstdint>
#include <limits>

#include "array/parray.hpp"
#include "geom/geom.hpp"
#include "sched/parallel.hpp"
#include "sob/stream_of_blocks.hpp"

namespace pbds::bench {

inline double bestcut_sob(const parray<geom::axis_event>& events,
                          std::size_t sob_block) {
  std::size_t n = events.size();
  const geom::axis_event* ev = events.data();
  // The one live block, reused across iterations.
  auto counts = parray<std::uint64_t>::uninitialized(sob_block);
  std::uint64_t* cb = counts.data();
  auto costs = parray<double>::uninitialized(sob_block);
  double* xb = costs.data();

  std::uint64_t running_ends = 0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t lo = 0; lo < n; lo += sob_block) {
    std::size_t len = std::min(sob_block, n - lo);
    // map f: end flags into the block buffer (parallel within block).
    parallel_for(0, len, [&, ev, cb](std::size_t i) {
      cb[i] = ev[lo + i].is_end;
    });
    // scan within the block, seeded with the running total.
    running_ends = sob::range_scan_exclusive(
        cb, len,
        [](std::uint64_t a, std::uint64_t b) { return a + b; },
        running_ends);
    // map g: costs (parallel within block).
    parallel_for(0, len, [&, ev, cb, xb](std::size_t i) {
      xb[i] = geom::sah_cost(ev[lo + i].coord, cb[i], n);
    });
    // reduce h: min within block, folded into the running best.
    double block_min = sob::range_reduce(
        xb, len, [](double a, double b) { return a < b ? a : b; },
        std::numeric_limits<double>::infinity());
    best = best < block_min ? best : block_min;
  }
  return best;
}

}  // namespace pbds::bench
