// wc — count lines, words and bytes, Unix-wc semantics (§6: 500M chars).
//
// One map+reduce over the character indices; the word-start predicate
// peeks at the previous character. RAD fusion makes this a single read
// pass with O(1) writes — the array baseline materializes an n-element
// triple array first.
#pragma once

#include <cstddef>

#include "array/parray.hpp"
#include "text/text.hpp"

namespace pbds::bench {

template <typename P>
text::wc_counts wc(const parray<char>& a) {
  std::size_t n = a.size();
  const char* s = a.data();
  auto contribs = P::map(
      [s](std::size_t i) {
        char c = s[i];
        bool word_start =
            !text::is_space(c) && (i == 0 || text::is_space(s[i - 1]));
        return text::wc_counts{c == '\n' ? 1u : 0u, word_start ? 1u : 0u, 1u};
      },
      P::iota(n));
  return P::reduce(
      [](const text::wc_counts& x, const text::wc_counts& y) {
        return text::wc_counts{x.lines + y.lines, x.words + y.words,
                               x.bytes + y.bytes};
      },
      text::wc_counts{}, contribs);
}

}  // namespace pbds::bench
