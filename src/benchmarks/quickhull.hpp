// quickhull — 2D convex hull of points in a disk (§6: 20M points).
//
// Classic parallel quickhull: find the x-extremes, then recursively (in
// parallel, via fork2join) pick the farthest point from the dividing line
// and keep only the points outside each new edge. filter + reduce dominate;
// with fusion the distance computations feed the reduce/filter directly
// instead of materializing per-level distance arrays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "array/parray.hpp"
#include "geom/geom.hpp"
#include "sched/parallel.hpp"

namespace pbds::bench {

using geom::point2d;

namespace detail {

// Index of the extreme point under `better` (strict), resolved by a
// reduce over (index, key) pairs. Ties break toward the lower index so all
// three libraries agree exactly.
template <typename P, typename Seq, typename Key>
std::size_t arg_extreme(const Seq& pts_seq, std::size_t n, Key key) {
  using pair_t = std::pair<std::size_t, double>;
  auto pairs = P::map(
      [key](const std::pair<std::size_t, point2d>& ip) {
        return pair_t(ip.first, key(ip.second));
      },
      P::zip(P::iota(n), pts_seq));
  auto best = P::reduce(
      [](const pair_t& a, const pair_t& b) {
        if (a.second != b.second) return a.second > b.second ? a : b;
        return a.first <= b.first ? a : b;  // deterministic ties
      },
      pair_t(static_cast<std::size_t>(-1),
             -std::numeric_limits<double>::infinity()),
      pairs);
  return best.first;
}

// Count hull points strictly outside segment l->r among `pts` (all of
// which lie on the outside half-plane of l->r), excluding l and r.
template <typename P>
std::size_t hull_rec(const parray<point2d>& pts, point2d l, point2d r) {
  if (pts.size() == 0) return 0;
  std::size_t mid = arg_extreme<P>(P::view(pts), pts.size(),
                                   [l, r](const point2d& p) {
                                     return geom::line_distance(l, r, p);
                                   });
  point2d m = pts[mid];
  auto left = P::to_array(P::filter(
      [l, m](const point2d& p) { return geom::line_distance(l, m, p) > 0; },
      P::view(pts)));
  auto right = P::to_array(P::filter(
      [m, r](const point2d& p) { return geom::line_distance(m, r, p) > 0; },
      P::view(pts)));
  std::size_t cl = 0, cr = 0;
  fork2join([&] { cl = hull_rec<P>(left, l, m); },
            [&] { cr = hull_rec<P>(right, m, r); });
  return 1 + cl + cr;
}

}  // namespace detail

// Number of points on the convex hull.
template <typename P>
std::size_t quickhull(const parray<point2d>& pts) {
  std::size_t n = pts.size();
  if (n < 3) return n;
  std::size_t imin = detail::arg_extreme<P>(
      P::view(pts), n, [](const point2d& p) { return -p.x; });
  std::size_t imax = detail::arg_extreme<P>(
      P::view(pts), n, [](const point2d& p) { return p.x; });
  point2d l = pts[imin], r = pts[imax];
  auto upper = P::to_array(P::filter(
      [l, r](const point2d& p) { return geom::line_distance(l, r, p) > 0; },
      P::view(pts)));
  auto lower = P::to_array(P::filter(
      [l, r](const point2d& p) { return geom::line_distance(r, l, p) > 0; },
      P::view(pts)));
  std::size_t cu = 0, cd = 0;
  fork2join([&] { cu = detail::hull_rec<P>(upper, l, r); },
            [&] { cd = detail::hull_rec<P>(lower, r, l); });
  return 2 + cu + cd;
}

// Reference: Andrew's monotone chain, O(n log n), strict turns (collinear
// points excluded, matching quickhull's strict > 0 tests).
inline std::size_t quickhull_reference(const parray<point2d>& pts) {
  std::size_t n = pts.size();
  if (n < 3) return n;
  std::vector<point2d> p(pts.begin(), pts.end());
  std::sort(p.begin(), p.end(), [](const point2d& a, const point2d& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  std::vector<point2d> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower
    while (k >= 2 && geom::cross(hull[k - 2], hull[k - 1], p[i]) <= 0) --k;
    hull[k++] = p[i];
  }
  for (std::size_t i = n - 1, t = k + 1; i-- > 0;) {  // upper
    while (k >= t && geom::cross(hull[k - 2], hull[k - 1], p[i]) <= 0) --k;
    hull[k++] = p[i];
  }
  return k - 1;
}

}  // namespace pbds::bench
