// integrate — midpoint-rule integral of sqrt(1/x) over [1, 1000] with n
// sample points (§6). Pure RAD fusion: tabulate -> map -> reduce touches
// O(1) memory beyond the accumulators; the array version materializes the
// n-point sample array (the paper's headline 250x space reduction).
#pragma once

#include <cmath>
#include <cstddef>

#include "array/parray.hpp"

namespace pbds::bench {

template <typename P>
double integrate(std::size_t n, double lo = 1.0, double hi = 1000.0) {
  double dx = (hi - lo) / static_cast<double>(n);
  auto xs = P::map(
      [lo, dx](std::size_t i) {
        return lo + (static_cast<double>(i) + 0.5) * dx;
      },
      P::iota(n));
  auto fs = P::map([](double x) { return std::sqrt(1.0 / x); }, xs);
  return dx *
         P::reduce([](double a, double b) { return a + b; }, 0.0, fs);
}

// Closed form of the integral, for sanity bounds in tests.
inline double integrate_exact(double lo = 1.0, double hi = 1000.0) {
  return 2.0 * (std::sqrt(hi) - std::sqrt(lo));
}

}  // namespace pbds::bench
