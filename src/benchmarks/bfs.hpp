// bfs — forward breadth-first search with sequences (§3, Fig. 6).
//
// Each round maps outPairs over the frontier (a nested map producing
// (parent, neighbor) pairs), flattens, then filterOps with a
// compare-and-swap tryVisit. With block-delayed sequences the flattened
// M-sized edge sequence is never instantiated and the filter packs within
// blocks only — the §5.1 analysis gives O(N + M/B) total allocation versus
// O(N + M) for the array version.
#pragma once

#include <atomic>
#include <optional>
#include <utility>

#include "array/parray.hpp"
#include "graph/graph.hpp"

namespace pbds::bench {

using graph::csr_graph;
using graph::kNoVertex;
using graph::vertex;

// Returns the parent array (atomics; kNoVertex = unvisited).
template <typename P>
parray<std::atomic<vertex>> bfs(const csr_graph& g, vertex source) {
  std::size_t n = g.num_vertices();
  auto parent = parray<std::atomic<vertex>>::tabulate(
      n, [](std::size_t) { return kNoVertex; });
  parent[source].store(source, std::memory_order_relaxed);

  auto out_pairs = [&g](vertex u) {
    const vertex* ngh = g.neighbors(u);
    return P::tabulate(g.degree(u), [u, ngh](std::size_t k) {
      return std::pair<vertex, vertex>(u, ngh[k]);
    });
  };
  auto try_visit =
      [&parent](const std::pair<vertex, vertex>& e) -> std::optional<vertex> {
    vertex expected = kNoVertex;
    if (parent[e.second].compare_exchange_strong(expected, e.first,
                                                 std::memory_order_relaxed)) {
      return e.second;
    }
    return std::nullopt;
  };

  parray<vertex> frontier =
      parray<vertex>::tabulate(1, [source](std::size_t) { return source; });
  while (frontier.size() > 0) {
    auto edges = P::flatten(P::map(out_pairs, P::view(frontier)));
    frontier = P::to_array(P::filter_op(try_visit, edges));
  }
  return parent;
}

}  // namespace pbds::bench
