// bestcut — kd-tree best cut via the surface-area heuristic (§3, Fig. 4).
//
// Pipeline: map f -> scan (+) -> map g -> reduce h. This is the paper's
// canonical BID example (Fig. 5): fused, it makes two passes over the
// input (phase 1 of the scan, then phase 3 fused through the second map
// into the reduce) with O(#blocks) writes; unfused it makes 8n + O(b)
// reads+writes.
//
// Input: n axis events sorted by coordinate, each flagged if a bounding
// box *ends* there. The cut cost at event i weighs boxes fully left of the
// cut by the left extent and the rest by the right extent; the benchmark
// returns the minimum cost over all candidate cuts.
#pragma once

#include <cstdint>
#include <limits>

#include "array/parray.hpp"
#include "geom/geom.hpp"

namespace pbds::bench {

using geom::axis_event;

inline parray<axis_event> bestcut_input(std::size_t n,
                                        std::uint64_t seed = 13) {
  return geom::bestcut_events(n, seed);
}

template <typename P>
double bestcut(const parray<axis_event>& events) {
  std::size_t n = events.size();
  auto is_end = P::map(
      [](const axis_event& e) -> std::uint64_t { return e.is_end; },
      P::view(events));
  auto [end_counts, total] = P::scan(
      [](std::uint64_t a, std::uint64_t b) { return a + b; },
      std::uint64_t{0}, is_end);
  (void)total;
  auto costs = P::map(
      [n](const std::pair<std::uint64_t, axis_event>& ce) {
        return geom::sah_cost(ce.second.coord, ce.first, n);
      },
      P::zip(end_counts, P::view(events)));
  return P::reduce([](double a, double b) { return a < b ? a : b; },
                   std::numeric_limits<double>::infinity(), costs);
}

// Sequential reference.
inline double bestcut_reference(const parray<axis_event>& events) {
  std::size_t n = events.size();
  std::uint64_t ends = 0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    double c = geom::sah_cost(events[i].coord, ends, n);
    if (c < best) best = c;
    ends += events[i].is_end;
  }
  return best;
}

}  // namespace pbds::bench
