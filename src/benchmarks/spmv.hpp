// sparse-mxv — CSR sparse matrix x dense vector (§6: 2M rows, 200M
// nonzeros, ~100 nnz/row).
//
// Nested parallelism: an outer tabulate over rows, each row an inner
// map+reduce over its nonzeros. The inner arrays are tiny (~100 entries),
// so delaying barely changes *space* (the paper calls this out in §6.2)
// but still removes the per-row writes and inner-map allocations.
#pragma once

#include <cstdint>

#include "array/parray.hpp"
#include "random/rng.hpp"

namespace pbds::bench {

struct csr_matrix {
  parray<std::uint64_t> offsets;  // rows + 1
  parray<std::uint32_t> cols;
  parray<double> vals;

  [[nodiscard]] std::size_t rows() const { return offsets.size() - 1; }
  [[nodiscard]] std::size_t nnz() const { return vals.size(); }
};

// Random matrix with row degrees uniform in [avg/2, 3*avg/2).
inline csr_matrix spmv_input(std::size_t rows, std::size_t avg_nnz,
                             std::uint64_t seed = 29) {
  random::rng deg_gen(seed);
  auto degrees = parray<std::uint64_t>::tabulate(rows, [&](std::size_t i) {
    return avg_nnz / 2 + deg_gen.below(i, avg_nnz);
  });
  auto offsets = parray<std::uint64_t>::uninitialized(rows + 1);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    offsets[i] = acc;
    acc += degrees[i];
  }
  offsets[rows] = acc;
  random::rng col_gen = deg_gen.split(1);
  random::rng val_gen = deg_gen.split(2);
  auto cols = parray<std::uint32_t>::tabulate(acc, [&](std::size_t k) {
    return static_cast<std::uint32_t>(col_gen.below(k, rows));
  });
  auto vals = parray<double>::tabulate(acc, [&](std::size_t k) {
    return val_gen.uniform(k, -1.0, 1.0);
  });
  return csr_matrix{std::move(offsets), std::move(cols), std::move(vals)};
}

inline parray<double> spmv_vector(std::size_t n, std::uint64_t seed = 31) {
  random::rng gen(seed);
  return parray<double>::tabulate(
      n, [&](std::size_t i) { return gen.uniform(i, -1.0, 1.0); });
}

template <typename P>
parray<double> spmv(const csr_matrix& m, const parray<double>& x) {
  const std::uint64_t* off = m.offsets.data();
  const std::uint32_t* cols = m.cols.data();
  const double* vals = m.vals.data();
  const double* xv = x.data();
  return P::to_array(P::tabulate(m.rows(), [=](std::size_t i) {
    std::size_t lo = off[i], d = off[i + 1] - off[i];
    auto products = P::map(
        [cols, vals, xv](std::size_t k) { return vals[k] * xv[cols[k]]; },
        P::tabulate(d, [lo](std::size_t t) { return lo + t; }));
    return P::reduce([](double a, double b) { return a + b; }, 0.0,
                     products);
  }));
}

inline std::vector<double> spmv_reference(const csr_matrix& m,
                                          const parray<double>& x) {
  std::vector<double> y(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double acc = 0;
    for (std::uint64_t k = m.offsets[i]; k < m.offsets[i + 1]; ++k)
      acc += m.vals[k] * x[m.cols[k]];
    y[i] = acc;
  }
  return y;
}

}  // namespace pbds::bench
