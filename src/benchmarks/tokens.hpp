// tokens — split text into words (§6: 500M characters, average word
// length 7).
//
// Word starts and word ends are found with two filters over the index
// space; zipping them gives (start, end) pairs — with block-delayed
// sequences both filters keep their survivors packed per block and the zip
// fuses blockwise, so no index array of size n is ever materialized. The
// kernel reduces the word list to (count, total length, positional hash) so
// the three versions can be compared exactly.
#pragma once

#include <cstdint>
#include <utility>

#include "array/parray.hpp"
#include "text/text.hpp"

namespace pbds::bench {

struct tokens_result {
  std::uint64_t count = 0;
  std::uint64_t total_len = 0;
  std::uint64_t hash = 0;
  friend bool operator==(const tokens_result&, const tokens_result&) = default;
};

template <typename P>
tokens_result tokens(const parray<char>& text) {
  std::size_t n = text.size();
  const char* s = text.data();
  auto starts = P::filter(
      [s](std::size_t i) {
        return !text::is_space(s[i]) && (i == 0 || text::is_space(s[i - 1]));
      },
      P::iota(n));
  auto ends = P::filter(
      [s, n](std::size_t j) {
        return !text::is_space(s[j - 1]) && (j == n || text::is_space(s[j]));
      },
      P::tabulate(n, [](std::size_t i) { return i + 1; }));
  auto words = P::zip(starts, ends);
  auto contribs = P::map(
      [s](const std::pair<std::size_t, std::size_t>& w) {
        std::uint64_t len = w.second - w.first;
        std::uint64_t h = static_cast<std::uint64_t>(
                              static_cast<unsigned char>(s[w.first])) *
                          (w.first + 1);
        return tokens_result{1, len, h};
      },
      words);
  return P::reduce(
      [](const tokens_result& a, const tokens_result& b) {
        return tokens_result{a.count + b.count, a.total_len + b.total_len,
                             a.hash + b.hash};
      },
      tokens_result{}, contribs);
}

// Sequential reference.
inline tokens_result tokens_reference(const parray<char>& text) {
  tokens_result r;
  std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    bool start = !text::is_space(text[i]) &&
                 (i == 0 || text::is_space(text[i - 1]));
    if (!start) continue;
    std::size_t j = i;
    while (j < n && !text::is_space(text[j])) ++j;
    r.count += 1;
    r.total_len += j - i;
    r.hash += static_cast<std::uint64_t>(
                  static_cast<unsigned char>(text[i])) *
              (i + 1);
  }
  return r;
}

}  // namespace pbds::bench
