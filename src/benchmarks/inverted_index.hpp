// inverted-index — building an inverted index, one of the workloads the
// paper reports improving inside PBBS with block-delayed sequences (§1:
// "applied to improve ... inverted indices").
//
// Each newline-terminated line of the corpus is a document. The kernel:
//   1. computes each position's document id with an inclusive scan of the
//      newline indicator (BID),
//   2. zips the ids with positions and filterOps the word starts into
//      (first-letter bucket, document id) postings — the flattened
//      postings stream is never materialized,
//   3. accumulates per-bucket posting counts and checksums via an
//      effectful fused traversal.
//
// The whole thing is scan -> zip -> filterOp -> apply, i.e. every fusion
// feature at once on a realistic text-indexing workload.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

#include "array/parray.hpp"
#include "text/text.hpp"

namespace pbds::bench {

struct index_bucket {
  std::uint64_t postings = 0;  // number of (word, doc) postings
  std::uint64_t doc_hash = 0;  // order-independent checksum of doc ids
  friend bool operator==(const index_bucket&, const index_bucket&) = default;
};

using inverted_index = std::array<index_bucket, 26>;

template <typename P>
inverted_index build_index(const parray<char>& corpus) {
  std::size_t n = corpus.size();
  const char* s = corpus.data();
  // Document id of position i = number of newlines at positions < i, which
  // is the EXCLUSIVE scan of the newline indicator.
  auto is_nl = P::map(
      [s](std::size_t i) -> std::uint32_t { return s[i] == '\n' ? 1 : 0; },
      P::iota(n));
  auto [docids, num_docs] = P::scan(
      [](std::uint32_t a, std::uint32_t b) { return a + b; },
      std::uint32_t{0}, is_nl);
  (void)num_docs;
  // (bucket, doc) postings at word starts.
  auto postings = P::filter_op(
      [s, n](const std::pair<std::size_t, std::uint32_t>& pos_doc)
          -> std::optional<std::pair<std::uint8_t, std::uint32_t>> {
        std::size_t i = pos_doc.first;
        char c = s[i];
        bool start = !text::is_space(c) &&
                     (i == 0 || text::is_space(s[i - 1]));
        if (!start || c < 'a' || c > 'z') return std::nullopt;
        return std::pair<std::uint8_t, std::uint32_t>(
            static_cast<std::uint8_t>(c - 'a'), pos_doc.second);
      },
      P::zip(P::iota(n), docids));
  // Accumulate the index. Fused traversal; atomics because blocks run in
  // parallel. The doc hash uses a commutative combine so the result is
  // independent of traversal order.
  std::array<std::atomic<std::uint64_t>, 26> counts{};
  std::array<std::atomic<std::uint64_t>, 26> hashes{};
  P::apply_each(postings,
                [&](const std::pair<std::uint8_t, std::uint32_t>& bd) {
                  counts[bd.first].fetch_add(1, std::memory_order_relaxed);
                  hashes[bd.first].fetch_add(
                      (bd.second + 1) * 0x9e3779b97f4a7c15ull,
                      std::memory_order_relaxed);
                });
  inverted_index out{};
  for (int b = 0; b < 26; ++b) {
    out[b] = index_bucket{counts[b].load(), hashes[b].load()};
  }
  return out;
}

inline inverted_index index_reference(const parray<char>& corpus) {
  inverted_index out{};
  std::size_t n = corpus.size();
  std::uint32_t doc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    char c = corpus[i];
    bool start = !text::is_space(c) &&
                 (i == 0 || text::is_space(corpus[i - 1]));
    if (start && c >= 'a' && c <= 'z') {
      auto b = static_cast<std::size_t>(c - 'a');
      out[b].postings += 1;
      out[b].doc_hash += (doc + 1) * 0x9e3779b97f4a7c15ull;
    }
    if (c == '\n') ++doc;
  }
  return out;
}

}  // namespace pbds::bench
