// linearrec — solve the linear recurrence R_i = x_i * R_{i-1} + y_i
// (§6: 500M pairs of doubles).
//
// Each input pair is an affine map r -> x*r + y; composing them left to
// right with an inclusive scan gives the prefix composition, whose constant
// term evaluated at R_{-1} = 0 is R_i. With BIDs the scan's phase 3 fuses
// with the final projection map into the output write, so the (16-byte)
// coefficient pairs are never stored — only the 8-byte results.
#pragma once

#include <cstddef>
#include <utility>

#include "array/parray.hpp"
#include "random/rng.hpp"

namespace pbds::bench {

// (a, b) represents r -> a*r + b.
using affine = std::pair<double, double>;

// Compose p then q: q(p(r)) = (p.a * q.a, p.b * q.a + q.b).
constexpr affine affine_compose(const affine& p, const affine& q) noexcept {
  return affine{p.first * q.first, p.second * q.first + q.second};
}

inline constexpr affine affine_identity{1.0, 0.0};

// Random coefficients with |x| <= ~1 so the recurrence stays bounded.
inline parray<affine> linearrec_input(std::size_t n, std::uint64_t seed = 17) {
  random::rng gen(seed);
  return parray<affine>::tabulate(n, [&](std::size_t i) {
    return affine{gen.uniform(2 * i, -0.9, 0.9),
                  gen.uniform(2 * i + 1, -1.0, 1.0)};
  });
}

template <typename P>
parray<double> linearrec(const parray<affine>& coefs) {
  auto [prefix, total] = P::scan_inclusive(
      [](const affine& p, const affine& q) { return affine_compose(p, q); },
      affine_identity, P::view(coefs));
  (void)total;
  // R_{-1} = 0, so R_i is the constant term of the prefix composition.
  return P::to_array(
      P::map([](const affine& c) { return c.second; }, prefix));
}

inline std::vector<double> linearrec_reference(const parray<affine>& coefs) {
  std::vector<double> r(coefs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < coefs.size(); ++i) {
    acc = coefs[i].first * acc + coefs[i].second;
    r[i] = acc;
  }
  return r;
}

}  // namespace pbds::bench
