// Block-granular integrity: digests, verification gates, and the bit-flip
// corruption injector.
//
// The paper's fixed block decomposition gives a natural integrity granule:
// every blockwise terminal pass materializes whole blocks, so each block's
// bytes can be digested inline as it completes and re-checked whenever the
// bytes are *trusted* rather than recomputed — on resume, when a later
// attempt salvages blocks a failed attempt left behind (recovery/), and in
// bulk-verification mode, when a memcpy-lowered next_n run must match the
// element-at-a-time reference protocol (stream/).
//
// The digest is a 64-bit xxhash-style mix fed through an incremental
// `digester`: four independent accumulator lanes consume 32-byte stripes
// (breaking the multiply-rotate latency chain that makes a single-lane
// mix ~5 cycles *per word*), and a carry buffer makes the result depend
// only on the concatenated byte sequence — hashing a contiguous block and
// hashing the same bytes element-by-element (any chunking) produce the
// same value. That equivalence is what lets bulk-vs-generic verification
// compare a streamed element walk against a materialized run, and the
// lane parallelism is what keeps digest-on-complete under 5% on
// compute-bearing contiguous kernels (pbdsbench --verify-overhead; pure
// data-movement kernels on a single core are the ~10% worst case — the
// digest is one extra cache-hot pass over bytes produced with almost no
// compute). A digest is never 0: 0 is the side table's "no digest
// recorded" sentinel.
//
// Verification knobs (strict parsing, core/env.hpp):
//   PBDS_VERIFY_RESUME — default 1; =0 trusts salvaged blocks unverified.
//   PBDS_VERIFY_BULK   — default 0; =1 double-runs gated bulk drains and
//                        digest-compares against the element protocol.
// Both have RAII scoped overrides for tests (not thread-safe to toggle
// while parallel work is in flight, same contract as scoped_bulk_disable).
//
// The bit-flip injector arms corruption of *salvaged* storage: when armed,
// resumable_result::bind flips bits in completed blocks on the resume
// path, modeling silent corruption of checkpointed bytes between attempts.
// Counters let tests and the soak harness assert 100% detection.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "core/env.hpp"

namespace pbds::integrity {

// --- digest ------------------------------------------------------------------

namespace detail {

inline constexpr std::uint64_t kSeed = 1469598103934665603ull;
inline constexpr std::uint64_t kM1 = 0x9e3779b185ebca87ull;
inline constexpr std::uint64_t kM2 = 0xc2b2ae3d27d4eb4full;
inline constexpr std::uint64_t kM3 = 0x165667b19e3779f9ull;

[[nodiscard]] inline constexpr std::uint64_t rotl64(std::uint64_t x,
                                                    unsigned r) {
  return (x << r) | (x >> (64 - r));
}

}  // namespace detail

// Incremental byte-stream digest. update() may be called with any
// chunking; the result depends only on the concatenated byte sequence.
// The hot path consumes 32-byte stripes into four independent lanes (one
// multiply-rotate per lane per stripe, no cross-lane dependency, so the
// chains pipeline); a 32-byte carry buffer absorbs unaligned chunk
// boundaries, and value() folds the lanes, the carry tail, and the total
// length.
class digester {
 public:
  void update(const void* data, std::size_t bytes) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    total_ += bytes;
    if (pending_ > 0) {
      std::size_t take = bytes < 32 - pending_ ? bytes : 32 - pending_;
      std::memcpy(buf_ + pending_, p, take);
      pending_ += take;
      p += take;
      bytes -= take;
      if (pending_ == 32) {
        stripe(buf_);
        pending_ = 0;
      }
    }
    if (bytes >= 32) {
      // Run the stripe chains in locals: `p` is an unsigned char* and may
      // alias *this as far as the compiler knows, so looping on v_[]
      // directly forces a load+store of every lane per stripe.
      std::uint64_t a = v_[0], b = v_[1], c = v_[2], d = v_[3];
      // Two stripes per iteration: eight rounds in flight hide the
      // add-rot-mul chain latency; the single multiply per word is the
      // throughput cap (one 64-bit multiplier port on most cores).
      while (bytes >= 64) {
        a = detail::rotl64(a + load_word(p), 31) * detail::kM1;
        b = detail::rotl64(b + load_word(p + 8), 31) * detail::kM1;
        c = detail::rotl64(c + load_word(p + 16), 31) * detail::kM1;
        d = detail::rotl64(d + load_word(p + 24), 31) * detail::kM1;
        a = detail::rotl64(a + load_word(p + 32), 31) * detail::kM1;
        b = detail::rotl64(b + load_word(p + 40), 31) * detail::kM1;
        c = detail::rotl64(c + load_word(p + 48), 31) * detail::kM1;
        d = detail::rotl64(d + load_word(p + 56), 31) * detail::kM1;
        p += 64;
        bytes -= 64;
      }
      if (bytes >= 32) {
        a = detail::rotl64(a + load_word(p), 31) * detail::kM1;
        b = detail::rotl64(b + load_word(p + 8), 31) * detail::kM1;
        c = detail::rotl64(c + load_word(p + 16), 31) * detail::kM1;
        d = detail::rotl64(d + load_word(p + 24), 31) * detail::kM1;
        p += 32;
        bytes -= 32;
      }
      v_[0] = a;
      v_[1] = b;
      v_[2] = c;
      v_[3] = d;
    }
    if (bytes > 0) {
      std::memcpy(buf_ + pending_, p, bytes);
      pending_ += bytes;
    }
  }

  // Finalize without consuming: a digester can keep absorbing after a
  // value() call (value() is pure over the bytes seen so far).
  [[nodiscard]] std::uint64_t value() const {
    using namespace detail;
    std::uint64_t h;
    if (total_ > pending_) {  // at least one full stripe was consumed
      h = rotl64(v_[0], 1) + rotl64(v_[1], 7) + rotl64(v_[2], 12) +
          rotl64(v_[3], 18);
      for (std::uint64_t v : v_)
        h = (h ^ (rotl64(v * kM2, 31) * kM1)) * kM1 + kM3;
    } else {
      h = kSeed + kM2;
    }
    h ^= total_ * kM1;
    std::size_t k = 0;
    for (; k + 8 <= pending_; k += 8)
      h = rotl64(h ^ (load_word(buf_ + k) * kM2), 27) * kM1;
    for (; k < pending_; ++k)
      h = rotl64(h ^ (std::uint64_t{buf_[k]} * kM1), 11) * kM2;
    h ^= h >> 33;
    h *= kM2;
    h ^= h >> 29;
    h *= kM1;
    h ^= h >> 32;
    return h == 0 ? 1 : h;  // 0 is reserved for "no digest recorded"
  }

 private:
  [[nodiscard]] static std::uint64_t load_word(const unsigned char* p) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    return w;
  }

  // Carry-buffer stripe (cold path: at most once per update call). Must
  // compute exactly the same round as the hot loop in update() or the
  // chunking-invariance contract breaks.
  void stripe(const unsigned char* p) {
    for (int i = 0; i < 4; ++i) {
      v_[i] = detail::rotl64(v_[i] + load_word(p + 8 * i), 31) * detail::kM1;
    }
  }

  std::uint64_t v_[4] = {detail::kSeed + detail::kM1 + detail::kM2,
                         detail::kSeed + detail::kM2, detail::kSeed,
                         detail::kSeed - detail::kM1};
  std::uint64_t total_ = 0;
  unsigned char buf_[32] = {};
  std::size_t pending_ = 0;
};

// One-shot digest of a contiguous byte range (never 0).
[[nodiscard]] inline std::uint64_t block_digest(const void* data,
                                                std::size_t bytes) {
  digester d;
  d.update(data, bytes);
  return d.value();
}

// Thrown when verification proves bytes are not what was produced: a bulk
// drain whose output diverges from the element-at-a-time protocol, or a
// caller-level integrity check. (Salvage-time mismatches do NOT throw —
// they quarantine and re-execute; see recovery/checkpoint_ops.hpp.)
class corruption_detected : public std::runtime_error {
 public:
  explicit corruption_detected(const char* what_arg)
      : std::runtime_error(what_arg) {}
};

// --- verification gates ------------------------------------------------------

namespace detail {

// First-touch env caches, re-readable via reload_verify_from_env() so
// test scopes that snapshot/clear PBDS_* (tests/differential.hpp's
// scoped_env) see the gates they set, not whatever was exported when the
// first checkpointed op ran.
inline bool& verify_resume_env_slot() {
  static bool v =
      pbds::detail::env_integer("PBDS_VERIFY_RESUME", 0, 1, 1) == 1;
  return v;
}
inline bool& verify_bulk_env_slot() {
  static bool v =
      pbds::detail::env_integer("PBDS_VERIFY_BULK", 0, 1, 0) == 1;
  return v;
}

inline bool verify_resume_by_env() { return verify_resume_env_slot(); }
inline bool verify_bulk_by_env() { return verify_bulk_env_slot(); }

// Overrides: >0 forces on, <0 forces off, 0 follows the env default.
// Plain ints guarded by the scoped_* constructors' single-threaded
// contract (same as stream::detail::bulk_flag).
inline int& verify_resume_override() {
  static int v = 0;
  return v;
}
inline int& verify_bulk_override() {
  static int v = 0;
  return v;
}

// Force-on counter for resume verification, atomic because the pipeline
// service arms it per-attempt from concurrent dispatcher threads (the
// per-class corruption policy retries with verification after a mismatch,
// regardless of the env opt-out).
inline std::atomic<int>& verify_resume_force() {
  static std::atomic<int> v{0};
  return v;
}

}  // namespace detail

// Re-read PBDS_VERIFY_RESUME / PBDS_VERIFY_BULK from the current
// environment (not thread-safe; call only while no parallel work is in
// flight — the scoped_env contract).
inline void reload_verify_from_env() {
  detail::verify_resume_env_slot() =
      pbds::detail::env_integer("PBDS_VERIFY_RESUME", 0, 1, 1) == 1;
  detail::verify_bulk_env_slot() =
      pbds::detail::env_integer("PBDS_VERIFY_BULK", 0, 1, 0) == 1;
}

// True when salvaged blocks must be re-digested before being trusted
// (and block digests recorded at completion to make that possible).
[[nodiscard]] inline bool verify_resume_enabled() {
  if (detail::verify_resume_force().load(std::memory_order_relaxed) > 0)
    return true;
  int o = detail::verify_resume_override();
  if (o != 0) return o > 0;
  return detail::verify_resume_by_env();
}

// True when gated bulk drains must be digest-checked against the
// element-at-a-time protocol.
[[nodiscard]] inline bool verify_bulk_enabled() {
  int o = detail::verify_bulk_override();
  if (o != 0) return o > 0;
  return detail::verify_bulk_by_env();
}

namespace detail {

class scoped_verify_override {
 public:
  scoped_verify_override(int& slot, bool on) : slot_(slot), saved_(slot) {
    slot_ = on ? 1 : -1;
  }
  ~scoped_verify_override() { slot_ = saved_; }
  scoped_verify_override(const scoped_verify_override&) = delete;
  scoped_verify_override& operator=(const scoped_verify_override&) = delete;

 private:
  int& slot_;
  int saved_;
};

}  // namespace detail

class scoped_verify_resume : public detail::scoped_verify_override {
 public:
  explicit scoped_verify_resume(bool on)
      : scoped_verify_override(detail::verify_resume_override(), on) {}
};

class scoped_verify_bulk : public detail::scoped_verify_override {
 public:
  explicit scoped_verify_bulk(bool on)
      : scoped_verify_override(detail::verify_bulk_override(), on) {}
};

// Thread-safe force-on for resume verification (nestable; overrides both
// the env opt-out and scoped_verify_resume(false)).
class scoped_verify_resume_force {
 public:
  scoped_verify_resume_force() {
    detail::verify_resume_force().fetch_add(1, std::memory_order_relaxed);
  }
  ~scoped_verify_resume_force() {
    detail::verify_resume_force().fetch_sub(1, std::memory_order_relaxed);
  }
  scoped_verify_resume_force(const scoped_verify_resume_force&) = delete;
  scoped_verify_resume_force& operator=(const scoped_verify_resume_force&) =
      delete;
};

// --- bit-flip corruption injector --------------------------------------------

// Process-global armable injector: while armed, each resume of a
// checkpointed result flips one bit in each of up to `flips_per_resume`
// bytes chosen (seeded splitmix64) from the result's *completed* blocks —
// the bytes a resume would otherwise silently trust. Delivered flips are
// counted so harnesses can assert detected == delivered.

namespace detail {

struct bit_flip_state {
  std::atomic<int> armed{0};
  std::atomic<std::uint64_t> rng{0};
  std::atomic<std::size_t> flips_per_resume{1};
  std::atomic<std::uint64_t> delivered{0};
};

inline bit_flip_state& bf_state() {
  static bit_flip_state s;
  return s;
}

[[nodiscard]] inline std::uint64_t splitmix64(std::atomic<std::uint64_t>& s) {
  std::uint64_t z = s.fetch_add(0x9e3779b97f4a7c15ull,
                                std::memory_order_relaxed) +
                    0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace detail

[[nodiscard]] inline bool bit_flips_armed() {
  return detail::bf_state().armed.load(std::memory_order_acquire) != 0;
}

[[nodiscard]] inline std::size_t bit_flips_per_resume() {
  return detail::bf_state().flips_per_resume.load(std::memory_order_relaxed);
}

[[nodiscard]] inline std::uint64_t bit_flips_delivered() {
  return detail::bf_state().delivered.load(std::memory_order_relaxed);
}

// Draw a pseudo-random value from the armed injector's seeded stream.
[[nodiscard]] inline std::uint64_t bit_flip_draw() {
  return detail::splitmix64(detail::bf_state().rng);
}

// Flip one pseudo-random bit of bytes[0..len): the injection primitive.
inline void flip_random_bit(unsigned char* bytes, std::size_t len) {
  if (len == 0) return;
  std::uint64_t r = bit_flip_draw();
  bytes[r % len] ^= static_cast<unsigned char>(1u << ((r >> 32) & 7u));
  detail::bf_state().delivered.fetch_add(1, std::memory_order_relaxed);
}

inline void arm_bit_flips(std::size_t flips_per_resume, std::uint64_t seed) {
  auto& s = detail::bf_state();
  s.rng.store(seed, std::memory_order_relaxed);
  s.flips_per_resume.store(flips_per_resume == 0 ? 1 : flips_per_resume,
                           std::memory_order_relaxed);
  s.delivered.store(0, std::memory_order_relaxed);
  s.armed.fetch_add(1, std::memory_order_release);
}

inline void disarm_bit_flips() {
  detail::bf_state().armed.fetch_sub(1, std::memory_order_release);
}

}  // namespace pbds::integrity
