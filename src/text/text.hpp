// Text substrate for the tokens / wc / grep benchmarks.
//
// Corpora are generated per-character from the indexable RNG, so a corpus
// of any size is produced in parallel with no shared state and is identical
// run-to-run. Word/line lengths are geometric: each position is a space
// (resp. newline) independently with probability 1/avg, giving an average
// word length of avg-1 non-delimiters — matching the paper's "average word
// length 7" style of workload description.
#pragma once

#include <cstddef>
#include <cstring>
#include <string_view>

#include "array/parray.hpp"
#include "random/rng.hpp"

namespace pbds::text {

constexpr bool is_space(char c) noexcept {
  return c == ' ' || c == '\n' || c == '\t';
}

// n characters of space-separated lowercase words; ~1/avg_word_len of the
// positions are spaces.
inline parray<char> random_words(std::size_t n, double avg_word_len = 8.0,
                                 std::uint64_t seed = 7) {
  random::rng gen(seed);
  double p_space = 1.0 / avg_word_len;
  return parray<char>::tabulate(n, [=](std::size_t i) {
    if (gen.uniform(i) < p_space) return ' ';
    return static_cast<char>('a' + gen.below(i ^ 0x5bd1e995, 26));
  });
}

// n characters of newline-terminated lines of lowercase words; lines
// average avg_line_len characters, words average avg_word_len.
inline parray<char> random_lines(std::size_t n, double avg_line_len = 30.0,
                                 double avg_word_len = 8.0,
                                 std::uint64_t seed = 11) {
  random::rng gen(seed);
  double p_newline = 1.0 / avg_line_len;
  double p_space = 1.0 / avg_word_len;
  return parray<char>::tabulate(n, [=](std::size_t i) {
    double r = gen.uniform(i);
    if (r < p_newline) return '\n';
    if (r < p_newline + p_space) return ' ';
    return static_cast<char>('a' + gen.below(i ^ 0x9747b28cu, 26));
  });
}

// Does text[lo, hi) contain `pattern`? Sequential scan (used per line by
// grep; lines are short).
inline bool contains(const char* text, std::size_t lo, std::size_t hi,
                     std::string_view pattern) {
  if (pattern.empty()) return true;
  if (hi - lo < pattern.size()) return false;
  for (std::size_t i = lo; i + pattern.size() <= hi; ++i) {
    if (std::memcmp(text + i, pattern.data(), pattern.size()) == 0)
      return true;
  }
  return false;
}

// Reference counts for wc: (lines, words, bytes), semantics of Unix wc:
// a word is a maximal run of non-whitespace.
struct wc_counts {
  std::size_t lines = 0;
  std::size_t words = 0;
  std::size_t bytes = 0;
  friend bool operator==(const wc_counts&, const wc_counts&) = default;
};

inline wc_counts reference_wc(const parray<char>& text) {
  wc_counts c;
  c.bytes = text.size();
  bool in_word = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') ++c.lines;
    bool sp = is_space(text[i]);
    if (!sp && !in_word) ++c.words;
    in_word = !sp;
  }
  return c;
}

}  // namespace pbds::text
