// Benchmark harness: the artifact's measurement protocol (Appendix A.7)
// and table formatting in the layout of Figs. 13/14.
//
// Protocol per configuration: run the kernel back-to-back until the warmup
// period has expired, then time `repeat` back-to-back runs and report the
// average. Space is the peak of the byte-exact allocation accounting
// (pbds::memory) across the timed runs — the deterministic analogue of the
// paper's max-residency measurement (see DESIGN.md §1).
//
// Resilience layer (DESIGN.md §"Resource governance"): run_isolated
// executes one configuration in a forked child with a wall-clock timeout
// and bounded retries, classifying the outcome (ok / timeout / crash /
// budget refusal) instead of letting one pathological configuration take
// down the whole suite; json_report persists partial results after every
// configuration so a later death loses nothing.
#pragma once

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "memory/budget.hpp"
#include "memory/tracking.hpp"
#include "sched/scheduler.hpp"

namespace pbds::bench_common {

// Keep a computed value alive past the optimizer.
template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

namespace detail {
// Strict CLI numeric parsing, matching the treatment of PBDS_NUM_THREADS
// in scheduler.hpp: full-string match, range check, and a clear error on
// stderr instead of atoi/atof's silent zero.
inline long parse_long_arg(const char* flag, const char* text, long lo,
                           long hi) {
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < lo || v > hi) {
    std::fprintf(stderr,
                 "error: invalid value '%s' for %s (expected an integer in "
                 "[%ld, %ld])\n",
                 text, flag, lo, hi);
    std::exit(2);
  }
  return v;
}

inline double parse_double_arg(const char* flag, const char* text, double lo,
                              bool inclusive) {
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(text, &end);
  bool in_range = inclusive ? (v >= lo) : (v > lo);  // NaN fails both
  if (end == text || *end != '\0' || errno == ERANGE || !in_range) {
    std::fprintf(stderr,
                 "error: invalid value '%s' for %s (expected a number %s "
                 "%g)\n",
                 text, flag, inclusive ? ">=" : ">", lo);
    std::exit(2);
  }
  return v;
}

inline const char* require_value(const char* flag, int& i, int argc,
                                 char** argv) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "error: %s requires a value\n", flag);
    std::exit(2);
  }
  return argv[++i];
}
}  // namespace detail

struct options {
  double scale = 1.0;   // multiply default problem sizes
  int repeat = 3;       // timed repetitions
  double warmup = 0.25; // seconds of back-to-back warmup
  std::vector<unsigned> procs;  // worker counts to sweep (fig15)

  // Unrecognized arguments are ignored (benchmark mains layer their own
  // flags on top); recognized flags have their values validated strictly
  // and exit(2) with a message on malformed input.
  static options parse(int argc, char** argv) {
    options o;
    for (int i = 1; i < argc; ++i) {
      auto is = [&](const char* f) { return std::strcmp(argv[i], f) == 0; };
      if (is("--scale")) {
        o.scale = detail::parse_double_arg(
            "--scale", detail::require_value("--scale", i, argc, argv), 0.0,
            /*inclusive=*/false);
      } else if (is("--repeat")) {
        o.repeat = static_cast<int>(detail::parse_long_arg(
            "--repeat", detail::require_value("--repeat", i, argc, argv), 1,
            1000000));
      } else if (is("--warmup")) {
        o.warmup = detail::parse_double_arg(
            "--warmup", detail::require_value("--warmup", i, argc, argv), 0.0,
            /*inclusive=*/true);
      } else if (is("--procs")) {
        const char* text = detail::require_value("--procs", i, argc, argv);
        o.procs.clear();
        const char* p = text;
        for (;;) {
          char* end = nullptr;
          errno = 0;
          long v = std::strtol(p, &end, 10);
          if (end == p || errno == ERANGE || v < 1 ||
              v > sched::detail::kMaxWorkers) {
            std::fprintf(stderr,
                         "error: invalid --procs list '%s' (expected "
                         "comma-separated integers in [1, %ld])\n",
                         text, sched::detail::kMaxWorkers);
            std::exit(2);
          }
          o.procs.push_back(static_cast<unsigned>(v));
          if (*end == '\0') break;
          if (*end != ',') {
            std::fprintf(stderr,
                         "error: invalid --procs list '%s' (expected "
                         "comma-separated integers)\n",
                         text);
            std::exit(2);
          }
          p = end + 1;
        }
      } else if (is("--help") || is("-h")) {
        std::printf(
            "usage: %s [--scale S] [--repeat R] [--warmup SECONDS] "
            "[--procs P1,P2,...]\n",
            argv[0]);
        std::exit(0);
      }
    }
    return o;
  }

  [[nodiscard]] std::size_t scaled(std::size_t n) const {
    auto s = static_cast<std::size_t>(static_cast<double>(n) * scale);
    return s == 0 ? 1 : s;
  }
};

struct measurement {
  double seconds = 0;          // mean over timed runs
  std::int64_t peak_bytes = 0; // max residency during timed runs
  std::int64_t allocated_bytes = 0;  // per run
  // Median over the timed runs — the statistic the perf-regression
  // baseline compares (robust to a one-off scheduler hiccup inflating the
  // mean). Declared after allocated_bytes so three-field aggregate
  // initializers keep compiling.
  double median_seconds = 0;
};

// Run `f` under the warmup+repeat protocol.
template <typename F>
measurement measure(const F& f, const options& opt) {
  using clock = std::chrono::steady_clock;
  auto deadline =
      clock::now() + std::chrono::duration<double>(opt.warmup);
  do {
    f();
  } while (clock::now() < deadline);
  // Quiesce before space_meter resets the peak: the joins above guarantee
  // the warmup's *work* is done, but a worker that lost the race to its
  // joiner may still be in a job epilogue whose trailing note_free would
  // otherwise land between reset_peak and the timed runs and skew the
  // accounting baseline.
  sched::quiesce();
  memory::space_meter meter;
  // Time each repetition individually: the per-rep samples give a median
  // (for baseline comparison) on top of the mean, at the cost of one extra
  // clock read per rep.
  std::vector<double> reps(static_cast<std::size_t>(opt.repeat));
  auto t0 = clock::now();
  auto prev = t0;
  for (int r = 0; r < opt.repeat; ++r) {
    f();
    auto now = clock::now();
    reps[static_cast<std::size_t>(r)] =
        std::chrono::duration<double>(now - prev).count();
    prev = now;
  }
  auto t1 = clock::now();
  measurement m;
  m.seconds = std::chrono::duration<double>(t1 - t0).count() / opt.repeat;
  m.peak_bytes = meter.peak_bytes();
  m.allocated_bytes = meter.allocated_bytes() / opt.repeat;
  std::sort(reps.begin(), reps.end());
  std::size_t mid = reps.size() / 2;
  m.median_seconds = reps.size() % 2 == 1
                         ? reps[mid]
                         : (reps[mid - 1] + reps[mid]) / 2.0;
  return m;
}

inline double mb(std::int64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

inline double ratio(double a, double b) { return b == 0 ? 0 : a / b; }

// --- Fig. 13-style row: A / R / Ours with R/Ours ratios ------------------------

inline void print_bid_header() {
  std::printf("%-12s | %9s %9s %9s %7s | %9s %9s %9s %7s\n", "benchmark",
              "A(s)", "R(s)", "Ours(s)", "R/Ours", "A(MB)", "R(MB)",
              "Ours(MB)", "R/Ours");
  std::printf("%.*s\n", 100,
              "--------------------------------------------------------------"
              "----------------------------------------");
}

inline void print_bid_row(const std::string& name, const measurement& a,
                          const measurement& r, const measurement& ours) {
  std::printf(
      "%-12s | %9.4f %9.4f %9.4f %7.2f | %9.1f %9.1f %9.1f %7.2f\n",
      name.c_str(), a.seconds, r.seconds, ours.seconds,
      ratio(r.seconds, ours.seconds), mb(a.peak_bytes), mb(r.peak_bytes),
      mb(ours.peak_bytes),
      ratio(static_cast<double>(r.peak_bytes),
            static_cast<double>(ours.peak_bytes)));
}

// --- Fig. 14-style row: A vs Ours with A/Ours ratios ---------------------------

inline void print_rad_header() {
  std::printf("%-12s | %9s %9s %7s | %9s %9s %7s\n", "benchmark", "A(s)",
              "Ours(s)", "A/Ours", "A(MB)", "Ours(MB)", "A/Ours");
  std::printf("%.*s\n", 80,
              "--------------------------------------------------------------"
              "------------------");
}

inline void print_rad_row(const std::string& name, const measurement& a,
                          const measurement& ours) {
  std::printf("%-12s | %9.4f %9.4f %7.2f | %9.1f %9.1f %7.2f\n", name.c_str(),
              a.seconds, ours.seconds, ratio(a.seconds, ours.seconds),
              mb(a.peak_bytes), mb(ours.peak_bytes),
              ratio(static_cast<double>(a.peak_bytes),
                    static_cast<double>(ours.peak_bytes)));
}

// --- subprocess isolation ------------------------------------------------------

enum class run_status {
  ok,               // child completed and reported a measurement
  timeout,          // child exceeded the wall-clock limit and was killed
  crashed,          // child died on a signal (OOM kill, segfault, abort)
  budget_exceeded,  // child refused by the memory budget (deterministic)
  error,            // child exited nonzero for any other reason
};

[[nodiscard]] inline const char* to_string(run_status s) {
  switch (s) {
    case run_status::ok: return "ok";
    case run_status::timeout: return "timeout";
    case run_status::crashed: return "crashed";
    case run_status::budget_exceeded: return "budget_exceeded";
    case run_status::error: return "error";
  }
  return "unknown";
}

struct isolated_result {
  run_status status = run_status::error;
  int attempts = 0;  // total child launches (1 = first try succeeded)
  measurement m;     // valid only when status == ok
};

namespace detail {
// Reserved child exit codes (distinct from exit(2) usage errors and the
// usual small codes a benchmark main might use).
inline constexpr int kBudgetExitCode = 97;
inline constexpr int kErrorExitCode = 98;

// One fork/monitor/reap cycle. The child runs `f` (which must return a
// `measurement`), reports it over a pipe, and _exits without running
// static destructors — the parent's state must not be torn down twice.
template <typename F>
isolated_result run_isolated_once(const F& f, double timeout_sec) {
  isolated_result r;
  int fds[2];
  if (pipe(fds) != 0) {
    std::fprintf(stderr, "harness: pipe failed: %s\n", std::strerror(errno));
    return r;
  }
  pid_t pid = fork();
  if (pid < 0) {
    std::fprintf(stderr, "harness: fork failed: %s\n", std::strerror(errno));
    close(fds[0]);
    close(fds[1]);
    return r;
  }
  if (pid == 0) {
    // Child. The parent's worker/watchdog threads do not exist here;
    // drop the inherited handles before any parallel work.
    close(fds[0]);
    sched::reinit_in_child();
    int code = kErrorExitCode;
    char line[128];
    int len = 0;
    try {
      measurement m = f();
      len = std::snprintf(line, sizeof line, "%.9g %lld %lld %.9g\n",
                          m.seconds,
                          static_cast<long long>(m.peak_bytes),
                          static_cast<long long>(m.allocated_bytes),
                          m.median_seconds);
      code = 0;
    } catch (const budget_exceeded&) {
      code = kBudgetExitCode;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "harness(child): %s\n", e.what());
    } catch (...) {
      std::fprintf(stderr, "harness(child): unknown exception\n");
    }
    if (code == 0 && len > 0) {
      ssize_t unused = write(fds[1], line, static_cast<std::size_t>(len));
      (void)unused;
    }
    close(fds[1]);
    _exit(code);  // skip static destructors; the parent owns process state
  }
  // Parent: poll for exit, SIGKILL on timeout.
  close(fds[1]);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeout_sec);
  int wstatus = 0;
  bool timed_out = false;
  for (;;) {
    pid_t done = waitpid(pid, &wstatus, WNOHANG);
    if (done == pid) break;
    if (done < 0 && errno != EINTR) {
      close(fds[0]);
      return r;
    }
    if (!timed_out && std::chrono::steady_clock::now() >= deadline) {
      kill(pid, SIGKILL);
      timed_out = true;  // keep polling until the kill is reaped
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (timed_out) {
    r.status = run_status::timeout;
  } else if (WIFSIGNALED(wstatus)) {
    r.status = run_status::crashed;
  } else if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
    char buf[128] = {0};
    ssize_t got = read(fds[0], buf, sizeof buf - 1);
    long long peak = 0;
    long long alloc = 0;
    double median = 0;
    // The median field is a PR-6 addition; accept three fields too so a
    // mixed-version parent/child pairing degrades to median == mean.
    int parsed = got > 0 ? std::sscanf(buf, "%lf %lld %lld %lf",
                                       &r.m.seconds, &peak, &alloc, &median)
                         : 0;
    if (parsed >= 3) {
      r.m.peak_bytes = peak;
      r.m.allocated_bytes = alloc;
      r.m.median_seconds = parsed == 4 ? median : r.m.seconds;
      r.status = run_status::ok;
    }
  } else if (WIFEXITED(wstatus) &&
             WEXITSTATUS(wstatus) == kBudgetExitCode) {
    r.status = run_status::budget_exceeded;
  }
  close(fds[0]);
  return r;
}
}  // namespace detail

// Run one benchmark configuration in a forked subprocess with a wall-clock
// timeout and bounded retries (exponential backoff between attempts). `f`
// must return a `measurement` and is invoked only in the child.
//
// Classification: a timeout or signal death (OOM killer, segfault) is
// retried up to `max_retries` times — those can be transient under load; a
// budget refusal is NOT retried, because admission (memory/budget.hpp) is
// deterministic for a fixed configuration.
//
// fork(2) safety: call this only from a process that has NOT started the
// scheduler pool or the watchdog — a forked copy of a multithreaded
// process may hold another thread's allocator lock forever. The child
// drops inherited handles via sched::reinit_in_child() and builds its own
// pool; the isolating parent must stay single-threaded and leave all
// parallel work to children (see bench/pbdsbench.cpp --isolate).
template <typename F>
isolated_result run_isolated(const F& f, double timeout_sec,
                             int max_retries = 1,
                             int backoff_ms = 100) {
  isolated_result r;
  for (int attempt = 0;; ++attempt) {
    r = detail::run_isolated_once(f, timeout_sec);
    r.attempts = attempt + 1;
    if (r.status == run_status::ok ||
        r.status == run_status::budget_exceeded || attempt >= max_retries) {
      return r;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(backoff_ms) << attempt));
  }
}

// --- partial-results JSON report ----------------------------------------------
//
// Appending a record rewrites the whole file (tmp + rename, so readers
// never see a torn write): the report on disk is complete and valid JSON
// after every configuration, and a crash mid-suite loses only the
// configuration that crashed — which is itself recorded with its failure
// status before the next one starts.
class json_report {
 public:
  explicit json_report(std::string path) : path_(std::move(path)) {}

  struct record {
    std::string name;      // benchmark name
    std::string config;    // library / policy variant
    run_status status = run_status::ok;
    int attempts = 1;
    measurement m;
    // Free-form numeric metrics appended to the JSON object (service soak:
    // throughput, shed_rate, p99_ms, ...). Last field so existing
    // five-element aggregate initializers keep compiling.
    std::vector<std::pair<std::string, double>> extra = {};
  };

  void add(record rec) {
    records_.push_back(std::move(rec));
    flush();
  }

  [[nodiscard]] const std::vector<record>& records() const {
    return records_;
  }

  // False when the last flush could not be fully persisted (open, write,
  // close, or rename failed — e.g. ENOSPC/EIO); the previous complete
  // report file, if any, is left in place rather than a truncated one.
  [[nodiscard]] bool ok() const noexcept { return last_error_.empty(); }
  [[nodiscard]] const std::string& last_error() const noexcept {
    return last_error_;
  }

 private:
  static void write_escaped(std::FILE* out, const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') std::fputc('\\', out);
      if (static_cast<unsigned char>(c) < 0x20) {
        std::fprintf(out, "\\u%04x", c);
        continue;
      }
      std::fputc(c, out);
    }
  }

  void fail(const char* what, const std::string& path) const {
    last_error_ = std::string(what) + " " + path + ": " + std::strerror(errno);
    std::fprintf(stderr, "harness: %s\n", last_error_.c_str());
  }

  void flush() const {
    last_error_.clear();
    std::string tmp = path_ + ".tmp";
    std::FILE* out = std::fopen(tmp.c_str(), "w");
    if (out == nullptr) {
      fail("cannot open", tmp);
      return;
    }
    std::fprintf(out, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const record& r = records_[i];
      std::fprintf(out, "  {\"name\": \"");
      write_escaped(out, r.name);
      std::fprintf(out, "\", \"config\": \"");
      write_escaped(out, r.config);
      std::fprintf(out,
                   "\", \"status\": \"%s\", \"attempts\": %d, "
                   "\"seconds\": %.9g, \"median_seconds\": %.9g, "
                   "\"peak_bytes\": %lld, "
                   "\"allocated_bytes\": %lld",
                   to_string(r.status), r.attempts, r.m.seconds,
                   r.m.median_seconds,
                   static_cast<long long>(r.m.peak_bytes),
                   static_cast<long long>(r.m.allocated_bytes));
      for (const auto& [key, value] : r.extra) {
        std::fprintf(out, ", \"");
        write_escaped(out, key);
        std::fprintf(out, "\": %.9g", value);
      }
      std::fprintf(out, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    // A short write (ENOSPC, EIO) sets the stream error flag; fflush and
    // fclose surface anything still buffered. On any failure, discard the
    // tmp file and keep the previous complete report — publishing
    // truncated JSON via the rename would defeat the whole tmp+rename
    // scheme.
    bool write_error = std::ferror(out) != 0;
    if (std::fflush(out) != 0) write_error = true;
    if (std::fclose(out) != 0) write_error = true;
    if (write_error) {
      fail("write failed for", tmp);
      std::remove(tmp.c_str());
      return;
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      fail("cannot rename", tmp);
      std::remove(tmp.c_str());
    }
  }

  std::string path_;
  std::vector<record> records_;
  mutable std::string last_error_;
};

}  // namespace pbds::bench_common
