// Benchmark harness: the artifact's measurement protocol (Appendix A.7)
// and table formatting in the layout of Figs. 13/14.
//
// Protocol per configuration: run the kernel back-to-back until the warmup
// period has expired, then time `repeat` back-to-back runs and report the
// average. Space is the peak of the byte-exact allocation accounting
// (pbds::memory) across the timed runs — the deterministic analogue of the
// paper's max-residency measurement (see DESIGN.md §1).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "memory/tracking.hpp"
#include "sched/scheduler.hpp"

namespace pbds::bench_common {

// Keep a computed value alive past the optimizer.
template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct options {
  double scale = 1.0;   // multiply default problem sizes
  int repeat = 3;       // timed repetitions
  double warmup = 0.25; // seconds of back-to-back warmup
  std::vector<unsigned> procs;  // worker counts to sweep (fig15)

  static options parse(int argc, char** argv) {
    options o;
    for (int i = 1; i < argc; ++i) {
      auto is = [&](const char* f) { return std::strcmp(argv[i], f) == 0; };
      if (is("--scale") && i + 1 < argc) {
        o.scale = std::atof(argv[++i]);
      } else if (is("--repeat") && i + 1 < argc) {
        o.repeat = std::atoi(argv[++i]);
      } else if (is("--warmup") && i + 1 < argc) {
        o.warmup = std::atof(argv[++i]);
      } else if (is("--procs") && i + 1 < argc) {
        o.procs.clear();
        for (const char* tok = std::strtok(argv[++i], ","); tok != nullptr;
             tok = std::strtok(nullptr, ",")) {
          o.procs.push_back(static_cast<unsigned>(std::atoi(tok)));
        }
      } else if (is("--help") || is("-h")) {
        std::printf(
            "usage: %s [--scale S] [--repeat R] [--warmup SECONDS] "
            "[--procs P1,P2,...]\n",
            argv[0]);
        std::exit(0);
      }
    }
    return o;
  }

  [[nodiscard]] std::size_t scaled(std::size_t n) const {
    auto s = static_cast<std::size_t>(static_cast<double>(n) * scale);
    return s == 0 ? 1 : s;
  }
};

struct measurement {
  double seconds = 0;          // mean over timed runs
  std::int64_t peak_bytes = 0; // max residency during timed runs
  std::int64_t allocated_bytes = 0;  // per run
};

// Run `f` under the warmup+repeat protocol.
template <typename F>
measurement measure(const F& f, const options& opt) {
  using clock = std::chrono::steady_clock;
  auto deadline =
      clock::now() + std::chrono::duration<double>(opt.warmup);
  do {
    f();
  } while (clock::now() < deadline);
  memory::space_meter meter;
  auto t0 = clock::now();
  for (int r = 0; r < opt.repeat; ++r) f();
  auto t1 = clock::now();
  measurement m;
  m.seconds = std::chrono::duration<double>(t1 - t0).count() / opt.repeat;
  m.peak_bytes = meter.peak_bytes();
  m.allocated_bytes = meter.allocated_bytes() / opt.repeat;
  return m;
}

inline double mb(std::int64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

inline double ratio(double a, double b) { return b == 0 ? 0 : a / b; }

// --- Fig. 13-style row: A / R / Ours with R/Ours ratios ------------------------

inline void print_bid_header() {
  std::printf("%-12s | %9s %9s %9s %7s | %9s %9s %9s %7s\n", "benchmark",
              "A(s)", "R(s)", "Ours(s)", "R/Ours", "A(MB)", "R(MB)",
              "Ours(MB)", "R/Ours");
  std::printf("%.*s\n", 100,
              "--------------------------------------------------------------"
              "----------------------------------------");
}

inline void print_bid_row(const std::string& name, const measurement& a,
                          const measurement& r, const measurement& ours) {
  std::printf(
      "%-12s | %9.4f %9.4f %9.4f %7.2f | %9.1f %9.1f %9.1f %7.2f\n",
      name.c_str(), a.seconds, r.seconds, ours.seconds,
      ratio(r.seconds, ours.seconds), mb(a.peak_bytes), mb(r.peak_bytes),
      mb(ours.peak_bytes),
      ratio(static_cast<double>(r.peak_bytes),
            static_cast<double>(ours.peak_bytes)));
}

// --- Fig. 14-style row: A vs Ours with A/Ours ratios ---------------------------

inline void print_rad_header() {
  std::printf("%-12s | %9s %9s %7s | %9s %9s %7s\n", "benchmark", "A(s)",
              "Ours(s)", "A/Ours", "A(MB)", "Ours(MB)", "A/Ours");
  std::printf("%.*s\n", 80,
              "--------------------------------------------------------------"
              "------------------");
}

inline void print_rad_row(const std::string& name, const measurement& a,
                          const measurement& ours) {
  std::printf("%-12s | %9.4f %9.4f %7.2f | %9.1f %9.1f %7.2f\n", name.c_str(),
              a.seconds, ours.seconds, ratio(a.seconds, ours.seconds),
              mb(a.peak_bytes), mb(ours.peak_bytes),
              ratio(static_cast<double>(a.peak_bytes),
                    static_cast<double>(ours.peak_bytes)));
}

}  // namespace pbds::bench_common
