// Perf-regression baselines: parse a committed `pbdsbench --json` report
// and compare a fresh run against it, so "no slower than the baseline" is
// a property CI can enforce instead of a hope.
//
// The on-disk format is exactly what json_report (harness.hpp) emits: a
// top-level array of flat objects whose values are strings or numbers.
// The parser below reads only that shape — it is not a general JSON
// parser, but it is strict about the subset it accepts (a malformed file
// yields an error, never a silently-empty baseline).
//
// Comparison policy (docs in EXPERIMENTS.md):
//  * time: median seconds per configuration, compared under a relative
//    threshold (default 10%). Wall-clock is noisy across machines, so CI
//    runs with a looser threshold than local checks; the committed
//    baseline records the machine it came from.
//  * allocated bytes: deterministic for a fixed (benchmark, impl, n,
//    block size), so compared under a tight threshold (default 2% to
//    absorb container-growth jitter across allocator versions). A fusion
//    regression that materializes one extra O(n) intermediate overshoots
//    this by orders of magnitude.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace pbds::bench_common {

struct baseline_entry {
  std::string name;    // benchmark name
  std::string config;  // library / policy variant
  std::string status;  // run_status string ("ok", "timeout", ...)
  std::map<std::string, double> nums;  // every numeric field by key

  [[nodiscard]] bool has(const std::string& key) const {
    return nums.count(key) != 0;
  }
  [[nodiscard]] double num(const std::string& key, double fallback = 0) const {
    auto it = nums.find(key);
    return it == nums.end() ? fallback : it->second;
  }
  // Median if the report carries one (post-PR-6 reports always do), else
  // the mean — keeps old baseline files comparable.
  [[nodiscard]] double median_seconds() const {
    return has("median_seconds") ? num("median_seconds") : num("seconds");
  }
};

namespace detail {

struct json_cursor {
  const std::string& text;
  std::size_t pos = 0;
  std::string error{};

  [[nodiscard]] bool failed() const { return !error.empty(); }

  void fail(const std::string& what) {
    if (error.empty())
      error = what + " at byte " + std::to_string(pos);
  }

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  // JSON string with the escapes json_report emits (\" \\ \uXXXX).
  std::string parse_string() {
    std::string out;
    if (!eat('"')) {
      fail("expected string");
      return out;
    }
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) break;
      char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'u': {
          if (pos + 4 > text.size()) {
            fail("truncated \\u escape");
            return out;
          }
          unsigned v = static_cast<unsigned>(
              std::strtoul(text.substr(pos, 4).c_str(), nullptr, 16));
          pos += 4;
          // json_report only emits \u00XX control bytes.
          out.push_back(static_cast<char>(v & 0xff));
          break;
        }
        default: fail("unknown escape"); return out;
      }
    }
    if (!eat('"')) fail("unterminated string");
    return out;
  }

  double parse_number() {
    skip_ws();
    const char* start = text.c_str() + pos;
    char* end = nullptr;
    double v = std::strtod(start, &end);
    if (end == start) {
      fail("expected number");
      return 0;
    }
    pos += static_cast<std::size_t>(end - start);
    return v;
  }

  baseline_entry parse_object() {
    baseline_entry e;
    if (!eat('{')) {
      fail("expected '{'");
      return e;
    }
    if (eat('}')) return e;
    do {
      std::string key = parse_string();
      if (failed()) return e;
      if (!eat(':')) {
        fail("expected ':'");
        return e;
      }
      if (peek() == '"') {
        std::string v = parse_string();
        if (key == "name") e.name = std::move(v);
        else if (key == "config") e.config = std::move(v);
        else if (key == "status") e.status = std::move(v);
      } else {
        e.nums[key] = parse_number();
      }
      if (failed()) return e;
    } while (eat(','));
    if (!eat('}')) fail("expected '}' or ','");
    return e;
  }
};

}  // namespace detail

// Parse a json_report file. On success returns true and fills `out`; on
// failure returns false with a diagnostic in `error`.
inline bool load_report(const std::string& path,
                        std::vector<baseline_entry>& out,
                        std::string& error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
    text.append(buf, got);
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    error = "read error on " + path;
    return false;
  }
  detail::json_cursor cur{text};
  if (!cur.eat('[')) {
    error = path + ": expected top-level array";
    return false;
  }
  out.clear();
  if (cur.eat(']')) return true;  // empty report
  do {
    out.push_back(cur.parse_object());
    if (cur.failed()) {
      error = path + ": " + cur.error;
      return false;
    }
  } while (cur.eat(','));
  if (!cur.eat(']')) {
    error = path + ": expected ']' or ','";
    return false;
  }
  return true;
}

// One regression finding: `metric` exceeded baseline * (1 + threshold).
struct regression {
  std::string name;
  std::string config;
  std::string metric;   // "median_seconds" | "allocated_bytes"
  double current = 0;
  double baseline = 0;
  double threshold = 0;  // the relative threshold that was applied

  [[nodiscard]] double ratio() const {
    return baseline == 0 ? 0 : current / baseline;
  }
};

// Compare one fresh measurement against its baseline entry, appending any
// regressions found. A metric regresses when current > baseline * (1 +
// threshold); a negative bytes threshold disables the bytes check.
inline void compare_against_baseline(const baseline_entry& base,
                                     double current_median_seconds,
                                     double current_allocated_bytes,
                                     double time_threshold,
                                     double bytes_threshold,
                                     std::vector<regression>& out) {
  double base_time = base.median_seconds();
  if (base_time > 0 &&
      current_median_seconds > base_time * (1.0 + time_threshold)) {
    out.push_back({base.name, base.config, "median_seconds",
                   current_median_seconds, base_time, time_threshold});
  }
  double base_bytes = base.num("allocated_bytes", -1);
  if (bytes_threshold >= 0 && base_bytes > 0 &&
      current_allocated_bytes > base_bytes * (1.0 + bytes_threshold)) {
    out.push_back({base.name, base.config, "allocated_bytes",
                   current_allocated_bytes, base_bytes, bytes_threshold});
  }
}

}  // namespace pbds::bench_common
