// Text processing example: Unix-style wc + tokenization with fused
// map/reduce and filter/zip pipelines.
//
// Usage: wordcount [file]
// Without a file argument, a deterministic 32M-character corpus is
// generated (average word length 7, like the paper's tokens benchmark).
#include <cstdio>
#include <fstream>
#include <string>

#include "benchmarks/policies.hpp"
#include "benchmarks/tokens.hpp"
#include "benchmarks/wc.hpp"
#include "text/text.hpp"

namespace {

pbds::parray<char> load_or_generate(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s; generating a corpus instead\n",
                   argv[1]);
    } else {
      std::string data((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      return pbds::parray<char>::tabulate(
          data.size(), [&](std::size_t i) { return data[i]; });
    }
  }
  return pbds::text::random_lines(32'000'000, 40.0, 8.0);
}

}  // namespace

int main(int argc, char** argv) {
  auto corpus = load_or_generate(argc, argv);

  auto counts = pbds::bench::wc<pbds::delay_policy>(corpus);
  std::printf("%8zu lines %8zu words %10zu bytes\n", counts.lines,
              counts.words, counts.bytes);

  auto toks = pbds::bench::tokens<pbds::delay_policy>(corpus);
  std::printf("tokenizer: %llu words, average length %.2f\n",
              static_cast<unsigned long long>(toks.count),
              toks.count ? static_cast<double>(toks.total_len) /
                               static_cast<double>(toks.count)
                         : 0.0);

  // Cross-check the two independent pipelines: token count == word count.
  bool ok = toks.count == counts.words;
  std::printf("pipelines agree: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
