// Quickstart: block-delayed sequences in a dozen lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The pipeline below (map -> scan -> map -> reduce, the paper's best-cut
// shape) runs with TWO passes over the input and O(#blocks) intermediate
// memory. The same code against the eager array library would allocate
// four n-element temporaries. The demo measures both so you can see the
// fusion, not just read about it.
#include <cstdint>
#include <cstdio>

#include "core/delayed.hpp"
#include "array/array_ops.hpp"
#include "memory/tracking.hpp"

namespace d = pbds::delayed;
namespace a = pbds::array_ops;

int main() {
  constexpr std::size_t n = 10'000'000;
  auto input = pbds::parray<double>::tabulate(
      n, [](std::size_t i) { return static_cast<double>(i % 1000) * 0.001; });

  // --- the delayed (fused) pipeline -------------------------------------
  pbds::memory::space_meter fused_meter;
  auto xs = d::map([](double x) { return x * x; }, d::view(input));
  auto [prefix, total] = d::scan(
      [](double p, double q) { return p + q; }, 0.0, xs);
  auto normalized = d::map(
      [total = total](double p) { return p / total; }, prefix);
  double fused_max = d::reduce(
      [](double p, double q) { return p > q ? p : q; }, 0.0, normalized);
  std::int64_t fused_bytes = fused_meter.allocated_bytes();
  std::printf("fused   : max normalized prefix = %.6f, intermediates = %.2f MB\n",
              fused_max, static_cast<double>(fused_bytes) / 1e6);

  // --- the same pipeline, eager arrays (no fusion) -----------------------
  pbds::memory::space_meter eager_meter;
  auto xs2 = a::map([](double x) { return x * x; }, input);
  auto [prefix2, total2] = a::scan(
      [](double p, double q) { return p + q; }, 0.0, xs2);
  auto normalized2 = a::map(
      [total2 = total2](double p) { return p / total2; }, prefix2);
  double eager_max = a::reduce(
      [](double p, double q) { return p > q ? p : q; }, 0.0, normalized2);
  std::int64_t eager_bytes = eager_meter.allocated_bytes();
  std::printf("eager   : max normalized prefix = %.6f, intermediates = %.2f MB\n",
              eager_max, static_cast<double>(eager_bytes) / 1e6);

  std::printf("results agree: %s\n", fused_max == eager_max ? "yes" : "NO");
  std::printf("allocation reduction: %.0fx\n",
              static_cast<double>(eager_bytes) /
                  static_cast<double>(fused_bytes + 1));
  return fused_max == eager_max ? 0 : 1;
}
