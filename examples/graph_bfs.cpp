// Graph analytics example: parallel BFS over an R-MAT power-law graph
// using flatten + filterOp fusion (the paper's Fig. 6).
//
// The per-round pipeline  flatten(map outPairs frontier) |> filterOp tryVisit
// never materializes the edge list: with block-delayed sequences the
// flattened (parent, neighbor) pairs stream straight into the CAS-packing
// filter, allocating O(frontier + edges/B) per round instead of O(edges).
//
// Usage: graph_bfs [scale] [edges]     (defaults: scale 18, 3M edges)
#include <cstdio>
#include <cstdlib>

#include "benchmarks/bfs.hpp"
#include "benchmarks/policies.hpp"
#include "memory/tracking.hpp"

int main(int argc, char** argv) {
  unsigned scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 18;
  std::size_t edges = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2]))
                               : 3'000'000;
  std::printf("generating R-MAT graph: 2^%u vertices, %zu edges...\n", scale,
              edges);
  auto g = pbds::graph::rmat(scale, edges);

  pbds::memory::space_meter meter;
  auto parent = pbds::bench::bfs<pbds::delay_policy>(g, 0);
  std::printf("BFS done; intermediate allocation %.1f MB\n",
              static_cast<double>(meter.allocated_bytes()) / 1e6);

  // Report reachability and depth histogram via the reference distances.
  auto dist = pbds::graph::reference_distances(g, 0);
  std::size_t reached = 0;
  std::int64_t diameter = 0;
  for (auto d : dist) {
    if (d >= 0) {
      ++reached;
      diameter = std::max(diameter, d);
    }
  }
  std::printf("reached %zu / %zu vertices; eccentricity of source = %ld\n",
              reached, g.num_vertices(), static_cast<long>(diameter));

  bool ok = pbds::graph::check_bfs_tree(g, 0, [&](std::size_t v) {
    return parent[v].load(std::memory_order_relaxed);
  });
  std::printf("BFS tree valid: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
