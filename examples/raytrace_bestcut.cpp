// The paper's motivating example (§3): best-cut selection for kd-tree
// construction in a ray tracer, and the delay-vs-force tradeoff the cost
// semantics exposes.
//
// The fused pipeline evaluates the initial map TWICE (once in scan phase 1,
// once in the reduce pass) for 2n + O(b) memory traffic; forcing the map
// evaluates it once but pays an n-element array (4n + O(b) traffic). Which
// wins depends on how expensive the map is relative to memory bandwidth —
// this example measures both so you can see the crossover.
//
// Usage: raytrace_bestcut [n]       (default 8M events)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "benchmarks/bestcut.hpp"
#include "core/delayed.hpp"
#include "memory/tracking.hpp"

namespace d = pbds::delayed;
using pbds::bench::bestcut_input;
using pbds::geom::axis_event;

namespace {

double run(const char* name, const pbds::parray<axis_event>& events,
           bool force_map) {
  std::size_t n = events.size();
  pbds::memory::space_meter meter;
  auto t0 = std::chrono::steady_clock::now();

  auto compute = [&](const auto& is_end) {
    auto [counts, total] = d::scan(
        [](std::uint64_t a, std::uint64_t b) { return a + b; },
        std::uint64_t{0}, is_end);
    (void)total;
    auto costs = d::map(
        [n](const std::pair<std::uint64_t, axis_event>& ce) {
          return pbds::geom::sah_cost(ce.second.coord, ce.first, n);
        },
        d::zip(counts, d::view(events)));
    return d::reduce([](double a, double b) { return a < b ? a : b; },
                     std::numeric_limits<double>::infinity(), costs);
  };

  auto is_end_delayed = d::map(
      [](const axis_event& e) -> std::uint64_t { return e.is_end; },
      d::view(events));
  double best = force_map ? compute(d::force(is_end_delayed))
                          : compute(is_end_delayed);

  auto t1 = std::chrono::steady_clock::now();
  std::printf("%-12s: best cut cost %.2f, %.3fs, %7.1f MB allocated\n", name,
              best, std::chrono::duration<double>(t1 - t0).count(),
              static_cast<double>(meter.allocated_bytes()) / 1e6);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1]))
                           : 8'000'000;
  auto events = bestcut_input(n);
  double a = run("fused (2n)", events, /*force_map=*/false);
  double b = run("forced (4n)", events, /*force_map=*/true);
  double want = pbds::bench::bestcut_reference(events);
  bool ok = a == want && b == want;
  std::printf("both match the sequential reference: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
