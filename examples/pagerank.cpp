// PageRank by power iteration — a larger application of the public API.
//
// Each iteration is a nested-parallel pipeline in the sparse-mxv mold: an
// outer tabulate over vertices whose inner map+reduce pulls rank from
// in-neighbors. With RAD fusion the inner contribution sequences are never
// materialized; with the eager library every vertex would allocate a
// per-row temporary each iteration.
//
// Usage: pagerank [scale] [edges] [iters]   (defaults 16, 1M, 10)
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/delayed.hpp"
#include "graph/graph.hpp"
#include "memory/tracking.hpp"

namespace d = pbds::delayed;
using pbds::graph::csr_graph;
using pbds::graph::vertex;

int main(int argc, char** argv) {
  unsigned scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
  std::size_t m = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2]))
                           : 1'000'000;
  int iters = argc > 3 ? std::atoi(argv[3]) : 10;

  // Build the graph and its transpose (in-edges), plus out-degrees.
  auto g = pbds::graph::rmat(scale, m);
  std::size_t n = g.num_vertices();
  auto reversed_edges =
      pbds::parray<std::pair<vertex, vertex>>::uninitialized(m);
  {
    std::size_t k = 0;
    for (vertex u = 0; u < n; ++u) {
      const vertex* ngh = g.neighbors(u);
      for (std::size_t e = 0; e < g.degree(u); ++e)
        reversed_edges[k++] = {ngh[e], u};
    }
  }
  csr_graph gt = pbds::graph::from_edges(n, reversed_edges);
  auto outdeg = pbds::parray<double>::tabulate(n, [&](std::size_t u) {
    return static_cast<double>(g.degree(static_cast<vertex>(u)));
  });

  const double damp = 0.85;
  const double base = (1.0 - damp) / static_cast<double>(n);
  auto rank = pbds::parray<double>::filled(n, 1.0 / static_cast<double>(n));

  pbds::memory::space_meter meter;
  double delta = 0;
  for (int it = 0; it < iters; ++it) {
    const double* r = rank.data();
    const double* deg = outdeg.data();
    auto next = d::to_array(d::tabulate(n, [&gt, r, deg, base,
                                            damp](std::size_t v) {
      const vertex* in = gt.neighbors(static_cast<vertex>(v));
      std::size_t din = gt.degree(static_cast<vertex>(v));
      double pulled = d::reduce(
          [](double a, double b) { return a + b; }, 0.0,
          d::tabulate(din, [in, r, deg](std::size_t e) {
            vertex u = in[e];
            return deg[u] > 0 ? r[u] / deg[u] : 0.0;
          }));
      return base + damp * pulled;
    }));
    // Convergence metric: L1 distance between iterates (fused map+reduce).
    const double* nr = next.data();
    delta = d::reduce(
        [](double a, double b) { return a + b; }, 0.0,
        d::tabulate(n, [r, nr](std::size_t v) {
          return std::fabs(nr[v] - r[v]);
        }));
    rank = std::move(next);
    std::printf("iter %2d: L1 delta = %.3e\n", it, delta);
  }

  // Report the top-ranked vertex and mass conservation.
  double mass = d::sum(d::view(rank));
  std::size_t best = 0;
  for (std::size_t v = 1; v < n; ++v)
    if (rank[v] > rank[best]) best = v;
  std::printf(
      "\n%d iterations over %zu vertices / %zu edges; intermediate "
      "allocation %.1f MB\n",
      iters, n, g.num_edges(),
      static_cast<double>(meter.allocated_bytes()) / 1e6);
  std::printf("top vertex: %zu with rank %.3e; total mass %.6f "
              "(dangling mass leaks below 1.0)\n",
              best, rank[best], mass);
  bool ok = mass > 0.1 && mass <= 1.0 + 1e-6 && delta < 1e-2;
  std::printf("sanity: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
