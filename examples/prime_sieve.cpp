// Nested-parallelism example: the recursive prime sieve, whose composite
// marking is a flatten over per-prime multiple sequences — a fusion case
// (flatten feeding an effectful traversal) index fusion alone cannot
// express. Compares the three libraries end to end.
//
// Usage: prime_sieve [n]       (default: all primes below 10M)
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "benchmarks/policies.hpp"
#include "benchmarks/primes.hpp"
#include "memory/tracking.hpp"

namespace {

template <typename P>
void run(const char* name, std::int64_t n) {
  pbds::memory::space_meter meter;
  auto t0 = std::chrono::steady_clock::now();
  auto primes = pbds::bench::primes<P>(n);
  auto t1 = std::chrono::steady_clock::now();
  std::printf("%-6s: %zu primes below %lld in %.3fs, %7.1f MB allocated\n",
              name, primes.size(), static_cast<long long>(n),
              std::chrono::duration<double>(t1 - t0).count(),
              static_cast<double>(meter.allocated_bytes()) / 1e6);
  if (primes.size() >= 3) {
    std::printf("        last primes: %lld %lld %lld\n",
                static_cast<long long>(primes[primes.size() - 3]),
                static_cast<long long>(primes[primes.size() - 2]),
                static_cast<long long>(primes[primes.size() - 1]));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 10'000'000;
  run<pbds::array_policy>("array", n);
  run<pbds::rad_policy>("rad", n);
  run<pbds::delay_policy>("delay", n);
  return 0;
}
