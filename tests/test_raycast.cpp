// Tests for the 3D geometry substrate and the raycast workload.
#include <gtest/gtest.h>

#include "benchmarks/policies.hpp"
#include "benchmarks/raycast.hpp"
#include "core/block.hpp"

namespace {

using namespace pbds;         // NOLINT
using namespace pbds::bench;  // NOLINT
using geom::ray;
using geom::triangle;
using geom::vec3;

TEST(Geom3d, VectorOps) {
  vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(dot(a, b), 32.0);
  auto c = geom::cross3(a, b);
  EXPECT_EQ(c.x, -3.0);
  EXPECT_EQ(c.y, 6.0);
  EXPECT_EQ(c.z, -3.0);
  EXPECT_EQ(dot(c, a), 0.0);  // orthogonal to both
  EXPECT_EQ(dot(c, b), 0.0);
}

TEST(Geom3d, IntersectHitsUnitTriangle) {
  triangle t{vec3{0, 0, 1}, vec3{1, 0, 1}, vec3{0, 1, 1}};
  ray r{vec3{0.2, 0.2, 0}, vec3{0, 0, 1}};
  auto hit = geom::intersect(r, t);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 1.0);
}

TEST(Geom3d, IntersectMisses) {
  triangle t{vec3{0, 0, 1}, vec3{1, 0, 1}, vec3{0, 1, 1}};
  // Outside the triangle.
  EXPECT_FALSE(geom::intersect(ray{vec3{0.9, 0.9, 0}, vec3{0, 0, 1}}, t));
  // Pointing away.
  EXPECT_FALSE(geom::intersect(ray{vec3{0.2, 0.2, 0}, vec3{0, 0, -1}}, t));
  // Parallel to the plane.
  EXPECT_FALSE(geom::intersect(ray{vec3{0.2, 0.2, 0}, vec3{1, 0, 0}}, t));
}

TEST(Geom3d, IntersectBarycentricEdges) {
  triangle t{vec3{0, 0, 1}, vec3{1, 0, 1}, vec3{0, 1, 1}};
  // Near the a-vertex, inside.
  EXPECT_TRUE(geom::intersect(ray{vec3{0.01, 0.01, 0}, vec3{0, 0, 1}}, t));
  // Just across the hypotenuse u+v>1.
  EXPECT_FALSE(geom::intersect(ray{vec3{0.51, 0.51, 0}, vec3{0, 0, 1}}, t));
}

class RaycastTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  scoped_block_size guard_{GetParam()};
};

TEST_P(RaycastTest, AllLibrariesMatchReference) {
  auto tris = geom::random_triangles(400);
  auto rays = geom::random_rays(300);
  auto want = raycast_reference(rays, tris);
  auto ra = raycast<array_policy>(rays, tris);
  auto rr = raycast<rad_policy>(rays, tris);
  auto rd = raycast<delay_policy>(rays, tris);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(ra[i], want[i]) << i;
    ASSERT_EQ(rr[i], want[i]) << i;
    ASSERT_EQ(rd[i], want[i]) << i;
    hits += want[i] != kNoHit;
  }
  EXPECT_GT(hits, 0u);  // the scene is set up so some rays hit
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, RaycastTest,
                         ::testing::Values(16, 2048),
                         [](const auto& info) {
                           return "B" + std::to_string(info.param);
                         });

TEST(Raycast, DelayAvoidsPerRayAllocation) {
  scoped_block_size guard(2048);
  auto tris = geom::random_triangles(2048);  // exactly one block per ray
  auto rays = geom::random_rays(500);
  memory::space_meter ma;
  { auto r = raycast<array_policy>(rays, tris); }
  auto array_bytes = ma.allocated_bytes();
  memory::space_meter md;
  { auto r = raycast<delay_policy>(rays, tris); }
  auto delay_bytes = md.allocated_bytes();
  // array allocates an nt-sized hits buffer per ray; delay only the output.
  EXPECT_GT(array_bytes, 100 * delay_bytes);
}

}  // namespace
