// Deterministic scheduler: replayability, seed sensitivity, environment
// parity with the real scheduler, and exception discipline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "array/parray.hpp"
#include "sched/deterministic.hpp"
#include "sched/exec_policy.hpp"
#include "sched/parallel.hpp"

namespace {

using namespace pbds;  // NOLINT

// A workload with a deep, wide fork tree and a data-dependent result so a
// wrong interleaving would be visible: writes every index, then sums.
std::int64_t fork_tree_workload(std::size_t n) {
  std::vector<std::int64_t> out(n, 0);
  parallel_for(
      0, n, [&](std::size_t i) { out[i] = static_cast<std::int64_t>(i) + 1; },
      4);
  return std::accumulate(out.begin(), out.end(), std::int64_t{0});
}

TEST(Deterministic, SameSeedReplaysIdenticalTrace) {
  constexpr std::size_t kN = 5000;
  const std::int64_t want =
      static_cast<std::int64_t>(kN) * (static_cast<std::int64_t>(kN) + 1) / 2;
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    std::vector<sched::det_scheduler::event> trace1;
    std::uint64_t hash1 = 0;
    std::size_t forks1 = 0, steals1 = 0;
    {
      sched::scoped_deterministic g(seed, 4);
      EXPECT_EQ(fork_tree_workload(kN), want);
      trace1 = g.scheduler().trace();
      hash1 = g.scheduler().trace_hash();
      forks1 = g.scheduler().num_forks();
      steals1 = g.scheduler().num_steals();
    }
    sched::scoped_deterministic g(seed, 4);
    EXPECT_EQ(fork_tree_workload(kN), want);
    EXPECT_EQ(g.scheduler().trace(), trace1) << "seed=" << seed;
    EXPECT_EQ(g.scheduler().trace_hash(), hash1) << "seed=" << seed;
    EXPECT_EQ(g.scheduler().num_forks(), forks1) << "seed=" << seed;
    EXPECT_EQ(g.scheduler().num_steals(), steals1) << "seed=" << seed;
    EXPECT_GT(forks1, 100u);  // the workload actually forked
  }
}

TEST(Deterministic, DifferentSeedsProduceDifferentInterleavings) {
  std::uint64_t hash1, hash2;
  {
    sched::scoped_deterministic g(1);
    fork_tree_workload(5000);
    hash1 = g.scheduler().trace_hash();
  }
  {
    sched::scoped_deterministic g(2);
    fork_tree_workload(5000);
    hash2 = g.scheduler().trace_hash();
  }
  // ~5000 independent coin flips per run; identical traces for different
  // seeds would mean the PRNG stream is not actually seeded.
  EXPECT_NE(hash1, hash2);
}

TEST(Deterministic, StealProbabilityZeroMeansNoSteals) {
  sched::scoped_deterministic g(7, 4, /*steal_prob=*/0.0);
  fork_tree_workload(2000);
  EXPECT_EQ(g.scheduler().num_steals(), 0u);
  EXPECT_GT(g.scheduler().num_forks(), 0u);
}

TEST(Deterministic, StealProbabilityOneStillComputesCorrectly) {
  sched::scoped_deterministic g(7, 4, /*steal_prob=*/1.0);
  EXPECT_EQ(fork_tree_workload(2000), 2000LL * 2001 / 2);
  // Every pending job gets stolen before the forker finishes its branch.
  EXPECT_GT(g.scheduler().num_steals(), 0u);
}

TEST(Deterministic, HonorsPbdsNumThreadsLikeRealScheduler) {
  // default_num_workers() re-reads the environment; the simulated worker
  // count (num_workers == 0) must follow it exactly as the pool does.
  ::setenv("PBDS_NUM_THREADS", "3", 1);
  {
    sched::det_scheduler det(11);
    EXPECT_EQ(det.num_workers(), 3u);
  }
  ::setenv("PBDS_NUM_THREADS", "7", 1);
  {
    sched::det_scheduler det(11);
    EXPECT_EQ(det.num_workers(), 7u);
  }
  ::unsetenv("PBDS_NUM_THREADS");
  sched::det_scheduler det(11);
  EXPECT_GE(det.num_workers(), 1u);
  // Explicit count still wins over the environment.
  ::setenv("PBDS_NUM_THREADS", "5", 1);
  sched::det_scheduler pinned(11, 2);
  EXPECT_EQ(pinned.num_workers(), 2u);
  ::unsetenv("PBDS_NUM_THREADS");
}

TEST(Deterministic, SimulatedWorkerCountDrivesGranularity) {
  // More simulated workers => smaller default granularity => more forks,
  // exactly as on the real pool. Same seed isolates the worker count.
  auto forks_with_workers = [](unsigned w) {
    sched::scoped_deterministic g(3, w);
    parallel_for(0, 40'000, [](std::size_t) {});
    return g.scheduler().num_forks();
  };
  std::size_t forks2 = forks_with_workers(2);
  std::size_t forks16 = forks_with_workers(16);
  EXPECT_GT(forks16, forks2);
}

TEST(Deterministic, EffectiveNumWorkersTracksMode) {
  {
    sched::scoped_deterministic g(1, 6);
    EXPECT_EQ(sched::effective_num_workers(), 6u);
  }
  EXPECT_EQ(sched::effective_num_workers(), sched::num_workers());
}

TEST(Deterministic, NestsAndRestoresPreviousMode) {
  sched::scoped_sequential outer;
  {
    sched::scoped_deterministic inner(9, 2);
    EXPECT_EQ(sched::current_exec_mode(), sched::exec_mode::deterministic);
    {
      sched::scoped_deterministic nested(10, 3);
      EXPECT_EQ(sched::current_det_scheduler().seed(), 10u);
    }
    EXPECT_EQ(sched::current_det_scheduler().seed(), 9u);
  }
  EXPECT_EQ(sched::current_exec_mode(), sched::exec_mode::sequential);
}

TEST(Deterministic, ExceptionPropagatesAndStateStaysConsistent) {
  sched::scoped_deterministic g(13, 4);
  EXPECT_THROW(
      parallel_for(
          0, 1000,
          [](std::size_t i) {
            if (i == 617) throw std::runtime_error("boom");
          },
          1),
      std::runtime_error);
  // The pending deque was cleaned up during unwinding: later parallel work
  // under the same scheduler still runs and joins correctly.
  std::atomic<std::int64_t> sum{0};
  parallel_for(
      0, 1000, [&](std::size_t i) { sum += static_cast<std::int64_t>(i); }, 8);
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
}

TEST(Deterministic, SequentialModeRunsLeftThenRight) {
  sched::scoped_sequential g;
  std::vector<int> order;
  fork2join([&] { order.push_back(1); }, [&] { order.push_back(2); });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Deterministic, ParrayTabulateAgreesAcrossSeeds) {
  auto run = [](std::uint64_t seed) {
    sched::scoped_deterministic g(seed, 4);
    auto a = parray<std::int64_t>::tabulate(
        3000, [](std::size_t i) { return static_cast<std::int64_t>(i * i); });
    std::int64_t acc = 0;
    for (auto v : a) acc += v;
    return acc;
  };
  std::int64_t ref = run(100);
  for (std::uint64_t seed = 101; seed < 117; ++seed)
    EXPECT_EQ(run(seed), ref) << "seed=" << seed;
}

}  // namespace
