// Unit tests for the stream layer (Fig. 8's s.* functions): each adapter
// in isolation, deep compositions, and laziness (O(1) construction).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "stream/streams.hpp"

namespace {

namespace st = pbds::stream;

template <typename S>
std::vector<typename S::value_type> drain(S s, std::size_t n) {
  std::vector<typename S::value_type> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(s.next());
  return out;
}

TEST(Streams, TabulateProducesIndexedValues) {
  auto s = st::tabulate_stream{[](std::size_t i) { return 3 * i; },
                               std::size_t{10}};
  auto v = drain(s, 4);
  EXPECT_EQ(v, (std::vector<std::size_t>{30, 33, 36, 39}));
}

TEST(Streams, PointerStreamReadsMemory) {
  int data[] = {5, 6, 7};
  st::pointer_stream<int> s{data};
  EXPECT_EQ(drain(s, 3), (std::vector<int>{5, 6, 7}));
}

TEST(Streams, MapTransforms) {
  auto base = st::tabulate_stream{[](std::size_t i) { return (int)i; },
                                  std::size_t{0}};
  auto s = st::map_stream{base, [](int x) { return x * x; }};
  EXPECT_EQ(drain(s, 5), (std::vector<int>{0, 1, 4, 9, 16}));
}

TEST(Streams, ZipPairsInLockstep) {
  auto a = st::tabulate_stream{[](std::size_t i) { return (int)i; },
                               std::size_t{0}};
  auto b = st::tabulate_stream{[](std::size_t i) { return (int)(10 * i); },
                               std::size_t{0}};
  auto s = st::zip_stream{a, b};
  auto v = drain(s, 3);
  EXPECT_EQ(v[2], (std::pair<int, int>(2, 20)));
}

TEST(Streams, ScanIsExclusive) {
  auto base = st::tabulate_stream{[](std::size_t i) { return (int)i + 1; },
                                  std::size_t{0}};
  auto s = st::scan_stream{base, [](int a, int b) { return a + b; }, 100};
  EXPECT_EQ(drain(s, 4), (std::vector<int>{100, 101, 103, 106}));
}

TEST(Streams, ScanInclusiveIncludesCurrent) {
  auto base = st::tabulate_stream{[](std::size_t i) { return (int)i + 1; },
                                  std::size_t{0}};
  auto s = st::scan_inclusive_stream{base,
                                     [](int a, int b) { return a + b; }, 100};
  EXPECT_EQ(drain(s, 4), (std::vector<int>{101, 103, 106, 110}));
}

TEST(Streams, ReduceFoldsLeft) {
  auto base = st::tabulate_stream{[](std::size_t i) { return (int)i; },
                                  std::size_t{0}};
  // Non-commutative op to pin the fold direction: f(acc, x) = 2*acc + x.
  int got = st::reduce(base, 4, [](int a, int b) { return 2 * a + b; }, 1);
  // ((((1*2+0)*2+1)*2+2)*2+3) = 27
  EXPECT_EQ(got, 27);
}

TEST(Streams, ApplyVisitsEachOnce) {
  auto base = st::tabulate_stream{[](std::size_t i) { return (int)i; },
                                  std::size_t{0}};
  std::vector<int> seen;
  st::apply(base, 5, [&](int x) { seen.push_back(x); });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Streams, PackKeepsSurvivorsInOrder) {
  auto base = st::tabulate_stream{[](std::size_t i) { return (int)i; },
                                  std::size_t{0}};
  pbds::memory::tracked_vector<int> out;
  st::pack(base, 10, [](int x) { return x % 3 == 0; }, out);
  EXPECT_EQ(std::vector<int>(out.begin(), out.end()),
            (std::vector<int>{0, 3, 6, 9}));
}

TEST(Streams, PackOpTransformsAndFilters) {
  auto base = st::tabulate_stream{[](std::size_t i) { return (int)i; },
                                  std::size_t{0}};
  pbds::memory::tracked_vector<double> out;
  st::pack_op(
      base, 6,
      [](int x) -> std::optional<double> {
        if (x % 2 == 0) return x * 0.5;
        return std::nullopt;
      },
      out);
  EXPECT_EQ(std::vector<double>(out.begin(), out.end()),
            (std::vector<double>{0.0, 1.0, 2.0}));
}

TEST(Streams, DeepCompositionFusesCorrectly) {
  // map . scan . map . zip . tabulate, all in one nested type.
  auto t1 = st::tabulate_stream{[](std::size_t i) { return (int)i; },
                                std::size_t{0}};
  auto t2 = st::tabulate_stream{[](std::size_t i) { return (int)(i * i); },
                                std::size_t{0}};
  auto z = st::zip_stream{t1, t2};
  auto m1 = st::map_stream{z, [](const std::pair<int, int>& p) {
                             return p.first + p.second;
                           }};
  auto sc = st::scan_inclusive_stream{m1, [](int a, int b) { return a + b; },
                                      0};
  auto m2 = st::map_stream{sc, [](int x) { return x * 10; }};
  // inputs: i + i^2 = 0, 2, 6, 12; inclusive sums: 0, 2, 8, 20; x10.
  EXPECT_EQ(drain(m2, 4), (std::vector<int>{0, 20, 80, 200}));
}

TEST(Streams, ConstructionDoesNotEvaluate) {
  // Building a pipeline must not call the element function (O(1) cost,
  // Fig. 8's "these operations require only O(1) work").
  int calls = 0;
  auto t = st::tabulate_stream{[&calls](std::size_t i) {
                                 ++calls;
                                 return (int)i;
                               },
                               std::size_t{0}};
  auto m = st::map_stream{t, [](int x) { return x + 1; }};
  auto s = st::scan_stream{m, [](int a, int b) { return a + b; }, 0};
  EXPECT_EQ(calls, 0);
  (void)s.next();
  EXPECT_EQ(calls, 1);
}

TEST(Streams, MoveOnlyValuesFlowThroughPack) {
  auto base = st::tabulate_stream{
      [](std::size_t i) { return std::make_unique<int>((int)i); },
      std::size_t{0}};
  pbds::memory::tracked_vector<std::unique_ptr<int>> out;
  st::pack(base, 5, [](const std::unique_ptr<int>& p) { return *p > 2; },
           out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(*out[0], 3);
  EXPECT_EQ(*out[1], 4);
}

}  // namespace
