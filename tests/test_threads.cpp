// Multithreaded runs: on this container threads > cores, which still
// exercises every synchronization path (steals, joins, contended CAS in
// filter_op). Results must be identical to the single-threaded runs —
// the blocked algorithms fix the combination order regardless of P.
#include <gtest/gtest.h>

#include <cstdint>

#include "benchmarks/bestcut.hpp"
#include "benchmarks/bfs.hpp"
#include "benchmarks/linearrec.hpp"
#include "benchmarks/mcss.hpp"
#include "benchmarks/policies.hpp"
#include "benchmarks/tokens.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace pbds;         // NOLINT
using namespace pbds::bench;  // NOLINT

class ThreadsTest : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override {
    before_ = sched::num_workers();
    sched::set_num_workers(GetParam());
  }
  void TearDown() override { sched::set_num_workers(before_); }
  unsigned before_ = 1;
};

TEST_P(ThreadsTest, BestcutDeterministicAcrossP) {
  auto events = bestcut_input(200'000);
  double want = bestcut_reference(events);
  EXPECT_DOUBLE_EQ(bestcut<delay_policy>(events), want);
  EXPECT_DOUBLE_EQ(bestcut<array_policy>(events), want);
}

TEST_P(ThreadsTest, McssDeterministicAcrossP) {
  auto a = mcss_input(300'000);
  EXPECT_EQ(mcss<delay_policy>(a), mcss_reference(a));
}

TEST_P(ThreadsTest, TokensDeterministicAcrossP) {
  auto t = text::random_words(300'000, 7.0);
  EXPECT_EQ(tokens<delay_policy>(t), tokens_reference(t));
}

TEST_P(ThreadsTest, LinearrecBitwiseIdenticalAcrossP) {
  // The blocked scan's combination tree depends only on the block size,
  // not on P, so even floating-point results are bitwise reproducible.
  auto coefs = linearrec_input(100'000);
  auto r = linearrec<delay_policy>(coefs);
  sched::set_num_workers(1);
  auto r1 = linearrec<delay_policy>(coefs);
  ASSERT_EQ(r.size(), r1.size());
  for (std::size_t i = 0; i < r.size(); ++i) ASSERT_EQ(r[i], r1[i]) << i;
}

TEST_P(ThreadsTest, BfsValidUnderContention) {
  // Racy tryVisit CAS: any winner is fine, the tree must stay valid.
  auto g = graph::rmat(12, 60'000);
  for (int round = 0; round < 3; ++round) {
    auto parent = bfs<delay_policy>(g, 0);
    EXPECT_TRUE(graph::check_bfs_tree(g, 0, [&](std::size_t v) {
      return parent[v].load(std::memory_order_relaxed);
    }));
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ThreadsTest,
                         ::testing::Values(2, 4, 8),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

}  // namespace
