// Unit tests for getRegion (region_stream / region_bid): the delayed
// binary-search-and-walk machinery behind filter and flatten outputs
// (Fig. 10 lines 41-43, Fig. 3).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "array/array_ops.hpp"
#include "core/region.hpp"

namespace {

using pbds::parray;
using pbds::region_bid;
using pbds::region_stream;

// Build pieces from a vector-of-vectors.
std::shared_ptr<parray<parray<int>>> make_pieces(
    const std::vector<std::vector<int>>& vs) {
  return std::make_shared<parray<parray<int>>>(
      parray<parray<int>>::tabulate(vs.size(), [&](std::size_t k) {
        return parray<int>::tabulate(
            vs[k].size(), [&, k](std::size_t j) { return vs[k][j]; });
      }));
}

std::shared_ptr<parray<std::size_t>> offsets_of(
    const std::vector<std::vector<int>>& vs) {
  auto [off, total] = pbds::array_ops::size_offsets(
      vs.size(), [&](std::size_t k) { return vs[k].size(); });
  (void)total;
  return std::make_shared<parray<std::size_t>>(std::move(off));
}

std::vector<int> drain_bid_block(const auto& bid, std::size_t j) {
  auto s = bid.block(j);
  std::vector<int> out;
  for (std::size_t k = 0; k < bid.block_length(j); ++k)
    out.push_back(s.next());
  return out;
}

std::vector<int> drain_all(const auto& bid) {
  std::vector<int> out;
  for (std::size_t j = 0; j < bid.num_blocks(); ++j) {
    auto b = drain_bid_block(bid, j);
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

TEST(Region, StreamWalksAcrossPieces) {
  auto pieces = make_pieces({{1, 2}, {3}, {4, 5, 6}});
  region_stream<parray<parray<int>>> s{pieces.get(), 0, 0};
  std::vector<int> out;
  for (int i = 0; i < 6; ++i) out.push_back(s.next());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(Region, StreamSkipsEmptyPieces) {
  auto pieces = make_pieces({{}, {1}, {}, {}, {2, 3}, {}});
  region_stream<parray<parray<int>>> s{pieces.get(), 0, 0};
  std::vector<int> out;
  for (int i = 0; i < 3; ++i) out.push_back(s.next());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(Region, StreamStartsMidPiece) {
  auto pieces = make_pieces({{1, 2, 3, 4}});
  region_stream<parray<parray<int>>> s{pieces.get(), 0, 2};
  EXPECT_EQ(s.next(), 3);
  EXPECT_EQ(s.next(), 4);
}

TEST(Region, BidBlocksPartitionConcatenation) {
  std::vector<std::vector<int>> vs = {{0, 1}, {}, {2, 3, 4, 5}, {6}, {}, {7, 8}};
  for (std::size_t blk : {1u, 2u, 3u, 4u, 9u, 100u}) {
    auto bid = region_bid(make_pieces(vs), offsets_of(vs), 9, blk);
    EXPECT_EQ(bid.size(), 9u);
    EXPECT_EQ(drain_all(bid), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8}))
        << "blk=" << blk;
  }
}

TEST(Region, BidBlockStartsOnTieRunOfEmptyPieces) {
  // Offsets with ties: block boundary lands exactly where several empty
  // pieces share the same offset. upper_bound must pick the last piece
  // with offset <= start so `inner` is in range.
  std::vector<std::vector<int>> vs = {{10, 11}, {}, {}, {12, 13}};
  auto bid = region_bid(make_pieces(vs), offsets_of(vs), 4, 2);
  EXPECT_EQ(drain_bid_block(bid, 0), (std::vector<int>{10, 11}));
  EXPECT_EQ(drain_bid_block(bid, 1), (std::vector<int>{12, 13}));
}

TEST(Region, BidBlocksAreIndependentlyRestartable) {
  // Block functions are pure: demanding block 1 twice, or out of order,
  // gives the same elements.
  std::vector<std::vector<int>> vs = {{1, 2, 3}, {4, 5}, {6, 7, 8, 9}};
  auto bid = region_bid(make_pieces(vs), offsets_of(vs), 9, 4);
  auto b1a = drain_bid_block(bid, 1);
  auto b0 = drain_bid_block(bid, 0);
  auto b1b = drain_bid_block(bid, 1);
  EXPECT_EQ(b1a, b1b);
  EXPECT_EQ(b0, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(b1a, (std::vector<int>{5, 6, 7, 8}));
}

TEST(Region, EmptyRegionHasNoBlocks) {
  std::vector<std::vector<int>> vs = {{}, {}};
  auto bid = region_bid(make_pieces(vs), offsets_of(vs), 0, 4);
  EXPECT_EQ(bid.num_blocks(), 0u);
  EXPECT_EQ(bid.size(), 0u);
}

TEST(Region, SharedOwnershipKeepsPiecesAlive) {
  auto bid = [] {
    std::vector<std::vector<int>> vs = {{42, 43}};
    return region_bid(make_pieces(vs), offsets_of(vs), 2, 8);
  }();  // the shared_ptrs inside the block function keep the data alive
  EXPECT_EQ(drain_all(bid), (std::vector<int>{42, 43}));
}

}  // namespace
