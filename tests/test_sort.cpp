// Unit tests for the parallel merge sort substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "random/rng.hpp"
#include "core/rad.hpp"
#include "sort/merge_sort.hpp"

namespace {

using pbds::parray;

parray<std::int64_t> random_array(std::size_t n, std::uint64_t seed,
                                  std::uint64_t range) {
  pbds::random::rng gen(seed);
  return parray<std::int64_t>::tabulate(n, [&](std::size_t i) {
    return static_cast<std::int64_t>(gen.below(i, range));
  });
}

TEST(Sort, MatchesStdSortAcrossSizes) {
  for (std::size_t n : {0u, 1u, 2u, 100u, 4096u, 4097u, 100'000u}) {
    auto a = random_array(n, n + 1, 1'000'000);
    std::vector<std::int64_t> want(a.begin(), a.end());
    std::sort(want.begin(), want.end());
    pbds::sort::sort_inplace(a);
    ASSERT_EQ(a.size(), want.size());
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(a[i], want[i]) << i;
  }
}

TEST(Sort, AlreadySortedAndReversed) {
  std::size_t n = 50'000;
  auto asc = parray<std::int64_t>::tabulate(
      n, [](std::size_t i) { return (std::int64_t)i; });
  pbds::sort::sort_inplace(asc);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(asc[i], (std::int64_t)i);
  auto desc = parray<std::int64_t>::tabulate(
      n, [n](std::size_t i) { return (std::int64_t)(n - i); });
  pbds::sort::sort_inplace(desc);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(desc[i], (std::int64_t)i + 1);
}

TEST(Sort, ManyDuplicates) {
  auto a = random_array(100'000, 3, 4);  // values in {0,1,2,3}
  pbds::sort::sort_inplace(a);
  std::size_t counts[4] = {};
  auto b = random_array(100'000, 3, 4);
  for (auto x : b) counts[x]++;
  std::size_t i = 0;
  for (std::int64_t v = 0; v < 4; ++v)
    for (std::size_t k = 0; k < counts[v]; ++k) ASSERT_EQ(a[i++], v);
}

TEST(Sort, StabilityPreservesInputOrderOfTies) {
  // (key, original index) pairs sorted by key only: for equal keys the
  // original indices must stay increasing.
  struct kv {
    std::int32_t key;
    std::int32_t idx;
  };
  std::size_t n = 60'000;
  pbds::random::rng gen(9);
  auto a = parray<kv>::tabulate(n, [&](std::size_t i) {
    return kv{static_cast<std::int32_t>(gen.below(i, 16)),
              static_cast<std::int32_t>(i)};
  });
  pbds::sort::sort_inplace(
      a, [](const kv& x, const kv& y) { return x.key < y.key; });
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_LE(a[i - 1].key, a[i].key);
    if (a[i - 1].key == a[i].key) {
      ASSERT_LT(a[i - 1].idx, a[i].idx) << i;
    }
  }
}

TEST(Sort, CustomComparatorDescending) {
  auto a = random_array(10'000, 5, 1'000);
  pbds::sort::sort_inplace(
      a, [](std::int64_t x, std::int64_t y) { return x > y; });
  for (std::size_t i = 1; i < a.size(); ++i) ASSERT_GE(a[i - 1], a[i]);
}

TEST(Sort, SortedCopyOfRad) {
  auto view = pbds::rad_tabulate(1000, [](std::size_t i) {
    return static_cast<std::int64_t>((i * 7919) % 1000);
  });
  auto s = pbds::sort::sorted(view);
  for (std::size_t i = 1; i < s.size(); ++i) ASSERT_LE(s[i - 1], s[i]);
  EXPECT_EQ(view[0], static_cast<std::int64_t>(0));  // source untouched
}

TEST(Sort, DeterministicAcrossWorkerCounts) {
  auto a = random_array(200'000, 11, 1 << 20);
  auto b = a.clone();
  unsigned before = pbds::sched::num_workers();
  pbds::sched::set_num_workers(4);
  pbds::sort::sort_inplace(a);
  pbds::sched::set_num_workers(1);
  pbds::sort::sort_inplace(b);
  pbds::sched::set_num_workers(before);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << i;
}

}  // namespace
