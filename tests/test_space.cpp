// The paper's space claims as executable assertions: for each fusion
// pattern, the delayed library must allocate asymptotically less than the
// baselines, measured with the byte-exact accounting. These are the §5/§6
// headline claims — not "delay is a bit smaller" but "delay is O(b) or
// O(survivors) where the baselines are O(n)".
#include <gtest/gtest.h>

#include <cstdint>

#include "benchmarks/bfs.hpp"
#include "benchmarks/integrate.hpp"
#include "benchmarks/policies.hpp"
#include "core/block.hpp"
#include "memory/tracking.hpp"

namespace {

using namespace pbds;  // NOLINT

constexpr std::size_t kN = 1 << 18;  // 256K elements, 512 blocks of 512
constexpr std::size_t kB = 512;

// map -> reduce: delay allocates O(b); array allocates O(n) twice.
TEST(SpaceClaims, MapReduce) {
  scoped_block_size guard(kB);
  auto in = parray<std::int64_t>::tabulate(
      kN, [](std::size_t i) { return (std::int64_t)i; });
  memory::space_meter ma;
  {
    auto m = array_policy::map([](std::int64_t x) { return x * 2; },
                               array_policy::view(in));
    volatile auto r = array_policy::reduce(
        [](std::int64_t a, std::int64_t b) { return a + b; },
        std::int64_t{0}, m);
    (void)r;
  }
  std::int64_t array_bytes = ma.allocated_bytes();

  memory::space_meter md;
  {
    auto m = delay_policy::map([](std::int64_t x) { return x * 2; },
                               delay_policy::view(in));
    volatile auto r = delay_policy::reduce(
        [](std::int64_t a, std::int64_t b) { return a + b; },
        std::int64_t{0}, m);
    (void)r;
  }
  std::int64_t delay_bytes = md.allocated_bytes();

  EXPECT_GE(array_bytes, static_cast<std::int64_t>(kN * 8));  // O(n)
  EXPECT_LE(delay_bytes,
            static_cast<std::int64_t>(8 * (kN / kB) * 8));  // O(b)
  EXPECT_GE(array_bytes / std::max<std::int64_t>(delay_bytes, 1), 50);
}

// scan pipeline: delay O(b); rad O(n) (materialized scan output).
TEST(SpaceClaims, ScanPipeline) {
  scoped_block_size guard(kB);
  auto in = parray<std::int64_t>::tabulate(
      kN, [](std::size_t i) { return (std::int64_t)(i % 5); });
  auto run = [&](auto p) {
    using P = decltype(p);
    auto [pre, tot] = P::scan(
        [](std::int64_t a, std::int64_t b) { return a + b; },
        std::int64_t{0}, P::view(in));
    (void)tot;
    volatile auto r = P::reduce(
        [](std::int64_t a, std::int64_t b) { return a + b; },
        std::int64_t{0}, pre);
    (void)r;
  };
  memory::space_meter mr;
  run(rad_policy{});
  std::int64_t rad_bytes = mr.allocated_bytes();
  memory::space_meter md;
  run(delay_policy{});
  std::int64_t delay_bytes = md.allocated_bytes();
  EXPECT_GE(rad_bytes, static_cast<std::int64_t>(kN * 8));
  EXPECT_LE(delay_bytes, static_cast<std::int64_t>(8 * (kN / kB) * 8));
}

// filter: delay allocates ~survivors; array allocates n-sized map output
// plus survivors plus packing.
TEST(SpaceClaims, SparseFilter) {
  scoped_block_size guard(kB);
  auto in = parray<std::int64_t>::tabulate(
      kN, [](std::size_t i) { return (std::int64_t)i; });
  auto run = [&](auto p) {
    using P = decltype(p);
    auto kept = P::filter([](std::int64_t x) { return x % 1000 == 0; },
                          P::view(in));
    volatile auto r = P::reduce(
        [](std::int64_t a, std::int64_t b) { return a + b; },
        std::int64_t{0}, kept);
    (void)r;
  };
  memory::space_meter md;
  run(delay_policy{});
  std::int64_t delay_bytes = md.allocated_bytes();
  // survivors ~ kN/1000 int64s + offsets (kN/kB size_ts) + slack.
  EXPECT_LE(delay_bytes, static_cast<std::int64_t>(64 * (kN / kB) * 8));
  EXPECT_LT(delay_bytes, static_cast<std::int64_t>(kN));  // << n * 8
}

// The integrate benchmark: delay allocates O(b), array O(n) (the paper's
// 250x space story).
TEST(SpaceClaims, IntegrateAllocation) {
  scoped_block_size guard(kB);
  memory::space_meter ma;
  volatile double ra = bench::integrate<array_policy>(kN);
  (void)ra;
  std::int64_t array_bytes = ma.allocated_bytes();
  memory::space_meter md;
  volatile double rd = bench::integrate<delay_policy>(kN);
  (void)rd;
  std::int64_t delay_bytes = md.allocated_bytes();
  EXPECT_GE(array_bytes, static_cast<std::int64_t>(kN * 8));
  EXPECT_GE(array_bytes / std::max<std::int64_t>(delay_bytes, 1), 100);
}

// §5.1's BFS claim: total allocation O(N + M/B) for delay vs O(N + M) for
// array. With M >> N the ratio must be substantial.
TEST(SpaceClaims, BfsAllocation) {
  scoped_block_size guard(kB);
  auto g = graph::uniform(1 << 10, 1 << 17);  // M = 128 * N
  memory::space_meter ma;
  { auto p = bench::bfs<array_policy>(g, 0); }
  std::int64_t array_bytes = ma.allocated_bytes();
  memory::space_meter md;
  { auto p = bench::bfs<delay_policy>(g, 0); }
  std::int64_t delay_bytes = md.allocated_bytes();
  EXPECT_GT(array_bytes, 4 * delay_bytes);
}

// Peak residency (not just total allocation) must also improve: the scan
// pipeline holds only partials at peak under delay.
TEST(SpaceClaims, PeakResidencyScan) {
  scoped_block_size guard(kB);
  auto in = parray<std::int64_t>::tabulate(
      kN, [](std::size_t i) { return (std::int64_t)i; });
  auto run = [&](auto p) {
    using P = decltype(p);
    auto [pre, tot] = P::scan(
        [](std::int64_t a, std::int64_t b) { return a + b; },
        std::int64_t{0}, P::view(in));
    (void)tot;
    volatile auto r = P::reduce(
        [](std::int64_t a, std::int64_t b) { return a + b; },
        std::int64_t{0}, pre);
    (void)r;
  };
  memory::space_meter mr;
  run(rad_policy{});
  std::int64_t rad_peak = mr.peak_delta_bytes();
  memory::space_meter md;
  run(delay_policy{});
  std::int64_t delay_peak = md.peak_delta_bytes();
  EXPECT_GT(rad_peak, 10 * std::max<std::int64_t>(delay_peak, 1));
}

}  // namespace
