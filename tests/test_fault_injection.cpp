// Allocation fault injector + exception safety of the library pipelines.
//
// The invariant under test: an allocation failure anywhere inside
// scan / filter / filter_op / flatten — scan partials, filter pack
// buffers, flatten offset arrays, output buffers — propagates out as
// std::bad_alloc and leaks nothing: bytes_live returns exactly to its
// pre-call baseline once the in-scope inputs are destroyed. The sweeps
// run under the sequential and deterministic schedulers AND the real
// work-stealing pool (the fault then fires on an arbitrary worker and
// must cross the fork-join layer's capture/cancel/rethrow protocol —
// DESIGN.md §"Failure semantics"), and the pool must stay reusable.
#include <gtest/gtest.h>

#include <cstdint>
#include <new>
#include <numeric>
#include <utility>
#include <vector>

#include "array/parray.hpp"
#include "benchmarks/policies.hpp"
#include "memory/budget.hpp"
#include "memory/counting_allocator.hpp"
#include "memory/tracking.hpp"
#include "sched/deterministic.hpp"
#include "sched/exec_policy.hpp"

namespace {

using namespace pbds;  // NOLINT

// --- the injector itself -----------------------------------------------------

TEST(FaultInjection, FailsExactlyTheNthAllocation) {
  sched::scoped_sequential seq;
  for (std::int64_t nth = 0; nth < 4; ++nth) {
    auto faults = memory::scoped_alloc_faults::fail_nth(nth);
    std::int64_t succeeded = 0;
    try {
      for (int i = 0; i < 8; ++i) {
        auto a = parray<int>::uninitialized(4);  // exactly one allocation
        ++succeeded;
      }
      FAIL() << "no fault delivered for nth=" << nth;
    } catch (const std::bad_alloc&) {
      EXPECT_EQ(succeeded, nth);  // 0-based: nth allocations succeed first
    }
    EXPECT_EQ(faults.injected(), 1);
    // One-shot: the injector stays armed but delivers no second fault.
    EXPECT_TRUE(memory::fault_injection_armed());
    auto b = parray<int>::uninitialized(4);
    EXPECT_EQ(faults.injected(), 1);
  }
  EXPECT_FALSE(memory::fault_injection_armed());  // disarmed on scope exit
}

TEST(FaultInjection, CountersUntouchedByInjectedFailure) {
  sched::scoped_sequential seq;
  std::int64_t live = memory::bytes_live();
  std::int64_t allocs = memory::num_allocs();
  auto faults = memory::scoped_alloc_faults::fail_nth(0);
  EXPECT_THROW((void)parray<int>::uninitialized(64), std::bad_alloc);
  EXPECT_EQ(memory::bytes_live(), live);
  EXPECT_EQ(memory::num_allocs(), allocs);
}

TEST(FaultInjection, ArmedButNeverFiringLeavesResultsIntact) {
  sched::scoped_sequential seq;
  auto faults = memory::scoped_alloc_faults::fail_nth(1'000'000);
  // The guarded (armed) construction paths must still compute the same
  // values as the fast path.
  auto a = parray<std::int64_t>::tabulate(
      2000, [](std::size_t i) { return static_cast<std::int64_t>(i); });
  std::int64_t sum = std::accumulate(a.begin(), a.end(), std::int64_t{0});
  EXPECT_EQ(sum, 1999LL * 2000 / 2);
  EXPECT_EQ(faults.injected(), 0);
}

// --- pipelines under injected failures --------------------------------------

// A pipeline hitting every allocating operation: filter (pack buffers +
// concat), scan (block sums, partials, output), to_array.
template <typename P>
std::int64_t filter_scan_pipeline() {
  auto input = parray<std::int64_t>::tabulate(
      3000, [](std::size_t i) { return static_cast<std::int64_t>((i * 11) % 64); });
  auto evens =
      P::filter([](std::int64_t x) { return (x & 1) == 0; }, P::view(input));
  auto [pre, tot] = P::scan(
      [](std::int64_t a, std::int64_t b) { return a + b; }, std::int64_t{0},
      evens);
  auto arr = P::to_array(std::move(pre));
  std::int64_t acc = tot;
  for (auto v : arr) acc += v;
  return acc;
}

// flatten + filter_op, exercising the ragged-piece offset/copy machinery.
template <typename P>
std::int64_t flatten_pipeline() {
  using buf = memory::tracked_vector<std::int64_t>;
  auto nested = parray<buf>::tabulate(100, [](std::size_t i) {
    buf v;
    for (std::size_t j = 0; j < i % 9; ++j)
      v.push_back(static_cast<std::int64_t>(i + j));
    return v;
  });
  auto flat = P::flatten(nested);
  auto picked = P::filter_op(
      [](std::int64_t x) -> std::optional<std::int64_t> {
        if (x % 3 == 0) return x * 2;
        return std::nullopt;
      },
      flat);
  auto arr = P::to_array(std::move(picked));
  std::int64_t acc = 0;
  for (auto v : arr) acc += v;
  return acc;
}

// Run `pipeline` under fail_nth for EVERY allocation index the fault-free
// run performs, asserting bad_alloc-or-success and zero leaked bytes.
template <typename Pipeline>
void sweep_every_allocation(Pipeline pipeline, std::int64_t expected) {
  std::int64_t baseline = memory::bytes_live();
  std::int64_t total_allocs;
  {
    memory::space_meter m;
    ASSERT_EQ(pipeline(), expected);
    total_allocs = m.alloc_count();
  }
  ASSERT_GT(total_allocs, 0);
  std::int64_t faulted = 0;
  for (std::int64_t nth = 0; nth < total_allocs; ++nth) {
    auto faults = memory::scoped_alloc_faults::fail_nth(nth);
    try {
      // The armed guarded paths may allocate in a different pattern than
      // the fault-free probe, so late nth values can complete cleanly;
      // completed runs must still produce the right answer.
      EXPECT_EQ(pipeline(), expected) << "nth=" << nth;
    } catch (const std::bad_alloc&) {
      ++faulted;
    }
    EXPECT_EQ(memory::bytes_live(), baseline)
        << "leak after injected fault at allocation " << nth;
  }
  EXPECT_GT(faulted, 0);
}

TEST(FaultInjection, FilterScanPipelineLeakFreeSequential_Array) {
  sched::scoped_sequential seq;
  sweep_every_allocation([] { return filter_scan_pipeline<array_policy>(); },
                         filter_scan_pipeline<array_policy>());
}

TEST(FaultInjection, FilterScanPipelineLeakFreeSequential_Rad) {
  sched::scoped_sequential seq;
  sweep_every_allocation([] { return filter_scan_pipeline<rad_policy>(); },
                         filter_scan_pipeline<rad_policy>());
}

TEST(FaultInjection, FilterScanPipelineLeakFreeSequential_Delay) {
  sched::scoped_sequential seq;
  sweep_every_allocation([] { return filter_scan_pipeline<delay_policy>(); },
                         filter_scan_pipeline<delay_policy>());
}

TEST(FaultInjection, FlattenPipelineLeakFreeSequential_Array) {
  sched::scoped_sequential seq;
  sweep_every_allocation([] { return flatten_pipeline<array_policy>(); },
                         flatten_pipeline<array_policy>());
}

TEST(FaultInjection, FlattenPipelineLeakFreeSequential_Delay) {
  sched::scoped_sequential seq;
  sweep_every_allocation([] { return flatten_pipeline<delay_policy>(); },
                         flatten_pipeline<delay_policy>());
}

TEST(FaultInjection, FilterScanPipelineLeakFreeDeterministic) {
  std::int64_t expected;
  {
    sched::scoped_sequential seq;
    expected = filter_scan_pipeline<delay_policy>();
  }
  // Under the deterministic scheduler the fork tree interleaves, so the
  // failing allocation lands in different operations per seed.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    sched::scoped_deterministic det(seed, 4);
    sweep_every_allocation([] { return filter_scan_pipeline<delay_policy>(); },
                           expected);
  }
}

// --- the real work-stealing pool ---------------------------------------------
//
// Same sweeps under exec_mode::parallel: the injected bad_alloc now lands
// on whichever worker performs the Nth allocation — possibly inside a
// stolen job — and must still reach the caller as a single bad_alloc on
// the forking thread, leak nothing, and leave the pool able to run a
// clean pipeline immediately afterwards.

TEST(FaultInjection, FilterScanPipelineLeakFreeRealPool_Array) {
  ASSERT_EQ(sched::current_exec_mode(), sched::exec_mode::parallel);
  std::int64_t expected = filter_scan_pipeline<array_policy>();
  sweep_every_allocation([] { return filter_scan_pipeline<array_policy>(); },
                         expected);
  EXPECT_EQ(filter_scan_pipeline<array_policy>(), expected);  // pool intact
}

TEST(FaultInjection, FilterScanPipelineLeakFreeRealPool_Rad) {
  ASSERT_EQ(sched::current_exec_mode(), sched::exec_mode::parallel);
  std::int64_t expected = filter_scan_pipeline<rad_policy>();
  sweep_every_allocation([] { return filter_scan_pipeline<rad_policy>(); },
                         expected);
  EXPECT_EQ(filter_scan_pipeline<rad_policy>(), expected);
}

TEST(FaultInjection, FilterScanPipelineLeakFreeRealPool_Delay) {
  ASSERT_EQ(sched::current_exec_mode(), sched::exec_mode::parallel);
  std::int64_t expected = filter_scan_pipeline<delay_policy>();
  sweep_every_allocation([] { return filter_scan_pipeline<delay_policy>(); },
                         expected);
  EXPECT_EQ(filter_scan_pipeline<delay_policy>(), expected);
}

TEST(FaultInjection, FlattenPipelineLeakFreeRealPool_Array) {
  ASSERT_EQ(sched::current_exec_mode(), sched::exec_mode::parallel);
  std::int64_t expected = flatten_pipeline<array_policy>();
  sweep_every_allocation([] { return flatten_pipeline<array_policy>(); },
                         expected);
  EXPECT_EQ(flatten_pipeline<array_policy>(), expected);
}

TEST(FaultInjection, FlattenPipelineLeakFreeRealPool_Delay) {
  ASSERT_EQ(sched::current_exec_mode(), sched::exec_mode::parallel);
  std::int64_t expected = flatten_pipeline<delay_policy>();
  sweep_every_allocation([] { return flatten_pipeline<delay_policy>(); },
                         expected);
  EXPECT_EQ(flatten_pipeline<delay_policy>(), expected);
}

TEST(FaultInjection, ProbabilityModeLeakFreeRealPool) {
  ASSERT_EQ(sched::current_exec_mode(), sched::exec_mode::parallel);
  std::int64_t expected = filter_scan_pipeline<delay_policy>();
  std::int64_t baseline = memory::bytes_live();
  std::int64_t faulted_runs = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    {
      auto faults =
          memory::scoped_alloc_faults::fail_with_probability(seed, 0.05);
      try {
        EXPECT_EQ(filter_scan_pipeline<delay_policy>(), expected)
            << "seed=" << seed;
      } catch (const std::bad_alloc&) {
        ++faulted_runs;
      }
    }
    EXPECT_EQ(memory::bytes_live(), baseline) << "leak with seed " << seed;
    // The pool must come back clean between faulted runs.
    ASSERT_EQ(filter_scan_pipeline<delay_policy>(), expected)
        << "pool wedged after seed " << seed;
  }
  EXPECT_GT(faulted_runs, 0);
}

TEST(FaultInjection, ProbabilityModeLeakFreeAcrossSeeds) {
  sched::scoped_sequential seq;
  std::int64_t expected = filter_scan_pipeline<delay_policy>();
  std::int64_t baseline = memory::bytes_live();
  std::int64_t faulted_runs = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    auto faults =
        memory::scoped_alloc_faults::fail_with_probability(seed, 0.05);
    try {
      EXPECT_EQ(filter_scan_pipeline<delay_policy>(), expected)
          << "seed=" << seed;
    } catch (const std::bad_alloc&) {
      ++faulted_runs;
    }
    EXPECT_EQ(memory::bytes_live(), baseline) << "leak with seed " << seed;
  }
  // With ~dozens of allocations per run at p=0.05, some runs must fault.
  EXPECT_GT(faulted_runs, 0);
}

// Budget admission runs the fault injector first: with both active, an
// injected fault wins (it throws plain bad_alloc, not budget_exceeded) and
// neither mechanism leaks reservation or live bytes.
TEST(FaultInjection, ComposesWithBudgetWithoutLeaking) {
  sched::scoped_sequential seq;
  std::int64_t baseline = memory::bytes_live();
  {
    memory::budget_scope budget(static_cast<std::size_t>(baseline) +
                                (1u << 20));
    auto faults = memory::scoped_alloc_faults::fail_nth(1);
    bool injected = false;
    try {
      auto a = parray<char>::uninitialized(64);
      auto b = parray<char>::uninitialized(64);  // injector fires here
      (void)a;
      (void)b;
    } catch (const pbds::budget_exceeded&) {
      ADD_FAILURE() << "injected fault misreported as a budget refusal";
    } catch (const std::bad_alloc&) {
      injected = true;
    }
    EXPECT_TRUE(injected);
    EXPECT_EQ(memory::bytes_live(), baseline);
    // The budget is still enforced after the injected fault: the refusal
    // path must not have left a stale reservation behind.
    EXPECT_THROW(parray<char>::uninitialized(2u << 20),
                 pbds::budget_exceeded);
    EXPECT_EQ(memory::bytes_live(), baseline);
  }
}

}  // namespace
