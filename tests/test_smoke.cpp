// End-to-end smoke test: the three libraries produce identical results on a
// representative pipeline, across awkward sizes and block sizes.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "benchmarks/policies.hpp"
#include "core/block.hpp"

namespace {

using pbds::parray;

template <typename P>
std::int64_t pipeline(const parray<std::int64_t>& a) {
  // map -> scan -> map -> filter -> reduce : exercises RAD and BID paths.
  auto xs = P::map([](std::int64_t x) { return x + 1; }, P::view(a));
  auto [pre, total] = P::scan(
      [](std::int64_t u, std::int64_t v) { return u + v; },
      std::int64_t{0}, xs);
  auto ys = P::map([](std::int64_t x) { return 2 * x; }, pre);
  auto kept = P::filter([](std::int64_t x) { return x % 3 != 0; }, ys);
  auto s = P::reduce([](std::int64_t u, std::int64_t v) { return u + v; },
                     std::int64_t{0}, kept);
  return s + total;
}

std::int64_t pipeline_reference(const parray<std::int64_t>& a) {
  std::int64_t acc = 0, s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t pre2 = 2 * acc;
    if (pre2 % 3 != 0) s += pre2;
    acc += a[i] + 1;
  }
  return s + acc;
}

TEST(Smoke, ThreeLibrariesAgree) {
  for (std::size_t blk : {1u, 3u, 64u, 2048u}) {
    pbds::scoped_block_size guard(blk);
    for (std::size_t n : {0u, 1u, 2u, 63u, 64u, 65u, 1000u, 4096u}) {
      auto a = parray<std::int64_t>::tabulate(n, [](std::size_t i) {
        return static_cast<std::int64_t>((i * 37) % 101) - 50;
      });
      std::int64_t want = pipeline_reference(a);
      EXPECT_EQ(pipeline<pbds::array_policy>(a), want)
          << "array n=" << n << " blk=" << blk;
      EXPECT_EQ(pipeline<pbds::rad_policy>(a), want)
          << "rad n=" << n << " blk=" << blk;
      EXPECT_EQ(pipeline<pbds::delay_policy>(a), want)
          << "delay n=" << n << " blk=" << blk;
    }
  }
}

template <typename P>
std::size_t flatten_pipeline(std::size_t k) {
  // flatten(map(tabulate)) -> filter_op -> reduce
  auto nested = P::map(
      [](std::size_t i) {
        return P::tabulate(i % 5, [i](std::size_t j) { return i + j; });
      },
      P::iota(k));
  auto flat = P::flatten(nested);
  auto odd = P::filter_op(
      [](std::size_t x) -> std::optional<std::size_t> {
        if (x % 2 == 1) return x * 10;
        return std::nullopt;
      },
      flat);
  return P::reduce([](std::size_t u, std::size_t v) { return u + v; },
                   std::size_t{0}, odd);
}

std::size_t flatten_reference(std::size_t k) {
  std::size_t s = 0;
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < i % 5; ++j)
      if ((i + j) % 2 == 1) s += (i + j) * 10;
  return s;
}

TEST(Smoke, FlattenFilterOpAgree) {
  for (std::size_t blk : {1u, 7u, 256u}) {
    pbds::scoped_block_size guard(blk);
    for (std::size_t k : {0u, 1u, 10u, 500u}) {
      std::size_t want = flatten_reference(k);
      EXPECT_EQ(flatten_pipeline<pbds::array_policy>(k), want)
          << "array k=" << k << " blk=" << blk;
      EXPECT_EQ(flatten_pipeline<pbds::rad_policy>(k), want)
          << "rad k=" << k << " blk=" << blk;
      EXPECT_EQ(flatten_pipeline<pbds::delay_policy>(k), want)
          << "delay k=" << k << " blk=" << blk;
    }
  }
}

}  // namespace
