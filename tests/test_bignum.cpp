// Unit tests for the bignum substrate: the carry-symbol algebra (the
// associativity that the parallel scan relies on) and the reference adder.
#include <gtest/gtest.h>

#include <cstdint>

#include "bignum/bignum.hpp"

namespace {

namespace bn = pbds::bignum;
using bn::carry;

TEST(Bignum, ClassifyBoundaries) {
  EXPECT_EQ(bn::classify(0), carry::kill);
  EXPECT_EQ(bn::classify(254), carry::kill);
  EXPECT_EQ(bn::classify(255), carry::propagate);
  EXPECT_EQ(bn::classify(256), carry::generate);
  EXPECT_EQ(bn::classify(510), carry::generate);
}

TEST(Bignum, CombineSemantics) {
  // y decides unless y propagates.
  EXPECT_EQ(bn::combine(carry::kill, carry::generate), carry::generate);
  EXPECT_EQ(bn::combine(carry::generate, carry::kill), carry::kill);
  EXPECT_EQ(bn::combine(carry::generate, carry::propagate), carry::generate);
  EXPECT_EQ(bn::combine(carry::kill, carry::propagate), carry::kill);
  EXPECT_EQ(bn::combine(carry::propagate, carry::propagate),
            carry::propagate);
}

TEST(Bignum, CombineIsAssociativeExhaustively) {
  // The parallel scan is only correct if combine is associative; check all
  // 27 triples.
  constexpr carry all[] = {carry::kill, carry::propagate, carry::generate};
  for (carry x : all)
    for (carry y : all)
      for (carry z : all)
        EXPECT_EQ(bn::combine(bn::combine(x, y), z),
                  bn::combine(x, bn::combine(y, z)));
}

TEST(Bignum, PropagateIsTwoSidedIdentity) {
  constexpr carry all[] = {carry::kill, carry::propagate, carry::generate};
  for (carry x : all) {
    EXPECT_EQ(bn::combine(carry::propagate, x), x);
    EXPECT_EQ(bn::combine(x, carry::propagate), x);
  }
}

TEST(Bignum, ResolveAppliesCarry) {
  EXPECT_EQ(bn::resolve(10, carry::kill), 10);
  EXPECT_EQ(bn::resolve(10, carry::generate), 11);
  EXPECT_EQ(bn::resolve(10, carry::propagate), 10);  // no GEN upstream
  EXPECT_EQ(bn::resolve(255, carry::generate), 0);   // wraps
  EXPECT_EQ(bn::resolve(510, carry::generate), 255);
}

TEST(Bignum, ReferenceAddSmallNumbers) {
  // 0x01ff + 0x0001 = 0x0200 (little-endian digits).
  auto a = pbds::parray<bn::digit>::tabulate(2, [](std::size_t i) {
    return i == 0 ? bn::digit{0xff} : bn::digit{0x01};
  });
  auto b = pbds::parray<bn::digit>::tabulate(2, [](std::size_t i) {
    return i == 0 ? bn::digit{0x01} : bn::digit{0x00};
  });
  auto s = bn::reference_add(a, b);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 0x00);
  EXPECT_EQ(s[1], 0x02);
  EXPECT_EQ(s[2], 0x00);
}

TEST(Bignum, ReferenceAddFullCarryChain) {
  // 0xffff + 0x0001 = 0x10000.
  auto a = bn::all_ones(2);
  auto b = pbds::parray<bn::digit>::tabulate(2, [](std::size_t i) {
    return i == 0 ? bn::digit{0x01} : bn::digit{0x00};
  });
  auto s = bn::reference_add(a, b);
  EXPECT_EQ(s[0], 0x00);
  EXPECT_EQ(s[1], 0x00);
  EXPECT_EQ(s[2], 0x01);
}

TEST(Bignum, RandomBignumIsDeterministic) {
  auto a = bn::random_bignum(100, 9);
  auto b = bn::random_bignum(100, 9);
  auto c = bn::random_bignum(100, 10);
  int same_c = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(a[i], b[i]);
    same_c += a[i] == c[i];
  }
  EXPECT_LT(same_c, 20);  // different seed: mostly different digits
}

}  // namespace
