// Differential fuzzing: random pipelines of sequence operations are run
// through all three libraries and a sequential std::vector model; all four
// must agree exactly. Each seed drives both the input data and the
// pipeline shape (op sequence, coefficients), so every case in the sweep
// is a distinct program.
//
// The library interpreter applies ops in chunks of two and materializes
// between chunks. This keeps template instantiation bounded while testing
// ALL 64 ordered pairs of operations as *fused* compositions — pairwise
// fusion (map into scan, scan into filter, filter into zip, ...) is the
// mechanism the paper introduces, so pairs are the right coverage unit.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "benchmarks/policies.hpp"
#include "core/block.hpp"
#include "random/rng.hpp"

namespace {

using namespace pbds;  // NOLINT
using std::int64_t;

enum class op : int {
  map_affine,      // x -> a*x + b
  filter_mod,      // keep x mod a == b mod a
  scan_plus,       // exclusive prefix sums
  scan_inc_plus,   // inclusive prefix sums
  zip_iota_add,    // x_i -> x_i + i
  filter_op_halve, // keep even, halve
  take_k,          // keep first a*10
  drop_k,          // drop first b
  kNumOps
};

struct step {
  op o;
  int64_t a, b;
};

const char* op_name(op o) {
  switch (o) {
    case op::map_affine: return "map_affine";
    case op::filter_mod: return "filter_mod";
    case op::scan_plus: return "scan_plus";
    case op::scan_inc_plus: return "scan_inc_plus";
    case op::zip_iota_add: return "zip_iota_add";
    case op::filter_op_halve: return "filter_op_halve";
    case op::take_k: return "take_k";
    case op::drop_k: return "drop_k";
    default: return "?";
  }
}

// Human-readable pipeline descriptor, printed with any failing assertion so
// the exact randomly-drawn program is visible without re-deriving it from
// the seed.
std::string describe_pipeline(const std::vector<step>& steps) {
  std::string out;
  for (const auto& s : steps) {
    if (!out.empty()) out += " | ";
    out += op_name(s.o);
    out += "(a=" + std::to_string(s.a) + ",b=" + std::to_string(s.b) + ")";
  }
  return out.empty() ? "<identity>" : out;
}

std::vector<step> make_pipeline(random::rng gen, std::size_t len) {
  std::vector<step> steps;
  for (std::size_t i = 0; i < len; ++i) {
    steps.push_back(step{
        static_cast<op>(gen.below(3 * i + 100, (std::uint64_t)op::kNumOps)),
        static_cast<int64_t>(gen.below(3 * i + 101, 7)) + 1,
        static_cast<int64_t>(gen.below(3 * i + 102, 13))});
  }
  return steps;
}

// --- sequential model ---------------------------------------------------------

void model_apply(std::vector<int64_t>& v, const step& s) {
  switch (s.o) {
    case op::map_affine:
      for (auto& x : v) x = s.a * x + s.b;
      break;
    case op::filter_mod: {
      std::vector<int64_t> keep;
      for (auto x : v)
        if (((x % s.a) + s.a) % s.a == s.b % s.a) keep.push_back(x);
      v = std::move(keep);
      break;
    }
    case op::scan_plus: {
      int64_t acc = 0;
      for (auto& x : v) {
        int64_t nx = acc + x;
        x = acc;
        acc = nx;
      }
      break;
    }
    case op::scan_inc_plus: {
      int64_t acc = 0;
      for (auto& x : v) {
        acc += x;
        x = acc;
      }
      break;
    }
    case op::zip_iota_add:
      for (std::size_t i = 0; i < v.size(); ++i)
        v[i] += static_cast<int64_t>(i);
      break;
    case op::filter_op_halve: {
      std::vector<int64_t> keep;
      for (auto x : v)
        if (x % 2 == 0) keep.push_back(x / 2);
      v = std::move(keep);
      break;
    }
    case op::take_k:
      if (v.size() > static_cast<std::size_t>(s.a * 10))
        v.resize(static_cast<std::size_t>(s.a * 10));
      break;
    case op::drop_k:
      v.erase(v.begin(),
              v.begin() + std::min(v.size(), static_cast<std::size_t>(s.b)));
      break;
    default:
      break;
  }
}

int64_t model_run(std::vector<int64_t> v, const std::vector<step>& steps) {
  for (const auto& s : steps) model_apply(v, s);
  int64_t acc = 0;
  for (std::size_t i = 0; i < v.size(); ++i)
    acc += v[i] * static_cast<int64_t>(i % 17 + 1);
  return acc + static_cast<int64_t>(v.size()) * 1'000'003;
}

// --- library interpreter --------------------------------------------------------

// Apply one step to a policy sequence and pass the (differently-typed)
// result to the continuation.
template <typename P, typename Seq, typename K>
int64_t apply_one(Seq&& s, const step& st, K&& k) {
  switch (st.o) {
    case op::map_affine:
      return k(P::map([a = st.a, b = st.b](int64_t x) { return a * x + b; },
                      s));
    case op::filter_mod:
      return k(P::filter(
          [a = st.a, b = st.b](int64_t x) {
            return ((x % a) + a) % a == b % a;
          },
          s));
    case op::scan_plus:
      return k(
          P::scan([](int64_t x, int64_t y) { return x + y; }, int64_t{0}, s)
              .first);
    case op::scan_inc_plus:
      return k(P::scan_inclusive([](int64_t x, int64_t y) { return x + y; },
                                 int64_t{0}, s)
                   .first);
    case op::zip_iota_add:
      return k(P::map(
          [](const std::pair<int64_t, std::size_t>& xi) {
            return xi.first + static_cast<int64_t>(xi.second);
          },
          P::zip(s, P::iota(s.size()))));
    case op::filter_op_halve:
      return k(P::filter_op(
          [](int64_t x) -> std::optional<int64_t> {
            if (x % 2 == 0) return x / 2;
            return std::nullopt;
          },
          s));
    case op::take_k: {
      auto arr = P::to_array(std::forward<Seq>(s));
      std::size_t keep =
          std::min(arr.size(), static_cast<std::size_t>(st.a * 10));
      auto sp = std::make_shared<decltype(arr)>(std::move(arr));
      return k(P::tabulate(keep, [sp](std::size_t i) { return (*sp)[i]; }));
    }
    case op::drop_k: {
      auto arr = P::to_array(std::forward<Seq>(s));
      std::size_t d = std::min(arr.size(), static_cast<std::size_t>(st.b));
      std::size_t rest = arr.size() - d;
      auto sp = std::make_shared<decltype(arr)>(std::move(arr));
      return k(P::tabulate(rest,
                           [sp, d](std::size_t i) { return (*sp)[i + d]; }));
    }
    default:
      return 0;
  }
}

template <typename P, typename Seq>
int64_t lib_finish(const Seq& s) {
  auto weighted = P::map(
      [](const std::pair<std::size_t, int64_t>& ix) {
        return ix.second * static_cast<int64_t>(ix.first % 17 + 1);
      },
      P::zip(P::iota(s.size()), s));
  int64_t acc = P::reduce([](int64_t a, int64_t b) { return a + b; },
                          int64_t{0}, weighted);
  return acc + static_cast<int64_t>(s.size()) * 1'000'003;
}

template <typename P>
int64_t lib_run(parray<int64_t> cur, const std::vector<step>& steps,
                std::size_t k) {
  if (k == steps.size()) return lib_finish<P>(P::view(cur));
  if (k + 1 == steps.size()) {
    return apply_one<P>(P::view(cur), steps[k],
                        [&](auto&& s1) { return lib_finish<P>(s1); });
  }
  // Two fused ops, then materialize and recurse (bounds template depth
  // while covering every ordered op pair as a fused composition).
  return apply_one<P>(P::view(cur), steps[k], [&](auto&& s1) {
    return apply_one<P>(std::forward<decltype(s1)>(s1), steps[k + 1],
                        [&](auto&& s2) {
                          return lib_run<P>(
                              P::to_array(std::forward<decltype(s2)>(s2)),
                              steps, k + 2);
                        });
  });
}

struct FuzzParam {
  std::uint64_t seed;
  std::size_t n;
  std::size_t block;
  std::size_t pipeline_len;
};

class FuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(FuzzTest, AllLibrariesMatchModel) {
  auto p = GetParam();
  scoped_block_size guard(p.block);
  random::rng gen(p.seed);
  auto input = parray<int64_t>::tabulate(p.n, [&](std::size_t i) {
    return static_cast<int64_t>(gen.below(i, 201)) - 100;
  });
  auto steps = make_pipeline(gen.split(99), p.pipeline_len);
  SCOPED_TRACE(::testing::Message()
               << "seed=" << p.seed << " n=" << p.n << " block=" << p.block
               << "\npipeline: " << describe_pipeline(steps)
               << "\n[replay: PBDS_SEED=" << p.seed
               << " ./test_fuzz --gtest_filter=*_n" << p.n << "_B" << p.block
               << "_L" << p.pipeline_len << "]");
  int64_t want = model_run({input.begin(), input.end()}, steps);
  EXPECT_EQ(lib_run<array_policy>(input.clone(), steps, 0), want);
  EXPECT_EQ(lib_run<rad_policy>(input.clone(), steps, 0), want);
  EXPECT_EQ(lib_run<delay_policy>(input.clone(), steps, 0), want);
}

std::vector<FuzzParam> fuzz_params() {
  // PBDS_SEED=N replays a CI failure: the whole (n, block, len) grid runs
  // under that one seed, and the failing combination is selected with the
  // --gtest_filter printed in the failure's trace.
  std::optional<std::uint64_t> replay;
  if (const char* env = std::getenv("PBDS_SEED"))
    replay = std::strtoull(env, nullptr, 0);
  std::vector<FuzzParam> ps;
  std::uint64_t seed = 1;
  for (std::size_t n : {0u, 1u, 37u, 1000u, 4099u}) {
    for (std::size_t block : {1u, 16u, 512u}) {
      for (std::size_t len : {1u, 2u, 4u, 7u}) {
        ps.push_back(FuzzParam{replay.value_or(seed), n, block, len});
        ++seed;
      }
    }
  }
  return ps;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzTest, ::testing::ValuesIn(fuzz_params()),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param.seed) +
                                  "_n" + std::to_string(info.param.n) +
                                  "_B" + std::to_string(info.param.block) +
                                  "_L" +
                                  std::to_string(info.param.pipeline_len);
                         });

}  // namespace
