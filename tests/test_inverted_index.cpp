// Tests for the inverted-index workload (scan -> zip -> filterOp -> apply
// fusion chain) across all three libraries.
#include <gtest/gtest.h>

#include "benchmarks/inverted_index.hpp"
#include "benchmarks/policies.hpp"
#include "core/block.hpp"

namespace {

using namespace pbds;         // NOLINT
using namespace pbds::bench;  // NOLINT

parray<char> from_string(const std::string& s) {
  return parray<char>::tabulate(s.size(),
                                [&](std::size_t i) { return s[i]; });
}

TEST(InvertedIndex, TinyCorpusByHand) {
  // doc 0: "apple bat"; doc 1: "cat apple"; doc 2: "bat"
  auto corpus = from_string("apple bat\ncat apple\nbat\n");
  auto idx = index_reference(corpus);
  EXPECT_EQ(idx['a' - 'a'].postings, 2u);  // apple in docs 0 and 1
  EXPECT_EQ(idx['b' - 'a'].postings, 2u);  // bat in docs 0 and 2
  EXPECT_EQ(idx['c' - 'a'].postings, 1u);  // cat in doc 1
  EXPECT_EQ(idx['z' - 'a'].postings, 0u);
  auto h = [](std::uint32_t doc) {
    return (doc + 1) * 0x9e3779b97f4a7c15ull;
  };
  EXPECT_EQ(idx['a' - 'a'].doc_hash, h(0) + h(1));
  EXPECT_EQ(idx['b' - 'a'].doc_hash, h(0) + h(2));
}

class IndexTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  scoped_block_size guard_{GetParam()};
};

TEST_P(IndexTest, AllLibrariesMatchReference) {
  auto corpus = text::random_lines(30'000, 40.0, 6.0);
  auto want = index_reference(corpus);
  EXPECT_EQ(build_index<array_policy>(corpus), want);
  EXPECT_EQ(build_index<rad_policy>(corpus), want);
  EXPECT_EQ(build_index<delay_policy>(corpus), want);
}

TEST_P(IndexTest, EdgeCases) {
  for (const char* s :
       {"", "\n", "a", "a\n", "\n\na\n\n", "   \n  ", "one\ntwo\nthree"}) {
    auto corpus = from_string(s);
    auto want = index_reference(corpus);
    EXPECT_EQ(build_index<delay_policy>(corpus), want) << "corpus=" << s;
    EXPECT_EQ(build_index<array_policy>(corpus), want) << "corpus=" << s;
  }
}

// Allocation claim at a realistic block size only: with B = 1 the O(n/B)
// per-block terms legitimately degenerate to O(n).
TEST(InvertedIndex, DelayAllocatesLessThanArray) {
  scoped_block_size guard(2048);
  auto corpus = text::random_lines(100'000, 40.0, 6.0);
  memory::space_meter ma;
  build_index<array_policy>(corpus);
  auto array_bytes = ma.allocated_bytes();
  memory::space_meter md;
  build_index<delay_policy>(corpus);
  auto delay_bytes = md.allocated_bytes();
  EXPECT_GT(array_bytes, 4 * delay_bytes);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, IndexTest,
                         ::testing::Values(1, 64, 2048),
                         [](const auto& info) {
                           return "B" + std::to_string(info.param);
                         });

}  // namespace
