// Structural invariants of the BID representation itself: block counts,
// block lengths, blockification of RADs, and consistency of the global
// block size across a pipeline.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/delayed.hpp"

namespace {

namespace d = pbds::delayed;
using pbds::scoped_block_size;

TEST(BidInvariants, BlockLengthsSumToN) {
  for (std::size_t blk : {1u, 2u, 3u, 7u, 64u}) {
    scoped_block_size guard(blk);
    for (std::size_t n : {0u, 1u, 2u, 63u, 64u, 65u, 129u}) {
      auto bd = d::bid_of(d::iota(n));
      std::size_t total = 0;
      for (std::size_t j = 0; j < bd.num_blocks(); ++j) {
        std::size_t len = bd.block_length(j);
        if (j + 1 < bd.num_blocks()) {
          ASSERT_EQ(len, blk) << "non-final block must be full";
        } else {
          ASSERT_GE(len, 1u) << "final block must be nonempty";
          ASSERT_LE(len, blk);
        }
        total += len;
      }
      ASSERT_EQ(total, n) << "n=" << n << " blk=" << blk;
    }
  }
}

TEST(BidInvariants, NumBlocksFormula) {
  EXPECT_EQ(pbds::num_blocks_for(0, 4), 0u);
  EXPECT_EQ(pbds::num_blocks_for(1, 4), 1u);
  EXPECT_EQ(pbds::num_blocks_for(4, 4), 1u);
  EXPECT_EQ(pbds::num_blocks_for(5, 4), 2u);
  EXPECT_EQ(pbds::num_blocks_for(8, 4), 2u);
  EXPECT_EQ(pbds::num_blocks_for(9, 4), 3u);
}

TEST(BidInvariants, BlockifiedRadYieldsSameElements) {
  scoped_block_size guard(5);
  auto r = d::map([](std::size_t i) { return 3 * i + 1; }, d::iota(23));
  auto bd = d::bid_of(r);
  std::size_t i = 0;
  for (std::size_t j = 0; j < bd.num_blocks(); ++j) {
    auto st = bd.block(j);
    for (std::size_t k = 0; k < bd.block_length(j); ++k, ++i) {
      ASSERT_EQ(st.next(), 3 * i + 1) << i;
    }
  }
  ASSERT_EQ(i, 23u);
}

TEST(BidInvariants, BlockifiedRadRespectsOffset) {
  scoped_block_size guard(4);
  auto r = d::drop(d::iota(100), 37);  // offset-shifted RAD
  auto bd = d::bid_of(r);
  auto st = bd.block(0);
  EXPECT_EQ(st.next(), 37u);
  auto st2 = bd.block(2);  // starts at element 8 of the view
  EXPECT_EQ(st2.next(), 45u);
}

TEST(BidInvariants, PipelinePreservesBlockSize) {
  scoped_block_size guard(6);
  auto t = d::iota(50);
  auto [pre, tot] = d::scan([](std::size_t a, std::size_t b) { return a + b; },
                            std::size_t{0}, t);
  (void)tot;
  EXPECT_EQ(pre.block_size, 6u);
  auto m = d::map([](std::size_t x) { return x; }, pre);
  EXPECT_EQ(m.block_size, 6u);
  auto z = d::zip(m, d::iota(50));
  EXPECT_EQ(z.block_size, 6u);
  auto f = d::filter([](const auto&) { return true; }, z);
  EXPECT_EQ(f.block_size, 6u);
}

TEST(BidInvariants, ScanOutputLengthAndTotal) {
  scoped_block_size guard(3);
  for (std::size_t n : {0u, 1u, 3u, 10u}) {
    auto [pre, tot] = d::scan(
        [](std::size_t a, std::size_t b) { return a + b; }, std::size_t{0},
        d::iota(n));
    EXPECT_EQ(pre.size(), n);
    EXPECT_EQ(tot, n == 0 ? 0 : n * (n - 1) / 2);
  }
}

TEST(BidInvariants, FilterOutputUsesInputBlockSize) {
  // The filter's output BID must keep the pipeline's blocking so later
  // zips align.
  scoped_block_size guard(8);
  auto f1 = d::filter([](std::size_t x) { return x % 2 == 0; }, d::iota(64));
  auto f2 = d::filter([](std::size_t x) { return x % 2 == 1; }, d::iota(64));
  EXPECT_EQ(f1.size(), f2.size());
  EXPECT_EQ(f1.block_size, f2.block_size);
  auto z = d::zip(f1, f2);  // must not assert
  auto pairs = d::to_array(z);
  EXPECT_EQ(pairs[5], (std::pair<std::size_t, std::size_t>(10, 11)));
}

}  // namespace

namespace {

TEST(BidInvariants, ZipOfOffsetShiftedRads) {
  // RADs carry (offset, n, f); zip must respect both sides' offsets.
  namespace dd = pbds::delayed;
  auto a = dd::drop(dd::iota(100), 10);  // 10..99
  auto b = dd::drop(dd::iota(100), 20);  // 20..99
  auto z = dd::zip(dd::take(a, 80), b);  // both length 80
  auto arr = dd::to_array(z);
  ASSERT_EQ(arr.size(), 80u);
  EXPECT_EQ(arr[0], (std::pair<std::size_t, std::size_t>(10, 20)));
  EXPECT_EQ(arr[79], (std::pair<std::size_t, std::size_t>(89, 99)));
}

TEST(BidInvariants, ReverseComposesWithZip) {
  namespace dd = pbds::delayed;
  auto fwd = dd::iota(10);
  auto rev = dd::reverse(dd::iota(10));
  auto arr = dd::to_array(dd::zip(fwd, rev));
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_EQ(arr[i], (std::pair<std::size_t, std::size_t>(i, 9 - i)));
  }
}

}  // namespace
