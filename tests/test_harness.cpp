// Tests for the benchmark harness (argument parsing and the warmup+repeat
// measurement protocol of Appendix A.7).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "array/parray.hpp"
#include "bench_common/harness.hpp"

namespace {

namespace bc = pbds::bench_common;

bc::options parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string prog = "prog";
  argv.push_back(prog.data());
  for (auto& a : args) argv.push_back(a.data());
  return bc::options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Harness, Defaults) {
  auto o = parse({});
  EXPECT_EQ(o.scale, 1.0);
  EXPECT_EQ(o.repeat, 3);
  EXPECT_EQ(o.warmup, 0.25);
  EXPECT_TRUE(o.procs.empty());
}

TEST(Harness, ParsesFlags) {
  auto o = parse({"--scale", "0.5", "--repeat", "7", "--warmup", "1.5"});
  EXPECT_EQ(o.scale, 0.5);
  EXPECT_EQ(o.repeat, 7);
  EXPECT_EQ(o.warmup, 1.5);
}

TEST(Harness, ParsesProcsList) {
  auto o = parse({"--procs", "1,2,8,72"});
  EXPECT_EQ(o.procs, (std::vector<unsigned>{1, 2, 8, 72}));
}

TEST(Harness, ScaledSizes) {
  auto o = parse({"--scale", "0.25"});
  EXPECT_EQ(o.scaled(1000), 250u);
  EXPECT_EQ(o.scaled(1), 1u);  // never drops to zero
  auto o2 = parse({"--scale", "2"});
  EXPECT_EQ(o2.scaled(1000), 2000u);
}

TEST(Harness, MeasureRunsWarmupThenRepeats) {
  std::atomic<int> calls{0};
  bc::options opt;
  opt.repeat = 5;
  opt.warmup = 0.0;  // deadline passes after the mandatory first run
  auto m = bc::measure([&] { calls++; }, opt);
  // at least 1 warmup run + exactly 5 timed runs
  EXPECT_GE(calls.load(), 6);
  EXPECT_GE(m.seconds, 0.0);
}

TEST(Harness, MeasureReportsAllocationsPerRun) {
  bc::options opt;
  opt.repeat = 4;
  opt.warmup = 0.0;
  auto m = bc::measure(
      [] {
        auto a = pbds::parray<char>::filled(1 << 12, 'x');
        bc::do_not_optimize(a.data());
      },
      opt);
  EXPECT_EQ(m.allocated_bytes, 1 << 12);  // per-run average
  EXPECT_GE(m.peak_bytes, 1 << 12);
}

TEST(Harness, RatioAndMb) {
  EXPECT_EQ(bc::ratio(10.0, 4.0), 2.5);
  EXPECT_EQ(bc::ratio(10.0, 0.0), 0.0);
  EXPECT_EQ(bc::mb(1024 * 1024), 1.0);
}

}  // namespace
