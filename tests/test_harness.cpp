// Tests for the benchmark harness (argument parsing and the warmup+repeat
// measurement protocol of Appendix A.7).
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "array/parray.hpp"
#include "bench_common/harness.hpp"

namespace {

namespace bc = pbds::bench_common;

bc::options parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string prog = "prog";
  argv.push_back(prog.data());
  for (auto& a : args) argv.push_back(a.data());
  return bc::options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Harness, Defaults) {
  auto o = parse({});
  EXPECT_EQ(o.scale, 1.0);
  EXPECT_EQ(o.repeat, 3);
  EXPECT_EQ(o.warmup, 0.25);
  EXPECT_TRUE(o.procs.empty());
}

TEST(Harness, ParsesFlags) {
  auto o = parse({"--scale", "0.5", "--repeat", "7", "--warmup", "1.5"});
  EXPECT_EQ(o.scale, 0.5);
  EXPECT_EQ(o.repeat, 7);
  EXPECT_EQ(o.warmup, 1.5);
}

TEST(Harness, ParsesProcsList) {
  auto o = parse({"--procs", "1,2,8,72"});
  EXPECT_EQ(o.procs, (std::vector<unsigned>{1, 2, 8, 72}));
}

TEST(Harness, ScaledSizes) {
  auto o = parse({"--scale", "0.25"});
  EXPECT_EQ(o.scaled(1000), 250u);
  EXPECT_EQ(o.scaled(1), 1u);  // never drops to zero
  auto o2 = parse({"--scale", "2"});
  EXPECT_EQ(o2.scaled(1000), 2000u);
}

TEST(Harness, MeasureRunsWarmupThenRepeats) {
  std::atomic<int> calls{0};
  bc::options opt;
  opt.repeat = 5;
  opt.warmup = 0.0;  // deadline passes after the mandatory first run
  auto m = bc::measure([&] { calls++; }, opt);
  // at least 1 warmup run + exactly 5 timed runs
  EXPECT_GE(calls.load(), 6);
  EXPECT_GE(m.seconds, 0.0);
}

TEST(Harness, MeasureReportsAllocationsPerRun) {
  bc::options opt;
  opt.repeat = 4;
  opt.warmup = 0.0;
  auto m = bc::measure(
      [] {
        auto a = pbds::parray<char>::filled(1 << 12, 'x');
        bc::do_not_optimize(a.data());
      },
      opt);
  EXPECT_EQ(m.allocated_bytes, 1 << 12);  // per-run average
  EXPECT_GE(m.peak_bytes, 1 << 12);
}

TEST(Harness, RatioAndMb) {
  EXPECT_EQ(bc::ratio(10.0, 4.0), 2.5);
  EXPECT_EQ(bc::ratio(10.0, 0.0), 0.0);
  EXPECT_EQ(bc::mb(1024 * 1024), 1.0);
}

// --- strict argument validation ----------------------------------------------
//
// Malformed values for recognized flags must exit(2) with a message, not
// silently become 0 the way atoi/atof did.

TEST(HarnessDeathTest, RejectsMalformedRepeat) {
  EXPECT_EXIT(parse({"--repeat", "abc"}), ::testing::ExitedWithCode(2),
              "invalid value");
  EXPECT_EXIT(parse({"--repeat", "0"}), ::testing::ExitedWithCode(2),
              "invalid value");
  EXPECT_EXIT(parse({"--repeat", "3x"}), ::testing::ExitedWithCode(2),
              "invalid value");
}

TEST(HarnessDeathTest, RejectsMalformedScaleAndWarmup) {
  EXPECT_EXIT(parse({"--scale", "zero"}), ::testing::ExitedWithCode(2),
              "invalid value");
  EXPECT_EXIT(parse({"--scale", "0"}), ::testing::ExitedWithCode(2),
              "invalid value");
  EXPECT_EXIT(parse({"--scale", "-1"}), ::testing::ExitedWithCode(2),
              "invalid value");
  EXPECT_EXIT(parse({"--warmup", "-0.5"}), ::testing::ExitedWithCode(2),
              "invalid value");
}

TEST(HarnessDeathTest, RejectsMalformedProcsList) {
  EXPECT_EXIT(parse({"--procs", "1,,4"}), ::testing::ExitedWithCode(2),
              "invalid --procs");
  EXPECT_EXIT(parse({"--procs", "1;4"}), ::testing::ExitedWithCode(2),
              "invalid --procs");
  EXPECT_EXIT(parse({"--procs", "0"}), ::testing::ExitedWithCode(2),
              "invalid --procs");
}

TEST(HarnessDeathTest, RejectsMissingValue) {
  EXPECT_EXIT(parse({"--repeat"}), ::testing::ExitedWithCode(2),
              "requires a value");
}

// --- subprocess isolation ------------------------------------------------------

TEST(Isolation, ChildMeasurementRoundTrips) {
  auto r = bc::run_isolated(
      [] {
        bc::measurement m;
        m.seconds = 1.5;
        m.peak_bytes = 12345;
        m.allocated_bytes = 67890;
        return m;
      },
      /*timeout_sec=*/30, /*max_retries=*/0);
  ASSERT_EQ(r.status, bc::run_status::ok);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_DOUBLE_EQ(r.m.seconds, 1.5);
  EXPECT_EQ(r.m.peak_bytes, 12345);
  EXPECT_EQ(r.m.allocated_bytes, 67890);
}

TEST(Isolation, TimeoutKillsWedgedChild) {
  auto r = bc::run_isolated(
      [] {
        for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
        return bc::measurement{};
      },
      /*timeout_sec=*/0.3, /*max_retries=*/0);
  EXPECT_EQ(r.status, bc::run_status::timeout);
  EXPECT_EQ(r.attempts, 1);
}

TEST(Isolation, CrashIsClassifiedAndRetriedBoundedly) {
  auto r = bc::run_isolated(
      []() -> bc::measurement { std::abort(); },
      /*timeout_sec=*/30, /*max_retries=*/2, /*backoff_ms=*/1);
  EXPECT_EQ(r.status, bc::run_status::crashed);
  EXPECT_EQ(r.attempts, 3);  // initial + 2 retries, then gave up
}

TEST(Isolation, BudgetRefusalIsNotRetried) {
  auto r = bc::run_isolated(
      []() -> bc::measurement {
        throw pbds::budget_exceeded(1024, 0, 512);
      },
      /*timeout_sec=*/30, /*max_retries=*/3, /*backoff_ms=*/1);
  EXPECT_EQ(r.status, bc::run_status::budget_exceeded);
  EXPECT_EQ(r.attempts, 1);  // deterministic refusal: no point retrying
}

TEST(Isolation, NonzeroExitIsError) {
  auto r = bc::run_isolated(
      []() -> bc::measurement { throw std::runtime_error("boom"); },
      /*timeout_sec=*/30, /*max_retries=*/0);
  EXPECT_EQ(r.status, bc::run_status::error);
}

// --- partial-results JSON report ----------------------------------------------

TEST(JsonReport, ValidAfterEveryRecord) {
  std::string path = ::testing::TempDir() + "pbds_report_test.json";
  bc::json_report report(path);
  bc::measurement m;
  m.seconds = 0.25;
  m.peak_bytes = 1024;
  m.allocated_bytes = 2048;
  report.add({"linefit", "delay", bc::run_status::ok, 1, m});

  auto slurp = [&] {
    std::FILE* f = std::fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr);
    char buf[4096] = {0};
    std::size_t got = std::fread(buf, 1, sizeof buf - 1, f);
    std::fclose(f);
    return std::string(buf, got);
  };
  std::string one = slurp();
  EXPECT_NE(one.find("\"name\": \"linefit\""), std::string::npos);
  EXPECT_NE(one.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_EQ(one.front(), '[');
  EXPECT_EQ(one[one.size() - 2], ']');  // trailing newline after ]

  // A timed-out configuration is recorded too, and the file stays a
  // complete JSON document after the partial rewrite.
  report.add({"bfs", "array", bc::run_status::timeout, 2,
              bc::measurement{}});
  std::string two = slurp();
  EXPECT_NE(two.find("\"name\": \"bfs\""), std::string::npos);
  EXPECT_NE(two.find("\"status\": \"timeout\""), std::string::npos);
  EXPECT_NE(two.find("\"attempts\": 2"), std::string::npos);
  EXPECT_EQ(two.front(), '[');
  std::remove(path.c_str());
}

TEST(JsonReport, ExtraNumericFieldsAreEmitted) {
  std::string path = ::testing::TempDir() + "pbds_report_extra.json";
  bc::json_report report(path);
  report.add({"soak",
              "delay",
              bc::run_status::ok,
              1,
              bc::measurement{},
              {{"throughput_jobs_per_s", 125.5}, {"shed_rate", 0.25}}});
  ASSERT_TRUE(report.ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096] = {0};
  std::size_t got = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  std::string text(buf, got);
  EXPECT_NE(text.find("\"throughput_jobs_per_s\": 125.5"), std::string::npos);
  EXPECT_NE(text.find("\"shed_rate\": 0.25"), std::string::npos);
  std::remove(path.c_str());
}

TEST(JsonReport, WriteFailureKeepsPreviousReportAndSetsError) {
  // Simulate an unwritable tmp file (the same failure mode as ENOSPC at
  // open) by planting a directory where the tmp file would go. The flush
  // must report the error and leave the previous complete report alone.
  std::string path = ::testing::TempDir() + "pbds_report_err.json";
  std::string tmp = path + ".tmp";
  std::remove(path.c_str());
  bc::json_report report(path);
  report.add({"first", "delay", bc::run_status::ok, 1, bc::measurement{}});
  ASSERT_TRUE(report.ok());

  ASSERT_EQ(::mkdir(tmp.c_str(), 0700), 0);
  report.add({"second", "delay", bc::run_status::ok, 1, bc::measurement{}});
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.last_error().empty());
  // The published report is still the last complete one.
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096] = {0};
  std::size_t got = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  std::string text(buf, got);
  EXPECT_NE(text.find("\"first\""), std::string::npos);
  EXPECT_EQ(text.find("\"second\""), std::string::npos);
  EXPECT_EQ(text[text.size() - 2], ']');  // complete document, not truncated

  // Once the obstruction clears, the next add recovers and publishes both
  // records.
  ASSERT_EQ(::rmdir(tmp.c_str()), 0);
  report.add({"third", "delay", bc::run_status::ok, 1, bc::measurement{}});
  EXPECT_TRUE(report.ok());
  f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::memset(buf, 0, sizeof buf);
  got = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  text.assign(buf, got);
  EXPECT_NE(text.find("\"second\""), std::string::npos);
  EXPECT_NE(text.find("\"third\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(JsonReport, RenameFailureCleansUpTmpFile) {
  // Final path is a directory: the write succeeds but the atomic rename
  // cannot, so the tmp file must be removed rather than left behind.
  std::string path = ::testing::TempDir() + "pbds_report_dir.json";
  ASSERT_EQ(::mkdir(path.c_str(), 0700), 0);
  bc::json_report report(path);
  report.add({"only", "delay", bc::run_status::ok, 1, bc::measurement{}});
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.last_error().empty());
  std::FILE* f = std::fopen((path + ".tmp").c_str(), "r");
  EXPECT_EQ(f, nullptr);  // no stale tmp litter
  if (f != nullptr) std::fclose(f);
  ASSERT_EQ(::rmdir(path.c_str()), 0);
}

}  // namespace
