// Unit tests for the RAD-only library (the `rad` baseline): same index
// fusion for the delayed ops, but scan/filter/flatten materialize outputs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/block.hpp"
#include "rad/rad_ops.hpp"

namespace {

namespace r = pbds::radlib;
using pbds::parray;
using pbds::scoped_block_size;

auto plus = [](auto a, auto b) { return a + b; };

template <typename Seq>
auto collect(const Seq& s) {
  auto arr = r::to_array(s);
  return std::vector<typename decltype(arr)::value_type>(arr.begin(),
                                                         arr.end());
}

TEST(RadLib, TabulateMapAreLazy) {
  std::atomic<int> calls{0};
  auto t = r::tabulate(100, [&calls](std::size_t i) {
    calls++;
    return (int)i;
  });
  auto m = r::map([](int x) { return x + 5; }, t);
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(m[3], 8);
  EXPECT_EQ(calls.load(), 1);
}

TEST(RadLib, ZipIsRandomAccess) {
  auto z = r::zip(r::iota(5), r::map([](std::size_t i) { return 2 * i; },
                                     r::iota(5)));
  EXPECT_EQ(z[4], (std::pair<std::size_t, std::size_t>(4, 8)));
}

TEST(RadLib, ReduceMatchesFold) {
  scoped_block_size guard(3);
  EXPECT_EQ(r::reduce(plus, 0, r::tabulate(10, [](std::size_t i) {
                        return (int)i;
                      })),
            45);
}

TEST(RadLib, ScanMaterializesOutput) {
  scoped_block_size guard(3);
  std::atomic<int> calls{0};
  auto t = r::tabulate(10, [&calls](std::size_t i) {
    calls++;
    return (int)i + 1;
  });
  auto [pre, total] = r::scan(plus, 0, t);
  EXPECT_EQ(total, 55);
  // Phase 1 + phase 3 both read the (fused) input: 2n evaluations.
  EXPECT_EQ(calls.load(), 20);
  // But the output is an array-backed RAD: consuming it re-reads the
  // ARRAY, not the input function.
  EXPECT_EQ(collect(pre),
            (std::vector<int>{0, 1, 3, 6, 10, 15, 21, 28, 36, 45}));
  EXPECT_EQ(calls.load(), 20);
}

TEST(RadLib, ScanAllocatesLinearOutput) {
  // The R baseline's defining cost: scan output is O(n) allocation.
  scoped_block_size guard(64);
  std::size_t n = 1 << 14;
  pbds::memory::space_meter meter;
  auto [pre, total] = r::scan(plus, std::int64_t{0},
                              r::tabulate(n, [](std::size_t i) {
                                return (std::int64_t)i;
                              }));
  (void)total;
  EXPECT_GE(meter.allocated_bytes(),
            static_cast<std::int64_t>(n * sizeof(std::int64_t)));
}

TEST(RadLib, ScanInclusive) {
  scoped_block_size guard(4);
  auto [inc, total] =
      r::scan_inclusive(plus, 0, r::tabulate(6, [](std::size_t i) {
                          return (int)i + 1;
                        }));
  EXPECT_EQ(total, 21);
  EXPECT_EQ(collect(inc), (std::vector<int>{1, 3, 6, 10, 15, 21}));
}

TEST(RadLib, FilterReturnsContiguousArray) {
  scoped_block_size guard(4);
  auto f = r::filter([](int x) { return x % 2 == 0; },
                     r::tabulate(11, [](std::size_t i) { return (int)i; }));
  static_assert(std::is_same_v<decltype(f), parray<int>>);
  EXPECT_EQ(std::vector<int>(f.begin(), f.end()),
            (std::vector<int>{0, 2, 4, 6, 8, 10}));
}

TEST(RadLib, FilterOp) {
  scoped_block_size guard(3);
  auto f = r::filter_op(
      [](int x) -> std::optional<int> {
        if (x > 5) return x * 10;
        return std::nullopt;
      },
      r::tabulate(9, [](std::size_t i) { return (int)i; }));
  EXPECT_EQ(std::vector<int>(f.begin(), f.end()),
            (std::vector<int>{60, 70, 80}));
}

TEST(RadLib, FlattenMaterializes) {
  scoped_block_size guard(2);
  auto nested = r::map(
      [](std::size_t i) {
        return r::tabulate(i % 3, [i](std::size_t j) { return i * 10 + j; });
      },
      r::iota(5));
  auto flat = r::flatten(nested);
  EXPECT_EQ(std::vector<std::size_t>(flat.begin(), flat.end()),
            (std::vector<std::size_t>{10, 20, 21, 40}));
}

TEST(RadLib, ForceAvoidsReevaluation) {
  std::atomic<int> calls{0};
  auto t = r::tabulate(10, [&calls](std::size_t i) {
    calls++;
    return (int)i;
  });
  auto f = r::force(t);
  EXPECT_EQ(calls.load(), 10);
  EXPECT_EQ(r::reduce(plus, 0, f), 45);
  EXPECT_EQ(r::reduce(plus, 0, f), 45);
  EXPECT_EQ(calls.load(), 10);
}

TEST(RadLib, ApplyEach) {
  std::vector<std::atomic<int>> hits(50);
  r::apply_each(r::iota(50), [&hits](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RadLib, ToArrayOverloadsMoveAndClone) {
  auto a = parray<int>::filled(5, 7);
  const int* p = a.data();
  auto moved = r::to_array(std::move(a));
  EXPECT_EQ(moved.data(), p);  // moved, not copied
  auto cloned = r::to_array(moved);
  EXPECT_NE(cloned.data(), p);  // lvalue => deep copy
  EXPECT_EQ(cloned[4], 7);
}

}  // namespace
