// Worker-loss tolerance: deterministic kill-at-every-boundary sweeps,
// real-pool loss detection / reclamation / repair, bounded quiesce, and
// service-level trace replay under injected worker deaths.
//
// The deterministic sweep is the exhaustive half: for each seed, an
// unarmed run counts the pipeline's kill boundaries, then every boundary
// is killed in turn and the run must either complete with the correct
// result (the kill slid past must-complete regions and never fired) or
// throw pbds::worker_lost — never hang, never return a wrong value. The
// real-pool tests cover the concurrent half: an injected death is
// detected, its stranded claimed job reclaimed (waking any hung joiner),
// and the slot repaired, restoring the pool to full strength. Hangs are
// converted to failures by the ctest timeout.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "array/parray.hpp"
#include "core/block.hpp"
#include "core/delayed.hpp"
#include "memory/tracking.hpp"
#include "recovery/checkpoint_ops.hpp"
#include "sched/deterministic.hpp"
#include "sched/parallel.hpp"
#include "sched/scheduler.hpp"
#include "service/pipeline_service.hpp"

namespace {

namespace delayed = pbds::delayed;
namespace recovery = pbds::recovery;
namespace sched = pbds::sched;

std::uint64_t plus(std::uint64_t a, std::uint64_t b) { return a + b; }

// A small but structurally rich pipeline: tabulate (must-complete
// placeholder construction) feeding a delayed reduce (cancellable fork
// tree) — both boundary populations are present in every run.
std::uint64_t det_workload(std::size_t n) {
  auto a = pbds::parray<std::uint64_t>::tabulate(
      n, [](std::size_t i) { return static_cast<std::uint64_t>(i) * 3u; });
  auto doubled = delayed::map([](std::uint64_t v) { return v * 2; },
                              delayed::view(a));
  return delayed::reduce(plus, std::uint64_t{0}, doubled);
}

// --- deterministic sweep ----------------------------------------------------

TEST(DetWorkerLoss, KillAtEveryBoundarySweepAcrossSeeds) {
  constexpr std::size_t kN = 1 << 13;
  // Small blocks ⇒ the reduce fork tree is deep enough that cancellable
  // boundaries dominate and most nth values actually deliver a kill.
  pbds::scoped_block_size bs(256);
  std::uint64_t kills_delivered_total = 0;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    std::uint64_t golden = 0;
    std::size_t boundaries = 0;
    {
      sched::scoped_deterministic det(seed, 4);
      golden = det_workload(kN);
      boundaries = det.scheduler().num_kill_boundaries();
    }
    ASSERT_GT(boundaries, 0u) << "seed " << seed;
    for (std::size_t nth = 0; nth < boundaries; ++nth) {
      sched::scoped_deterministic det(seed, 4);
      det.scheduler().arm_worker_kill(seed, static_cast<long>(nth));
      bool threw = false;
      std::uint64_t got = 0;
      try {
        got = det_workload(kN);
      } catch (const pbds::worker_lost&) {
        threw = true;
      }
      if (det.scheduler().worker_kills_delivered() > 0) {
        ++kills_delivered_total;
        // A delivered kill must surface at the root join — the region
        // cancelled, not wedged, not silently wrong.
        EXPECT_TRUE(threw) << "seed " << seed << " nth " << nth;
      } else {
        // The kill slid past every remaining (must-complete) boundary
        // and never fired: the run is indistinguishable from clean.
        EXPECT_FALSE(threw) << "seed " << seed << " nth " << nth;
        EXPECT_EQ(got, golden) << "seed " << seed << " nth " << nth;
      }
    }
  }
  // The sweep must exercise the loss path, not just slide past it.
  EXPECT_GT(kills_delivered_total, 0u);
}

TEST(DetWorkerLoss, TraceReplaysFromSeedPair) {
  constexpr std::size_t kN = 1 << 10;
  pbds::scoped_block_size bs(256);
  auto run = [&](std::uint64_t seed, long nth) {
    sched::scoped_deterministic det(seed, 4);
    det.scheduler().arm_worker_kill(seed, nth);
    bool threw = false;
    try {
      (void)det_workload(kN);
    } catch (const pbds::worker_lost&) {
      threw = true;
    }
    return std::tuple(det.scheduler().trace(), det.scheduler().trace_hash(),
                      det.scheduler().worker_kills_delivered(), threw);
  };
  for (std::uint64_t seed : {3ull, 11ull, 29ull}) {
    auto [trace_a, hash_a, kills_a, threw_a] = run(seed, 5);
    auto [trace_b, hash_b, kills_b, threw_b] = run(seed, 5);
    EXPECT_EQ(trace_a, trace_b) << "seed " << seed;
    EXPECT_EQ(hash_a, hash_b) << "seed " << seed;
    EXPECT_EQ(kills_a, kills_b) << "seed " << seed;
    EXPECT_EQ(threw_a, threw_b) << "seed " << seed;
    if (kills_a > 0) {
      std::size_t kill_events = 0;
      for (auto e : trace_a)
        if (e == sched::det_scheduler::event::worker_kill) ++kill_events;
      EXPECT_EQ(kill_events, 1u) << "seed " << seed;
    }
  }
}

TEST(DetWorkerLoss, CheckpointedRetrySalvagesCompletedBlocks) {
  constexpr std::size_t kN = 1 << 12;
  constexpr std::size_t kBlk = 1 << 8;
  // Find a (seed, nth) where the kill lands after some blocks completed:
  // the thrown worker_lost then carries a non-empty ledger snapshot and
  // the retry salvages instead of restarting.
  bool exercised = false;
  for (std::uint64_t seed = 0; seed < 8 && !exercised; ++seed) {
    std::size_t boundaries = 0;
    {
      sched::scoped_deterministic det(seed, 4);
      pbds::scoped_block_size bs(kBlk);
      recovery::job_checkpoint warmup;
      (void)recovery::reduce(plus, std::uint64_t{0},
                             delayed::tabulate(kN,
                                               [](std::size_t i) {
                                                 return static_cast<
                                                     std::uint64_t>(i);
                                               }),
                             warmup.slot<std::uint64_t>(0));
      boundaries = det.scheduler().num_kill_boundaries();
    }
    for (std::size_t nth = boundaries / 4; nth < boundaries; ++nth) {
      recovery::job_checkpoint ck;
      auto xs = delayed::tabulate(
          kN, [](std::size_t i) { return static_cast<std::uint64_t>(i); });
      std::uint64_t at_throw = 0;
      bool threw = false;
      {
        sched::scoped_deterministic det(seed, 4);
        pbds::scoped_block_size bs(kBlk);
        det.scheduler().arm_worker_kill(seed, static_cast<long>(nth));
        try {
          (void)recovery::reduce(plus, std::uint64_t{0}, xs,
                                 ck.slot<std::uint64_t>(0));
        } catch (const pbds::worker_lost& e) {
          threw = true;
          ASSERT_TRUE(e.has_progress());
          at_throw = e.checkpoint_progress().blocks_complete;
          EXPECT_EQ(at_throw, ck.aggregate().blocks_complete);
        }
      }
      if (!threw || at_throw == 0) continue;
      exercised = true;
      // Retry against the same checkpoint: completed blocks salvage, the
      // rest redo, and the result is bit-identical to a clean run.
      std::uint64_t got = 0;
      {
        sched::scoped_deterministic det(seed, 4);
        pbds::scoped_block_size bs(kBlk);
        got = recovery::reduce(plus, std::uint64_t{0}, xs,
                               ck.slot<std::uint64_t>(0));
      }
      EXPECT_EQ(got, static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
      EXPECT_EQ(ck.aggregate().blocks_complete, kN / kBlk);
      EXPECT_GE(ck.aggregate().salvaged, at_throw);
      break;
    }
  }
  ASSERT_TRUE(exercised)
      << "no (seed, nth) produced a mid-run kill with completed blocks";
}

// --- real pool --------------------------------------------------------------

// Drive detection until `min_lost` slots have been declared (the killed
// worker publishes `exited` a moment after the countdown fires, so the
// first few detection passes may legitimately see nothing).
unsigned detect_until(unsigned min_lost, long lost_ms = 1000) {
  unsigned newly = 0;
  for (int spin = 0; spin < 200000 && newly < min_lost; ++spin) {
    {
      std::lock_guard<std::mutex> lock(sched::detail::scheduler_slot_mutex());
      if (auto& slot = sched::detail::global_slot())
        newly += slot->detect_and_reclaim_lost(lost_ms);
    }
    if (newly < min_lost) std::this_thread::yield();
  }
  return newly;
}

unsigned repair_pool() {
  std::lock_guard<std::mutex> lock(sched::detail::scheduler_slot_mutex());
  if (auto& slot = sched::detail::global_slot()) return slot->repair();
  return 0;
}

std::uint64_t real_workload(std::size_t n) {
  auto a = pbds::parray<std::uint64_t>::tabulate(
      n, [](std::size_t i) { return static_cast<std::uint64_t>(i); });
  std::atomic<std::uint64_t> sum{0};
  pbds::parallel_for(
      0, a.size(),
      [&](std::size_t i) { sum.fetch_add(a[i], std::memory_order_relaxed); },
      128);
  return sum.load();
}

TEST(RealWorkerLoss, IdleKillIsDetectedReclaimedAndRepaired) {
  unsigned before = sched::num_workers();
  sched::set_num_workers(4);
  ASSERT_EQ(sched::num_workers(), 4u);

  const std::uint64_t kills0 = sched::worker_kills_delivered();
  sched::arm_worker_kill(/*seed=*/7, /*nth=*/0);
  // Idle workers pass the heartbeat boundary constantly, so the victim
  // dies almost immediately even with no work in flight.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (sched::worker_kills_delivered() == kills0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  ASSERT_EQ(sched::worker_kills_delivered(), kills0 + 1);

  ASSERT_GE(detect_until(1), 1u);
  std::uint64_t lost, repairs;
  {
    std::lock_guard<std::mutex> lock(sched::detail::scheduler_slot_mutex());
    auto& slot = sched::detail::global_slot();
    ASSERT_TRUE(slot);
    lost = slot->workers_lost();
    EXPECT_EQ(slot->lost_pending_repair(), 1u);
  }
  EXPECT_GE(lost, 1u);
  EXPECT_EQ(repair_pool(), 1u);
  {
    std::lock_guard<std::mutex> lock(sched::detail::scheduler_slot_mutex());
    auto& slot = sched::detail::global_slot();
    repairs = slot->repairs();
    EXPECT_EQ(slot->lost_pending_repair(), 0u);
  }
  EXPECT_GE(repairs, 1u);

  // The repaired pool is whole and computes correctly.
  EXPECT_EQ(sched::num_workers(), 4u);
  constexpr std::size_t kN = 1 << 14;
  EXPECT_EQ(real_workload(kN), static_cast<std::uint64_t>(kN) * (kN - 1) / 2);

  sched::disarm_worker_kill();
  sched::set_num_workers(before);
}

TEST(RealWorkerLoss, KillsDuringWorkNeverHangOrCorrupt) {
  unsigned before = sched::num_workers();
  sched::set_num_workers(4);
  constexpr std::size_t kN = 1 << 15;
  const std::uint64_t want = static_cast<std::uint64_t>(kN) * (kN - 1) / 2;

  std::uint64_t delivered_total = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const std::uint64_t kills0 = sched::worker_kills_delivered();
    std::atomic<bool> done{false};
    // Reclaimer stands in for the watchdog: as soon as the kill lands it
    // declares the loss (waking any joiner hung on the stranded claimed
    // job) and repairs the slot.
    std::thread reclaimer([&] {
      while (true) {
        if (sched::worker_kills_delivered() > kills0) {
          std::lock_guard<std::mutex> lock(
              sched::detail::scheduler_slot_mutex());
          if (auto& slot = sched::detail::global_slot()) {
            slot->detect_and_reclaim_lost(1000);
            if (slot->lost_pending_repair() > 0) slot->repair();
          }
        }
        if (done.load(std::memory_order_acquire)) break;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });

    // Arm mid-traffic so the victim's boundaries are predominantly
    // steal boundaries (work in flight): some trials strand a claimed
    // job, some die holding nothing — both must end in a correct result
    // or a worker_lost throw, never a hang (ctest timeout backstop).
    sched::arm_worker_kill(static_cast<std::uint64_t>(trial) * 2654435761u + 1,
                           trial % 8);
    bool threw = false;
    std::uint64_t got = 0;
    try {
      got = real_workload(kN);
    } catch (const pbds::worker_lost&) {
      threw = true;
    }
    if (!threw) EXPECT_EQ(got, want) << "trial " << trial;
    // On an oversubscribed host the workload can finish before the OS
    // ever schedules the victim; idle workers pass heartbeat boundaries
    // continuously, so give the armed kill a bounded window to land.
    for (int spin = 0; spin < 200 && sched::worker_kills_delivered() == kills0;
         ++spin)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    sched::disarm_worker_kill();
    done.store(true, std::memory_order_release);
    reclaimer.join();
    delivered_total += sched::worker_kills_delivered() - kills0;
    // Settle: every delivered kill repaired before the next trial.
    if (sched::worker_kills_delivered() > kills0) {
      for (int spin = 0; spin < 200000; ++spin) {
        unsigned pending = 1;
        {
          std::lock_guard<std::mutex> lock(
              sched::detail::scheduler_slot_mutex());
          if (auto& slot = sched::detail::global_slot()) {
            slot->detect_and_reclaim_lost(1000);
            if (slot->lost_pending_repair() > 0) slot->repair();
            pending = slot->lost_pending_repair();
          } else {
            pending = 0;
          }
        }
        if (pending == 0) break;
        std::this_thread::yield();
      }
    }
    EXPECT_EQ(sched::num_workers(), 4u) << "trial " << trial;
    // Post-repair sanity: the pool still computes correctly.
    EXPECT_EQ(real_workload(1 << 12),
              static_cast<std::uint64_t>(1 << 12) * ((1 << 12) - 1) / 2)
        << "trial " << trial;
  }
  EXPECT_GE(delivered_total, 1u) << "no trial delivered a kill";

  std::uint64_t lost, repaired;
  {
    std::lock_guard<std::mutex> lock(sched::detail::scheduler_slot_mutex());
    auto& slot = sched::detail::global_slot();
    ASSERT_TRUE(slot);
    lost = slot->workers_lost();
    repaired = slot->repairs() + slot->retired_workers();
  }
  // Every detected loss was either repaired or (never here: spawn works)
  // retired — no slot left in limbo.
  EXPECT_EQ(lost, repaired);

  sched::set_num_workers(before);
}

TEST(RealWorkerLoss, QuiesceDeadlineThrowsWithProgress) {
  unsigned before = sched::num_workers();
  sched::set_num_workers(4);

  std::atomic<bool> right_started{false};
  std::atomic<bool> release{false};
  std::atomic<bool> quiesce_threw{false};
  std::atomic<std::uint64_t> executions_seen{0};

  std::thread prober([&] {
    while (!right_started.load(std::memory_order_acquire))
      std::this_thread::yield();
    // A spawned worker is pinned inside the right branch until released,
    // so the bounded quiesce must give up and throw rather than spin.
    try {
      sched::quiesce(std::chrono::milliseconds(50));
    } catch (const pbds::stall_detected& e) {
      quiesce_threw.store(true, std::memory_order_release);
      if (e.has_progress())
        executions_seen.store(e.checkpoint_progress().executions,
                              std::memory_order_release);
    }
    release.store(true, std::memory_order_release);
  });

  pbds::fork2join(
      [&] {
        // Left (run by worker 0 first): hold the fork open until the
        // right branch has been stolen, guaranteeing a busy worker.
        while (!right_started.load(std::memory_order_acquire))
          std::this_thread::yield();
      },
      [&] {
        right_started.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire))
          std::this_thread::yield();
      });
  prober.join();

  EXPECT_TRUE(quiesce_threw.load());
  // With the pool drained, the unbounded form returns promptly.
  sched::quiesce();
  sched::set_num_workers(before);
}

TEST(RealWorkerLoss, DumpWorkerStatsReportsHeartbeatAndDeque) {
  unsigned before = sched::num_workers();
  sched::set_num_workers(2);
  (void)real_workload(1 << 10);

  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* mem = open_memstream(&buf, &len);
  ASSERT_NE(mem, nullptr);
  {
    std::lock_guard<std::mutex> lock(sched::detail::scheduler_slot_mutex());
    auto& slot = sched::detail::global_slot();
    ASSERT_TRUE(slot);
    slot->dump_worker_stats(mem);
  }
  std::fclose(mem);
  std::string out(buf, len);
  free(buf);

  EXPECT_NE(out.find("worker 0"), std::string::npos);
  EXPECT_NE(out.find("worker 1"), std::string::npos);
  EXPECT_NE(out.find("hb_age_ms="), std::string::npos);
  EXPECT_NE(out.find("deque="), std::string::npos);
  sched::set_num_workers(before);
}

// --- service ----------------------------------------------------------------

TEST(ServiceWorkerLoss, TraceReplaysAndLossIsRetried) {
  using namespace pbds::service;  // NOLINT
  auto run = [](std::uint64_t seed) {
    service_config cfg;
    cfg.queue_capacity = 8;
    cfg.policy = backpressure::reject;
    cfg.dispatchers = 0;  // manual: scripted, deterministic interleaving
    cfg.default_backoff_us = 1;
    pipeline_service svc(cfg);
    pbds::scoped_block_size bs(128);
    sched::scoped_deterministic det(seed, 4);
    det.scheduler().arm_worker_kill(seed, 6);
    std::uint64_t got = 0;
    auto ticket = svc.submit(0, [&] { got = det_workload(1 << 12); });
    while (svc.run_one()) {
    }
    ticket.get();  // the retry after the loss must succeed
    return std::tuple(svc.trace_hash(), svc.stats().worker_lost_seen,
                      svc.stats().completed, svc.stats().retries, got);
  };
  for (std::uint64_t seed : {5ull, 17ull}) {
    auto [hash_a, lost_a, done_a, retries_a, got_a] = run(seed);
    auto [hash_b, lost_b, done_b, retries_b, got_b] = run(seed);
    // Identical seeds ⇒ identical decision traces, loss included.
    EXPECT_EQ(hash_a, hash_b) << "seed " << seed;
    EXPECT_EQ(lost_a, lost_b) << "seed " << seed;
    EXPECT_EQ(done_a, 1u) << "seed " << seed;
    EXPECT_EQ(got_a, got_b) << "seed " << seed;
    if (lost_a > 0) EXPECT_GE(retries_a, 1u) << "seed " << seed;
  }
}

}  // namespace
