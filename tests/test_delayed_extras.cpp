// Tests for the derived delayed operations (enumerate, take, drop,
// reverse, singleton, append, min/max) — including their laziness and
// representation-preservation guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/delayed.hpp"

namespace {

namespace d = pbds::delayed;
using pbds::parray;
using pbds::scoped_block_size;

auto plus = [](auto a, auto b) { return a + b; };

template <typename Seq>
auto collect(const Seq& s) {
  auto arr = d::to_array(s);
  return std::vector<typename decltype(arr)::value_type>(arr.begin(),
                                                         arr.end());
}

TEST(DelayedExtras, Singleton) {
  auto s = d::singleton(std::string("only"));
  EXPECT_EQ(d::length(s), 1u);
  EXPECT_EQ(s[0], "only");
}

TEST(DelayedExtras, EnumeratePairsWithIndices) {
  auto t = d::tabulate(4, [](std::size_t i) { return (int)(i * 10); });
  auto e = d::enumerate(t);
  auto v = collect(e);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[3], (std::pair<std::size_t, int>(3, 30)));
}

TEST(DelayedExtras, EnumerateOfBid) {
  scoped_block_size guard(2);
  auto [pre, tot] = d::scan(plus, 0, d::tabulate(5, [](std::size_t) {
                              return 1;
                            }));
  (void)tot;
  auto v = collect(d::enumerate(pre));
  EXPECT_EQ(v[4], (std::pair<std::size_t, int>(4, 4)));
}

TEST(DelayedExtras, TakeOnRadIsLazy) {
  std::atomic<int> calls{0};
  auto t = d::tabulate(1000, [&calls](std::size_t i) {
    calls++;
    return (int)i;
  });
  auto front = d::take(t, 3);
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(collect(front), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(calls.load(), 3);  // only the taken prefix was evaluated
}

TEST(DelayedExtras, TakeOnBidTruncatesWithoutRealigning) {
  scoped_block_size guard(4);
  auto [pre, tot] = d::scan(plus, 0, d::tabulate(20, [](std::size_t) {
                              return 1;
                            }));
  (void)tot;
  auto front = d::take(pre, 10);
  static_assert(pbds::is_bid_v<decltype(front)>);
  EXPECT_EQ(collect(front),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(DelayedExtras, TakeClampsToLength) {
  auto t = d::iota(5);
  EXPECT_EQ(d::length(d::take(t, 100)), 5u);
  EXPECT_EQ(d::length(d::take(t, 0)), 0u);
}

TEST(DelayedExtras, DropOnRadShiftsOffset) {
  std::atomic<int> calls{0};
  auto t = d::tabulate(100, [&calls](std::size_t i) {
    calls++;
    return (int)i;
  });
  auto rest = d::drop(t, 97);
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(collect(rest), (std::vector<int>{97, 98, 99}));
  EXPECT_EQ(calls.load(), 3);
}

TEST(DelayedExtras, DropClampsToLength) {
  auto t = d::iota(5);
  EXPECT_EQ(d::length(d::drop(t, 100)), 0u);
  EXPECT_EQ(collect(d::drop(t, 0)), (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(DelayedExtras, DropOnBidForces) {
  scoped_block_size guard(3);
  auto [pre, tot] = d::scan(plus, 0, d::tabulate(10, [](std::size_t) {
                              return 2;
                            }));
  (void)tot;
  EXPECT_EQ(collect(d::drop(pre, 7)), (std::vector<int>{14, 16, 18}));
}

TEST(DelayedExtras, TakeDropPartition) {
  auto t = d::map([](std::size_t i) { return (int)(i * i); }, d::iota(10));
  for (std::size_t k : {0u, 1u, 5u, 10u}) {
    auto front = collect(d::take(t, k));
    auto back = collect(d::drop(t, k));
    front.insert(front.end(), back.begin(), back.end());
    EXPECT_EQ(front, collect(t)) << k;
  }
}

TEST(DelayedExtras, ReverseIsLazyInvolution) {
  std::atomic<int> calls{0};
  auto t = d::tabulate(6, [&calls](std::size_t i) {
    calls++;
    return (int)i;
  });
  auto r = d::reverse(t);
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(collect(r), (std::vector<int>{5, 4, 3, 2, 1, 0}));
  EXPECT_EQ(collect(d::reverse(r)), collect(t));
}

TEST(DelayedExtras, AppendConcatenates) {
  auto a = d::tabulate(3, [](std::size_t i) { return (int)i; });
  auto b = d::tabulate(2, [](std::size_t i) { return (int)(i + 100); });
  auto ab = d::append(a, b);
  EXPECT_EQ(d::length(ab), 5u);
  EXPECT_EQ(collect(ab), (std::vector<int>{0, 1, 2, 100, 101}));
  EXPECT_EQ(collect(d::append(b, a)),
            (std::vector<int>{100, 101, 0, 1, 2}));
}

TEST(DelayedExtras, AppendWithEmpty) {
  auto a = d::tabulate(0, [](std::size_t) { return 7; });
  auto b = d::tabulate(2, [](std::size_t i) { return (int)i; });
  EXPECT_EQ(collect(d::append(a, b)), (std::vector<int>{0, 1}));
  EXPECT_EQ(collect(d::append(b, a)), (std::vector<int>{0, 1}));
}

TEST(DelayedExtras, MinMaxValues) {
  scoped_block_size guard(4);
  auto t = d::map([](std::size_t i) { return (int)((i * 7919) % 100) - 50; },
                  d::iota(1000));
  int mn = 1000, mx = -1000;
  for (int x : collect(t)) {
    mn = std::min(mn, x);
    mx = std::max(mx, x);
  }
  EXPECT_EQ(d::min_value(t), mn);
  EXPECT_EQ(d::max_value(t), mx);
}

TEST(DelayedExtras, MinMaxOnBid) {
  scoped_block_size guard(3);
  auto [pre, tot] = d::scan(plus, 0, d::tabulate(10, [](std::size_t i) {
                              return (int)i - 5;
                            }));
  (void)tot;
  // exclusive prefix sums of -5..4: 0,-5,-9,-12,-14,-15,-15,-14,-12,-9
  EXPECT_EQ(d::min_value(pre), -15);
  EXPECT_EQ(d::max_value(pre), 0);
}

TEST(DelayedExtras, TakeOfFilterComposition) {
  scoped_block_size guard(4);
  auto t = d::iota(100);
  auto f = d::filter([](std::size_t x) { return x % 7 == 0; }, t);
  auto v = collect(d::take(f, 3));
  EXPECT_EQ(v, (std::vector<std::size_t>{0, 7, 14}));
}

}  // namespace
