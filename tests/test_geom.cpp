// Unit tests for the geometry substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/geom.hpp"

namespace {

namespace gm = pbds::geom;

TEST(Geom, CrossSign) {
  gm::point2d o{0, 0}, a{1, 0};
  EXPECT_GT(gm::cross(o, a, {0.5, 1.0}), 0);   // left of o->a
  EXPECT_LT(gm::cross(o, a, {0.5, -1.0}), 0);  // right
  EXPECT_EQ(gm::cross(o, a, {2.0, 0.0}), 0);   // collinear
}

TEST(Geom, LineDistanceMonotoneInTrueDistance) {
  gm::point2d a{0, 0}, b{2, 0};
  EXPECT_GT(gm::line_distance(a, b, {1, 3}), gm::line_distance(a, b, {1, 1}));
  EXPECT_EQ(gm::line_distance(a, b, {1, 0}), 0);
}

TEST(Geom, PointsInDiskAreInDisk) {
  auto pts = gm::points_in_disk(10'000, 1);
  double max_r2 = 0;
  for (const auto& p : pts) {
    double r2 = p.x * p.x + p.y * p.y;
    ASSERT_LE(r2, 1.0 + 1e-12);
    max_r2 = std::max(max_r2, r2);
  }
  // Uniform on the disk: some points should be near the rim.
  EXPECT_GT(max_r2, 0.99);
}

TEST(Geom, PointsInDiskCoverAllQuadrants) {
  auto pts = gm::points_in_disk(1000, 2);
  int quad[4] = {};
  for (const auto& p : pts) quad[(p.x >= 0) * 2 + (p.y >= 0)]++;
  for (int q : quad) EXPECT_GT(q, 100);
}

TEST(Geom, BestcutEventsSortedInUnitInterval) {
  auto ev = gm::bestcut_events(10'000, 3);
  double prev = -1;
  std::size_t ends = 0;
  for (const auto& e : ev) {
    ASSERT_GE(e.coord, 0.0);
    ASSERT_LT(e.coord, 1.0);
    ASSERT_GE(e.coord, prev);  // nondecreasing
    prev = e.coord;
    ends += e.is_end;
  }
  // Roughly half the events are box-ends.
  EXPECT_NEAR(static_cast<double>(ends) / 10'000, 0.5, 0.05);
}

TEST(Geom, SahCostEndpoints) {
  // Cut at 0 with no boxes left: everything weighted by right extent.
  EXPECT_EQ(gm::sah_cost(0.0, 0, 100), 100.0);
  // Cut at 1 with all boxes left.
  EXPECT_EQ(gm::sah_cost(1.0, 100, 100), 100.0);
  // Balanced middle cut is cheaper than either extreme.
  EXPECT_LT(gm::sah_cost(0.5, 50, 100), 100.0);
}

}  // namespace
