// Tests for the executable cost semantics (§5, Fig. 11) — both the
// internal consistency of the model (the Fig. 11 rows) and its headline
// predictions: the Fig. 5 read/write totals and the §5.1 BFS bounds.
// Where possible the model's allocation predictions are cross-checked
// against the *measured* allocations of the real library.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/block.hpp"
#include "core/delayed.hpp"
#include "cost/cost.hpp"
#include "cost/rw_model.hpp"
#include "memory/tracking.hpp"

namespace {

namespace c = pbds::cost;
using pbds::scoped_block_size;

TEST(CostModel, TabulateIsEagerO1) {
  c::cost_meter m;
  auto x = c::tabulate(m, 1'000'000);
  EXPECT_EQ(x.n, 1'000'000u);
  EXPECT_EQ(x.r, c::repr::rad);
  EXPECT_LE(m.total().work, 2.0);
  EXPECT_EQ(m.total().alloc, 0.0);
}

TEST(CostModel, MapAddsDelayedWorkOnly) {
  c::cost_meter m;
  auto x = c::tabulate(m, 100);
  auto y = c::map(m, x, c::costs{5, 5, 0});
  EXPECT_LE(m.total().work, 3.0);  // still O(1) eager
  EXPECT_EQ(y.delayed(0).work, x.delayed(0).work + 5);
  EXPECT_EQ(y.r, c::repr::rad);
}

TEST(CostModel, ForcePaysAllDelayedCosts) {
  scoped_block_size guard(16);
  c::cost_meter m;
  auto x = c::tabulate(m, 160);
  auto y = c::map(m, x, c::costs{3, 3, 0});
  c::cost_meter m2;
  auto z = c::force(m2, y);
  // Work: 160 elements x (1 tabulate + 1 + 3 map + 1) per Fig. 11 chains.
  EXPECT_GE(m2.total().work, 160.0 * 4);
  EXPECT_GE(m2.total().alloc, 160.0);  // the result array
  EXPECT_EQ(z.delayed(7).work, 1.0);   // forced: unit delayed costs
}

TEST(CostModel, ScanAllocatesBlocksNotElements) {
  scoped_block_size guard(64);
  c::cost_meter m;
  auto x = c::tabulate(m, 64 * 100);
  auto y = c::scan(m, x);
  EXPECT_EQ(y.r, c::repr::bid);
  EXPECT_LE(m.total().alloc, 100.0 + 2.0);  // |X|/B = 100 partials
  EXPECT_GE(m.total().work, 6400.0);        // phase 1 reads everything
}

TEST(CostModel, ReduceChargesBmaxSpan) {
  scoped_block_size guard(10);
  c::cost_meter m;
  // Delayed span 2 per element; blocks of 10 -> bmax = 20 within blocks.
  c::cost_seq x{100, c::repr::rad,
                c::constant_delayed(c::costs{2, 2, 0})};
  c::reduce(m, x);
  EXPECT_GE(m.total().span, 20.0);       // at least one block's sum
  EXPECT_LE(m.total().span, 20.0 + 10);  // + log terms, not n
}

TEST(CostModel, FilterAllocatesSurvivorsPlusBlocks) {
  scoped_block_size guard(32);
  c::cost_meter m;
  auto x = c::tabulate(m, 3200);
  auto y = c::filter(m, x, /*m_out=*/17);
  EXPECT_EQ(y.n, 17u);
  EXPECT_EQ(y.r, c::repr::bid);
  // |Y| + |X|/B = 17 + 100 plus O(1) noise, not 3200.
  EXPECT_LE(m.total().alloc, 17.0 + 100.0 + 5.0);
}

TEST(CostModel, FusedBestcutPipelineAllocatesOnlyBlocks) {
  // The whole Fig. 5 pipeline in the model: map -> scan -> map -> reduce
  // must allocate O(b), not O(n).
  scoped_block_size guard(100);
  std::size_t n = 100 * 1000;
  c::cost_meter m;
  auto a = c::tabulate(m, n);
  auto is_end = c::map(m, a);
  auto counts = c::scan(m, is_end);
  auto costs_seq = c::map(m, counts);
  c::reduce(m, costs_seq);
  double b = static_cast<double>(n) / 100.0;
  EXPECT_LE(m.total().alloc, 2 * b + 10);  // O(b)
  EXPECT_GE(m.total().work, 2.0 * n);      // two passes
}

TEST(CostModel, ModelMatchesMeasuredScanAllocation) {
  // Cross-check: the model's byte prediction for a fused scan+reduce
  // pipeline vs the real library's measured allocation.
  scoped_block_size guard(256);
  std::size_t n = 256 * 64;
  // Model (elements):
  c::cost_meter m;
  auto x = c::tabulate(m, n);
  auto y = c::scan(m, x);
  c::reduce(m, y);
  double predicted_elems = m.total().alloc;
  // Measured (bytes of int64):
  pbds::memory::space_meter meter;
  auto t = pbds::delayed::tabulate(
      n, [](std::size_t i) { return (std::int64_t)i; });
  auto [pre, tot] = pbds::delayed::scan(
      [](std::int64_t p, std::int64_t q) { return p + q; },
      std::int64_t{0}, t);
  (void)tot;
  volatile auto r = pbds::delayed::reduce(
      [](std::int64_t p, std::int64_t q) { return p + q; },
      std::int64_t{0}, pre);
  (void)r;
  double measured_elems =
      static_cast<double>(meter.allocated_bytes()) / sizeof(std::int64_t);
  // Same order of magnitude: both are O(blocks), within 4x of each other
  // (the implementation also allocates phase-1 sums and reduce partials).
  EXPECT_LE(measured_elems, 4 * predicted_elems + 16);
  EXPECT_LE(predicted_elems, 4 * measured_elems + 16);
}

TEST(CostModel, Fig5ReadWriteTotals) {
  double n = 1e6, b = 1e3;
  auto rows = c::bestcut_rw_table(n, b);
  auto normal = c::rw_total(rows, false);
  auto fused = c::rw_total(rows, true);
  EXPECT_NEAR(normal.total(), 8 * n, 10 * b);  // 8n + O(b)
  EXPECT_NEAR(fused.total(), 2 * n, 10 * b);   // 2n + O(b)
  EXPECT_NEAR(c::bestcut_rw_forced(n, b).total(), 4 * n, 10 * b);
}

TEST(CostModel, Fig5PhaseBreakdown) {
  double n = 1000, b = 10;
  auto rows = c::bestcut_rw_table(n, b);
  ASSERT_EQ(rows.size(), 6u);
  // Phase 1 of the scan reads n and writes b in both executions.
  EXPECT_EQ(rows[1].normal.reads, n);
  EXPECT_EQ(rows[1].normal.writes, b);
  EXPECT_EQ(rows[1].fused.reads, n);
  // The two maps and phase 3 vanish under fusion.
  EXPECT_EQ(rows[0].fused.total(), 0);
  EXPECT_EQ(rows[3].fused.total(), 0);
  EXPECT_EQ(rows[4].fused.total(), 0);
}

// §5.1: BFS allocation is O(N + M/B). Model one round over a frontier of
// size F with E outgoing edges: flatten allocates F, filter allocates
// F' + E/B, map allocates nothing.
TEST(CostModel, BfsRoundAllocation) {
  scoped_block_size guard(128);
  std::size_t F = 1000, E = 50'000, Fp = 800;
  c::cost_meter m;
  auto frontier = c::tabulate(m, F);
  auto mapped = c::map(m, frontier);  // outPairs construction: O(1)/elt
  auto edges = c::flatten(m, mapped, E, c::constant_delayed(c::kUnit));
  auto next = c::filter(m, edges, Fp);
  EXPECT_EQ(next.n, Fp);
  double bound = static_cast<double>(F) + static_cast<double>(Fp) +
                 static_cast<double>(E) / 128.0;
  EXPECT_LE(m.total().alloc, bound + 10);
  EXPECT_GE(m.total().alloc, bound * 0.5);
}

// Summing the per-round §5.1 bound over a synthetic level structure gives
// O(N + M/B) for the whole BFS.
TEST(CostModel, BfsTotalAllocationBound) {
  scoped_block_size guard(64);
  // 10 rounds; frontier sizes and edge counts sum to N and M.
  std::size_t fs[] = {1, 10, 100, 400, 300, 100, 50, 25, 10, 4};
  std::size_t N = 0, M = 0;
  c::cost_meter m;
  for (int round = 0; round < 9; ++round) {
    std::size_t F = fs[round], E = F * 60, Fp = fs[round + 1];
    N += F;
    M += E;
    auto frontier = c::tabulate(m, F);
    auto mapped = c::map(m, frontier);
    auto edges = c::flatten(m, mapped, E, c::constant_delayed(c::kUnit));
    c::filter(m, edges, Fp);
  }
  double bound = 2.0 * static_cast<double>(N) +
                 static_cast<double>(M) / 64.0;
  EXPECT_LE(m.total().alloc, bound + 100);
}

}  // namespace

namespace {

TEST(CostModel, ZipIsO1AndBidInfectious) {
  pbds::scoped_block_size guard(32);
  c::cost_meter m;
  auto a = c::tabulate(m, 320);
  auto b = c::tabulate(m, 320);
  auto z1 = c::zip(m, a, b);
  EXPECT_EQ(z1.r, c::repr::rad);  // RAD x RAD stays RAD
  auto s = c::scan(m, a);
  c::cost_meter m2;
  auto z2 = c::zip(m2, s, b);
  EXPECT_EQ(z2.r, c::repr::bid);  // BID side forces blockwise zip
  EXPECT_LE(m2.total().work, 2.0);  // zip itself is O(1)
  // Delayed costs of the zip are the sum of both sides'.
  EXPECT_EQ(z2.delayed(3).work,
            s.delayed(3).work + b.delayed(3).work + 1);
}

TEST(CostModel, FilterOpMatchesFilterCosts) {
  pbds::scoped_block_size guard(64);
  c::cost_meter m1, m2;
  auto x1 = c::tabulate(m1, 6400);
  auto x2 = c::tabulate(m2, 6400);
  c::filter(m1, x1, 99, c::costs{4, 4, 0});
  c::filter_op(m2, x2, 99, c::costs{4, 4, 0});
  EXPECT_EQ(m1.total().work, m2.total().work);
  EXPECT_EQ(m1.total().alloc, m2.total().alloc);
}

TEST(CostModel, ScanInclusiveSameAsScan) {
  pbds::scoped_block_size guard(64);
  c::cost_meter m1, m2;
  auto x1 = c::tabulate(m1, 6400);
  auto x2 = c::tabulate(m2, 6400);
  auto y1 = c::scan(m1, x1);
  auto y2 = c::scan_inclusive(m2, x2);
  EXPECT_EQ(m1.total().alloc, m2.total().alloc);
  EXPECT_EQ(y1.r, y2.r);
}

TEST(CostModel, ForcedVsRecomputedMapTradeoff) {
  // The §3 decision as model arithmetic: with an expensive map feeding a
  // scan+reduce, forcing halves the map work but adds n allocation.
  pbds::scoped_block_size guard(128);
  std::size_t n = 12'800;
  c::costs f_cost{10, 10, 0};
  // Recomputed: scan phase 1 + reduce both pay the map.
  c::cost_meter mr;
  auto xr = c::map(mr, c::tabulate(mr, n), f_cost);
  auto sr = c::scan(mr, xr);
  c::reduce(mr, sr);
  // Forced: map paid once in the force; downstream reads unit-cost RAD.
  c::cost_meter mf;
  auto xf = c::map(mf, c::tabulate(mf, n), f_cost);
  auto ff = c::force(mf, xf);
  auto sf = c::scan(mf, ff);
  c::reduce(mf, sf);
  // With W(f)=10, recompute does ~2*10n extra work; force adds n alloc.
  EXPECT_GT(mr.total().work, mf.total().work);
  EXPECT_GT(mf.total().alloc, mr.total().alloc + static_cast<double>(n) - 1);
}

}  // namespace
