// Unit tests for the stream-of-blocks comparator (§2.1 / §6.5): the raw
// range primitives and the SOB bestcut against the reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "benchmarks/bestcut.hpp"
#include "benchmarks/bestcut_sob.hpp"
#include "sob/stream_of_blocks.hpp"

namespace {

using pbds::parray;

TEST(Sob, RangeReduceMatchesAccumulate) {
  for (std::size_t n : {0u, 1u, 100u, 10'000u}) {
    auto a = parray<std::int64_t>::tabulate(n, [](std::size_t i) {
      return static_cast<std::int64_t>(i % 11) - 5;
    });
    std::int64_t want =
        std::accumulate(a.begin(), a.end(), std::int64_t{0});
    EXPECT_EQ(pbds::sob::range_reduce(
                  a.data(), n,
                  [](std::int64_t x, std::int64_t y) { return x + y; },
                  std::int64_t{0}),
              want)
        << n;
  }
}

TEST(Sob, RangeScanExclusiveInPlace) {
  for (std::size_t n : {0u, 1u, 7u, 1000u, 5000u}) {
    auto a = parray<std::int64_t>::tabulate(n, [](std::size_t i) {
      return static_cast<std::int64_t>(i + 1);
    });
    auto expect = std::vector<std::int64_t>(n);
    std::int64_t acc = 100;
    for (std::size_t i = 0; i < n; ++i) {
      expect[i] = acc;
      acc += static_cast<std::int64_t>(i + 1);
    }
    std::int64_t total = pbds::sob::range_scan_exclusive(
        a.data(), n, [](std::int64_t x, std::int64_t y) { return x + y; },
        std::int64_t{100});
    EXPECT_EQ(total, acc) << n;
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(a[i], expect[i]) << i;
  }
}

TEST(Sob, BestcutSobMatchesReference) {
  auto events = pbds::bench::bestcut_input(50'000);
  double want = pbds::bench::bestcut_reference(events);
  for (std::size_t blk : {1u, 10u, 1000u, 50'000u, 100'000u}) {
    EXPECT_DOUBLE_EQ(pbds::bench::bestcut_sob(events, blk), want)
        << "blk=" << blk;
  }
}

TEST(Sob, BestcutSobCarriesStateAcrossBlocks) {
  // A tiny case where the running end-count must cross block boundaries:
  // all events are ends, block size 1.
  auto events = parray<pbds::geom::axis_event>::tabulate(
      4, [](std::size_t i) {
        return pbds::geom::axis_event{0.2 * static_cast<double>(i + 1), 1};
      });
  double want = pbds::bench::bestcut_reference(events);
  EXPECT_DOUBLE_EQ(pbds::bench::bestcut_sob(events, 1), want);
}

}  // namespace
