// Property-based tests: algebraic laws of the sequence operations, checked
// on randomized inputs across a parameterized sweep of (size, block size)
// and verified identically against all three libraries and a sequential
// model built on std::vector.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "benchmarks/policies.hpp"
#include "core/block.hpp"
#include "random/rng.hpp"

namespace {

using namespace pbds;  // NOLINT

struct Param {
  std::size_t n;
  std::size_t block;
  std::uint64_t seed;
};

// PBDS_SEED=N overrides every sweep entry's seed, replaying a CI failure's
// exact input data under the same (n, block) grid.
std::uint64_t active_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("PBDS_SEED"))
    return std::strtoull(env, nullptr, 0);
  return fallback;
}

class PropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    std::uint64_t seed = active_seed(GetParam().seed);
    // Held as a member so the trace stays active for the whole test body
    // (a SCOPED_TRACE local to SetUp expires when SetUp returns): any
    // failing assertion prints the exact configuration and the one-command
    // replay.
    trace_.emplace(__FILE__, __LINE__,
                   ::testing::Message()
                       << "n=" << GetParam().n << " block="
                       << GetParam().block << " seed=" << seed
                       << "  [replay: PBDS_SEED=" << seed
                       << " ./test_properties --gtest_filter=*n"
                       << GetParam().n << "_B" << GetParam().block << "_*]");
    guard_ = std::make_unique<scoped_block_size>(GetParam().block);
    random::rng gen(seed);
    input_ = parray<std::int64_t>::tabulate(
        GetParam().n, [&](std::size_t i) {
          return static_cast<std::int64_t>(gen.below(i, 2001)) - 1000;
        });
  }

  std::vector<std::int64_t> model() const {
    return {input_.begin(), input_.end()};
  }

  std::optional<::testing::ScopedTrace> trace_;
  std::unique_ptr<scoped_block_size> guard_;
  parray<std::int64_t> input_;
};

auto plus = [](std::int64_t a, std::int64_t b) { return a + b; };
auto sq = [](std::int64_t x) { return x * x % 997; };
auto is_pos = [](std::int64_t x) { return x > 0; };

template <typename P, typename Seq>
std::vector<std::int64_t> drain(Seq&& s) {
  auto arr = P::to_array(std::forward<Seq>(s));
  return {arr.begin(), arr.end()};
}

// --- law: map distributes over the model -------------------------------------

template <typename P>
void check_map_law(const parray<std::int64_t>& in,
                   const std::vector<std::int64_t>& model) {
  auto got = drain<P>(P::map(sq, P::view(in)));
  std::vector<std::int64_t> want(model.size());
  std::transform(model.begin(), model.end(), want.begin(), sq);
  EXPECT_EQ(got, want);
}

TEST_P(PropertyTest, MapMatchesModel) {
  check_map_law<array_policy>(input_, model());
  check_map_law<rad_policy>(input_, model());
  check_map_law<delay_policy>(input_, model());
}

// --- law: reduce == std::accumulate ------------------------------------------

template <typename P>
void check_reduce_law(const parray<std::int64_t>& in,
                      const std::vector<std::int64_t>& model) {
  EXPECT_EQ(P::reduce(plus, std::int64_t{0}, P::view(in)),
            std::accumulate(model.begin(), model.end(), std::int64_t{0}));
}

TEST_P(PropertyTest, ReduceMatchesModel) {
  check_reduce_law<array_policy>(input_, model());
  check_reduce_law<rad_policy>(input_, model());
  check_reduce_law<delay_policy>(input_, model());
}

// --- law: scan is the prefix of reduce ---------------------------------------

template <typename P>
void check_scan_law(const parray<std::int64_t>& in,
                    const std::vector<std::int64_t>& model) {
  auto [pre, total] = P::scan(plus, std::int64_t{0}, P::view(in));
  auto got = drain<P>(std::move(pre));
  std::int64_t acc = 0;
  ASSERT_EQ(got.size(), model.size());
  for (std::size_t i = 0; i < model.size(); ++i) {
    ASSERT_EQ(got[i], acc) << i;
    acc += model[i];
  }
  EXPECT_EQ(total, acc);
}

TEST_P(PropertyTest, ScanIsPrefixSums) {
  check_scan_law<array_policy>(input_, model());
  check_scan_law<rad_policy>(input_, model());
  check_scan_law<delay_policy>(input_, model());
}

// --- law: scan_inclusive[i] == scan[i] + x[i] ---------------------------------

template <typename P>
void check_scan_inc_law(const parray<std::int64_t>& in,
                        const std::vector<std::int64_t>& model) {
  auto [inc, total] = P::scan_inclusive(plus, std::int64_t{0}, P::view(in));
  auto got = drain<P>(std::move(inc));
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    acc += model[i];
    ASSERT_EQ(got[i], acc) << i;
  }
  EXPECT_EQ(total, acc);
}

TEST_P(PropertyTest, ScanInclusiveMatchesModel) {
  check_scan_inc_law<array_policy>(input_, model());
  check_scan_inc_law<rad_policy>(input_, model());
  check_scan_inc_law<delay_policy>(input_, model());
}

// --- law: filter preserves order and multiplicity -----------------------------

template <typename P>
void check_filter_law(const parray<std::int64_t>& in,
                      const std::vector<std::int64_t>& model) {
  auto got = drain<P>(P::filter(is_pos, P::view(in)));
  std::vector<std::int64_t> want;
  std::copy_if(model.begin(), model.end(), std::back_inserter(want), is_pos);
  EXPECT_EQ(got, want);
}

TEST_P(PropertyTest, FilterMatchesModel) {
  check_filter_law<array_policy>(input_, model());
  check_filter_law<rad_policy>(input_, model());
  check_filter_law<delay_policy>(input_, model());
}

// --- law: filter p . filter q == filter (p && q) -------------------------------

template <typename P>
void check_filter_compose(const parray<std::int64_t>& in) {
  auto q = [](std::int64_t x) { return x % 2 == 0; };
  auto both = [q](std::int64_t x) { return is_pos(x) && q(x); };
  auto two = drain<P>(P::filter(q, P::filter(is_pos, P::view(in))));
  auto one = drain<P>(P::filter(both, P::view(in)));
  EXPECT_EQ(two, one);
}

TEST_P(PropertyTest, FilterComposition) {
  check_filter_compose<array_policy>(input_);
  check_filter_compose<rad_policy>(input_);
  check_filter_compose<delay_policy>(input_);
}

// --- law: filter_op f == map unwrap . filter engaged . map f -------------------

template <typename P>
void check_filter_op_law(const parray<std::int64_t>& in,
                         const std::vector<std::int64_t>& model) {
  auto f = [](std::int64_t x) -> std::optional<std::int64_t> {
    if (x % 3 == 0) return x / 3;
    return std::nullopt;
  };
  auto got = drain<P>(P::filter_op(f, P::view(in)));
  std::vector<std::int64_t> want;
  for (auto x : model)
    if (auto r = f(x)) want.push_back(*r);
  EXPECT_EQ(got, want);
}

TEST_P(PropertyTest, FilterOpMatchesModel) {
  check_filter_op_law<array_policy>(input_, model());
  check_filter_op_law<rad_policy>(input_, model());
  check_filter_op_law<delay_policy>(input_, model());
}

// --- law: flatten . map singleton == identity ----------------------------------

template <typename P>
void check_flatten_singleton(const parray<std::int64_t>& in,
                             const std::vector<std::int64_t>& model) {
  const std::int64_t* p = in.data();
  auto nested = P::map(
      [p](std::size_t i) {
        return P::tabulate(1, [p, i](std::size_t) { return p[i]; });
      },
      P::iota(in.size()));
  EXPECT_EQ(drain<P>(P::flatten(nested)), model);
}

TEST_P(PropertyTest, FlattenOfSingletonsIsIdentity) {
  check_flatten_singleton<array_policy>(input_, model());
  check_flatten_singleton<rad_policy>(input_, model());
  check_flatten_singleton<delay_policy>(input_, model());
}

// --- law: flatten concatenates variable-length inners in order -----------------

template <typename P>
void check_flatten_law(const parray<std::int64_t>& in,
                       const std::vector<std::int64_t>& model) {
  const std::int64_t* p = in.data();
  auto len = [](std::int64_t x) {
    return static_cast<std::size_t>(((x % 4) + 4) % 4);
  };
  auto nested = P::map(
      [p, len](std::size_t i) {
        return P::tabulate(len(p[i]),
                           [p, i](std::size_t j) {
                             return p[i] + static_cast<std::int64_t>(j);
                           });
      },
      P::iota(in.size()));
  auto got = drain<P>(P::flatten(nested));
  std::vector<std::int64_t> want;
  for (auto x : model)
    for (std::size_t j = 0; j < len(x); ++j)
      want.push_back(x + static_cast<std::int64_t>(j));
  EXPECT_EQ(got, want);
}

TEST_P(PropertyTest, FlattenMatchesModel) {
  check_flatten_law<array_policy>(input_, model());
  check_flatten_law<rad_policy>(input_, model());
  check_flatten_law<delay_policy>(input_, model());
}

// --- law: zip then project == originals ----------------------------------------

template <typename P>
void check_zip_law(const parray<std::int64_t>& in,
                   const std::vector<std::int64_t>& model) {
  auto z = P::zip(P::view(in), P::iota(in.size()));
  auto firsts = drain<P>(P::map(
      [](const std::pair<std::int64_t, std::size_t>& p) { return p.first; },
      z));
  EXPECT_EQ(firsts, model);
}

TEST_P(PropertyTest, ZipProjectionRoundTrips) {
  check_zip_law<array_policy>(input_, model());
  check_zip_law<rad_policy>(input_, model());
  check_zip_law<delay_policy>(input_, model());
}

// --- law: reduce after scan == sum of prefixes (fusion across BID boundary) ----

template <typename P>
void check_scan_reduce(const parray<std::int64_t>& in,
                       const std::vector<std::int64_t>& model) {
  auto [pre, total] = P::scan(plus, std::int64_t{0}, P::view(in));
  (void)total;
  std::int64_t got = P::reduce(plus, std::int64_t{0}, pre);
  std::int64_t want = 0, acc = 0;
  for (auto x : model) {
    want += acc;
    acc += x;
  }
  EXPECT_EQ(got, want);
}

TEST_P(PropertyTest, ReduceOfScanMatchesModel) {
  check_scan_reduce<array_policy>(input_, model());
  check_scan_reduce<rad_policy>(input_, model());
  check_scan_reduce<delay_policy>(input_, model());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PropertyTest,
    ::testing::Values(Param{0, 4, 1}, Param{1, 4, 2}, Param{2, 1, 3},
                      Param{17, 1, 4}, Param{64, 16, 5}, Param{65, 16, 6},
                      Param{255, 16, 7}, Param{256, 16, 8},
                      Param{1000, 3, 9}, Param{1000, 333, 10},
                      Param{4096, 2048, 11}, Param{10'000, 1024, 12}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_B" +
             std::to_string(info.param.block) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
