// Edge-case tests for the benchmark kernels: degenerate inputs that the
// randomized sweeps are unlikely to hit.
#include <gtest/gtest.h>

#include <string>

#include "benchmarks/bestcut.hpp"
#include "benchmarks/bfs.hpp"
#include "benchmarks/grep.hpp"
#include "benchmarks/mcss.hpp"
#include "benchmarks/policies.hpp"
#include "benchmarks/quickhull.hpp"
#include "benchmarks/tokens.hpp"
#include "benchmarks/wc.hpp"
#include "core/block.hpp"

namespace {

using namespace pbds;         // NOLINT
using namespace pbds::bench;  // NOLINT

parray<char> from_string(const std::string& s) {
  return parray<char>::tabulate(s.size(),
                                [&](std::size_t i) { return s[i]; });
}

// --- bfs ------------------------------------------------------------------

TEST(KernelEdges, BfsSingleVertexNoEdges) {
  auto g = graph::from_edges(
      1, parray<std::pair<graph::vertex, graph::vertex>>());
  auto p = bfs<delay_policy>(g, 0);
  EXPECT_EQ(p[0].load(), 0u);  // source parents itself
}

TEST(KernelEdges, BfsDisconnectedComponentsStayUnvisited) {
  auto edges = parray<std::pair<graph::vertex, graph::vertex>>::tabulate(
      1, [](std::size_t) {
        return std::pair<graph::vertex, graph::vertex>(0, 1);
      });
  auto g = graph::from_edges(4, edges);
  auto p = bfs<delay_policy>(g, 0);
  EXPECT_EQ(p[1].load(), 0u);
  EXPECT_EQ(p[2].load(), graph::kNoVertex);
  EXPECT_EQ(p[3].load(), graph::kNoVertex);
}

TEST(KernelEdges, BfsSelfLoopAtSource) {
  auto edges = parray<std::pair<graph::vertex, graph::vertex>>::tabulate(
      2, [](std::size_t e) {
        return e == 0 ? std::pair<graph::vertex, graph::vertex>(0, 0)
                      : std::pair<graph::vertex, graph::vertex>(0, 1);
      });
  auto g = graph::from_edges(2, edges);
  auto p = bfs<delay_policy>(g, 0);
  EXPECT_TRUE(graph::check_bfs_tree(g, 0, [&](std::size_t v) {
    return p[v].load(std::memory_order_relaxed);
  }));
}

TEST(KernelEdges, BfsLongChainManyRounds) {
  // A path graph: one frontier vertex per round, D rounds.
  std::size_t n = 200;
  auto edges = parray<std::pair<graph::vertex, graph::vertex>>::tabulate(
      n - 1, [](std::size_t e) {
        return std::pair<graph::vertex, graph::vertex>(
            static_cast<graph::vertex>(e), static_cast<graph::vertex>(e + 1));
      });
  auto g = graph::from_edges(n, edges);
  auto p = bfs<delay_policy>(g, 0);
  for (std::size_t v = 1; v < n; ++v)
    ASSERT_EQ(p[v].load(), static_cast<graph::vertex>(v - 1)) << v;
}

// --- mcss -----------------------------------------------------------------

TEST(KernelEdges, McssAllNegativePicksLeastNegative) {
  auto a = parray<std::int64_t>::tabulate(10, [](std::size_t i) {
    return -static_cast<std::int64_t>(i + 2);
  });
  EXPECT_EQ(mcss<delay_policy>(a), -2);
  EXPECT_EQ(mcss<array_policy>(a), -2);
}

TEST(KernelEdges, McssSingleElement) {
  auto a = parray<std::int64_t>::filled(1, -7);
  EXPECT_EQ(mcss<delay_policy>(a), -7);
}

TEST(KernelEdges, McssWholeArrayWhenAllPositive) {
  auto a = parray<std::int64_t>::filled(100, 3);
  EXPECT_EQ(mcss<delay_policy>(a), 300);
}

// --- tokens / wc ------------------------------------------------------------

TEST(KernelEdges, TokensDegenerateStrings) {
  scoped_block_size guard(4);
  for (const char* s : {"", " ", "       ", "x", "  x", "x  ", "a b", "ab"}) {
    auto t = from_string(s);
    auto want = tokens_reference(t);
    EXPECT_EQ(tokens<delay_policy>(t), want) << "s='" << s << "'";
    EXPECT_EQ(tokens<array_policy>(t), want) << "s='" << s << "'";
  }
}

TEST(KernelEdges, WcMatchesUnixSemantics) {
  scoped_block_size guard(4);
  for (const char* s :
       {"", "\n", "word", "word\n", "two words\n", " \t\n ", "a\nb\nc"}) {
    auto t = from_string(s);
    auto want = text::reference_wc(t);
    EXPECT_EQ(wc<delay_policy>(t), want) << "s='" << s << "'";
  }
}

// --- grep -----------------------------------------------------------------

TEST(KernelEdges, GrepEmptyPatternMatchesEveryLine) {
  scoped_block_size guard(4);
  auto t = from_string("aa\nbb\ncc\n");
  auto got = grep<delay_policy>(t, "");
  EXPECT_EQ(got.matching_lines, 3u);
}

TEST(KernelEdges, GrepPatternLongerThanLines) {
  auto t = from_string("ab\ncd\n");
  EXPECT_EQ(grep<delay_policy>(t, "abcdef").matching_lines, 0u);
}

TEST(KernelEdges, GrepPatternSpansNewlineNeverMatches) {
  // "b\nc" exists in the text but lines are searched independently...
  // except a line INCLUDES its trailing newline, so "b\n" does match
  // line 0 while "\nc" and "b\nc" (crossing into line 1) do not.
  auto t = from_string("ab\ncd\n");
  EXPECT_EQ(grep<delay_policy>(t, "b\n").matching_lines, 1u);
  EXPECT_EQ(grep<delay_policy>(t, "b\nc").matching_lines, 0u);
}

TEST(KernelEdges, GrepNoTrailingNewline) {
  auto t = from_string("xx\nyy");
  auto want = grep_reference(t, "y");
  EXPECT_EQ(grep<delay_policy>(t, "y"), want);
  EXPECT_EQ(want.matching_lines, 1u);
}

// --- bestcut ----------------------------------------------------------------

TEST(KernelEdges, BestcutAllEndsAndNoEnds) {
  scoped_block_size guard(3);
  for (int flag : {0, 1}) {
    auto ev = parray<geom::axis_event>::tabulate(10, [flag](std::size_t i) {
      return geom::axis_event{0.1 * static_cast<double>(i),
                              static_cast<std::uint8_t>(flag)};
    });
    double want = bestcut_reference(ev);
    EXPECT_DOUBLE_EQ(bestcut<delay_policy>(ev), want) << flag;
    EXPECT_DOUBLE_EQ(bestcut<array_policy>(ev), want) << flag;
  }
}

TEST(KernelEdges, BestcutSingleEvent) {
  auto ev = parray<geom::axis_event>::tabulate(1, [](std::size_t) {
    return geom::axis_event{0.5, 1};
  });
  EXPECT_DOUBLE_EQ(bestcut<delay_policy>(ev), bestcut_reference(ev));
}

// --- quickhull ----------------------------------------------------------------

TEST(KernelEdges, QuickhullTriangle) {
  auto pts = parray<geom::point2d>::tabulate(3, [](std::size_t i) {
    constexpr geom::point2d P[] = {{0, 0}, {1, 0}, {0.5, 1}};
    return P[i];
  });
  EXPECT_EQ(quickhull<delay_policy>(pts), 3u);
}

TEST(KernelEdges, QuickhullSquareWithInteriorPoints) {
  auto pts = parray<geom::point2d>::tabulate(7, [](std::size_t i) {
    constexpr geom::point2d P[] = {{0, 0},      {4, 0},     {4, 4}, {0, 4},
                                   {2.0, 2.0},  {1.0, 3.0}, {3.1, 0.9}};
    return P[i];
  });
  EXPECT_EQ(quickhull<delay_policy>(pts), 4u);
  EXPECT_EQ(quickhull<array_policy>(pts), 4u);
  EXPECT_EQ(quickhull<rad_policy>(pts), 4u);
}

TEST(KernelEdges, QuickhullTinyInputs) {
  for (std::size_t n : {0u, 1u, 2u}) {
    auto pts = geom::points_in_disk(n, 1);
    EXPECT_EQ(quickhull<delay_policy>(pts), n);
  }
}

}  // namespace
