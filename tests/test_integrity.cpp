// End-to-end block integrity (PR 8).
//
// The integrity layer's contract, as executable oracles:
//
//   * digester: chunking-invariant (any update() split hashes like the
//     contiguous bytes), never 0, and sensitive to every single bit;
//   * corruption sweep: for each checkpointed terminal op (to_array /
//     reduce / scan / flatten), crash an attempt at a block boundary,
//     flip one bit in EVERY block the failed attempt completed, resume —
//     and require 100% detection (quarantined == flipped), re-execution
//     of exactly the quarantined blocks, and a final result bit-identical
//     to an uninterrupted run, across sequential / deterministic-seed /
//     real-pool execution;
//   * PBDS_VERIFY_RESUME=0 (scoped) genuinely opts out: corrupt salvaged
//     bytes are trusted and propagate — proving the default path's
//     detections are real work, not a tautology;
//   * torn-ledger self-validation: a completion bit flipped without its
//     header stamp is detected on resume and degrades to a fresh run;
//   * PBDS_VERIFY_BULK: gated bulk next_n runs digest-identical to the
//     element-at-a-time protocol; a stream whose bulk path diverges
//     throws corruption_detected;
//   * double-completion guard: completing a ledger block twice asserts
//     (release-counter fallback when NDEBUG);
//   * service corruption policy: self-healed quarantines and thrown
//     corruption_detected both produce event::corrupt, corruption is
//     retried with verification forced on, persistent corruption trips
//     the breaker while healthy classes complete, and a soak with the
//     bit-flip injector armed has zero undetected result mismatches.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/block.hpp"
#include "differential.hpp"
#include "integrity/block_digest.hpp"
#include "recovery/checkpoint_ops.hpp"
#include "sched/deterministic.hpp"
#include "sched/exec_policy.hpp"
#include "service/pipeline_service.hpp"
#include "service/soak_driver.hpp"
#include "stream/streams.hpp"

namespace {

using pbds::parray;
using pbds::testing::digest;
using pbds::testing::expect_digest_eq;
using pbds::testing::put;
using pbds::testing::put_all;
using pbds::testing::scoped_bit_flip;
using pbds::testing::sweep_seeds;
namespace delayed = pbds::delayed;
namespace integrity = pbds::integrity;
namespace recovery = pbds::recovery;
using namespace pbds::service;  // NOLINT

constexpr std::size_t kBlk = 256;
constexpr std::size_t kN = 1600;  // 7 blocks of 256
constexpr std::size_t kBlocks = (kN + kBlk - 1) / kBlk;

inline std::uint64_t plus(std::uint64_t a, std::uint64_t b) { return a + b; }

// --- digester ---------------------------------------------------------------

TEST(Digester, ChunkingInvariance) {
  unsigned char bytes[137];
  for (std::size_t i = 0; i < sizeof(bytes); ++i)
    bytes[i] = static_cast<unsigned char>(i * 131 + 7);
  const std::uint64_t want = integrity::block_digest(bytes, sizeof(bytes));
  for (std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                            std::size_t{5}, std::size_t{8}, std::size_t{13},
                            std::size_t{64}, std::size_t{136}}) {
    integrity::digester d;
    for (std::size_t off = 0; off < sizeof(bytes); off += chunk) {
      std::size_t len =
          off + chunk <= sizeof(bytes) ? chunk : sizeof(bytes) - off;
      d.update(bytes + off, len);
    }
    EXPECT_EQ(d.value(), want) << "chunk size " << chunk;
  }
  // Element-at-a-time over uint64_t words must equal the contiguous hash:
  // this equivalence is what bulk verification relies on.
  std::uint64_t words[16];
  for (std::size_t i = 0; i < 16; ++i) words[i] = i * 0x9e3779b97f4a7c15ull;
  integrity::digester w;
  for (std::size_t i = 0; i < 16; ++i) w.update(&words[i], sizeof(words[i]));
  EXPECT_EQ(w.value(), integrity::block_digest(words, sizeof(words)));
}

TEST(Digester, NeverZeroAndSingleBitSensitive) {
  EXPECT_NE(integrity::block_digest(nullptr, 0), 0u);
  unsigned char bytes[64] = {};
  const std::uint64_t base = integrity::block_digest(bytes, sizeof(bytes));
  EXPECT_NE(base, 0u);
  for (std::size_t i = 0; i < sizeof(bytes); ++i) {
    for (unsigned b = 0; b < 8; ++b) {
      bytes[i] ^= static_cast<unsigned char>(1u << b);
      EXPECT_NE(integrity::block_digest(bytes, sizeof(bytes)), base)
          << "flip of byte " << i << " bit " << b << " went undetected";
      bytes[i] ^= static_cast<unsigned char>(1u << b);
    }
  }
  EXPECT_EQ(integrity::block_digest(bytes, sizeof(bytes)), base);
}

TEST(Digester, ValueIsPureAndStreamContinues) {
  unsigned char bytes[40];
  for (std::size_t i = 0; i < sizeof(bytes); ++i)
    bytes[i] = static_cast<unsigned char>(i ^ 0x5b);
  integrity::digester d;
  d.update(bytes, 17);
  EXPECT_EQ(d.value(), integrity::block_digest(bytes, 17));
  EXPECT_EQ(d.value(), integrity::block_digest(bytes, 17));  // pure
  d.update(bytes + 17, sizeof(bytes) - 17);
  EXPECT_EQ(d.value(), integrity::block_digest(bytes, sizeof(bytes)));
}

// --- the corruption sweep ---------------------------------------------------

// One integrity case: a checkpointed pipeline digesting its result, with
// the op's resumable storage in slot 0 so the sweep can corrupt it
// between the failed attempt and the resume.
struct integrity_case {
  std::string name;
  std::function<digest(recovery::job_checkpoint&)> run;
};

// Flip one bit in every COMPLETED block of rr's storage; returns how many
// blocks were corrupted. Deterministic (offset/bit derived from the block
// index), so a failing case replays exactly.
template <typename T>
std::size_t flip_completed_blocks(recovery::resumable_result<T>& rr) {
  auto& led = rr.ledger();
  unsigned char* bytes = reinterpret_cast<unsigned char*>(rr.data());
  if (bytes == nullptr || !led.bound()) return 0;
  const std::size_t blk = led.unit_size();
  std::size_t flipped = 0;
  for (std::size_t j = 0; j < led.num_blocks(); ++j) {
    if (!led.is_complete(j)) continue;
    std::size_t len = led.block_length(j) * sizeof(T);
    std::size_t off = j * blk * sizeof(T) + (j * 37) % len;
    bytes[off] ^= static_cast<unsigned char>(1u << (j % 8));
    ++flipped;
  }
  return flipped;
}

// Crash at boundary `b`, corrupt everything the failed attempt completed,
// resume, and hold the result to the three oracles: bit-identical output,
// quarantined == flipped (100% detection), reexecuted == flipped. Returns
// true when `b` lies past the last unit (sweep termination); adds the
// number of corrupted blocks to *total_flipped.
bool corruption_probe(const integrity_case& c, std::int64_t b,
                      const digest& ref, const std::string& mode_label,
                      std::size_t* total_flipped) {
  std::string label =
      c.name + " boundary=" + std::to_string(b) + " " + mode_label;
  recovery::job_checkpoint ck;
  bool faulted = false;
  {
    recovery::scoped_boundary_faults inj(recovery::boundary_fault_kind::fault,
                                         b);
    try {
      digest clean = c.run(ck);
      if (inj.injected() == 0) {
        expect_digest_eq(clean, ref, label + " (unfaulted run)");
        return true;
      }
      ADD_FAILURE() << label << ": attempt survived an injected fault";
    } catch (...) {
      faulted = true;
    }
  }
  if (!faulted) return false;
  auto& rr = ck.slot<std::uint64_t>(0);
  const std::uint64_t q0 = rr.ledger().quarantined();
  const std::uint64_t rx0 = rr.ledger().quarantine_reexecuted();
  std::size_t flipped = flip_completed_blocks(rr);
  digest resumed = c.run(ck);
  expect_digest_eq(resumed, ref, label + " (resumed after corruption)");
  EXPECT_EQ(rr.ledger().quarantined() - q0, flipped)
      << label << ": detection is not 100% — " << flipped
      << " blocks corrupted";
  EXPECT_EQ(rr.ledger().quarantine_reexecuted() - rx0, flipped)
      << label << ": quarantined blocks not re-executed";
  *total_flipped += flipped;
  return false;
}

// Sweep every crash boundary in sequential, deterministic (seed sweep),
// and real-pool modes. Verification must be on for the sweep to mean
// anything, so force it regardless of the environment.
void expect_corruption_detected(const integrity_case& c,
                                const std::vector<std::uint64_t>& seeds) {
  constexpr std::int64_t kSweepCap = 4096;
  integrity::scoped_verify_resume verify_on(true);
  digest ref;
  {
    pbds::sched::scoped_sequential g;
    recovery::job_checkpoint ck;
    ref = c.run(ck);
  }
  std::size_t flipped = 0;
  for (std::int64_t b = 0; b < kSweepCap; ++b) {
    pbds::sched::scoped_sequential g;
    if (corruption_probe(c, b, ref, "mode=sequential", &flipped)) break;
  }
  EXPECT_GT(flipped, 0u) << c.name << ": sequential sweep corrupted nothing";
  for (std::uint64_t seed : seeds) {
    PBDS_SEED_TRACE(seed);
    std::size_t det_flipped = 0;
    for (std::int64_t b = 0; b < kSweepCap; ++b) {
      pbds::sched::scoped_deterministic g(seed, 4);
      if (corruption_probe(c, b, ref,
                           "mode=deterministic seed=" + std::to_string(seed),
                           &det_flipped))
        break;
    }
  }
  std::size_t pool_flipped = 0;
  for (std::int64_t b = 0; b < kSweepCap; ++b) {
    if (corruption_probe(c, b, ref, "mode=real-scheduler", &pool_flipped))
      break;
  }
}

TEST(CorruptionSweep, ToArray) {
  integrity_case c{"integrity.to_array(map.iota)",
                   [](recovery::job_checkpoint& ck) {
                     pbds::scoped_block_size bs(kBlk);
                     auto xs = delayed::map(
                         [](std::size_t i) {
                           return static_cast<std::uint64_t>(i) * (i ^ 0x9e37u);
                         },
                         delayed::iota(kN));
                     const auto& a =
                         recovery::to_array(xs, ck.slot<std::uint64_t>(0));
                     digest d;
                     put_all(d, a);
                     return d;
                   }};
  expect_corruption_detected(c, sweep_seeds(16));
}

TEST(CorruptionSweep, Reduce) {
  integrity_case c{"integrity.reduce", [](recovery::job_checkpoint& ck) {
                     pbds::scoped_block_size bs(kBlk);
                     auto xs = delayed::map(
                         [](std::size_t i) {
                           return static_cast<std::uint64_t>(i) + 17u;
                         },
                         delayed::iota(kN));
                     digest d;
                     put(d, static_cast<double>(recovery::reduce(
                                plus, std::uint64_t{0}, xs,
                                ck.slot<std::uint64_t>(0))));
                     return d;
                   }};
  expect_corruption_detected(c, sweep_seeds(16));
}

TEST(CorruptionSweep, Scan) {
  integrity_case c{"integrity.scan", [](recovery::job_checkpoint& ck) {
                     pbds::scoped_block_size bs(kBlk);
                     auto xs = delayed::tabulate(kN, [](std::size_t i) {
                       return static_cast<std::uint64_t>(i % 97);
                     });
                     auto pr = recovery::scan(plus, std::uint64_t{0}, xs,
                                              ck.slot<std::uint64_t>(0));
                     auto arr = delayed::to_array(pr.first);
                     digest d;
                     put_all(d, arr);
                     put(d, static_cast<double>(pr.second));
                     return d;
                   }};
  expect_corruption_detected(c, sweep_seeds(8));
}

TEST(CorruptionSweep, FlattenToArray) {
  integrity_case c{"integrity.to_array(flatten)",
                   [](recovery::job_checkpoint& ck) {
                     pbds::scoped_block_size bs(kBlk);
                     std::size_t outers = kN / 64;
                     auto heads = parray<std::uint64_t>::tabulate(
                         outers,
                         [](std::size_t i) {
                           return static_cast<std::uint64_t>(i);
                         });
                     auto inners = delayed::map(
                         [](std::uint64_t v) {
                           return parray<std::uint64_t>::tabulate(
                               64, [v](std::size_t j) { return v * 64 + j; });
                         },
                         delayed::view(heads));
                     const auto& flat = recovery::to_array(
                         delayed::flatten(inners), ck.slot<std::uint64_t>(0));
                     digest d;
                     put_all(d, flat);
                     return d;
                   }};
  expect_corruption_detected(c, sweep_seeds(8));
}

// The seeded injector end-to-end: arm scoped_bit_flip, resume, and the
// flips land inside bind() itself — the path the soak harness exercises.
TEST(CorruptionSweep, ArmedInjectorFlipsAreDetectedOnResume) {
  pbds::sched::scoped_sequential g;
  pbds::scoped_block_size bs(kBlk);
  integrity::scoped_verify_resume verify_on(true);
  recovery::job_checkpoint ck;
  auto& slot = ck.slot<std::uint64_t>(0);
  auto xs = delayed::tabulate(
      kN, [](std::size_t i) { return static_cast<std::uint64_t>(i * 7 + 3); });
  {
    recovery::scoped_boundary_faults inj(recovery::boundary_fault_kind::fault,
                                         4);
    EXPECT_THROW((void)recovery::to_array(xs, slot), recovery::boundary_fault);
  }
  ASSERT_EQ(slot.ledger().blocks_complete(), 4u);
  {
    scoped_bit_flip flips(5, 0x2545f4914f6cdd1dull);
    const auto& a = recovery::to_array(xs, slot);
    EXPECT_EQ(flips.delivered(), 5u);
    ASSERT_EQ(a.size(), kN);
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(a[i], static_cast<std::uint64_t>(i * 7 + 3)) << "at " << i;
  }
  // 5 flips land in at most 5 (and at least 1) of the 4 salvageable
  // blocks; every hit block must be quarantined and re-executed.
  EXPECT_GE(slot.ledger().quarantined(), 1u);
  EXPECT_LE(slot.ledger().quarantined(), 5u);
  EXPECT_EQ(slot.ledger().quarantine_reexecuted(), slot.ledger().quarantined());
}

// --- the opt-out ------------------------------------------------------------

// PBDS_VERIFY_RESUME=0 (here its scoped twin) must genuinely skip
// verification: corrupt salvaged bytes are trusted and reach the result.
// This is the non-tautology check for the whole layer — if detection were
// accidental (e.g. re-execution regardless), this test would fail.
TEST(VerifyResumeOptOut, CorruptSalvageGoesUndetected) {
  pbds::sched::scoped_sequential g;
  pbds::scoped_block_size bs(kBlk);
  integrity::scoped_verify_resume off(false);
  recovery::job_checkpoint ck;
  auto& slot = ck.slot<std::uint64_t>(0);
  auto xs = delayed::tabulate(
      kN, [](std::size_t i) { return static_cast<std::uint64_t>(i + 11); });
  {
    recovery::scoped_boundary_faults inj(recovery::boundary_fault_kind::fault,
                                         3);
    EXPECT_THROW((void)recovery::to_array(xs, slot), recovery::boundary_fault);
  }
  ASSERT_EQ(slot.ledger().blocks_complete(), 3u);
  std::size_t flipped = flip_completed_blocks(slot);
  ASSERT_EQ(flipped, 3u);
  const auto& a = recovery::to_array(xs, slot);
  EXPECT_EQ(slot.ledger().quarantined(), 0u)
      << "opt-out still quarantined — the knob is dead";
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < kN; ++i)
    wrong += a[i] != static_cast<std::uint64_t>(i + 11);
  EXPECT_EQ(wrong, flipped)
      << "each flipped block should contribute exactly one corrupt element";
}

// And with verification back on, digests recorded under the opt-out are
// absent (0), so salvage of those blocks is trusted-by-necessity rather
// than spuriously quarantined.
TEST(VerifyResumeOptOut, BlocksCompletedUnverifiedSalvageTrivially) {
  pbds::sched::scoped_sequential g;
  pbds::scoped_block_size bs(kBlk);
  recovery::job_checkpoint ck;
  auto& slot = ck.slot<std::uint64_t>(0);
  auto xs = delayed::tabulate(
      kN, [](std::size_t i) { return static_cast<std::uint64_t>(i * 5); });
  {
    integrity::scoped_verify_resume off(false);
    recovery::scoped_boundary_faults inj(recovery::boundary_fault_kind::fault,
                                         2);
    EXPECT_THROW((void)recovery::to_array(xs, slot), recovery::boundary_fault);
  }
  EXPECT_EQ(slot.ledger().digest_of(0), 0u);  // no digest recorded
  integrity::scoped_verify_resume on(true);
  const auto& a = recovery::to_array(xs, slot);
  ASSERT_EQ(a.size(), kN);
  EXPECT_EQ(slot.ledger().quarantined(), 0u);
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(a[i], static_cast<std::uint64_t>(i * 5)) << "at " << i;
}

// --- torn-ledger self-validation --------------------------------------------

TEST(TornLedger, HeaderMismatchDegradesToFreshRunWithCorrectResult) {
  pbds::sched::scoped_sequential g;
  pbds::scoped_block_size bs(kBlk);
  recovery::job_checkpoint ck;
  auto& slot = ck.slot<std::uint64_t>(0);
  auto xs = delayed::tabulate(
      kN, [](std::size_t i) { return static_cast<std::uint64_t>(i ^ 0x77); });
  {
    recovery::scoped_boundary_faults inj(recovery::boundary_fault_kind::fault,
                                         4);
    EXPECT_THROW((void)recovery::to_array(xs, slot), recovery::boundary_fault);
  }
  ASSERT_EQ(slot.ledger().blocks_complete(), 4u);
  // Simulate a torn bitmap write: a completion bit appears without its
  // header stamp. validate_header() must refuse to resume from it.
  slot.ledger().corrupt_complete_bit_for_test(5);
  const std::uint64_t execs_before = slot.ledger().executions();
  const auto& a = recovery::to_array(xs, slot);
  ASSERT_EQ(a.size(), kN);
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(a[i], static_cast<std::uint64_t>(i ^ 0x77)) << "at " << i;
  EXPECT_GE(slot.ledger().header_invalidations(), 1u);
  // The torn state was discarded, not trusted: a fresh run re-executes
  // every block.
  EXPECT_EQ(slot.ledger().executions() - execs_before, kBlocks);
}

TEST(TornLedger, ValidateHeaderUnit) {
  recovery::block_ledger led;
  EXPECT_TRUE(led.validate_header());  // unbound: trivially valid
  led.bind(1024, 256);
  EXPECT_TRUE(led.validate_header());
  led.mark_complete(0);
  led.mark_complete(2);
  EXPECT_TRUE(led.validate_header());
  led.corrupt_complete_bit_for_test(1);
  EXPECT_FALSE(led.validate_header());
  led.corrupt_complete_bit_for_test(1);  // restore
  EXPECT_TRUE(led.validate_header());
  // Clearing a SET bit breaks both the count and the XOR stamp.
  led.corrupt_complete_bit_for_test(2);
  EXPECT_FALSE(led.validate_header());
  EXPECT_GE(led.header_invalidations(), 2u);
}

// --- double-completion guard ------------------------------------------------

TEST(BlockLedgerDeathTest, DoubleCompletionIsGuarded) {
  recovery::block_ledger led;
  led.bind(1024, 256);
  led.mark_complete(1);
#ifndef NDEBUG
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(led.mark_complete(1), "completed twice");
#else
  // Release fallback: counted, not silently absorbed into salvage stats.
  led.mark_complete(1);
  EXPECT_EQ(led.double_completed(), 1u);
  EXPECT_EQ(led.blocks_complete(), 1u);
#endif
}

// --- bulk verification (PBDS_VERIFY_BULK) -----------------------------------

// A healthy bulk stream: next_n agrees with next. Under verification the
// gated entry point must double-run and pass silently.
struct counting_stream {
  using value_type = std::uint64_t;
  std::uint64_t i = 0;
  std::uint64_t next() { return i++; }
  void next_n(std::uint64_t* dst, std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) dst[k] = i++;
  }
};

// A deliberately broken bulk path: next_n diverges from the element
// protocol by one. Verification must catch it; without verification the
// corruption is silent (which is the point of the mode).
struct lying_stream {
  using value_type = std::uint64_t;
  std::uint64_t i = 0;
  std::uint64_t next() { return i++; }
  void next_n(std::uint64_t* dst, std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) dst[k] = i++ + (k + 1 == n ? 1 : 0);
  }
};

TEST(BulkVerify, HealthyBulkPathPassesVerification) {
  ASSERT_TRUE(pbds::stream::bulk_enabled());
  integrity::scoped_verify_bulk verify(true);
  ASSERT_TRUE(integrity::verify_bulk_enabled());
  counting_stream s;
  std::uint64_t out[100];
  EXPECT_NO_THROW(pbds::stream::next_n(s, out, 100));
  for (std::size_t k = 0; k < 100; ++k) EXPECT_EQ(out[k], k);
}

TEST(BulkVerify, DivergentBulkPathThrowsCorruptionDetected) {
  ASSERT_TRUE(pbds::stream::bulk_enabled());
  {
    // Without verification the lie lands silently — establishing that the
    // verified run below is doing real work.
    lying_stream s;
    std::uint64_t out[64];
    pbds::stream::next_n(s, out, 64);
    EXPECT_EQ(out[63], 64u);  // corrupted tail element
  }
  integrity::scoped_verify_bulk verify(true);
  lying_stream s;
  std::uint64_t out[64];
  EXPECT_THROW(pbds::stream::next_n(s, out, 64),
               integrity::corruption_detected);
}

// End-to-end: a materializing pipeline over contiguous storage (the
// memcpy-lowered bulk runs) is digest-identical to the element protocol —
// verified mode completes with bit-identical results.
TEST(BulkVerify, MaterializingPipelineIsVerifiedCleanly) {
  auto input = parray<std::uint64_t>::tabulate(
      1 << 14, [](std::size_t i) { return static_cast<std::uint64_t>(i * 3); });
  auto ref = delayed::to_array(delayed::view(input));
  integrity::scoped_verify_bulk verify(true);
  auto verified = delayed::to_array(delayed::view(input));
  ASSERT_EQ(verified.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(verified[i], ref[i]) << "at " << i;
}

// --- unknown-knob warning ---------------------------------------------------

TEST(EnvKnobs, UnknownPbdsVariableWarnsExactlyOnce) {
  ::setenv("PBDS_VERIFY_RESME", "1", 1);  // deliberate typo
  ::testing::internal::CaptureStderr();
  pbds::detail::warn_unknown_pbds_env();
  std::string first = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(first.find("PBDS_VERIFY_RESME"), std::string::npos)
      << "typo'd knob did not warn";
  // Known knobs must never be flagged.
  EXPECT_EQ(first.find("PBDS_VERIFY_RESUME'"), std::string::npos);
  ::testing::internal::CaptureStderr();
  pbds::detail::warn_unknown_pbds_env();
  EXPECT_EQ(::testing::internal::GetCapturedStderr().find("PBDS_VERIFY_RESME"),
            std::string::npos)
      << "warn-once fired twice";
  ::unsetenv("PBDS_VERIFY_RESME");
}

// --- service corruption policy ----------------------------------------------

service_config manual_config(std::size_t cap, backpressure policy) {
  service_config cfg;
  cfg.queue_capacity = cap;
  cfg.policy = policy;
  cfg.dispatchers = 0;
  cfg.default_backoff_us = 1;
  return cfg;
}

// Self-healed corruption: the retry resumes into bit-flipped storage, the
// salvage quarantines and re-executes, the job completes with a correct
// result — and the service still surfaces what happened: event::corrupt,
// corrupt_detected, and the quarantine counters in its stats.
TEST(ServiceCorruption, SelfHealedCorruptionIsTracedAndCompletes) {
  pipeline_service svc(manual_config(4, backpressure::reject));
  auto ck = std::make_shared<recovery::job_checkpoint>();
  job_limits lim;
  lim.max_retries = 2;
  lim.retry_backoff_us = 1;
  std::atomic<std::size_t> wrong{0};
  auto t = svc.submit_resumable(
      0,
      [&wrong](recovery::job_checkpoint& c) {
        pbds::sched::scoped_sequential seq;
        pbds::scoped_block_size bs(kBlk);
        std::optional<recovery::scoped_boundary_faults> inj;
        if (c.attempts() == 1)
          inj.emplace(recovery::boundary_fault_kind::stall, 3);
        auto xs = delayed::tabulate(kN, [](std::size_t i) {
          return static_cast<std::uint64_t>(i * 13 + 1);
        });
        const auto& a = recovery::to_array(xs, c.slot<std::uint64_t>(0));
        for (std::size_t i = 0; i < kN; ++i)
          if (a[i] != static_cast<std::uint64_t>(i * 13 + 1))
            wrong.fetch_add(1, std::memory_order_relaxed);
      },
      lim, ck);
  {
    scoped_bit_flip flips(4, 0x9e3779b97f4a7c15ull);
    EXPECT_TRUE(svc.run_one());  // both attempts inside; flips land on resume
    EXPECT_EQ(flips.delivered(), 4u);
  }
  EXPECT_EQ(t.status(), job_status::done);
  EXPECT_EQ(wrong.load(), 0u) << "corruption reached the completed result";
  auto st = svc.stats();
  EXPECT_GE(st.corrupt_detected, 1u);
  EXPECT_GE(st.blocks_quarantined, 1u);
  EXPECT_GE(st.blocks_reexecuted, 1u);
  EXPECT_EQ(st.blocks_quarantined, st.blocks_reexecuted);
  bool saw_corrupt = false;
  for (const auto& e : svc.trace()) {
    if (e.ev == event::corrupt) {
      saw_corrupt = true;
      EXPECT_GE(e.aux, 1u) << "self-healed corrupt event must carry the "
                              "quarantined-block count";
    }
  }
  EXPECT_TRUE(saw_corrupt);
}

// Thrown corruption (a bulk-verify divergence, say) is retryable, traced,
// and — once seen — later attempts run with verification forced on even
// when the environment opted out.
TEST(ServiceCorruption, ThrownCorruptionRetriesWithVerificationForced) {
  pipeline_service svc(manual_config(4, backpressure::reject));
  integrity::scoped_verify_resume env_opt_out(false);
  job_limits lim;
  lim.max_retries = 2;
  lim.retry_backoff_us = 1;
  std::vector<bool> verify_seen;
  auto t = svc.submit(0, [&verify_seen] {
    verify_seen.push_back(integrity::verify_resume_enabled());
    if (verify_seen.size() == 1)
      throw integrity::corruption_detected("test: injected divergence");
  });
  EXPECT_TRUE(svc.run_one());
  EXPECT_EQ(t.status(), job_status::done);
  ASSERT_EQ(verify_seen.size(), 2u);
  EXPECT_FALSE(verify_seen[0]) << "opt-out should hold before corruption";
  EXPECT_TRUE(verify_seen[1])
      << "post-corruption attempt must force verification on";
  auto st = svc.stats();
  EXPECT_EQ(st.retries, 1u);
  EXPECT_GE(st.corrupt_detected, 1u);
  bool saw_corrupt = false;
  for (const auto& e : svc.trace()) saw_corrupt |= e.ev == event::corrupt;
  EXPECT_TRUE(saw_corrupt);
}

// Persistent corruption counts as breaker failure: the corrupt class is
// isolated while a healthy class keeps completing.
TEST(ServiceCorruption, PersistentCorruptionTripsBreakerHealthyClassLives) {
  auto cfg = manual_config(8, backpressure::reject);
  cfg.breaker_threshold = 3;
  cfg.default_retries = 0;
  pipeline_service svc(cfg);
  constexpr unsigned kCorrupt = 7, kHealthy = 1;
  for (int i = 0; i < 3; ++i) {
    svc.submit(kCorrupt, [] {
      throw integrity::corruption_detected("test: persistent corruption");
    });
    EXPECT_TRUE(svc.run_one());
  }
  EXPECT_EQ(svc.breaker_state(kCorrupt), circuit_breaker::state::open);
  EXPECT_EQ(svc.stats().breaker_trips, 1u);
  EXPECT_GE(svc.stats().corrupt_detected, 3u);
  try {
    svc.submit(kCorrupt, [] {});
    FAIL() << "open breaker must refuse the corrupt class";
  } catch (const pbds::overloaded& o) {
    EXPECT_EQ(o.reason(), pbds::overload_reason::circuit_open);
  }
  auto t = svc.submit(kHealthy, [] {});
  EXPECT_TRUE(svc.run_one());
  EXPECT_EQ(t.status(), job_status::done);
}

// A small soak with the injector armed: every completed job's result is
// held to the per-class oracle, and none may mismatch — detected
// corruption self-heals, undetected corruption would surface here.
TEST(ServiceCorruption, SoakWithArmedInjectorHasNoUndetectedMismatch) {
  soak_config cfg;
  cfg.producers = 2;
  cfg.jobs_per_producer = 6;
  cfg.n = std::size_t{1} << 12;
  cfg.seed = 11;
  cfg.resumable = true;
  cfg.bit_flips = 2;
  cfg.service.queue_capacity = 8;
  cfg.service.dispatchers = 2;
  auto r = run_soak(cfg);
  EXPECT_EQ(r.stats.completed, 12u);
  EXPECT_EQ(r.stats.failed, 0u);
  EXPECT_EQ(r.result_mismatches, 0u)
      << "a completed job's result diverged from the per-class oracle";
}

}  // namespace
