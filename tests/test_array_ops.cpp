// Unit tests for the eager array library (Fig. 7's a.* functions / the A
// baseline), against straightforward sequential references.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <optional>
#include <vector>

#include "array/array_ops.hpp"
#include "core/block.hpp"

namespace {

namespace a = pbds::array_ops;
using pbds::parray;
using pbds::scoped_block_size;

auto plus = [](auto x, auto y) { return x + y; };

template <typename T>
std::vector<T> vec(const parray<T>& p) {
  return {p.begin(), p.end()};
}

TEST(ArrayOps, TabulateAndIota) {
  auto t = a::tabulate(5, [](std::size_t i) { return (int)(i * i); });
  EXPECT_EQ(vec(t), (std::vector<int>{0, 1, 4, 9, 16}));
  EXPECT_EQ(vec(a::iota(3)), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ArrayOps, MapMaterializes) {
  auto t = a::iota(4);
  auto m = a::map([](std::size_t i) { return i + 10; }, t);
  EXPECT_EQ(vec(m), (std::vector<std::size_t>{10, 11, 12, 13}));
}

TEST(ArrayOps, Zip) {
  auto x = a::iota(3);
  auto y = a::map([](std::size_t i) { return i * 2; }, x);
  auto z = a::zip(x, y);
  EXPECT_EQ(z[2], (std::pair<std::size_t, std::size_t>(2, 4)));
}

TEST(ArrayOps, ReduceAcrossBlockSizes) {
  for (std::size_t blk : {1u, 2u, 7u, 100u, 4096u}) {
    scoped_block_size guard(blk);
    auto t = a::tabulate(1000, [](std::size_t i) { return (std::int64_t)i; });
    EXPECT_EQ(a::reduce(plus, std::int64_t{0}, t), 499'500) << blk;
  }
}

TEST(ArrayOps, ReduceNonCommutativeAssociative) {
  // String concatenation is associative but not commutative: the blocked
  // reduce must preserve order.
  scoped_block_size guard(3);
  auto t = a::tabulate(10, [](std::size_t i) {
    return std::string(1, static_cast<char>('a' + i));
  });
  EXPECT_EQ(a::reduce([](std::string x, std::string y) { return x + y; },
                      std::string{}, t),
            "abcdefghij");
}

TEST(ArrayOps, ScanExclusiveMatchesReference) {
  for (std::size_t blk : {1u, 3u, 64u}) {
    scoped_block_size guard(blk);
    for (std::size_t n : {0u, 1u, 2u, 63u, 64u, 65u, 200u}) {
      auto t = a::tabulate(n, [](std::size_t i) { return (int)(i % 7); });
      auto [pre, total] = a::scan(plus, 0, t);
      int acc = 0;
      ASSERT_EQ(pre.size(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(pre[i], acc) << "n=" << n << " blk=" << blk << " i=" << i;
        acc += t[i];
      }
      ASSERT_EQ(total, acc);
    }
  }
}

TEST(ArrayOps, ScanInclusiveMatchesReference) {
  scoped_block_size guard(5);
  auto t = a::tabulate(17, [](std::size_t i) { return (int)i; });
  auto [inc, total] = a::scan_inclusive(plus, 0, t);
  int acc = 0;
  for (std::size_t i = 0; i < 17; ++i) {
    acc += (int)i;
    ASSERT_EQ(inc[i], acc);
  }
  EXPECT_EQ(total, acc);
}

TEST(ArrayOps, FilterBoundaries) {
  scoped_block_size guard(4);
  auto t = a::tabulate(16, [](std::size_t i) { return (int)i; });
  EXPECT_EQ(a::filter([](int) { return true; }, t).size(), 16u);
  EXPECT_EQ(a::filter([](int) { return false; }, t).size(), 0u);
  // Survivors exactly at block boundaries.
  auto f = a::filter([](int x) { return x % 4 == 3; }, t);
  EXPECT_EQ(vec(f), (std::vector<int>{3, 7, 11, 15}));
}

TEST(ArrayOps, FilterOp) {
  scoped_block_size guard(3);
  auto t = a::tabulate(10, [](std::size_t i) { return (int)i; });
  auto f = a::filter_op(
      [](int x) -> std::optional<std::string> {
        if (x % 4 == 0) return std::string(static_cast<std::size_t>(x), '*');
        return std::nullopt;
      },
      t);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[1], "****");
  EXPECT_EQ(f[2], "********");
}

TEST(ArrayOps, FlattenRagged) {
  scoped_block_size guard(2);
  auto nested = parray<parray<int>>::tabulate(4, [](std::size_t i) {
    return parray<int>::tabulate(i, [i](std::size_t j) {
      return (int)(i * 10 + j);
    });
  });
  auto flat = a::flatten(nested);
  EXPECT_EQ(vec(flat), (std::vector<int>{10, 20, 21, 30, 31, 32}));
}

TEST(ArrayOps, FlattenEmptyOuterAndInners) {
  auto empty_outer = parray<parray<int>>::tabulate(0, [](std::size_t) {
    return parray<int>();
  });
  EXPECT_EQ(a::flatten(empty_outer).size(), 0u);
  auto empty_inners = parray<parray<int>>::tabulate(5, [](std::size_t) {
    return parray<int>();
  });
  EXPECT_EQ(a::flatten(empty_inners).size(), 0u);
}

TEST(ArrayOps, SizeOffsets) {
  auto [offsets, total] = a::size_offsets(4, [](std::size_t k) {
    return k * 2;  // sizes 0, 2, 4, 6
  });
  EXPECT_EQ(total, 12u);
  ASSERT_EQ(offsets.size(), 5u);
  EXPECT_EQ(vec(offsets), (std::vector<std::size_t>{0, 0, 2, 6, 12}));
}

TEST(ArrayOps, ApplyEach) {
  auto t = a::iota(100);
  std::vector<std::atomic<int>> hits(100);
  a::apply_each(t, [&hits](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ArrayOps, EveryOpAllocatesEagerly) {
  // The defining property of the A baseline: map allocates O(n).
  scoped_block_size guard(64);
  std::size_t n = 1 << 14;
  auto t = a::tabulate(n, [](std::size_t i) { return (std::int64_t)i; });
  pbds::memory::space_meter meter;
  auto m = a::map([](std::int64_t x) { return x + 1; }, t);
  EXPECT_GE(meter.allocated_bytes(),
            static_cast<std::int64_t>(n * sizeof(std::int64_t)));
}

}  // namespace
