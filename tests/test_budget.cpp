// Resource governance: memory budget admission, degradation ladder, and
// the scheduler watchdog (DESIGN.md §"Resource governance").
//
// Invariants under test:
//  * admission is byte-exact — an allocation landing exactly on the limit
//    is admitted, one byte more is refused with pbds::budget_exceeded;
//  * budget_scope composes by min and restores on exit;
//  * a refused eager flatten degrades to the bounded-chunk recompute path
//    and the pipeline COMPLETES under the budget, with identical results
//    and bytes_live back at baseline;
//  * refusals propagate through the fork-join cancellation protocol under
//    the sequential, deterministic (16 seeds), and real 4-worker
//    schedulers without leaking;
//  * the watchdog cancels a livelocked region (pbds::stall_detected) and
//    the pool stays reusable; deadline overloads behave the same; the
//    deterministic simulator's arm_stall_after replays from one seed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "array/parray.hpp"
#include "core/block.hpp"
#include "core/delayed.hpp"
#include "memory/budget.hpp"
#include "memory/tracking.hpp"
#include "recovery/checkpoint_ops.hpp"
#include "sched/deterministic.hpp"
#include "sched/exec_policy.hpp"
#include "sched/parallel.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace pbds;  // NOLINT

// --- admission ---------------------------------------------------------------

TEST(Budget, ExactBoundaryAdmittedOneByteMoreRefused) {
  sched::scoped_sequential seq;
  std::int64_t base = memory::bytes_live();
  std::int64_t refusals_before = memory::budget_refusals();
  {
    memory::budget_scope budget(base + 4096);
    // Exactly filling the budget is admitted...
    auto full = parray<char>::uninitialized(4096);
    // ...one more byte is not.
    EXPECT_THROW(parray<char>::uninitialized(1), budget_exceeded);
    EXPECT_EQ(memory::budget_refusals(), refusals_before + 1);
    // The refusal left no trace: live bytes unchanged, and freeing the
    // full allocation reopens the budget.
  }
  EXPECT_EQ(memory::bytes_live(), base);
  auto fine = parray<char>::uninitialized(8192);  // no budget active
  EXPECT_EQ(memory::bytes_live(), base + 8192);
}

TEST(Budget, ExceptionCarriesRequestLiveAndLimit) {
  sched::scoped_sequential seq;
  std::int64_t base = memory::bytes_live();
  memory::budget_scope budget(base + 100);
  try {
    auto a = parray<char>::uninitialized(4096);
    FAIL() << "allocation was not refused";
  } catch (const budget_exceeded& e) {
    EXPECT_EQ(e.requested(), 4096u);
    EXPECT_EQ(e.live(), base);
    EXPECT_EQ(e.limit(), base + 100);
    EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos);
  }
}

TEST(Budget, RefusalIsCatchableAsBadAlloc) {
  sched::scoped_sequential seq;
  memory::budget_scope budget(memory::bytes_live() + 16);
  EXPECT_THROW(parray<char>::uninitialized(1024), std::bad_alloc);
}

TEST(Budget, NestedScopesComposeByMin) {
  sched::scoped_sequential seq;
  std::int64_t base = memory::bytes_live();
  memory::budget_scope outer(base + 8192);
  EXPECT_EQ(memory::budget_limit(), base + 8192);
  {
    // A looser inner scope cannot loosen the outer budget.
    memory::budget_scope inner(base + (1 << 20));
    EXPECT_EQ(memory::budget_limit(), base + 8192);
  }
  {
    // A tighter inner scope restricts, and restores on exit.
    memory::budget_scope inner(base + 1024);
    EXPECT_EQ(memory::budget_limit(), base + 1024);
    EXPECT_THROW(parray<char>::uninitialized(2048), budget_exceeded);
  }
  EXPECT_EQ(memory::budget_limit(), base + 8192);
  auto ok = parray<char>::uninitialized(2048);
  EXPECT_EQ(memory::bytes_live(), base + 2048);
}

// --- the retry ladder --------------------------------------------------------

TEST(Budget, RetryLadderRetriesThenSucceeds) {
  memory::set_budget_retry_policy(3, 1);
  int calls = 0;
  int v = memory::budget_retry([&] {
    if (++calls < 3) throw budget_exceeded(1, 0, 0);
    return 42;
  });
  EXPECT_EQ(v, 42);
  EXPECT_EQ(calls, 3);
  memory::set_budget_retry_policy(2, 50);  // defaults
}

TEST(Budget, RetryLadderExhaustsAndRethrows) {
  memory::set_budget_retry_policy(2, 1);
  int calls = 0;
  EXPECT_THROW(memory::budget_retry([&]() -> int {
                 ++calls;
                 throw budget_exceeded(1, 0, 0);
               }),
               budget_exceeded);
  EXPECT_EQ(calls, 3);  // initial attempt + 2 retries
  memory::set_budget_retry_policy(2, 50);
}

// Regression for the PBDS_BUDGET_BYTES env leak: an injector-fabricated
// refusal is deterministic, not transient pressure, so the ladder must
// rethrow it on the first attempt — otherwise recovery::with_progress
// (which wraps attempts in budget_retry whenever a budget is ambient)
// silently completes an attempt the sweep expected to fault.
TEST(Budget, RetryLadderRethrowsInjectedFaultImmediately) {
  memory::set_budget_retry_policy(3, 1);
  int calls = 0;
  try {
    memory::budget_retry([&]() -> int {
      ++calls;
      budget_exceeded e(1, 0, 0);
      e.mark_injected();
      throw e;
    });
    FAIL() << "injected refusal must propagate";
  } catch (const budget_exceeded& e) {
    EXPECT_TRUE(e.injected());
  }
  EXPECT_EQ(calls, 1);  // no retries for an injected fault
  memory::set_budget_retry_policy(2, 50);
}

// End-to-end: the boundary injector's budget kind propagates out of a
// checkpointed op even with an ambient process budget active (the exact
// interplay the env leak broke).
TEST(Budget, InjectedBoundaryBudgetFaultPropagatesUnderAmbientBudget) {
  memory::set_budget_limit(16 << 20);
  {
    auto xs = delayed::map(
        [](std::size_t v) { return static_cast<std::int64_t>(v) + 1; },
        delayed::iota(1 << 14));
    recovery::resumable_result<std::int64_t> rr;
    recovery::scoped_boundary_faults inj(recovery::boundary_fault_kind::budget,
                                         2);
    bool threw = false;
    try {
      (void)recovery::to_array(xs, rr);
    } catch (const budget_exceeded& e) {
      threw = true;
      EXPECT_TRUE(e.injected());
    }
    EXPECT_TRUE(threw) << "attempt completed despite an injected fault";
    EXPECT_EQ(inj.injected(), 1u);
  }
  memory::set_budget_limit(0);
}

// --- bounded-chunk degradation ----------------------------------------------

// The flagship pipeline: filter -> scan -> map-to-inner-sequences ->
// flatten -> narrowing map -> to_array. Eagerly forcing the inners needs ~256 KiB of
// transients; the final output is 32 KiB. With ~100 KiB of budget headroom
// the eager path is refused and flatten must degrade to recompute mode —
// and still produce exactly the unbudgeted result.
parray<char> run_pipeline() {
  scoped_block_size blocks(256);
  auto input = parray<long>::tabulate(
      1024, [](std::size_t i) { return static_cast<long>(i); });
  auto evens =
      delayed::filter([](long v) { return v % 2 == 0; }, input);  // 512
  auto prefix =
      delayed::scan([](long a, long b) { return a + b; }, 0L, evens).first;
  auto inners = delayed::map(
      [](long v) {
        return parray<long>::tabulate(
            64, [v](std::size_t j) { return v + static_cast<long>(j); });
      },
      prefix);
  auto flat = delayed::flatten(inners);  // 32768 elements
  auto narrowed = delayed::map(
      [](long v) { return static_cast<char>(v & 0x7f); }, flat);
  return delayed::to_array(narrowed);
}

void expect_degraded_pipeline_completes() {
  memory::set_budget_retry_policy(1, 1);  // keep the refused retries quick
  auto expected = run_pipeline();  // no budget: eager flatten
  std::int64_t base = memory::bytes_live();
  std::int64_t refusals_before = memory::budget_refusals();
  {
    memory::budget_scope budget(base + 100 * 1024);
    auto got = run_pipeline();
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], expected[i]) << "at " << i;
    }
  }
  // The eager path really was refused (degradation happened)...
  EXPECT_GT(memory::budget_refusals(), refusals_before);
  // ...and the budgeted run released everything it allocated.
  EXPECT_EQ(memory::bytes_live(), base);
  memory::set_budget_retry_policy(2, 50);
}

TEST(BudgetDegradation, FlattenPipelineCompletesSequential) {
  sched::scoped_sequential seq;
  expect_degraded_pipeline_completes();
}

TEST(BudgetDegradation, FlattenPipelineCompletesDeterministicSeeds) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    sched::scoped_deterministic det(seed, 4);
    expect_degraded_pipeline_completes();
  }
}

TEST(BudgetDegradation, FlattenPipelineCompletesRealPool) {
  unsigned before = sched::num_workers();
  sched::set_num_workers(4);
  // Parallel materialization keeps one recomputed inner live per in-flight
  // output block, so give the pool variant per-worker headroom.
  expect_degraded_pipeline_completes();
  sched::set_num_workers(before);
}

// --- propagation through the cancellation protocol ---------------------------

void expect_refusal_propagates() {
  std::int64_t base = memory::bytes_live();
  memory::set_budget_retry_policy(0, 1);
  {
    memory::budget_scope budget(base + 16 * 1024);
    // The outer buffer (64 * sizeof(parray) = 1 KiB) is admitted; the
    // per-element inner allocations (8 KiB each, 512 KiB total) blow the
    // budget mid-tabulate on whichever worker runs that element, so the
    // refusal must cross the fork-join capture / cancel / rethrow
    // protocol — and leak nothing despite the half-built outer array.
    EXPECT_THROW(
        {
          auto a = parray<parray<std::int64_t>>::tabulate(
              64,
              [](std::size_t i) {
                return parray<std::int64_t>::filled(
                    1024, static_cast<std::int64_t>(i));
              },
              /*granularity=*/1);
        },
        budget_exceeded);
  }
  EXPECT_EQ(memory::bytes_live(), base);
  memory::set_budget_retry_policy(2, 50);
}

TEST(BudgetPropagation, Sequential) {
  sched::scoped_sequential seq;
  expect_refusal_propagates();
}

TEST(BudgetPropagation, DeterministicSeeds) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    sched::scoped_deterministic det(seed, 4);
    expect_refusal_propagates();
  }
}

TEST(BudgetPropagation, RealPool) {
  unsigned before = sched::num_workers();
  sched::set_num_workers(4);
  expect_refusal_propagates();
  sched::set_num_workers(before);
}

// --- watchdog ----------------------------------------------------------------

TEST(Watchdog, CancelsLivelockedRegion) {
  unsigned before = sched::num_workers();
  sched::set_num_workers(4);
  sched::start_watchdog({/*period_ms=*/20, /*warn_intervals=*/1,
                         /*cancel_intervals=*/3});
  EXPECT_TRUE(sched::watchdog_running());
  // Every leaf spins until the region is cancelled: no job ever completes,
  // so the only way out is the watchdog detecting zero global progress and
  // cancelling the region.
  EXPECT_THROW(
      parallel_for(
          0, 64,
          [](std::size_t) {
            while (!sched::cancellation_requested()) std::this_thread::yield();
          },
          /*granularity=*/1),
      stall_detected);
  sched::stop_watchdog();
  EXPECT_FALSE(sched::watchdog_running());
  // The region collapsed through the ordinary protocol: the pool is
  // quiescent and reusable.
  sched::quiesce();
  std::atomic<std::int64_t> sum{0};
  parallel_for(0, 1000, [&](std::size_t i) {
    sum.fetch_add(static_cast<std::int64_t>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 499500);
  sched::set_num_workers(before);
}

TEST(Watchdog, DeadlineOverloadCancelsOverrunningRegion) {
  unsigned before = sched::num_workers();
  sched::set_num_workers(4);
  EXPECT_THROW(
      parallel_for(
          0, 64,
          [](std::size_t) {
            while (!sched::cancellation_requested()) std::this_thread::yield();
          },
          /*granularity=*/1, std::chrono::milliseconds(100)),
      stall_detected);
  // A region that finishes in time is untouched by its deadline.
  std::atomic<int> count{0};
  parallel_for(
      0, 100,
      [&](std::size_t) { count.fetch_add(1, std::memory_order_relaxed); },
      /*granularity=*/1, std::chrono::milliseconds(60000));
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(sched::active_tracked_regions(), 0u);
  sched::set_num_workers(before);
}

TEST(Watchdog, Fork2joinDeadlineOverload) {
  unsigned before = sched::num_workers();
  sched::set_num_workers(4);
  EXPECT_THROW(
      fork2join(
          [] {
            while (!sched::cancellation_requested()) std::this_thread::yield();
          },
          [] {
            while (!sched::cancellation_requested()) std::this_thread::yield();
          },
          std::chrono::milliseconds(100)),
      stall_detected);
  sched::set_num_workers(before);
}

// --- deterministic stall mirror ----------------------------------------------

TEST(DeterministicStall, ArmStallAfterReplaysFromSeed) {
  std::uint64_t hash1 = 0;
  std::uint64_t hash2 = 0;
  for (int run = 0; run < 2; ++run) {
    sched::scoped_deterministic det(7, 4);
    det.scheduler().arm_stall_after(5);
    bool stalled = false;
    try {
      parallel_for(
          0, 4096, [](std::size_t) {}, /*granularity=*/1);
    } catch (const stall_detected&) {
      stalled = true;
    }
    EXPECT_TRUE(stalled);
    (run == 0 ? hash1 : hash2) = det.scheduler().trace_hash();
  }
  // Same seed + same injection point => identical interleaving trace.
  EXPECT_EQ(hash1, hash2);
}

TEST(Backoff, HugeBaseSaturatesInsteadOfOverflowing) {
  // Caller-supplied bases are not env-clamped; a base near INT64_MAX must
  // saturate at the backoff ceiling, not shift into signed overflow.
  constexpr std::int64_t kCeiling = 600'000'000;  // 10 min, from budget.hpp
  for (int attempt = 0; attempt < 25; ++attempt) {
    const std::int64_t d = memory::jittered_backoff_us(
        attempt, std::numeric_limits<std::int64_t>::max(), /*salt=*/42);
    EXPECT_GT(d, 0) << "attempt=" << attempt;
    EXPECT_LE(d, kCeiling + kCeiling / 2) << "attempt=" << attempt;
  }
  // A sane base still doubles per attempt until it hits the ceiling.
  EXPECT_EQ(memory::jittered_backoff_us(0, 0, 42), 0);
  const std::int64_t small = memory::jittered_backoff_us(3, 100, 42);
  EXPECT_GT(small, 0);
  EXPECT_LE(small, 100 * 8 * 3 / 2);
}

TEST(DeterministicStall, DisarmedRunsToCompletion) {
  sched::scoped_deterministic det(7, 4);
  det.scheduler().arm_stall_after(-1);
  std::int64_t sum = 0;
  // Sequential accumulation is safe: the simulator runs on one thread.
  parallel_for(
      0, 1000, [&](std::size_t i) { sum += static_cast<std::int64_t>(i); },
      /*granularity=*/1);
  EXPECT_EQ(sum, 499500);
}

}  // namespace
