// Second property battery: non-commutative (but associative) operators —
// which catch any blocked implementation that reorders combinations — plus
// slicing laws and cross-checks between the library-level tokens and the
// benchmark kernel.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "benchmarks/linearrec.hpp"
#include "benchmarks/policies.hpp"
#include "benchmarks/tokens.hpp"
#include "core/block.hpp"
#include "core/delayed_extras.hpp"
#include "random/rng.hpp"

namespace {

using namespace pbds;  // NOLINT

class Prop2Test : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    // Member-held so the trace covers the whole test body; any failure
    // prints the block size and the replay filter.
    trace_.emplace(__FILE__, __LINE__,
                   ::testing::Message()
                       << "block=" << GetParam()
                       << "  [replay: ./test_properties2 --gtest_filter=*B"
                       << GetParam() << "]");
  }

  std::optional<::testing::ScopedTrace> trace_;
  scoped_block_size guard_{GetParam()};
};

// --- string concatenation: associative, NOT commutative ------------------------

template <typename P>
std::string concat_all(std::size_t n) {
  auto letters = P::map(
      [](std::size_t i) {
        return std::string(1, static_cast<char>('a' + (i * 7) % 26));
      },
      P::iota(n));
  return P::reduce(
      [](const std::string& x, const std::string& y) { return x + y; },
      std::string{}, letters);
}

TEST_P(Prop2Test, ReduceStringConcatPreservesOrder) {
  for (std::size_t n : {0u, 1u, 50u, 333u}) {
    std::string want;
    for (std::size_t i = 0; i < n; ++i)
      want.push_back(static_cast<char>('a' + (i * 7) % 26));
    EXPECT_EQ(concat_all<array_policy>(n), want) << n;
    EXPECT_EQ(concat_all<rad_policy>(n), want) << n;
    EXPECT_EQ(concat_all<delay_policy>(n), want) << n;
  }
}

// --- affine composition scan: associative, not commutative ---------------------

template <typename P>
std::vector<double> affine_scan(const parray<bench::affine>& coefs) {
  auto [inc, tot] = P::scan_inclusive(
      [](const bench::affine& p, const bench::affine& q) {
        return bench::affine_compose(p, q);
      },
      bench::affine_identity, P::view(coefs));
  (void)tot;
  auto arr = P::to_array(
      P::map([](const bench::affine& c) { return c.second; }, inc));
  return {arr.begin(), arr.end()};
}

TEST_P(Prop2Test, AffineScanOrderSensitive) {
  auto coefs = bench::linearrec_input(777, GetParam());
  auto want = bench::linearrec_reference(coefs);
  auto a = affine_scan<array_policy>(coefs);
  auto r = affine_scan<rad_policy>(coefs);
  auto d = affine_scan<delay_policy>(coefs);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(d[i], want[i], 1e-9) << i;
    ASSERT_EQ(a[i], d[i]) << i;  // identical blocking => identical bits
    ASSERT_EQ(r[i], d[i]) << i;
  }
}

// --- slicing laws ---------------------------------------------------------------

TEST_P(Prop2Test, TakeOfScanEqualsScanPrefix) {
  namespace d = pbds::delayed;
  auto t = d::map([](std::size_t i) { return (int)(i % 9); }, d::iota(100));
  auto [pre, tot] = d::scan([](int a, int b) { return a + b; }, 0, t);
  (void)tot;
  auto full = d::to_array(pre);
  for (std::size_t k : {0u, 1u, 17u, 99u, 100u}) {
    auto front = d::to_array(d::take(pre, k));
    ASSERT_EQ(front.size(), k);
    for (std::size_t i = 0; i < k; ++i) ASSERT_EQ(front[i], full[i]) << i;
  }
}

TEST_P(Prop2Test, EnumerateThenUnzipRoundTrips) {
  namespace d = pbds::delayed;
  auto t = d::map([](std::size_t i) { return (int)(i * 5 + 1); },
                  d::iota(64));
  auto [idx, vals] = d::unzip(d::enumerate(t));
  EXPECT_TRUE(d::equal(idx, d::iota(64)));
  EXPECT_TRUE(d::equal(vals, t));
}

TEST_P(Prop2Test, ReverseOfReverseIsIdentity) {
  namespace d = pbds::delayed;
  auto t = d::map([](std::size_t i) { return (int)((i * 31) % 97); },
                  d::iota(123));
  EXPECT_TRUE(d::equal(d::reverse(d::reverse(t)), t));
}

// --- library tokens vs the benchmark kernel -------------------------------------

TEST_P(Prop2Test, LibraryTokensMatchesKernelCounts) {
  namespace d = pbds::delayed;
  auto corpus = text::random_words(5'000, 6.0, GetParam() + 99);
  auto kernel = bench::tokens_reference(corpus);
  auto lib = d::tokens(corpus);
  EXPECT_EQ(d::length(lib), kernel.count);
  auto total_len = d::reduce(
      [](std::uint64_t a, std::uint64_t b) { return a + b; },
      std::uint64_t{0},
      d::map(
          [](const std::pair<std::size_t, std::size_t>& w) {
            return static_cast<std::uint64_t>(w.second);
          },
          lib));
  EXPECT_EQ(total_len, kernel.total_len);
}

// --- histogram law: bucket sums == element count ---------------------------------

TEST_P(Prop2Test, HistogramTotalsMatch) {
  namespace d = pbds::delayed;
  random::rng gen(GetParam());
  auto a = parray<std::size_t>::tabulate(
      2'000, [&](std::size_t i) { return gen.below(i, 40); });
  auto h = d::histogram(d::view(a), 40, [](std::size_t v) { return v; });
  std::size_t total = 0;
  for (auto c : h) total += c;
  EXPECT_EQ(total, 2'000u);
  // Spot-check one bucket against a direct count.
  std::size_t direct = 0;
  for (auto v : a) direct += v == 7;
  EXPECT_EQ(h[7], direct);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, Prop2Test,
                         ::testing::Values(1, 5, 64, 2048),
                         [](const auto& info) {
                           return "B" + std::to_string(info.param);
                         });

}  // namespace
