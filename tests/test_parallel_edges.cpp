// parallel_for / fork2join edge cases, across execution modes:
// empty and single-element ranges, ranges exactly at / one past the
// granularity boundary, and nested parallelism entered from a thread that
// is not part of the worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sched/deterministic.hpp"
#include "sched/exec_policy.hpp"
#include "sched/parallel.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace pbds;  // NOLINT

// Run `body` under each execution mode; det mode uses a fixed seed.
template <typename F>
void for_each_mode(F body) {
  {
    SCOPED_TRACE("mode=sequential");
    sched::scoped_sequential g;
    body();
  }
  {
    SCOPED_TRACE("mode=deterministic");
    sched::scoped_deterministic g(21, 4);
    body();
  }
  {
    SCOPED_TRACE("mode=parallel");
    body();
  }
}

TEST(ParallelForEdges, EmptyRangeNeverInvokesBody) {
  for_each_mode([] {
    std::atomic<int> calls{0};
    parallel_for(5, 5, [&](std::size_t) { ++calls; });
    parallel_for(7, 3, [&](std::size_t) { ++calls; });  // hi < lo
    apply(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
  });
}

TEST(ParallelForEdges, SingleElementRange) {
  for_each_mode([] {
    std::atomic<int> calls{0};
    std::atomic<std::size_t> seen{~std::size_t{0}};
    parallel_for(41, 42, [&](std::size_t i) {
      ++calls;
      seen = i;
    });
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(seen.load(), 41u);
    apply(1, [&](std::size_t i) { EXPECT_EQ(i, 0u); });
  });
}

TEST(ParallelForEdges, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10'000;
  for_each_mode([] {
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(0, kN, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  });
}

TEST(ParallelForEdges, RangeExactlyAtGranularityDoesNotFork) {
  // n == granularity runs as one sequential leaf; n == granularity + 1
  // must split. The deterministic trace makes fork counts observable.
  constexpr std::size_t kG = 64;
  {
    sched::scoped_deterministic g(1, 4);
    parallel_for(0, kG, [](std::size_t) {}, kG);
    EXPECT_EQ(g.scheduler().num_forks(), 0u);
  }
  {
    sched::scoped_deterministic g(1, 4);
    parallel_for(0, kG + 1, [](std::size_t) {}, kG);
    EXPECT_GE(g.scheduler().num_forks(), 1u);
  }
}

TEST(ParallelForEdges, GranularityBoundaryStillCoversRange) {
  constexpr std::size_t kG = 64;
  for (std::size_t n : {kG - 1, kG, kG + 1, 2 * kG, 2 * kG + 1}) {
    for_each_mode([n] {
      std::vector<std::atomic<int>> hits(n);
      parallel_for(0, n, [&](std::size_t i) { hits[i]++; }, kG);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " index " << i;
    });
  }
}

TEST(ParallelForEdges, NestedParallelForInsideFork2Join) {
  for_each_mode([] {
    constexpr std::size_t kN = 2000;
    std::vector<std::atomic<int>> left(kN), right(kN);
    fork2join(
        [&] { parallel_for(0, kN, [&](std::size_t i) { left[i]++; }); },
        [&] { parallel_for(0, kN, [&](std::size_t i) { right[i]++; }); });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(left[i].load(), 1) << i;
      ASSERT_EQ(right[i].load(), 1) << i;
    }
  });
}

TEST(ParallelForEdges, NonPoolThreadRunsNestedParallelismSafely) {
  // A thread that is not a pool worker (worker_id() < 0) must fall back to
  // the safe sequential path for fork2join — including nested
  // parallel_for inside the branches — and still cover every index.
  (void)sched::get_scheduler();  // pool up before the foreign thread starts
  constexpr std::size_t kN = 4000;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<bool> ok{true};
  std::thread outsider([&] {
    if (sched::scheduler::worker_id() >= 0) {
      ok = false;  // precondition: this thread is not in the pool
      return;
    }
    fork2join(
        [&] { parallel_for(0, kN / 2, [&](std::size_t i) { hits[i]++; }); },
        [&] {
          parallel_for(kN / 2, kN, [&](std::size_t i) { hits[i]++; });
        });
  });
  outsider.join();
  EXPECT_TRUE(ok.load());
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForEdges, ApplyUsesGranularityOne) {
  // apply(n, f) treats each index as a block-sized task: under the
  // deterministic scheduler an n-leaf apply forks n - 1 times.
  sched::scoped_deterministic g(5, 4);
  apply(9, [](std::size_t) {});
  EXPECT_EQ(g.scheduler().num_forks(), 8u);
}

}  // namespace
