// Nested parallelism: delayed pipelines inside delayed pipelines — outer
// tabulates whose element functions themselves run reduces, scans and
// filters. The paper: "Many of the benchmarks utilize nested parallelism,
// which our libraries support seamlessly."
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "benchmarks/policies.hpp"
#include "core/block.hpp"
#include "core/delayed_extras.hpp"

namespace {

using namespace pbds;  // NOLINT

class NestedTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  scoped_block_size guard_{GetParam()};
};

// Outer map over rows; inner reduce per row (the spmv shape, distilled).
template <typename P>
std::vector<std::int64_t> row_sums(std::size_t rows, std::size_t cols) {
  auto out = P::to_array(P::tabulate(rows, [cols](std::size_t r) {
    return P::reduce(
        [](std::int64_t a, std::int64_t b) { return a + b; },
        std::int64_t{0},
        P::map(
            [r](std::size_t c) {
              return static_cast<std::int64_t>((r * 31 + c * 7) % 100);
            },
            P::iota(cols)));
  }));
  return {out.begin(), out.end()};
}

TEST_P(NestedTest, InnerReducePerOuterElement) {
  std::size_t rows = 64, cols = 173;
  std::vector<std::int64_t> want(rows, 0);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      want[r] += static_cast<std::int64_t>((r * 31 + c * 7) % 100);
  EXPECT_EQ(row_sums<array_policy>(rows, cols), want);
  EXPECT_EQ(row_sums<rad_policy>(rows, cols), want);
  EXPECT_EQ(row_sums<delay_policy>(rows, cols), want);
}

// Inner scan inside an outer tabulate: each outer element is the total of
// an inner exclusive scan — exercises nested BID creation under a running
// outer parallel loop.
TEST_P(NestedTest, InnerScanPerOuterElement) {
  namespace d = pbds::delayed;
  auto out = d::to_array(d::tabulate(40, [](std::size_t r) {
    auto [pre, total] = d::scan(
        [](std::size_t a, std::size_t b) { return a + b; }, std::size_t{0},
        d::tabulate(r + 1, [](std::size_t c) { return c; }));
    // consume pre too, to run the delayed phase 3 concurrently
    auto last = d::reduce(
        [](std::size_t a, std::size_t b) { return a > b ? a : b; },
        std::size_t{0}, pre);
    return total + last;
  }));
  for (std::size_t r = 0; r < 40; ++r) {
    std::size_t total = r * (r + 1) / 2;
    std::size_t last_pre = r == 0 ? 0 : (r - 1) * r / 2;
    ASSERT_EQ(out[r], total + last_pre) << r;
  }
}

// Inner filters inside an outer flatten: nested ragged structure built and
// consumed entirely delayed.
TEST_P(NestedTest, FilterInsideFlatten) {
  namespace d = pbds::delayed;
  auto nested = d::map(
      [](std::size_t r) {
        // Inner: the even numbers below r, forced to random access for
        // flatten.
        return d::force(
            d::filter([](std::size_t x) { return x % 2 == 0; }, d::iota(r)));
      },
      d::iota(8));
  auto flat = d::flatten(nested);
  std::vector<std::size_t> want;
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t x = 0; x < r; x += 2) want.push_back(x);
  auto arr = d::to_array(flat);
  ASSERT_EQ(arr.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(arr[i], want[i]) << i;
}

// Three levels: outer tabulate -> middle flatten -> inner reduce.
TEST_P(NestedTest, ThreeLevels) {
  namespace d = pbds::delayed;
  auto result = d::reduce(
      [](std::size_t a, std::size_t b) { return a + b; }, std::size_t{0},
      d::map(
          [](std::size_t outer) {
            auto middle = d::flat_map(
                [outer](std::size_t m) {
                  return d::tabulate(m % 3, [outer, m](std::size_t i) {
                    return outer + m + i;
                  });
                },
                d::iota(6));
            return d::reduce(
                [](std::size_t a, std::size_t b) { return a + b; },
                std::size_t{0}, middle);
          },
          d::iota(5)));
  std::size_t want = 0;
  for (std::size_t outer = 0; outer < 5; ++outer)
    for (std::size_t m = 0; m < 6; ++m)
      for (std::size_t i = 0; i < m % 3; ++i) want += outer + m + i;
  EXPECT_EQ(result, want);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, NestedTest,
                         ::testing::Values(2, 64, 2048),
                         [](const auto& info) {
                           return "B" + std::to_string(info.param);
                         });

}  // namespace
