// Stress tests: configurations that maximize internal pressure — tens of
// thousands of blocks, deep fused pipelines, larger inputs, high worker
// oversubscription — while still finishing in a couple of seconds each.
#include <gtest/gtest.h>

#include <cstdint>

#include "benchmarks/bfs.hpp"
#include "benchmarks/policies.hpp"
#include "core/block.hpp"
#include "core/delayed.hpp"

namespace {

using namespace pbds;  // NOLINT
namespace d = pbds::delayed;

TEST(Stress, ManyBlocksScanPipeline) {
  // 1M elements at block size 16 => 65536 blocks, large partial arrays,
  // heavy per-block dispatch.
  scoped_block_size guard(16);
  std::size_t n = 1 << 20;
  auto t = d::map([](std::size_t i) { return (std::int64_t)(i % 13); },
                  d::iota(n));
  auto [pre, total] = d::scan(
      [](std::int64_t a, std::int64_t b) { return a + b; }, std::int64_t{0},
      t);
  std::int64_t checksum = d::reduce(
      [](std::int64_t a, std::int64_t b) { return a ^ b; }, std::int64_t{0},
      pre);
  std::int64_t want_total = 0, want_checksum = 0, acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    want_checksum ^= acc;
    acc += static_cast<std::int64_t>(i % 13);
  }
  want_total = acc;
  EXPECT_EQ(total, want_total);
  EXPECT_EQ(checksum, want_checksum);
}

TEST(Stress, DeepFusedPipeline) {
  // Ten chained fused stages over one input; a torture test for template
  // composition depth and block-size propagation.
  scoped_block_size guard(64);
  std::size_t n = 100'000;
  auto s0 = d::map([](std::size_t i) { return (std::int64_t)i; }, d::iota(n));
  auto s1 = d::map([](std::int64_t x) { return x + 1; }, s0);
  auto [s2, t2] = d::scan(
      [](std::int64_t a, std::int64_t b) { return a + b; }, std::int64_t{0},
      s1);
  (void)t2;
  auto s3 = d::map([](std::int64_t x) { return x % 1000; }, s2);
  auto s4 = d::zip(s3, d::iota(n));
  auto s5 = d::map(
      [](const std::pair<std::int64_t, std::size_t>& p) {
        return p.first + static_cast<std::int64_t>(p.second);
      },
      s4);
  auto s6 = d::filter([](std::int64_t x) { return x % 3 != 0; }, s5);
  auto [s7, t7] = d::scan_inclusive(
      [](std::int64_t a, std::int64_t b) { return a + b; }, std::int64_t{0},
      s6);
  auto s8 = d::map([](std::int64_t x) { return x & 0xffff; }, s7);
  std::int64_t got = d::reduce(
      [](std::int64_t a, std::int64_t b) { return a + b; }, std::int64_t{0},
      s8);
  (void)t7;
  // Sequential model of the same ten stages.
  std::int64_t acc_scan = 0, acc_inc = 0, want = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t x = static_cast<std::int64_t>(i) + 1;
    std::int64_t pre = acc_scan;
    acc_scan += x;
    std::int64_t v = pre % 1000 + static_cast<std::int64_t>(i);
    if (v % 3 != 0) {
      acc_inc += v;
      want += acc_inc & 0xffff;
    }
  }
  EXPECT_EQ(got, want);
}

TEST(Stress, OversubscribedWorkersLargeBfs) {
  unsigned before = sched::num_workers();
  sched::set_num_workers(8);  // 8 threads on (likely) 1 core
  auto g = graph::rmat(15, 500'000);
  auto parent = bench::bfs<delay_policy>(g, 0);
  EXPECT_TRUE(graph::check_bfs_tree(g, 0, [&](std::size_t v) {
    return parent[v].load(std::memory_order_relaxed);
  }));
  sched::set_num_workers(before);
}

TEST(Stress, RepeatedPoolRestarts) {
  // set_num_workers churn: start/stop the pool many times with work in
  // between; catches thread lifecycle bugs.
  unsigned before = sched::num_workers();
  for (unsigned p : {1u, 3u, 2u, 5u, 1u, 4u}) {
    sched::set_num_workers(p);
    std::atomic<std::int64_t> sum{0};
    parallel_for(0, 50'000, [&](std::size_t i) {
      sum.fetch_add(static_cast<std::int64_t>(i), std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 50'000LL * 49'999 / 2) << p;
  }
  sched::set_num_workers(before);
}

TEST(Stress, FilterAlmostAllSurvive) {
  // Survivor-heavy filter: packed blocks nearly full, region walk long.
  scoped_block_size guard(128);
  std::size_t n = 1 << 19;
  auto f = d::filter([](std::size_t x) { return x % 1000 != 0; }, d::iota(n));
  EXPECT_EQ(d::length(f), n - (n + 999) / 1000);
  auto arr = d::to_array(f);
  EXPECT_EQ(arr[0], 1u);
  EXPECT_EQ(arr[997], 998u);
  EXPECT_EQ(arr[998], 999u);
  EXPECT_EQ(arr[999], 1001u);  // 1000 filtered out
}

TEST(Stress, FlattenManyTinyInners) {
  scoped_block_size guard(256);
  std::size_t k = 200'000;  // 200k inners of size 0-2
  auto nested = d::map(
      [](std::size_t i) {
        return d::tabulate(i % 3, [i](std::size_t j) { return i + j; });
      },
      d::iota(k));
  auto flat = d::flatten(nested);
  std::size_t want_len = 0, want_sum = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < i % 3; ++j) {
      ++want_len;
      want_sum += i + j;
    }
  }
  EXPECT_EQ(d::length(flat), want_len);
  EXPECT_EQ(d::reduce([](std::size_t a, std::size_t b) { return a + b; },
                      std::size_t{0}, flat),
            want_sum);
}

}  // namespace
