// Unit tests for the counter-based RNG substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>

#include "random/rng.hpp"

namespace {

using pbds::random::hash64;
using pbds::random::rng;

TEST(Rng, Hash64IsDeterministic) {
  EXPECT_EQ(hash64(42), hash64(42));
  EXPECT_NE(hash64(42), hash64(43));
}

TEST(Rng, Hash64SpreadsLowBits) {
  // Consecutive inputs should produce well-spread outputs.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10'000; ++i) seen.insert(hash64(i) & 0xffff);
  // With 10k draws into 65536 buckets, expect a large fraction distinct.
  EXPECT_GT(seen.size(), 8'000u);
}

TEST(Rng, DrawsAreDeterministicPerIndex) {
  rng g(7);
  EXPECT_EQ(g.u64(5), g.u64(5));
  EXPECT_NE(g.u64(5), g.u64(6));
  rng g2(7);
  EXPECT_EQ(g.u64(123), g2.u64(123));
  rng g3(8);
  EXPECT_NE(g.u64(123), g3.u64(123));
}

TEST(Rng, SplitStreamsAreIndependent) {
  rng g(7);
  rng a = g.split(1);
  rng b = g.split(2);
  int equal = 0;
  for (std::uint64_t i = 0; i < 100; ++i) equal += a.u64(i) == b.u64(i);
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInRange) {
  rng g(3);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    double u = g.uniform(i);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  rng g(11);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += g.uniform(static_cast<std::uint64_t>(i));
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound) {
  rng g(5);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    ASSERT_LT(g.below(i, 37), 37u);
  }
  EXPECT_EQ(g.below(0, 0), 0u);
  EXPECT_EQ(g.below(0, 1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  rng g(13);
  int counts[10] = {};
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    counts[g.below(static_cast<std::uint64_t>(i), 10)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, CoinProbability) {
  rng g(17);
  int heads = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    heads += g.coin(static_cast<std::uint64_t>(i), 0.25);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.01);
}

TEST(Rng, RangedUniform) {
  rng g(23);
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    double v = g.uniform(i, -3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

}  // namespace
