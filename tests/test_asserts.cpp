// Death tests: programmer-error preconditions are enforced by asserts in
// debug builds (the benchmarks compile with NDEBUG; tests keep asserts on).
#include <gtest/gtest.h>

#include "core/delayed.hpp"

namespace {

namespace d = pbds::delayed;
using pbds::parray;

#ifndef NDEBUG

void zip_mismatch_rad_rad() {
  auto z = d::zip(d::iota(5), d::iota(6));
  (void)z;
}

void zip_mismatch_with_bid() {
  auto pr = d::scan([](std::size_t a, std::size_t b) { return a + b; },
                    std::size_t{0}, d::iota(5));
  auto z = d::zip(pr.first, d::iota(7));
  (void)z;
}

void parray_out_of_bounds() {
  auto a = parray<int>::filled(3, 1);
  volatile int x = a[5];
  (void)x;
}

void zero_block_size() { pbds::set_block_size(0); }

TEST(AssertsDeathTest, ZipLengthMismatchRadRad) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(zip_mismatch_rad_rad(), "");
}

TEST(AssertsDeathTest, ZipLengthMismatchWithBid) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(zip_mismatch_with_bid(), "");
}

TEST(AssertsDeathTest, ParrayOutOfBounds) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(parray_out_of_bounds(), "");
}

TEST(AssertsDeathTest, ZeroBlockSizeRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(zero_block_size(), "");
}

#endif  // NDEBUG

TEST(Asserts, BlockSizeRoundTrip) {
  std::size_t before = pbds::block_size();
  pbds::set_block_size(77);
  EXPECT_EQ(pbds::block_size(), 77u);
  pbds::set_block_size(before);
}

}  // namespace
