// Exception propagation across the fork-join layer.
//
// The failure model under test (DESIGN.md §"Failure semantics"): a throw
// from any branch of a fork tree — left, right, both, a deep
// parallel_for chunk, a stolen job on another worker, or a thread outside
// the pool — is rethrown as exactly ONE exception on the calling thread,
// with its type and payload intact, nothing leaked, every sibling join
// completed, and the pool quiescent and reusable afterwards. Scenarios run
// under all three execution modes: sequential, deterministic (16-seed
// sweep; cancellation interleavings must replay per seed), and the real
// work-stealing pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <new>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "array/parray.hpp"
#include "benchmarks/policies.hpp"
#include "memory/counting_allocator.hpp"
#include "memory/tracking.hpp"
#include "sched/deterministic.hpp"
#include "sched/exec_policy.hpp"
#include "sched/parallel.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace pbds;  // NOLINT

// Distinguishable payload: propagation must preserve both type and value.
struct test_error {
  int id;
};

// A clean computation on the current pool/mode; failing here after a
// caught exception means the failure left the scheduler wedged or lost.
void expect_pool_clean() {
  std::atomic<std::int64_t> sum{0};
  parallel_for(
      0, 20'000,
      [&](std::size_t i) {
        sum.fetch_add(static_cast<std::int64_t>(i),
                      std::memory_order_relaxed);
      },
      64);
  EXPECT_EQ(sum.load(), 20'000LL * 19'999 / 2);
}

// Run `scenario` under sequential, a 16-seed deterministic sweep, and the
// real pool (the ambient parallel mode).
template <typename Fn>
void for_each_mode(Fn&& scenario) {
  {
    SCOPED_TRACE("mode=sequential");
    sched::scoped_sequential seq;
    scenario();
  }
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    SCOPED_TRACE("mode=det seed=" + std::to_string(seed) +
                 "  [replay: PBDS_SEED=" + std::to_string(seed) + "]");
    sched::scoped_deterministic det(seed, 4);
    scenario();
  }
  {
    // Force a real multi-worker pool even on single-core machines —
    // otherwise fork2join takes its sequential fast path and the
    // capture/cancel/rethrow protocol is never crossed.
    SCOPED_TRACE("mode=parallel");
    unsigned before = sched::num_workers();
    if (before < 4) sched::set_num_workers(4);
    scenario();
    if (before < 4) sched::set_num_workers(before);
  }
}

// --- single branches ---------------------------------------------------------

TEST(ExceptionPropagation, ThrowFromLeftBranch) {
  for_each_mode([] {
    bool caught = false;
    try {
      fork2join([] { throw test_error{1}; }, [] {});
    } catch (const test_error& e) {
      caught = true;
      EXPECT_EQ(e.id, 1);
    }
    EXPECT_TRUE(caught);
    expect_pool_clean();
  });
}

TEST(ExceptionPropagation, ThrowFromRightBranch) {
  for_each_mode([] {
    bool caught = false;
    try {
      fork2join([] {}, [] { throw test_error{2}; });
    } catch (const test_error& e) {
      caught = true;
      EXPECT_EQ(e.id, 2);
    }
    EXPECT_TRUE(caught);
    expect_pool_clean();
  });
}

TEST(ExceptionPropagation, ThrowFromBothBranchesYieldsExactlyOne) {
  for_each_mode([] {
    int catches = 0;
    int id = 0;
    try {
      fork2join([] { throw test_error{1}; }, [] { throw test_error{2}; });
    } catch (const test_error& e) {
      ++catches;
      id = e.id;
    }
    EXPECT_EQ(catches, 1);
    EXPECT_TRUE(id == 1 || id == 2) << id;
    expect_pool_clean();
  });
}

TEST(ExceptionPropagation, PayloadSurvivesRethrow) {
  for_each_mode([] {
    try {
      fork2join([] {},
                [] { throw std::runtime_error("boom: fork failure"); });
      ADD_FAILURE() << "no exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom: fork failure");
    }
  });
}

// --- deep trees and loops ----------------------------------------------------

TEST(ExceptionPropagation, ThrowFromDeepForkTreeLeaf) {
  for_each_mode([] {
    // Depth-8 fork tree (256 leaves); exactly one leaf throws.
    std::atomic<int> leaves{0};
    std::function<void(int, int)> rec = [&](int depth, int path) {
      if (depth == 0) {
        if (path == 137) throw test_error{path};
        leaves.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      fork2join([&] { rec(depth - 1, path << 1); },
                [&] { rec(depth - 1, (path << 1) | 1); });
    };
    bool caught = false;
    try {
      rec(8, 0);  // leaves are paths 0..255
    } catch (const test_error& e) {
      caught = true;
      EXPECT_EQ(e.id, 137);
    }
    EXPECT_TRUE(caught);
    EXPECT_LE(leaves.load(), 255);
    expect_pool_clean();
  });
}

TEST(ExceptionPropagation, ThrowFromDeepParallelForChunk) {
  for_each_mode([] {
    bool caught = false;
    try {
      parallel_for(
          0, 1 << 16,
          [](std::size_t i) {
            if (i == 12'345) throw test_error{42};
          },
          16);
    } catch (const test_error& e) {
      caught = true;
      EXPECT_EQ(e.id, 42);
    }
    EXPECT_TRUE(caught);
    expect_pool_clean();
  });
}

TEST(ExceptionPropagation, ThrowFromNestedParallelForInsideApply) {
  for_each_mode([] {
    bool caught = false;
    try {
      apply(16, [](std::size_t j) {
        parallel_for(
            0, 1000,
            [j](std::size_t i) {
              if (j == 7 && i == 500) throw test_error{70};
            },
            8);
      });
    } catch (const test_error& e) {
      caught = true;
      EXPECT_EQ(e.id, 70);
    }
    EXPECT_TRUE(caught);
    expect_pool_clean();
  });
}

// --- cancellation ------------------------------------------------------------

// Once a branch throws, sibling/descendant work bails at fork and chunk
// boundaries; under the deterministic scheduler both the amount of work
// skipped and the interleaving trace replay exactly from the seed.
TEST(ExceptionPropagation, CancellationSkipsWorkAndReplaysPerSeed) {
  constexpr std::size_t n = 4096;
  auto run = [](std::uint64_t seed) {
    sched::scoped_deterministic det(seed, 4);
    std::atomic<std::size_t> executed{0};
    bool caught = false;
    try {
      apply(n, [&](std::size_t i) {
        if (i == n / 2) throw test_error{7};
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    } catch (const test_error& e) {
      caught = true;
      EXPECT_EQ(e.id, 7);
    }
    EXPECT_TRUE(caught);
    return std::pair(executed.load(), det.scheduler().trace_hash());
  };
  std::size_t total = 0;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    auto [count1, hash1] = run(seed);
    auto [count2, hash2] = run(seed);
    EXPECT_EQ(count1, count2) << "seed " << seed;
    EXPECT_EQ(hash1, hash2) << "seed " << seed;
    total += count1;
  }
  // The throwing chunk aside, a full run would execute 16 * (n - 1)
  // chunks; cancellation must have skipped a substantial share.
  EXPECT_LT(total, 16 * (n - 1));
}

TEST(ExceptionPropagation, FirstExceptionWinsIsSeedDeterministic) {
  auto winner = [](std::uint64_t seed) {
    sched::scoped_deterministic det(seed, 4);
    try {
      fork2join([] { throw test_error{1}; }, [] { throw test_error{2}; });
    } catch (const test_error& e) {
      return e.id;
    }
    return -1;
  };
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    int a = winner(seed);
    EXPECT_EQ(a, winner(seed)) << "seed " << seed;
    EXPECT_TRUE(a == 1 || a == 2) << a;
  }
}

// --- the real pool -----------------------------------------------------------

TEST(ExceptionPropagation, ThrowFromStolenJob) {
  unsigned before = sched::num_workers();
  sched::set_num_workers(4);
  std::atomic<int> right_worker{-2};
  bool caught = false;
  try {
    fork2join(
        [&] {
          // Park the forker until a thief picks up the right job (bounded,
          // for single-core or overloaded machines: if nobody steals, the
          // forker itself pops and runs the job after the deadline).
          auto deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(5);
          while (right_worker.load(std::memory_order_acquire) == -2 &&
                 std::chrono::steady_clock::now() < deadline) {
            std::this_thread::yield();
          }
        },
        [&] {
          right_worker.store(pbds::sched::scheduler::worker_id(),
                             std::memory_order_release);
          throw test_error{11};
        });
  } catch (const test_error& e) {
    caught = true;
    EXPECT_EQ(e.id, 11);
  }
  EXPECT_TRUE(caught);
  EXPECT_NE(right_worker.load(), -2);  // the right branch did run
  expect_pool_clean();
  sched::set_num_workers(before);
}

TEST(ExceptionPropagation, ThrowOnNonPoolThread) {
  // A thread outside the pool runs the (safe) sequential fast path of the
  // parallel primitives; its exceptions unwind normally within the thread.
  std::exception_ptr seen;
  std::thread t([&] {
    try {
      parallel_for(0, 10'000, [](std::size_t i) {
        if (i == 777) throw test_error{5};
      });
    } catch (...) {
      seen = std::current_exception();
    }
  });
  t.join();
  ASSERT_TRUE(seen != nullptr);
  try {
    std::rethrow_exception(seen);
  } catch (const test_error& e) {
    EXPECT_EQ(e.id, 5);
  }
  expect_pool_clean();
}

TEST(ExceptionPropagation, PoolSurvivesRepeatedFailures) {
  for (int round = 0; round < 50; ++round) {
    bool caught = false;
    try {
      parallel_for(
          0, 2000,
          [round](std::size_t i) {
            if (i == static_cast<std::size_t>(round * 17 % 2000))
              throw test_error{round};
          },
          1);
    } catch (const test_error& e) {
      caught = true;
      EXPECT_EQ(e.id, round);
    }
    ASSERT_TRUE(caught) << "round " << round;
  }
  expect_pool_clean();
}

TEST(ExceptionPropagation, SubtreeFailureCounterAdvances) {
  unsigned workers_before = sched::num_workers();
  if (workers_before < 2) sched::set_num_workers(4);
  std::uint64_t before = sched::get_scheduler().subtree_failures();
  try {
    parallel_for(
        0, 1 << 14, [](std::size_t i) {
          if (i == 9'999) throw test_error{1};
        },
        8);
  } catch (const test_error&) {
  }
  EXPECT_GT(sched::get_scheduler().subtree_failures(), before);
  expect_pool_clean();
  if (workers_before < 2) sched::set_num_workers(workers_before);
}

// --- leak freedom ------------------------------------------------------------

TEST(ExceptionPropagation, NoLeaksWhenBranchesAllocateAndThrow) {
  for_each_mode([] {
    std::int64_t baseline = memory::bytes_live();
    bool caught = false;
    try {
      fork2join(
          [] {
            // Tracked allocations on the throwing branch: a flat array and
            // a non-trivially-destructible nested one (exercises the
            // shielded destructor sweep during unwinding).
            auto flat = parray<std::int64_t>::tabulate(
                5'000,
                [](std::size_t i) { return static_cast<std::int64_t>(i); });
            auto nested = parray<memory::tracked_vector<int>>::tabulate(
                64, [](std::size_t i) {
                  memory::tracked_vector<int> v;
                  for (std::size_t j = 0; j <= i % 7; ++j)
                    v.push_back(static_cast<int>(j));
                  return v;
                });
            throw test_error{3};
          },
          [] {
            auto other = parray<std::int64_t>::tabulate(
                5'000,
                [](std::size_t i) { return static_cast<std::int64_t>(i); });
          });
    } catch (const test_error& e) {
      caught = true;
      EXPECT_EQ(e.id, 3);
    }
    EXPECT_TRUE(caught);
    EXPECT_EQ(memory::bytes_live(), baseline);
    expect_pool_clean();
  });
}

TEST(ExceptionPropagation, NoLeaksWhenPipelineThrowsMidway) {
  // A user exception (not an injected bad_alloc) from inside a fused
  // delayed pipeline: the library's construction paths must unwind
  // leak-free under every mode.
  for_each_mode([] {
    std::int64_t baseline = memory::bytes_live();
    bool caught = false;
    try {
      auto input = parray<std::int64_t>::tabulate(
          3'000, [](std::size_t i) { return static_cast<std::int64_t>(i); });
      auto odd = delayed::filter([](std::int64_t x) { return (x & 1) == 1; },
                                 delayed::view(input));
      auto mapped = delayed::map(
          [](std::int64_t x) -> std::int64_t {
            if (x == 2'001) throw test_error{21};
            return x * 3;
          },
          odd);
      auto arr = delayed::to_array(mapped);
      (void)arr;
    } catch (const test_error& e) {
      caught = true;
      EXPECT_EQ(e.id, 21);
    }
    EXPECT_TRUE(caught);
    EXPECT_EQ(memory::bytes_live(), baseline);
    expect_pool_clean();
  });
}

}  // namespace
