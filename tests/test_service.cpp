// Pipeline service: admission control, backpressure, per-job governance,
// circuit breaking, graceful drain, and deterministic decision replay.
//
// Most tests run the service in *manual* mode (dispatchers = 0): nothing
// executes until the test calls run_one(), so the interleaving of
// submissions and executions is scripted and every admit/shed/trip
// decision is reproducible. Dispatcher-mode tests cover the real-thread
// paths: blocking backpressure, guest-worker pipelines, drain
// cancellation of in-flight jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "core/block.hpp"
#include "memory/budget.hpp"
#include "memory/tracking.hpp"
#include "recovery/checkpoint_ops.hpp"
#include "sched/deterministic.hpp"
#include "sched/parallel.hpp"
#include "sched/scheduler.hpp"
#include "service/pipeline_service.hpp"
#include "service/soak_driver.hpp"
#include "differential.hpp"

namespace {

using pbds::overload_reason;
using pbds::overloaded;
using namespace pbds::service;  // NOLINT

// Every suite here configures budget, deadlines, and service tuning
// explicitly; an exported PBDS_* knob (the CI hostile-env stage) must not
// change outcomes — e.g. an ambient global budget turns deadline-resume
// soaks into budget-refusal soaks and no job ever resumes.
class Service : public ::testing::Test {
 protected:
  pbds::testing::scoped_env env_;
};

class ServiceResume : public ::testing::Test {
 protected:
  pbds::testing::scoped_env env_;
};

service_config manual_config(std::size_t cap, backpressure policy) {
  service_config cfg;
  cfg.queue_capacity = cap;
  cfg.policy = policy;
  cfg.dispatchers = 0;
  cfg.default_backoff_us = 1;  // keep retry sleeps out of test wall-clock
  return cfg;
}

TEST_F(Service, CompletesJobsManually) {
  pipeline_service svc(manual_config(8, backpressure::reject));
  std::atomic<int> ran{0};
  std::vector<job_ticket> tickets;
  for (int i = 0; i < 3; ++i)
    tickets.push_back(svc.submit(0, [&] { ran++; }));
  EXPECT_EQ(svc.queue_depth(), 3u);
  EXPECT_TRUE(svc.run_one());
  EXPECT_TRUE(svc.run_one());
  EXPECT_TRUE(svc.run_one());
  EXPECT_FALSE(svc.run_one());
  EXPECT_EQ(ran.load(), 3);
  for (auto& t : tickets) {
    EXPECT_EQ(t.status(), job_status::done);
    EXPECT_NO_THROW(t.get());
  }
  EXPECT_EQ(svc.stats().completed, 3u);
}

TEST_F(Service, RejectPolicyThrowsQueueFullAndStaysBounded) {
  pipeline_service svc(manual_config(2, backpressure::reject));
  auto t1 = svc.submit(0, [] {});
  auto t2 = svc.submit(0, [] {});
  try {
    svc.submit(0, [] {});
    FAIL() << "expected pbds::overloaded";
  } catch (const overloaded& o) {
    EXPECT_EQ(o.reason(), overload_reason::queue_full);
  }
  EXPECT_LE(svc.queue_depth(), svc.queue_capacity());
  EXPECT_EQ(svc.stats().rejected, 1u);
  // Space frees as jobs run; admission resumes.
  EXPECT_TRUE(svc.run_one());
  auto t3 = svc.submit(0, [] {});
  while (svc.run_one()) {
  }
  EXPECT_EQ(t1.status(), job_status::done);
  EXPECT_EQ(t2.status(), job_status::done);
  EXPECT_EQ(t3.status(), job_status::done);
}

TEST_F(Service, ShedOldestEvictsQueuedHead) {
  pipeline_service svc(manual_config(2, backpressure::shed_oldest));
  auto t1 = svc.submit(1, [] {});
  auto t2 = svc.submit(2, [] {});
  auto t3 = svc.submit(3, [] {});  // sheds t1
  EXPECT_EQ(t1.status(), job_status::shed);
  try {
    t1.get();
    FAIL() << "shed ticket must throw";
  } catch (const overloaded& o) {
    EXPECT_EQ(o.reason(), overload_reason::shed);
  }
  EXPECT_LE(svc.queue_depth(), svc.queue_capacity());
  while (svc.run_one()) {
  }
  EXPECT_EQ(t2.status(), job_status::done);
  EXPECT_EQ(t3.status(), job_status::done);
  auto st = svc.stats();
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.completed, 2u);
}

TEST_F(Service, BlockPolicyWithDispatchersCompletesEverything) {
  service_config cfg;
  cfg.queue_capacity = 2;
  cfg.policy = backpressure::block;
  cfg.dispatchers = 2;
  pipeline_service svc(cfg);
  std::atomic<std::uint64_t> sum{0};
  std::vector<job_ticket> tickets;
  for (int i = 0; i < 20; ++i) {
    // Blocks whenever the 2-slot queue is full; dispatchers (enrolled as
    // scheduler guests) drain it running a real parallel pipeline.
    tickets.push_back(svc.submit(0, [&sum] {
      std::atomic<std::uint64_t> local{0};
      pbds::parallel_for(
          0, 2048, [&](std::size_t i) { local += i; }, 64);
      sum += local.load();
    }));
  }
  for (auto& t : tickets) t.get();
  EXPECT_EQ(sum.load(), 20u * (2048u * 2047u / 2));
  svc.drain();
  EXPECT_EQ(svc.stats().completed, 20u);
}

TEST_F(Service, PerJobBudgetScopeAppliesDuringTheJobOnly) {
  pipeline_service svc(manual_config(4, backpressure::reject));
  const std::int64_t before = pbds::memory::budget_limit();
  std::int64_t seen = -1;
  job_limits lim;
  lim.budget_bytes = 1 << 20;
  svc.submit(0, [&] { seen = pbds::memory::budget_limit(); }, lim);
  EXPECT_TRUE(svc.run_one());
  EXPECT_EQ(seen, 1 << 20);
  EXPECT_EQ(pbds::memory::budget_limit(), before);
}

TEST_F(Service, RetriesBudgetExceededThenSucceeds) {
  pipeline_service svc(manual_config(4, backpressure::reject));
  int calls = 0;
  job_limits lim;
  lim.max_retries = 2;
  lim.retry_backoff_us = 1;
  auto t = svc.submit(
      0,
      [&calls] {
        if (++calls < 3) throw pbds::budget_exceeded(64, 0, 32);
      },
      lim);
  EXPECT_TRUE(svc.run_one());  // all attempts happen inside one run_one
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(t.status(), job_status::done);
  EXPECT_EQ(svc.stats().retries, 2u);
}

TEST_F(Service, RetryLadderExhaustsToFailure) {
  pipeline_service svc(manual_config(4, backpressure::reject));
  int calls = 0;
  job_limits lim;
  lim.max_retries = 1;
  lim.retry_backoff_us = 1;
  auto t = svc.submit(
      0, [&calls] { ++calls; throw pbds::budget_exceeded(64, 0, 32); }, lim);
  EXPECT_TRUE(svc.run_one());
  EXPECT_EQ(calls, 2);  // initial attempt + 1 retry
  EXPECT_EQ(t.status(), job_status::failed);
  EXPECT_THROW(t.get(), pbds::budget_exceeded);
}

TEST_F(Service, NonRetryableFailureFailsImmediately) {
  pipeline_service svc(manual_config(4, backpressure::reject));
  int calls = 0;
  job_limits lim;
  lim.max_retries = 5;
  auto t = svc.submit(
      0, [&calls] { ++calls; throw std::runtime_error("logic bug"); }, lim);
  EXPECT_TRUE(svc.run_one());
  EXPECT_EQ(calls, 1);  // runtime_error is not transient; no retries
  EXPECT_EQ(t.status(), job_status::failed);
  EXPECT_THROW(t.get(), std::runtime_error);
}

TEST_F(Service, BreakerTripsWithinKWhileHealthyClassesComplete) {
  auto cfg = manual_config(8, backpressure::reject);
  cfg.breaker_threshold = 3;
  cfg.default_retries = 0;
  pipeline_service svc(cfg);
  constexpr unsigned kPoisoned = 9, kHealthy = 2;
  for (int i = 0; i < 3; ++i) {
    svc.submit(kPoisoned, [] { throw std::runtime_error("poisoned"); });
    EXPECT_TRUE(svc.run_one());
  }
  EXPECT_EQ(svc.breaker_state(kPoisoned), circuit_breaker::state::open);
  EXPECT_EQ(svc.stats().breaker_trips, 1u);
  try {
    svc.submit(kPoisoned, [] {});
    FAIL() << "open breaker must refuse the class";
  } catch (const overloaded& o) {
    EXPECT_EQ(o.reason(), overload_reason::circuit_open);
  }
  // A healthy class is unaffected.
  auto t = svc.submit(kHealthy, [] {});
  EXPECT_TRUE(svc.run_one());
  EXPECT_EQ(t.status(), job_status::done);
}

TEST_F(Service, HalfOpenProbeReclosesBreaker) {
  auto cfg = manual_config(8, backpressure::reject);
  cfg.breaker_threshold = 2;
  cfg.breaker_cooldown = 2;
  cfg.default_retries = 0;
  pipeline_service svc(cfg);
  constexpr unsigned kCls = 4;
  for (int i = 0; i < 2; ++i) {
    svc.submit(kCls, [] { throw std::runtime_error("transient outage"); });
    EXPECT_TRUE(svc.run_one());
  }
  EXPECT_EQ(svc.breaker_state(kCls), circuit_breaker::state::open);
  // Count-based cooldown: the first refused submission burns credit, the
  // second is admitted as the half-open probe.
  EXPECT_THROW(svc.submit(kCls, [] {}), overloaded);
  auto probe = svc.submit(kCls, [] {});  // outage over
  EXPECT_EQ(svc.breaker_state(kCls), circuit_breaker::state::half_open);
  EXPECT_TRUE(svc.run_one());
  EXPECT_EQ(probe.status(), job_status::done);
  EXPECT_EQ(svc.breaker_state(kCls), circuit_breaker::state::closed);
  // And the class is fully admitted again.
  auto after = svc.submit(kCls, [] {});
  EXPECT_TRUE(svc.run_one());
  EXPECT_EQ(after.status(), job_status::done);
  const auto trace = svc.trace();
  bool saw_probe = false, saw_close = false;
  for (const auto& e : trace) {
    saw_probe |= e.ev == event::probe && e.job_class == kCls;
    saw_close |= e.ev == event::close && e.job_class == kCls;
  }
  EXPECT_TRUE(saw_probe);
  EXPECT_TRUE(saw_close);
}

TEST_F(Service, DrainRunsBacklogThenRefusesNewWork) {
  const std::int64_t baseline = pbds::memory::bytes_live();
  {
    pipeline_service svc(manual_config(16, backpressure::reject));
    std::atomic<int> ran{0};
    for (int i = 0; i < 10; ++i)
      svc.submit(0, [&ran] {
        auto a = pbds::parray<std::uint64_t>::tabulate(
            4096, [](std::size_t i) { return i; });
        ran += a.size() != 0;
      });
    svc.drain();  // unbounded: the whole backlog runs
    EXPECT_EQ(ran.load(), 10);
    EXPECT_EQ(svc.stats().completed, 10u);
    EXPECT_EQ(svc.queue_depth(), 0u);
    const auto trace = svc.trace();
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace.back().ev, event::drain_end);
    try {
      svc.submit(0, [] {});
      FAIL() << "post-drain submission must be refused";
    } catch (const overloaded& o) {
      EXPECT_EQ(o.reason(), overload_reason::draining);
    }
    // The refused submission is itself a recorded decision.
    EXPECT_EQ(svc.trace().back().ev, event::reject_draining);
  }
  // Every job's pipeline memory was released: live bytes are back at the
  // pre-service baseline.
  EXPECT_EQ(pbds::memory::bytes_live(), baseline);
}

TEST_F(Service, DrainCancelsStragglersAndPoolStaysReusable) {
  service_config cfg;
  cfg.queue_capacity = 16;
  cfg.policy = backpressure::reject;
  cfg.dispatchers = 2;
  cfg.default_retries = 0;
  pipeline_service svc(cfg);
  // Jobs spin on cancellable parallel work until drain cancels them.
  std::vector<job_ticket> tickets;
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(svc.submit(0, [] {
      while (!pbds::sched::cancellation_requested()) {
        pbds::parallel_for(
            0, 256, [](std::size_t) {}, 64);
        std::this_thread::yield();
      }
    }));
  }
  svc.drain(20);  // nobody finishes in 20ms; everything is cancelled
  auto st = svc.stats();
  EXPECT_EQ(st.cancelled, 8u);
  EXPECT_EQ(st.completed, 0u);
  for (auto& t : tickets) {
    EXPECT_EQ(t.status(), job_status::cancelled);
    try {
      t.get();
      FAIL() << "cancelled ticket must throw";
    } catch (const overloaded& o) {
      EXPECT_EQ(o.reason(), overload_reason::drain_cancelled);
    }
  }
  // The pool survived the cancellations and is quiescent + reusable.
  std::atomic<std::uint64_t> sum{0};
  pbds::parallel_for(
      0, 4096, [&](std::size_t i) { sum += i; }, 64);
  EXPECT_EQ(sum.load(), 4096u * 4095u / 2);
}

TEST_F(Service, BlockedSubmitterRefusedWhenDrainEmptiesTheQueue) {
  // Regression: a block-policy submitter parked on cv_space_ must not be
  // admitted when drain's take_all both frees queue space and stops
  // admissions in one step — the job would be queued with nothing left to
  // run it and its ticket would hang forever.
  pipeline_service svc(manual_config(1, backpressure::block));
  auto queued = svc.submit(0, [] {});  // queue is now full
  std::exception_ptr blocked_err;
  std::thread submitter([&] {
    try {
      svc.submit(0, [] {});
    } catch (...) {
      blocked_err = std::current_exception();
    }
  });
  // submitted is bumped under the mutex before the thread parks, so this
  // poll means the submitter has entered submit (and with a full queue,
  // block policy, and no runners, can only be blocking or refused).
  while (svc.stats().submitted < 2) std::this_thread::yield();
  svc.drain(0);  // zero deadline: cancel the queued job, empty the queue
  submitter.join();
  ASSERT_TRUE(blocked_err) << "blocked submitter was admitted after drain";
  try {
    std::rethrow_exception(blocked_err);
  } catch (const overloaded& o) {
    EXPECT_EQ(o.reason(), overload_reason::draining);
  }
  EXPECT_EQ(queued.status(), job_status::cancelled);
  EXPECT_EQ(svc.queue_depth(), 0u);
  // Exactly the first submission was admitted; the blocked one never was.
  EXPECT_EQ(svc.stats().admitted, 1u);
  EXPECT_EQ(svc.stats().rejected, 1u);
}

TEST_F(Service, TraceIsBoundedButHashCoversEverything) {
  auto run = [](std::size_t trace_cap) {
    auto cfg = manual_config(8, backpressure::reject);
    cfg.trace_capacity = trace_cap;
    pipeline_service svc(cfg);
    for (int i = 0; i < 32; ++i) {
      svc.submit(static_cast<unsigned>(i % 3), [] {});
      svc.run_one();
    }
    svc.drain();
    return std::tuple(svc.trace().size(), svc.trace_dropped(),
                      svc.trace_hash());
  };
  const auto [full_size, full_dropped, full_hash] = run(1 << 16);
  const auto [cap_size, cap_dropped, cap_hash] = run(4);
  EXPECT_EQ(full_dropped, 0u);
  EXPECT_LE(cap_size, 4u);
  EXPECT_EQ(cap_dropped, full_size - cap_size);
  // The replay fingerprint is independent of the retention window.
  EXPECT_EQ(cap_hash, full_hash);
}

TEST_F(Service, DrainCancelledProbeDoesNotStrandBreakerHalfOpen) {
  auto cfg = manual_config(8, backpressure::reject);
  cfg.breaker_threshold = 1;
  cfg.breaker_cooldown = 2;
  cfg.default_retries = 0;
  pipeline_service svc(cfg);
  constexpr unsigned kCls = 6;
  svc.submit(kCls, [] { throw std::runtime_error("poisoned"); });
  EXPECT_TRUE(svc.run_one());
  EXPECT_EQ(svc.breaker_state(kCls), circuit_breaker::state::open);
  EXPECT_THROW(svc.submit(kCls, [] {}), overloaded);  // burns cooldown
  auto probe = svc.submit(kCls, [] {});               // half-open probe
  EXPECT_EQ(svc.breaker_state(kCls), circuit_breaker::state::half_open);
  svc.drain(0);  // cancels the still-queued probe before it ever runs
  EXPECT_EQ(probe.status(), job_status::cancelled);
  // The probe will never report a result; the breaker must re-open (with
  // cooldown credit) rather than stay half_open with no probe in flight.
  EXPECT_EQ(svc.breaker_state(kCls), circuit_breaker::state::open);
}

// Scripted overload scenario: a seeded splitmix64 stream decides each
// step's job class (one class poisoned, one running a pipeline under the
// deterministic simulator with seed-armed stall injection) and how many
// queued jobs execute between submissions. Same seed => same admission,
// shed, retry, trip, and drain decisions => identical trace.
std::vector<trace_entry> scripted_run(std::uint64_t seed) {
  auto cfg = manual_config(4, backpressure::shed_oldest);
  cfg.breaker_threshold = 2;
  cfg.breaker_cooldown = 3;
  cfg.default_retries = 1;
  cfg.seed = seed;
  pipeline_service svc(cfg);
  std::uint64_t state = seed;
  for (int i = 0; i < 48; ++i) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const unsigned cls = static_cast<unsigned>(z & 3);
    try {
      if (cls == 3) {
        svc.submit(3, [] { throw std::runtime_error("poisoned class"); });
      } else if (cls == 2) {
        const std::uint64_t jobseed = z >> 8;
        svc.submit(2, [jobseed] {
          // Replayable stall: the simulator injects stall_detected at a
          // fork count that is a pure function of the job's seed.
          pbds::sched::scoped_deterministic det(jobseed, 4);
          if ((jobseed & 1) != 0) det.scheduler().arm_stall_after(3);
          std::atomic<long> acc{0};
          pbds::parallel_for(
              0, 512, [&](std::size_t j) { acc += static_cast<long>(j); },
              16);
        });
      } else {
        svc.submit(cls, [] {});
      }
    } catch (const overloaded&) {
      // Refusals are part of the scripted trace.
    }
    if ((z & 4) != 0) svc.run_one();
    if ((z & 8) != 0) svc.run_one();
  }
  svc.drain();
  return svc.trace();
}

TEST_F(Service, IdenticalSeedsReplayIdenticalDecisionTraces) {
  const auto a = scripted_run(7);
  const auto b = scripted_run(7);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a == b);
  // The scenario is nontrivial: it must exercise shed/refusal paths, not
  // just a string of admits.
  bool saw_shed_or_reject = false, saw_fail = false;
  for (const auto& e : a) {
    saw_shed_or_reject |=
        e.ev == event::shed || e.ev == event::reject_open;
    saw_fail |= e.ev == event::fail;
  }
  EXPECT_TRUE(saw_shed_or_reject);
  EXPECT_TRUE(saw_fail);
}

TEST_F(Service, TraceHashMatchesAcrossReplays) {
  auto hash_of = [](std::uint64_t seed) {
    auto cfg = manual_config(3, backpressure::shed_oldest);
    cfg.seed = seed;
    pipeline_service svc(cfg);
    for (int i = 0; i < 10; ++i) {
      try {
        svc.submit(static_cast<unsigned>(i % 3), [] {});
      } catch (const overloaded&) {
      }
      if (i % 2 == 0) svc.run_one();
    }
    svc.drain();
    return svc.trace_hash();
  };
  EXPECT_EQ(hash_of(11), hash_of(11));
  EXPECT_EQ(hash_of(12), hash_of(12));
}

TEST_F(Service, OverloadWithConstrainedBudgetTerminatesAndBalances) {
  soak_config cfg;
  cfg.producers = 4;
  cfg.jobs_per_producer = 10;
  cfg.n = 2048;
  cfg.poison_class = 1;               // trips that class's breaker
  cfg.job_budget_bytes = 256 * 1024;  // pipelines feel the budget
  cfg.service.queue_capacity = 4;     // 2x-overloaded vs 2 dispatchers
  cfg.service.policy = backpressure::reject;
  cfg.service.dispatchers = 2;
  cfg.service.breaker_threshold = 3;
  cfg.service.default_retries = 1;
  cfg.service.default_backoff_us = 1;
  auto r = run_soak(cfg);
  // No hang, no abort (we got here), and every submission is accounted
  // for exactly once.
  EXPECT_EQ(r.stats.submitted, 40u);
  EXPECT_EQ(r.stats.completed + r.stats.failed + r.stats.rejected +
                r.stats.shed + r.stats.cancelled,
            r.stats.submitted);
  EXPECT_GT(r.stats.completed, 0u);
}

// --- block-granular checkpoint/resume (PR 7) --------------------------------

// Regression: a retry that hits the breaker-open fast path must fail the
// job WITHOUT burning a checkpoint attempt, counting a retry, or emitting
// a resume event — the job never re-executes, so its ledger budget must
// stay intact for a later readmission. (Previously the retry ladder
// re-ran the attempt and let the class's open breaker reject it only on
// the next submission.)
TEST_F(ServiceResume, BreakerOpenRetryBurnsNoCheckpointAttempt) {
  auto cfg = manual_config(8, backpressure::reject);
  cfg.breaker_threshold = 1;  // one failure of the class opens the breaker
  pipeline_service svc(cfg);
  std::atomic<bool> a_started{false};
  std::atomic<bool> release_a{false};
  auto ck = std::make_shared<pbds::recovery::job_checkpoint>();
  job_limits lim;
  lim.max_retries = 3;
  lim.retry_backoff_us = 1;
  // A: checkpointed, fails retryably — but only after B has tripped the
  // class breaker on another thread.
  auto ta = svc.submit_resumable(
      0,
      [&](pbds::recovery::job_checkpoint&) {
        a_started.store(true);
        while (!release_a.load()) std::this_thread::yield();
        throw pbds::stall_detected("test: transient stall");
      },
      lim, ck);
  auto tb = svc.submit(0, [] { throw std::runtime_error("poisoned"); });
  std::thread t1([&] { EXPECT_TRUE(svc.run_one()); });  // runs A, parks in it
  while (!a_started.load()) std::this_thread::yield();
  EXPECT_TRUE(svc.run_one());  // runs B: fails, trips the class-0 breaker
  EXPECT_EQ(tb.status(), job_status::failed);
  EXPECT_EQ(svc.breaker_state(0), circuit_breaker::state::open);
  release_a.store(true);  // A's stall surfaces; its retry must fail fast
  t1.join();
  EXPECT_EQ(ta.status(), job_status::failed);
  try {
    ta.get();
    FAIL() << "breaker-open retry should surface overloaded";
  } catch (const overloaded& o) {
    EXPECT_EQ(o.reason(), overload_reason::circuit_open);
  }
  // The regression's teeth: exactly the one real execution is accounted.
  EXPECT_EQ(ck->attempts(), 1u);
  auto st = svc.stats();
  EXPECT_EQ(st.retries, 0u);
  EXPECT_EQ(st.resumed, 0u);
  bool saw_reject_open = false, saw_resume = false;
  for (const auto& e : svc.trace()) {
    saw_reject_open |= e.ev == event::reject_open;
    saw_resume |= e.ev == event::resume;
  }
  EXPECT_TRUE(saw_reject_open);
  EXPECT_FALSE(saw_resume);
}

// A checkpointed job whose first attempt stalls resumes on the retry:
// the resume event carries the salvageable-block count, the retry skips
// completed blocks, and the job lands in completed_after_resume.
TEST_F(ServiceResume, RetryResumesFromLedgerAndRecordsProgress) {
  pipeline_service svc(manual_config(4, backpressure::reject));
  auto ck = std::make_shared<pbds::recovery::job_checkpoint>();
  job_limits lim;
  lim.max_retries = 2;
  lim.retry_backoff_us = 1;
  std::uint64_t result = 0;
  auto t = svc.submit_resumable(
      0,
      [&result](pbds::recovery::job_checkpoint& c) {
        pbds::sched::scoped_sequential seq;
        pbds::scoped_block_size bs(256);
        std::optional<pbds::recovery::scoped_boundary_faults> inj;
        if (c.attempts() == 1)
          inj.emplace(pbds::recovery::boundary_fault_kind::stall, 3);
        auto xs = pbds::delayed::tabulate(1600, [](std::size_t i) {
          return static_cast<std::uint64_t>(i);
        });
        result = pbds::recovery::reduce(
            [](std::uint64_t a, std::uint64_t b) { return a + b; },
            std::uint64_t{0}, xs, c.slot<std::uint64_t>(0));
      },
      lim, ck);
  EXPECT_TRUE(svc.run_one());  // both attempts inside this run_one
  EXPECT_EQ(t.status(), job_status::done);
  EXPECT_EQ(result, 1600ull * 1599 / 2);
  EXPECT_EQ(ck->attempts(), 2u);
  auto st = svc.stats();
  EXPECT_EQ(st.resumed, 1u);
  EXPECT_EQ(st.retries, 1u);
  EXPECT_EQ(st.completed_after_resume, 1u);
  EXPECT_GE(st.blocks_salvaged, 3u);
  EXPECT_EQ(st.blocks_redone, 0u);
  // Sequential attempt 1 completed exactly the 3 allowed unit starts; the
  // resume event's aux must say so.
  bool saw = false;
  for (const auto& e : svc.trace()) {
    if (e.ev == event::resume) {
      saw = true;
      EXPECT_EQ(e.aux, 3u);
    }
  }
  EXPECT_TRUE(saw);
  // Every block ran exactly once across both attempts.
  EXPECT_EQ(ck->aggregate().executions, 7u);
}

// Drain cancels an in-flight resumable job, parks its checkpoint with the
// progress it made, and a fresh service readmits and finishes it without
// re-executing a single completed block.
TEST_F(ServiceResume, DrainParksInFlightProgressForReadmission) {
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto rthunk = [&](pbds::recovery::job_checkpoint& ck) {
    pbds::sched::scoped_sequential seq;
    pbds::scoped_block_size bs(256);
    auto xs = pbds::delayed::tabulate(1600, [](std::size_t i) {
      return static_cast<std::uint64_t>(i * 3 + 1);
    });
    const auto& a =
        pbds::recovery::to_array(xs, ck.slot<std::uint64_t>(0));  // 7 blocks
    ASSERT_EQ(a.size(), 1600u);
    started.store(true);
    // Hold the job in flight until the test has driven drain past its
    // deadline (the cancellation is captured into this job's root scope;
    // returning surfaces it).
    while (!release.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  service_config cfg;
  cfg.queue_capacity = 4;
  cfg.dispatchers = 1;
  std::uint64_t parked_hash = 0;
  std::vector<parked_job> parked;
  {
    pipeline_service svc(cfg);
    auto t = svc.submit_resumable(2, rthunk);
    while (!started.load()) std::this_thread::yield();
    std::thread drainer([&] { svc.drain(20); });
    // Give the bounded drain ample time to hit its deadline and sweep the
    // in-flight cancellation before letting the job observe it.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    release.store(true);
    drainer.join();
    EXPECT_EQ(t.status(), job_status::cancelled);
    auto st = svc.stats();
    EXPECT_EQ(st.cancelled, 1u);
    EXPECT_EQ(st.parked, 1u);
    bool saw_park = false;
    for (const auto& e : svc.trace()) {
      if (e.ev == event::park) {
        saw_park = true;
        EXPECT_EQ(e.aux, 7u);  // all 7 blocks were already complete
      }
    }
    EXPECT_TRUE(saw_park);
    parked = svc.take_parked();
    parked_hash = svc.trace_hash();
  }
  ASSERT_EQ(parked.size(), 1u);
  EXPECT_EQ(parked[0].job_class, 2u);
  ASSERT_NE(parked[0].checkpoint, nullptr);
  EXPECT_EQ(parked[0].checkpoint->aggregate().blocks_complete, 7u);
  EXPECT_NE(parked_hash, 0u);
  // Readmit into a fresh (manual) service: salvage everything.
  release.store(true);  // the closure re-checks; let it fall straight through
  pipeline_service svc2(manual_config(4, backpressure::reject));
  auto ck = parked[0].checkpoint;
  auto t2 = svc2.resubmit(std::move(parked[0]));
  EXPECT_TRUE(svc2.run_one());
  EXPECT_EQ(t2.status(), job_status::done);
  auto st2 = svc2.stats();
  EXPECT_EQ(st2.readmitted, 1u);
  EXPECT_EQ(st2.completed_after_resume, 1u);
  EXPECT_GE(st2.blocks_salvaged, 7u);
  bool saw_readmit = false;
  for (const auto& e : svc2.trace()) {
    if (e.ev == event::readmit) {
      saw_readmit = true;
      EXPECT_EQ(e.aux, 7u);
    }
  }
  EXPECT_TRUE(saw_readmit);
  // "No block executed more than once after the successful attempt": the
  // 7 executions all happened in the original pre-drain attempt.
  EXPECT_EQ(ck->aggregate().executions, 7u);
}

// Seed replay with recovery in play: identical scripted runs of
// checkpointed jobs (deterministic per-job stall points) produce identical
// traces and trace hashes, with resume events present — the replay
// fingerprint covers recovery decisions too.
TEST_F(ServiceResume, SeedReplayTraceHashCoversResumeEvents) {
  auto run = [](std::uint64_t seed) {
    auto cfg = manual_config(8, backpressure::reject);
    cfg.seed = seed;
    pipeline_service svc(cfg);
    job_limits lim;
    lim.max_retries = 1;
    lim.retry_backoff_us = 1;
    for (unsigned i = 0; i < 6; ++i) {
      svc.submit_resumable(
          i % 2,
          [i](pbds::recovery::job_checkpoint& c) {
            pbds::sched::scoped_sequential seq;
            pbds::scoped_block_size bs(256);
            std::optional<pbds::recovery::scoped_boundary_faults> inj;
            if (c.attempts() == 1)
              inj.emplace(pbds::recovery::boundary_fault_kind::stall,
                          static_cast<std::int64_t>(i % 5));
            auto xs = pbds::delayed::tabulate(1600, [](std::size_t k) {
              return static_cast<std::uint64_t>(k + 11);
            });
            (void)pbds::recovery::reduce(
                [](std::uint64_t a, std::uint64_t b) { return a + b; },
                std::uint64_t{0}, xs, c.slot<std::uint64_t>(0));
          },
          lim);
      while (svc.run_one()) {
      }
    }
    svc.drain();
    return std::tuple(svc.trace(), svc.trace_hash(), svc.stats().resumed);
  };
  auto [trace_a, hash_a, resumed_a] = run(21);
  auto [trace_b, hash_b, resumed_b] = run(21);
  EXPECT_TRUE(trace_a == trace_b);
  EXPECT_EQ(hash_a, hash_b);
  EXPECT_EQ(resumed_a, resumed_b);
  EXPECT_EQ(resumed_a, 6u);  // every job stalls once, then resumes
  // aux payloads differ per job (i % 5 completed blocks) and are folded
  // into the hash; make sure they actually appeared.
  bool saw_nonzero_aux = false;
  for (const auto& e : trace_a) {
    if (e.ev == event::resume && e.aux > 0) saw_nonzero_aux = true;
  }
  EXPECT_TRUE(saw_nonzero_aux);
}

// The resumable soak converges under constrained budget at 2x capacity
// with resumed jobs actually completing — the CI service-soak assertion,
// in-process.
TEST_F(ServiceResume, ResumableSoakUnderBudgetCompletesResumedJobs) {
  // A 2 ms per-attempt deadline, enforced by a fast watchdog poll,
  // interrupts first attempts mid-materialization; retries resume from
  // the ledger. The per-job budget keeps allocation pressure on without
  // starving the initial storage bind. Salvaged-block counts are
  // timing-dependent under a real pool, so the deterministic salvage
  // assertions live in RetryResumesFromLedgerAndRecordsProgress; here we
  // require that resumed jobs exist and that some of them complete.
  pbds::sched::start_watchdog({/*period_ms=*/2, /*warn_intervals=*/0,
                               /*cancel_intervals=*/0});
  soak_config cfg;
  cfg.producers = 4;
  cfg.jobs_per_producer = 10;
  cfg.n = 1 << 19;
  cfg.resumable = true;
  cfg.job_budget_bytes = 16 * 1024 * 1024;
  cfg.job_deadline_ms = 2;
  cfg.service.queue_capacity = 8;
  cfg.service.policy = backpressure::reject;
  cfg.service.dispatchers = 2;
  cfg.service.default_retries = 3;
  cfg.service.default_backoff_us = 1;
  auto r = run_soak(cfg);
  pbds::sched::stop_watchdog();
  EXPECT_EQ(r.stats.submitted, 40u);
  EXPECT_EQ(r.stats.completed + r.stats.failed + r.stats.rejected +
                r.stats.shed + r.stats.cancelled,
            r.stats.submitted);
  EXPECT_GT(r.stats.completed, 0u);
  // Recovery must have been exercised, not just configured.
  EXPECT_GT(r.stats.resumed, 0u);
  EXPECT_GT(r.stats.completed_after_resume, 0u);
}

TEST_F(Service, ConfigFromEnvParsesStrictly) {
  ::setenv("PBDS_SERVICE_QUEUE_CAP", "17", 1);
  ::setenv("PBDS_SERVICE_BREAKER_K", "5", 1);
  ::setenv("PBDS_SERVICE_RETRIES", "not-a-number", 1);
  auto cfg = service_config::from_env();
  EXPECT_EQ(cfg.queue_capacity, 17u);
  EXPECT_EQ(cfg.breaker_threshold, 5);
  EXPECT_EQ(cfg.default_retries, 2);  // malformed: warn once, keep default
  ::unsetenv("PBDS_SERVICE_QUEUE_CAP");
  ::unsetenv("PBDS_SERVICE_BREAKER_K");
  ::unsetenv("PBDS_SERVICE_RETRIES");
}

}  // namespace
