// Pool longevity soak: thousands of alternating failing and succeeding
// parallel regions on a single pool. A long-lived service reuses one
// scheduler for its whole lifetime, so an exception-heavy workload must
// not leak workers (pool shrink), memory (bytes_live creep), or speed
// (per-round wall-clock growth).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "array/parray.hpp"
#include "memory/tracking.hpp"
#include "sched/deterministic.hpp"
#include "sched/parallel.hpp"
#include "sched/scheduler.hpp"

namespace {

// A region that fails from a round-dependent index. The throw is captured
// by the region's cancel_state, siblings bail at fork boundaries, and the
// root join rethrows here.
void failing_region(int round) {
  pbds::parallel_for(
      0, 2048,
      [&](std::size_t i) {
        if (i == static_cast<std::size_t>((round * 37) % 2048))
          throw std::runtime_error("injected round failure");
      },
      64);
}

// A region that allocates, computes, and frees — so bytes_live drift is
// visible immediately if any round leaks.
std::uint64_t succeeding_region(std::size_t n) {
  auto a = pbds::parray<std::uint64_t>::tabulate(
      n, [](std::size_t i) { return static_cast<std::uint64_t>(i); });
  std::atomic<std::uint64_t> sum{0};
  pbds::parallel_for(
      0, a.size(),
      [&](std::size_t i) { sum.fetch_add(a[i], std::memory_order_relaxed); },
      256);
  return sum.load();
}

void run_rounds(int rounds, std::size_t n) {
  const std::uint64_t want =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  const std::int64_t baseline = pbds::memory::bytes_live();
  for (int r = 0; r < rounds; ++r) {
    if (r % 2 == 0) {
      EXPECT_THROW(failing_region(r), std::runtime_error) << "round " << r;
    } else {
      EXPECT_EQ(succeeding_region(n), want) << "round " << r;
    }
    // Every round returns memory to the baseline: failed regions free
    // their partial allocations during unwinding too.
    ASSERT_EQ(pbds::memory::bytes_live(), baseline) << "round " << r;
  }
}

TEST(PoolLongevity, SequentialPoolSurvivesAlternatingFailures) {
  unsigned before = pbds::sched::num_workers();
  pbds::sched::set_num_workers(1);
  run_rounds(1000, 1 << 12);
  EXPECT_EQ(pbds::sched::num_workers(), 1u);
  pbds::sched::set_num_workers(before);
}

TEST(PoolLongevity, DeterministicPoolSurvivesAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    pbds::sched::scoped_deterministic det(seed, 4);
    run_rounds(64, 1 << 10);
  }
}

// Thousands of kill→repair→run cycles against ONE pool instance: slots
// are recycled in place (fixed deque/stat vectors), so neither worker
// count, nor live bytes, nor wall-clock may drift. Detection here is
// synchronous — the injected death publishes `exited`, so a manual
// detect/repair pass is deterministic and needs no watchdog.
TEST(PoolLongevity, ThousandsOfKillRepairCyclesKeepPoolIntact) {
  namespace sd = pbds::sched::detail;
  unsigned before = pbds::sched::num_workers();
  pbds::sched::set_num_workers(4);
  ASSERT_EQ(pbds::sched::num_workers(), 4u);

  constexpr std::size_t kN = 1 << 10;
  const std::uint64_t want = static_cast<std::uint64_t>(kN) * (kN - 1) / 2;
  const std::int64_t baseline = pbds::memory::bytes_live();

  auto one_cycle = [&](int r) {
    const std::uint64_t kills0 = pbds::sched::worker_kills_delivered();
    pbds::sched::arm_worker_kill(static_cast<std::uint64_t>(r) * 2654435761u,
                                 0);
    // Idle workers pass the heartbeat boundary constantly; the victim
    // dies within microseconds.
    while (pbds::sched::worker_kills_delivered() == kills0)
      std::this_thread::yield();
    // Declare (the exited flag makes this deterministic) and repair.
    unsigned newly = 0;
    for (int spin = 0; spin < 1000000 && newly == 0; ++spin) {
      std::lock_guard<std::mutex> lock(sd::scheduler_slot_mutex());
      newly = sd::global_slot()->detect_and_reclaim_lost(10000);
      if (newly == 0) std::this_thread::yield();
    }
    ASSERT_EQ(newly, 1u) << "round " << r;
    {
      std::lock_guard<std::mutex> lock(sd::scheduler_slot_mutex());
      ASSERT_EQ(sd::global_slot()->repair(), 1u) << "round " << r;
    }
    EXPECT_EQ(succeeding_region(kN), want) << "round " << r;
    ASSERT_EQ(pbds::sched::num_workers(), 4u) << "round " << r;
  };

  auto timed_cycles = [&](int first, int count) {
    auto t0 = std::chrono::steady_clock::now();
    for (int r = first; r < first + count; ++r) one_cycle(r);
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };

  const double first_half = timed_cycles(0, 1000);
  const double second_half = timed_cycles(1000, 1000);

  pbds::sched::quiesce();
  EXPECT_EQ(pbds::memory::bytes_live(), baseline);
  EXPECT_EQ(pbds::sched::num_workers(), 4u);
  {
    std::lock_guard<std::mutex> lock(sd::scheduler_slot_mutex());
    auto& slot = sd::global_slot();
    EXPECT_EQ(slot->workers_lost(), 2000u);
    EXPECT_EQ(slot->repairs(), 2000u);
    EXPECT_EQ(slot->retired_workers(), 0u);  // never degraded, only repaired
    EXPECT_EQ(slot->lost_pending_repair(), 0u);
  }
  // Wall-clock stays stable: cycle 2000 must cost what cycle 1 did (loose
  // 4x + 100ms bound for loaded CI).
  EXPECT_LT(second_half, 4.0 * first_half + 0.1)
      << "first=" << first_half << "s second=" << second_half << "s";

  pbds::sched::disarm_worker_kill();
  pbds::sched::set_num_workers(before);
}

TEST(PoolLongevity, RealPoolKeepsWorkersAndSpeedOverThousandsOfRounds) {
  unsigned before = pbds::sched::num_workers();
  pbds::sched::set_num_workers(4);
  ASSERT_EQ(pbds::sched::num_workers(), 4u);

  auto timed_rounds = [](int rounds) {
    auto t0 = std::chrono::steady_clock::now();
    run_rounds(rounds, 1 << 12);
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  const double first_half = timed_rounds(1000);
  // No worker was lost to the 500 exceptions of the first half.
  EXPECT_EQ(pbds::sched::num_workers(), 4u);
  const double second_half = timed_rounds(1000);
  EXPECT_EQ(pbds::sched::num_workers(), 4u);

  // Wall-clock stays stable: the second thousand rounds may jitter but
  // must not degrade the way a pool leaking workers or state would. The
  // bound is deliberately loose (4x + 100ms) to stay robust on loaded CI.
  EXPECT_LT(second_half, 4.0 * first_half + 0.1)
      << "first=" << first_half << "s second=" << second_half << "s";

  pbds::sched::set_num_workers(before);
}

}  // namespace
