// Telemetry registry + trace timeline (PR 10).
//
// The observability contract, as executable oracles:
//
//   * snapshot() under concurrent mutation is a consistent cut: repeated
//     snapshots taken while worker threads hammer counters and histograms
//     never decrease, histogram totals always equal their bucket sums, and
//     the final quiescent snapshot equals the exact event count (no lost
//     updates across shards) — the suite runs under TSan in CI;
//   * the PBDS_METRICS gate actually elides recording (non-tautological:
//     the same record calls are made in both arms; only the disabled arm
//     leaves the registry untouched);
//   * det-vs-real parity: the fork tree is mode-invariant for a fixed
//     worker count, so the forks/joins counters from a deterministic
//     replay at p workers match a real-pool run at p workers exactly —
//     the counters a dashboard shows for a replayed failure are the
//     counters the production run would have shown;
//   * scoped_env (tests/differential.hpp) re-reads every first-touch env
//     cache, so a hostile ambient environment (CI exports
//     PBDS_BUDGET_BYTES around full ctest runs) is invisible inside it;
//   * flush_trace emits loadable Chrome-trace JSON (displayTimeUnit /
//     pid / tid / ts / ph fields), including the deterministic
//     scheduler's decision instants for a replayed (seed, p) schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/delayed.hpp"
#include "differential.hpp"
#include "memory/budget.hpp"
#include "sched/exec_policy.hpp"
#include "sched/parallel.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

namespace telemetry = pbds::telemetry;
namespace delayed = pbds::delayed;
namespace sched = pbds::sched;
using telemetry::counter;
using telemetry::hist;

// Isolate every test from ambient PBDS_* (CI's hostile-env stage) and from
// the trace/metrics state other suites may have cached.
class Telemetry : public ::testing::Test {
 protected:
  pbds::testing::scoped_env env_;
};

// --- concurrent snapshot consistency ----------------------------------------

TEST_F(Telemetry, SnapshotIsConsistentUnderConcurrentMutation) {
  telemetry::scoped_metrics on(true);
  telemetry::reset();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> hammers;
  hammers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    hammers.emplace_back([&go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        telemetry::count(counter::forks);
        telemetry::observe(hist::block_bytes, (i << (t % 8)) + 1);
        telemetry::count_class(telemetry::class_counter::admitted,
                               static_cast<unsigned>(t));
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Snapshot continuously while the hammers run: every cut must be
  // monotone in every cell we watch, and internally consistent.
  std::uint64_t last_forks = 0;
  std::uint64_t last_hist_total = 0;
  for (int s = 0; s < 200; ++s) {
    auto snap = telemetry::snapshot();
    std::uint64_t forks = snap.get(counter::forks);
    ASSERT_GE(forks, last_forks) << "counter sum decreased under mutation";
    last_forks = forks;
    const auto& h = snap.get(hist::block_bytes);
    std::uint64_t bucket_sum = 0;
    for (auto b : h.buckets) bucket_sum += b;
    ASSERT_EQ(h.total, bucket_sum) << "histogram total != bucket sum";
    ASSERT_GE(h.total, last_hist_total) << "histogram shrank under mutation";
    last_hist_total = h.total;
  }
  for (auto& t : hammers) t.join();
  // Quiescent: exact totals — no shard updates were lost.
  auto fin = telemetry::snapshot();
  EXPECT_EQ(fin.get(counter::forks), kThreads * kPerThread);
  EXPECT_EQ(fin.get(hist::block_bytes).total, kThreads * kPerThread);
  std::uint64_t admitted = 0;
  for (unsigned cls = 0; cls < telemetry::kMaxClasses; ++cls)
    admitted += fin.get(telemetry::class_counter::admitted, cls);
  EXPECT_EQ(admitted, kThreads * kPerThread);
}

TEST_F(Telemetry, HistogramQuantilesBoundObservations) {
  telemetry::scoped_metrics on(true);
  telemetry::reset();
  // 99 small observations and one huge one: p50 must stay in the small
  // range, p99 must reach the bucket holding the outlier.
  for (int i = 0; i < 99; ++i) telemetry::observe(hist::block_bytes, 100);
  telemetry::observe(hist::block_bytes, std::uint64_t{1} << 30);
  auto snap = telemetry::snapshot();
  const auto& h = snap.get(hist::block_bytes);
  EXPECT_EQ(h.total, 100u);
  EXPECT_GE(h.p50(), 100u);          // upper bound of 100's bucket
  EXPECT_LE(h.p50(), 256u);          // ...which is 2^ceil(log2(100)) = 128
  EXPECT_GE(h.p99(), std::uint64_t{1} << 30);
}

// --- the gate (non-tautological) ---------------------------------------------

TEST_F(Telemetry, DisabledGateElidesRecording) {
  telemetry::reset();
  // Arm A: gate off, record anyway. The registry must not move.
  {
    telemetry::scoped_metrics off(false);
    ASSERT_FALSE(telemetry::metrics_enabled());
    telemetry::count(counter::repairs, 7);
    telemetry::observe(hist::block_bytes, 4096);
    telemetry::observe_peak_bytes(1 << 20);
  }
  auto off_snap = telemetry::snapshot();
  EXPECT_EQ(off_snap.get(counter::repairs), 0u);
  EXPECT_EQ(off_snap.get(hist::block_bytes).total, 0u);
  EXPECT_EQ(off_snap.bytes_live_peak, 0);
  // Arm B: same calls with the gate on. The registry must move — proving
  // arm A's zeros came from elision, not from a dead record path.
  {
    telemetry::scoped_metrics on(true);
    ASSERT_TRUE(telemetry::metrics_enabled());
    telemetry::count(counter::repairs, 7);
    telemetry::observe(hist::block_bytes, 4096);
    telemetry::observe_peak_bytes(1 << 20);
  }
  auto on_snap = telemetry::snapshot();
  EXPECT_EQ(on_snap.get(counter::repairs), 7u);
  EXPECT_EQ(on_snap.get(hist::block_bytes).total, 1u);
  EXPECT_EQ(on_snap.bytes_live_peak, 1 << 20);
}

TEST_F(Telemetry, EnvGateIsReloadableAndScopedEnvClearsIt) {
  // PBDS_METRICS=0 observed after a reload...
  ::setenv("PBDS_METRICS", "0", 1);
  telemetry::reload_metrics_from_env();
  EXPECT_FALSE(telemetry::metrics_enabled());
  {
    // ...and scoped_env scrubs it: inside, the default (on) applies.
    pbds::testing::scoped_env inner;
    EXPECT_TRUE(telemetry::metrics_enabled());
  }
  // Restored on scope exit.
  EXPECT_FALSE(telemetry::metrics_enabled());
  ::unsetenv("PBDS_METRICS");
  telemetry::reload_metrics_from_env();
  EXPECT_TRUE(telemetry::metrics_enabled());
}

TEST_F(Telemetry, ScopedEnvReloadsBudgetCache) {
  // The headline PR-10 bug class: a first-touch env cache that ignores
  // what a test scope set. The budget limit must track setenv + reload,
  // and scoped_env must both clear and restore it.
  ::setenv("PBDS_BUDGET_BYTES", "16777216", 1);
  pbds::memory::reload_budget_limit_from_env();
  EXPECT_EQ(pbds::memory::budget_limit(), 16777216);
  {
    pbds::testing::scoped_env inner;
    EXPECT_FALSE(pbds::memory::budget_active())
        << "scoped_env failed to clear the ambient budget";
  }
  EXPECT_EQ(pbds::memory::budget_limit(), 16777216)
      << "scoped_env failed to restore the ambient budget";
  ::unsetenv("PBDS_BUDGET_BYTES");
  pbds::memory::reload_budget_limit_from_env();
  EXPECT_FALSE(pbds::memory::budget_active());
}

// --- det-vs-real parity ------------------------------------------------------

TEST_F(Telemetry, ForkJoinCountersMatchBetweenDetReplayAndRealPool) {
  telemetry::scoped_metrics on(true);
  constexpr std::size_t kN = 1 << 16;
  auto kernel = [] {
    auto xs = delayed::map(
        [](std::size_t i) { return static_cast<std::uint64_t>(i) * 31 + 7; },
        delayed::iota(kN));
    return delayed::reduce(
        [](std::uint64_t a, std::uint64_t b) { return a + b; },
        std::uint64_t{0}, xs);
  };
  // Warm the real pool first so its worker count is settled, then replay
  // deterministically at exactly that width: the fork tree depends only on
  // (n, grain, p), so the two runs must fork and join identically.
  std::uint64_t real_result = kernel();
  unsigned p = sched::num_workers();
  auto before_det = telemetry::snapshot();
  std::uint64_t det_result;
  {
    sched::scoped_deterministic g(0x5eed, p);
    det_result = kernel();
  }
  auto after_det = telemetry::snapshot();
  auto before_real = telemetry::snapshot();
  std::uint64_t real_again = kernel();
  auto after_real = telemetry::snapshot();
  EXPECT_EQ(det_result, real_result);
  EXPECT_EQ(real_again, real_result);
  std::uint64_t det_forks =
      after_det.get(counter::forks) - before_det.get(counter::forks);
  std::uint64_t det_joins =
      after_det.get(counter::joins) - before_det.get(counter::joins);
  std::uint64_t real_forks =
      after_real.get(counter::forks) - before_real.get(counter::forks);
  std::uint64_t real_joins =
      after_real.get(counter::joins) - before_real.get(counter::joins);
  EXPECT_GT(det_forks, 0u) << "parity test is vacuous: nothing forked";
  EXPECT_EQ(det_forks, real_forks)
      << "deterministic replay at p=" << p
      << " forked differently from the real pool";
  EXPECT_EQ(det_joins, real_joins)
      << "deterministic replay at p=" << p
      << " joined differently from the real pool";
  EXPECT_EQ(det_forks, det_joins) << "unbalanced fork/join accounting";
}

// --- trace timeline ----------------------------------------------------------

TEST_F(Telemetry, FlushedTraceIsChromeTraceJson) {
  std::string path =
      ::testing::TempDir() + "pbds_trace_shape.json";
  {
    telemetry::scoped_trace on(true);
    telemetry::trace_instant(telemetry::trace_kind::block, "quarantine", 3);
    {
      telemetry::trace_span span(telemetry::trace_kind::job, "job", 42);
    }
    // A deterministic replay's decision stream lands in the same timeline:
    // the (seed, p) that reproduces a failure also produces its trace.
    sched::scoped_deterministic g(0x5eed, 4);
    pbds::parallel_for(0, 1024, [](std::size_t) {});
    ASSERT_GE(telemetry::flush_trace(path.c_str()), std::size_t{3});
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file was not written: " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string json = buf.str();
  // Shape check, mirroring the CI jq gate: the four mandatory event keys
  // plus the time-unit header, and both phase kinds we emit.
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"quarantine\""), std::string::npos);
  // Det-scheduler decisions are named after their event kinds.
  EXPECT_NE(json.find("fork_"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  while (!json.empty() && (json.back() == '\n' || json.back() == ' '))
    json.pop_back();
  EXPECT_EQ(json.back(), '}');
  std::remove(path.c_str());
}

TEST_F(Telemetry, TraceRingWrapCountsDrops) {
  // Ring capacity binds at a thread's FIRST recorded event, so record from
  // a fresh thread — the main thread's ring was already sized at the
  // default cap by earlier tests.
  ::setenv("PBDS_TRACE_CAP", "16", 1);
  telemetry::reload_trace_from_env();
  std::uint64_t before = telemetry::trace_dropped();
  {
    telemetry::scoped_trace on(true);
    std::thread t([] {
      for (int i = 0; i < 256; ++i)
        telemetry::trace_instant(telemetry::trace_kind::region, "spin", i);
    });
    t.join();
  }
  EXPECT_GE(telemetry::trace_dropped() - before, std::uint64_t{240})
      << "a 16-slot ring absorbed 256 events without dropping";
  ::unsetenv("PBDS_TRACE_CAP");
  telemetry::reload_trace_from_env();
}

}  // namespace
