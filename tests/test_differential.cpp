// Differential oracle suite (see differential.hpp): every benchmark kernel
// and representative fusion pipelines, run under array / rad / delay
// backends × {sequential, deterministic(seed sweep), real scheduler}, with
// element-exact agreement, the paper's space invariant, and seeded replay.
//
// Custom main: `--seed N` (or PBDS_SEED=N) collapses every seed sweep to
// that one seed, for replaying a CI failure locally.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "benchmarks/bestcut.hpp"
#include "benchmarks/bignum_add.hpp"
#include "benchmarks/grep.hpp"
#include "benchmarks/integrate.hpp"
#include "benchmarks/linearrec.hpp"
#include "benchmarks/linefit.hpp"
#include "benchmarks/mcss.hpp"
#include "benchmarks/policies.hpp"
#include "benchmarks/primes.hpp"
#include "benchmarks/quickhull.hpp"
#include "benchmarks/spmv.hpp"
#include "benchmarks/tokens.hpp"
#include "benchmarks/wc.hpp"
#include "differential.hpp"
#include "memory/counting_allocator.hpp"
#include "text/text.hpp"

namespace {

using namespace pbds;           // NOLINT
using namespace pbds::testing;  // NOLINT

constexpr std::size_t kSeedSweep = 16;    // agreement sweep (>= 16 required)
constexpr std::size_t kReplaySeeds = 4;   // replay runs everything twice

// --- case registry ----------------------------------------------------------

std::vector<diff_case> build_cases() {
  std::vector<diff_case> cases;

  // The twelve evaluation kernels at small scale. Inputs are regenerated
  // inside each run from fixed seeds (generators are index-pure, so the
  // inputs are identical regardless of schedule).
  cases.push_back(make_diff_case("kernel/mcss", []<typename P>() {
    digest d;
    put(d, static_cast<double>(bench::mcss<P>(bench::mcss_input(4000))));
    return d;
  }));
  cases.push_back(make_diff_case("kernel/primes", []<typename P>() {
    digest d;
    put_all(d, bench::primes<P>(3000));
    return d;
  }));
  cases.push_back(make_diff_case("kernel/integrate", []<typename P>() {
    digest d;
    put(d, bench::integrate<P>(20'000));
    return d;
  }));
  cases.push_back(make_diff_case("kernel/linefit", []<typename P>() {
    auto got = bench::linefit<P>(bench::linefit_input(4000));
    digest d;
    put(d, got.slope);
    put(d, got.intercept);
    return d;
  }));
  cases.push_back(make_diff_case("kernel/linearrec", []<typename P>() {
    digest d;
    put_all(d, bench::linearrec<P>(bench::linearrec_input(3000)));
    return d;
  }));
  cases.push_back(make_diff_case("kernel/tokens", []<typename P>() {
    auto got = bench::tokens<P>(text::random_words(4000, 7.0));
    digest d;
    put(d, static_cast<double>(got.count));
    put(d, static_cast<double>(got.total_len));
    put(d, static_cast<double>(got.hash % (1ull << 52)));
    return d;
  }));
  cases.push_back(make_diff_case("kernel/grep", []<typename P>() {
    auto got = bench::grep<P>(text::random_lines(5000), "ab");
    digest d;
    put(d, static_cast<double>(got.matching_lines));
    put(d, static_cast<double>(got.matching_bytes));
    put(d, static_cast<double>(got.hash % (1ull << 52)));
    return d;
  }));
  cases.push_back(make_diff_case("kernel/wc", []<typename P>() {
    auto got = bench::wc<P>(text::random_lines(5000));
    digest d;
    put(d, static_cast<double>(got.lines));
    put(d, static_cast<double>(got.words));
    put(d, static_cast<double>(got.bytes));
    return d;
  }));
  cases.push_back(make_diff_case("kernel/bestcut", []<typename P>() {
    digest d;
    put(d, bench::bestcut<P>(bench::bestcut_input(2000)));
    return d;
  }));
  cases.push_back(make_diff_case("kernel/spmv", []<typename P>() {
    auto y = bench::spmv<P>(bench::spmv_input(500, 8), bench::spmv_vector(500));
    digest d;
    put_all(d, y);
    return d;
  }));
  cases.push_back(make_diff_case("kernel/quickhull", []<typename P>() {
    digest d;
    put(d, static_cast<double>(
               bench::quickhull<P>(geom::points_in_disk(1500))));
    return d;
  }));
  cases.push_back(make_diff_case("kernel/bignum_add", []<typename P>() {
    auto a = bignum::random_bignum(2000, 1);
    auto b = bignum::random_bignum(2000, 2);
    auto got = bench::bignum_add<P>(a, b);
    digest d;
    put_all(d, got.digits);
    put(d, static_cast<double>(got.carry_out));
    return d;
  }));

  // Fusion-pipeline compositions: the map/scan/filter/flatten shapes the
  // paper fuses, exercised end to end through the policy interface.
  cases.push_back(make_diff_case("pipe/map_scan_map_reduce", []<typename P>() {
    auto input = parray<std::int64_t>::tabulate(
        6000, [](std::size_t i) { return static_cast<std::int64_t>(i % 101) - 50; });
    auto xs = P::map([](std::int64_t x) { return x * x + 1; }, P::view(input));
    auto [pre, tot] = P::scan(
        [](std::int64_t a, std::int64_t b) { return a + b; }, std::int64_t{0},
        xs);
    auto halved = P::map([](std::int64_t x) { return x / 2; }, pre);
    std::int64_t best = P::reduce(
        [](std::int64_t a, std::int64_t b) { return a > b ? a : b; },
        std::int64_t{0}, halved);
    digest d;
    put(d, static_cast<double>(best));
    put(d, static_cast<double>(tot));
    return d;
  }));
  cases.push_back(make_diff_case("pipe/filter_scan", []<typename P>() {
    auto input = parray<std::int64_t>::tabulate(
        5000, [](std::size_t i) { return static_cast<std::int64_t>((i * 7) % 256); });
    auto evens =
        P::filter([](std::int64_t x) { return (x & 1) == 0; }, P::view(input));
    auto [pre, tot] = P::scan(
        [](std::int64_t a, std::int64_t b) { return a + b; }, std::int64_t{0},
        evens);
    auto arr = P::to_array(std::move(pre));
    digest d;
    put_all(d, arr);
    put(d, static_cast<double>(tot));
    return d;
  }));
  cases.push_back(make_diff_case("pipe/flatten_map_reduce", []<typename P>() {
    using buf = memory::tracked_vector<std::int64_t>;
    auto nested = parray<buf>::tabulate(150, [](std::size_t i) {
      buf v;
      for (std::size_t j = 0; j < i % 13; ++j)
        v.push_back(static_cast<std::int64_t>(i * 31 + j));
      return v;
    });
    auto flat = P::flatten(nested);
    auto mapped =
        P::map([](std::int64_t x) { return 3 * x + 1; }, flat);
    std::int64_t sum = P::reduce(
        [](std::int64_t a, std::int64_t b) { return a + b; }, std::int64_t{0},
        mapped);
    digest d;
    put(d, static_cast<double>(sum));
    put(d, static_cast<double>(P::length(flat)));
    return d;
  }));
  cases.push_back(make_diff_case("pipe/zip_filter_op", []<typename P>() {
    auto a = parray<std::int64_t>::tabulate(
        4000, [](std::size_t i) { return static_cast<std::int64_t>((i * 13) % 97); });
    auto idx =
        P::tabulate(4000, [](std::size_t i) { return static_cast<std::int64_t>(i); });
    auto z = P::zip(P::view(a), idx);
    auto picked = P::filter_op(
        [](const std::pair<std::int64_t, std::int64_t>& p)
            -> std::optional<std::int64_t> {
          if ((p.first + p.second) % 3 != 0) return std::nullopt;
          return p.first - p.second;
        },
        z);
    auto arr = P::to_array(std::move(picked));
    digest d;
    put_all(d, arr);
    return d;
  }));

  return cases;
}

const std::vector<diff_case>& cases() {
  static const std::vector<diff_case> c = build_cases();
  return c;
}

std::string case_test_name(int i) {
  std::string s = cases()[static_cast<std::size_t>(i)].name;
  for (char& ch : s)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return s;
}

// --- tests ------------------------------------------------------------------

class DifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  const diff_case& c() { return cases()[static_cast<std::size_t>(GetParam())]; }
};

TEST_P(DifferentialTest, BackendsAgreeUnderAllSchedules) {
  expect_backends_agree(c(), sweep_seeds(kSeedSweep));
}

TEST_P(DifferentialTest, DelayedPeakAtMostArrayPeak) {
  expect_space_invariant(c());
}

TEST_P(DifferentialTest, SeededReplayIsDeterministic) {
  expect_seed_replay(c(), sweep_seeds(kReplaySeeds));
}

TEST_P(DifferentialTest, BulkFastPathMatchesGeneric) {
  expect_bulk_matches_generic(c(), sweep_seeds(kSeedSweep));
}

INSTANTIATE_TEST_SUITE_P(AllCases, DifferentialTest,
                         ::testing::Range(0, static_cast<int>(cases().size())),
                         [](const auto& info) {
                           return case_test_name(info.param);
                         });

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // gtest strips its own flags; anything left is ours.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--seed" && i + 1 < argc) {
      pbds::testing::replay_seed() = std::strtoull(argv[i + 1], nullptr, 0);
      ++i;
    }
  }
  return RUN_ALL_TESTS();
}
