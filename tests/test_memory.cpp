// Unit tests for the allocation accounting (pbds::memory) — the substrate
// behind every "space" number in the evaluation.
#include <gtest/gtest.h>

#include <cstdint>

#include "array/parray.hpp"
#include "memory/counting_allocator.hpp"
#include "memory/tracking.hpp"

namespace {

namespace mem = pbds::memory;

TEST(Memory, AllocFreeBalance) {
  std::int64_t live0 = mem::bytes_live();
  mem::note_alloc(1234);
  EXPECT_EQ(mem::bytes_live(), live0 + 1234);
  mem::note_free(1234);
  EXPECT_EQ(mem::bytes_live(), live0);
}

TEST(Memory, PeakTracksHighWaterMark) {
  mem::reset_peak();
  std::int64_t base = mem::bytes_peak();
  mem::note_alloc(1000);
  mem::note_alloc(2000);
  mem::note_free(1000);
  mem::note_alloc(500);
  EXPECT_EQ(mem::bytes_peak(), base + 3000);
  mem::note_free(2000);
  mem::note_free(500);
  EXPECT_EQ(mem::bytes_peak(), base + 3000);  // peak is sticky
  mem::reset_peak();
  EXPECT_EQ(mem::bytes_peak(), mem::bytes_live());
}

TEST(Memory, TotalIsCumulative) {
  std::int64_t t0 = mem::bytes_total();
  mem::note_alloc(100);
  mem::note_free(100);
  mem::note_alloc(100);
  mem::note_free(100);
  EXPECT_EQ(mem::bytes_total(), t0 + 200);
}

TEST(Memory, SpaceMeterMeasuresRegion) {
  // Allocate before the meter: counts toward peak (max residency includes
  // pre-existing buffers) but not toward allocated_bytes.
  auto pre = pbds::parray<char>::filled(1 << 10, 'x');
  mem::space_meter meter;
  {
    auto tmp = pbds::parray<char>::filled(1 << 14, 'y');
    EXPECT_GE(meter.peak_delta_bytes(), 1 << 14);
  }
  EXPECT_GE(meter.peak_bytes(), (1 << 10) + (1 << 14));
  EXPECT_EQ(meter.allocated_bytes(), 1 << 14);
  EXPECT_EQ(meter.alloc_count(), 1);
}

TEST(Memory, SpaceMeterResetsPeak) {
  {
    auto big = pbds::parray<char>::filled(1 << 16, 'z');
  }  // peak now includes a freed 64 KiB buffer
  mem::space_meter meter;  // resets the high-water mark
  EXPECT_EQ(meter.peak_bytes(), mem::bytes_live());
}

TEST(Memory, CountingAllocatorRoutesThroughCounters) {
  std::int64_t live0 = mem::bytes_live();
  {
    mem::tracked_vector<std::int64_t> v;
    for (int i = 0; i < 1000; ++i) v.push_back(i);
    EXPECT_GE(mem::bytes_live() - live0,
              static_cast<std::int64_t>(1000 * sizeof(std::int64_t)));
  }
  EXPECT_EQ(mem::bytes_live(), live0);
}

TEST(Memory, CountingAllocatorEquality) {
  mem::counting_allocator<int> a;
  mem::counting_allocator<double> b;
  EXPECT_TRUE(a == mem::counting_allocator<int>(b));
}

}  // namespace
