// Unit tests for the graph substrate (CSR building, generators, BFS
// checker — including that the checker actually rejects bad trees).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "graph/graph.hpp"

namespace {

namespace g = pbds::graph;
using g::vertex;
using pbds::parray;

g::csr_graph tiny_graph() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 4; vertex 5 isolated.
  auto edges = parray<std::pair<vertex, vertex>>::tabulate(
      5, [](std::size_t e) {
        constexpr std::pair<vertex, vertex> E[] = {
            {0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}};
        return E[e];
      });
  return g::from_edges(6, edges);
}

TEST(Graph, FromEdgesPreservesEdgeMultiset) {
  auto gr = tiny_graph();
  EXPECT_EQ(gr.num_vertices(), 6u);
  EXPECT_EQ(gr.num_edges(), 5u);
  EXPECT_EQ(gr.degree(0), 2u);
  EXPECT_EQ(gr.degree(3), 1u);
  EXPECT_EQ(gr.degree(5), 0u);
  std::set<vertex> n0(gr.neighbors(0), gr.neighbors(0) + gr.degree(0));
  EXPECT_EQ(n0, (std::set<vertex>{1, 2}));
}

TEST(Graph, FromEdgesWithDuplicatesAndSelfLoops) {
  auto edges = parray<std::pair<vertex, vertex>>::tabulate(
      4, [](std::size_t e) {
        constexpr std::pair<vertex, vertex> E[] = {
            {1, 1}, {1, 2}, {1, 2}, {0, 1}};
        return E[e];
      });
  auto gr = g::from_edges(3, edges);
  EXPECT_EQ(gr.degree(1), 3u);  // self-loop + duplicate both kept
  EXPECT_EQ(gr.num_edges(), 4u);
}

TEST(Graph, ReferenceDistances) {
  auto gr = tiny_graph();
  auto dist = g::reference_distances(gr, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 1);
  EXPECT_EQ(dist[3], 2);
  EXPECT_EQ(dist[4], 3);
  EXPECT_EQ(dist[5], -1);  // unreachable
}

TEST(Graph, CheckerAcceptsValidTree) {
  auto gr = tiny_graph();
  std::vector<vertex> parent = {0, 0, 0, 1, 3, g::kNoVertex};
  EXPECT_TRUE(g::check_bfs_tree(gr, 0, parent));
  std::vector<vertex> parent2 = {0, 0, 0, 2, 3, g::kNoVertex};  // 3 via 2
  EXPECT_TRUE(g::check_bfs_tree(gr, 0, parent2));
}

TEST(Graph, CheckerRejectsWrongDepth) {
  auto gr = tiny_graph();
  // Parent of 4 claims to be 0, but there is no edge 0->4.
  std::vector<vertex> bad = {0, 0, 0, 1, 0, g::kNoVertex};
  EXPECT_FALSE(g::check_bfs_tree(gr, 0, bad));
}

TEST(Graph, CheckerRejectsMissingVertex) {
  auto gr = tiny_graph();
  std::vector<vertex> bad = {0, 0, 0, 1, g::kNoVertex, g::kNoVertex};
  EXPECT_FALSE(g::check_bfs_tree(gr, 0, bad));  // 4 reachable but unvisited
}

TEST(Graph, CheckerRejectsExtraVertex) {
  auto gr = tiny_graph();
  std::vector<vertex> bad = {0, 0, 0, 1, 3, 3};  // 5 is unreachable
  EXPECT_FALSE(g::check_bfs_tree(gr, 0, bad));
}

TEST(Graph, CheckerRejectsNonEdgeParent) {
  auto gr = tiny_graph();
  std::vector<vertex> bad = {0, 0, 0, 0, 3, g::kNoVertex};  // no edge 0->3
  EXPECT_FALSE(g::check_bfs_tree(gr, 0, bad));
}

TEST(Graph, RmatShapeAndDeterminism) {
  auto g1 = g::rmat(10, 10'000, 7);
  auto g2 = g::rmat(10, 10'000, 7);
  EXPECT_EQ(g1.num_vertices(), 1024u);
  EXPECT_EQ(g1.num_edges(), 10'000u);
  EXPECT_EQ(g2.num_edges(), 10'000u);
  for (vertex v = 0; v < 1024; ++v)
    ASSERT_EQ(g1.degree(v), g2.degree(v)) << v;
}

TEST(Graph, RmatIsSkewed) {
  // Power-law-ish: the top 1% of vertices should hold far more than 1% of
  // the out-edges.
  auto gr = g::rmat(12, 100'000, 3);
  std::vector<std::size_t> deg(gr.num_vertices());
  for (vertex v = 0; v < gr.num_vertices(); ++v) deg[v] = gr.degree(v);
  std::sort(deg.rbegin(), deg.rend());
  std::size_t top = 0;
  for (std::size_t i = 0; i < gr.num_vertices() / 100; ++i) top += deg[i];
  EXPECT_GT(top, gr.num_edges() / 5);  // >20% of edges in top 1%
}

TEST(Graph, UniformGraphDegreesAreBalanced) {
  auto gr = g::uniform(1000, 100'000, 5);
  std::size_t dmax = 0;
  for (vertex v = 0; v < 1000; ++v) dmax = std::max(dmax, gr.degree(v));
  // mean degree 100; a uniform max should stay well under 3x the mean.
  EXPECT_LT(dmax, 300u);
}

}  // namespace
