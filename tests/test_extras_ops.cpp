// Tests for the extended delayed operations (flat_map, unzip, pack_index,
// map_maybe, find_if, index_of, equal, tokens, histogram) and the C++
// range adapter.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "core/delayed_extras.hpp"
#include "core/seq_range.hpp"

namespace {

namespace d = pbds::delayed;
using pbds::parray;
using pbds::scoped_block_size;

template <typename Seq>
auto collect(const Seq& s) {
  auto arr = d::to_array(s);
  return std::vector<typename decltype(arr)::value_type>(arr.begin(),
                                                         arr.end());
}

parray<char> from_string(const std::string& s) {
  return parray<char>::tabulate(s.size(),
                                [&](std::size_t i) { return s[i]; });
}

TEST(ExtrasOps, FlatMapConcatenates) {
  scoped_block_size guard(3);
  auto out = d::flat_map(
      [](std::size_t i) {
        return d::tabulate(i, [i](std::size_t j) { return 10 * i + j; });
      },
      d::iota(4));
  EXPECT_EQ(collect(out), (std::vector<std::size_t>{10, 20, 21, 30, 31, 32}));
}

TEST(ExtrasOps, UnzipProjectsBothSides) {
  auto pairs = d::map(
      [](std::size_t i) {
        return std::pair<int, double>(static_cast<int>(i), i * 0.5);
      },
      d::iota(5));
  auto [xs, ys] = d::unzip(pairs);
  EXPECT_EQ(collect(xs), (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(collect(ys), (std::vector<double>{0.0, 0.5, 1.0, 1.5, 2.0}));
}

TEST(ExtrasOps, PackIndex) {
  scoped_block_size guard(4);
  auto idx = d::pack_index(20, [](std::size_t i) { return i % 6 == 1; });
  EXPECT_EQ(collect(idx), (std::vector<std::size_t>{1, 7, 13, 19}));
}

TEST(ExtrasOps, MapMaybeAliasesFilterOp) {
  auto out = d::map_maybe(
      [](std::size_t i) -> std::optional<int> {
        if (i % 2 == 0) return static_cast<int>(i * 100);
        return std::nullopt;
      },
      d::iota(5));
  EXPECT_EQ(collect(out), (std::vector<int>{0, 200, 400}));
}

TEST(ExtrasOps, FindIfLocatesFirstMatch) {
  scoped_block_size guard(4);
  auto t = d::map([](std::size_t i) { return (int)(i * 3); }, d::iota(100));
  EXPECT_EQ(d::find_if([](int x) { return x > 50; }, t), 17u);  // 17*3=51
  EXPECT_EQ(d::find_if([](int x) { return x < 0; }, t), std::nullopt);
  EXPECT_EQ(d::find_if([](int x) { return x == 0; }, t), 0u);
}

TEST(ExtrasOps, FindIfDoesNotScanPastMatchBlock) {
  scoped_block_size guard(8);
  std::atomic<int> calls{0};
  auto t = d::tabulate(1000, [&calls](std::size_t i) {
    calls++;
    return static_cast<int>(i);
  });
  auto idx = d::find_if([](int x) { return x == 5; }, t);
  EXPECT_EQ(idx, 5u);
  EXPECT_LE(calls.load(), 8);  // stopped inside the first block
}

TEST(ExtrasOps, IndexOf) {
  auto t = d::map([](std::size_t i) { return i * i; }, d::iota(50));
  EXPECT_EQ(d::index_of(t, std::size_t{49}), 7u);
  EXPECT_EQ(d::index_of(t, std::size_t{50}), std::nullopt);
}

TEST(ExtrasOps, EqualComparesElementwise) {
  scoped_block_size guard(3);
  auto a = d::iota(10);
  auto b = d::map([](std::size_t i) { return i; }, d::iota(10));
  auto c = d::map([](std::size_t i) { return i == 9 ? 0 : i; }, d::iota(10));
  EXPECT_TRUE(d::equal(a, b));
  EXPECT_FALSE(d::equal(a, c));
  EXPECT_FALSE(d::equal(a, d::iota(9)));  // length mismatch
}

TEST(ExtrasOps, TokensLibraryOp) {
  scoped_block_size guard(4);
  auto text = from_string("  hello brave  new world ");
  auto toks = collect(d::tokens(text));
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], (std::pair<std::size_t, std::size_t>(2, 5)));   // hello
  EXPECT_EQ(toks[1], (std::pair<std::size_t, std::size_t>(8, 5)));   // brave
  EXPECT_EQ(toks[2], (std::pair<std::size_t, std::size_t>(15, 3)));  // new
  EXPECT_EQ(toks[3], (std::pair<std::size_t, std::size_t>(19, 5)));  // world
}

TEST(ExtrasOps, TokensCustomPredicate) {
  auto text = from_string("12ab34cd56");
  auto digit_runs = collect(
      d::tokens(text, [](char c) { return c >= '0' && c <= '9'; }));
  ASSERT_EQ(digit_runs.size(), 3u);
  EXPECT_EQ(digit_runs[1], (std::pair<std::size_t, std::size_t>(4, 2)));
}

TEST(ExtrasOps, TokensEmptyAndAllSpace) {
  EXPECT_TRUE(collect(d::tokens(from_string(""))).empty());
  EXPECT_TRUE(collect(d::tokens(from_string("   "))).empty());
  EXPECT_EQ(collect(d::tokens(from_string("x"))).size(), 1u);
}

TEST(ExtrasOps, HistogramCounts) {
  scoped_block_size guard(16);
  auto t = d::map([](std::size_t i) { return i % 7; }, d::iota(700));
  auto h = d::histogram(t, 7, [](std::size_t v) { return v; });
  ASSERT_EQ(h.size(), 7u);
  for (std::size_t b = 0; b < 7; ++b) EXPECT_EQ(h[b], 100u) << b;
}

TEST(ExtrasOps, HistogramOfFilteredBid) {
  scoped_block_size guard(8);
  auto kept = d::filter([](std::size_t x) { return x % 2 == 0; },
                        d::iota(100));
  auto h = d::histogram(kept, 10, [](std::size_t v) { return v / 10; });
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h[b], 5u) << b;
}

// --- range adapter -----------------------------------------------------------

TEST(SeqRange, RangeForOverRad) {
  auto t = d::map([](std::size_t i) { return (int)(i + 1); }, d::iota(5));
  int sum = 0;
  for (int x : d::elements_of(t)) sum += x;
  EXPECT_EQ(sum, 15);
}

TEST(SeqRange, RangeForOverBidCrossesBlocks) {
  scoped_block_size guard(3);
  auto [pre, tot] = d::scan([](int a, int b) { return a + b; }, 0,
                            d::tabulate(10, [](std::size_t) { return 1; }));
  (void)tot;
  std::vector<int> got;
  for (int x : d::elements_of(pre)) got.push_back(x);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(SeqRange, EmptySequence) {
  auto t = d::tabulate(0, [](std::size_t) { return 1; });
  auto r = d::elements_of(t);
  EXPECT_EQ(r.begin(), r.end());
  EXPECT_EQ(r.size(), 0u);
}

TEST(SeqRange, WorksWithStdAlgorithms) {
  scoped_block_size guard(4);
  auto f = d::filter([](std::size_t x) { return x % 3 == 0; }, d::iota(30));
  auto r = d::elements_of(f);
  auto n = std::distance(r.begin(), r.end());
  EXPECT_EQ(n, 10);
  auto it = std::find(r.begin(), r.end(), std::size_t{9});
  EXPECT_NE(it, r.end());
  EXPECT_EQ(*it, 9u);
}

TEST(SeqRange, RangeOutlivesPipelineScope) {
  auto r = [] {
    scoped_block_size guard(2);
    auto f = d::filter([](std::size_t x) { return x > 6; }, d::iota(10));
    return d::elements_of(f);  // shared_ptrs inside keep data alive
  }();
  std::vector<std::size_t> got(r.begin(), r.end());
  EXPECT_EQ(got, (std::vector<std::size_t>{7, 8, 9}));
}

}  // namespace
