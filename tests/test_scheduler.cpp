// Unit tests for the work-stealing scheduler and parallel primitives.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "sched/chase_lev_deque.hpp"
#include "sched/job.hpp"
#include "sched/parallel.hpp"
#include "sched/scheduler.hpp"

namespace {

using pbds::apply;
using pbds::fork2join;
using pbds::parallel_for;

TEST(Scheduler, SingletonIsCreatedLazily) {
  auto& s = pbds::sched::get_scheduler();
  EXPECT_GE(s.num_workers(), 1u);
  // The calling thread is enrolled as a worker.
  EXPECT_EQ(pbds::sched::scheduler::worker_id(), 0);
}

TEST(Scheduler, Fork2JoinRunsBothBranches) {
  int a = 0, b = 0;
  fork2join([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Scheduler, Fork2JoinNested) {
  std::atomic<int> count{0};
  fork2join(
      [&] {
        fork2join([&] { count++; }, [&] { count++; });
      },
      [&] {
        fork2join([&] { count++; }, [&] { count++; });
      });
  EXPECT_EQ(count.load(), 4);
}

TEST(Scheduler, Fork2JoinDeepNesting) {
  // A full binary fork tree of depth 12 => 4096 leaves.
  std::atomic<int> leaves{0};
  std::function<void(int)> rec = [&](int depth) {
    if (depth == 0) {
      leaves++;
      return;
    }
    fork2join([&] { rec(depth - 1); }, [&] { rec(depth - 1); });
  };
  rec(12);
  EXPECT_EQ(leaves.load(), 4096);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  for (std::size_t n : {0u, 1u, 2u, 100u, 100'000u}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(0, n, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, RespectsSubrange) {
  std::vector<int> hits(100, 0);
  parallel_for(10, 20, [&](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(hits[i], (i >= 10 && i < 20) ? 1 : 0) << i;
}

TEST(ParallelFor, ExplicitGranularities) {
  for (std::size_t gran : {1u, 2u, 17u, 1000u, 1'000'000u}) {
    std::atomic<std::int64_t> sum{0};
    parallel_for(
        0, 10'000,
        [&](std::size_t i) {
          sum.fetch_add(static_cast<std::int64_t>(i),
                        std::memory_order_relaxed);
        },
        gran);
    EXPECT_EQ(sum.load(), 10'000LL * 9'999 / 2) << "gran=" << gran;
  }
}

TEST(ParallelFor, EmptyAndReversedRanges) {
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  parallel_for(7, 3, [&](std::size_t) { ran = true; });  // lo >= hi: no-op
  EXPECT_FALSE(ran);
}

TEST(Apply, GranularityOnePerIndex) {
  std::atomic<int> calls{0};
  apply(257, [&](std::size_t) { calls++; });
  EXPECT_EQ(calls.load(), 257);
}

TEST(ParallelFor, NestedParallelForInsideApply) {
  std::atomic<std::int64_t> total{0};
  apply(16, [&](std::size_t j) {
    parallel_for(0, 100, [&](std::size_t i) {
      total.fetch_add(static_cast<std::int64_t>(j * 100 + i),
                      std::memory_order_relaxed);
    });
  });
  std::int64_t want = 0;
  for (std::int64_t j = 0; j < 16; ++j)
    for (std::int64_t i = 0; i < 100; ++i) want += j * 100 + i;
  EXPECT_EQ(total.load(), want);
}

TEST(Scheduler, SetNumWorkersSwapsPool) {
  unsigned before = pbds::sched::num_workers();
  pbds::sched::set_num_workers(3);
  EXPECT_EQ(pbds::sched::num_workers(), 3u);
  std::atomic<int> count{0};
  parallel_for(0, 10'000, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 10'000);
  pbds::sched::set_num_workers(before);
  EXPECT_EQ(pbds::sched::num_workers(), before);
}

TEST(Scheduler, StressManySmallForks) {
  // Exercise steal races: many rounds of small fork trees.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> c{0};
    parallel_for(0, 1000, [&](std::size_t) { c++; }, 1);
    ASSERT_EQ(c.load(), 1000);
  }
}

TEST(Scheduler, SpawnFailureShrinksPoolGracefully) {
  // A std::system_error from thread creation (injected here, exactly where
  // an exhausted OS would throw) must not crash the constructor: the pool
  // shrinks to the workers that actually started and still runs work.
  unsigned before = pbds::sched::num_workers();
  pbds::sched::detail::arm_spawn_fault(2);  // 3rd spawn attempt fails
  pbds::sched::set_num_workers(8);
  pbds::sched::detail::disarm_spawn_fault();
  EXPECT_EQ(pbds::sched::num_workers(), 3u);  // worker 0 + the 2 that started
  std::atomic<std::int64_t> sum{0};
  parallel_for(
      0, 50'000,
      [&](std::size_t i) {
        sum.fetch_add(static_cast<std::int64_t>(i),
                      std::memory_order_relaxed);
      },
      64);
  EXPECT_EQ(sum.load(), 50'000LL * 49'999 / 2);
  pbds::sched::set_num_workers(before);
  EXPECT_EQ(pbds::sched::num_workers(), before);
}

TEST(Scheduler, SpawnFailureOnFirstWorkerLeavesUsableSingletonPool) {
  unsigned before = pbds::sched::num_workers();
  pbds::sched::detail::arm_spawn_fault(0);  // even the first spawn fails
  pbds::sched::set_num_workers(8);
  pbds::sched::detail::disarm_spawn_fault();
  EXPECT_EQ(pbds::sched::num_workers(), 1u);
  std::atomic<int> c{0};
  parallel_for(0, 10'000, [&](std::size_t) { c++; }, 16);
  EXPECT_EQ(c.load(), 10'000);
  pbds::sched::set_num_workers(before);
}

TEST(Scheduler, DefaultNumWorkersParsesStrictly) {
  const char* old = std::getenv("PBDS_NUM_THREADS");
  std::string saved = old != nullptr ? old : "";
  bool had = old != nullptr;
  unsigned hw = std::thread::hardware_concurrency();
  unsigned fallback = hw == 0 ? 1 : hw;
  auto with = [](const char* v) {
    setenv("PBDS_NUM_THREADS", v, 1);
    return pbds::sched::detail::default_num_workers();
  };
  EXPECT_EQ(with("7"), 7u);
  EXPECT_EQ(with(" 12"), 12u);  // strtol skips leading whitespace
  EXPECT_EQ(with("4096"), 4096u);
  // Malformed or out-of-range values fall back to the hardware count
  // (warning once on stderr) instead of silently misconfiguring the pool.
  EXPECT_EQ(with("0"), fallback);
  EXPECT_EQ(with("-3"), fallback);
  EXPECT_EQ(with("4x"), fallback);   // trailing junk
  EXPECT_EQ(with("abc"), fallback);
  EXPECT_EQ(with(""), fallback);
  EXPECT_EQ(with("4097"), fallback);  // above kMaxWorkers
  EXPECT_EQ(with("99999999999999999999"), fallback);  // ERANGE
  unsetenv("PBDS_NUM_THREADS");
  EXPECT_EQ(pbds::sched::detail::default_num_workers(), fallback);
  if (had) setenv("PBDS_NUM_THREADS", saved.c_str(), 1);
}

TEST(Deque, PushBottomRefusesWhenFullInsteadOfAborting) {
  // Regression: overflow used to std::abort() the process. Now push_bottom
  // reports failure and the caller runs the job inline.
  auto deque = std::make_unique<pbds::sched::chase_lev_deque>();
  auto noop = [] {};
  std::vector<std::unique_ptr<pbds::sched::callable_job<decltype(noop)>>> jobs;
  jobs.reserve(pbds::sched::chase_lev_deque::kCapacity + 1);
  for (std::size_t i = 0; i < pbds::sched::chase_lev_deque::kCapacity; ++i) {
    jobs.push_back(
        std::make_unique<pbds::sched::callable_job<decltype(noop)>>(noop));
    EXPECT_TRUE(deque->push_bottom(jobs.back().get())) << i;
  }
  jobs.push_back(
      std::make_unique<pbds::sched::callable_job<decltype(noop)>>(noop));
  EXPECT_FALSE(deque->push_bottom(jobs.back().get()));  // full: refused
  // Popping one makes room again.
  EXPECT_NE(deque->pop_bottom(), nullptr);
  EXPECT_TRUE(deque->push_bottom(jobs.back().get()));
}

TEST(Scheduler, ForkDepthPastDequeCapacityRunsInline) {
  // Left-spine recursion deeper than kCapacity: every fork2join frame on
  // this stack holds one unjoined job, so the owner's deque must overflow.
  // The old code aborted the process here; now the overflowing forks
  // execute their right branch inline and every leaf still runs.
  constexpr int kDepth =
      static_cast<int>(pbds::sched::chase_lev_deque::kCapacity) + 64;
  std::atomic<int> rights{0};
  std::function<void(int)> rec = [&](int depth) {
    if (depth == 0) return;
    fork2join([&] { rec(depth - 1); }, [&] { rights++; });
  };
  rec(kDepth);
  EXPECT_EQ(rights.load(), kDepth);
}

TEST(Scheduler, WorkActuallyDistributesAcrossWorkers) {
  // With >1 workers, long parallel loops should be executed by more than
  // one thread (statistically certain with this much work).
  unsigned before = pbds::sched::num_workers();
  pbds::sched::set_num_workers(4);
  std::atomic<std::uint64_t> worker_mask{0};
  parallel_for(
      0, 1 << 16,
      [&](std::size_t) {
        int id = pbds::sched::scheduler::worker_id();
        worker_mask.fetch_or(1ull << id, std::memory_order_relaxed);
        // A little work so the loop lasts long enough to be stolen from.
        volatile int x = 0;
        for (int k = 0; k < 50; ++k) x = x + k;
      },
      1 << 8);
  EXPECT_GE(__builtin_popcountll(worker_mask.load()), 2);
  pbds::sched::set_num_workers(before);
}

}  // namespace
