// Unit tests for parray<T> (construction, ownership, element lifetimes,
// allocation accounting).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "array/parray.hpp"
#include "memory/tracking.hpp"

namespace {

using pbds::parray;

TEST(Parray, DefaultIsEmpty) {
  parray<int> a;
  EXPECT_EQ(a.size(), 0u);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.begin(), a.end());
}

TEST(Parray, TabulateValues) {
  auto a = parray<int>::tabulate(1000, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(a.size(), 1000u);
  for (std::size_t i = 0; i < 1000; ++i)
    ASSERT_EQ(a[i], static_cast<int>(i * i));
}

TEST(Parray, Filled) {
  auto a = parray<std::string>::filled(50, "xyz");
  for (const auto& s : a) EXPECT_EQ(s, "xyz");
}

TEST(Parray, MoveTransfersOwnership) {
  auto a = parray<int>::tabulate(10, [](std::size_t i) {
    return static_cast<int>(i);
  });
  const int* p = a.data();
  parray<int> b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): documented
  EXPECT_EQ(b.size(), 10u);
  parray<int> c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_EQ(c[7], 7);
}

TEST(Parray, CloneIsDeep) {
  auto a = parray<int>::filled(20, 5);
  auto b = a.clone();
  b[0] = 99;
  EXPECT_EQ(a[0], 5);
  EXPECT_EQ(b[0], 99);
  EXPECT_NE(a.data(), b.data());
}

TEST(Parray, NonTrivialElementsDestroyed) {
  static std::atomic<int> live{0};
  struct counted {
    counted() { live++; }
    counted(const counted&) { live++; }
    ~counted() { live--; }
  };
  live = 0;
  {
    auto a = parray<counted>::tabulate(100, [](std::size_t) {
      return counted{};
    });
    EXPECT_EQ(live.load(), 100);
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(Parray, AllocationIsAccounted) {
  std::int64_t before = pbds::memory::bytes_live();
  {
    auto a = parray<double>::filled(1000, 1.0);
    EXPECT_EQ(pbds::memory::bytes_live() - before,
              static_cast<std::int64_t>(1000 * sizeof(double)));
  }
  EXPECT_EQ(pbds::memory::bytes_live(), before);
}

TEST(Parray, ZeroSizedAllocatesNothing) {
  std::int64_t allocs = pbds::memory::num_allocs();
  auto a = parray<int>::tabulate(0, [](std::size_t) { return 0; });
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(pbds::memory::num_allocs(), allocs);
}

TEST(Parray, MoveOnlyElementTypes) {
  // parray of parrays (used by flatten in the array library).
  auto nested = parray<parray<int>>::tabulate(10, [](std::size_t i) {
    return parray<int>::filled(i, static_cast<int>(i));
  });
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_EQ(nested[i].size(), i);
    if (i > 0) {
      EXPECT_EQ(nested[i][0], static_cast<int>(i));
    }
  }
}

TEST(Parray, OverAlignedTypes) {
  struct alignas(64) wide {
    double v[8];
  };
  auto a = parray<wide>::tabulate(33, [](std::size_t i) {
    wide w{};
    w.v[0] = static_cast<double>(i);
    return w;
  });
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % 64, 0u);
  EXPECT_EQ(a[32].v[0], 32.0);
}

TEST(Parray, LargeTabulateParallelized) {
  // Large enough to split across workers; checks no element is skipped.
  auto a = parray<std::uint32_t>::tabulate(1 << 20, [](std::size_t i) {
    return static_cast<std::uint32_t>(i ^ 0xdeadbeefu);
  });
  for (std::size_t i = 0; i < a.size(); i += 4097)
    ASSERT_EQ(a[i], static_cast<std::uint32_t>(i ^ 0xdeadbeefu));
}

}  // namespace
